// Benchmark harness: one benchmark per table and figure of the paper, plus
// micro-benchmarks of the core analyses. Each paper benchmark validates its
// headline numbers once and then times the full regeneration, so
// `go test -bench=. -benchmem` both re-checks the reproduction and reports
// its cost.
package repro_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analyzers"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/servernet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// BenchmarkFigure1Deadlock times the flit-level deadlock demonstration:
// simulate the circular wait, extract the witness, re-run restricted.
func BenchmarkFigure1Deadlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if !res.UnrestrictedDeadlocked || res.RestrictedDelivered != 4 {
			b.Fatalf("figure 1 wrong: %+v", res)
		}
	}
}

// BenchmarkFigure2Hypercube times the hypercube path-disable analysis.
func BenchmarkFigure2Hypercube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if !res.UpDownFree || res.UpDownRatio <= res.ECubeRatio {
			b.Fatalf("figure 2 wrong: %+v", res)
		}
	}
}

// BenchmarkFigure3FullyConnected times the fully-connected group sweep.
func BenchmarkFigure3FullyConnected(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if rows[3].MaxContention != 3 {
			b.Fatalf("M=4 contention = %d, want 3", rows[3].MaxContention)
		}
	}
}

// BenchmarkFigure5ThinScaling times the thin-fractahedron depth sweep.
func BenchmarkFigure5ThinScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(2)
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].MaxHops != 6 {
			b.Fatalf("N=2 thin max hops = %d, want 6", rows[1].MaxHops)
		}
	}
}

// BenchmarkTable1Fractahedron regenerates Table 1 at N = 1..3.
func BenchmarkTable1Fractahedron(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(3)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.MaxDelay != r.MaxDelayFormula {
				b.Fatalf("N=%d fat=%v delay %d != %d", r.Levels, r.Fat, r.MaxDelay, r.MaxDelayFormula)
			}
		}
	}
}

// BenchmarkTable2Comparison regenerates the 64-node headline comparison.
func BenchmarkTable2Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if res.FractIntraL2 != 4 {
			b.Fatalf("intra-L2 contention = %d, want 4", res.FractIntraL2)
		}
	}
}

// BenchmarkMeshComparison regenerates §3.1's mesh scaling rows.
func BenchmarkMeshComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Section31Mesh()
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].MaxContention != 10 {
			b.Fatalf("6x6 contention = %d, want 10", rows[0].MaxContention)
		}
	}
}

// BenchmarkFatTree regenerates §3.3's fat tree analysis.
func BenchmarkFatTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Section33FatTree()
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxContention != 12 {
			b.Fatalf("contention = %d, want 12", res.MaxContention)
		}
	}
}

// BenchmarkDeadlockFreedom runs the CDG verification matrix of §2/§2.4.
func BenchmarkDeadlockFreedom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DeadlockSummary()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkSimulationSweep runs the §4 future-work load sweep at a reduced
// cycle budget.
func BenchmarkSimulationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SimSweep([]float64{0.005, 0.02}, 500, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Deadlocked {
				b.Fatalf("%s deadlocked", r.Topology)
			}
		}
	}
}

// benchmarkSimSweepWorkers times the same four-rate sweep grid at a fixed
// worker-pool size; the Workers1/Workers4 pair demonstrates the engine's
// parallel speedup on identical (bit-for-bit) rows.
func benchmarkSimSweepWorkers(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SimSweep([]float64{0.002, 0.005, 0.01, 0.02}, 600, 8, 1,
			runner.Workers(workers))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Deadlocked {
				b.Fatalf("%s deadlocked", r.Topology)
			}
		}
	}
}

func BenchmarkSimSweepWorkers1(b *testing.B) { benchmarkSimSweepWorkers(b, 1) }
func BenchmarkSimSweepWorkers4(b *testing.B) { benchmarkSimSweepWorkers(b, 4) }

// BenchmarkDatabaseScenario runs the §3.0 adversarial streaming comparison.
func BenchmarkDatabaseScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DatabaseScenario(8, 16)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Streams != 12 || rows[1].Streams != 8 {
			b.Fatalf("streams = %d/%d, want 12/8", rows[0].Streams, rows[1].Streams)
		}
	}
}

// BenchmarkAblationFIFODepth sweeps router buffer depth.
func BenchmarkAblationFIFODepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFIFODepth([]int{2, 8}, 150, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRadix sweeps the generalized ensemble size of §4.
func BenchmarkAblationRadix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRadix([]int{3, 4, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartitions measures alternative static fat-tree
// partitions against the 12:1 pigeonhole bound.
func BenchmarkAblationPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationFatTreePartitions()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Contention != 12 {
				b.Fatalf("%s: %d", r.Name, r.Contention)
			}
		}
	}
}

// --- micro-benchmarks of the underlying machinery ---

// BenchmarkBuildFatFractahedron measures topology construction alone.
func BenchmarkBuildFatFractahedron(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := topology.NewFractahedron(topology.Tetra(2, true))
		if f.NumRouters() != 48 {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkRouteAllPairs measures table-walk routing over all 4032 pairs of
// the 64-node fat fractahedron.
func BenchmarkRouteAllPairs(b *testing.B) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.AllRoutes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCDGAnalysis measures channel-dependency-graph construction and
// cycle search on the 64-node fat fractahedron.
func BenchmarkCDGAnalysis(b *testing.B) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := deadlock.Analyze(tb)
		if err != nil || !rep.Free {
			b.Fatal(err, rep.Free)
		}
	}
}

// BenchmarkContentionMatching measures the full Hopcroft–Karp contention
// analysis on the 64-node fat fractahedron.
func BenchmarkContentionMatching(b *testing.B) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := contention.MaxLinkContention(tb)
		if err != nil || res.Max != 8 {
			b.Fatal(err, res.Max)
		}
	}
}

// BenchmarkBisectionSearch measures the flow-based balanced min-cut search.
func BenchmarkBisectionSearch(b *testing.B) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := metrics.Bisection(f.Network, 1, 1)
		if res.Cut != 16 {
			b.Fatalf("cut = %d", res.Cut)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulator cycles per second under a
// steady uniform load on the 64-node fat fractahedron; the reported metric
// is wall time per simulated workload of 1000 packets.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		specs := workload.UniformRandom(rng, 64, 1000, 8, 800)
		res, err := sys.Simulate(specs, sim.Config{FIFODepth: 4})
		if err != nil || res.Delivered != 1000 {
			b.Fatal(err, res.Delivered)
		}
	}
}

// BenchmarkFract3SimulatorLoad measures the raw engine on the 512-node
// 3-level fat fractahedron under a steady uniform load — the
// simulator-only counterpart of BenchmarkLargeSim, isolating per-cycle
// engine cost from the experiment runner and the sweep grid. The Shards1
// variant is the sequential engine; ShardsN runs the same scenario on the
// sharded planner (N picked to match small multicore hosts), and must
// deliver the identical result — only the wall clock may differ.
func BenchmarkFract3SimulatorLoad(b *testing.B) {
	sys, _, err := core.NewFatFractahedron(3)
	if err != nil {
		b.Fatal(err)
	}
	nodes := sys.Net.NumNodes()
	for _, bc := range []struct {
		name   string
		shards int
	}{{"Shards1", 0}, {"Shards4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(11))
				specs := workload.UniformRandom(rng, nodes, 2000, 8, 1500)
				res, err := sys.Simulate(specs, sim.Config{FIFODepth: 4, Shards: bc.shards})
				if err != nil || res.Deadlocked || res.Delivered != 2000 {
					b.Fatalf("err=%v deadlocked=%v delivered=%d", err, res.Deadlocked, res.Delivered)
				}
			}
		})
	}
}

// BenchmarkChaosOff re-runs the exact BenchmarkFract3SimulatorLoad
// scenario with every chaos-era hook installed but disabled — a zero-rate
// corruption filter plus delivery and drop callbacks — and demands a
// bit-identical Result. Compare its ns/op against Fract3SimulatorLoad in
// BENCH_SIM.json: the disabled hooks must add no per-cycle cost.
func BenchmarkChaosOff(b *testing.B) {
	sys, _, err := core.NewFatFractahedron(3)
	if err != nil {
		b.Fatal(err)
	}
	nodes := sys.Net.NumNodes()
	baseline, err := sys.Simulate(
		workload.UniformRandom(rand.New(rand.NewSource(11)), nodes, 2000, 8, 1500),
		sim.Config{FIFODepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(11))
		specs := workload.UniformRandom(rng, nodes, 2000, 8, 1500)
		s := sim.New(sys.Net, sys.Disables, sim.Config{FIFODepth: 4})
		if err := s.EnableCorruption(0, 11); err != nil {
			b.Fatal(err)
		}
		s.OnDelivered(func(spec sim.PacketSpec, now int) {})
		s.OnDropped(func(spec sim.PacketSpec, now int) {})
		if err := s.AddBatch(sys.Tables, specs); err != nil {
			b.Fatal(err)
		}
		if res := s.Run(); !reflect.DeepEqual(res, baseline) {
			b.Fatalf("disabled chaos hooks disturbed the result:\n got %+v\nwant %+v", res, baseline)
		}
	}
}

// BenchmarkChaosRecovery times one full online fault-recovery trial on the
// dual 64-node fractahedron pair (link kill + flap + router kill, hot
// reconfiguration, dual-fabric retry failover).
func BenchmarkChaosRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cr, err := experiments.ChaosRecovery(1, 300, 4, 2, runner.Workers(1))
		if err != nil || cr.Lost != 0 || cr.Unresolved != 0 || cr.Reconfigurations == 0 {
			b.Fatalf("err=%v campaign=%+v", err, cr)
		}
	}
}

// BenchmarkDisablesFromTables measures the path-disable derivation of §2.4.
func BenchmarkDisablesFromTables(b *testing.B) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.FromTables(tb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeadlockAvoidance runs the §2 scheme comparison (restriction vs
// virtual channels vs timeout recovery).
func BenchmarkDeadlockAvoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DeadlockAvoidanceComparison(32)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkTopologyZoo measures the full §2 topology comparison at 64 nodes.
func BenchmarkTopologyZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BackgroundTopologies()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkTableSizes measures the §2.1 region-table comparison.
func BenchmarkTableSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableSizes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransactionLayer measures the ServerNet protocol engine over the
// 16-node system: reads, DMA writes with acks, completion interrupts.
func BenchmarkTransactionLayer(b *testing.B) {
	cfg := topology.Tetra(1, false)
	cfg.Fanout = true
	sys, _, err := core.NewFractahedron(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := servernet.NewEngine(sys, sim.Config{FIFODepth: 4})
		for cpu := 0; cpu < 8; cpu++ {
			ctrl := 8 + cpu
			e.ReadTx(cpu, ctrl, 32, 0)
			e.WriteTx(ctrl, cpu, 48, 5)
			e.InterruptTx(ctrl, cpu, 6)
		}
		res, err := e.Run()
		if err != nil || res.InterruptOvertakes != 0 || res.Completed != 24 {
			b.Fatalf("err=%v overtakes=%d completed=%d", err, res.InterruptOvertakes, res.Completed)
		}
	}
}

// BenchmarkVCSimulator measures the dateline-torus simulator with two
// virtual channels under an all-pairs load.
func BenchmarkVCSimulator(b *testing.B) {
	m := topology.NewTorus(4, 4, 1)
	tb := routing.TorusDateline(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(m.Network, router.AllowAll(m.Network), sim.Config{FIFODepth: 2, VirtualChannels: 2})
		var specs []sim.PacketSpec
		for a := 0; a < 16; a++ {
			for d := 0; d < 16; d++ {
				if a != d {
					specs = append(specs, sim.PacketSpec{Src: a, Dst: d, Flits: 5})
				}
			}
		}
		if err := s.AddBatch(tb, specs); err != nil {
			b.Fatal(err)
		}
		res := s.Run()
		if res.Deadlocked || res.Delivered != 240 {
			b.Fatalf("%+v", res)
		}
	}
}

// BenchmarkLocalitySweep measures §3.3's locality argument: the thinned 4-2
// fat tree catches up to the fractahedron as traffic turns local.
func BenchmarkLocalitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LocalitySweep([]float64{0, 0.6}, 400, 8, 1)
		if err != nil || len(rows) != 6 {
			b.Fatal(err, len(rows))
		}
	}
}

// BenchmarkPermutationStudy runs the classic permutation patterns over the
// 64-node contenders.
func BenchmarkPermutationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PermutationStudy(8)
		if err != nil || len(rows) != 20 {
			b.Fatal(err, len(rows))
		}
	}
}

// BenchmarkSaturation finds each topology's saturation knee.
func BenchmarkSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Saturation(400, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailover runs the live dual-fabric failover scenario.
func BenchmarkFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FailoverSim(300, 8, 50, 7)
		if err != nil || res.TotalLost != 0 {
			b.Fatalf("err=%v lost=%d", err, res.TotalLost)
		}
	}
}

// BenchmarkLargeSim runs the §4 512-node simulation at a reduced budget,
// sequentially and on the sharded engine (which must not change the rows).
func BenchmarkLargeSim(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{{"Shards1", 0}, {"Shards4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.LargeSim([]float64{0.004}, 300, 8, 1, runner.Shards(bc.shards))
				if err != nil || rows[0].Deadlocked {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableImage measures region-table compilation, serialization and
// verification for the 512-node fat fractahedron.
func BenchmarkTableImage(b *testing.B) {
	f := topology.NewFractahedron(topology.Tetra(3, true))
	tb := routing.Fractahedron(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := routing.CompileImage(tb)
		if err := routing.VerifyImage(img, tb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimlintAll times one full static-analysis pass — every
// analyzer, including the concurrency family behind the code deadlock
// certificate, over every internal package. Loading and type-checking is
// hoisted out of the timer: the benchmark measures the analysis itself,
// the cost `make lint-concurrency` and `simlint -certify` add to the CI
// gate beyond compilation.
func BenchmarkSimlintAll(b *testing.B) {
	pkgs, err := load.Packages(".", "./internal/...")
	if err != nil {
		b.Fatal(err)
	}
	all := analyzers.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int
		for _, p := range pkgs {
			findings, _, err := analysis.Run(all, p.Fset, p.Files, p.Types, p.TypesInfo)
			if err != nil {
				b.Fatal(err)
			}
			total += len(findings)
		}
		if total != 0 {
			b.Fatalf("simlint found %d findings on the clean tree", total)
		}
	}
}
