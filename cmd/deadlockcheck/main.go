// Command deadlockcheck runs the Dally–Seitz channel-dependency-graph
// analysis on a topology + routing and prints either a freedom certificate
// or a witness dependency cycle.
//
// Usage:
//
//	deadlockcheck -spec ring:size=4,unsafe
//	deadlockcheck -spec fat-fract:levels=3 -turns
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/deadlock"
)

func main() {
	spec := flag.String("spec", "fat-fract:levels=2", "topology specification (see fractagen)")
	turns := flag.Bool("turns", false, "also print the per-router enabled turn counts")
	flag.Parse()

	sys, _, err := core.ParseSystem(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deadlockcheck: %v\n", err)
		os.Exit(1)
	}
	rep, err := deadlock.Analyze(sys.Tables)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deadlockcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)

	if err := deadlock.VerifyTurnEquivalence(sys.Tables); err != nil {
		fmt.Fprintf(os.Stderr, "deadlockcheck: turn equivalence: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("turn-equivalence verified: path disables enforce exactly the analyzed dependencies")

	if *turns {
		used, err := sys.Tables.UsedTurns()
		if err != nil {
			fmt.Fprintf(os.Stderr, "deadlockcheck: %v\n", err)
			os.Exit(1)
		}
		type row struct {
			name string
			n    int
		}
		var rows []row
		for dev, m := range used {
			rows = append(rows, row{sys.Net.Device(dev).Name, len(m)})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		for _, r := range rows {
			fmt.Printf("  %-20s %d turns enabled\n", r.name, r.n)
		}
	}

	if !rep.Free {
		os.Exit(3)
	}
}
