// Command deadlockcheck runs the Dally–Seitz channel-dependency-graph
// analysis on a topology + routing and prints either a freedom certificate
// or a witness dependency cycle.
//
// Usage:
//
//	deadlockcheck -spec ring:size=4,unsafe
//	deadlockcheck -spec fat-fract:levels=3 -turns
//	deadlockcheck -all
//
// With -all it iterates every built-in topology × routing pair
// (core.BuiltinSpecs), re-proving each pair's static deadlock certificate
// and printing its size; any cycle — or any divergence between the
// analyzed dependencies and the enforced path disables — exits non-zero.
// This is the mode `make check` and CI run on every commit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/fabricver"
)

func main() {
	spec := flag.String("spec", "fat-fract:levels=2", "topology specification (see fractagen)")
	turns := flag.Bool("turns", false, "also print the per-router enabled turn counts")
	all := flag.Bool("all", false, "certify every built-in topology × routing pair")
	flag.Parse()

	if *all {
		os.Exit(certifyAll())
	}

	sys, _, err := core.ParseSystem(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deadlockcheck: %v\n", err)
		os.Exit(1)
	}
	rep, err := deadlock.Analyze(sys.Tables)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deadlockcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)

	if err := deadlock.VerifyTurnEquivalence(sys.Tables); err != nil {
		fmt.Fprintf(os.Stderr, "deadlockcheck: turn equivalence: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("turn-equivalence verified: path disables enforce exactly the analyzed dependencies")

	if *turns {
		used, err := sys.Tables.UsedTurns()
		if err != nil {
			fmt.Fprintf(os.Stderr, "deadlockcheck: %v\n", err)
			os.Exit(1)
		}
		type row struct {
			name string
			n    int
		}
		var rows []row
		for dev, m := range used {
			rows = append(rows, row{sys.Net.Device(dev).Name, len(m)})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		for _, r := range rows {
			fmt.Printf("  %-20s %d turns enabled\n", r.name, r.n)
		}
	}

	if !rep.Free {
		os.Exit(3)
	}
}

// certifyAll re-proves the static deadlock certificate for every built-in
// topology × routing pair. The certificate is the Dally–Seitz channel
// order: a numbering of all channels such that every dependency any route
// induces goes strictly upward, whose existence is equivalent to CDG
// acyclicity. Its size (the number of ordered channels) is printed per
// pair so a table-compilation regression that silently changes the
// channel population shows up in CI logs.
//
// The walk itself lives in internal/fabricver (the whole-fabric verifier)
// so both commands print from one implementation; fabricver adds table,
// reachability and fault checks on top of the same core.
func certifyAll() int {
	rows, failures := fabricver.CertifySpecs(core.BuiltinSpecs())
	fabricver.WriteCertifyTable(os.Stdout, rows, failures)
	if failures > 0 {
		return 3
	}
	return 0
}
