// Command benchjson converts `go test -bench` text output into the JSON
// benchmark-trajectory format committed as BENCH_*.json at the repo root.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_SIM.json
//
// Every benchmark line becomes one record; the goos/goarch/cpu header is
// carried along so baselines from different machines are distinguishable.
// Lines that are not benchmark results (PASS, ok, test log output) pass
// through to stderr unchanged, so the command can sit at the end of a
// pipeline without eating failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// record is one benchmark measurement. BytesPerOp/AllocsPerOp are present
// only when the run used -benchmem.
type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int    `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int    `json:"allocs_per_op,omitempty"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkSimulationSweep-4  2  155901234 ns/op  44671600 B/op  446716 allocs/op
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := report{Benchmarks: []record{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := benchLine.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad ns/op in %q: %v\n", line, err)
				os.Exit(1)
			}
			iters, err := strconv.Atoi(m[2])
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad iteration count in %q: %v\n", line, err)
				os.Exit(1)
			}
			r := record{Name: m[1], Iterations: iters, NsPerOp: ns}
			if m[4] != "" {
				b, _ := strconv.Atoi(m[4])
				a, _ := strconv.Atoi(m[5])
				r.BytesPerOp, r.AllocsPerOp = &b, &a
			}
			rep.Benchmarks = append(rep.Benchmarks, r)
			continue
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if line != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
