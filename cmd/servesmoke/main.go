// Command servesmoke proves the campaign server's survivability and
// cache stories end to end against real campaignd processes:
//
//  1. Run a sweep campaign to completion on server A (its own dirs) and
//     keep the artifact bytes — the uninterrupted reference.
//  2. Run the same campaign on server B (separate dirs, slowed by
//     -point-delay), SIGKILL the process mid-campaign, restart it on
//     the same dirs, and let the resumed campaign finish.
//  3. Byte-compare the resumed artifact against the reference: a
//     checkpointed restart must reproduce the uninterrupted bytes
//     exactly.
//  4. Re-submit the same spec: the reply must be cache-served (zero new
//     simulator points; the computed counter stays flat, cache hits
//     climb).
//  5. Repeat the survivability story on the live concurrent backend: a
//     live job is refused by an indexed server (admission control),
//     accepted by a -backend live server, killed mid-campaign and
//     resumed byte-identically, with /statusz attributing the points
//     to the live counter.
//
// Server logs and the final /statusz snapshot are written under -dir
// for CI to archive. Exit status 0 only if every check passes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

var jobSpec = []byte(`{
  "kind": "sweep",
  "sweep": {
    "specs": ["fat-fract:levels=1", "ring:size=4"],
    "rates": [0.01, 0.02, 0.03],
    "cycles": 300,
    "flits": 4,
    "fifo_depth": 4,
    "seed": 11
  }
}`)

const points = 6 // 2 specs x 3 rates

var liveSpec = []byte(`{
  "kind": "live",
  "live": {
    "spec": "fat-fract:levels=1",
    "runs": 6,
    "packets": 60,
    "flits": 4,
    "seed": 11
  }
}`)

const livePoints = 6 // runs

func main() {
	bin := flag.String("bin", "bin/campaignd", "campaignd binary to exercise")
	dir := flag.String("dir", "bin/serve-smoke", "working directory for logs, checkpoints, caches and artifacts")
	flag.Parse()
	if err := run(*bin, *dir); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run(bin, dir string) error {
	// The smoke proves cold-start behaviour (a fresh cache miss, a resume
	// from a mid-campaign kill); checkpoints and caches left over from a
	// previous run would short-circuit both phases, so start clean.
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	abs, err := filepath.Abs(bin)
	if err != nil {
		return err
	}

	// Phase 1: the uninterrupted reference artifact.
	a, err := startServer(abs, filepath.Join(dir, "serverA.log"),
		"-checkpoint", filepath.Join(dir, "a-ckpt"), "-cache", filepath.Join(dir, "a-cache"))
	if err != nil {
		return err
	}
	defer a.kill()
	key, err := submit(a.addr, jobSpec)
	if err != nil {
		return err
	}
	if err := waitState(a.addr, key, "done", 0, 60*time.Second); err != nil {
		return fmt.Errorf("reference campaign: %w", err)
	}
	ref, err := fetch(a.addr, "/v1/artifacts/"+key)
	if err != nil {
		return err
	}
	if n := bytes.Count(ref, []byte{'\n'}); n != points {
		return fmt.Errorf("reference artifact has %d rows, want %d", n, points)
	}
	if err := a.shutdown(); err != nil {
		return err
	}
	fmt.Printf("servesmoke: reference artifact %s (%d bytes)\n", key[:12], len(ref))

	// Phase 2: same campaign, slowed down, killed mid-flight.
	ckptB := filepath.Join(dir, "b-ckpt")
	cacheB := filepath.Join(dir, "b-cache")
	b1, err := startServer(abs, filepath.Join(dir, "serverB1.log"),
		"-checkpoint", ckptB, "-cache", cacheB,
		"-point-delay", "300ms", "-point-workers", "1")
	if err != nil {
		return err
	}
	defer b1.kill()
	if _, err := submit(b1.addr, jobSpec); err != nil {
		return err
	}
	// Wait until some — but not all — points are checkpointed, then
	// SIGKILL: no shutdown path runs, the checkpoint is whatever made it
	// to disk.
	if err := waitState(b1.addr, key, "running", 2, 60*time.Second); err != nil {
		return fmt.Errorf("mid-campaign progress: %w", err)
	}
	b1.kill()
	fmt.Println("servesmoke: killed server B mid-campaign")

	// Phase 3: restart on the same dirs; the campaign resumes and finishes.
	b2, err := startServer(abs, filepath.Join(dir, "serverB2.log"),
		"-checkpoint", ckptB, "-cache", cacheB)
	if err != nil {
		return err
	}
	defer b2.kill()
	if err := waitState(b2.addr, key, "done", 0, 60*time.Second); err != nil {
		return fmt.Errorf("resumed campaign: %w", err)
	}
	st, err := status(b2.addr, key)
	if err != nil {
		return err
	}
	if st.Resumed < 2 {
		return fmt.Errorf("resumed campaign restored %d points, want >= 2", st.Resumed)
	}
	got, err := fetch(b2.addr, "/v1/artifacts/"+key)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, ref) {
		return fmt.Errorf("resumed artifact differs from the uninterrupted reference (%d vs %d bytes)", len(got), len(ref))
	}
	rows, err := fetch(b2.addr, "/v1/jobs/"+key+"/rows")
	if err != nil {
		return err
	}
	if !bytes.Equal(rows, ref) {
		return fmt.Errorf("streamed rows differ from the artifact")
	}
	fmt.Printf("servesmoke: resumed artifact byte-identical (%d points restored from checkpoint)\n", st.Resumed)

	// Phase 4: a repeat submission is fully cache-served.
	before, err := statusz(b2.addr)
	if err != nil {
		return err
	}
	st2, code, err := submitStatus(b2.addr, jobSpec)
	if err != nil {
		return err
	}
	if code != http.StatusOK || !st2.Cached || st2.State != "done" {
		return fmt.Errorf("repeat submission: code %d, cached %v, state %q; want 200/true/done", code, st2.Cached, st2.State)
	}
	after, err := statusz(b2.addr)
	if err != nil {
		return err
	}
	if after.Points.Computed != before.Points.Computed {
		return fmt.Errorf("repeat submission computed %d new points, want 0",
			after.Points.Computed-before.Points.Computed)
	}
	if after.Cache.Hits <= before.Cache.Hits {
		return fmt.Errorf("repeat submission did not count a cache hit (%d -> %d)", before.Cache.Hits, after.Cache.Hits)
	}
	raw, err := fetch(b2.addr, "/statusz")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "cache-stats.json"), raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("servesmoke: repeat submission cache-served (hits %d -> %d, computed flat at %d)\n",
		before.Cache.Hits, after.Cache.Hits, after.Points.Computed)

	// Phase 5, admission control: the indexed server refuses live jobs.
	if _, code, err := submitStatus(b2.addr, liveSpec); err != nil || code != http.StatusBadRequest {
		return fmt.Errorf("live job on indexed server: HTTP %d (err %v), want 400", code, err)
	}
	if err := b2.shutdown(); err != nil {
		return err
	}
	fmt.Println("servesmoke: indexed server refused the live job (400)")

	// Live reference: an uninterrupted live campaign.
	ckptL := filepath.Join(dir, "l-ckpt")
	cacheL := filepath.Join(dir, "l-cache")
	l1, err := startServer(abs, filepath.Join(dir, "serverL1.log"),
		"-backend", "live", "-checkpoint", ckptL, "-cache", cacheL)
	if err != nil {
		return err
	}
	defer l1.kill()
	liveKey, err := submit(l1.addr, liveSpec)
	if err != nil {
		return fmt.Errorf("live submission: %w", err)
	}
	if err := waitState(l1.addr, liveKey, "done", 0, 60*time.Second); err != nil {
		return fmt.Errorf("live reference campaign: %w", err)
	}
	liveRef, err := fetch(l1.addr, "/v1/artifacts/"+liveKey)
	if err != nil {
		return err
	}
	if n := bytes.Count(liveRef, []byte{'\n'}); n != livePoints {
		return fmt.Errorf("live reference artifact has %d rows, want %d", n, livePoints)
	}
	if err := l1.shutdown(); err != nil {
		return err
	}
	fmt.Printf("servesmoke: live reference artifact %s (%d bytes)\n", liveKey[:12], len(liveRef))

	// Live survivability: kill mid-campaign on fresh dirs, resume,
	// byte-compare.
	ckptM := filepath.Join(dir, "m-ckpt")
	cacheM := filepath.Join(dir, "m-cache")
	m1, err := startServer(abs, filepath.Join(dir, "serverM1.log"),
		"-backend", "live", "-checkpoint", ckptM, "-cache", cacheM,
		"-point-delay", "300ms", "-point-workers", "1")
	if err != nil {
		return err
	}
	defer m1.kill()
	if _, err := submit(m1.addr, liveSpec); err != nil {
		return err
	}
	if err := waitState(m1.addr, liveKey, "running", 2, 60*time.Second); err != nil {
		return fmt.Errorf("live mid-campaign progress: %w", err)
	}
	m1.kill()
	fmt.Println("servesmoke: killed live server mid-campaign")

	m2, err := startServer(abs, filepath.Join(dir, "serverM2.log"),
		"-backend", "live", "-checkpoint", ckptM, "-cache", cacheM)
	if err != nil {
		return err
	}
	defer m2.kill()
	if err := waitState(m2.addr, liveKey, "done", 0, 60*time.Second); err != nil {
		return fmt.Errorf("resumed live campaign: %w", err)
	}
	lst, err := status(m2.addr, liveKey)
	if err != nil {
		return err
	}
	if lst.Resumed < 2 {
		return fmt.Errorf("resumed live campaign restored %d points, want >= 2", lst.Resumed)
	}
	liveGot, err := fetch(m2.addr, "/v1/artifacts/"+liveKey)
	if err != nil {
		return err
	}
	if !bytes.Equal(liveGot, liveRef) {
		return fmt.Errorf("resumed live artifact differs from the uninterrupted reference (%d vs %d bytes)", len(liveGot), len(liveRef))
	}
	lz, err := statusz(m2.addr)
	if err != nil {
		return err
	}
	if lz.Backend != "live" {
		return fmt.Errorf("live server statusz backend %q, want \"live\"", lz.Backend)
	}
	if lz.Points.ComputedLive == 0 || lz.Points.ComputedIndexed != 0 {
		return fmt.Errorf("live server per-backend counters: indexed %d, live %d",
			lz.Points.ComputedIndexed, lz.Points.ComputedLive)
	}
	raw, err = fetch(m2.addr, "/statusz")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "live-stats.json"), raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("servesmoke: live campaign survived kill+resume byte-identically (%d points restored, %d live-computed)\n",
		lst.Resumed, lz.Points.ComputedLive)
	return m2.shutdown()
}

// server is one campaignd child process.
type server struct {
	cmd  *exec.Cmd
	addr string
	log  *os.File
}

// startServer launches campaignd on an ephemeral port, teeing its
// output to logPath and parsing the bound address from the startup
// line.
func startServer(bin, logPath string, extra ...string) (*server, error) {
	logf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = logf
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		_ = logf.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		_ = logf.Close()
		return nil, err
	}
	sc := bufio.NewScanner(pipe)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(logf, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		_ = logf.Close()
		return nil, fmt.Errorf("campaignd (%s) never reported its address", logPath)
	}
	s := &server{cmd: cmd, addr: addr, log: logf}
	// Keep draining stdout into the log so the child never blocks on a
	// full pipe.
	go func() {
		_, _ = io.Copy(logf, pipe)
	}()
	return s, nil
}

// kill SIGKILLs the child — the unclean death the checkpoint must survive.
func (s *server) kill() {
	if s.cmd.Process != nil {
		_ = s.cmd.Process.Kill()
	}
	_ = s.cmd.Wait()
	_ = s.log.Close()
}

// shutdown asks for the graceful path (SIGTERM) and waits.
func (s *server) shutdown() error {
	if err := s.cmd.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	err := s.cmd.Wait()
	_ = s.log.Close()
	return err
}

type jobStatus struct {
	Key     string `json:"key"`
	State   string `json:"state"`
	Points  int    `json:"points"`
	Done    int    `json:"done"`
	Resumed int    `json:"resumed"`
	Error   string `json:"error"`
	Cached  bool   `json:"cached"`
}

type statuszReply struct {
	Backend string `json:"backend"`
	Points  struct {
		Computed        int64 `json:"computed"`
		ComputedIndexed int64 `json:"computed_indexed"`
		ComputedLive    int64 `json:"computed_live"`
		Resumed         int64 `json:"resumed"`
	} `json:"points"`
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
}

func submit(addr string, spec []byte) (string, error) {
	st, code, err := submitStatus(addr, spec)
	if err != nil {
		return "", err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d (%s)", code, st.Error)
	}
	return st.Key, nil
}

func submitStatus(addr string, spec []byte) (jobStatus, int, error) {
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return jobStatus{}, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, resp.StatusCode, err
	}
	return st, resp.StatusCode, nil
}

func status(addr, key string) (jobStatus, error) {
	b, err := fetch(addr, "/v1/jobs/"+key)
	if err != nil {
		return jobStatus{}, err
	}
	var st jobStatus
	err = json.Unmarshal(b, &st)
	return st, err
}

func statusz(addr string) (statuszReply, error) {
	b, err := fetch(addr, "/statusz")
	if err != nil {
		return statuszReply{}, err
	}
	var st statuszReply
	err = json.Unmarshal(b, &st)
	return st, err
}

func fetch(addr, path string) ([]byte, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return b, nil
}

// waitState polls the job until it reaches state (and, when minDone >
// 0, at least that many completed points), failing on a terminal state
// that isn't the target.
func waitState(addr, key, state string, minDone int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := status(addr, key)
		if err == nil {
			if st.State == state && st.Done >= minDone {
				return nil
			}
			terminal := st.State == "done" || st.State == "failed" || st.State == "aborted"
			if terminal && st.State != state {
				return fmt.Errorf("job %s settled as %q (%s) waiting for %q", key[:12], st.State, st.Error, state)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for job %s to reach %q", key[:12], state)
}
