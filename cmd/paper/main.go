// Command paper regenerates every table and figure of Horst's IPPS'96
// ServerNet/fractahedron paper from the library's analyses and the
// flit-level simulator.
//
// Usage:
//
//	paper [-only figure1|figure2|figure3|figure5|table1|table2|mesh|hypercube|fattree|deadlock|sweep|db|ablations]
//	      [-levels N] [-quick]
//
// With no flags it prints everything in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	only := flag.String("only", "", "run a single experiment: claims figure1 figure2 figure3 figure5 table1 mesh hypercube fattree table2 deadlock avoidance zoo tables linkclass silicon frontier locality permutations saturation failover chaos large sweep db ablations (default: all)")
	levels := flag.Int("levels", 3, "maximum fractahedron depth for Table 1 / Figure 5")
	quick := flag.Bool("quick", false, "reduce sizes for a fast smoke run")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<name>.txt")
	workers := flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS); results are identical for any value")
	shards := flag.Int("shards", 0, "engine shard count per simulation (<= 1 = sequential); results are identical for any value")
	flag.Parse()

	if err := cliutil.First(
		cliutil.Positive("levels", *levels),
		cliutil.NonNegative("workers", *workers),
		cliutil.NonNegative("shards", *shards),
	); err != nil {
		cliutil.Fail("paper", err)
	}

	stats := runner.NewStats()
	opts := []runner.Option{runner.Workers(*workers), runner.Shards(*shards), runner.WithStats(stats)}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", err)
			os.Exit(1)
		}
	}

	if *quick && *levels > 2 {
		*levels = 2
	}

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	str := func(s string) fmt.Stringer { return stringer(s) }

	// csvRows provides machine-readable series for -out CSVs, for the
	// sweep-shaped experiments.
	csvRows := map[string]func() (any, error){
		"sweep": func() (any, error) {
			rates := []float64{0.001, 0.005, 0.01, 0.02, 0.05}
			cycles := 2000
			if *quick {
				rates = []float64{0.002, 0.02}
				cycles = 500
			}
			return experiments.SimSweep(rates, cycles, 8, 1, opts...)
		},
		"locality": func() (any, error) {
			packets := 1500
			if *quick {
				packets = 400
			}
			return experiments.LocalitySweep([]float64{0, 0.3, 0.6, 0.9}, packets, 8, 1, opts...)
		},
		"saturation": func() (any, error) {
			cycles := 1200
			if *quick {
				cycles = 400
			}
			return experiments.Saturation(cycles, 8, 1, opts...)
		},
		"large": func() (any, error) {
			rates := []float64{0.002, 0.01, 0.03}
			cycles := 1500
			if *quick {
				rates = []float64{0.005}
				cycles = 300
			}
			return experiments.LargeSim(rates, cycles, 8, 1, opts...)
		},
		"permutations": func() (any, error) { return experiments.PermutationStudy(8, opts...) },
	}

	exps := []experiment{
		{"claims", func() (fmt.Stringer, error) {
			cs, err := experiments.Claims()
			return str(experiments.ClaimsMarkdown(cs)), err
		}},
		{"figure1", func() (fmt.Stringer, error) {
			r, err := experiments.Figure1()
			return r, err
		}},
		{"figure2", func() (fmt.Stringer, error) {
			r, err := experiments.Figure2()
			return r, err
		}},
		{"figure3", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure3()
			return str(experiments.Figure3String(rows)), err
		}},
		{"figure5", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure5(*levels)
			return str(experiments.Figure5String(rows)), err
		}},
		{"table1", func() (fmt.Stringer, error) {
			rows, err := experiments.Table1(*levels)
			return str(experiments.Table1String(rows)), err
		}},
		{"mesh", func() (fmt.Stringer, error) {
			rows, err := experiments.Section31Mesh()
			return str(experiments.Section31String(rows)), err
		}},
		{"hypercube", func() (fmt.Stringer, error) {
			return str(experiments.Section32String(experiments.Section32Hypercube())), nil
		}},
		{"fattree", func() (fmt.Stringer, error) {
			r, err := experiments.Section33FatTree()
			return r, err
		}},
		{"table2", func() (fmt.Stringer, error) {
			r, err := experiments.Table2()
			return r, err
		}},
		{"deadlock", func() (fmt.Stringer, error) {
			rows, err := experiments.DeadlockSummary()
			return str(experiments.DeadlockSummaryString(rows)), err
		}},
		{"avoidance", func() (fmt.Stringer, error) {
			rows, err := experiments.DeadlockAvoidanceComparison(32)
			return str(experiments.DeadlockAvoidanceString(rows)), err
		}},
		{"zoo", func() (fmt.Stringer, error) {
			rows, err := experiments.BackgroundTopologies()
			return str(experiments.BackgroundString(rows)), err
		}},
		{"tables", func() (fmt.Stringer, error) {
			rows, err := experiments.TableSizes()
			return str(experiments.TableSizesString(rows)), err
		}},
		{"linkclass", func() (fmt.Stringer, error) {
			rows, err := experiments.FractLinkClasses()
			return str(experiments.FractLinkClassesString(rows)), err
		}},
		{"silicon", func() (fmt.Stringer, error) {
			return str(experiments.SiliconBudgetString(experiments.SiliconBudget(4))), nil
		}},
		{"frontier", func() (fmt.Stringer, error) {
			rows, err := experiments.CostPerformanceFrontier()
			return str(experiments.FrontierString(rows)), err
		}},
		{"locality", func() (fmt.Stringer, error) {
			packets := 1500
			if *quick {
				packets = 400
			}
			rows, err := experiments.LocalitySweep([]float64{0, 0.3, 0.6, 0.9}, packets, 8, 1, opts...)
			return str(experiments.LocalitySweepString(rows)), err
		}},
		{"permutations", func() (fmt.Stringer, error) {
			rows, err := experiments.PermutationStudy(8, opts...)
			return str(experiments.PermutationStudyString(rows)), err
		}},
		{"saturation", func() (fmt.Stringer, error) {
			cycles := 1200
			if *quick {
				cycles = 400
			}
			rows, err := experiments.Saturation(cycles, 8, 1, opts...)
			return str(experiments.SaturationString(rows)), err
		}},
		{"failover", func() (fmt.Stringer, error) {
			r, err := experiments.FailoverSim(400, 8, 60, 2, opts...)
			return r, err
		}},
		{"chaos", func() (fmt.Stringer, error) {
			trials := 4
			if *quick {
				trials = 2
			}
			cr, err := experiments.ChaosRecovery(trials, 300, 4, 2, opts...)
			if err != nil {
				return nil, err
			}
			return str(experiments.ChaosRecoveryString(cr)), nil
		}},
		{"large", func() (fmt.Stringer, error) {
			rates := []float64{0.002, 0.01, 0.03}
			cycles := 1500
			if *quick {
				rates = []float64{0.005}
				cycles = 300
			}
			rows, err := experiments.LargeSim(rates, cycles, 8, 1, opts...)
			return str(experiments.LargeSimString(rows)), err
		}},
		{"sweep", func() (fmt.Stringer, error) {
			rates := []float64{0.001, 0.005, 0.01, 0.02, 0.05}
			cycles := 2000
			if *quick {
				rates = []float64{0.002, 0.02}
				cycles = 500
			}
			rows, err := experiments.SimSweep(rates, cycles, 8, 1, opts...)
			return str(experiments.SimSweepString(rows)), err
		}},
		{"db", func() (fmt.Stringer, error) {
			n := 16
			if *quick {
				n = 4
			}
			rows, err := experiments.DatabaseScenario(n, 16, opts...)
			return str(experiments.DatabaseScenarioString(rows)), err
		}},
		{"ablations", func() (fmt.Stringer, error) {
			out := ""
			fifo, err := experiments.AblationFIFODepth([]int{1, 2, 4, 8, 16}, 300, 8, 1, opts...)
			if err != nil {
				return nil, err
			}
			out += experiments.AblationFIFOString(fifo)
			radix, err := experiments.AblationRadix([]int{3, 4, 5}, opts...)
			if err != nil {
				return nil, err
			}
			out += "\n" + experiments.AblationRadixString(radix)
			parts, err := experiments.AblationFatTreePartitions(opts...)
			if err != nil {
				return nil, err
			}
			out += "\n" + experiments.AblationPartitionsString(parts)
			cable, err := experiments.AblationCableLength([]int{1, 2, 4}, 300, 8, 1, opts...)
			if err != nil {
				return nil, err
			}
			out += "\n" + experiments.AblationCableString(cable)
			return str(out), nil
		}},
	}

	ran := false
	for _, e := range exps {
		if *only != "" && e.name != *only {
			continue
		}
		ran = true
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		text := out.String()
		fmt.Println(text)
		if *outDir != "" {
			path := filepath.Join(*outDir, e.name+".txt")
			if err := os.WriteFile(path, []byte(text+"\n"), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "paper: %v\n", err)
				os.Exit(1)
			}
			if rowsFn := csvRows[e.name]; rowsFn != nil {
				rows, err := rowsFn()
				if err != nil {
					fmt.Fprintf(os.Stderr, "paper: %s: %v\n", e.name, err)
					os.Exit(1)
				}
				f, err := os.Create(filepath.Join(*outDir, e.name+".csv"))
				if err != nil {
					fmt.Fprintf(os.Stderr, "paper: %v\n", err)
					os.Exit(1)
				}
				err = experiments.WriteCSV(f, rows)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "paper: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "paper: unknown experiment %q\n", *only)
		os.Exit(2)
	}
	if stats.Summary().Runs > 0 {
		fmt.Fprintln(os.Stderr, stats)
	}
}

type stringer string

func (s stringer) String() string { return string(s) }
