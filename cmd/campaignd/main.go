// Command campaignd serves the deterministic experiment engines over
// HTTP/JSON: submit a sweep or chaos campaign, stream its rows as
// NDJSON in point order, and fetch the finished artifact from the
// content-addressed cache. Campaigns checkpoint every completed point;
// a killed server resumes them on restart and the final artifact is
// byte-identical to an uninterrupted run.
//
// Usage:
//
//	campaignd -addr 127.0.0.1:8080 -checkpoint /var/lib/campaignd/ckpt -cache /var/lib/campaignd/cache
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{key}, GET /v1/jobs/{key}/rows,
// GET /v1/artifacts/{key}, GET /statusz, GET /healthz. See README.md
// "Campaign server".
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	ckpt := flag.String("checkpoint", "", "checkpoint directory; campaigns found here resume on start (empty disables)")
	cache := flag.String("cache", "", "artifact cache directory (empty keeps artifacts in memory only)")
	queue := flag.Int("queue", 16, "admission bound on queued jobs; beyond it submissions get 503 + Retry-After")
	jobWorkers := flag.Int("job-workers", 2, "campaigns run concurrently")
	pointWorkers := flag.Int("point-workers", 0, "worker-pool size inside one campaign (0 = GOMAXPROCS); never changes results")
	shards := flag.Int("shards", 0, "engine shard count per point (<= 1 = sequential); never changes results")
	burst := flag.Int("rate-burst", 0, "token-bucket burst for job admission; 0 disables rate limiting")
	refill := flag.Int("rate-refill", 1, "tokens restored per refill tick")
	refillEvery := flag.Duration("refill-every", 100*time.Millisecond, "refill tick period")
	pointDelay := flag.Duration("point-delay", 0, "artificial per-point delay (smoke-test hook; wall-clock only, never changes a row)")
	backend := flag.String("backend", "indexed", "execution backend: indexed (sweep/chaos campaigns) | live (additionally accepts live concurrent-fabric jobs)")
	flag.Parse()

	if err := cliutil.First(
		cliutil.Backend("backend", *backend),
		cliutil.Positive("queue", *queue),
		cliutil.Positive("job-workers", *jobWorkers),
		cliutil.NonNegative("point-workers", *pointWorkers),
		cliutil.NonNegative("shards", *shards),
		cliutil.NonNegative("rate-burst", *burst),
		cliutil.Positive("rate-refill", *refill),
	); err != nil {
		cliutil.Fail("campaignd", err)
	}

	s, err := serve.New(serve.Config{
		Addr:          *addr,
		CheckpointDir: *ckpt,
		CacheDir:      *cache,
		QueueDepth:    *queue,
		JobWorkers:    *jobWorkers,
		PointWorkers:  *pointWorkers,
		Shards:        *shards,
		RateBurst:     *burst,
		RateRefill:    *refill,
		RefillEvery:   *refillEvery,
		PointDelay:    *pointDelay,
		Backend:       *backend,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		os.Exit(1)
	}
	// Subscribe before the address is announced: once a client can learn
	// the address it may send the shutdown signal, and an unsubscribed
	// SIGINT/SIGTERM would kill the process on its default disposition.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if err := s.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		os.Exit(1)
	}
	// The smoke driver parses this line for the bound address; keep the
	// "listening on " marker stable.
	fmt.Printf("campaignd listening on %s (engine %s)\n", s.Addr(), s.Revision())

	<-sig
	fmt.Println("campaignd shutting down")
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: shutdown: %v\n", err)
		os.Exit(1)
	}
}
