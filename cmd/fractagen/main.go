// Command fractagen builds a topology from a spec string, validates it, and
// prints its figures of merit — or a Graphviz DOT rendering with -dot.
//
// Usage:
//
//	fractagen -spec fat-fract:levels=2 [-dot] [-no-contention] [-no-bisection]
//
// Spec grammar (see internal/core.ParseSystem):
//
//	fat-fract:levels=2[,fanout][,group=4][,down=2]
//	thin-fract:levels=3[,fanout]
//	fattree:d=4,u=2,nodes=64 | tree:d=4,nodes=16
//	mesh:cols=6,rows=6,nodes=2 | hypercube:dim=3[,updown]
//	ring:size=4[,unsafe] | fullmesh:m=4[,ports=6]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/viz"
)

func main() {
	spec := flag.String("spec", "fat-fract:levels=2", "topology specification")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	svg := flag.Bool("svg", false, "emit a layered SVG drawing instead of statistics")
	bom := flag.Bool("bom", false, "emit the cable bill of materials (fractahedrons only)")
	tableOut := flag.String("table-image", "", "write the compiled routing-table image to a file")
	noContention := flag.Bool("no-contention", false, "skip the contention matching")
	noBisection := flag.Bool("no-bisection", false, "skip the bisection search")
	flag.Parse()

	sys, name, err := core.ParseSystem(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fractagen: %v\n", err)
		os.Exit(1)
	}
	if *dot {
		if err := sys.Net.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fractagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *svg {
		var err error
		switch c := sys.Concrete.(type) {
		case *topology.Fractahedron:
			err = viz.WriteFractahedronSVG(os.Stdout, c, viz.Options{})
		case *topology.FatTree:
			err = viz.WriteFatTreeSVG(os.Stdout, c, viz.Options{})
		default:
			root := topology.DeviceID(-1)
			for _, d := range sys.Net.Devices() {
				if d.Kind == topology.Router {
					root = d.ID
					break
				}
			}
			err = viz.WriteSVG(os.Stdout, sys.Net, root, viz.Options{})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fractagen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bom {
		f, ok := sys.Concrete.(*topology.Fractahedron)
		if !ok {
			fmt.Fprintln(os.Stderr, "fractagen: -bom requires a fractahedron spec")
			os.Exit(2)
		}
		fmt.Print(topology.BOMString(f.CableBOM()))
		return
	}
	if *tableOut != "" {
		img := routing.CompileImage(sys.Tables)
		if err := routing.VerifyImage(img, sys.Tables); err != nil {
			fmt.Fprintf(os.Stderr, "fractagen: %v\n", err)
			os.Exit(1)
		}
		out, err := os.Create(*tableOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fractagen: %v\n", err)
			os.Exit(1)
		}
		n, err := img.WriteTo(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fractagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d routing-table entries (%d bytes) to %s\n", img.Entries(), n, *tableOut)
		return
	}

	fmt.Printf("%s\n", name)
	fmt.Printf("  nodes=%d routers=%d links=%d channels=%d\n",
		sys.Net.NumNodes(), sys.Net.NumRouters(), sys.Net.NumLinks(), sys.Net.NumChannels())

	a, err := sys.Analyze(core.AnalyzeOptions{
		SkipContention: *noContention,
		SkipBisection:  *noBisection,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fractagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  routing: %s, %s\n", sys.Tables.Algorithm, a.Hops)
	fmt.Printf("  deadlock: %s\n", a.Deadlock)
	if !*noContention {
		fmt.Printf("  %s\n", a.Contention.String(sys.Net))
	}
	if !*noBisection {
		exact := "heuristic upper bound"
		if a.Bisection.Exact {
			exact = "exact"
		}
		fmt.Printf("  bisection bandwidth: %d links (%s)\n", a.Bisection.Cut, exact)
	}
	enabled, disabled := sys.Disables.Counts()
	fmt.Printf("  path disables: %d turns enabled, %d disabled\n", enabled, disabled)
	fmt.Printf("  cost: %d routers (%0.3f per node), %d inter-router cables\n",
		a.Cost.Routers, a.Cost.RoutersPerNode, a.Cost.InterRouter)
}
