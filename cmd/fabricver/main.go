// Command fabricver statically verifies whole fabrics: for a topology ×
// routing pair it proves CDG acyclicity from the concrete routing tables,
// routing-table consistency (every entry live, within the analytical hop
// bound), full endpoint reachability (the paper's CPU→disk database
// pattern), exact path-disable enforcement, and single-fault
// survivability (every link and every router failed in turn, the degraded
// fabric re-routed and re-proved). It emits a machine-readable JSON
// certificate per spec.
//
// Usage:
//
//	fabricver -spec fat-fract:levels=2
//	fabricver -spec ring:size=4,unsafe         # exits 3, prints the minimal cycle
//	fabricver -all                             # certify every built-in pair
//	fabricver -all -json -certdir certs        # write certs/<spec>.json each
//
// Exit status: 0 when every check passes, 1 on a build/usage error, 3 when
// any verification check is violated (matching deadlockcheck).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fabricver"
)

func main() {
	os.Exit(run())
}

func run() int {
	spec := flag.String("spec", "", "verify one topology specification (see fractagen)")
	all := flag.Bool("all", false, "verify every built-in topology × routing pair")
	jsonOut := flag.Bool("json", false, "print certificates as JSON instead of the human rendering")
	certDir := flag.String("certdir", "", "also write one <spec>.json certificate per spec into this directory")
	noFaults := flag.Bool("no-faults", false, "skip the single-fault enumeration")
	workers := flag.Int("workers", 0, "fault-enumeration worker pool size (0 = GOMAXPROCS; result is identical)")
	flag.Parse()

	if *all == (*spec != "") {
		fmt.Fprintln(os.Stderr, "fabricver: exactly one of -spec or -all is required")
		flag.Usage()
		return 1
	}
	opt := fabricver.Options{Workers: *workers, SkipFaults: *noFaults}

	specs := []string{*spec}
	if *all {
		specs = core.BuiltinSpecs()
	}

	if *certDir != "" {
		if err := os.MkdirAll(*certDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "fabricver: %v\n", err)
			return 1
		}
	}

	violated := false
	certs := make([]fabricver.Certificate, 0, len(specs))
	for _, s := range specs {
		cert, err := fabricver.VerifySpec(s, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabricver: %s: %v\n", s, err)
			return 1
		}
		certs = append(certs, cert)
		if !cert.OK {
			violated = true
		}
		if *certDir != "" {
			b, err := fabricver.MarshalCertificate(cert)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fabricver: %v\n", err)
				return 1
			}
			path := filepath.Join(*certDir, fabricver.CertFileName(s))
			if err := os.WriteFile(path, b, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "fabricver: %v\n", err)
				return 1
			}
		}
	}

	switch {
	case *jsonOut && *all:
		// One JSON array for the whole matrix.
		fmt.Print("[\n")
		for i, cert := range certs {
			b, err := fabricver.MarshalCertificate(cert)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fabricver: %v\n", err)
				return 1
			}
			sep := ","
			if i == len(certs)-1 {
				sep = ""
			}
			fmt.Printf("%s%s", string(b[:len(b)-1]), sep+"\n")
		}
		fmt.Print("]\n")
	case *jsonOut:
		b, err := fabricver.MarshalCertificate(certs[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabricver: %v\n", err)
			return 1
		}
		fmt.Print(string(b))
	case *all:
		for _, cert := range certs {
			fmt.Println(cert.Summary())
		}
		if violated {
			fmt.Printf("=> FAILED: violations in the matrix above\n")
		} else {
			fmt.Printf("=> all %d topology-routing pairs verified: acyclic CDG, consistent tables, full reachability, exact disables, single-fault survivable\n", len(certs))
		}
	default:
		certs[0].Render(os.Stdout)
	}

	if violated {
		return 3
	}
	return 0
}
