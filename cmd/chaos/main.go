// Command chaos runs the online fault-recovery campaign on the dual
// fat-fractahedron pair: every trial injects a seeded fault plan (a
// permanent link kill, a transient link flap, and a router kill) into the
// live X fabric, and the recovery engine detects the damage through
// end-node timeouts, hot-swaps re-certified degraded routing tables into
// the running simulator, and fails timed-out transfers over to the
// co-simulated Y fabric with capped exponential backoff.
//
// Usage:
//
//	chaos [-trials N] [-packets N] [-flits N] [-seed S] [-workers W] [-json PATH]
//
// The campaign is deterministic: equal seeds produce byte-identical JSON
// for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	trials := flag.Int("trials", 4, "independent chaos trials")
	packets := flag.Int("packets", 300, "transfers offered per trial")
	flits := flag.Int("flits", 4, "flits per transfer")
	seed := flag.Int64("seed", 2, "campaign seed; equal seeds reproduce the campaign exactly")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS); results are identical for any value")
	shards := flag.Int("shards", 0, "engine shard count per trial (<= 1 = sequential); results are identical for any value")
	jsonPath := flag.String("json", "", "write the campaign JSON to this path (\"-\" for stdout)")
	flag.Parse()

	if err := cliutil.First(
		cliutil.Positive("trials", *trials),
		cliutil.Positive("packets", *packets),
		cliutil.Positive("flits", *flits),
		cliutil.NonNegative("workers", *workers),
		cliutil.NonNegative("shards", *shards),
	); err != nil {
		cliutil.Fail("chaos", err)
	}

	stats := runner.NewStats()
	cr, err := experiments.ChaosRecovery(*trials, *packets, *flits, *seed,
		runner.Workers(*workers), runner.Shards(*shards), runner.WithStats(stats))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.ChaosRecoveryString(cr))

	if *jsonPath != "" {
		data, err := cr.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
	}
	if stats.Summary().Runs > 0 {
		fmt.Fprintln(os.Stderr, stats)
	}
}
