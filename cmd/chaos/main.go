// Command chaos runs the online fault-recovery campaign on the dual
// fat-fractahedron pair: every trial injects a seeded fault plan (a
// permanent link kill, a transient link flap, and a router kill) into the
// live X fabric, and the recovery engine detects the damage through
// end-node timeouts, hot-swaps re-certified degraded routing tables into
// the running simulator, and fails timed-out transfers over to the
// co-simulated Y fabric with capped exponential backoff.
//
// Usage:
//
//	chaos [-trials N] [-packets N] [-flits N] [-seed S] [-workers W] [-json PATH]
//	chaos -backend live [-trials N] [-packets N] [-flits N] [-seed S]
//
// The campaign is deterministic: equal seeds produce byte-identical JSON
// for any worker count.
//
// With -backend live each trial runs the concurrent goroutine fabric
// (internal/livefabric) on the fat fractahedron and kills a seeded link
// mid-flight: the fabric must drain without wedging or leaking, every
// packet accounted delivered or dropped. Wall-clock fault timing makes
// the delivered/dropped split schedule-dependent, so -json is refused
// there — the live campaign is a robustness smoke, not an artifact.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/livefabric"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	trials := flag.Int("trials", 4, "independent chaos trials")
	packets := flag.Int("packets", 300, "transfers offered per trial")
	flits := flag.Int("flits", 4, "flits per transfer")
	seed := flag.Int64("seed", 2, "campaign seed; equal seeds reproduce the campaign exactly")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS); results are identical for any value")
	shards := flag.Int("shards", 0, "engine shard count per trial (<= 1 = sequential); results are identical for any value")
	jsonPath := flag.String("json", "", "write the campaign JSON to this path (\"-\" for stdout)")
	backend := flag.String("backend", "indexed", "execution backend: indexed (recovery campaign) | live (concurrent-fabric fault smoke)")
	flag.Parse()

	if err := cliutil.First(
		cliutil.Backend("backend", *backend),
		cliutil.Positive("trials", *trials),
		cliutil.Positive("packets", *packets),
		cliutil.Positive("flits", *flits),
		cliutil.NonNegative("workers", *workers),
		cliutil.NonNegative("shards", *shards),
	); err != nil {
		cliutil.Fail("chaos", err)
	}

	if *backend == "live" {
		if *jsonPath != "" {
			cliutil.Fail("chaos", fmt.Errorf("-json requires the indexed backend: live fault timing is wall-clock, its rows are not byte-deterministic"))
		}
		liveCampaign(*trials, *packets, *flits, *seed)
		return
	}

	stats := runner.NewStats()
	cr, err := experiments.ChaosRecovery(*trials, *packets, *flits, *seed,
		runner.Workers(*workers), runner.Shards(*shards), runner.WithStats(stats))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.ChaosRecoveryString(cr))

	if *jsonPath != "" {
		data, err := cr.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
	}
	if stats.Summary().Runs > 0 {
		fmt.Fprintln(os.Stderr, stats)
	}
}

// liveCampaign is the live-backend fault smoke: per trial, a seeded
// uniform workload on the fat fractahedron with one seeded link killed
// mid-flight. The fabric must never wedge (the degraded topology stays
// inside the certified disable set) and must account every packet as
// delivered or dropped. Exit 1 on any violation.
func liveCampaign(trials, packets, flits int, seed int64) {
	sys, name, err := core.ParseSystem("fat-fract:levels=2")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("live fault smoke on %s: %d trials x %d packets x %d flits\n",
		name, trials, packets, flits)
	failed := false
	for i := 0; i < trials; i++ {
		rng := runner.RNG(seed, i)
		specs := workload.UniformRandom(rng, sys.Net.NumNodes(), packets, flits, 0)
		f := livefabric.New(sys.Net, sys.Disables, livefabric.Config{
			VirtualChannels: sys.Tables.NumVC(),
			// A small wire delay stretches the run so the kill lands
			// while worms are in flight.
			LinkDelay: 200 * time.Microsecond,
		})
		if err := f.AddBatch(sys.Tables, specs); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		link := topology.LinkID(rng.Intn(sys.Net.NumLinks()))
		delay := time.Duration(rng.Intn(4)+1) * time.Millisecond
		timer := time.AfterFunc(delay, func() { f.KillLink(link) })
		res := f.Run(context.Background())
		timer.Stop()
		ok := !res.Deadlocked && res.Delivered+res.Dropped == len(specs)
		fmt.Printf("  trial %2d: kill link %3d @%5s delivered=%4d dropped=%3d deadlocked=%v ok=%v\n",
			i, link, delay, res.Delivered, res.Dropped, res.Deadlocked, ok)
		if res.Deadlocked {
			for _, w := range res.Witness {
				fmt.Printf("    wait-for: %s\n", w)
			}
		}
		failed = failed || !ok
	}
	if failed {
		fmt.Fprintln(os.Stderr, "chaos: live fault smoke FAILED")
		os.Exit(1)
	}
	fmt.Println("live fault smoke passed: no wedges, no lost packets")
}
