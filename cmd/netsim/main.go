// Command netsim drives the flit-level wormhole simulator over a topology
// and a synthetic workload and reports latency, throughput, drops and
// deadlock status.
//
// Usage:
//
//	netsim -spec fat-fract:levels=2 -pattern uniform -packets 2000 -flits 8
//	netsim -spec ring:size=4,unsafe -pattern ringdeadlock -flits 32
//	netsim -spec fattree:d=4,u=2,nodes=64 -pattern bernoulli -rate 0.02 -cycles 5000
//	netsim -spec fat-fract:levels=2 -pattern db
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	spec := flag.String("spec", "fat-fract:levels=2", "topology specification (see fractagen)")
	pattern := flag.String("pattern", "uniform", "uniform | bernoulli | bitcomp | hotspot | db | ringdeadlock")
	packets := flag.Int("packets", 1000, "packet count (uniform/hotspot)")
	flits := flag.Int("flits", 8, "flits per packet")
	rate := flag.Float64("rate", 0.01, "per-node start probability per cycle (bernoulli)")
	cycles := flag.Int("cycles", 2000, "injection window (bernoulli) / spread (uniform)")
	fifo := flag.Int("fifo", 4, "input FIFO depth in flits, per virtual channel")
	vcs := flag.Int("vc", 1, "virtual channels per physical channel")
	linkLat := flag.Int("link-latency", 1, "flit propagation cycles per link (cable length)")
	timeout := flag.Int("timeout", 0, "enable timeout/discard/retry recovery after this many stalled cycles")
	seed := flag.Int64("seed", 1, "workload random seed")
	unrestricted := flag.Bool("unrestricted", false, "disable path-disable enforcement")
	flag.Parse()

	sys, name, err := core.ParseSystem(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	n := sys.Net.NumNodes()

	var specs []sim.PacketSpec
	switch *pattern {
	case "uniform":
		specs = workload.UniformRandom(rng, n, *packets, *flits, *cycles)
	case "bernoulli":
		specs = workload.Bernoulli(rng, n, *cycles, *flits, *rate)
	case "bitcomp":
		specs = workload.Permutation(workload.BitComplement(n), *flits)
	case "hotspot":
		specs = workload.Hotspot(rng, n, *packets, *flits, *cycles, 0, 0.3)
	case "db":
		cpus := []int{0, 1, 2, 3}
		disks := []int{n - 4, n - 3, n - 2, n - 1}
		specs = workload.DatabaseQuery(cpus, disks, *packets/4, *flits)
	case "ringdeadlock":
		specs = workload.Transfers(workload.RingDeadlockSet(n), *flits)
	default:
		fmt.Fprintf(os.Stderr, "netsim: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	cfg := sim.Config{FIFODepth: *fifo, VirtualChannels: *vcs, LinkLatency: *linkLat, TimeoutCycles: *timeout, DeadlockThreshold: 2000}
	var res sim.Result
	if *unrestricted {
		res, err = sys.SimulateUnrestricted(specs, cfg)
	} else {
		res, err = sys.Simulate(specs, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s, pattern=%s, %d packets x %d flits, FIFO depth %d\n",
		name, *pattern, len(specs), *flits, *fifo)
	fmt.Printf("  cycles=%d delivered=%d dropped=%d deadlocked=%v\n",
		res.Cycles, res.Delivered, res.Dropped, res.Deadlocked)
	if res.Delivered > 0 {
		fmt.Printf("  latency avg=%.1f max=%d cycles, throughput=%.3f flits/cycle\n",
			res.AvgLatency, res.MaxLatency, res.ThroughputFPC)
	}
	fmt.Printf("  in-order violations: %d, retries: %d\n", res.InOrderViolations, res.Retries)
	if res.Deadlocked {
		fmt.Println("  wait-for cycle:")
		for _, ch := range res.WaitCycle {
			fmt.Printf("    %s\n", sys.Net.ChannelString(ch))
		}
		os.Exit(3)
	}
}
