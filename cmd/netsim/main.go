// Command netsim drives the flit-level wormhole simulator over a topology
// and a synthetic workload and reports latency, throughput, drops and
// deadlock status.
//
// Usage:
//
//	netsim -spec fat-fract:levels=2 -pattern uniform -packets 2000 -flits 8
//	netsim -spec ring:size=4,unsafe -pattern ringdeadlock -flits 32
//	netsim -spec fattree:d=4,u=2,nodes=64 -pattern bernoulli -rate 0.02 -cycles 5000
//	netsim -spec fat-fract:levels=2 -pattern db
//	netsim -spec fat-fract:levels=2 -pattern bernoulli -rate 0.02 -runs 8 -workers 4
//	netsim -spec fat-fract:levels=2 -fail-link 12 -fail-cycle 100
//	netsim -spec fat-fract:levels=2 -backend live -packets 500
//	netsim -spec ring:size=4,unsafe -backend live -pattern ringdeadlock -flits 64 -wire-delay 200us
//
// With -backend live the workload executes on the concurrent goroutine
// fabric (internal/livefabric) instead of the cycle-level engine:
// routers are goroutines, links are bounded channels, and a wedged run
// is reported with the runtime wait-for cycle witness (exit 3). The
// cycle-denominated knobs (-link-latency, -timeout, -shards,
// -fail-cycle) do not apply there; -fail-link kills the link at startup,
// and -wire-delay paces each flit by a wall-clock propagation time —
// set it on contention demos so every worm is in flight at once and the
// circular wait cannot be dodged by a fast scheduler draining worms
// one by one.
//
// With -runs N > 1 the same configuration executes N times over a worker
// pool, run i drawing its workload from the seed derived from (-seed, i);
// results are printed in run order and are identical for any -workers
// value. Patterns without randomness (bitcomp, ringdeadlock, db) repeat
// the same run N times.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/livefabric"
	"repro/internal/router"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	spec := flag.String("spec", "fat-fract:levels=2", "topology specification (see fractagen)")
	pattern := flag.String("pattern", "uniform", "uniform | bernoulli | bitcomp | hotspot | db | ringdeadlock")
	packets := flag.Int("packets", 1000, "packet count (uniform/hotspot)")
	flits := flag.Int("flits", 8, "flits per packet")
	rate := flag.Float64("rate", 0.01, "per-node start probability per cycle (bernoulli)")
	cycles := flag.Int("cycles", 2000, "injection window (bernoulli) / spread (uniform)")
	fifo := flag.Int("fifo", 4, "input FIFO depth in flits, per virtual channel")
	vcs := flag.Int("vc", 1, "virtual channels per physical channel")
	linkLat := flag.Int("link-latency", 1, "flit propagation cycles per link (cable length)")
	timeout := flag.Int("timeout", 0, "enable timeout/discard/retry recovery after this many stalled cycles")
	seed := flag.Int64("seed", 1, "workload random seed")
	unrestricted := flag.Bool("unrestricted", false, "disable path-disable enforcement")
	failLink := flag.Int("fail-link", -1, "link ID to fail mid-run (-1 = none; see fractagen for link IDs)")
	failCycle := flag.Int("fail-cycle", 0, "cycle at which -fail-link dies")
	runs := flag.Int("runs", 1, "independent runs; run i derives its seed from (-seed, i)")
	workers := flag.Int("workers", 0, "worker-pool size for -runs fan-out (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "engine shard count per run (<= 1 = sequential); results are identical for any value")
	backend := flag.String("backend", "indexed", "execution backend: indexed (cycle-level engine) | live (concurrent goroutine fabric)")
	wireDelay := flag.Duration("wire-delay", 0, "live backend only: wall-clock flit propagation per link; paces worms so contention demos wedge on any scheduler")
	flag.Parse()

	if err := cliutil.First(
		cliutil.Backend("backend", *backend),
		cliutil.Positive("runs", *runs),
		cliutil.NonNegative("workers", *workers),
		cliutil.NonNegative("shards", *shards),
		cliutil.Positive("flits", *flits),
		cliutil.Positive("fifo", *fifo),
		cliutil.Positive("vc", *vcs),
	); err != nil {
		cliutil.Fail("netsim", err)
	}

	sys, name, err := core.ParseSystem(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}
	n := sys.Net.NumNodes()

	buildSpecs := func(rng *rand.Rand) ([]sim.PacketSpec, error) {
		switch *pattern {
		case "uniform":
			return workload.UniformRandom(rng, n, *packets, *flits, *cycles), nil
		case "bernoulli":
			return workload.Bernoulli(rng, n, *cycles, *flits, *rate), nil
		case "bitcomp":
			return workload.Permutation(workload.BitComplement(n), *flits), nil
		case "hotspot":
			return workload.Hotspot(rng, n, *packets, *flits, *cycles, 0, 0.3), nil
		case "db":
			cpus := []int{0, 1, 2, 3}
			disks := []int{n - 4, n - 3, n - 2, n - 1}
			return workload.DatabaseQuery(cpus, disks, *packets/4, *flits), nil
		case "ringdeadlock":
			return workload.Transfers(workload.RingDeadlockSet(n), *flits), nil
		default:
			return nil, fmt.Errorf("unknown pattern %q", *pattern)
		}
	}

	if *backend == "live" {
		dis := sys.Disables
		if *unrestricted {
			dis = router.AllowAll(sys.Net)
		}
		if *timeout != 0 || *shards > 1 || *linkLat > 1 {
			fmt.Fprintln(os.Stderr, "netsim: -timeout, -shards and -link-latency are cycle-denominated; the live backend ignores them")
		}
		fmt.Printf("%s, pattern=%s, backend=live, %d runs x %d flits/packet, FIFO depth %d\n",
			name, *pattern, *runs, *flits, *fifo)
		deadlocked := false
		for i := 0; i < *runs; i++ {
			specs, err := buildSpecs(runner.RNG(*seed, i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
				os.Exit(2)
			}
			f := livefabric.New(sys.Net, dis, livefabric.Config{FIFODepth: *fifo, VirtualChannels: *vcs, LinkDelay: *wireDelay})
			if *failLink >= 0 {
				f.KillLink(topology.LinkID(*failLink))
			}
			if err := f.AddBatch(sys.Tables, specs); err != nil {
				fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
				os.Exit(1)
			}
			res := f.Run(context.Background())
			fmt.Printf("  run %2d: injected=%5d delivered=%5d dropped=%3d in-order violations=%d deadlocked=%v\n",
				i, res.Injected, res.Delivered, res.Dropped, res.InOrderViolations, res.Deadlocked)
			if res.Deadlocked {
				deadlocked = true
				fmt.Println("  wait-for cycle:")
				for _, w := range res.Witness {
					fmt.Printf("    %s\n", w)
				}
			}
		}
		if deadlocked {
			os.Exit(3)
		}
		return
	}

	if *wireDelay > 0 {
		fmt.Fprintln(os.Stderr, "netsim: -wire-delay is wall-clock-denominated; the indexed backend ignores it (use -link-latency)")
	}
	cfg := sim.Config{FIFODepth: *fifo, VirtualChannels: *vcs, LinkLatency: *linkLat, TimeoutCycles: *timeout, DeadlockThreshold: 2000, Shards: *shards}
	simulate := func(specs []sim.PacketSpec) (sim.Result, error) {
		dis := sys.Disables
		if *unrestricted {
			dis = router.AllowAll(sys.Net)
		}
		sm := sim.New(sys.Net, dis, cfg)
		if *failLink >= 0 {
			if err := sm.ScheduleFault(sim.LinkFault{Cycle: *failCycle, Link: topology.LinkID(*failLink)}); err != nil {
				return sim.Result{}, err
			}
		}
		if err := sm.AddBatch(sys.Tables, specs); err != nil {
			return sim.Result{}, err
		}
		return sm.Run(), nil
	}

	if *runs <= 1 {
		specs, err := buildSpecs(rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(2)
		}
		res, err := simulate(specs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s, pattern=%s, %d packets x %d flits, FIFO depth %d\n",
			name, *pattern, len(specs), *flits, *fifo)
		report(sys, res)
		return
	}

	type run struct {
		specs int
		res   sim.Result
	}
	stats := runner.NewStats()
	results, err := runner.Map(runner.Config{Workers: *workers, Stats: stats},
		*runs, func(i int) (run, error) {
			specs, err := buildSpecs(runner.RNG(*seed, i))
			if err != nil {
				return run{}, err
			}
			start := time.Now()
			res, err := simulate(specs)
			if err != nil {
				return run{}, err
			}
			stats.Record(runner.Stat{
				Label:     fmt.Sprintf("run %d", i),
				Cycles:    res.Cycles,
				FlitMoves: res.FlitMoves(),
				Wall:      time.Since(start),
			})
			return run{specs: len(specs), res: res}, nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s, pattern=%s, %d runs x %d flits/packet, FIFO depth %d\n",
		name, *pattern, *runs, *flits, *fifo)
	deadlocked := false
	var cyc, delivered int
	var tput float64
	for i, r := range results {
		fmt.Printf("  run %2d: cycles=%6d delivered=%5d dropped=%3d latency avg=%6.1f throughput=%.3f deadlocked=%v\n",
			i, r.res.Cycles, r.res.Delivered, r.res.Dropped, r.res.AvgLatency, r.res.ThroughputFPC, r.res.Deadlocked)
		cyc += r.res.Cycles
		delivered += r.res.Delivered
		tput += r.res.ThroughputFPC
		deadlocked = deadlocked || r.res.Deadlocked
	}
	fmt.Printf("  mean: cycles=%.0f delivered=%.0f throughput=%.3f\n",
		float64(cyc)/float64(len(results)), float64(delivered)/float64(len(results)), tput/float64(len(results)))
	fmt.Fprintln(os.Stderr, stats)
	if deadlocked {
		os.Exit(3)
	}
}

// report prints the single-run result in the traditional format.
func report(sys *core.System, res sim.Result) {
	fmt.Printf("  cycles=%d delivered=%d dropped=%d deadlocked=%v\n",
		res.Cycles, res.Delivered, res.Dropped, res.Deadlocked)
	if res.Delivered > 0 {
		fmt.Printf("  latency avg=%.1f max=%d cycles, throughput=%.3f flits/cycle\n",
			res.AvgLatency, res.MaxLatency, res.ThroughputFPC)
	}
	fmt.Printf("  in-order violations: %d, retries: %d\n", res.InOrderViolations, res.Retries)
	if res.Deadlocked {
		fmt.Println("  wait-for cycle:")
		for _, ch := range res.WaitCycle {
			fmt.Printf("    %s\n", sys.Net.ChannelString(ch))
		}
		os.Exit(3)
	}
}
