package main

import (
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestWriteJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := writeJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	// An empty run must be `[]`, not `null`: consumers parse an array.
	if b.String() != "[]\n" {
		t.Fatalf("writeJSON(nil) = %q, want \"[]\\n\"", b.String())
	}
}

func TestWriteJSONFields(t *testing.T) {
	var b strings.Builder
	err := writeJSON(&b, []analysis.Finding{{
		Analyzer: "nondet",
		Position: token.Position{Filename: "internal/sim/sim.go", Line: 7, Column: 3},
		Message:  "global math/rand",
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`"file": "internal/sim/sim.go"`,
		`"line": 7`,
		`"col": 3`,
		`"analyzer": "nondet"`,
		`"message": "global math/rand"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %s:\n%s", want, got)
		}
	}
	if !strings.HasSuffix(got, "\n") {
		t.Error("output does not end in newline")
	}
}
