// Command simlint runs the repository's determinism-contract analyzers
// (internal/analyzers) over Go packages. It is both a standalone
// multichecker and a `go vet` tool:
//
//	simlint ./...                      # multichecker over package patterns
//	simlint -enable nondet,maporder ./...
//	simlint -json ./...                # findings as a sorted JSON array
//	simlint -certify                   # emit the concurrency code certificate
//	simlint -ignores                   # inventory all //simlint:ignore directives
//	go vet -vettool=$(which simlint) ./...   # unit-checker protocol
//
// Findings print as file:line:col: message (analyzer), deduplicated
// across loaded packages and sorted with working-directory-relative
// paths, so the output is byte-stable for CI diffing. The exit status is
// 0 when clean, 1 on findings, 2 on a driver error. A finding is
// suppressed by an inline `//simlint:ignore <names> — <why>` directive on
// the same or preceding line; the reason is mandatory (a bare directive
// is itself a finding); see README.md "Determinism contract".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/codecert"
	"repro/internal/analysis/load"
	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	enable := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	certify := fs.Bool("certify", false, "emit the concurrency code certificate for ./internal/... and exit 0 iff it proves clean")
	ignores := fs.Bool("ignores", false, "list every //simlint:ignore directive in the module; exit 1 on bare or reasonless ones")
	jsonOut := fs.Bool("json", false, "emit findings as a sorted JSON array instead of text (same exit codes)")
	version := fs.Bool("V", false, "print version and exit (go vet tool-ID handshake)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-enable names] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Static checks for the simulation determinism contract.\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, strings.SplitN(a.Doc, ";", 2)[0])
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}

	// `go vet` probes its tool with -V=full before handing it vet.cfg
	// files; answer the handshake before normal flag parsing (the flag
	// package would reject "-V=full" as a non-boolean value for -V).
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// Format contract (cmd/go/internal/work.toolID): at least
			// three fields, "<name> version <non-devel-version>".
			fmt.Printf("simlint version v1.0.0-%s\n", buildRevision())
			return 0
		case "-flags", "--flags":
			// go vet probes for forwardable analyzer flags
			// (cmd/go/internal/vet.vetFlags); simlint forwards none.
			fmt.Println("[]")
			return 0
		}
	}

	// In vet-tool mode the go command passes analyzer flags we do not
	// define (e.g. -unsafeptr=false) followed by a *.cfg path. Strip
	// unknown flags so both invocation styles share one entry point.
	cfgFile, rest := splitVetInvocation(args)
	if cfgFile != "" {
		if err := runUnitChecker(cfgFile); err != nil {
			if diags, ok := err.(diagnosticsFound); ok {
				fmt.Fprint(os.Stderr, string(diags))
				return 1
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
		return 0
	}

	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if *version {
		fmt.Printf("simlint version v1.0.0-%s\n", buildRevision())
		return 0
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	if *certify {
		return runCertify(wd)
	}
	if *ignores {
		return runIgnores(wd)
	}

	suite, ok := analyzers.ByName(splitNames(*enable))
	if !ok {
		fmt.Fprintf(os.Stderr, "simlint: unknown analyzer in -enable=%q\n", *enable)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}

	// Collect across packages, then sort, dedup and relativize: several
	// patterns can load the same package, and CI byte-compares the output.
	var all []analysis.Finding
	for _, pkg := range pkgs {
		findings, _, err := analysis.Run(suite, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", pkg.ImportPath, err)
			return 2
		}
		all = append(all, findings...)
	}
	analysis.SortFindings(all)
	all = analysis.Dedup(all)
	for i := range all {
		all[i].Position.Filename = relPath(wd, all[i].Position.Filename)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, all); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range all {
			fmt.Printf("%s\n", f)
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable diagnostic record: deterministic
// field order, working-directory-relative slash paths, sorted by the
// same comparator as the text output, so CI can archive and diff it.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders the findings (already sorted, deduplicated and
// relativized) as an indented JSON array with a trailing newline — `[]`,
// never `null`, when clean.
func writeJSON(w io.Writer, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Col:      f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// runCertify builds the concurrency code certificate, prints it to
// stdout, and reports success only when the certificate proves clean.
func runCertify(wd string) int {
	cert, err := codecert.Build(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	b, err := codecert.Marshal(cert)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	if _, err := os.Stdout.Write(b); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	if !cert.OK {
		fmt.Fprintf(os.Stderr, "simlint: certificate is NOT clean (see findings / ok:false entries above)\n")
		return 1
	}
	return 0
}

// runIgnores inventories every //simlint:ignore directive in the module
// (testdata, vendor and hidden trees excluded — fixtures exercise broken
// directives on purpose) and fails on bare or reasonless ones.
func runIgnores(wd string) int {
	root, err := load.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	exit := 0
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, dir := range analysis.ParseDirectives(fset, []*ast.File{file}) {
			site := fmt.Sprintf("%s:%d", relPath(root, dir.Pos.Filename), dir.Pos.Line)
			if dir.Err != "" {
				fmt.Printf("%s: MALFORMED: %s\n", site, dir.Err)
				exit = 1
				continue
			}
			fmt.Printf("%s: %s — %s\n", site, strings.Join(dir.Analyzers, ","), dir.Reason)
		}
		return nil
	})
	if walkErr != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", walkErr)
		return 2
	}
	return exit
}

// relPath renders path relative to base with forward slashes, leaving it
// untouched when no relative form exists.
func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil {
		return filepath.ToSlash(rel)
	}
	return path
}

// splitVetInvocation detects the unit-checker calling convention: the
// final argument is a *.cfg file produced by the go command. Everything
// else on that command line is vet flags meant for other analyzers.
func splitVetInvocation(args []string) (cfgFile string, rest []string) {
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return args[n-1], nil
	}
	return "", args
}

func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func buildRevision() string {
	// A stable pseudo-revision: the go command only requires a non-"devel"
	// third field to derive a tool ID; content-addressing of the binary
	// itself is handled by the build cache.
	return "simlint"
}
