// Command simlint runs the repository's determinism-contract analyzers
// (internal/analyzers) over Go packages. It is both a standalone
// multichecker and a `go vet` tool:
//
//	simlint ./...                      # multichecker over package patterns
//	simlint -enable nondet,maporder ./...
//	go vet -vettool=$(which simlint) ./...   # unit-checker protocol
//
// Findings print as file:line:col: message (analyzer). The exit status is
// 0 when clean, 1 on findings, 2 on a driver error. A finding is
// suppressed by an inline `//simlint:ignore <names> <why>` directive on
// the same or preceding line; see README.md "Determinism contract".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	enable := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	version := fs.Bool("V", false, "print version and exit (go vet tool-ID handshake)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-enable names] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Static checks for the simulation determinism contract.\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, strings.SplitN(a.Doc, ";", 2)[0])
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}

	// `go vet` probes its tool with -V=full before handing it vet.cfg
	// files; answer the handshake before normal flag parsing (the flag
	// package would reject "-V=full" as a non-boolean value for -V).
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// Format contract (cmd/go/internal/work.toolID): at least
			// three fields, "<name> version <non-devel-version>".
			fmt.Printf("simlint version v1.0.0-%s\n", buildRevision())
			return 0
		case "-flags", "--flags":
			// go vet probes for forwardable analyzer flags
			// (cmd/go/internal/vet.vetFlags); simlint forwards none.
			fmt.Println("[]")
			return 0
		}
	}

	// In vet-tool mode the go command passes analyzer flags we do not
	// define (e.g. -unsafeptr=false) followed by a *.cfg path. Strip
	// unknown flags so both invocation styles share one entry point.
	cfgFile, rest := splitVetInvocation(args)
	if cfgFile != "" {
		if err := runUnitChecker(cfgFile); err != nil {
			if diags, ok := err.(diagnosticsFound); ok {
				fmt.Fprint(os.Stderr, string(diags))
				return 1
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
		return 0
	}

	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if *version {
		fmt.Printf("simlint version v1.0.0-%s\n", buildRevision())
		return 0
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite, ok := analyzers.ByName(splitNames(*enable))
	if !ok {
		fmt.Fprintf(os.Stderr, "simlint: unknown analyzer in -enable=%q\n", *enable)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}

	exit := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(suite, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", pkg.ImportPath, err)
			return 2
		}
		for _, f := range findings {
			fmt.Printf("%s\n", f)
			exit = 1
		}
	}
	return exit
}

// splitVetInvocation detects the unit-checker calling convention: the
// final argument is a *.cfg file produced by the go command. Everything
// else on that command line is vet flags meant for other analyzers.
func splitVetInvocation(args []string) (cfgFile string, rest []string) {
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return args[n-1], nil
	}
	return "", args
}

func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func buildRevision() string {
	// A stable pseudo-revision: the go command only requires a non-"devel"
	// third field to derive a tool ID; content-addressing of the binary
	// itself is handled by the build cache.
	return "simlint"
}
