package main

// The unit-checker half of simlint: `go vet -vettool=simlint` invokes the
// tool once per package with a JSON config file describing the unit of
// work — source files, the import map, and export-data files for every
// dependency the go command already compiled. This mirrors
// x/tools/go/analysis/unitchecker without the dependency, speaking the
// protocol defined by cmd/go/internal/work.vetConfig.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analyzers"
)

// vetConfig is the subset of cmd/go's vet configuration simlint reads.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// diagnosticsFound carries rendered findings through the error return so
// main can print them and exit 1 (go vet treats any nonzero exit as a
// reported problem).
type diagnosticsFound string

func (d diagnosticsFound) Error() string { return "diagnostics found" }

func runUnitChecker(cfgFile string) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// The go command reads the vetx (facts) output even from analyzers
	// that, like these, define no facts; write an empty file first so a
	// later failure still leaves the protocol satisfied.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	findings, _, err := analysis.Run(analyzers.All(), fset, files, pkg, info)
	if err != nil {
		return err
	}
	if len(findings) == 0 {
		return nil
	}
	var sb strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&sb, "%s\n", f)
	}
	return diagnosticsFound(sb.String())
}
