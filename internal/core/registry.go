package core

// BuiltinSpecs returns one ParseSystem spec for every built-in topology
// kind crossed with each of its shipped deadlock-free routing variants —
// the matrix `deadlockcheck -all` re-certifies on every commit and the
// conformance tests sweep. Every entry must analyze deadlock-free; the
// deliberately unsafe demonstration configurations (ring:...,unsafe, the
// torus figures) are excluded because they exist to exhibit cycles.
//
// When a new topology kind or routing algorithm lands in ParseSystem, add
// its spec(s) here: that single edit puts the new pair under the static
// Dally–Seitz certificate in CI and under the conformance matrix.
func BuiltinSpecs() []string {
	return []string{
		// Fractahedral family: fat and thin, with fan-out and group-size
		// variants (§2.1, §3.3).
		"fat-fract:levels=1",
		"fat-fract:levels=2",
		"fat-fract:levels=2,fanout",
		"fat-fract:levels=2,populate=24",
		"fat-fract:levels=2,group=3",
		"fat-fract:levels=2,group=5",
		"fat-fract:levels=3",
		"thin-fract:levels=1,fanout",
		"thin-fract:levels=2",
		"thin-fract:levels=3",
		// Fat trees and the degenerate U=1 tree.
		"fattree:d=4,u=2,nodes=64",
		"fattree:d=3,u=3,nodes=64",
		"fattree:d=4,u=2,nodes=23", // trimmed
		"tree:d=4,nodes=16",
		// Meshes under dimension-order routing.
		"mesh:cols=4,rows=4,nodes=2",
		"mesh:cols=6,rows=3,nodes=1",
		// Hypercubes under both shipped routings: e-cube and up*/down*.
		"hypercube:dim=3",
		"hypercube:dim=4",
		"hypercube:dim=3,updown",
		// Safe (seam-broken) rings.
		"ring:size=4",
		"ring:size=6",
		// Full-mesh router groups.
		"fullmesh:m=4",
		"fullmesh:m=4,ports=8",
		// Up*/down*-routed fixed-degree families.
		"ccc:dim=3",
		"shuffle:dim=4",
	}
}
