package core

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/routing"
	"repro/internal/topology"
)

// ParseSystem builds a System from a compact textual specification, the
// grammar shared by the command-line tools:
//
//	fat-fract:levels=2[,fanout][,fanout-depth=2][,group=4][,down=2][,populate=40]
//	thin-fract:levels=3[,fanout][,group=4][,down=2]
//	fattree:d=4,u=2,nodes=64
//	tree:d=4,nodes=16               (a U=1 fat tree)
//	mesh:cols=6,rows=6,nodes=2
//	hypercube:dim=3[,updown]
//	ring:size=4[,unsafe]
//	fullmesh:m=4[,ports=6]
//	ccc:dim=3                       (cube-connected cycles, up*/down* tables)
//	shuffle:dim=4                   (shuffle-exchange, up*/down* tables)
//	file:PATH                       (custom topology file, up*/down* tables;
//	                                 see topology.Parse for the format)
//
// Unknown keys are rejected. The returned description names the built
// network for display.
func ParseSystem(spec string) (*System, string, error) {
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		return loadSystemFile(path)
	}
	kind, opts, err := splitSpec(spec)
	if err != nil {
		return nil, "", err
	}
	get := func(key string, def int) int {
		if v, ok := opts[key]; ok {
			delete(opts, key)
			return v
		}
		return def
	}
	flag := func(key string) bool {
		if _, ok := opts[key]; ok {
			delete(opts, key)
			return true
		}
		return false
	}
	var sys *System
	switch kind {
	case "fat-fract", "thin-fract":
		cfg := topology.FractConfig{
			Group:       get("group", 4),
			Down:        get("down", 2),
			Levels:      get("levels", 2),
			Fat:         kind == "fat-fract",
			Fanout:      flag("fanout"),
			FanoutDepth: get("fanout-depth", 0),
			Populate:    get("populate", 0),
		}
		if cfg.FanoutDepth > 0 {
			cfg.Fanout = true
		}
		sys, _, err = NewFractahedron(cfg)
	case "fattree":
		sys, _, err = NewFatTree(get("d", 4), get("u", 2), get("nodes", 64))
	case "tree":
		sys, _, err = NewFatTree(get("d", 4), 1, get("nodes", 16))
	case "mesh":
		sys, _, err = NewMesh(get("cols", 4), get("rows", 4), get("nodes", 2))
	case "hypercube":
		sys, _, err = NewHypercube(get("dim", 3), get("nodes", 1), flag("updown"))
	case "ring":
		sys, _, err = NewRing(get("size", 4), get("nodes", 1), !flag("unsafe"))
	case "fullmesh":
		sys, _, err = NewFullMesh(get("m", 4), get("ports", 6))
	case "ccc":
		sys, _, err = NewCCC(get("dim", 3))
	case "shuffle":
		sys, _, err = NewShuffleExchange(get("dim", 4))
	default:
		return nil, "", fmt.Errorf("core: unknown topology kind %q (spec %q)", kind, spec)
	}
	if err != nil {
		return nil, "", err
	}
	if len(opts) > 0 {
		// Report the alphabetically first unknown key so the error message
		// does not depend on map iteration order.
		var keys []string
		for k := range opts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, "", fmt.Errorf("core: unknown option %q in spec %q", keys[0], spec)
	}
	return sys, sys.Net.Name, nil
}

// loadSystemFile builds a System from a topology description file, routed
// with generic up*/down* tables rooted at the first router.
func loadSystemFile(path string) (*System, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	net, err := topology.Parse(f, path)
	if err != nil {
		return nil, "", err
	}
	var root topology.DeviceID = -1
	for _, d := range net.Devices() {
		if d.Kind == topology.Router {
			root = d.ID
			break
		}
	}
	if root < 0 {
		return nil, "", fmt.Errorf("core: %s has no routers", path)
	}
	sys, err := newSystem(net, routing.UpDownGeneric(net, root))
	if err != nil {
		return nil, "", err
	}
	return sys, net.Name, nil
}

func splitSpec(spec string) (kind string, opts map[string]int, err error) {
	opts = make(map[string]int)
	kind, rest, found := strings.Cut(spec, ":")
	kind = strings.TrimSpace(kind)
	if kind == "" {
		return "", nil, fmt.Errorf("core: empty topology spec")
	}
	if !found {
		return kind, opts, nil
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		if !hasVal {
			opts[key] = 1 // boolean flag
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return "", nil, fmt.Errorf("core: option %q: %v", part, err)
		}
		opts[key] = n
	}
	return kind, opts, nil
}
