package core

import (
	"strings"
	"testing"
)

// FuzzParseSystem checks that arbitrary spec strings never panic the parser
// or the builders behind it, and that accepted specs produce valid systems.
func FuzzParseSystem(f *testing.F) {
	for _, seed := range []string{
		"fat-fract:levels=2",
		"thin-fract:levels=1,fanout",
		"fat-fract:levels=2,populate=40",
		"fattree:d=4,u=2,nodes=64",
		"mesh:cols=3,rows=3,nodes=1",
		"hypercube:dim=3,updown",
		"ring:size=4,unsafe",
		"fullmesh:m=4",
		"ccc:dim=3",
		"shuffle:dim=4",
		"",
		"mesh:cols=0",
		"fat-fract:levels=-1",
		"ring:size=999999999",
		"fat-fract:levels=2,populate=-5",
		"junk:::,,,===",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		// Builders legitimately panic on out-of-range parameters; the fuzz
		// invariant is "no panic OTHER than a deliberate validation panic,
		// and no crash": convert panics carrying validation messages into
		// rejections, and bound sizes so the fuzzer doesn't OOM.
		if len(spec) > 64 {
			return
		}
		// Bound every numeric parameter so the fuzzer explores structure,
		// not memory limits.
		num := 0
		inNum := false
		for _, c := range spec {
			if c >= '0' && c <= '9' {
				num = num*10 + int(c-'0')
				inNum = true
				if num > 8 {
					return
				}
			} else {
				num, inNum = 0, false
			}
		}
		_ = inNum
		defer func() {
			if r := recover(); r != nil {
				msg, ok := r.(string)
				if !ok {
					if err, isErr := r.(error); isErr {
						msg = err.Error()
					}
				}
				if !strings.Contains(msg, "topology:") && !strings.Contains(msg, "routing:") {
					panic(r)
				}
			}
		}()
		sys, name, err := ParseSystem(spec)
		if err != nil {
			return
		}
		if sys == nil || name == "" {
			t.Fatalf("accepted spec %q without a system", spec)
		}
		if verr := sys.Net.Validate(); verr != nil {
			t.Fatalf("spec %q built an invalid network: %v", spec, verr)
		}
	})
}
