package core

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The conformance matrix is the cross-cutting contract: every buildable
// system must route all pairs, be deadlock-free under its shipped routing,
// survive a random load in the simulator with in-order delivery, and
// compile a verifiable routing-table image. It sweeps the same
// BuiltinSpecs registry that `deadlockcheck -all` certifies in CI, so the
// static and dynamic matrices cannot drift apart.
func TestConformanceMatrix(t *testing.T) {
	for _, spec := range BuiltinSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			sys, _, err := ParseSystem(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Net.Validate(); err != nil {
				t.Fatalf("invalid network: %v", err)
			}
			a, err := sys.Analyze(AnalyzeOptions{SkipContention: true, SkipBisection: true})
			if err != nil {
				t.Fatal(err)
			}
			if !a.Deadlock.Free {
				t.Fatalf("not deadlock-free: %s", a.Deadlock)
			}
			if a.Hops.Pairs != sys.Net.NumNodes()*(sys.Net.NumNodes()-1) {
				t.Fatalf("hop analysis covered %d pairs", a.Hops.Pairs)
			}

			// Table image integrity.
			img := routing.CompileImage(sys.Tables)
			if err := routing.VerifyImage(img, sys.Tables); err != nil {
				t.Fatal(err)
			}

			// Random load through the simulator with the disables enforced.
			rng := rand.New(rand.NewSource(42))
			n := sys.Net.NumNodes()
			packets := 4 * n
			specs := workload.UniformRandom(rng, n, packets, 6, 3*n)
			res, err := sys.Simulate(specs, sim.Config{FIFODepth: 4})
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlocked {
				t.Fatalf("simulator deadlocked: %+v", res)
			}
			if res.Delivered != packets || res.Dropped != 0 {
				t.Fatalf("delivered=%d dropped=%d of %d", res.Delivered, res.Dropped, packets)
			}
			if res.InOrderViolations != 0 {
				t.Fatalf("order violations: %d", res.InOrderViolations)
			}

			// Cross-validate the simulator against the analytic model: an
			// uncontended packet's latency is exactly RouterHops + Flits.
			for _, pair := range [][2]int{{0, n - 1}, {n / 2, 0}} {
				if pair[0] == pair[1] {
					continue
				}
				r, err := sys.Tables.Route(pair[0], pair[1])
				if err != nil {
					t.Fatal(err)
				}
				solo, err := sys.Simulate([]sim.PacketSpec{
					{Src: pair[0], Dst: pair[1], Flits: 5},
				}, sim.Config{})
				if err != nil {
					t.Fatal(err)
				}
				if want := r.RouterHops() + 5; solo.MaxLatency != want {
					t.Fatalf("solo latency %d->%d = %d, analytic %d",
						pair[0], pair[1], solo.MaxLatency, want)
				}
			}
		})
	}
}
