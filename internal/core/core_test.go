package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// The façade reproduces Table 2 in one call per system.
func TestAnalyzeTable2(t *testing.T) {
	ftSys, _, err := NewFatTree(4, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	frSys, _, err := NewFatFractahedron(2)
	if err != nil {
		t.Fatal(err)
	}
	aFT, err := ftSys.Analyze(AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aFR, err := frSys.Analyze(AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if aFT.Contention.Max != 12 {
		t.Errorf("fat tree contention = %d, want 12", aFT.Contention.Max)
	}
	if aFR.Contention.Max >= aFT.Contention.Max {
		t.Errorf("fractahedron contention %d not below fat tree %d",
			aFR.Contention.Max, aFT.Contention.Max)
	}
	if aFT.Cost.Routers != 28 || aFR.Cost.Routers != 48 {
		t.Errorf("router counts %d/%d, want 28/48", aFT.Cost.Routers, aFR.Cost.Routers)
	}
	if !aFT.Deadlock.Free || !aFR.Deadlock.Free {
		t.Error("either system not deadlock-free")
	}
	if aFR.Hops.Mean >= aFT.Hops.Mean {
		t.Errorf("fractahedron mean hops %.3f not below fat tree %.3f",
			aFR.Hops.Mean, aFT.Hops.Mean)
	}
}

func TestAnalyzeSkips(t *testing.T) {
	s, _, err := NewMesh(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(AnalyzeOptions{SkipContention: true, SkipBisection: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Contention.Max != 0 || a.Bisection.Side != nil {
		t.Error("skipped analyses still ran")
	}
	if a.Hops.Max == 0 {
		t.Error("hop analysis missing")
	}
}

func TestSystemSimulate(t *testing.T) {
	s, _, err := NewFatFractahedron(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate(workload.Transfers([][2]int{{0, 7}, {3, 4}}, 8), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 || res.Deadlocked {
		t.Errorf("delivered=%d deadlocked=%v", res.Delivered, res.Deadlocked)
	}
}

func TestRingUnsafeDeadlocksViaFacade(t *testing.T) {
	s, _, err := NewRing(4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SimulateUnrestricted(
		workload.Transfers(workload.RingDeadlockSet(4), 32),
		sim.Config{FIFODepth: 2, DeadlockThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Error("unsafe ring did not deadlock")
	}
}

func TestGeneralizedFractahedronFacade(t *testing.T) {
	s, f, err := NewFractahedron(topology.FractConfig{Group: 3, Down: 2, Levels: 2, Fat: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 36 {
		t.Errorf("nodes = %d", f.NumNodes())
	}
	a, err := s.Analyze(AnalyzeOptions{SkipBisection: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Deadlock.Free {
		t.Error("generalized fractahedron not deadlock-free")
	}
}
