package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Build the paper's 64-node fat fractahedron and reproduce its Table 2 row.
func Example() {
	sys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Analyze(core.AnalyzeOptions{SkipBisection: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routers: %d\n", a.Cost.Routers)
	fmt.Printf("average hops: %.1f\n", a.Hops.Mean)
	fmt.Printf("deadlock-free: %v\n", a.Deadlock.Free)
	// Output:
	// routers: 48
	// average hops: 4.3
	// deadlock-free: true
}

// Route one of the paper's §3.4 transfers and inspect the path.
func ExampleSystem_analyze() {
	sys, fract, err := core.NewFatFractahedron(2)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sys.Tables.Route(6, 54)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router hops: %d\n", r.RouterHops())
	fmt.Printf("source digits: level2=%d level1=%d\n", fract.Digit(6, 2), fract.Digit(6, 1))
	// Output:
	// router hops: 4
	// source digits: level2=0 level1=6
}

// Simulate the §3.4 adversarial transfer set through the wormhole simulator.
func ExampleSystem_simulate() {
	sys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Simulate(workload.Transfers(workload.FractahedronWorstCase(), 16), sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d/4, deadlocked=%v, in order=%v\n",
		res.Delivered, res.Deadlocked, res.InOrderViolations == 0)
	// Output:
	// delivered 4/4, deadlocked=false, in order=true
}

// Parse a spec string the way the command-line tools do.
func ExampleParseSystem() {
	sys, name, err := core.ParseSystem("fattree:d=4,u=2,nodes=64")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d routers\n", name, sys.Net.NumRouters())
	// Output:
	// fattree-4-2-n64: 28 routers
}
