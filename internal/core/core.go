// Package core is the library façade: it couples a topology with its
// deadlock-free routing and path-disable configuration into a System, and
// offers one-call analysis (hops, contention, bisection, deadlock freedom,
// cost) and simulation. It is the API the examples, commands and benchmark
// harness build on; the individual subsystems remain available in their own
// packages for finer control.
package core

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/deadlock"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// System is a topology with routing tables and the matching minimal
// path-disable configuration (§2.4).
type System struct {
	Net      *topology.Network
	Tables   *routing.Tables
	Disables *router.Disables

	// Concrete holds the builder-specific topology value (e.g.
	// *topology.Fractahedron) for callers that need structural metadata —
	// the SVG renderers use it to pick a layered layout.
	Concrete any
}

func newSystem(net *topology.Network, tb *routing.Tables) (*System, error) {
	dis, err := router.FromTables(tb)
	if err != nil {
		return nil, err
	}
	return &System{Net: net, Tables: tb, Disables: dis}, nil
}

// NewFractahedron builds a fractahedral system (the paper's contribution).
func NewFractahedron(cfg topology.FractConfig) (*System, *topology.Fractahedron, error) {
	f := topology.NewFractahedron(cfg)
	s, err := newSystem(f.Network, routing.Fractahedron(f))
	if s != nil {
		s.Concrete = f
	}
	return s, f, err
}

// NewFatFractahedron builds the fat (layered) variant at a given depth
// without the fan-out stage — Figure 7's configuration at levels = 2.
func NewFatFractahedron(levels int) (*System, *topology.Fractahedron, error) {
	return NewFractahedron(topology.Tetra(levels, true))
}

// NewThinFractahedron builds the thin variant at a given depth.
func NewThinFractahedron(levels int) (*System, *topology.Fractahedron, error) {
	return NewFractahedron(topology.Tetra(levels, false))
}

// NewFatTree builds a D-U fat tree system over the given node count.
func NewFatTree(d, u, nodes int) (*System, *topology.FatTree, error) {
	ft := topology.NewFatTree(d, u, nodes)
	s, err := newSystem(ft.Network, routing.FatTree(ft))
	if s != nil {
		s.Concrete = ft
	}
	return s, ft, err
}

// NewMesh builds a 2-D mesh system with dimension-order routing.
func NewMesh(cols, rows, nodesPer int) (*System, *topology.Mesh, error) {
	m := topology.NewMesh(cols, rows, nodesPer)
	s, err := newSystem(m.Network, routing.MeshDimOrder(m, true))
	if s != nil {
		s.Concrete = m
	}
	return s, m, err
}

// NewHypercube builds a hypercube system; upDown selects the path-disable
// (up*/down*) discipline of Figure 2, otherwise e-cube.
func NewHypercube(dim, nodesPer int, upDown bool) (*System, *topology.Hypercube, error) {
	h := topology.NewHypercube(dim, nodesPer)
	var tb *routing.Tables
	if upDown {
		tb = routing.HypercubeUpDown(h)
	} else {
		tb = routing.HypercubeECube(h)
	}
	s, err := newSystem(h.Network, tb)
	if s != nil {
		s.Concrete = h
	}
	return s, h, err
}

// NewRing builds a ring system; safe selects seam-avoiding (deadlock-free)
// routing, otherwise strictly clockwise routing (Figure 1's demonstrator).
// The unsafe variant pairs with router.AllowAll since its own turn set is
// cyclic.
func NewRing(size, nodesPer int, safe bool) (*System, *topology.Ring, error) {
	r := topology.NewRing(size, nodesPer)
	var tb *routing.Tables
	if safe {
		tb = routing.RingSeamless(r)
	} else {
		tb = routing.RingClockwise(r)
	}
	s, err := newSystem(r.Network, tb)
	if s != nil {
		s.Concrete = r
	}
	return s, r, err
}

// NewFullMesh builds a fully-connected router group system (Figure 3).
func NewFullMesh(m, ports int) (*System, *topology.FullMesh, error) {
	fm := topology.NewFullMesh(m, ports)
	s, err := newSystem(fm.Network, routing.FullMesh(fm))
	if s != nil {
		s.Concrete = fm
	}
	return s, fm, err
}

// Analysis aggregates every figure of merit the paper compares.
type Analysis struct {
	Hops       metrics.HopStats
	Contention contention.Result
	Bisection  graph.BisectionResult
	Deadlock   deadlock.Report
	Cost       metrics.Cost
}

// AnalyzeOptions tunes the analysis.
type AnalyzeOptions struct {
	// SkipContention skips the (quadratic) contention matching.
	SkipContention bool
	// SkipBisection skips the bisection search.
	SkipBisection bool
	// BisectionRestarts is the random-restart count (default 3).
	BisectionRestarts int
	// Seed drives the bisection search (default 1).
	Seed int64
}

// Analyze computes the full comparison suite for the system.
func (s *System) Analyze(opt AnalyzeOptions) (Analysis, error) {
	if opt.BisectionRestarts == 0 {
		opt.BisectionRestarts = 3
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	var a Analysis
	var err error
	if a.Hops, err = metrics.Hops(s.Tables); err != nil {
		return a, fmt.Errorf("core: hop analysis: %w", err)
	}
	if !opt.SkipContention {
		if a.Contention, err = contention.MaxLinkContention(s.Tables); err != nil {
			return a, fmt.Errorf("core: contention analysis: %w", err)
		}
	}
	if !opt.SkipBisection {
		a.Bisection = metrics.Bisection(s.Net, opt.BisectionRestarts, opt.Seed)
	}
	if a.Deadlock, err = deadlock.Analyze(s.Tables); err != nil {
		return a, fmt.Errorf("core: deadlock analysis: %w", err)
	}
	a.Cost = metrics.CostOf(s.Net)
	return a, nil
}

// Simulate runs a workload through the wormhole simulator with the
// system's routing and disables.
func (s *System) Simulate(specs []sim.PacketSpec, cfg sim.Config) (sim.Result, error) {
	sm := sim.New(s.Net, s.Disables, cfg)
	if err := sm.AddBatch(s.Tables, specs); err != nil {
		return sim.Result{}, err
	}
	return sm.Run(), nil
}

// SimulateUnrestricted runs a workload with all turns enabled — needed for
// deliberately unsafe routings (Figure 1) whose own turn set is cyclic.
func (s *System) SimulateUnrestricted(specs []sim.PacketSpec, cfg sim.Config) (sim.Result, error) {
	sm := sim.New(s.Net, router.AllowAll(s.Net), cfg)
	if err := sm.AddBatch(s.Tables, specs); err != nil {
		return sim.Result{}, err
	}
	return sm.Run(), nil
}

// NewCCC builds a cube-connected-cycles system routed with generic
// up*/down* tables rooted at router (0, 0).
func NewCCC(dim int) (*System, *topology.CCC, error) {
	c := topology.NewCCC(dim)
	s, err := newSystem(c.Network, routing.UpDownGeneric(c.Network, c.Routers[0][0]))
	if s != nil {
		s.Concrete = c
	}
	return s, c, err
}

// NewShuffleExchange builds a shuffle-exchange system routed with generic
// up*/down* tables rooted at router 0.
func NewShuffleExchange(dim int) (*System, *topology.ShuffleExchange, error) {
	se := topology.NewShuffleExchange(dim)
	s, err := newSystem(se.Network, routing.UpDownGeneric(se.Network, se.Routers[0]))
	if s != nil {
		s.Concrete = se
	}
	return s, se, err
}
