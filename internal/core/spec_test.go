package core

import (
	"os"
	"testing"
)

func TestParseSystemKinds(t *testing.T) {
	cases := []struct {
		spec    string
		nodes   int
		routers int
	}{
		{"fat-fract:levels=2", 64, 48},
		{"thin-fract:levels=2", 64, 36},
		{"fat-fract:levels=1,fanout", 16, 12},
		{"fat-fract:levels=2,group=3", 36, 27},
		{"fattree:d=4,u=2,nodes=64", 64, 28},
		{"fattree:d=3,u=3,nodes=64", 64, 100},
		{"tree:d=4,nodes=16", 16, 5},
		{"mesh:cols=3,rows=3,nodes=1", 9, 9},
		{"hypercube:dim=3", 8, 8},
		{"hypercube:dim=3,updown", 8, 8},
		{"ring:size=5", 5, 5},
		{"fullmesh:m=4", 12, 4},
	}
	for _, c := range cases {
		sys, name, err := ParseSystem(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if name == "" {
			t.Errorf("%s: empty name", c.spec)
		}
		if sys.Net.NumNodes() != c.nodes || sys.Net.NumRouters() != c.routers {
			t.Errorf("%s: nodes=%d routers=%d, want %d/%d",
				c.spec, sys.Net.NumNodes(), sys.Net.NumRouters(), c.nodes, c.routers)
		}
	}
}

func TestParseSystemRejects(t *testing.T) {
	for _, spec := range []string{
		"",
		"nosuch:levels=2",
		"fat-fract:levels=2,bogus=1",
		"mesh:cols=x",
		"ring:size=4,unsafe,extra",
	} {
		if _, _, err := ParseSystem(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseSystemUnsafeRing(t *testing.T) {
	sys, _, err := ParseSystem("ring:size=4,unsafe")
	if err != nil {
		t.Fatal(err)
	}
	if sys.Tables.Algorithm != "ring-cw" {
		t.Errorf("algorithm = %s, want ring-cw", sys.Tables.Algorithm)
	}
}

func TestParseSystemFromFile(t *testing.T) {
	path := t.TempDir() + "/net.topo"
	topo := "router a 4\nrouter b 4\nnode n0\nnode n1\nlink a b\nlink a n0\nlink b n1\n"
	if err := os.WriteFile(path, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, name, err := ParseSystem("file:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if name != path || sys.Net.NumNodes() != 2 {
		t.Errorf("name=%q nodes=%d", name, sys.Net.NumNodes())
	}
	if err := sys.Tables.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseSystem("file:/nonexistent/zzz"); err == nil {
		t.Error("missing file accepted")
	}
	// A file with only nodes fails cleanly (no routers, disconnected).
	bad := t.TempDir() + "/bad.topo"
	if err := os.WriteFile(bad, []byte("node n0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseSystem("file:" + bad); err == nil {
		t.Error("router-less file accepted")
	}
}

func TestThinFractahedronConstructor(t *testing.T) {
	sys, f, err := NewThinFractahedron(2)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRouters() != 36 || sys.Tables.Algorithm != "fractahedron-thin" {
		t.Errorf("routers=%d alg=%s", f.NumRouters(), sys.Tables.Algorithm)
	}
}
