// Package leakcheck asserts goroutine quiescence in tests: capture a
// baseline count before starting concurrent machinery, run it through any
// shutdown path (normal drain, context cancellation, watchdog abort,
// mid-run fault), and require the live goroutine count to return to the
// baseline. The generalization of the hand-rolled waitGoroutines helper
// the sharded-engine tests used; every concurrent subsystem's tests now
// share one implementation, and a failure dumps every live stack so the
// leaked goroutine is identified, not just counted.
//
// The check polls rather than comparing once: goroutines unwind
// asynchronously after a WaitGroup releases its waiter, and the runtime's
// own test goroutines come and go. A bounded poll keeps the assertion
// deterministic for any scheduler while never sleeping longer than the
// unwind actually takes.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// timeout bounds the poll: well past any real unwind, far below the test
// binary timeout, so a leak fails the one test that caused it.
const timeout = 5 * time.Second

// Baseline records the current live goroutine count. Call it before
// constructing the machinery under test.
func Baseline() int { return runtime.NumGoroutine() }

// Check fails the test unless the live goroutine count returns to (or
// below) the baseline within the poll window, dumping all goroutine
// stacks on failure so the leak is attributable.
func Check(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, baseline %d; stacks:\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}
