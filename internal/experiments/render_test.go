package experiments

import (
	"strings"
	"testing"
)

// Rendering smoke tests: every experiment's String form must carry its
// header and its row content. Rows are constructed directly so the test is
// instant.
func TestRenderers(t *testing.T) {
	cases := []struct {
		name     string
		text     string
		contains []string
	}{
		{
			"figure1",
			Figure1Result{UnrestrictedDeadlocked: true, WaitCycleLen: 4,
				WaitCycle: []string{"R0[0] -> R1[1]"}, RestrictedDelivered: 4}.String(),
			[]string{"Figure 1", "deadlocked=true", "R0[0] -> R1[1]", "4/4"},
		},
		{
			"figure2",
			Figure2Result{Dim: 3, UpDownFree: true, ECubeFree: true,
				UpDownMin: 1, UpDownMax: 9, UpDownRatio: 9, ECubeRatio: 1}.String(),
			[]string{"Figure 2", "1/9", "9.00x"},
		},
		{
			"figure3",
			Figure3String([]Figure3Row{{Routers: 4, NodePorts: 12, InterLinks: 6, MaxContention: 3}}),
			[]string{"Figure 3", "12", "3:1"},
		},
		{
			"figure5",
			Figure5String([]Figure5Row{{Levels: 2, Nodes: 64, Routers: 36, MaxHops: 6, Formula: 6, AvgHops: 4.97}}),
			[]string{"Figures 4/5", "6 (6)", "4.97"},
		},
		{
			"table1",
			Table1String([]Table1Row{{Levels: 2, Fat: true, MaxNodes: 128, MaxNodesFormula: 128,
				MaxDelay: 5, MaxDelayFormula: 5, Bisection: 16, BisectionFat4N: 8, BisectionFat4PowN: 16}}),
			[]string{"Table 1", "fat", "4^N=16", "superscript"},
		},
		{
			"table2",
			Table2Result{Rows: []Table2Row{{Name: "fat fractahedron", Routers: 48,
				AvgHops: 4.30, MaxHops: 5, MaxContention: 8, PaperContention: 4,
				Bisection: 16, DeadlockFree: true}}, FractIntraL2: 4}.String(),
			[]string{"Table 2", "fat fractahedron", "8:1 (4:1)", "intra-level-2): 4:1"},
		},
		{
			"mesh",
			Section31String([]MeshRow{{Cols: 6, Rows: 6, Nodes: 72, Routers: 36,
				MaxHops: 11, PaperMaxHops: 11, MaxContention: 10}}),
			[]string{"§3.1", "11 (11)", "10:1"},
		},
		{
			"hypercube",
			Section32String([]HypercubeRow{{Dim: 6, Routers: 64, Nodes: 64, PortsNeeded: 7, Bisection: 32}}),
			[]string{"§3.2", "7", "needs 7 ports"},
		},
		{
			"fattree",
			FatTreeResult{Routers: 28, Levels: 3, AvgHops: 4.43, MaxContention: 12,
				Bisection: 8, DeadlockFree: true, PaperSet: 3, WitnessSet: 12}.String(),
			[]string{"§3.3", "routers=28", "12:1", "pigeonhole"},
		},
		{
			"deadlock",
			DeadlockSummaryString([]DeadlockRow{{Topology: "ring-4", Algorithm: "ring-cw",
				Channels: 16, Deps: 12, Free: false}}),
			[]string{"verification matrix", "ring-cw", "false"},
		},
		{
			"avoidance",
			DeadlockAvoidanceString([]AvoidanceRow{{Scheme: "virtual channels (Dally-Seitz)",
				BuffersPerPort: 8, Delivered: 4}}),
			[]string{"deadlock handling", "virtual channels", "8"},
		},
		{
			"zoo",
			BackgroundString([]BackgroundRow{{Name: "cube-connected cycles", Nodes: 64,
				Routers: 64, PortsPer: 4, MaxHops: 15, AvgHops: 7.26, Stretch: 1.5,
				Contention: 26, Bisection: 8, DeadlockFree: true}}),
			[]string{"topology zoo", "cube-connected cycles", "26:1"},
		},
		{
			"tables",
			TableSizesString([]RegionRow{{Name: "hypercube-6 (e-cube)", Nodes: 64,
				Routers: 64, Min: 64, Max: 64, Mean: 64}}),
			[]string{"regions", "hypercube-6", "64"},
		},
		{
			"linkclass",
			FractLinkClassesString([]LinkClassRow{{Class: "down L2->L1", Links: 32,
				MinLoad: 112, MaxLoad: 112, MeanLoad: 112, Contention: 8}}),
			[]string{"Link classes", "down L2->L1", "8:1"},
		},
		{
			"silicon",
			SiliconBudgetString(SiliconBudget(4)),
			[]string{"silicon", "2 VC", "buffer share"},
		},
		{
			"locality",
			LocalitySweepString([]LocalityRow{{LocalFrac: 0.9, Topology: "4-2 fat tree",
				AvgLatency: 68, Throughput: 13.28}}),
			[]string{"locality sweep", "0.90", "13.28"},
		},
		{
			"permutations",
			PermutationStudyString([]PermRow{{Pattern: "tornado", Topology: "fat fractahedron",
				Transfers: 64, Cycles: 36, AvgLatency: 24, Throughput: 14.22}}),
			[]string{"Permutation", "tornado", "14.22"},
		},
		{
			"saturation",
			SaturationString([]SaturationRow{{Topology: "thin fractahedron",
				BaseLatency: 13.4, SatOffered: 0.081, SatThroughput: 4.05}}),
			[]string{"Saturation", "thin fractahedron", "4.05"},
		},
		{
			"failover",
			FailoverResult{Packets: 400, FaultCycle: 60, DeliveredX: 371, Dropped: 29,
				FailedOver: 29, DeliveredY: 29}.String(),
			[]string{"failover", "killed 29", "lost end to end: 0"},
		},
		{
			"large",
			LargeSimString([]LargeSimRow{{Topology: "thin fractahedron N=3", Nodes: 512,
				Routers: 292, Rate: 0.03, Delivered: 22811, AvgLatency: 15558.9, Throughput: 5.52}}),
			[]string{"large topologies", "thin fractahedron N=3", "5.52"},
		},
		{
			"sweep",
			SimSweepString([]SweepRow{{Topology: "4-2 fat tree", Rate: 0.05, Offered: 0.4,
				Delivered: 6373, AvgLatency: 1380.6, Throughput: 10.3}}),
			[]string{"future work", "4-2 fat tree", "1380.6"},
		},
		{
			"db",
			DatabaseScenarioString([]DBScenarioRow{{Topology: "fat fractahedron", Streams: 8,
				Transfers: 128, Cycles: 2051, PerStreamBW: 0.1248, OrderKept: true}}),
			[]string{"database query", "0.1248", "1/contention"},
		},
		{
			"fifo",
			AblationFIFOString([]FIFORow{{Depth: 4, Cycles: 274, AvgLatency: 70.2, Throughput: 8.76}}),
			[]string{"FIFO depth", "274"},
		},
		{
			"radix",
			AblationRadixString([]RadixRow{{Group: 5, Down: 2, RouterPorts: 7, Nodes: 100,
				Routers: 75, MaxHops: 5, Contention: 10, DeadlockFree: true}}),
			[]string{"generalized", "10:1"},
		},
		{
			"cable",
			AblationCableString([]CableRow{{LinkLatency: 4, AvgLatency: 110.8, P99Latency: 335, Throughput: 5.52}}),
			[]string{"propagation delay", "335"},
		},
		{
			"frontier",
			FrontierString([]FrontierRow{{Config: "fat N=2", Nodes: 64, Routers: 48,
				RoutersPerNode: 0.75, MaxHops: 5, Bisection: 16, BisectionPerNd: 0.25, Contention: 8}}),
			[]string{"cost/performance", "fat N=2", "8:1"},
		},
		{
			"partitions",
			AblationPartitionsString([]PartitionRow{{Name: "striped leaf blocks", Contention: 12}}),
			[]string{"partitions", "striped leaf blocks", "12:1"},
		},
	}
	for _, c := range cases {
		for _, want := range c.contains {
			if !strings.Contains(c.text, want) {
				t.Errorf("%s: output missing %q:\n%s", c.name, want, c.text)
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []SweepRow{
		{Topology: "fat fractahedron", Rate: 0.05, Offered: 0.4, Delivered: 6373,
			AvgLatency: 312.2, Throughput: 17.67},
		{Topology: "4-2 fat tree", Rate: 0.05, Offered: 0.4, Delivered: 6373,
			AvgLatency: 1380.6, Throughput: 10.3, Deadlocked: false},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Topology,Rate,Offered", "fat fractahedron,0.05", "17.67", "false"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
	if err := WriteCSV(&sb, 42); err == nil {
		t.Error("non-slice accepted")
	}
	if err := WriteCSV(&sb, []int{1}); err == nil {
		t.Error("non-struct slice accepted")
	}
	if err := WriteCSV(&sb, []SweepRow{}); err != nil {
		t.Errorf("empty slice: %v", err)
	}
}
