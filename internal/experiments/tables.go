package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Table1Row is one (N, variant) entry of Table 1: N-level 2-3-1
// fractahedral parameters.
type Table1Row struct {
	Levels int
	Fat    bool

	MaxNodes        int // with fan-out stage: 2*8^N
	MaxNodesFormula int

	MaxDelay        int // router hops, fan-out stage excluded (as in the table)
	MaxDelayFormula int // thin 4N-2, fat 3N-1

	Bisection         int // measured balanced min-cut in links
	BisectionThin     int // paper: fixed at 4
	BisectionFat4N    int // the OCR'd "4N" reading
	BisectionFat4PowN int // the 4^N reading our construction matches
}

// Table1 regenerates Table 1 for N = 1..maxLevels. Delay is measured on the
// core network (no fan-out stage, matching the table's note that delay
// equations exclude the end-node stage); node capacity uses the fan-out
// configuration that yields 2*8^N. For N >= 3 the all-pairs hop scan is
// sampled and the bisection uses the structural seed cut only.
func Table1(maxLevels int) ([]Table1Row, error) {
	var rows []Table1Row
	for n := 1; n <= maxLevels; n++ {
		for _, fat := range []bool{false, true} {
			cfg := topology.Tetra(n, fat)
			fanCfg := cfg
			fanCfg.Fanout = true

			row := Table1Row{
				Levels:            n,
				Fat:               fat,
				MaxNodes:          fanCfg.MaxNodes(),
				MaxNodesFormula:   2 * pow(8, n),
				BisectionThin:     4,
				BisectionFat4N:    4 * n,
				BisectionFat4PowN: pow(4, n),
			}
			row.MaxDelayFormula = 4*n - 2
			if fat {
				row.MaxDelayFormula = 3*n - 1
			}
			if n == 1 {
				row.MaxDelayFormula = 2
			}

			sys, f, err := core.NewFractahedron(cfg)
			if err != nil {
				return nil, err
			}
			if n <= 2 {
				a, err := sys.Analyze(core.AnalyzeOptions{SkipContention: true, BisectionRestarts: 2})
				if err != nil {
					return nil, err
				}
				row.MaxDelay = a.Hops.Max
				row.Bisection = a.Bisection.Cut
			} else {
				row.MaxDelay, err = sampledMaxHops(sys.Tables, f.NumNodes())
				if err != nil {
					return nil, err
				}
				row.Bisection = metrics.Bisection(f.Network, 0, 1).Cut
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Table1String renders the Table 1 comparison.
func Table1String(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1 — N-level 2-3-1 fractahedral parameters (measured vs formula)\n")
	sb.WriteString("  N | variant | max nodes (2*8^N) | max delay (formula) | bisection links (paper)\n")
	for _, r := range rows {
		variant := "thin"
		paperBis := fmt.Sprintf("%d", r.BisectionThin)
		if r.Fat {
			variant = "fat"
			paperBis = fmt.Sprintf("4N=%d or 4^N=%d", r.BisectionFat4N, r.BisectionFat4PowN)
		}
		fmt.Fprintf(&sb, "  %d | %7s | %8d (%d) | %10d (%d) | %d (%s)\n",
			r.Levels, variant, r.MaxNodes, r.MaxNodesFormula,
			r.MaxDelay, r.MaxDelayFormula, r.Bisection, paperBis)
	}
	sb.WriteString("  note: the printed table's fat bisection '4N' loses a superscript; the\n")
	sb.WriteString("  construction yields 4^N, which the measured min-cut confirms.\n")
	return sb.String()
}

// Table2Row is one topology's entry in the 64-node comparison.
type Table2Row struct {
	Name          string
	Routers       int
	AvgHops       float64
	MaxHops       int
	MaxContention int
	// PaperContention is what the paper's own analysis derives for this
	// row, measured on the link class the paper considered (see
	// EXPERIMENTS.md for the fractahedron's inter-level caveat).
	PaperContention int
	Bisection       int
	DeadlockFree    bool
}

// Table2Result is the paper's headline 64-node comparison, extended with
// the other topologies §3 discusses.
type Table2Result struct {
	Rows []Table2Row
	// FractIntraL2 is the contention restricted to intra-level-2 links,
	// the paper's 4:1 figure.
	FractIntraL2 int
}

// Table2 regenerates the 64-node comparison.
func Table2() (Table2Result, error) {
	var out Table2Result

	add := func(name string, sys *core.System, paperContention int) error {
		a, err := sys.Analyze(core.AnalyzeOptions{BisectionRestarts: 2})
		if err != nil {
			return err
		}
		out.Rows = append(out.Rows, Table2Row{
			Name:            name,
			Routers:         a.Cost.Routers,
			AvgHops:         a.Hops.Mean,
			MaxHops:         a.Hops.Max,
			MaxContention:   a.Contention.Max,
			PaperContention: paperContention,
			Bisection:       a.Bisection.Cut,
			DeadlockFree:    a.Deadlock.Free,
		})
		return nil
	}

	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return out, err
	}
	if err := add("4-2 fat tree", ftSys, 12); err != nil {
		return out, err
	}

	frSys, fr, err := core.NewFatFractahedron(2)
	if err != nil {
		return out, err
	}
	if err := add("fat fractahedron", frSys, 4); err != nil {
		return out, err
	}
	out.FractIntraL2, err = fractIntraL2Contention(fr, frSys.Tables)
	if err != nil {
		return out, err
	}

	thinSys, _, err := core.NewThinFractahedron(2)
	if err != nil {
		return out, err
	}
	if err := add("thin fractahedron", thinSys, -1); err != nil {
		return out, err
	}

	meshSys, _, err := core.NewMesh(6, 6, 2)
	if err != nil {
		return out, err
	}
	if err := add("6x6 mesh (72 ports)", meshSys, 10); err != nil {
		return out, err
	}

	ft33Sys, _, err := core.NewFatTree(3, 3, 64)
	if err != nil {
		return out, err
	}
	if err := add("3-3 fat tree", ft33Sys, -1); err != nil {
		return out, err
	}

	return out, nil
}

// String renders the Table 2 comparison.
func (t Table2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 2 — 64-node comparison (6-port routers)\n")
	sb.WriteString("  topology              | routers | avg hops | max hops | max contention (paper) | bisection | deadlock-free\n")
	for _, r := range t.Rows {
		paper := "-"
		if r.PaperContention > 0 {
			paper = fmt.Sprintf("%d:1", r.PaperContention)
		}
		fmt.Fprintf(&sb, "  %-21s | %7d | %8.2f | %8d | %7d:1 (%s) | %9d | %v\n",
			r.Name, r.Routers, r.AvgHops, r.MaxHops, r.MaxContention, paper, r.Bisection, r.DeadlockFree)
	}
	fmt.Fprintf(&sb, "  fat fractahedron contention on the paper's link class (intra-level-2): %d:1\n", t.FractIntraL2)
	return sb.String()
}

func sampledMaxHops(tb *routing.Tables, nodes int) (int, error) {
	max := 0
	for s := 0; s < nodes; s += 7 {
		for d := 0; d < nodes; d += 3 {
			if s == d {
				continue
			}
			r, err := tb.Route(s, d)
			if err != nil {
				return 0, err
			}
			if r.RouterHops() > max {
				max = r.RouterHops()
			}
		}
	}
	return max, nil
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
	}
	return p
}
