package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
)

// observe runs one simulation point through a system and records its cost
// (cycles simulated, flit moves, wall time) in the campaign stats, if any.
// Experiments route every worker-pool simulation through this helper so
// cmd/paper can print a campaign summary, and so the campaign's engine
// shard count reaches every point uniformly (sharding never changes a
// result, so stamping it here cannot perturb any experiment).
func observe(cfg runner.Config, label string, sys *core.System, specs []sim.PacketSpec, sc sim.Config) (sim.Result, error) {
	sc.Shards = cfg.Shards
	start := time.Now()
	res, err := sys.Simulate(specs, sc)
	if err != nil {
		return res, err
	}
	cfg.Stats.Record(runner.Stat{
		Label:     label,
		Cycles:    res.Cycles,
		FlitMoves: res.FlitMoves(),
		Wall:      time.Since(start),
	})
	return res, nil
}

// timed is observe's sibling for experiments that drive a sim.Sim directly
// instead of going through core.System: it runs the simulation closure and
// records its cost under label. This file is the nondet analyzer's
// wall-clock allowlist — experiments must route timing through these
// helpers so wall time can only ever reach runner.Stats accounting, never
// a result row.
func timed(stats *runner.Stats, label string, run func() sim.Result) sim.Result {
	start := time.Now()
	res := run()
	stats.Record(runner.Stat{
		Label:     label,
		Cycles:    res.Cycles,
		FlitMoves: res.FlitMoves(),
		Wall:      time.Since(start),
	})
	return res
}

// timedCost is timed for composite engines (dual-fabric chaos recovery)
// that report their own cycle and flit-move totals: the closure runs the
// engine and returns its cost, which is recorded under label together with
// the wall time.
func timedCost(stats *runner.Stats, label string, run func() (cycles, flitMoves int, err error)) error {
	start := time.Now()
	cycles, moves, err := run()
	if err != nil {
		return err
	}
	stats.Record(runner.Stat{
		Label:     label,
		Cycles:    cycles,
		FlitMoves: moves,
		Wall:      time.Since(start),
	})
	return nil
}
