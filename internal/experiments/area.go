package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// AreaRow compares one 64-node design point's total router silicon.
type AreaRow struct {
	Design      string
	Routers     int
	Ports       int
	VCs         int
	Depth       int
	PerRouter   float64
	Network     float64
	BufferShare float64
}

// SiliconBudget prices the 64-node design alternatives in the abstract
// gate-unit model: the paper's 6-port single-VC routers (fat tree and fat
// fractahedron counts), the same networks with Dally–Seitz dual-VC routers,
// and the 7-port router a 64-node hypercube would need. It quantifies §2's
// "buffering space may dominate the area of a typical router" and §2.1's
// price-performance argument for the 6-port part.
func SiliconBudget(depth int) []AreaRow {
	m := metrics.DefaultAreaModel()
	designs := []struct {
		name           string
		routers, ports int
		vcs            int
	}{
		{"4-2 fat tree, 1 VC", 28, 6, 1},
		{"fat fractahedron, 1 VC", 48, 6, 1},
		{"fat fractahedron, 2 VC", 48, 6, 2},
		{"hypercube (7-port), 1 VC", 64, 7, 1},
		{"hypercube (7-port), 2 VC", 64, 7, 2},
		{"CCC (4-port), 1 VC", 64, 4, 1},
	}
	var rows []AreaRow
	for _, d := range designs {
		rows = append(rows, AreaRow{
			Design:      d.name,
			Routers:     d.routers,
			Ports:       d.ports,
			VCs:         d.vcs,
			Depth:       depth,
			PerRouter:   m.RouterArea(d.ports, d.vcs, depth),
			Network:     m.NetworkArea(d.routers, d.ports, d.vcs, depth),
			BufferShare: m.BufferShare(d.ports, d.vcs, depth),
		})
	}
	return rows
}

// SiliconBudgetString renders the area comparison.
func SiliconBudgetString(rows []AreaRow) string {
	var sb strings.Builder
	sb.WriteString("Router silicon for 64 nodes (abstract gate units; FIFO depth ")
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "%d flits/VC)\n", rows[0].Depth)
	} else {
		sb.WriteString("-)\n")
	}
	sb.WriteString("  design                     | routers | ports | VCs | area/router | network area | buffer share\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-26s | %7d | %5d | %3d | %11.0f | %12.0f | %5.1f%%\n",
			r.Design, r.Routers, r.Ports, r.VCs, r.PerRouter, r.Network, 100*r.BufferShare)
	}
	sb.WriteString("  => adding a second VC raises buffer share past half the router — §2's\n")
	sb.WriteString("     objection — while the fractahedron pays only in router count\n")
	return sb.String()
}
