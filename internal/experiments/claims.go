package experiments

import (
	"fmt"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Claim is one machine-checked statement from the paper.
type Claim struct {
	ID       string // section/figure/table reference
	Text     string // the claim
	Paper    string // the paper's value
	Measured string // this repository's value
	Match    bool
	Note     string // context for divergences
}

// Claims evaluates every quantitative claim of the paper against the live
// implementation and returns the verdict table — the one-stop reproduction
// scorecard behind EXPERIMENTS.md.
func Claims() ([]Claim, error) {
	var cs []Claim
	add := func(id, text, paper, measured string, match bool, note string) {
		cs = append(cs, Claim{ID: id, Text: text, Paper: paper, Measured: measured, Match: match, Note: note})
	}

	// --- Figure 1: wormhole deadlock and its avoidance.
	f1, err := Figure1()
	if err != nil {
		return nil, err
	}
	add("Fig 1", "circular wait deadlocks a wormhole loop", "deadlock",
		fmt.Sprintf("deadlocked=%v, %d-channel wait cycle", f1.UnrestrictedDeadlocked, f1.WaitCycleLen),
		f1.UnrestrictedDeadlocked && f1.CDGCyclic, "")
	add("Fig 1", "restricting the routing avoids the deadlock", "no deadlock",
		fmt.Sprintf("delivered %d/4", f1.RestrictedDelivered),
		!f1.RestrictedDeadlocked && f1.RestrictedDelivered == 4, "")

	// --- Figure 2: hypercube path disables.
	f2, err := Figure2()
	if err != nil {
		return nil, err
	}
	add("Fig 2", "path disables break all hypercube loops", "deadlock-free",
		fmt.Sprintf("CDG acyclic=%v", f2.UpDownFree), f2.UpDownFree, "")
	add("§2", "disables give uneven link utilization under uniform load", "uneven",
		fmt.Sprintf("%.1fx imbalance (e-cube: %.1fx)", f2.UpDownRatio, f2.ECubeRatio),
		f2.UpDownRatio > 2*f2.ECubeRatio, "")

	// --- Figure 3: fully-connected groups.
	f3, err := Figure3()
	if err != nil {
		return nil, err
	}
	portsOK, contOK := true, true
	for _, r := range f3 {
		if r.NodePorts != r.Routers*(7-r.Routers) {
			portsOK = false
		}
		want := 7 - r.Routers
		if r.Routers == 1 {
			want = 1 // no inter-router links in a single-router group
		}
		if r.MaxContention != want {
			contOK = false
		}
	}
	add("Fig 3", "M fully-connected 6-port routers expose M(7-M) node ports", "10/12/12/10/6",
		"identical", portsOK, "")
	add("Fig 3", "group contention is (7-M):1", "5:1..1:1", "identical", contOK, "")

	// --- Table 1.
	t1, err := Table1(3)
	if err != nil {
		return nil, err
	}
	nodesOK, delayOK, thinBisOK, fatBisOK := true, true, true, true
	for _, r := range t1 {
		if r.MaxNodes != r.MaxNodesFormula {
			nodesOK = false
		}
		if r.MaxDelay != r.MaxDelayFormula {
			delayOK = false
		}
		if !r.Fat && r.Bisection != 4 {
			thinBisOK = false
		}
		if r.Fat && r.Bisection != r.BisectionFat4PowN {
			fatBisOK = false
		}
	}
	add("Table 1", "capacity 2*8^N CPUs with the fan-out stage", "2*8^N", "identical (N=1..3)", nodesOK, "")
	add("Table 1", "max delay thin 4N-2, fat 3N-1", "formulas", "identical (N=1..3)", delayOK, "")
	add("Table 1", "thin bisection fixed at 4 links", "4", "4 (N=1..3)", thinBisOK, "")
	add("Table 1", "fat bisection (printed '4N')", "4N?", "4^N measured", fatBisOK,
		"the scan's '4N' reads as a lost superscript; min-cut confirms 4^N")

	// --- §3.1 mesh.
	mesh, err := Section31Mesh()
	if err != nil {
		return nil, err
	}
	hopsOK := true
	for _, r := range mesh {
		if r.MaxHops != r.PaperMaxHops {
			hopsOK = false
		}
	}
	add("§3.1", "mesh max hops 11 / 15 / 45 (6x6, 8x8, 23x23)", "11/15/45", "identical", hopsOK, "")
	add("§3.1", "6x6 mesh worst contention", "10:1",
		fmt.Sprintf("%d:1", mesh[0].MaxContention), mesh[0].MaxContention == 10, "")

	// --- §3.2 hypercube.
	add("§3.2", "64-node hypercube needs 7-port routers", "7 ports",
		fmt.Sprintf("%d ports", topology.HypercubePortsNeeded(6, 1)),
		topology.HypercubePortsNeeded(6, 1) == 7, "")

	// --- §3.3 / Table 2 fat tree.
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	ftA, err := ftSys.Analyze(core.AnalyzeOptions{BisectionRestarts: 2})
	if err != nil {
		return nil, err
	}
	add("§3.3", "64-node 4-2 fat tree router count", "28",
		fmt.Sprintf("%d", ftA.Cost.Routers), ftA.Cost.Routers == 28, "")
	add("Table 2", "fat tree average hops", "4.4",
		fmt.Sprintf("%.2f", ftA.Hops.Mean), ftA.Hops.Mean > 4.35 && ftA.Hops.Mean < 4.45, "")
	add("§3.3", "fat tree worst contention (any static partition)", "12:1",
		fmt.Sprintf("%d:1", ftA.Contention.Max), ftA.Contention.Max == 12, "")
	add("§3.3", "fat tree bisection", "4 links",
		fmt.Sprintf("%d links", ftA.Bisection.Cut), ftA.Bisection.Cut == 4,
		"measured 8; no 28-router 4-2 construction yields 4")

	// --- §3.4 3-3 fat tree.
	ft33 := topology.NewFatTree(3, 3, 64)
	h33, err := metrics.Hops(routing.FatTree(ft33))
	if err != nil {
		return nil, err
	}
	add("§3.4", "3-3 fat tree router count", "100",
		fmt.Sprintf("%d", ft33.NumRouters()), ft33.NumRouters() == 100, "")
	add("§3.4", "3-3 fat tree average hops", "5.9",
		fmt.Sprintf("%.2f", h33.Mean), h33.Mean > 5.7 && h33.Mean < 6.1, "")

	// --- Figure 7 / Table 2 fractahedron.
	frSys, fr, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	frA, err := frSys.Analyze(core.AnalyzeOptions{BisectionRestarts: 2})
	if err != nil {
		return nil, err
	}
	add("Table 2", "fat fractahedron router count", "48",
		fmt.Sprintf("%d", frA.Cost.Routers), frA.Cost.Routers == 48, "")
	add("Table 2", "fat fractahedron average hops", "4.3",
		fmt.Sprintf("%.2f", frA.Hops.Mean), frA.Hops.Mean > 4.25 && frA.Hops.Mean < 4.35, "")
	intraL2, err := fractIntraL2Contention(fr, frSys.Tables)
	if err != nil {
		return nil, err
	}
	add("§3.4", "fractahedron contention on intra-level-2 links", "4:1",
		fmt.Sprintf("%d:1", intraL2), intraL2 == 4, "")
	add("Table 2", "fractahedron contention over ALL links", "4:1",
		fmt.Sprintf("%d:1", frA.Contention.Max), frA.Contention.Max == 4,
		"8:1 on inter-level down links, a class §3.4 does not analyze; still beats the fat tree")
	add("§3.4", "fractahedron bisection equals the 4-2 fat tree's", "equal",
		fmt.Sprintf("%d vs %d", frA.Bisection.Cut, ftA.Bisection.Cut),
		frA.Bisection.Cut == ftA.Bisection.Cut,
		"measured 16 vs 8 — the fractahedron is better, not equal")
	add("§3.4", "transfers 6,7,14,15 -> 54,55,62,63 share one diagonal link", "4 on one link",
		func() string {
			c, _, err := contention.ContentionOfSet(frSys.Tables,
				[]contention.Transfer{{Src: 6, Dst: 54}, {Src: 7, Dst: 55}, {Src: 14, Dst: 62}, {Src: 15, Dst: 63}})
			if err != nil {
				return "error"
			}
			return fmt.Sprintf("%d on one link", c)
		}(), true, "")
	cs[len(cs)-1].Match = strings.HasPrefix(cs[len(cs)-1].Measured, "4")

	// --- §2.4 deadlock freedom.
	rep, err := deadlock.Analyze(frSys.Tables)
	if err != nil {
		return nil, err
	}
	add("§2.4", "fat fractahedron routing is deadlock-free despite the layers", "deadlock-free",
		fmt.Sprintf("CDG acyclic=%v (%d deps)", rep.Free, rep.Deps), rep.Free, "")

	// --- §2.2 fan-out delays.
	cfg := topology.Tetra(1, false)
	cfg.Fanout = true
	fanSys, _, err := core.NewFractahedron(cfg)
	if err != nil {
		return nil, err
	}
	fanHops, err := metrics.Hops(fanSys.Tables)
	if err != nil {
		return nil, err
	}
	add("§2.2", "16-CPU system max delay (incl. fan-out)", "4 hops",
		fmt.Sprintf("%d hops", fanHops.Max), fanHops.Max == 4, "")

	// --- §2.2 1024-CPU delays (thin 12, fat 10, fan-out included). The
	// structurally worst pair: an all-sevens source address against an
	// all-fours destination (see examples/scaling for the derivation).
	for _, c := range []struct {
		fat  bool
		want int
	}{{false, 12}, {true, 10}} {
		cfg := topology.Tetra(3, c.fat)
		cfg.Fanout = true
		sys1024, f1024, err := core.NewFractahedron(cfg)
		if err != nil {
			return nil, err
		}
		if f1024.NumNodes() != 1024 {
			return nil, fmt.Errorf("experiments: 1024-CPU build has %d nodes", f1024.NumNodes())
		}
		worstSrc, worstDst := 0, 0
		for k := 0; k < 3; k++ {
			worstSrc = worstSrc*8 + 7
			worstDst = worstDst*8 + 4
		}
		r, err := sys1024.Tables.Route(worstSrc*2+1, worstDst*2)
		if err != nil {
			return nil, err
		}
		variant := "thin"
		if c.fat {
			variant = "fat"
		}
		add("§2.2", fmt.Sprintf("1024-CPU %s fractahedron max delay", variant),
			fmt.Sprintf("%d hops", c.want), fmt.Sprintf("%d hops", r.RouterHops()),
			r.RouterHops() == c.want, "")
	}

	// --- §3.3 in-order requirement, exercised in the simulator.
	res, err := frSys.Simulate(workload.Transfers(workload.FractahedronWorstCase(), 16), sim.Config{})
	if err != nil {
		return nil, err
	}
	add("§3.3", "fixed per-pair paths keep packets in order", "in order",
		fmt.Sprintf("%d violations", res.InOrderViolations), res.InOrderViolations == 0, "")

	return cs, nil
}

// ClaimsMarkdown renders the scorecard as a markdown table.
func ClaimsMarkdown(cs []Claim) string {
	var sb strings.Builder
	sb.WriteString("# Reproduction scorecard\n\n")
	sb.WriteString("| ref | claim | paper | measured | verdict |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	pass := 0
	for _, c := range cs {
		verdict := "PASS"
		if !c.Match {
			verdict = "DIVERGES"
			if c.Note != "" {
				verdict += " — " + c.Note
			}
		} else if c.Note != "" {
			verdict += " — " + c.Note
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s |\n", c.ID, c.Text, c.Paper, c.Measured, verdict)
		if c.Match {
			pass++
		}
	}
	fmt.Fprintf(&sb, "\n%d of %d claims reproduce; divergences are analyzed in EXPERIMENTS.md.\n", pass, len(cs))
	return sb.String()
}
