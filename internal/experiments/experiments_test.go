package experiments

import (
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.UnrestrictedDeadlocked {
		t.Error("Figure 1 scenario did not deadlock")
	}
	if !res.CDGCyclic {
		t.Error("static analysis disagrees with the simulator")
	}
	if res.RestrictedDeadlocked || res.RestrictedDelivered != 4 {
		t.Errorf("restricted run: deadlocked=%v delivered=%d",
			res.RestrictedDeadlocked, res.RestrictedDelivered)
	}
	if !strings.Contains(res.String(), "deadlocked=true") {
		t.Errorf("report: %s", res)
	}
}

func TestFigure2(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !res.UpDownFree || !res.ECubeFree {
		t.Error("hypercube routings not deadlock-free")
	}
	if res.UpDownRatio <= res.ECubeRatio {
		t.Errorf("disable-based routing imbalance %.2f not worse than e-cube %.2f",
			res.UpDownRatio, res.ECubeRatio)
	}
}

func TestFigure3(t *testing.T) {
	rows, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantPorts := []int{6, 10, 12, 12, 10, 6}
	wantCont := []int{1, 5, 4, 3, 2, 1}
	for i, r := range rows {
		if r.NodePorts != wantPorts[i] {
			t.Errorf("M=%d ports = %d, want %d", r.Routers, r.NodePorts, wantPorts[i])
		}
		if r.MaxContention != wantCont[i] {
			t.Errorf("M=%d contention = %d, want %d", r.Routers, r.MaxContention, wantCont[i])
		}
	}
}

func TestFigure5(t *testing.T) {
	rows, err := Figure5(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxHops != r.Formula {
			t.Errorf("N=%d max hops %d != formula %d", r.Levels, r.MaxHops, r.Formula)
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxNodes != r.MaxNodesFormula {
			t.Errorf("N=%d fat=%v nodes %d != %d", r.Levels, r.Fat, r.MaxNodes, r.MaxNodesFormula)
		}
		if r.MaxDelay != r.MaxDelayFormula {
			t.Errorf("N=%d fat=%v delay %d != %d", r.Levels, r.Fat, r.MaxDelay, r.MaxDelayFormula)
		}
		if !r.Fat && r.Bisection != 4 {
			t.Errorf("N=%d thin bisection = %d, want 4", r.Levels, r.Bisection)
		}
		if r.Fat && r.Bisection != r.BisectionFat4PowN {
			t.Errorf("N=%d fat bisection = %d, want %d", r.Levels, r.Bisection, r.BisectionFat4PowN)
		}
	}
	if !strings.Contains(Table1String(rows), "Table 1") {
		t.Error("table text missing header")
	}
}

func TestTable2(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	ft := byName["4-2 fat tree"]
	fr := byName["fat fractahedron"]
	if ft.Routers != 28 || fr.Routers != 48 {
		t.Errorf("routers %d/%d, want 28/48", ft.Routers, fr.Routers)
	}
	if ft.MaxContention != 12 {
		t.Errorf("fat tree contention = %d, want 12", ft.MaxContention)
	}
	if res.FractIntraL2 != 4 {
		t.Errorf("fractahedron intra-L2 contention = %d, want 4 (paper)", res.FractIntraL2)
	}
	if fr.MaxContention >= ft.MaxContention {
		t.Errorf("fractahedron %d:1 not better than fat tree %d:1", fr.MaxContention, ft.MaxContention)
	}
	if !(fr.AvgHops < ft.AvgHops) {
		t.Errorf("avg hops %f vs %f", fr.AvgHops, ft.AvgHops)
	}
	if byName["3-3 fat tree"].Routers != 100 {
		t.Errorf("3-3 fat tree routers = %d, want 100", byName["3-3 fat tree"].Routers)
	}
	mesh := byName["6x6 mesh (72 ports)"]
	if mesh.MaxContention != 10 || mesh.MaxHops != 11 {
		t.Errorf("mesh contention=%d maxhops=%d, want 10/11", mesh.MaxContention, mesh.MaxHops)
	}
	for _, r := range res.Rows {
		if !r.DeadlockFree {
			t.Errorf("%s not deadlock-free", r.Name)
		}
	}
}

func TestSection31Mesh(t *testing.T) {
	rows, err := Section31Mesh()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxHops != r.PaperMaxHops {
			t.Errorf("%dx%d max hops = %d, want %d", r.Cols, r.Rows, r.MaxHops, r.PaperMaxHops)
		}
	}
	if rows[0].MaxContention != 10 {
		t.Errorf("6x6 contention = %d, want 10", rows[0].MaxContention)
	}
}

func TestSection32Hypercube(t *testing.T) {
	rows := Section32Hypercube()
	for _, r := range rows {
		wantFeasible := r.Dim+1 <= 6
		if r.Feasible6 != wantFeasible {
			t.Errorf("dim %d feasible = %v", r.Dim, r.Feasible6)
		}
		if r.Dim == 6 && r.PortsNeeded != 7 {
			t.Errorf("6-D ports = %d, want 7", r.PortsNeeded)
		}
	}
}

func TestSection33FatTree(t *testing.T) {
	res, err := Section33FatTree()
	if err != nil {
		t.Fatal(err)
	}
	if res.Routers != 28 || res.MaxContention != 12 || res.WitnessSet != 12 {
		t.Errorf("routers=%d contention=%d witness=%d, want 28/12/12",
			res.Routers, res.MaxContention, res.WitnessSet)
	}
	if !res.DeadlockFree {
		t.Error("fat tree not deadlock-free")
	}
}

func TestDeadlockSummary(t *testing.T) {
	rows, err := DeadlockSummary()
	if err != nil {
		t.Fatal(err)
	}
	free := map[string]bool{}
	for _, r := range rows {
		free[r.Topology+"/"+r.Algorithm] = r.Free
	}
	mustCycle := []string{"ring-4/ring-cw", "torus-4x4/torus-unidir"}
	mustFree := []string{"ring-4/ring-seamless", "mesh-4x4/mesh-yx",
		"hypercube-3/hypercube-ecube", "hypercube-3/hypercube-updown",
		"fattree-4-2-64/fattree-updown", "thin-fract-64/fractahedron-thin",
		"fat-fract-64/fractahedron-fat"}
	for _, k := range mustCycle {
		if f, ok := free[k]; !ok || f {
			t.Errorf("%s: free=%v ok=%v, want cyclic", k, f, ok)
		}
	}
	for _, k := range mustFree {
		if f, ok := free[k]; !ok || !f {
			t.Errorf("%s: free=%v ok=%v, want free", k, f, ok)
		}
	}
}

func TestSimSweepShape(t *testing.T) {
	rows, err := SimSweep([]float64{0.002, 0.02}, 600, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Deadlocked {
			t.Errorf("%s deadlocked at rate %.3f", r.Topology, r.Rate)
		}
		if r.Delivered == 0 {
			t.Errorf("%s delivered nothing at rate %.3f", r.Topology, r.Rate)
		}
	}
	// Latency grows with offered load.
	if !(rows[0].AvgLatency < rows[3].AvgLatency) {
		t.Errorf("latency did not grow with load: %.1f vs %.1f", rows[0].AvgLatency, rows[3].AvgLatency)
	}
}

func TestDatabaseScenario(t *testing.T) {
	rows, err := DatabaseScenario(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.OrderKept {
			t.Errorf("%s broke in-order delivery", r.Topology)
		}
		if r.Cycles == 0 {
			t.Errorf("%s ran zero cycles", r.Topology)
		}
	}
}

func TestAblationFIFODepth(t *testing.T) {
	rows, err := AblationFIFODepth([]int{1, 4, 16}, 120, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Deeper FIFOs never hurt completion time under this deterministic
	// pipeline model.
	if rows[0].Cycles < rows[2].Cycles {
		t.Errorf("depth 1 (%d cycles) outperformed depth 16 (%d)", rows[0].Cycles, rows[2].Cycles)
	}
}

func TestAblationRadix(t *testing.T) {
	rows, err := AblationRadix([]int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.DeadlockFree {
			t.Errorf("group %d not deadlock-free", r.Group)
		}
		if r.MaxHops != 5 {
			t.Errorf("group %d max hops = %d, want 5 (3N-1)", r.Group, r.MaxHops)
		}
		// All-links worst contention generalizes to Children = Group*Down:
		// the single down link into a child ensemble serves all of its
		// Group*Down nodes, and enough corner-aligned sources exist.
		if want := r.Group * r.Down; r.Contention != want {
			t.Errorf("group %d contention = %d, want %d (Group*Down)", r.Group, r.Contention, want)
		}
	}
	if rows[0].RouterPorts != 5 || rows[1].RouterPorts != 6 || rows[2].RouterPorts != 7 {
		t.Error("router port accounting wrong")
	}
}

func TestAblationFatTreePartitions(t *testing.T) {
	rows, err := AblationFatTreePartitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Contention != 12 {
			t.Errorf("%s: contention = %d, want 12 (pigeonhole)", r.Name, r.Contention)
		}
	}
}

func TestDeadlockAvoidanceComparison(t *testing.T) {
	rows, err := DeadlockAvoidanceComparison(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := map[string]AvoidanceRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	if !byScheme["none (Figure 1)"].Deadlocked {
		t.Error("unprotected run did not deadlock")
	}
	rr := byScheme["routing restriction (ServerNet)"]
	if rr.Deadlocked || rr.Delivered != 4 || rr.OrderViolations != 0 {
		t.Errorf("restriction row wrong: %+v", rr)
	}
	vc := byScheme["virtual channels (Dally-Seitz)"]
	if vc.Deadlocked || vc.Delivered != 4 {
		t.Errorf("VC row wrong: %+v", vc)
	}
	if vc.BuffersPerPort <= rr.BuffersPerPort {
		t.Error("VC scheme should cost more buffers")
	}
	to := byScheme["timeout+retry recovery"]
	if to.Deadlocked {
		t.Errorf("timeout recovery left the network deadlocked: %+v", to)
	}
	if to.Retries == 0 {
		t.Errorf("timeout recovery performed no retries: %+v", to)
	}
	if to.Delivered+to.Dropped != 4 {
		t.Errorf("timeout recovery lost packets: %+v", to)
	}
}

func TestBackgroundTopologies(t *testing.T) {
	rows, err := BackgroundTopologies()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]BackgroundRow{}
	for _, r := range rows {
		if !r.DeadlockFree {
			t.Errorf("%s not deadlock-free", r.Name)
		}
		byName[r.Name] = r
	}
	// Spot checks: the hypercube needs 7 ports, CCC only 4; the binary
	// tree's bisection collapses to its root links; the fat fractahedron
	// beats the fat tree on average hops.
	if byName["hypercube (e-cube)"].PortsPer != 7 {
		t.Error("hypercube port count wrong")
	}
	if byName["cube-connected cycles"].PortsPer != 4 {
		t.Error("CCC port count wrong")
	}
	if byName["binary tree"].Bisection > 2 {
		t.Errorf("binary tree bisection = %d, want <= 2", byName["binary tree"].Bisection)
	}
	if byName["fat fractahedron"].AvgHops >= byName["4-2 fat tree"].AvgHops {
		t.Error("fractahedron not ahead on avg hops")
	}
	if byName["ring"].MaxHops < 31 {
		t.Errorf("seam-avoiding 32-ring max hops = %d, want 31+", byName["ring"].MaxHops)
	}
	// The paper's deterministic routings are minimal; generic up*/down*
	// on CCC and shuffle-exchange pays stretch.
	if byName["fat fractahedron"].Stretch != 1 {
		t.Errorf("fractahedron stretch = %.2f", byName["fat fractahedron"].Stretch)
	}
	if byName["cube-connected cycles"].Stretch <= 1 {
		t.Errorf("CCC up*/down* stretch = %.2f, expected > 1", byName["cube-connected cycles"].Stretch)
	}
}

func TestTableSizes(t *testing.T) {
	rows, err := TableSizes()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RegionRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	f2, f3 := byName["fat fractahedron N=2"], byName["fat fractahedron N=3"]
	if f3.Max > 2*f2.Max {
		t.Errorf("fractahedron tables grew %d -> %d across a level", f2.Max, f3.Max)
	}
	if hc := byName["hypercube-6 (e-cube)"]; hc.Max != 64 {
		t.Errorf("hypercube regions = %d, want 64", hc.Max)
	}
}

func TestFractLinkClasses(t *testing.T) {
	rows, err := FractLinkClasses()
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[string]LinkClassRow{}
	totalChannels := 0
	for _, r := range rows {
		byClass[r.Class] = r
		totalChannels += r.Links
	}
	// 48 routers * 7 inter-router... count: intra-L1 96 + intra-L2 48 +
	// up 32 + down 32 = 208 inter-router channels (104 cables).
	if totalChannels != 208 {
		t.Errorf("channels = %d, want 208", totalChannels)
	}
	if byClass["intra-level-2"].Contention != 4 {
		t.Errorf("intra-L2 contention = %d, want 4 (paper §3.4)", byClass["intra-level-2"].Contention)
	}
	if byClass["down L2->L1"].Contention != 8 {
		t.Errorf("down-link contention = %d, want 8", byClass["down L2->L1"].Contention)
	}
	// Symmetric topology + digit routing: loads are uniform within a class.
	for _, r := range rows {
		if r.MinLoad != r.MaxLoad {
			t.Errorf("class %s unevenly loaded: %d..%d", r.Class, r.MinLoad, r.MaxLoad)
		}
	}
}

func TestSiliconBudget(t *testing.T) {
	rows := SiliconBudget(4)
	byName := map[string]AreaRow{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	oneVC := byName["fat fractahedron, 1 VC"]
	twoVC := byName["fat fractahedron, 2 VC"]
	if twoVC.PerRouter <= oneVC.PerRouter {
		t.Error("second VC did not increase router area")
	}
	if twoVC.BufferShare <= oneVC.BufferShare {
		t.Error("second VC did not increase buffer share")
	}
	if oneVC.BufferShare < 0.5 {
		t.Errorf("buffer share %.2f; the model should show buffers dominating", oneVC.BufferShare)
	}
	if byName["4-2 fat tree, 1 VC"].Network >= oneVC.Network {
		t.Error("fat tree should be cheaper in total silicon (fewer routers)")
	}
}

func TestLargeSim(t *testing.T) {
	rows, err := LargeSim([]float64{0.004}, 400, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fat, thin := rows[0], rows[1]
	if fat.Deadlocked || thin.Deadlocked {
		t.Fatal("large sim deadlocked")
	}
	if fat.Nodes != 512 || thin.Nodes != 512 {
		t.Errorf("nodes %d/%d", fat.Nodes, thin.Nodes)
	}
	if fat.Delivered != thin.Delivered {
		t.Errorf("delivered %d vs %d (same workload)", fat.Delivered, thin.Delivered)
	}
	if !(fat.AvgLatency < thin.AvgLatency) {
		t.Errorf("fat latency %.1f not below thin %.1f", fat.AvgLatency, thin.AvgLatency)
	}
}

func TestFailoverSim(t *testing.T) {
	res, err := FailoverSim(300, 8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("fault killed no transfers; victim selection broken")
	}
	if res.FailedOver != res.Dropped {
		t.Errorf("failed over %d != dropped %d", res.FailedOver, res.Dropped)
	}
	if res.DeliveredY != res.FailedOver {
		t.Errorf("Y delivered %d of %d", res.DeliveredY, res.FailedOver)
	}
	if res.TotalLost != 0 {
		t.Errorf("lost %d transfers end to end", res.TotalLost)
	}
	if res.XDeadlocked || res.YDeadlocked {
		t.Error("a fabric deadlocked")
	}
}

func TestSaturation(t *testing.T) {
	rows, err := Saturation(400, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SaturationRow{}
	for _, r := range rows {
		byName[r.Topology] = r
	}
	fat := byName["fat fractahedron"]
	thin := byName["thin fractahedron"]
	ft := byName["4-2 fat tree"]
	if !(fat.SatThroughput > ft.SatThroughput) {
		t.Errorf("fat fractahedron throughput %.2f not above fat tree %.2f",
			fat.SatThroughput, ft.SatThroughput)
	}
	if !(thin.SatThroughput < fat.SatThroughput) {
		t.Errorf("thin %.2f not below fat %.2f", thin.SatThroughput, fat.SatThroughput)
	}
	for _, r := range rows {
		if r.BaseLatency <= 0 || r.SatOffered <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

func TestPermutationStudy(t *testing.T) {
	rows, err := PermutationStudy(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 5 patterns x 4 topologies", len(rows))
	}
	// Nearest neighbor is near-contention-free on the hierarchical
	// topologies: much faster than the adversarial patterns.
	var nnFract, bcFract PermRow
	for _, r := range rows {
		if r.Topology == "fat fractahedron" {
			switch r.Pattern {
			case "nearest neighbor":
				nnFract = r
			case "bit complement":
				bcFract = r
			}
		}
	}
	if !(nnFract.Cycles < bcFract.Cycles) {
		t.Errorf("nearest neighbor (%d cycles) not faster than bit complement (%d)",
			nnFract.Cycles, bcFract.Cycles)
	}
}

func TestLocalitySweep(t *testing.T) {
	rows, err := LocalitySweep([]float64{0, 0.9}, 400, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(frac float64, topo string) LocalityRow {
		for _, r := range rows {
			if r.LocalFrac == frac && r.Topology == topo {
				return r
			}
		}
		t.Fatalf("missing row %.1f/%s", frac, topo)
		return LocalityRow{}
	}
	ftLow := get(0, "4-2 fat tree")
	ftHigh := get(0.9, "4-2 fat tree")
	// The thinned tree improves markedly with locality (the §3.3 argument).
	if !(ftHigh.AvgLatency < ftLow.AvgLatency) {
		t.Errorf("4-2 latency did not improve with locality: %.1f -> %.1f",
			ftLow.AvgLatency, ftHigh.AvgLatency)
	}
	// Under uniform traffic the fractahedron beats the 4-2 tree; under
	// high locality they are close (within 15%).
	frLow := get(0, "fat fractahedron")
	if !(frLow.AvgLatency < ftLow.AvgLatency) {
		t.Errorf("uniform: fractahedron %.1f not ahead of 4-2 tree %.1f",
			frLow.AvgLatency, ftLow.AvgLatency)
	}
	frHigh := get(0.9, "fat fractahedron")
	if ftHigh.AvgLatency > 1.15*frHigh.AvgLatency {
		t.Errorf("high locality: 4-2 tree %.1f still far behind fractahedron %.1f",
			ftHigh.AvgLatency, frHigh.AvgLatency)
	}
}

func TestCostPerformanceFrontier(t *testing.T) {
	rows, err := CostPerformanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FrontierRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	thin2, fat2 := byName["thin N=2"], byName["fat N=2"]
	if !(fat2.Routers > thin2.Routers) {
		t.Error("fat should cost more routers")
	}
	if !(fat2.Bisection > thin2.Bisection) {
		t.Error("fat should buy bisection")
	}
	if !(fat2.MaxHops < thin2.MaxHops) {
		t.Error("fat should cut worst delay")
	}
	fat3 := byName["fat N=3"]
	if fat3.Nodes != 512 || fat3.MaxHops != 8 || fat3.Bisection != 64 {
		t.Errorf("fat N=3 row wrong: %+v", fat3)
	}
}

func TestAblationCableLength(t *testing.T) {
	rows, err := AblationCableLength([]int{1, 3}, 150, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].AvgLatency < rows[1].AvgLatency) {
		t.Errorf("latency did not grow with cable length: %.1f vs %.1f",
			rows[0].AvgLatency, rows[1].AvgLatency)
	}
	if rows[1].Throughput < 0.6*rows[0].Throughput {
		t.Errorf("throughput collapsed with cable length: %.2f vs %.2f",
			rows[1].Throughput, rows[0].Throughput)
	}
}

func TestClaimsScorecard(t *testing.T) {
	cs, err := Claims()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 30 {
		t.Fatalf("claims = %d", len(cs))
	}
	pass := 0
	diverging := map[string]bool{}
	for _, c := range cs {
		if c.Match {
			pass++
		} else {
			diverging[c.Text] = true
			if c.Note == "" {
				t.Errorf("divergence %q lacks an explanatory note", c.Text)
			}
		}
	}
	// Exactly the three documented divergences, nothing else.
	if pass != 27 {
		t.Errorf("passing claims = %d of %d; diverging: %v", pass, len(cs), diverging)
	}
	md := ClaimsMarkdown(cs)
	for _, want := range []string{"Reproduction scorecard", "PASS", "DIVERGES", "27 of 30"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
