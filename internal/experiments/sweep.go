package experiments

import (
	"fmt"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SweepRow is one offered-load point for one topology in the simulation
// sweep (§4's future work: "simulations of large topologies in order to
// better understand network performance under heavy loading").
type SweepRow struct {
	Topology   string
	Rate       float64 // packet-start probability per node per cycle
	Offered    float64 // offered load in flits per node per cycle
	Delivered  int
	AvgLatency float64
	Throughput float64 // delivered flits per cycle, network-wide
	Deadlocked bool
}

// SimSweep runs open-loop Bernoulli traffic at each rate over the three
// 64-node contenders and reports the latency/throughput curves. Points fan
// over the runner's worker pool; each point's workload derives from
// (seed, rate index), so all topologies face the same packet stream at a
// given rate — keeping the curves comparable — while distinct rates draw
// independent streams, and the rows are bit-identical for any worker count.
func SimSweep(rates []float64, warmCycles, flits int, seed int64, opts ...runner.Option) ([]SweepRow, error) {
	cfg := runner.NewConfig(opts...)
	type system struct {
		name string
		sys  *core.System
	}
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	frSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	thinSys, _, err := core.NewThinFractahedron(2)
	if err != nil {
		return nil, err
	}
	systems := []system{{"4-2 fat tree", ftSys}, {"fat fractahedron", frSys}, {"thin fractahedron", thinSys}}

	return runner.Map(cfg, len(rates)*len(systems), func(i int) (SweepRow, error) {
		rate, s := rates[i/len(systems)], systems[i%len(systems)]
		rng := runner.RNG(seed, i/len(systems))
		specs := workload.Bernoulli(rng, s.sys.Net.NumNodes(), warmCycles, flits, rate)
		res, err := observe(cfg, fmt.Sprintf("sweep %s rate=%.3f", s.name, rate),
			s.sys, specs, sim.Config{FIFODepth: 4})
		if err != nil {
			return SweepRow{}, err
		}
		return SweepRow{
			Topology:   s.name,
			Rate:       rate,
			Offered:    rate * float64(flits),
			Delivered:  res.Delivered,
			AvgLatency: res.AvgLatency,
			Throughput: res.ThroughputFPC,
			Deadlocked: res.Deadlocked,
		}, nil
	})
}

// SimSweepString renders the latency/throughput curves.
func SimSweepString(rows []SweepRow) string {
	var sb strings.Builder
	sb.WriteString("§4 future work — flit-level simulation under load (64 nodes, open loop)\n")
	sb.WriteString("  topology          | rate  | offered f/n/c | delivered | avg latency | throughput f/c | deadlocked\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-17s | %.3f | %13.3f | %9d | %11.1f | %14.2f | %v\n",
			r.Topology, r.Rate, r.Offered, r.Delivered, r.AvgLatency, r.Throughput, r.Deadlocked)
	}
	return sb.String()
}

// DBScenarioRow compares the §3.0 database pattern on the two 64-node
// networks under each topology's own worst-case stream placement.
type DBScenarioRow struct {
	Topology  string
	Streams   int // size of the adversarial stream set (= max contention)
	Transfers int
	Cycles    int
	// PerStreamBW is the sustained bandwidth each stream achieved, in
	// flits per cycle. With S streams serialized over one contended link
	// it approaches 1/S — the operational meaning of the contention ratio.
	PerStreamBW float64
	OrderKept   bool
}

// DatabaseScenario runs §3.0's commercial workload — "an arbitrary set of
// CPU nodes trying to communicate with an arbitrary set of disk controller
// nodes over an extended period" — placed adversarially per topology: each
// network carries sustained streams over ITS OWN worst-case transfer set
// (the contention matching's witness). The per-stream bandwidth then shows
// the contention ratio operating: ~1/12 flit/cycle on the fat tree versus
// ~1/8 on the fat fractahedron.
func DatabaseScenario(transfersEach, flits int, opts ...runner.Option) ([]DBScenarioRow, error) {
	cfg := runner.NewConfig(opts...)
	type system struct {
		name string
		sys  *core.System
	}
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	frSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	systems := []system{{"4-2 fat tree", ftSys}, {"fat fractahedron", frSys}}

	return runner.Map(cfg, len(systems), func(i int) (DBScenarioRow, error) {
		s := systems[i]
		worst, err := contention.MaxLinkContention(s.sys.Tables)
		if err != nil {
			return DBScenarioRow{}, err
		}
		var cpus, disks []int
		for _, w := range worst.Witness {
			cpus = append(cpus, w.Src)
			disks = append(disks, w.Dst)
		}
		specs := workload.DatabaseQuery(cpus, disks, transfersEach, flits)
		res, err := observe(cfg, "db "+s.name, s.sys, specs, sim.Config{FIFODepth: 4})
		if err != nil {
			return DBScenarioRow{}, err
		}
		perStream := 0.0
		if res.Cycles > 0 {
			perStream = res.ThroughputFPC / float64(len(cpus))
		}
		return DBScenarioRow{
			Topology:    s.name,
			Streams:     len(cpus),
			Transfers:   len(specs),
			Cycles:      res.Cycles,
			PerStreamBW: perStream,
			OrderKept:   res.InOrderViolations == 0,
		}, nil
	})
}

// DatabaseScenarioString renders the database workload comparison.
func DatabaseScenarioString(rows []DBScenarioRow) string {
	var sb strings.Builder
	sb.WriteString("§3.0 — database query pattern, each topology under its own worst-case\n")
	sb.WriteString("        stream placement (the contention witness, streamed steadily)\n")
	sb.WriteString("  topology          | streams | transfers | cycles | per-stream BW f/c | in order\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-17s | %7d | %9d | %6d | %17.4f | %v\n",
			r.Topology, r.Streams, r.Transfers, r.Cycles, r.PerStreamBW, r.OrderKept)
	}
	sb.WriteString("  => per-stream bandwidth under adversarial load tracks 1/contention\n")
	return sb.String()
}
