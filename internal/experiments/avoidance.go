package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// AvoidanceRow compares one deadlock-handling scheme from §2 of the paper
// on the Figure 1 workload (a circular-wait set of long worms on a ring).
type AvoidanceRow struct {
	Scheme          string
	BuffersPerPort  int // flits of input buffering per router port
	Delivered       int
	Dropped         int
	Deadlocked      bool
	Retries         int
	OrderViolations int
	Cycles          int
}

// DeadlockAvoidanceComparison runs the §2 trade-off study: the same
// circular-wait workload under (a) no protection, (b) ServerNet-style
// routing restriction (zero extra hardware), (c) Dally–Seitz virtual
// channels (double the buffers), and (d) timeout/discard/retry recovery
// (no extra buffers, but retries — and with them the loss of guaranteed
// in-order delivery the paper's protocol depends on; on this fully
// symmetric workload every worm times out together, so recovery degrades
// to retry exhaustion).
func DeadlockAvoidanceComparison(flits int) ([]AvoidanceRow, error) {
	const depth = 4
	specs := workload.Transfers(workload.RingDeadlockSet(4), flits)
	var rows []AvoidanceRow

	// (a) Unprotected clockwise routing.
	unsafe, _, err := core.NewRing(4, 1, false)
	if err != nil {
		return nil, err
	}
	res, err := unsafe.SimulateUnrestricted(specs, sim.Config{FIFODepth: depth, DeadlockThreshold: 500})
	if err != nil {
		return nil, err
	}
	rows = append(rows, AvoidanceRow{
		Scheme: "none (Figure 1)", BuffersPerPort: depth,
		Delivered: res.Delivered, Deadlocked: res.Deadlocked, Cycles: res.Cycles,
	})

	// (b) Routing restriction — the paper's approach, generalized by the
	// fractahedral family: no added buffering.
	safe, _, err := core.NewRing(4, 1, true)
	if err != nil {
		return nil, err
	}
	res, err = safe.Simulate(specs, sim.Config{FIFODepth: depth, DeadlockThreshold: 500})
	if err != nil {
		return nil, err
	}
	rows = append(rows, AvoidanceRow{
		Scheme: "routing restriction (ServerNet)", BuffersPerPort: depth,
		Delivered: res.Delivered, Deadlocked: res.Deadlocked,
		OrderViolations: res.InOrderViolations, Cycles: res.Cycles,
	})

	// (c) Two virtual channels with the dateline discipline: works on the
	// unrestricted physical cycle, but each port now needs two FIFOs —
	// "the cost of the buffers can be quite significant because buffering
	// space may dominate the area of a typical router" (§2).
	ring := topology.NewRing(4, 1)
	dl := routing.RingDateline(ring)
	rep, err := deadlock.AnalyzeVC(dl)
	if err != nil {
		return nil, err
	}
	if !rep.Free {
		return nil, fmt.Errorf("experiments: dateline ring unexpectedly cyclic")
	}
	vcSim := simFor(ring.Network, sim.Config{FIFODepth: depth, VirtualChannels: 2, DeadlockThreshold: 500})
	if err := vcSim.AddBatch(dl, specs); err != nil {
		return nil, err
	}
	res = vcSim.Run()
	rows = append(rows, AvoidanceRow{
		Scheme: "virtual channels (Dally-Seitz)", BuffersPerPort: 2 * depth,
		Delivered: res.Delivered, Deadlocked: res.Deadlocked,
		OrderViolations: res.InOrderViolations, Cycles: res.Cycles,
	})

	// (d) Timeout / discard / retry recovery on the unprotected routing.
	cw := routing.RingClockwise(ring)
	toSim := simFor(ring.Network, sim.Config{
		FIFODepth: depth, DeadlockThreshold: 4000,
		TimeoutCycles: 60, MaxRetries: 2,
	})
	if err := toSim.AddBatch(cw, specs); err != nil {
		return nil, err
	}
	res = toSim.Run()
	rows = append(rows, AvoidanceRow{
		Scheme: "timeout+retry recovery", BuffersPerPort: depth,
		Delivered: res.Delivered, Dropped: res.Dropped, Deadlocked: res.Deadlocked,
		Retries: res.Retries, OrderViolations: res.InOrderViolations, Cycles: res.Cycles,
	})
	return rows, nil
}

// DeadlockAvoidanceString renders the §2 comparison.
func DeadlockAvoidanceString(rows []AvoidanceRow) string {
	var sb strings.Builder
	sb.WriteString("§2 — deadlock handling alternatives on the Figure 1 workload (4-ring, long worms)\n")
	sb.WriteString("  scheme                          | buffers/port | delivered | dropped | deadlocked | retries | order violations\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-31s | %12d | %9d | %7d | %10v | %7d | %d\n",
			r.Scheme, r.BuffersPerPort, r.Delivered, r.Dropped, r.Deadlocked, r.Retries, r.OrderViolations)
	}
	sb.WriteString("  => only the routing restriction delivers everything with no extra buffers\n")
	sb.WriteString("     and no retries — the paper's case for topology-based avoidance\n")
	return sb.String()
}

// simFor builds an unrestricted simulator over a network (helper).
func simFor(net *topology.Network, cfg sim.Config) *sim.Simulator {
	return sim.New(net, allowAll(net), cfg)
}

func allowAll(net *topology.Network) *router.Disables {
	return router.AllowAll(net)
}

// routerAllowAll is a readable alias used by the failover experiment.
func routerAllowAll(net *topology.Network) *router.Disables { return router.AllowAll(net) }
