package experiments

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/topology"
)

// RegionRow reports the region-table footprint of one routed topology.
type RegionRow struct {
	Name    string
	Nodes   int
	Routers int
	Min     int
	Max     int
	Mean    float64
}

// TableSizes quantifies §2.1/§2.3's routing-table argument: ServerNet
// routers hold region tables (contiguous destination ranges sharing an
// output port), and the fractahedron's digit-driven routing keeps the
// worst-case table a small constant as the machine scales, while e-cube
// hypercube tables hold one region per destination and irregular topologies
// under generic up*/down* sit in between.
func TableSizes() ([]RegionRow, error) {
	type entry struct {
		name string
		tb   *routing.Tables
	}
	f2 := topology.NewFractahedron(topology.Tetra(2, true))
	f3 := topology.NewFractahedron(topology.Tetra(3, true))
	mesh := topology.NewMesh(12, 12, 2)
	ft := topology.NewFatTree(4, 2, 64)
	cube := topology.NewHypercube(6, 1)
	ccc := topology.NewCCC(4)
	se := topology.NewShuffleExchange(6)

	entries := []entry{
		{"fat fractahedron N=2", routing.Fractahedron(f2)},
		{"fat fractahedron N=3", routing.Fractahedron(f3)},
		{"12x12 mesh (YX)", routing.MeshDimOrder(mesh, true)},
		{"4-2 fat tree", routing.FatTree(ft)},
		{"4-2 fat tree (striped)", routing.FatTreeCompact(ft)},
		{"hypercube-6 (e-cube)", routing.HypercubeECube(cube)},
		{"CCC-4 (up*/down*)", routing.UpDownGeneric(ccc.Network, ccc.Routers[0][0])},
		{"shuffle-exch-6 (up*/down*)", routing.UpDownGeneric(se.Network, se.Routers[0])},
	}
	var rows []RegionRow
	for _, e := range entries {
		st := e.tb.RegionSizes()
		rows = append(rows, RegionRow{
			Name:    e.name,
			Nodes:   e.tb.Net.NumNodes(),
			Routers: st.Routers,
			Min:     st.Min,
			Max:     st.Max,
			Mean:    st.Mean,
		})
	}
	return rows, nil
}

// TableSizesString renders the table-footprint comparison.
func TableSizesString(rows []RegionRow) string {
	var sb strings.Builder
	sb.WriteString("§2.1/§2.3 — routing-table regions per router (contiguous destination ranges)\n")
	sb.WriteString("  topology                    | nodes | routers | min | max | mean\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-27s | %5d | %7d | %3d | %3d | %.1f\n",
			r.Name, r.Nodes, r.Routers, r.Min, r.Max, r.Mean)
	}
	sb.WriteString("  => digit-based fractahedral routing keeps tables constant-size as the\n")
	sb.WriteString("     machine grows (the §2.1 'exactly two bits' property)\n")
	return sb.String()
}
