package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// FailoverResult reports a live dual-fabric failover run (§1: "full network
// fault-tolerance can be provided by configuring pairs of router fabrics
// with dual-ported nodes").
type FailoverResult struct {
	Packets     int // offered transfers
	FaultCycle  int
	DeliveredX  int // completed on the primary fabric
	Dropped     int // killed by the fault on X
	FailedOver  int // re-issued on Y by the recovery engine
	DeliveredY  int
	TotalLost   int
	XDeadlocked bool
	YDeadlocked bool
}

// dualFractahedron builds one fabric of the failover/chaos experiments'
// 64-node fat fractahedron pair.
func dualFractahedron() (*topology.Network, *routing.Tables) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	return f.Network, routing.Fractahedron(f)
}

// FailoverSim drives a uniform load over the X fabric of a dual
// fat-fractahedron pair, kills a heavily used inter-router link mid-run,
// and lets the chaos recovery engine re-issue every killed transfer over
// the co-simulated Y fabric — the software failover ServerNet's dual
// fabrics enable. No transfer is lost.
//
// The two fabrics co-simulate in lock step inside chaos.Run, with X drops
// feeding Y injections a backoff later. The single rng feeds only the
// workload generator (victim selection is a deterministic argmax over route
// counts), so the run is reproducible from the seed alone.
func FailoverSim(packets, flits, faultCycle int, seed int64, opts ...runner.Option) (FailoverResult, error) {
	cfg := runner.NewConfig(opts...)
	res := FailoverResult{Packets: packets, FaultCycle: faultCycle}

	// A reference copy of the fabric, for workload shaping and victim
	// selection; chaos.Run builds its own pair from the same closure.
	netX, tbX := dualFractahedron()

	// The failover run is a single simulation point: point index 0 of its
	// own seed space, per the seedflow discipline.
	rng := runner.RNG(seed, 0)
	specs := workload.UniformRandom(rng, netX.NumNodes(), packets, flits, faultCycle*2)

	// Pick the busiest inter-router link under this routing to kill.
	var victim topology.LinkID = -1
	best := -1
	counts := make(map[topology.LinkID]int)
	for _, spec := range specs {
		r, err := tbX.Route(spec.Src, spec.Dst)
		if err != nil {
			return res, err
		}
		for _, ch := range r.Channels {
			a := netX.Device(netX.ChannelSrc(ch).Device).Kind
			b := netX.Device(netX.ChannelDst(ch).Device).Kind
			if a == topology.Router && b == topology.Router {
				counts[netX.ChannelLink(ch)]++
			}
		}
	}
	for l, c := range counts {
		if c > best || (c == best && l < victim) {
			best, victim = c, l
		}
	}

	plan := chaos.Plan{Faults: []chaos.Fault{
		{Fabric: 0, Kind: chaos.LinkKill, Cycle: faultCycle, Link: victim},
	}}
	var cr chaos.Result
	err := timedCost(cfg.Stats, "failover dual fabric", func() (int, int, error) {
		var err error
		cr, err = chaos.Run(chaos.Config{
			Build: dualFractahedron,
			Sim:   sim.Config{FIFODepth: 4, Shards: cfg.Shards},
		}, plan, specs)
		return cr.Cycles, cr.FlitMoves, err
	})
	if err != nil {
		return res, err
	}
	res.DeliveredX = cr.DeliveredX
	res.Dropped = cr.Drops
	res.FailedOver = cr.Reissues
	res.DeliveredY = cr.DeliveredY
	res.TotalLost = cr.Lost + cr.Unresolved
	res.XDeadlocked = cr.XDeadlocked
	res.YDeadlocked = cr.YDeadlocked
	return res, nil
}

// String renders the failover run.
func (r FailoverResult) String() string {
	var sb strings.Builder
	sb.WriteString("§1 — live dual-fabric failover (64-node fat fractahedron pair)\n")
	fmt.Fprintf(&sb, "  %d transfers offered; busiest X link killed at cycle %d\n", r.Packets, r.FaultCycle)
	fmt.Fprintf(&sb, "  fabric X: delivered %d, killed %d (deadlocked=%v)\n", r.DeliveredX, r.Dropped, r.XDeadlocked)
	fmt.Fprintf(&sb, "  fabric Y: re-issued %d, delivered %d (deadlocked=%v)\n", r.FailedOver, r.DeliveredY, r.YDeadlocked)
	fmt.Fprintf(&sb, "  transfers lost end to end: %d\n", r.TotalLost)
	return sb.String()
}
