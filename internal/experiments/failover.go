package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// FailoverResult reports a live dual-fabric failover run (§1: "full network
// fault-tolerance can be provided by configuring pairs of router fabrics
// with dual-ported nodes").
type FailoverResult struct {
	Packets     int // offered transfers
	FaultCycle  int
	DeliveredX  int // completed on the primary fabric
	Dropped     int // killed by the fault on X
	FailedOver  int // re-issued on Y by the driver
	DeliveredY  int
	TotalLost   int
	XDeadlocked bool
	YDeadlocked bool
}

// FailoverSim drives a uniform load over the X fabric of a dual
// fat-fractahedron pair, kills a heavily used inter-router link mid-run,
// and re-issues every killed transfer over the Y fabric — the software
// failover ServerNet's dual fabrics enable. No transfer is lost.
//
// The Y run consumes the X run's drop list, so the two fabrics are
// inherently sequential; the experiment still joins the campaign for cost
// accounting. The single rng feeds only the workload generator (victim
// selection is a deterministic argmax over route counts), so the run is
// reproducible from the seed alone.
func FailoverSim(packets, flits, faultCycle int, seed int64, opts ...runner.Option) (FailoverResult, error) {
	cfg := runner.NewConfig(opts...)
	res := FailoverResult{Packets: packets, FaultCycle: faultCycle}

	dual, err := fabric.NewDual(func() (*topology.Network, *routing.Tables) {
		f := topology.NewFractahedron(topology.Tetra(2, true))
		return f.Network, routing.Fractahedron(f)
	})
	if err != nil {
		return res, err
	}
	netX, tbX := dual.Net[fabric.X], dual.Tables[fabric.X]
	netY, tbY := dual.Net[fabric.Y], dual.Tables[fabric.Y]

	// The failover run is a single simulation point: point index 0 of its
	// own seed space, per the seedflow discipline.
	rng := runner.RNG(seed, 0)
	specs := workload.UniformRandom(rng, netX.NumNodes(), packets, flits, faultCycle*2)

	// Pick the busiest inter-router link under this routing to kill.
	var victim topology.LinkID = -1
	best := -1
	counts := make(map[topology.LinkID]int)
	for _, spec := range specs {
		r, err := tbX.Route(spec.Src, spec.Dst)
		if err != nil {
			return res, err
		}
		for _, ch := range r.Channels {
			a := netX.Device(netX.ChannelSrc(ch).Device).Kind
			b := netX.Device(netX.ChannelDst(ch).Device).Kind
			if a == topology.Router && b == topology.Router {
				counts[netX.ChannelLink(ch)]++
			}
		}
	}
	for l, c := range counts {
		if c > best || (c == best && l < victim) {
			best, victim = c, l
		}
	}

	simX := sim.New(netX, routerAllowAll(netX), sim.Config{FIFODepth: 4})
	var failedOver []sim.PacketSpec
	simX.OnDropped(func(spec sim.PacketSpec, now int) {
		failedOver = append(failedOver, sim.PacketSpec{
			Src: spec.Src, Dst: spec.Dst, Flits: spec.Flits, InjectCycle: 0,
		})
	})
	if err := simX.ScheduleFault(sim.LinkFault{Cycle: faultCycle, Link: victim}); err != nil {
		return res, err
	}
	if err := simX.AddBatch(tbX, specs); err != nil {
		return res, err
	}
	resX := timed(cfg.Stats, "failover fabric X", simX.Run)
	res.DeliveredX = resX.Delivered
	res.Dropped = resX.Dropped
	res.XDeadlocked = resX.Deadlocked
	res.FailedOver = len(failedOver)

	if len(failedOver) > 0 {
		simY := sim.New(netY, routerAllowAll(netY), sim.Config{FIFODepth: 4})
		if err := simY.AddBatch(tbY, failedOver); err != nil {
			return res, err
		}
		resY := timed(cfg.Stats, "failover fabric Y", simY.Run)
		res.DeliveredY = resY.Delivered
		res.YDeadlocked = resY.Deadlocked
	}
	res.TotalLost = packets - res.DeliveredX - res.DeliveredY
	return res, nil
}

// String renders the failover run.
func (r FailoverResult) String() string {
	var sb strings.Builder
	sb.WriteString("§1 — live dual-fabric failover (64-node fat fractahedron pair)\n")
	fmt.Fprintf(&sb, "  %d transfers offered; busiest X link killed at cycle %d\n", r.Packets, r.FaultCycle)
	fmt.Fprintf(&sb, "  fabric X: delivered %d, killed %d (deadlocked=%v)\n", r.DeliveredX, r.Dropped, r.XDeadlocked)
	fmt.Fprintf(&sb, "  fabric Y: re-issued %d, delivered %d (deadlocked=%v)\n", r.FailedOver, r.DeliveredY, r.YDeadlocked)
	fmt.Fprintf(&sb, "  transfers lost end to end: %d\n", r.TotalLost)
	return sb.String()
}
