package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runner"
)

// chaosGrid keeps the campaign cheap enough for -race while still firing
// all three fault kinds per trial.
var chaosGrid = struct {
	trials, packets, flits int
	seed                   int64
}{2, 150, 3, 2}

// TestChaosRecoveryDeterminism pins the acceptance criterion: the campaign
// JSON is byte-identical across worker counts.
func TestChaosRecoveryDeterminism(t *testing.T) {
	var want []byte
	for _, w := range []int{1, 4} {
		cr, err := ChaosRecovery(chaosGrid.trials, chaosGrid.packets, chaosGrid.flits, chaosGrid.seed,
			runner.Workers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		data, err := cr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = data
			// Sanity of the run itself, once: full accounting, online
			// recovery actually exercised.
			if cr.Delivered+cr.Lost+cr.Unresolved != cr.Transfers {
				t.Fatalf("campaign accounting broken: %+v", cr)
			}
			if cr.Unresolved != 0 || cr.Deadlocked != 0 {
				t.Fatalf("unresolved=%d deadlocked=%d", cr.Unresolved, cr.Deadlocked)
			}
			if cr.FailedOver == 0 || cr.Reconfigurations == 0 {
				t.Fatalf("recovery not exercised: %+v", cr)
			}
			continue
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("workers=%d campaign JSON diverged:\n%s\n---\n%s", w, data, want)
		}
	}
}

// TestChaosRecoveryGolden pins the campaign JSON to a committed fixture so
// the fault-plan and recovery behavior cannot drift silently. Regenerate
// with `go test ./internal/experiments -run Golden -update`.
func TestChaosRecoveryGolden(t *testing.T) {
	cr, err := ChaosRecovery(chaosGrid.trials, chaosGrid.packets, chaosGrid.flits, chaosGrid.seed)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "chaosrecovery.golden.json")
	if *update {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("campaign JSON diverged from golden fixture:\n got %s\nwant %s", data, want)
	}
}
