package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SaturationRow reports one topology's measured saturation point under
// uniform random traffic.
type SaturationRow struct {
	Topology string
	// BaseLatency is the average latency at near-zero load.
	BaseLatency float64
	// SatOffered is the highest offered load (flits/node/cycle) at which
	// average latency stayed below LatencyFactor x BaseLatency.
	SatOffered float64
	// SatThroughput is the delivered network throughput at that point.
	SatThroughput float64
}

// LatencyFactor defines saturation: the offered load where average latency
// exceeds this multiple of the zero-load latency.
const LatencyFactor = 4.0

// Saturation sweeps offered load geometrically on each 64-node contender
// and reports the knee of the latency curve — the measured counterpart of
// the paper's bisection and contention arguments: topologies with higher
// worst-case contention saturate earlier.
func Saturation(cycles, flits int, seed int64) ([]SaturationRow, error) {
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	fatSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	thinSys, _, err := core.NewThinFractahedron(2)
	if err != nil {
		return nil, err
	}
	meshSys, _, err := core.NewMesh(6, 6, 2)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		sys  *core.System
	}{
		{"4-2 fat tree", ftSys},
		{"fat fractahedron", fatSys},
		{"thin fractahedron", thinSys},
		{"6x6 mesh", meshSys},
	}

	var rows []SaturationRow
	for _, s := range systems {
		run := func(rate float64) (sim.Result, error) {
			rng := rand.New(rand.NewSource(seed))
			specs := workload.Bernoulli(rng, s.sys.Net.NumNodes(), cycles, flits, rate)
			return s.sys.Simulate(specs, sim.Config{FIFODepth: 4, MaxCycles: 100 * cycles})
		}
		base, err := run(0.001)
		if err != nil {
			return nil, err
		}
		row := SaturationRow{Topology: s.name, BaseLatency: base.AvgLatency}
		rate := 0.002
		lastGood := 0.001
		lastTput := base.ThroughputFPC
		for rate <= 0.5 {
			res, err := run(rate)
			if err != nil {
				return nil, err
			}
			if res.Deadlocked {
				return nil, fmt.Errorf("experiments: %s deadlocked at rate %.3f", s.name, rate)
			}
			if res.AvgLatency > LatencyFactor*base.AvgLatency {
				break
			}
			lastGood, lastTput = rate, res.ThroughputFPC
			rate *= 1.5
		}
		row.SatOffered = lastGood * float64(flits)
		row.SatThroughput = lastTput
		rows = append(rows, row)
	}
	return rows, nil
}

// SaturationString renders the saturation comparison.
func SaturationString(rows []SaturationRow) string {
	var sb strings.Builder
	sb.WriteString("Saturation under uniform traffic (64 nodes; knee at latency > 4x zero-load)\n")
	sb.WriteString("  topology          | zero-load latency | saturation offered f/n/c | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-17s | %17.1f | %24.3f | %.2f\n",
			r.Topology, r.BaseLatency, r.SatOffered, r.SatThroughput)
	}
	sb.WriteString("  => saturation order tracks the contention ranking of Table 2\n")
	return sb.String()
}
