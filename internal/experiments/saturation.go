package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SaturationRow reports one topology's measured saturation point under
// uniform random traffic.
type SaturationRow struct {
	Topology string
	// BaseLatency is the average latency at near-zero load.
	BaseLatency float64
	// SatOffered is the highest offered load (flits/node/cycle) at which
	// average latency stayed below LatencyFactor x BaseLatency.
	SatOffered float64
	// SatThroughput is the delivered network throughput at that point.
	SatThroughput float64
}

// LatencyFactor defines saturation: the offered load where average latency
// exceeds this multiple of the zero-load latency.
const LatencyFactor = 4.0

// Saturation sweeps offered load geometrically on each 64-node contender
// and reports the knee of the latency curve — the measured counterpart of
// the paper's bisection and contention arguments: topologies with higher
// worst-case contention saturate earlier. The per-topology knee searches
// are independent and fan over the runner's worker pool; each probe rung
// of the geometric ladder seeds its workload from (seed, rung index), the
// same for every topology, so the knees stay comparable and the rows are
// identical for any worker count.
func Saturation(cycles, flits int, seed int64, opts ...runner.Option) ([]SaturationRow, error) {
	cfg := runner.NewConfig(opts...)
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	fatSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	thinSys, _, err := core.NewThinFractahedron(2)
	if err != nil {
		return nil, err
	}
	meshSys, _, err := core.NewMesh(6, 6, 2)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		sys  *core.System
	}{
		{"4-2 fat tree", ftSys},
		{"fat fractahedron", fatSys},
		{"thin fractahedron", thinSys},
		{"6x6 mesh", meshSys},
	}

	return runner.Map(cfg, len(systems), func(i int) (SaturationRow, error) {
		s := systems[i]
		run := func(rung int, rate float64) (sim.Result, error) {
			rng := runner.RNG(seed, rung)
			specs := workload.Bernoulli(rng, s.sys.Net.NumNodes(), cycles, flits, rate)
			return observe(cfg, fmt.Sprintf("saturation %s rate=%.3f", s.name, rate),
				s.sys, specs, sim.Config{FIFODepth: 4, MaxCycles: 100 * cycles})
		}
		base, err := run(0, 0.001)
		if err != nil {
			return SaturationRow{}, err
		}
		row := SaturationRow{Topology: s.name, BaseLatency: base.AvgLatency}
		rate := 0.002
		lastGood := 0.001
		lastTput := base.ThroughputFPC
		for rung := 1; rate <= 0.5; rung++ {
			res, err := run(rung, rate)
			if err != nil {
				return SaturationRow{}, err
			}
			if res.Deadlocked {
				return SaturationRow{}, fmt.Errorf("experiments: %s deadlocked at rate %.3f", s.name, rate)
			}
			if res.AvgLatency > LatencyFactor*base.AvgLatency {
				break
			}
			lastGood, lastTput = rate, res.ThroughputFPC
			rate *= 1.5
		}
		row.SatOffered = lastGood * float64(flits)
		row.SatThroughput = lastTput
		return row, nil
	})
}

// SaturationString renders the saturation comparison.
func SaturationString(rows []SaturationRow) string {
	var sb strings.Builder
	sb.WriteString("Saturation under uniform traffic (64 nodes; knee at latency > 4x zero-load)\n")
	sb.WriteString("  topology          | zero-load latency | saturation offered f/n/c | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-17s | %17.1f | %24.3f | %.2f\n",
			r.Topology, r.BaseLatency, r.SatOffered, r.SatThroughput)
	}
	sb.WriteString("  => saturation order tracks the contention ranking of Table 2\n")
	return sb.String()
}
