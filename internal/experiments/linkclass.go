package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/topology"
)

// LinkClassRow aggregates uniform-load utilization and worst-case
// contention over one structural class of fractahedron links.
type LinkClassRow struct {
	Class      string
	Links      int     // unidirectional channels in the class
	MinLoad    int     // routes over the least-used channel
	MaxLoad    int     // routes over the most-used channel
	MeanLoad   float64 // routes per channel
	Contention int     // worst-case matching within the class
}

// fractChannelClass names the structural class of a channel.
func fractChannelClass(f *topology.Fractahedron, ch topology.ChannelID) string {
	src := f.ChannelSrc(ch).Device
	dst := f.ChannelDst(ch).Device
	if f.Device(src).Kind != topology.Router || f.Device(dst).Kind != topology.Router {
		return "" // injection/ejection: excluded
	}
	ms, md := f.Meta(src), f.Meta(dst)
	switch {
	case ms.Level == md.Level && ms.Level >= 1:
		return fmt.Sprintf("intra-level-%d", ms.Level)
	case ms.Level < md.Level || ms.Level == 0:
		return fmt.Sprintf("up L%d->L%d", ms.Level, md.Level)
	default:
		return fmt.Sprintf("down L%d->L%d", ms.Level, md.Level)
	}
}

// FractLinkClasses breaks the 64-node fat fractahedron's uniform-load
// traffic down by structural link class. It explains the contention
// findings: the paper's 4:1 lives on the intra-level-2 diagonals, while the
// inter-level down links — which §3.4 does not analyze — are both the most
// loaded and the most contended (the measured 8:1).
func FractLinkClasses() ([]LinkClassRow, error) {
	sys, f, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	prof, err := contention.Utilization(sys.Tables)
	if err != nil {
		return nil, err
	}
	res, err := contention.MaxLinkContention(sys.Tables)
	if err != nil {
		return nil, err
	}

	type agg struct {
		links, min, max, cont, total int
	}
	classes := make(map[string]*agg)
	for ch, load := range prof.PerChannel {
		cls := fractChannelClass(f, ch)
		if cls == "" {
			continue
		}
		a := classes[cls]
		if a == nil {
			a = &agg{min: load, max: load}
			classes[cls] = a
		}
		a.links++
		a.total += load
		if load < a.min {
			a.min = load
		}
		if load > a.max {
			a.max = load
		}
		if c := res.PerChannel[ch]; c > a.cont {
			a.cont = c
		}
	}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	var rows []LinkClassRow
	for _, n := range names {
		a := classes[n]
		rows = append(rows, LinkClassRow{
			Class:      n,
			Links:      a.links,
			MinLoad:    a.min,
			MaxLoad:    a.max,
			MeanLoad:   float64(a.total) / float64(a.links),
			Contention: a.cont,
		})
	}
	return rows, nil
}

// FractLinkClassesString renders the per-class breakdown.
func FractLinkClassesString(rows []LinkClassRow) string {
	var sb strings.Builder
	sb.WriteString("Link classes of the 64-node fat fractahedron (uniform all-pairs load)\n")
	sb.WriteString("  class           | channels | load min/mean/max | worst contention\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-15s | %8d | %4d/%6.1f/%4d | %d:1\n",
			r.Class, r.Links, r.MinLoad, r.MeanLoad, r.MaxLoad, r.Contention)
	}
	sb.WriteString("  => the inter-level down links carry the concentrated descents; the\n")
	sb.WriteString("     intra-level-2 diagonals hold the paper's 4:1 case\n")
	return sb.String()
}
