package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/runner"
)

// TestSweepSpecPoints pins the point layout (spec-major within one rate),
// the validation, and point determinism: Row(i) must be a pure function
// of (spec, i), identical across calls and shard counts.
func TestSweepSpecPoints(t *testing.T) {
	spec := SweepSpec{
		Specs:     []string{"fat-fract:levels=1", "ring:size=4"},
		Rates:     []float64{0.01, 0.03},
		Cycles:    200,
		Flits:     4,
		FIFODepth: 4,
		Seed:      7,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := spec.Points(); got != 4 {
		t.Fatalf("Points() = %d, want 4", got)
	}
	for i := 0; i < spec.Points(); i++ {
		a, err := spec.Row(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantSpec := spec.Specs[i%2]
		wantRate := spec.Rates[i/2]
		if a.Spec != wantSpec || a.Rate != wantRate {
			t.Fatalf("point %d: (%s, %v), want (%s, %v)", i, a.Spec, a.Rate, wantSpec, wantRate)
		}
		b, err := spec.Row(i, 2) // sharded engine must not change the row
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("point %d: sharded row diverged: %+v vs %+v", i, a, b)
		}
	}

	bad := []SweepSpec{
		{Rates: []float64{0.1}, Cycles: 10, Flits: 1, FIFODepth: 1},
		{Specs: []string{"ring:size=4"}, Cycles: 10, Flits: 1, FIFODepth: 1},
		{Specs: []string{"no-such-topo:x=1"}, Rates: []float64{0.1}, Cycles: 10, Flits: 1, FIFODepth: 1},
		{Specs: []string{"ring:size=4"}, Rates: []float64{-0.5}, Cycles: 10, Flits: 1, FIFODepth: 1},
		{Specs: []string{"ring:size=4"}, Rates: []float64{0.1}, Cycles: 0, Flits: 1, FIFODepth: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	if _, err := spec.Row(spec.Points(), 0); err == nil {
		t.Error("out-of-range point accepted")
	}
}

// TestChaosRecoverySpecMatchesExperiment proves the exported spec runs
// the exact campaign the batch experiment runs: trial-by-trial execution
// through chaos.Trial merges to the same JSON bytes.
func TestChaosRecoverySpecMatchesExperiment(t *testing.T) {
	const trials, packets, flits, seed = 2, 100, 3, 2
	batch, err := ChaosRecovery(trials, packets, flits, seed, runner.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	spec := ChaosRecoverySpec(trials, packets, flits, seed)
	var got []chaos.TrialResult
	for i := 0; i < trials; i++ {
		tr, err := chaos.Trial(spec, i)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tr)
	}
	if !reflect.DeepEqual(got, batch.Trials) {
		t.Fatal("trial-by-trial execution diverged from the batch campaign")
	}
}

// TestStatsNeverReachesRows machine-checks the one wall-clock exemption
// in the determinism contract: runner.Stats is summary-only, so no
// campaign row type — nothing that is marshalled into campaign JSON or
// streamed by the campaign server — may carry a wall-clock-typed value,
// and a stats-attached run must produce byte-identical row JSON to a
// stats-free one. Together with the nondet analyzer's allowlist
// (wall-clock reads only in campaign.go, feeding runner.Stats), this
// pins that Stats output can never reach a result row.
func TestStatsNeverReachesRows(t *testing.T) {
	rowTypes := map[string]reflect.Type{
		"SweepRow":             reflect.TypeOf(SweepRow{}),
		"SweepPointRow":        reflect.TypeOf(SweepPointRow{}),
		"DBScenarioRow":        reflect.TypeOf(DBScenarioRow{}),
		"chaos.CampaignResult": reflect.TypeOf(chaos.CampaignResult{}),
		"chaos.TrialResult":    reflect.TypeOf(chaos.TrialResult{}),
	}
	for name, typ := range rowTypes {
		if path := findWallClock(typ, nil); path != "" {
			t.Errorf("%s carries a wall-clock-typed field at %s", name, path)
		}
	}
	// The exemption itself must still hold wall time — otherwise the
	// check above is vacuous.
	if findWallClock(reflect.TypeOf(runner.Summary{}), nil) == "" {
		t.Error("runner.Summary no longer carries wall time; the exemption test is vacuous")
	}

	// Behavioral half: identical row JSON with and without stats attached,
	// across two runs whose wall-clock costs necessarily differ.
	run := func(opts ...runner.Option) []byte {
		rows, err := SimSweep([]float64{0.01}, 200, 4, 1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := run()
	st := runner.NewStats()
	withStats := run(runner.WithStats(st), runner.Workers(3))
	if string(plain) != string(withStats) {
		t.Fatal("stats-attached run changed the row JSON")
	}
	if st.Summary().Runs == 0 {
		t.Fatal("stats were not recorded; the comparison is vacuous")
	}
	if !strings.Contains(st.String(), "runs") {
		t.Fatalf("summary text: %s", st)
	}
}

// findWallClock walks a type for time.Time / time.Duration fields,
// returning the path of the first offender ("" if clean).
func findWallClock(typ reflect.Type, seen []reflect.Type) string {
	for _, s := range seen {
		if s == typ {
			return ""
		}
	}
	seen = append(seen, typ)
	switch typ {
	case reflect.TypeOf(time.Time{}), reflect.TypeOf(time.Duration(0)):
		return typ.String()
	}
	switch typ.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
		if typ.Kind() == reflect.Map {
			if p := findWallClock(typ.Key(), seen); p != "" {
				return "[key]" + p
			}
		}
		if p := findWallClock(typ.Elem(), seen); p != "" {
			return "[]" + p
		}
	case reflect.Struct:
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if p := findWallClock(f.Type, seen); p != "" {
				return f.Name + "." + p
			}
		}
	}
	return ""
}
