package experiments

// Point-shaped campaign specs for the campaign server (internal/serve).
// A server job must be able to compute, checkpoint and resume its points
// individually, so these specs expose the same sweeps the batch
// experiments run as pure point functions: Row(i) depends only on
// (spec, i) — never on which worker ran it, or whether points before it
// were computed in this process or restored from a checkpoint. That is
// the whole resume story: re-running any subset of points reproduces the
// exact bytes of an uninterrupted campaign.

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SweepSpec describes an offered-load simulation sweep as independently
// computable points: the cross product of Specs (core.ParseSystem
// grammar) and Rates. Point i maps to spec i%len(Specs) at rate
// i/len(Specs), and every topology at one rate draws its workload from
// the same (Seed, rate-index) stream — the SimSweep convention that
// keeps curves comparable. The JSON form is the campaign server's job
// payload and cache-key input, so field names are part of the wire
// contract.
type SweepSpec struct {
	Specs     []string  `json:"specs"`
	Rates     []float64 `json:"rates"`
	Cycles    int       `json:"cycles"`
	Flits     int       `json:"flits"`
	FIFODepth int       `json:"fifo_depth"`
	VCs       int       `json:"vcs,omitempty"`
	Seed      int64     `json:"seed"`
}

// SweepPointRow is one point's result row, the NDJSON line the campaign
// server streams.
type SweepPointRow struct {
	Spec       string  `json:"spec"`
	Rate       float64 `json:"rate"`
	Offered    float64 `json:"offered"`
	Cycles     int     `json:"cycles"`
	Delivered  int     `json:"delivered"`
	AvgLatency float64 `json:"avg_latency"`
	Throughput float64 `json:"throughput_fpc"`
	Deadlocked bool    `json:"deadlocked"`
}

// Points is the campaign size: every (spec, rate) pair.
func (s SweepSpec) Points() int { return len(s.Specs) * len(s.Rates) }

// Validate rejects empty or nonsensical sweeps up front, parsing every
// topology spec so a bad job fails at admission, not at point 17.
func (s SweepSpec) Validate() error {
	if len(s.Specs) == 0 {
		return fmt.Errorf("sweep: no topology specs")
	}
	if len(s.Rates) == 0 {
		return fmt.Errorf("sweep: no rates")
	}
	if s.Cycles < 1 {
		return fmt.Errorf("sweep: cycles %d, need >= 1", s.Cycles)
	}
	if s.Flits < 1 {
		return fmt.Errorf("sweep: flits %d, need >= 1", s.Flits)
	}
	if s.FIFODepth < 1 {
		return fmt.Errorf("sweep: fifo_depth %d, need >= 1", s.FIFODepth)
	}
	if s.VCs < 0 {
		return fmt.Errorf("sweep: vcs %d, need >= 0", s.VCs)
	}
	for _, spec := range s.Specs {
		if _, _, err := core.ParseSystem(spec); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, r := range s.Rates {
		if r <= 0 || r > 1 {
			return fmt.Errorf("sweep: rate %.6f outside (0, 1]", r)
		}
	}
	return nil
}

// Row computes one point. Shards configures the per-point engine shard
// count (an execution detail: it can never change the row, so it is not
// part of the job identity).
func (s SweepSpec) Row(point, shards int) (SweepPointRow, error) {
	if point < 0 || point >= s.Points() {
		return SweepPointRow{}, fmt.Errorf("sweep: point %d outside [0, %d)", point, s.Points())
	}
	spec := s.Specs[point%len(s.Specs)]
	rateIdx := point / len(s.Specs)
	rate := s.Rates[rateIdx]
	sys, _, err := core.ParseSystem(spec)
	if err != nil {
		return SweepPointRow{}, err
	}
	rng := runner.RNG(s.Seed, rateIdx)
	specs := workload.Bernoulli(rng, sys.Net.NumNodes(), s.Cycles, s.Flits, rate)
	res, err := sys.Simulate(specs, sim.Config{FIFODepth: s.FIFODepth, VirtualChannels: s.VCs, Shards: shards})
	if err != nil {
		return SweepPointRow{}, err
	}
	return SweepPointRow{
		Spec:       spec,
		Rate:       rate,
		Offered:    rate * float64(s.Flits),
		Cycles:     res.Cycles,
		Delivered:  res.Delivered,
		AvgLatency: res.AvgLatency,
		Throughput: res.ThroughputFPC,
		Deadlocked: res.Deadlocked,
	}, nil
}

// ChaosRecoverySpec is the chaos-recovery campaign configuration the
// ChaosRecovery experiment runs, exported so the campaign server can
// execute the same campaign trial by trial (chaos.Trial) with
// checkpoint/resume. Equal arguments produce the exact trial stream of
// the batch experiment.
func ChaosRecoverySpec(trials, packets, flits int, seed int64) chaos.CampaignSpec {
	return chaos.CampaignSpec{
		Trials:  trials,
		Packets: packets,
		Flits:   flits,
		Window:  80,
		Seed:    seed,
		Plan: chaos.PlanSpec{
			LinkKills: 1, LinkFlaps: 1, RouterKills: 1,
			Window: 40, RepairAfter: 160,
		},
		Engine: chaos.Config{
			Build:       dualFractahedron,
			Sim:         sim.Config{FIFODepth: 4, TimeoutCycles: 200, MaxRetries: 1},
			Reconfigure: true,
		},
	}
}
