package experiments

// The archetype headline tests: the parallel experiment engine must return
// bit-identical rows for every worker count (the (seed, point index)
// seeding contract), and the parallel SimSweep must reproduce a plain
// sequential reference implementation exactly — both live here so any
// change to the seeding contract or the merge order fails loudly.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// sweepGrid is the shared small grid: cheap enough for -race, rich enough
// to exercise multiple rates and all three topologies.
var sweepGrid = struct {
	rates  []float64
	cycles int
	flits  int
	seed   int64
}{[]float64{0.002, 0.02}, 400, 8, 1}

// TestSimSweepDeterminism runs the same sweep with 1, 4 and GOMAXPROCS
// workers and requires deeply equal rows — pinning that results depend
// only on (seed, point index), never on scheduling.
func TestSimSweepDeterminism(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want []SweepRow
	for _, w := range counts {
		rows, err := SimSweep(sweepGrid.rates, sweepGrid.cycles, sweepGrid.flits, sweepGrid.seed,
			runner.Workers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("workers=%d produced different rows:\n got %+v\nwant %+v", w, rows, want)
		}
	}
}

// TestSaturationDeterminism pins the same property for the adaptive knee
// search, whose probe ladder runs inside each worker.
func TestSaturationDeterminism(t *testing.T) {
	var want []SaturationRow
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rows, err := Saturation(300, 8, 1, runner.Workers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", w, rows, want)
		}
	}
}

// TestLargeSimDeterminism covers the 512-node points (the heaviest runs,
// and the ones most likely to expose a shared-state race under -race).
func TestLargeSimDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node simulation")
	}
	var want []LargeSimRow
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		rows, err := LargeSim([]float64{0.004}, 200, 8, 3, runner.Workers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("workers=%d diverged", w)
		}
	}
}

// simSweepSequentialRef is a plain nested-loop reference implementation of
// SimSweep — no runner, no goroutines — enforcing the same seeding
// contract (workload from (seed, rate index)). The parallel path must
// reproduce it bit for bit.
func simSweepSequentialRef(rates []float64, warmCycles, flits int, seed int64) ([]SweepRow, error) {
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	frSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	thinSys, _, err := core.NewThinFractahedron(2)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		sys  *core.System
	}{{"4-2 fat tree", ftSys}, {"fat fractahedron", frSys}, {"thin fractahedron", thinSys}}

	var rows []SweepRow
	for ri, rate := range rates {
		for _, s := range systems {
			rng := runner.RNG(seed, ri)
			specs := workload.Bernoulli(rng, s.sys.Net.NumNodes(), warmCycles, flits, rate)
			res, err := s.sys.Simulate(specs, sim.Config{FIFODepth: 4})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{
				Topology:   s.name,
				Rate:       rate,
				Offered:    rate * float64(flits),
				Delivered:  res.Delivered,
				AvgLatency: res.AvgLatency,
				Throughput: res.ThroughputFPC,
				Deadlocked: res.Deadlocked,
			})
		}
	}
	return rows, nil
}

// TestSimSweepMatchesSequential is the equivalence test: parallel engine
// output == sequential reference, element for element.
func TestSimSweepMatchesSequential(t *testing.T) {
	want, err := simSweepSequentialRef(sweepGrid.rates, sweepGrid.cycles, sweepGrid.flits, sweepGrid.seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimSweep(sweepGrid.rates, sweepGrid.cycles, sweepGrid.flits, sweepGrid.seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel sweep diverged from sequential reference:\n got %+v\nwant %+v", got, want)
	}
}

// TestSimSweepGolden pins the sweep rows to a committed fixture, so the
// seeding contract cannot drift silently across refactors. Regenerate with
// `go test ./internal/experiments -run Golden -update` and review the diff.
func TestSimSweepGolden(t *testing.T) {
	rows, err := SimSweep(sweepGrid.rates, sweepGrid.cycles, sweepGrid.flits, sweepGrid.seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "simsweep.golden.json")
	if *update {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	var want []SweepRow
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("sweep rows diverged from golden fixture:\n got %+v\nwant %+v", rows, want)
	}
}

// TestCampaignStats checks runs are recorded once per point with real
// cycle counts when a Stats accumulator rides along.
func TestCampaignStats(t *testing.T) {
	st := runner.NewStats()
	rows, err := SimSweep([]float64{0.005}, 200, 8, 1, runner.Workers(2), runner.WithStats(st))
	if err != nil {
		t.Fatal(err)
	}
	sum := st.Summary()
	if sum.Runs != len(rows) {
		t.Fatalf("recorded %d runs for %d points", sum.Runs, len(rows))
	}
	if sum.Cycles == 0 || sum.FlitMoves == 0 {
		t.Fatalf("empty cost accounting: %+v", sum)
	}
	if sum.SimWall <= 0 {
		t.Fatalf("no simulation time accounted: %+v", sum)
	}
}

// TestFailoverRepeatable pins the satellite audit of FailoverSim: after
// moving the per-fabric wall-clock timing behind the campaign accounting
// helper (timed) and deriving the workload stream through runner.RNG,
// the result row must be a pure function of the arguments — identical
// across repeated runs, and identical whether or not a Stats accumulator
// is attached (wall time may only reach Stats, never the row).
func TestFailoverRepeatable(t *testing.T) {
	first, err := FailoverSim(300, 8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		st := runner.NewStats()
		again, err := FailoverSim(300, 8, 50, 7, runner.WithStats(st))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\n got %+v\nwant %+v", run, again, first)
		}
		if sum := st.Summary(); sum.Runs == 0 || sum.SimWall <= 0 {
			t.Fatalf("run %d: wall-clock accounting missing from stats: %+v", run, sum)
		}
	}
	// The row is a coarse aggregate, so adjacent seeds can collide by
	// chance; require only that some nearby seed moves the result.
	moved := false
	for _, seed := range []int64{8, 9, 10} {
		diff, err := FailoverSim(300, 8, 50, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, diff) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatalf("seed changes did not move the result; seed is not reaching the workload: %+v", first)
	}
}
