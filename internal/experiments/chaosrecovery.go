package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/runner"
)

// ChaosRecovery runs a deterministic chaos campaign on the 64-node dual
// fat-fractahedron pair: each trial draws a fault plan — one permanent link
// kill, one transient link flap, one router kill, all on the X fabric —
// plus a uniform workload from its own (seed, trial) stream, then exercises
// the full online recovery story: end-node timeout detection, hot
// reconfiguration of the degraded fabric's routing tables and path
// disables (re-certified acyclic and component-connected before each
// swap), and retry failover onto the co-simulated Y fabric with capped
// exponential backoff. The campaign JSON is byte-identical for any worker
// count.
func ChaosRecovery(trials, packets, flits int, seed int64, opts ...runner.Option) (*chaos.CampaignResult, error) {
	cfg := runner.NewConfig(opts...)
	spec := ChaosRecoverySpec(trials, packets, flits, seed)
	spec.Engine.Sim.Shards = cfg.Shards
	var cr *chaos.CampaignResult
	err := timedCost(cfg.Stats, "chaos recovery campaign", func() (int, int, error) {
		var err error
		cr, err = chaos.Campaign(spec, cfg)
		if err != nil {
			return 0, 0, err
		}
		cycles, moves := 0, 0
		for _, t := range cr.Trials {
			cycles += t.Result.Cycles
			moves += t.Result.FlitMoves
		}
		return cycles, moves, nil
	})
	return cr, err
}

// ChaosRecoveryString renders a chaos campaign.
func ChaosRecoveryString(cr *chaos.CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("§1/§2 — online fault recovery (chaos campaign, 64-node dual fractahedron)\n")
	fmt.Fprintf(&sb, "  %d trials, %d transfers; per trial: 1 link kill + 1 link flap + 1 router kill on X\n",
		len(cr.Trials), cr.Transfers)
	for _, t := range cr.Trials {
		r := t.Result
		fmt.Fprintf(&sb, "  trial %d: drops %d, re-issued %d, failed over %d, lost %d", t.Trial,
			r.Drops, r.Reissues, r.DeliveredY, r.Lost)
		fmt.Fprintf(&sb, "; reconfigured %dx (recert failures %d)", r.Reconfigurations, r.RecertFailures)
		fmt.Fprintf(&sb, "; recovery %d cycles, dip %d%% for %d cycles\n",
			r.RecoveryCycles, r.DipDepthPct, r.DipWidthCycles)
	}
	fmt.Fprintf(&sb, "  campaign: delivered %d/%d (%d failed over), lost %d, unresolved %d\n",
		cr.Delivered, cr.Transfers, cr.FailedOver, cr.Lost, cr.Unresolved)
	fmt.Fprintf(&sb, "  reconfigurations %d, recertification failures %d, deadlocked fabrics %d\n",
		cr.Reconfigurations, cr.RecertFailures, cr.Deadlocked)
	return sb.String()
}
