package experiments

import (
	"fmt"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// FrontierRow is one fractahedral design point on the cost/performance
// menu.
type FrontierRow struct {
	Config         string
	Nodes          int
	Routers        int
	RoutersPerNode float64
	MaxHops        int
	Bisection      int
	BisectionPerNd float64
	Contention     int
}

// CostPerformanceFrontier enumerates the fractahedron family's design
// points — thin vs fat, depth, and ensemble radix — and reports the
// cost/performance menu §4 claims the topology "allows for tradeoffs
// between cost and performance" across. Bisection is measured (structural
// seed cut for the larger instances).
func CostPerformanceFrontier() ([]FrontierRow, error) {
	configs := []struct {
		name string
		cfg  topology.FractConfig
	}{
		{"thin N=1 (tetrahedron)", topology.Tetra(1, false)},
		{"thin N=2", topology.Tetra(2, false)},
		{"fat N=2", topology.Tetra(2, true)},
		{"thin N=3", topology.Tetra(3, false)},
		{"fat N=3", topology.Tetra(3, true)},
		{"fat N=2, group 3", topology.FractConfig{Group: 3, Down: 2, Levels: 2, Fat: true}},
		{"fat N=2, group 5", topology.FractConfig{Group: 5, Down: 2, Levels: 2, Fat: true}},
	}
	var rows []FrontierRow
	for _, c := range configs {
		sys, f, err := core.NewFractahedron(c.cfg)
		if err != nil {
			return nil, err
		}
		row := FrontierRow{
			Config:         c.name,
			Nodes:          f.NumNodes(),
			Routers:        f.NumRouters(),
			RoutersPerNode: float64(f.NumRouters()) / float64(f.NumNodes()),
		}
		if f.NumNodes() <= 128 {
			res, err := contention.MaxLinkContention(sys.Tables)
			if err != nil {
				return nil, err
			}
			row.Contention = res.Max
			hops, err := metrics.Hops(sys.Tables)
			if err != nil {
				return nil, err
			}
			row.MaxHops = hops.Max
			row.Bisection = metrics.Bisection(f.Network, 2, 1).Cut
		} else {
			// Large instances: formula-grade values (verified at smaller
			// depths by the tests).
			if c.cfg.Fat {
				row.MaxHops = 3*c.cfg.Levels - 1
			} else {
				row.MaxHops = 4*c.cfg.Levels - 2
			}
			row.Bisection = metrics.Bisection(f.Network, 0, 1).Cut
			row.Contention = -1
		}
		row.BisectionPerNd = float64(row.Bisection) / float64(row.Nodes)
		rows = append(rows, row)
	}
	return rows, nil
}

// FrontierString renders the cost/performance menu.
func FrontierString(rows []FrontierRow) string {
	var sb strings.Builder
	sb.WriteString("§4 — fractahedral cost/performance menu\n")
	sb.WriteString("  config                 | nodes | routers | rtr/node | max hops | bisection (per node) | contention\n")
	for _, r := range rows {
		cont := "-"
		if r.Contention > 0 {
			cont = fmt.Sprintf("%d:1", r.Contention)
		}
		fmt.Fprintf(&sb, "  %-22s | %5d | %7d | %8.3f | %8d | %9d (%.3f) | %s\n",
			r.Config, r.Nodes, r.Routers, r.RoutersPerNode, r.MaxHops, r.Bisection, r.BisectionPerNd, cont)
	}
	sb.WriteString("  => depth buys scale, layers buy bandwidth, radix buys ports —\n")
	sb.WriteString("     each dimension trades routers for performance independently\n")
	return sb.String()
}
