package experiments

import (
	"fmt"
	"strings"

	"repro/internal/contention"
	"repro/internal/deadlock"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/topology"
)

// BackgroundRow compares one of §2's listed MPP topologies at roughly 64
// nodes, all under deadlock-free table routing.
type BackgroundRow struct {
	Name         string
	Nodes        int
	Routers      int
	PortsPer     int
	MaxHops      int
	AvgHops      float64
	Stretch      float64 // max routed/shortest hop ratio (1.0 = minimal)
	Contention   int
	Bisection    int
	DeadlockFree bool
}

// BackgroundTopologies measures the full §2 topology zoo — ring, mesh,
// torus, binary tree, fat tree, hypercube, cube-connected cycles,
// shuffle-exchange — against the fractahedron, each with a deadlock-free
// routing (the topology-specific algorithm where one exists, generic
// up*/down* otherwise).
func BackgroundTopologies() ([]BackgroundRow, error) {
	type entry struct {
		name  string
		net   *topology.Network
		tb    *routing.Tables
		ports int
	}

	ring := topology.NewRing(32, 2)
	mesh := topology.NewMesh(6, 6, 2)
	torus := topology.NewTorus(6, 6, 2)
	btree := topology.NewFatTree(2, 1, 64)
	ftree := topology.NewFatTree(4, 2, 64)
	cube := topology.NewHypercube(6, 1)
	ccc := topology.NewCCC(4) // 4*16 = 64 nodes
	se := topology.NewShuffleExchange(6)
	thin := topology.NewFractahedron(topology.Tetra(2, false))
	fat := topology.NewFractahedron(topology.Tetra(2, true))

	entries := []entry{
		{"ring", ring.Network, routing.RingSeamless(ring), 4},
		{"2-D mesh", mesh.Network, routing.MeshDimOrder(mesh, true), 6},
		{"torus (2 VC dateline)", torus.Network, routing.TorusDateline(torus), 6},
		{"binary tree", btree.Network, routing.FatTree(btree), 3},
		{"4-2 fat tree", ftree.Network, routing.FatTree(ftree), 6},
		{"hypercube (e-cube)", cube.Network, routing.HypercubeECube(cube), 7},
		{"cube-connected cycles", ccc.Network, routing.UpDownGeneric(ccc.Network, ccc.Routers[0][0]), 4},
		{"shuffle-exchange", se.Network, routing.UpDownGeneric(se.Network, se.Routers[0]), 4},
		{"thin fractahedron", thin.Network, routing.Fractahedron(thin), 6},
		{"fat fractahedron", fat.Network, routing.Fractahedron(fat), 6},
	}

	var rows []BackgroundRow
	for _, e := range entries {
		hops, err := metrics.Hops(e.tb)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		cont, err := contention.MaxLinkContention(e.tb)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		free := false
		if e.tb.NumVC() > 1 {
			rep, err := deadlock.AnalyzeVC(e.tb)
			if err != nil {
				return nil, err
			}
			free = rep.Free
		} else {
			rep, err := deadlock.Analyze(e.tb)
			if err != nil {
				return nil, err
			}
			free = rep.Free
		}
		bis := metrics.Bisection(e.net, 2, 1)
		stretch, err := metrics.Stretch(e.tb)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BackgroundRow{
			Name:         e.name,
			Nodes:        e.net.NumNodes(),
			Routers:      e.net.NumRouters(),
			PortsPer:     e.ports,
			MaxHops:      hops.Max,
			AvgHops:      hops.Mean,
			Stretch:      stretch.Max,
			Contention:   cont.Max,
			Bisection:    bis.Cut,
			DeadlockFree: free,
		})
	}
	return rows, nil
}

// BackgroundString renders the topology zoo comparison.
func BackgroundString(rows []BackgroundRow) string {
	var sb strings.Builder
	sb.WriteString("§2 topology zoo at ~64 nodes, deadlock-free routing everywhere\n")
	sb.WriteString("  topology              | nodes | routers | ports | max hops | avg hops | stretch | contention | bisection | free\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-21s | %5d | %7d | %5d | %8d | %8.2f | %7.2f | %8d:1 | %9d | %v\n",
			r.Name, r.Nodes, r.Routers, r.PortsPer, r.MaxHops, r.AvgHops, r.Stretch, r.Contention, r.Bisection, r.DeadlockFree)
	}
	return sb.String()
}
