package experiments

import (
	"fmt"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/routing"
	"repro/internal/topology"
)

// MeshRow is one mesh size of §3.1.
type MeshRow struct {
	Cols, Rows    int
	Nodes         int
	Routers       int
	MaxHops       int
	PaperMaxHops  int
	MaxContention int // 0 when skipped for size
}

// Section31Mesh regenerates §3.1's mesh scaling observations: a 6x6 mesh
// for 64+ nodes with 11 max hops and 10:1 contention, 8x8 with 15 hops,
// 23x23 with 45 hops. Contention is computed exactly for the 6x6 case and
// skipped (0) for the larger meshes.
func Section31Mesh() ([]MeshRow, error) {
	cases := []struct {
		cols, rows, paperHops int
		withContention        bool
	}{
		{6, 6, 11, true},
		{8, 8, 15, false},
		{23, 23, 45, false},
	}
	var rows []MeshRow
	for _, c := range cases {
		m := topology.NewMesh(c.cols, c.rows, 2)
		tb := routing.MeshDimOrder(m, true)
		row := MeshRow{
			Cols: c.cols, Rows: c.rows,
			Nodes:        m.NumNodes(),
			Routers:      m.NumRouters(),
			PaperMaxHops: c.paperHops,
		}
		// Max hops occur corner to corner; route one such pair.
		r, err := tb.Route(0, m.NumNodes()-1)
		if err != nil {
			return nil, err
		}
		row.MaxHops = r.RouterHops()
		if c.withContention {
			res, err := contention.MaxLinkContention(tb)
			if err != nil {
				return nil, err
			}
			row.MaxContention = res.Max
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Section31String renders the mesh scaling table.
func Section31String(rows []MeshRow) string {
	var sb strings.Builder
	sb.WriteString("§3.1 — 2-D mesh with 6-port routers (4 directions + 2 nodes)\n")
	sb.WriteString("  mesh  | nodes | routers | max hops (paper) | max contention\n")
	for _, r := range rows {
		cont := "-"
		if r.MaxContention > 0 {
			cont = fmt.Sprintf("%d:1", r.MaxContention)
		}
		fmt.Fprintf(&sb, "  %2dx%-2d | %5d | %7d | %8d (%d) | %s\n",
			r.Cols, r.Rows, r.Nodes, r.Routers, r.MaxHops, r.PaperMaxHops, cont)
	}
	return sb.String()
}

// HypercubeRow is one dimension of §3.2's feasibility argument.
type HypercubeRow struct {
	Dim         int
	Routers     int
	Nodes       int
	PortsNeeded int
	Feasible6   bool // buildable from 6-port routers with 1 node per router
	Bisection   int  // 2^(dim-1); computed for small dims, formula beyond
}

// Section32Hypercube regenerates §3.2: a 64-node hypercube needs 7-port
// routers, and hypercube bandwidth is fixed by the dimension with no
// cost-performance knob.
func Section32Hypercube() []HypercubeRow {
	var rows []HypercubeRow
	for dim := 3; dim <= 7; dim++ {
		row := HypercubeRow{
			Dim:         dim,
			Routers:     1 << dim,
			Nodes:       1 << dim,
			PortsNeeded: topology.HypercubePortsNeeded(dim, 1),
			Bisection:   1 << (dim - 1),
		}
		row.Feasible6 = row.PortsNeeded <= 6
		rows = append(rows, row)
	}
	return rows
}

// Section32String renders the hypercube feasibility table.
func Section32String(rows []HypercubeRow) string {
	var sb strings.Builder
	sb.WriteString("§3.2 — hypercube feasibility with 6-port routers (1 node/router)\n")
	sb.WriteString("  dim | nodes | ports needed | buildable with 6 ports | bisection (fixed)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %3d | %5d | %12d | %22v | %d\n",
			r.Dim, r.Nodes, r.PortsNeeded, r.Feasible6, r.Bisection)
	}
	sb.WriteString("  => the 64-node (6-D) hypercube needs 7 ports; bandwidth scales only with dim\n")
	return sb.String()
}

// FatTreeResult is §3.3's 4-2 fat tree analysis.
type FatTreeResult struct {
	Routers       int
	Levels        int
	AvgHops       float64
	MaxContention int
	Bisection     int
	DeadlockFree  bool
	// PaperSet is the contention of the paper's hand-picked transfer set
	// (nodes 48-59 -> 0-11). Its value depends on which static destination
	// partition the routing uses: the paper's Figure 6 labeling funnels
	// this exact set onto one link; our digit partition spreads it. The
	// pigeonhole argument is partition-independent, which WitnessSet shows.
	PaperSet int
	// WitnessSet re-checks the matching's own worst 12-transfer set through
	// ContentionOfSet: for ANY static partition such a set exists (= 12).
	WitnessSet int
}

// Section33FatTree regenerates §3.3.
func Section33FatTree() (FatTreeResult, error) {
	var out FatTreeResult
	sys, ft, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return out, err
	}
	a, err := sys.Analyze(core.AnalyzeOptions{BisectionRestarts: 2})
	if err != nil {
		return out, err
	}
	out.Routers = a.Cost.Routers
	out.Levels = ft.Levels
	out.AvgHops = a.Hops.Mean
	out.MaxContention = a.Contention.Max
	out.Bisection = a.Bisection.Cut
	out.DeadlockFree = a.Deadlock.Free

	var set []contention.Transfer
	for i := 0; i < 12; i++ {
		set = append(set, contention.Transfer{Src: 48 + i, Dst: i})
	}
	out.PaperSet, _, err = contention.ContentionOfSet(sys.Tables, set)
	if err != nil {
		return out, err
	}
	out.WitnessSet, _, err = contention.ContentionOfSet(sys.Tables, a.Contention.Witness)
	if err != nil {
		return out, err
	}
	return out, nil
}

// String renders the §3.3 analysis.
func (r FatTreeResult) String() string {
	var sb strings.Builder
	sb.WriteString("§3.3 — 64-node 4-2 fat tree\n")
	fmt.Fprintf(&sb, "  routers=%d levels=%d avg hops=%.2f bisection=%d deadlock-free=%v\n",
		r.Routers, r.Levels, r.AvgHops, r.Bisection, r.DeadlockFree)
	fmt.Fprintf(&sb, "  max link contention %d:1 (paper: 12:1)\n", r.MaxContention)
	fmt.Fprintf(&sb, "  paper's literal set (48-59 -> 0-11) under our partition: %d on one link\n", r.PaperSet)
	fmt.Fprintf(&sb, "  matching's witness set under our partition: %d on one link (pigeonhole bound)\n", r.WitnessSet)
	return sb.String()
}

// DeadlockRow summarizes one routing's CDG analysis.
type DeadlockRow struct {
	Topology  string
	Algorithm string
	Channels  int
	Deps      int
	Free      bool
}

// DeadlockSummary runs the Dally–Seitz analysis across the whole topology
// zoo — the verification matrix behind §2 and §2.4.
func DeadlockSummary() ([]DeadlockRow, error) {
	type entry struct {
		name string
		tb   *routing.Tables
	}
	ring := topology.NewRing(4, 1)
	mesh := topology.NewMesh(4, 4, 2)
	torus := topology.NewTorus(4, 4, 1)
	cube := topology.NewHypercube(3, 1)
	ft := topology.NewFatTree(4, 2, 64)
	thin := topology.NewFractahedron(topology.Tetra(2, false))
	fat := topology.NewFractahedron(topology.Tetra(2, true))

	// Unidirectional torus routing: the classic deadlocked counterexample.
	torusUni := routing.Build(torus.Network, "torus-unidir", func(router topology.DeviceID, dst int) int {
		x, y := torus.Coord(router)
		dx, dy := torus.NodeCoord(dst)
		if x != dx {
			return topology.MeshPortXPlus
		}
		if y != dy {
			return topology.MeshPortYPlus
		}
		return torus.NodePort(dst)
	})

	entries := []entry{
		{"ring-4", routing.RingClockwise(ring)},
		{"ring-4", routing.RingSeamless(ring)},
		{"mesh-4x4", routing.MeshDimOrder(mesh, true)},
		{"torus-4x4", torusUni},
		{"hypercube-3", routing.HypercubeECube(cube)},
		{"hypercube-3", routing.HypercubeUpDown(cube)},
		{"fattree-4-2-64", routing.FatTree(ft)},
		{"thin-fract-64", routing.Fractahedron(thin)},
		{"fat-fract-64", routing.Fractahedron(fat)},
	}
	var rows []DeadlockRow
	for _, e := range entries {
		rep, err := deadlock.Analyze(e.tb)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DeadlockRow{
			Topology:  e.name,
			Algorithm: e.tb.Algorithm,
			Channels:  rep.Channels,
			Deps:      rep.Deps,
			Free:      rep.Free,
		})
	}
	return rows, nil
}

// DeadlockSummaryString renders the verification matrix.
func DeadlockSummaryString(rows []DeadlockRow) string {
	var sb strings.Builder
	sb.WriteString("§2/§2.4 — channel-dependency-graph verification matrix\n")
	sb.WriteString("  topology        | algorithm          | channels | deps | deadlock-free\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-15s | %-18s | %8d | %4d | %v\n",
			r.Topology, r.Algorithm, r.Channels, r.Deps, r.Free)
	}
	return sb.String()
}
