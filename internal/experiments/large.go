package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// LargeSimRow is one 512-node simulation point.
type LargeSimRow struct {
	Topology   string
	Nodes      int
	Routers    int
	Rate       float64
	Delivered  int
	AvgLatency float64
	Throughput float64
	Deadlocked bool
}

// LargeSim is §4's stated future work taken literally: flit-level
// simulation of LARGE fractahedral topologies under load. It runs open-loop
// Bernoulli traffic over the 512-node thin and fat N=3 fractahedrons and
// reports the latency/throughput points; the thin variant's 4-link
// bisection saturates it far below the fat variant's 64. These are the
// slowest points in the suite, so they gain the most from the worker pool;
// per-rate workload seeds keep both variants under the same packet stream
// at each rate (the test asserts equal delivery counts).
func LargeSim(rates []float64, cycles, flits int, seed int64, opts ...runner.Option) ([]LargeSimRow, error) {
	cfg := runner.NewConfig(opts...)
	fat, fatF, err := core.NewFatFractahedron(3)
	if err != nil {
		return nil, err
	}
	thin, thinF, err := core.NewThinFractahedron(3)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name    string
		sys     *core.System
		routers int
	}{
		{"fat fractahedron N=3", fat, fatF.NumRouters()},
		{"thin fractahedron N=3", thin, thinF.NumRouters()},
	}

	return runner.Map(cfg, len(rates)*len(systems), func(i int) (LargeSimRow, error) {
		rate, s := rates[i/len(systems)], systems[i%len(systems)]
		rng := runner.RNG(seed, i/len(systems))
		specs := workload.Bernoulli(rng, s.sys.Net.NumNodes(), cycles, flits, rate)
		res, err := observe(cfg, fmt.Sprintf("large %s rate=%.3f", s.name, rate),
			s.sys, specs, sim.Config{FIFODepth: 4, MaxCycles: 60 * cycles})
		if err != nil {
			return LargeSimRow{}, err
		}
		return LargeSimRow{
			Topology:   s.name,
			Nodes:      s.sys.Net.NumNodes(),
			Routers:    s.routers,
			Rate:       rate,
			Delivered:  res.Delivered,
			AvgLatency: res.AvgLatency,
			Throughput: res.ThroughputFPC,
			Deadlocked: res.Deadlocked,
		}, nil
	})
}

// LargeSimString renders the 512-node simulation points.
func LargeSimString(rows []LargeSimRow) string {
	var sb strings.Builder
	sb.WriteString("§4 — simulation of large topologies (512 nodes, open-loop Bernoulli)\n")
	sb.WriteString("  topology               | routers | rate  | delivered | avg latency | throughput f/c | deadlocked\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-22s | %7d | %.3f | %9d | %11.1f | %14.2f | %v\n",
			r.Topology, r.Routers, r.Rate, r.Delivered, r.AvgLatency, r.Throughput, r.Deadlocked)
	}
	sb.WriteString("  => the thin variant's fixed 4-link bisection caps its throughput;\n")
	sb.WriteString("     the fat variant's 64-link bisection keeps absorbing load\n")
	return sb.String()
}
