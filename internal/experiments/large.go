package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// LargeSimRow is one 512-node simulation point.
type LargeSimRow struct {
	Topology   string
	Nodes      int
	Routers    int
	Rate       float64
	Delivered  int
	AvgLatency float64
	Throughput float64
	Deadlocked bool
}

// LargeSim is §4's stated future work taken literally: flit-level
// simulation of LARGE fractahedral topologies under load. It runs open-loop
// Bernoulli traffic over the 512-node thin and fat N=3 fractahedrons and
// reports the latency/throughput points; the thin variant's 4-link
// bisection saturates it far below the fat variant's 64.
func LargeSim(rates []float64, cycles, flits int, seed int64) ([]LargeSimRow, error) {
	fat, fatF, err := core.NewFatFractahedron(3)
	if err != nil {
		return nil, err
	}
	thin, thinF, err := core.NewThinFractahedron(3)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name    string
		sys     *core.System
		routers int
	}{
		{"fat fractahedron N=3", fat, fatF.NumRouters()},
		{"thin fractahedron N=3", thin, thinF.NumRouters()},
	}

	var rows []LargeSimRow
	for _, rate := range rates {
		for _, s := range systems {
			rng := rand.New(rand.NewSource(seed))
			specs := workload.Bernoulli(rng, s.sys.Net.NumNodes(), cycles, flits, rate)
			res, err := s.sys.Simulate(specs, sim.Config{FIFODepth: 4, MaxCycles: 60 * cycles})
			if err != nil {
				return nil, err
			}
			rows = append(rows, LargeSimRow{
				Topology:   s.name,
				Nodes:      s.sys.Net.NumNodes(),
				Routers:    s.routers,
				Rate:       rate,
				Delivered:  res.Delivered,
				AvgLatency: res.AvgLatency,
				Throughput: res.ThroughputFPC,
				Deadlocked: res.Deadlocked,
			})
		}
	}
	return rows, nil
}

// LargeSimString renders the 512-node simulation points.
func LargeSimString(rows []LargeSimRow) string {
	var sb strings.Builder
	sb.WriteString("§4 — simulation of large topologies (512 nodes, open-loop Bernoulli)\n")
	sb.WriteString("  topology               | routers | rate  | delivered | avg latency | throughput f/c | deadlocked\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-22s | %7d | %.3f | %9d | %11.1f | %14.2f | %v\n",
			r.Topology, r.Routers, r.Rate, r.Delivered, r.AvgLatency, r.Throughput, r.Deadlocked)
	}
	sb.WriteString("  => the thin variant's fixed 4-link bisection caps its throughput;\n")
	sb.WriteString("     the fat variant's 64-link bisection keeps absorbing load\n")
	return sb.String()
}
