// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a typed result with a String() that
// prints the same rows the paper reports; cmd/paper and the benchmark
// harness are thin wrappers over this package. EXPERIMENTS.md records the
// paper-claimed versus measured values for each entry.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Figure1Result demonstrates the wormhole deadlock of Figure 1 in the
// flit-level simulator: four long packets routed clockwise around a 4-ring
// block in a circular wait; restricting the routing delivers all of them.
type Figure1Result struct {
	UnrestrictedDeadlocked bool
	WaitCycleLen           int
	WaitCycle              []string // rendered channels of the witness
	RestrictedDelivered    int
	RestrictedDeadlocked   bool
	CDGCyclic              bool // static analysis agrees with the simulator
}

// Figure1 runs the deadlock demonstration.
func Figure1() (Figure1Result, error) {
	var res Figure1Result

	unsafe, ring, err := core.NewRing(4, 1, false)
	if err != nil {
		return res, err
	}
	specs := workload.Transfers(workload.RingDeadlockSet(4), 32)
	simRes, err := unsafe.SimulateUnrestricted(specs, sim.Config{FIFODepth: 2, DeadlockThreshold: 500})
	if err != nil {
		return res, err
	}
	res.UnrestrictedDeadlocked = simRes.Deadlocked
	res.WaitCycleLen = len(simRes.WaitCycle)
	for _, ch := range simRes.WaitCycle {
		res.WaitCycle = append(res.WaitCycle, ring.ChannelString(ch))
	}

	rep, err := deadlock.Analyze(unsafe.Tables)
	if err != nil {
		return res, err
	}
	res.CDGCyclic = !rep.Free

	safe, _, err := core.NewRing(4, 1, true)
	if err != nil {
		return res, err
	}
	simRes2, err := safe.Simulate(specs, sim.Config{FIFODepth: 2, DeadlockThreshold: 500})
	if err != nil {
		return res, err
	}
	res.RestrictedDelivered = simRes2.Delivered
	res.RestrictedDeadlocked = simRes2.Deadlocked
	return res, nil
}

// String renders the Figure 1 demonstration.
func (r Figure1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 1 — deadlock in a wormhole-routed network (4-router loop)\n")
	fmt.Fprintf(&sb, "  unrestricted clockwise routing: deadlocked=%v, wait cycle of %d channels\n",
		r.UnrestrictedDeadlocked, r.WaitCycleLen)
	for _, c := range r.WaitCycle {
		fmt.Fprintf(&sb, "    wait: %s\n", c)
	}
	fmt.Fprintf(&sb, "  static CDG analysis cyclic: %v (agrees with simulator)\n", r.CDGCyclic)
	fmt.Fprintf(&sb, "  restricted routing (loop broken): delivered %d/4, deadlocked=%v\n",
		r.RestrictedDelivered, r.RestrictedDeadlocked)
	return sb.String()
}

// Figure2Result compares the hypercube's path-disable routing (expressed as
// up*/down* order, breaking every face and 6/8-link loop) with e-cube:
// both deadlock-free, but the disables make uniform-load link utilization
// uneven — the drawback §2 discusses under Figure 2.
type Figure2Result struct {
	Dim                     int
	UpDownFree, ECubeFree   bool
	UpDownMin, UpDownMax    int
	ECubeMin, ECubeMax      int
	UpDownRatio, ECubeRatio float64
}

// Figure2 runs the hypercube path-disable analysis on a 3-cube.
func Figure2() (Figure2Result, error) {
	res := Figure2Result{Dim: 3}
	ud, _, err := core.NewHypercube(3, 1, true)
	if err != nil {
		return res, err
	}
	ec, _, err := core.NewHypercube(3, 1, false)
	if err != nil {
		return res, err
	}
	repUD, err := deadlock.Analyze(ud.Tables)
	if err != nil {
		return res, err
	}
	repEC, err := deadlock.Analyze(ec.Tables)
	if err != nil {
		return res, err
	}
	res.UpDownFree, res.ECubeFree = repUD.Free, repEC.Free

	profUD, err := contention.Utilization(ud.Tables)
	if err != nil {
		return res, err
	}
	profEC, err := contention.Utilization(ec.Tables)
	if err != nil {
		return res, err
	}
	res.UpDownMin, res.UpDownMax = profUD.Min, profUD.Max
	res.ECubeMin, res.ECubeMax = profEC.Min, profEC.Max
	res.UpDownRatio, _ = profUD.ImbalanceRatio()
	res.ECubeRatio, _ = profEC.ImbalanceRatio()
	return res, nil
}

// String renders the Figure 2 comparison.
func (r Figure2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 2 — breaking hypercube deadlocks with path disables (3-cube, uniform load)\n")
	fmt.Fprintf(&sb, "  path-disable (up*/down*) routing: deadlock-free=%v, link load min/max = %d/%d (imbalance %.2fx)\n",
		r.UpDownFree, r.UpDownMin, r.UpDownMax, r.UpDownRatio)
	fmt.Fprintf(&sb, "  e-cube (dimension-order) routing: deadlock-free=%v, link load min/max = %d/%d (imbalance %.2fx)\n",
		r.ECubeFree, r.ECubeMin, r.ECubeMax, r.ECubeRatio)
	sb.WriteString("  => disables avoid deadlock but give uneven utilization, as §2 argues\n")
	return sb.String()
}

// Figure3Row is one fully-connected configuration of 6-port routers.
type Figure3Row struct {
	Routers       int
	NodePorts     int
	InterLinks    int
	MaxContention int // measured with the matching metric
}

// Figure3 enumerates the fully-connected groups of Figure 3 (M = 1..6
// six-port routers) and measures their worst-case link contention.
func Figure3() ([]Figure3Row, error) {
	var rows []Figure3Row
	for m := 1; m <= 6; m++ {
		sys, fm, err := core.NewFullMesh(m, 6)
		if err != nil {
			return nil, err
		}
		res, err := contention.MaxLinkContention(sys.Tables)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure3Row{
			Routers:       m,
			NodePorts:     fm.NumNodes(),
			InterLinks:    m * (m - 1) / 2,
			MaxContention: res.Max,
		})
	}
	return rows, nil
}

// Figure3String renders the Figure 3 table.
func Figure3String(rows []Figure3Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — fully-connected topologies of 6-port routers\n")
	sb.WriteString("  M routers | node ports | inter-router links | max link contention\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %9d | %10d | %18d | %d:1\n",
			r.Routers, r.NodePorts, r.InterLinks, r.MaxContention)
	}
	return sb.String()
}

// Figure5Row describes one thin-fractahedron depth (Figures 4 and 5).
type Figure5Row struct {
	Levels  int
	Nodes   int
	Routers int
	MaxHops int
	Formula int // 4N-2 (2 at N=1: a single tetrahedron)
	AvgHops float64
}

// Figure5 builds thin fractahedrons of increasing depth and checks the
// delay growth against the 4N-2 rule.
func Figure5(maxLevels int) ([]Figure5Row, error) {
	var rows []Figure5Row
	for n := 1; n <= maxLevels; n++ {
		sys, f, err := core.NewThinFractahedron(n)
		if err != nil {
			return nil, err
		}
		a, err := sys.Analyze(core.AnalyzeOptions{SkipContention: n > 2, SkipBisection: true})
		if err != nil {
			return nil, err
		}
		formula := 4*n - 2
		if n == 1 {
			formula = 2
		}
		rows = append(rows, Figure5Row{
			Levels:  n,
			Nodes:   f.NumNodes(),
			Routers: f.NumRouters(),
			MaxHops: a.Hops.Max,
			Formula: formula,
			AvgHops: a.Hops.Mean,
		})
	}
	return rows, nil
}

// Figure5String renders the thin-fractahedron scaling table.
func Figure5String(rows []Figure5Row) string {
	var sb strings.Builder
	sb.WriteString("Figures 4/5 — tetrahedron and thin fractahedron scaling\n")
	sb.WriteString("  levels | nodes | routers | max hops (formula 4N-2) | avg hops\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %6d | %5d | %7d | %8d (%d) | %.2f\n",
			r.Levels, r.Nodes, r.Routers, r.MaxHops, r.Formula, r.AvgHops)
	}
	return sb.String()
}

// fractIntraL2Contention measures contention restricted to the level-2
// intra-ensemble links — the exact quantity §3.4 derives as 4:1.
func fractIntraL2Contention(f *topology.Fractahedron, tb *routing.Tables) (int, error) {
	res, err := contention.MaxLinkContentionFiltered(tb, func(ch topology.ChannelID) bool {
		src := f.Meta(f.ChannelSrc(ch).Device)
		dst := f.Meta(f.ChannelDst(ch).Device)
		return src.Level == 2 && dst.Level == 2
	})
	if err != nil {
		return 0, err
	}
	return res.Max, nil
}
