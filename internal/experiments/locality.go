package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// LocalityRow is one (locality fraction, topology) simulation point.
type LocalityRow struct {
	LocalFrac  float64
	Topology   string
	AvgLatency float64
	Throughput float64
}

// LocalitySweep tests §3.3's argument for the 4-2 partition: "In most
// networks, we anticipate some degree of locality in the data access
// patterns... For this reason, the 4-2 fat tree may be preferred for most
// systems even though there is some bandwidth reduction at each level."
// The sweep runs a fixed offered load whose local fraction varies from 0
// (uniform) to 0.9, with the local block being the 8-node group the
// topology serves with full bandwidth (a pod's pair of leaves on the fat
// tree, a tetrahedron on the fractahedron). As locality rises, the thinned
// upper levels matter less and every topology converges; under low
// locality the bandwidth-rich fractahedron leads.
func LocalitySweep(fracs []float64, packets, flits int, seed int64, opts ...runner.Option) ([]LocalityRow, error) {
	cfg := runner.NewConfig(opts...)
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	ft33Sys, _, err := core.NewFatTree(3, 3, 64)
	if err != nil {
		return nil, err
	}
	fatSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		sys  *core.System
	}{
		{"4-2 fat tree", ftSys},
		{"3-3 fat tree", ft33Sys},
		{"fat fractahedron", fatSys},
	}

	// Per-fraction workload seeds: every topology sees the same packet
	// stream at a given locality fraction, distinct fractions draw
	// independent streams.
	return runner.Map(cfg, len(fracs)*len(systems), func(i int) (LocalityRow, error) {
		frac, s := fracs[i/len(systems)], systems[i%len(systems)]
		rng := runner.RNG(seed, i/len(systems))
		specs := workload.Locality(rng, 64, packets, flits, packets/3, 8, frac)
		res, err := observe(cfg, fmt.Sprintf("locality %s frac=%.2f", s.name, frac),
			s.sys, specs, sim.Config{FIFODepth: 4})
		if err != nil {
			return LocalityRow{}, err
		}
		if res.Deadlocked || res.Delivered != packets {
			return LocalityRow{}, fmt.Errorf("experiments: locality %.2f on %s failed: %+v", frac, s.name, res)
		}
		return LocalityRow{
			LocalFrac:  frac,
			Topology:   s.name,
			AvgLatency: res.AvgLatency,
			Throughput: res.ThroughputFPC,
		}, nil
	})
}

// LocalitySweepString renders the locality sweep.
func LocalitySweepString(rows []LocalityRow) string {
	var sb strings.Builder
	sb.WriteString("§3.3 — locality sweep (64 nodes, 8-node local blocks, fixed offered load)\n")
	sb.WriteString("  local fraction | topology          | avg latency | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %14.2f | %-17s | %11.1f | %.2f\n",
			r.LocalFrac, r.Topology, r.AvgLatency, r.Throughput)
	}
	sb.WriteString("  => rising locality closes the gap to the thinned fat trees — the\n")
	sb.WriteString("     paper's case for accepting the 4-2 bandwidth reduction\n")
	return sb.String()
}
