package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// FIFORow is one buffer-depth point of the FIFO ablation.
type FIFORow struct {
	Depth      int
	Cycles     int
	AvgLatency float64
	Throughput float64
}

// AblationFIFODepth sweeps the router input-FIFO depth on the 64-node fat
// fractahedron under a fixed random load — the buffering-cost argument of
// §2 (Dally–Seitz virtual channels "require multiple packet buffers at each
// router stage... buffering space may dominate the area of a typical
// router") quantified: how much does depth actually buy?
func AblationFIFODepth(depths []int, packets, flits int, seed int64) ([]FIFORow, error) {
	sys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	var rows []FIFORow
	for _, d := range depths {
		rng := rand.New(rand.NewSource(seed))
		specs := workload.UniformRandom(rng, 64, packets, flits, packets/2)
		res, err := sys.Simulate(specs, sim.Config{FIFODepth: d})
		if err != nil {
			return nil, err
		}
		if res.Deadlocked || res.Delivered != packets {
			return nil, fmt.Errorf("experiments: FIFO sweep depth %d failed: %+v", d, res)
		}
		rows = append(rows, FIFORow{Depth: d, Cycles: res.Cycles, AvgLatency: res.AvgLatency, Throughput: res.ThroughputFPC})
	}
	return rows, nil
}

// AblationFIFOString renders the FIFO sweep.
func AblationFIFOString(rows []FIFORow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — input FIFO depth on the 64-node fat fractahedron (fixed load)\n")
	sb.WriteString("  depth | cycles | avg latency | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d | %6d | %11.1f | %.2f\n", r.Depth, r.Cycles, r.AvgLatency, r.Throughput)
	}
	return sb.String()
}

// RadixRow is one router-radix point of the generalization ablation
// (§4: "the concepts easily generalize to other fully connected groups of
// N-port routers").
type RadixRow struct {
	Group        int
	Down         int
	RouterPorts  int
	Nodes        int // at Levels=2, fat
	Routers      int
	MaxHops      int
	Contention   int
	DeadlockFree bool
}

// AblationRadix builds fat fractahedrons from ensembles of different sizes
// and compares their figures of merit at two levels.
func AblationRadix(groups []int) ([]RadixRow, error) {
	var rows []RadixRow
	for _, g := range groups {
		cfg := topology.FractConfig{Group: g, Down: 2, Levels: 2, Fat: true}
		sys, f, err := core.NewFractahedron(cfg)
		if err != nil {
			return nil, err
		}
		a, err := sys.Analyze(core.AnalyzeOptions{SkipBisection: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RadixRow{
			Group:        g,
			Down:         cfg.Down,
			RouterPorts:  cfg.RouterPorts(),
			Nodes:        f.NumNodes(),
			Routers:      f.NumRouters(),
			MaxHops:      a.Hops.Max,
			Contention:   a.Contention.Max,
			DeadlockFree: a.Deadlock.Free,
		})
	}
	return rows, nil
}

// AblationRadixString renders the radix generalization table.
func AblationRadixString(rows []RadixRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — generalized fully-connected groups (fat, 2 levels, 2 down ports)\n")
	sb.WriteString("  group | router ports | nodes | routers | max hops | contention | deadlock-free\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d | %12d | %5d | %7d | %8d | %8d:1 | %v\n",
			r.Group, r.RouterPorts, r.Nodes, r.Routers, r.MaxHops, r.Contention, r.DeadlockFree)
	}
	return sb.String()
}

// CableRow is one link-latency point of the cable-length ablation.
type CableRow struct {
	LinkLatency int
	AvgLatency  float64
	P99Latency  int
	Throughput  float64
}

// AblationCableLength sweeps the per-link propagation delay (§1's
// "up to 30 meters" cables) on the 64-node fat fractahedron under a fixed
// moderate load: latency grows linearly with cable length while delivered
// throughput holds, because the wormhole pipeline keeps the wires full.
func AblationCableLength(latencies []int, packets, flits int, seed int64) ([]CableRow, error) {
	sys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	var rows []CableRow
	for _, lat := range latencies {
		rng := rand.New(rand.NewSource(seed))
		specs := workload.UniformRandom(rng, 64, packets, flits, packets)
		res, err := sys.Simulate(specs, sim.Config{FIFODepth: 8, LinkLatency: lat})
		if err != nil {
			return nil, err
		}
		if res.Deadlocked || res.Delivered != packets {
			return nil, fmt.Errorf("experiments: cable sweep latency %d failed: %+v", lat, res)
		}
		rows = append(rows, CableRow{
			LinkLatency: lat,
			AvgLatency:  res.AvgLatency,
			P99Latency:  res.P99Latency,
			Throughput:  res.ThroughputFPC,
		})
	}
	return rows, nil
}

// AblationCableString renders the cable-length sweep.
func AblationCableString(rows []CableRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation - link propagation delay (cable length) on the 64-node fat fractahedron\n")
	sb.WriteString("  cycles/link | avg latency | p99 latency | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %11d | %11.1f | %11d | %.2f\n",
			r.LinkLatency, r.AvgLatency, r.P99Latency, r.Throughput)
	}
	return sb.String()
}

// PartitionRow compares static destination partitions for fat-tree upward
// routing — the §3.3 argument that NO static partitioning beats 12:1.
type PartitionRow struct {
	Name       string
	Contention int
}

// AblationFatTreePartitions measures worst-case contention for several
// distinct static up-path partitions of the 64-node 4-2 fat tree.
func AblationFatTreePartitions() ([]PartitionRow, error) {
	ft := topology.NewFatTree(4, 2, 64)
	tables := []struct {
		name string
		tb   *routing.Tables
	}{
		{"dst digit (baseline)", routing.FatTreeShifted(ft, 0)},
		{"dst digit rotated 1", routing.FatTreeShifted(ft, 1)},
		{"dst digit rotated 2", routing.FatTreeShifted(ft, 2)},
		{"striped leaf blocks", routing.FatTreeCompact(ft)},
	}
	var rows []PartitionRow
	for _, p := range tables {
		res, err := contention.MaxLinkContention(p.tb)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PartitionRow{Name: p.name, Contention: res.Max})
	}
	return rows, nil
}

// AblationPartitionsString renders the partition comparison.
func AblationPartitionsString(rows []PartitionRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — static up-path partitions on the 64-node 4-2 fat tree\n")
	sb.WriteString("  partition             | max contention\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-21s | %d:1\n", r.Name, r.Contention)
	}
	sb.WriteString("  => every static destination partition hits the 12:1 pigeonhole bound (§3.3)\n")
	return sb.String()
}
