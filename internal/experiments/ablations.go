package experiments

import (
	"fmt"
	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// FIFORow is one buffer-depth point of the FIFO ablation.
type FIFORow struct {
	Depth      int
	Cycles     int
	AvgLatency float64
	Throughput float64
}

// AblationFIFODepth sweeps the router input-FIFO depth on the 64-node fat
// fractahedron under a fixed random load — the buffering-cost argument of
// §2 (Dally–Seitz virtual channels "require multiple packet buffers at each
// router stage... buffering space may dominate the area of a typical
// router") quantified: how much does depth actually buy?
func AblationFIFODepth(depths []int, packets, flits int, seed int64, opts ...runner.Option) ([]FIFORow, error) {
	cfg := runner.NewConfig(opts...)
	sys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	// Every depth point replays the SAME workload — buffer depth is the
	// controlled variable — so all points share workload index 0.
	return runner.Map(cfg, len(depths), func(i int) (FIFORow, error) {
		d := depths[i]
		rng := runner.RNG(seed, 0)
		specs := workload.UniformRandom(rng, 64, packets, flits, packets/2)
		res, err := observe(cfg, fmt.Sprintf("ablation fifo=%d", d), sys, specs, sim.Config{FIFODepth: d})
		if err != nil {
			return FIFORow{}, err
		}
		if res.Deadlocked || res.Delivered != packets {
			return FIFORow{}, fmt.Errorf("experiments: FIFO sweep depth %d failed: %+v", d, res)
		}
		return FIFORow{Depth: d, Cycles: res.Cycles, AvgLatency: res.AvgLatency, Throughput: res.ThroughputFPC}, nil
	})
}

// AblationFIFOString renders the FIFO sweep.
func AblationFIFOString(rows []FIFORow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — input FIFO depth on the 64-node fat fractahedron (fixed load)\n")
	sb.WriteString("  depth | cycles | avg latency | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d | %6d | %11.1f | %.2f\n", r.Depth, r.Cycles, r.AvgLatency, r.Throughput)
	}
	return sb.String()
}

// RadixRow is one router-radix point of the generalization ablation
// (§4: "the concepts easily generalize to other fully connected groups of
// N-port routers").
type RadixRow struct {
	Group        int
	Down         int
	RouterPorts  int
	Nodes        int // at Levels=2, fat
	Routers      int
	MaxHops      int
	Contention   int
	DeadlockFree bool
}

// AblationRadix builds fat fractahedrons from ensembles of different sizes
// and compares their figures of merit at two levels, one group size per
// worker (the contention matching dominates each point).
func AblationRadix(groups []int, opts ...runner.Option) ([]RadixRow, error) {
	return runner.Map(runner.NewConfig(opts...), len(groups), func(i int) (RadixRow, error) {
		g := groups[i]
		cfg := topology.FractConfig{Group: g, Down: 2, Levels: 2, Fat: true}
		sys, f, err := core.NewFractahedron(cfg)
		if err != nil {
			return RadixRow{}, err
		}
		a, err := sys.Analyze(core.AnalyzeOptions{SkipBisection: true})
		if err != nil {
			return RadixRow{}, err
		}
		return RadixRow{
			Group:        g,
			Down:         cfg.Down,
			RouterPorts:  cfg.RouterPorts(),
			Nodes:        f.NumNodes(),
			Routers:      f.NumRouters(),
			MaxHops:      a.Hops.Max,
			Contention:   a.Contention.Max,
			DeadlockFree: a.Deadlock.Free,
		}, nil
	})
}

// AblationRadixString renders the radix generalization table.
func AblationRadixString(rows []RadixRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — generalized fully-connected groups (fat, 2 levels, 2 down ports)\n")
	sb.WriteString("  group | router ports | nodes | routers | max hops | contention | deadlock-free\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d | %12d | %5d | %7d | %8d | %8d:1 | %v\n",
			r.Group, r.RouterPorts, r.Nodes, r.Routers, r.MaxHops, r.Contention, r.DeadlockFree)
	}
	return sb.String()
}

// CableRow is one link-latency point of the cable-length ablation.
type CableRow struct {
	LinkLatency int
	AvgLatency  float64
	P99Latency  int
	Throughput  float64
}

// AblationCableLength sweeps the per-link propagation delay (§1's
// "up to 30 meters" cables) on the 64-node fat fractahedron under a fixed
// moderate load: latency grows linearly with cable length while delivered
// throughput holds, because the wormhole pipeline keeps the wires full.
func AblationCableLength(latencies []int, packets, flits int, seed int64, opts ...runner.Option) ([]CableRow, error) {
	cfg := runner.NewConfig(opts...)
	sys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	// Like the FIFO sweep, the workload is held fixed (index 0) while the
	// link latency varies.
	return runner.Map(cfg, len(latencies), func(i int) (CableRow, error) {
		lat := latencies[i]
		rng := runner.RNG(seed, 0)
		specs := workload.UniformRandom(rng, 64, packets, flits, packets)
		res, err := observe(cfg, fmt.Sprintf("ablation cable=%d", lat), sys, specs,
			sim.Config{FIFODepth: 8, LinkLatency: lat})
		if err != nil {
			return CableRow{}, err
		}
		if res.Deadlocked || res.Delivered != packets {
			return CableRow{}, fmt.Errorf("experiments: cable sweep latency %d failed: %+v", lat, res)
		}
		return CableRow{
			LinkLatency: lat,
			AvgLatency:  res.AvgLatency,
			P99Latency:  res.P99Latency,
			Throughput:  res.ThroughputFPC,
		}, nil
	})
}

// AblationCableString renders the cable-length sweep.
func AblationCableString(rows []CableRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation - link propagation delay (cable length) on the 64-node fat fractahedron\n")
	sb.WriteString("  cycles/link | avg latency | p99 latency | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %11d | %11.1f | %11d | %.2f\n",
			r.LinkLatency, r.AvgLatency, r.P99Latency, r.Throughput)
	}
	return sb.String()
}

// PartitionRow compares static destination partitions for fat-tree upward
// routing — the §3.3 argument that NO static partitioning beats 12:1.
type PartitionRow struct {
	Name       string
	Contention int
}

// AblationFatTreePartitions measures worst-case contention for several
// distinct static up-path partitions of the 64-node 4-2 fat tree, one
// partition's matching per worker.
func AblationFatTreePartitions(opts ...runner.Option) ([]PartitionRow, error) {
	ft := topology.NewFatTree(4, 2, 64)
	tables := []struct {
		name string
		tb   *routing.Tables
	}{
		{"dst digit (baseline)", routing.FatTreeShifted(ft, 0)},
		{"dst digit rotated 1", routing.FatTreeShifted(ft, 1)},
		{"dst digit rotated 2", routing.FatTreeShifted(ft, 2)},
		{"striped leaf blocks", routing.FatTreeCompact(ft)},
	}
	return runner.Map(runner.NewConfig(opts...), len(tables), func(i int) (PartitionRow, error) {
		res, err := contention.MaxLinkContention(tables[i].tb)
		if err != nil {
			return PartitionRow{}, err
		}
		return PartitionRow{Name: tables[i].name, Contention: res.Max}, nil
	})
}

// AblationPartitionsString renders the partition comparison.
func AblationPartitionsString(rows []PartitionRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — static up-path partitions on the 64-node 4-2 fat tree\n")
	sb.WriteString("  partition             | max contention\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-21s | %d:1\n", r.Name, r.Contention)
	}
	sb.WriteString("  => every static destination partition hits the 12:1 pigeonhole bound (§3.3)\n")
	return sb.String()
}
