package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
)

// WriteCSV renders a slice of experiment row structs as CSV: one column per
// exported field (named by the field), one record per row. Sweep-style
// experiments use it to produce machine-readable series for plotting
// (cmd/paper -out writes a .csv next to each .txt when the experiment's
// result is a row slice).
func WriteCSV(w io.Writer, rows any) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("experiments: WriteCSV wants a slice, got %T", rows)
	}
	cw := csv.NewWriter(w)
	if v.Len() == 0 {
		cw.Flush()
		return cw.Error()
	}
	elemT := v.Index(0).Type()
	if elemT.Kind() != reflect.Struct {
		return fmt.Errorf("experiments: WriteCSV wants a slice of structs, got %T", rows)
	}
	var header []string
	var fields []int
	for i := 0; i < elemT.NumField(); i++ {
		f := elemT.Field(i)
		if !f.IsExported() {
			continue
		}
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int64, reflect.Float64, reflect.String, reflect.Bool:
			header = append(header, f.Name)
			fields = append(fields, i)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		row := v.Index(r)
		rec := make([]string, 0, len(fields))
		for _, i := range fields {
			fv := row.Field(i)
			switch fv.Kind() {
			case reflect.Int, reflect.Int64:
				rec = append(rec, strconv.FormatInt(fv.Int(), 10))
			case reflect.Float64:
				rec = append(rec, strconv.FormatFloat(fv.Float(), 'g', -1, 64))
			case reflect.String:
				rec = append(rec, fv.String())
			case reflect.Bool:
				rec = append(rec, strconv.FormatBool(fv.Bool()))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
