package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PermRow is one (pattern, topology) simulation point.
type PermRow struct {
	Pattern    string
	Topology   string
	Transfers  int
	Cycles     int
	AvgLatency float64
	Throughput float64
}

// PermutationStudy runs the classic permutation patterns — bit complement,
// transpose, tornado, bit reversal, nearest neighbor — as simultaneous
// batch transfers over the 64-node contenders. Permutations are the
// structured analogue of §3.0's load-imbalance scenarios: each node sends
// one transfer, and the pattern decides how badly the deterministic routes
// collide.
func PermutationStudy(flits int, opts ...runner.Option) ([]PermRow, error) {
	cfg := runner.NewConfig(opts...)
	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		return nil, err
	}
	fatSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		return nil, err
	}
	thinSys, _, err := core.NewThinFractahedron(2)
	if err != nil {
		return nil, err
	}
	cccSys, _, err := core.NewCCC(4) // 64 nodes on 4-port routers
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		sys  *core.System
	}{
		{"4-2 fat tree", ftSys},
		{"fat fractahedron", fatSys},
		{"thin fractahedron", thinSys},
		{"CCC-4 (up*/down*)", cccSys},
	}
	patterns := []struct {
		name string
		perm []int
	}{
		{"bit complement", workload.BitComplement(64)},
		{"transpose 8x8", workload.Transpose(8)},
		{"tornado", workload.Tornado(64)},
		{"bit reversal", workload.BitReversal(64)},
		{"nearest neighbor", workload.NearestNeighbor(64)},
	}

	// Permutations are fully deterministic (no RNG at all), so the grid
	// fans over the pool with nothing to seed.
	return runner.Map(cfg, len(patterns)*len(systems), func(i int) (PermRow, error) {
		p, s := patterns[i/len(systems)], systems[i%len(systems)]
		specs := workload.Permutation(p.perm, flits)
		res, err := observe(cfg, fmt.Sprintf("perm %s %s", p.name, s.name),
			s.sys, specs, sim.Config{FIFODepth: 4})
		if err != nil {
			return PermRow{}, err
		}
		if res.Deadlocked || res.Delivered != len(specs) {
			return PermRow{}, fmt.Errorf("experiments: %s on %s failed: %+v", p.name, s.name, res)
		}
		return PermRow{
			Pattern:    p.name,
			Topology:   s.name,
			Transfers:  len(specs),
			Cycles:     res.Cycles,
			AvgLatency: res.AvgLatency,
			Throughput: res.ThroughputFPC,
		}, nil
	})
}

// PermutationStudyString renders the permutation grid.
func PermutationStudyString(rows []PermRow) string {
	var sb strings.Builder
	sb.WriteString("Permutation patterns, 64 nodes, one transfer per source (batch completion)\n")
	sb.WriteString("  pattern          | topology          | cycles | avg latency | throughput f/c\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s | %-17s | %6d | %11.1f | %.2f\n",
			r.Pattern, r.Topology, r.Cycles, r.AvgLatency, r.Throughput)
	}
	return sb.String()
}
