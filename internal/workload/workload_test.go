package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestUniformRandomValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := UniformRandom(rng, 16, 50, 4, 100)
		if len(specs) != 50 {
			return false
		}
		for _, s := range specs {
			if s.Src == s.Dst || s.Src < 0 || s.Src >= 16 || s.Dst < 0 || s.Dst >= 16 {
				return false
			}
			if s.Flits != 4 || s.InjectCycle < 0 || s.InjectCycle >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := Bernoulli(rng, 10, 1000, 4, 0.1)
	// Expect about 10*1000*0.1 = 1000 packets; allow wide tolerance.
	if len(specs) < 800 || len(specs) > 1200 {
		t.Errorf("packet count = %d, want about 1000", len(specs))
	}
	for _, s := range specs {
		if s.Src == s.Dst {
			t.Fatal("self-addressed packet")
		}
	}
}

func TestBitComplement(t *testing.T) {
	perm := BitComplement(8)
	for s, d := range perm {
		if d != 7-s {
			t.Errorf("perm[%d] = %d, want %d", s, d, 7-s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two accepted")
		}
	}()
	BitComplement(6)
}

func TestTransposeIsInvolution(t *testing.T) {
	perm := Transpose(4)
	for s := range perm {
		if perm[perm[s]] != s {
			t.Errorf("transpose not an involution at %d", s)
		}
	}
}

func TestPermutationSkipsFixedPoints(t *testing.T) {
	specs := Permutation([]int{1, 0, 2}, 3)
	if len(specs) != 2 {
		t.Errorf("specs = %d, want 2 (fixed point skipped)", len(specs))
	}
}

func TestHotspotBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	specs := Hotspot(rng, 16, 2000, 4, 0, 5, 0.5)
	hot := 0
	for _, s := range specs {
		if s.Dst == 5 {
			hot++
		}
	}
	if hot < 800 { // >= ~50% plus uniform share
		t.Errorf("hotspot received %d of 2000, want at least 800", hot)
	}
}

func TestDatabaseQueryShape(t *testing.T) {
	specs := DatabaseQuery([]int{0, 1, 2, 3}, []int{60, 61, 62, 63}, 5, 8)
	if len(specs) != 20 {
		t.Fatalf("specs = %d, want 20", len(specs))
	}
	for _, s := range specs {
		if s.Src > 3 || s.Dst < 60 {
			t.Errorf("bad transfer %d->%d", s.Src, s.Dst)
		}
	}
}

func TestPaperScenarioSets(t *testing.T) {
	if got := len(MeshCornerTurn(6, 6, 2)); got != 10 {
		t.Errorf("mesh corner set = %d transfers, want 10 (paper §3.1)", got)
	}
	if got := len(FatTreeWorstCase()); got != 12 {
		t.Errorf("fat tree set = %d, want 12 (paper §3.3)", got)
	}
	if got := len(FractahedronWorstCase()); got != 4 {
		t.Errorf("fractahedron set = %d, want 4 (paper §3.4)", got)
	}
	if got := len(RingDeadlockSet(4)); got != 4 {
		t.Errorf("ring set = %d, want 4 (Figure 1)", got)
	}
	// Distinct sources and destinations in each paper set.
	for _, set := range [][][2]int{MeshCornerTurn(6, 6, 2), FatTreeWorstCase(), FractahedronWorstCase()} {
		srcs, dsts := map[int]bool{}, map[int]bool{}
		for _, p := range set {
			if srcs[p[0]] || dsts[p[1]] {
				t.Errorf("set %v reuses a node", set)
				break
			}
			srcs[p[0]], dsts[p[1]] = true, true
		}
	}
}

func TestBitReversalInvolution(t *testing.T) {
	perm := BitReversal(16)
	for s, d := range perm {
		if perm[d] != s {
			t.Errorf("bit reversal not an involution at %d", s)
		}
	}
	if perm[1] != 8 || perm[3] != 12 {
		t.Errorf("perm[1]=%d perm[3]=%d, want 8, 12", perm[1], perm[3])
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two accepted")
		}
	}()
	BitReversal(12)
}

func TestNearestNeighborAndTornado(t *testing.T) {
	nn := NearestNeighbor(8)
	tor := Tornado(8)
	for s := 0; s < 8; s++ {
		if nn[s] != (s+1)%8 {
			t.Errorf("nn[%d] = %d", s, nn[s])
		}
		if tor[s] != (s+4)%8 {
			t.Errorf("tornado[%d] = %d", s, tor[s])
		}
	}
}

// TestGeneratorsDeterministic pins the contract the parallel experiment
// engine depends on: every random generator is a pure function of its
// *rand.Rand, so a fixed seed yields a fixed packet list and a different
// seed yields a different one.
func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func(rng *rand.Rand) []sim.PacketSpec{
		"uniform":   func(rng *rand.Rand) []sim.PacketSpec { return UniformRandom(rng, 16, 60, 4, 100) },
		"bernoulli": func(rng *rand.Rand) []sim.PacketSpec { return Bernoulli(rng, 16, 200, 4, 0.05) },
		"hotspot":   func(rng *rand.Rand) []sim.PacketSpec { return Hotspot(rng, 16, 60, 4, 100, 3, 0.4) },
		"locality":  func(rng *rand.Rand) []sim.PacketSpec { return Locality(rng, 16, 60, 4, 100, 4, 0.6) },
	}
	for name, gen := range gens {
		a := gen(rand.New(rand.NewSource(7)))
		b := gen(rand.New(rand.NewSource(7)))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different packet lists", name)
		}
		c := gen(rand.New(rand.NewSource(8)))
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical packet lists", name)
		}
	}
}

// TestPermutationsAreBijections checks every permutation builder returns a
// true bijection over its node range — each node sends exactly once and
// receives exactly once.
func TestPermutationsAreBijections(t *testing.T) {
	perms := map[string][]int{
		"bit complement":   BitComplement(16),
		"bit reversal":     BitReversal(16),
		"transpose":        Transpose(4),
		"tornado":          Tornado(16),
		"nearest neighbor": NearestNeighbor(16),
	}
	for name, perm := range perms {
		seen := make([]bool, len(perm))
		for s, d := range perm {
			if d < 0 || d >= len(perm) {
				t.Errorf("%s: perm[%d] = %d out of range", name, s, d)
				continue
			}
			if seen[d] {
				t.Errorf("%s: destination %d hit twice", name, d)
			}
			seen[d] = true
		}
	}
}

func TestDatabaseQueryRoundRobin(t *testing.T) {
	cpus := []int{0, 1, 2}
	disks := []int{10, 11, 12, 13}
	specs := DatabaseQuery(cpus, disks, 4, 8)
	if len(specs) != len(cpus)*4 {
		t.Fatalf("specs = %d, want %d", len(specs), len(cpus)*4)
	}
	// CPU i's k-th transfer targets disks[(i+k) % len(disks)], so the load
	// spreads evenly and no two CPUs start on the same disk.
	for i := range cpus {
		for k := 0; k < 4; k++ {
			s := specs[i*4+k]
			if s.Src != cpus[i] {
				t.Fatalf("transfer %d src = %d, want %d", i*4+k, s.Src, cpus[i])
			}
			if want := disks[(i+k)%len(disks)]; s.Dst != want {
				t.Errorf("cpu %d transfer %d dst = %d, want %d", i, k, s.Dst, want)
			}
		}
	}
}

func TestHotspotFractionBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	specs := Hotspot(rng, 16, 4000, 4, 0, 5, 0.3)
	hot := 0
	for _, s := range specs {
		if s.Dst == 5 {
			hot++
		}
	}
	// 30% directed plus ~1/15 of the remaining uniform share ≈ 34.7%.
	frac := float64(hot) / float64(len(specs))
	if frac < 0.30 || frac > 0.40 {
		t.Errorf("hotspot fraction = %.3f, want about 0.347", frac)
	}
}

func TestLocalityPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	specs := Locality(rng, 64, 4000, 4, 100, 8, 0.75)
	local := 0
	for _, s := range specs {
		if s.Src == s.Dst {
			t.Fatal("self-addressed packet")
		}
		if s.Src/8 == s.Dst/8 {
			local++
		}
	}
	// About 75% local plus the uniform share that lands locally by chance.
	frac := float64(local) / float64(len(specs))
	if frac < 0.70 || frac > 0.85 {
		t.Errorf("local fraction = %.2f, want about 0.77", frac)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad block size accepted")
		}
	}()
	Locality(rng, 64, 1, 4, 0, 7, 0.5)
}
