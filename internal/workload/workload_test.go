package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformRandomValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := UniformRandom(rng, 16, 50, 4, 100)
		if len(specs) != 50 {
			return false
		}
		for _, s := range specs {
			if s.Src == s.Dst || s.Src < 0 || s.Src >= 16 || s.Dst < 0 || s.Dst >= 16 {
				return false
			}
			if s.Flits != 4 || s.InjectCycle < 0 || s.InjectCycle >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := Bernoulli(rng, 10, 1000, 4, 0.1)
	// Expect about 10*1000*0.1 = 1000 packets; allow wide tolerance.
	if len(specs) < 800 || len(specs) > 1200 {
		t.Errorf("packet count = %d, want about 1000", len(specs))
	}
	for _, s := range specs {
		if s.Src == s.Dst {
			t.Fatal("self-addressed packet")
		}
	}
}

func TestBitComplement(t *testing.T) {
	perm := BitComplement(8)
	for s, d := range perm {
		if d != 7-s {
			t.Errorf("perm[%d] = %d, want %d", s, d, 7-s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two accepted")
		}
	}()
	BitComplement(6)
}

func TestTransposeIsInvolution(t *testing.T) {
	perm := Transpose(4)
	for s := range perm {
		if perm[perm[s]] != s {
			t.Errorf("transpose not an involution at %d", s)
		}
	}
}

func TestPermutationSkipsFixedPoints(t *testing.T) {
	specs := Permutation([]int{1, 0, 2}, 3)
	if len(specs) != 2 {
		t.Errorf("specs = %d, want 2 (fixed point skipped)", len(specs))
	}
}

func TestHotspotBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	specs := Hotspot(rng, 16, 2000, 4, 0, 5, 0.5)
	hot := 0
	for _, s := range specs {
		if s.Dst == 5 {
			hot++
		}
	}
	if hot < 800 { // >= ~50% plus uniform share
		t.Errorf("hotspot received %d of 2000, want at least 800", hot)
	}
}

func TestDatabaseQueryShape(t *testing.T) {
	specs := DatabaseQuery([]int{0, 1, 2, 3}, []int{60, 61, 62, 63}, 5, 8)
	if len(specs) != 20 {
		t.Fatalf("specs = %d, want 20", len(specs))
	}
	for _, s := range specs {
		if s.Src > 3 || s.Dst < 60 {
			t.Errorf("bad transfer %d->%d", s.Src, s.Dst)
		}
	}
}

func TestPaperScenarioSets(t *testing.T) {
	if got := len(MeshCornerTurn(6, 6, 2)); got != 10 {
		t.Errorf("mesh corner set = %d transfers, want 10 (paper §3.1)", got)
	}
	if got := len(FatTreeWorstCase()); got != 12 {
		t.Errorf("fat tree set = %d, want 12 (paper §3.3)", got)
	}
	if got := len(FractahedronWorstCase()); got != 4 {
		t.Errorf("fractahedron set = %d, want 4 (paper §3.4)", got)
	}
	if got := len(RingDeadlockSet(4)); got != 4 {
		t.Errorf("ring set = %d, want 4 (Figure 1)", got)
	}
	// Distinct sources and destinations in each paper set.
	for _, set := range [][][2]int{MeshCornerTurn(6, 6, 2), FatTreeWorstCase(), FractahedronWorstCase()} {
		srcs, dsts := map[int]bool{}, map[int]bool{}
		for _, p := range set {
			if srcs[p[0]] || dsts[p[1]] {
				t.Errorf("set %v reuses a node", set)
				break
			}
			srcs[p[0]], dsts[p[1]] = true, true
		}
	}
}

func TestBitReversalInvolution(t *testing.T) {
	perm := BitReversal(16)
	for s, d := range perm {
		if perm[d] != s {
			t.Errorf("bit reversal not an involution at %d", s)
		}
	}
	if perm[1] != 8 || perm[3] != 12 {
		t.Errorf("perm[1]=%d perm[3]=%d, want 8, 12", perm[1], perm[3])
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two accepted")
		}
	}()
	BitReversal(12)
}

func TestNearestNeighborAndTornado(t *testing.T) {
	nn := NearestNeighbor(8)
	tor := Tornado(8)
	for s := 0; s < 8; s++ {
		if nn[s] != (s+1)%8 {
			t.Errorf("nn[%d] = %d", s, nn[s])
		}
		if tor[s] != (s+4)%8 {
			t.Errorf("tornado[%d] = %d", s, tor[s])
		}
	}
}

func TestLocalityPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	specs := Locality(rng, 64, 4000, 4, 100, 8, 0.75)
	local := 0
	for _, s := range specs {
		if s.Src == s.Dst {
			t.Fatal("self-addressed packet")
		}
		if s.Src/8 == s.Dst/8 {
			local++
		}
	}
	// About 75% local plus the uniform share that lands locally by chance.
	frac := float64(local) / float64(len(specs))
	if frac < 0.70 || frac > 0.85 {
		t.Errorf("local fraction = %.2f, want about 0.77", frac)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad block size accepted")
		}
	}()
	Locality(rng, 64, 1, 4, 0, 7, 0.5)
}
