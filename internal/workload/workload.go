// Package workload generates traffic for the simulator: the synthetic
// patterns standard in interconnect studies (uniform random, permutations,
// hotspot), rate-controlled open-loop injection for latency/throughput
// sweeps, the adversarial transfer sets §3 of the paper constructs by hand
// for each topology, and the commercial "database query" pattern of §3.0
// (an arbitrary set of CPUs streaming to an arbitrary set of disk
// controllers over an extended period).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// UniformRandom emits packets with independently uniform sources and
// destinations (src != dst), injection times uniform over [0, window).
func UniformRandom(rng *rand.Rand, nodes, packets, flits, window int) []sim.PacketSpec {
	specs := make([]sim.PacketSpec, 0, packets)
	for i := 0; i < packets; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		cycle := 0
		if window > 0 {
			cycle = rng.Intn(window)
		}
		specs = append(specs, sim.PacketSpec{Src: src, Dst: dst, Flits: flits, InjectCycle: cycle})
	}
	return specs
}

// Bernoulli emits open-loop traffic: each node starts a packet with
// probability rate at each cycle in [0, cycles), destinations uniform.
// rate*flits is the offered load in flits per node per cycle.
func Bernoulli(rng *rand.Rand, nodes, cycles, flits int, rate float64) []sim.PacketSpec {
	var specs []sim.PacketSpec
	for c := 0; c < cycles; c++ {
		for src := 0; src < nodes; src++ {
			if rng.Float64() >= rate {
				continue
			}
			dst := rng.Intn(nodes - 1)
			if dst >= src {
				dst++
			}
			specs = append(specs, sim.PacketSpec{Src: src, Dst: dst, Flits: flits, InjectCycle: c})
		}
	}
	return specs
}

// Permutation emits one packet per source following the permutation
// (perm[src] == src entries are skipped), all injected at cycle 0.
func Permutation(perm []int, flits int) []sim.PacketSpec {
	var specs []sim.PacketSpec
	for src, dst := range perm {
		if src == dst {
			continue
		}
		specs = append(specs, sim.PacketSpec{Src: src, Dst: dst, Flits: flits})
	}
	return specs
}

// BitComplement returns the permutation dst = ^src over nodes (nodes must
// be a power of two).
func BitComplement(nodes int) []int {
	if nodes&(nodes-1) != 0 {
		panic(fmt.Sprintf("workload: bit complement needs a power of two, got %d", nodes))
	}
	perm := make([]int, nodes)
	for s := range perm {
		perm[s] = nodes - 1 - s
	}
	return perm
}

// Transpose returns the matrix-transpose permutation over an n*n node grid
// laid out row-major.
func Transpose(n int) []int {
	perm := make([]int, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			perm[r*n+c] = c*n + r
		}
	}
	return perm
}

// Hotspot emits packets whose destination is the hotspot node with
// probability hotFrac and uniform otherwise.
func Hotspot(rng *rand.Rand, nodes, packets, flits, window, hotspot int, hotFrac float64) []sim.PacketSpec {
	specs := make([]sim.PacketSpec, 0, packets)
	for i := 0; i < packets; i++ {
		src := rng.Intn(nodes)
		var dst int
		if rng.Float64() < hotFrac && src != hotspot {
			dst = hotspot
		} else {
			dst = rng.Intn(nodes - 1)
			if dst >= src {
				dst++
			}
		}
		cycle := 0
		if window > 0 {
			cycle = rng.Intn(window)
		}
		specs = append(specs, sim.PacketSpec{Src: src, Dst: dst, Flits: flits, InjectCycle: cycle})
	}
	return specs
}

// DatabaseQuery models §3.0's commercial scenario: each of the given CPU
// nodes streams `transfersEach` packets to disk-controller nodes chosen
// round-robin, sustained back to back. It is the load-imbalance pattern the
// contention metric abstracts.
func DatabaseQuery(cpus, disks []int, transfersEach, flits int) []sim.PacketSpec {
	var specs []sim.PacketSpec
	for i, cpu := range cpus {
		for k := 0; k < transfersEach; k++ {
			disk := disks[(i+k)%len(disks)]
			specs = append(specs, sim.PacketSpec{Src: cpu, Dst: disk, Flits: flits})
		}
	}
	return specs
}

// Transfers builds packet specs from explicit (src, dst) pairs, all
// injected at cycle 0 — used for the paper's hand-built worst cases.
func Transfers(pairs [][2]int, flits int) []sim.PacketSpec {
	specs := make([]sim.PacketSpec, len(pairs))
	for i, p := range pairs {
		specs[i] = sim.PacketSpec{Src: p[0], Dst: p[1], Flits: flits}
	}
	return specs
}

// MeshCornerTurn is §3.1's worst case on the 6x6 mesh with two nodes per
// router: the ten transfers from column A that all turn the corner at A6.
// Sources are the nodes of routers (0,0)..(0,4); destinations the nodes of
// routers (5,5) down to (1,5), pairing each source router with a distinct
// destination router.
func MeshCornerTurn(cols, rows, nodesPer int) [][2]int {
	var pairs [][2]int
	for i := 0; i < rows-1; i++ {
		srcRouter := i * cols // (0, i), row-major router index
		dstRouter := (rows-1)*cols + (cols - 1 - i)
		for j := 0; j < nodesPer; j++ {
			pairs = append(pairs, [2]int{srcRouter*nodesPer + j, dstRouter*nodesPer + j})
		}
	}
	return pairs
}

// FatTreeWorstCase is §3.3's scenario on the 64-node 4-2 fat tree: nodes
// 48..59 sending to nodes 0..11.
func FatTreeWorstCase() [][2]int {
	var pairs [][2]int
	for i := 0; i < 12; i++ {
		pairs = append(pairs, [2]int{48 + i, i})
	}
	return pairs
}

// FractahedronWorstCase is §3.4's scenario on the 64-node fat fractahedron:
// nodes 6, 7, 14, 15 sending to 54, 55, 62, 63.
func FractahedronWorstCase() [][2]int {
	return [][2]int{{6, 54}, {7, 55}, {14, 62}, {15, 63}}
}

// RingDeadlockSet is Figure 1's circular-wait workload on a ring of size
// routers with one node each: every node sends to the node halfway around,
// so that clockwise routes overlap pairwise all the way around the loop.
func RingDeadlockSet(size int) [][2]int {
	var pairs [][2]int
	for i := 0; i < size; i++ {
		pairs = append(pairs, [2]int{i, (i + size/2) % size})
	}
	return pairs
}

// BitReversal returns the bit-reversal permutation over nodes (a power of
// two): destination = source with its address bits reversed — a classic
// adversarial pattern for dimension-ordered networks.
func BitReversal(nodes int) []int {
	if nodes&(nodes-1) != 0 {
		panic(fmt.Sprintf("workload: bit reversal needs a power of two, got %d", nodes))
	}
	bits := 0
	for 1<<bits < nodes {
		bits++
	}
	perm := make([]int, nodes)
	for s := range perm {
		r := 0
		for b := 0; b < bits; b++ {
			if s&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		perm[s] = r
	}
	return perm
}

// NearestNeighbor returns the +1 cyclic shift permutation, the friendliest
// possible pattern for ring-like locality.
func NearestNeighbor(nodes int) []int {
	perm := make([]int, nodes)
	for s := range perm {
		perm[s] = (s + 1) % nodes
	}
	return perm
}

// Tornado returns the half-way shift permutation dst = src + nodes/2, the
// worst case for rings and tori.
func Tornado(nodes int) []int {
	perm := make([]int, nodes)
	for s := range perm {
		perm[s] = (s + nodes/2) % nodes
	}
	return perm
}

// Locality emits packets whose destination falls inside the source's local
// block (same leaf router group, same tetrahedron — whatever blockSize
// captures for the topology) with probability localFrac, and uniformly
// otherwise. §3.3 of the paper anticipates exactly this structure in
// commercial systems ("each processor in a cluster would typically have a
// high degree of local access to reach its system disk") and argues it is
// what makes the bandwidth-thinning 4-2 fat tree acceptable.
func Locality(rng *rand.Rand, nodes, packets, flits, window, blockSize int, localFrac float64) []sim.PacketSpec {
	if blockSize < 2 || nodes%blockSize != 0 {
		panic(fmt.Sprintf("workload: locality block %d does not divide %d nodes", blockSize, nodes))
	}
	specs := make([]sim.PacketSpec, 0, packets)
	for i := 0; i < packets; i++ {
		src := rng.Intn(nodes)
		var dst int
		if rng.Float64() < localFrac {
			base := src / blockSize * blockSize
			dst = base + rng.Intn(blockSize-1)
			if dst >= src {
				dst++
			}
		} else {
			dst = rng.Intn(nodes - 1)
			if dst >= src {
				dst++
			}
		}
		cycle := 0
		if window > 0 {
			cycle = rng.Intn(window)
		}
		specs = append(specs, sim.PacketSpec{Src: src, Dst: dst, Flits: flits, InjectCycle: cycle})
	}
	return specs
}
