package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// testSweep is a small but non-trivial campaign: 2 topologies x 2
// rates.
func testSweep(seed int64) JobSpec {
	return JobSpec{Kind: "sweep", Sweep: &experiments.SweepSpec{
		Specs:     []string{"fat-fract:levels=1", "ring:size=4"},
		Rates:     []float64{0.01, 0.03},
		Cycles:    200,
		Flits:     4,
		FIFODepth: 4,
		Seed:      seed,
	}}
}

func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func postJob(t *testing.T, s *Server, spec JobSpec) (JobStatus, int) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit reply (HTTP %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode
}

func get(t *testing.T, s *Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp.StatusCode
}

func waitDone(t *testing.T, s *Server, key string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		b, code := get(t, s, "/v1/jobs/"+key)
		if code != http.StatusOK {
			t.Fatalf("status: HTTP %d: %s", code, b)
		}
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never settled")
	return JobStatus{}
}

// TestLimiterDeterministic pins the token bucket as a pure function of
// (burst, perRefill, Allows, Refills) — the property the channel-based
// design buys: no wall clock anywhere in the accounting.
func TestLimiterDeterministic(t *testing.T) {
	l := NewLimiter(2, 1)
	for i, want := range []bool{true, true, false, false} {
		if got := l.Allow(); got != want {
			t.Fatalf("Allow #%d = %v, want %v", i, got, want)
		}
	}
	l.Refill()
	if !l.Allow() {
		t.Fatal("Allow after Refill = false")
	}
	if l.Allow() {
		t.Fatal("second Allow after one Refill = true")
	}
	// Refills never exceed the burst.
	for i := 0; i < 10; i++ {
		l.Refill()
	}
	if !l.Allow() || !l.Allow() {
		t.Fatal("bucket did not refill to burst")
	}
	if l.Allow() {
		t.Fatal("bucket exceeded burst after 10 refills")
	}
	// perRefill > 1 restores several at once.
	l3 := NewLimiter(3, 2)
	l3.Allow()
	l3.Allow()
	l3.Allow()
	l3.Refill()
	if !l3.Allow() || !l3.Allow() || l3.Allow() {
		t.Fatal("perRefill=2 did not restore exactly 2 tokens")
	}
	// nil limiter admits everything.
	var nilL *Limiter
	if NewLimiter(0, 1) != nil {
		t.Fatal("burst 0 should disable limiting")
	}
	if !nilL.Allow() {
		t.Fatal("nil limiter rejected")
	}
	nilL.Refill()
}

// TestLimiterConcurrent hammers one bucket from many goroutines: the
// number of admits can never exceed tokens issued.
func TestLimiterConcurrent(t *testing.T) {
	const burst, workers, tries = 8, 4, 100
	l := NewLimiter(burst, 1)
	admits := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			n := 0
			for i := 0; i < tries; i++ {
				if l.Allow() {
					n++
				}
			}
			admits <- n
		}()
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += <-admits
	}
	if total != burst {
		t.Fatalf("%d admits from a burst of %d with no refills", total, burst)
	}
}

// TestSubmitValidation: malformed jobs are rejected at admission with
// 400, never enqueued.
func TestSubmitValidation(t *testing.T) {
	s := startTestServer(t, Config{})
	for _, body := range []string{
		`{`,
		`{"kind":"mystery"}`,
		`{"kind":"sweep"}`,
		`{"kind":"sweep","sweep":{"specs":["no-such:x=1"],"rates":[0.1],"cycles":10,"flits":1,"fifo_depth":1}}`,
		`{"kind":"chaos","chaos":{"trials":0,"packets":10,"flits":1}}`,
	} {
		resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestQueueFullRejects: with one busy worker and QueueDepth 1, a third
// job is refused with 503 + Retry-After, and the refusal is observable
// before anything else finishes.
func TestQueueFullRejects(t *testing.T) {
	s := startTestServer(t, Config{
		QueueDepth: 1, JobWorkers: 1, PointWorkers: 1,
		PointDelay: 50 * time.Millisecond,
	})
	st1, code := postJob(t, s, testSweep(1))
	if code != http.StatusAccepted {
		t.Fatalf("job 1: HTTP %d, want 202", code)
	}
	// Wait until the worker picked job 1 up, so job 2 occupies the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := get(t, s, "/v1/jobs/"+st1.Key)
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != stateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, code := postJob(t, s, testSweep(2)); code != http.StatusAccepted {
		t.Fatalf("job 2: HTTP %d, want 202", code)
	}
	b, err := json.Marshal(testSweep(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job 3: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestRateLimitRejects: with a burst of 1 and no refill ticking to
// speak of, the second distinct submission gets 429 + Retry-After, and
// an explicit Refill admits the next.
func TestRateLimitRejects(t *testing.T) {
	s := startTestServer(t, Config{
		RateBurst: 1, RateRefill: 1, RefillEvery: time.Hour,
	})
	if _, code := postJob(t, s, testSweep(1)); code != http.StatusAccepted {
		t.Fatalf("job 1: HTTP %d, want 202", code)
	}
	b, err := json.Marshal(testSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 2: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The deterministic test hook: refill explicitly, no clock involved.
	s.limiter.Refill()
	if _, code := postJob(t, s, testSweep(2)); code != http.StatusAccepted {
		t.Fatalf("job 2 after refill: HTTP %d, want 202", code)
	}
}

// TestStreamAndArtifact: the streamed NDJSON equals the artifact
// byte-for-byte, the artifact has one row per point in point order, and
// every row matches an independent SweepSpec.Row computation.
func TestStreamAndArtifact(t *testing.T) {
	s := startTestServer(t, Config{})
	spec := testSweep(7)
	st, code := postJob(t, s, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", code)
	}
	rows, rcode := get(t, s, "/v1/jobs/"+st.Key+"/rows")
	if rcode != http.StatusOK {
		t.Fatalf("rows: HTTP %d", rcode)
	}
	fin := waitDone(t, s, st.Key)
	if fin.State != stateDone {
		t.Fatalf("job settled as %q (%s)", fin.State, fin.Error)
	}
	art, acode := get(t, s, "/v1/artifacts/"+st.Key)
	if acode != http.StatusOK {
		t.Fatalf("artifact: HTTP %d", acode)
	}
	if !bytes.Equal(rows, art) {
		t.Fatal("streamed rows differ from the artifact")
	}
	lines := bytes.Split(bytes.TrimSuffix(art, []byte{'\n'}), []byte{'\n'})
	if len(lines) != spec.points() {
		t.Fatalf("%d rows, want %d", len(lines), spec.points())
	}
	for i, line := range lines {
		want, err := spec.row(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, want) {
			t.Fatalf("row %d: served %s, computed %s", i, line, want)
		}
	}
}

// TestChaosJob runs a chaos-kind campaign through the server and checks
// the rows against direct chaos.Trial execution.
func TestChaosJob(t *testing.T) {
	s := startTestServer(t, Config{})
	spec := JobSpec{Kind: "chaos", Chaos: &ChaosJobSpec{Trials: 2, Packets: 100, Flits: 3, Seed: 2}}
	st, code := postJob(t, s, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", code)
	}
	fin := waitDone(t, s, st.Key)
	if fin.State != stateDone {
		t.Fatalf("job settled as %q (%s)", fin.State, fin.Error)
	}
	art, _ := get(t, s, "/v1/artifacts/"+st.Key)
	lines := bytes.Split(bytes.TrimSuffix(art, []byte{'\n'}), []byte{'\n'})
	if len(lines) != 2 {
		t.Fatalf("%d rows, want 2", len(lines))
	}
	for i, line := range lines {
		want, err := spec.row(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, want) {
			t.Fatalf("trial %d row differs from direct chaos.Trial", i)
		}
	}
}

// TestCacheHitServesRepeat: a repeat submission of a finished job is
// served from the artifact cache — 200, cached flag, hit counter up,
// computed counter flat.
func TestCacheHitServesRepeat(t *testing.T) {
	s := startTestServer(t, Config{CacheDir: t.TempDir()})
	spec := testSweep(5)
	st, _ := postJob(t, s, spec)
	if fin := waitDone(t, s, st.Key); fin.State != stateDone {
		t.Fatalf("job settled as %q (%s)", fin.State, fin.Error)
	}
	computed := s.computed.Load()
	if computed != int64(spec.points()) {
		t.Fatalf("computed %d points, want %d", computed, spec.points())
	}
	hitsBefore, _ := s.cache.Stats()
	re, code := postJob(t, s, spec)
	if code != http.StatusOK || !re.Cached || re.State != stateDone {
		t.Fatalf("repeat: HTTP %d cached=%v state=%q, want 200/true/done", code, re.Cached, re.State)
	}
	if got := s.computed.Load(); got != computed {
		t.Fatalf("repeat submission computed %d new points", got-computed)
	}
	if hits, _ := s.cache.Stats(); hits <= hitsBefore {
		t.Fatal("repeat submission did not register a cache hit")
	}
	// And the artifact survives a brand-new server sharing the cache dir.
	s2 := startTestServer(t, Config{CacheDir: s.cfg.CacheDir})
	re2, code2 := postJob(t, s2, spec)
	if code2 != http.StatusOK || !re2.Cached {
		t.Fatalf("cross-process repeat: HTTP %d cached=%v, want 200/true", code2, re2.Cached)
	}
	if got := s2.computed.Load(); got != 0 {
		t.Fatalf("cross-process repeat computed %d points, want 0", got)
	}
}

// TestAbortResumeByteIdentical is the in-process half of the resume
// story: close the server mid-campaign (graceful abort keeps the
// checkpoint), restart on the same directories, and require the final
// artifact to be byte-identical to an uninterrupted run — with the
// restored points never recomputed.
func TestAbortResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	cache := filepath.Join(dir, "cache")
	spec := testSweep(9)

	// Uninterrupted reference, separate directories.
	ref := startTestServer(t, Config{})
	rst, _ := postJob(t, ref, spec)
	if fin := waitDone(t, ref, rst.Key); fin.State != stateDone {
		t.Fatalf("reference settled as %q (%s)", fin.State, fin.Error)
	}
	want, _ := get(t, ref, "/v1/artifacts/"+rst.Key)

	// Interrupted run: slow points down, close after ≥1 landed.
	s1 := startTestServer(t, Config{
		CheckpointDir: ckpt, CacheDir: cache,
		PointWorkers: 1, PointDelay: 30 * time.Millisecond,
	})
	st, code := postJob(t, s1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := get(t, s1, "/v1/jobs/"+st.Key)
		var cur JobStatus
		if err := json.Unmarshal(b, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.Done >= 1 && cur.Done < cur.Points {
			break
		}
		if cur.Done == cur.Points || time.Now().After(deadline) {
			t.Fatalf("no mid-campaign window to abort in (done %d/%d)", cur.Done, cur.Points)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if jb := s1.lookup(st.Key); jb.status().State != stateAborted {
		t.Fatalf("job after close: %q, want aborted", jb.status().State)
	}

	// Restart on the same directories: the checkpoint re-admits the job.
	s2 := startTestServer(t, Config{CheckpointDir: ckpt, CacheDir: cache})
	fin := waitDone(t, s2, st.Key)
	if fin.State != stateDone {
		t.Fatalf("resumed job settled as %q (%s)", fin.State, fin.Error)
	}
	if fin.Resumed < 1 {
		t.Fatalf("resumed %d points, want >= 1", fin.Resumed)
	}
	if got := s2.computed.Load(); got+int64(fin.Resumed) != int64(spec.points()) {
		t.Fatalf("resumed run computed %d points with %d restored, want %d total",
			got, fin.Resumed, spec.points())
	}
	got, _ := get(t, s2, "/v1/artifacts/"+st.Key)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	// The checkpoint is consumed on completion.
	if _, _, err := readCheckpoint(s2.checkpointPath(st.Key), 0); err == nil {
		t.Fatal("checkpoint file survived job completion")
	}
}

// TestCheckpointTornTail: a checkpoint whose last line was torn by a
// crash loads every clean point and drops the tail.
func TestCheckpointTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.ckpt")
	hdr := checkpointHeader{Key: strings.Repeat("ab", 32), Revision: "r", Points: 4, Spec: json.RawMessage(`{}`)}
	w, err := newCheckpointWriter(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append(i, json.RawMessage(fmt.Sprintf(`{"p":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a line.
	f, err := newCheckpointWriter(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	f.f.Write([]byte(`{"point":3,"row":{"p"`))
	f.close()

	got, rows, err := readCheckpoint(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != hdr.Key || got.Points != 4 {
		t.Fatalf("header round-trip: %+v", got)
	}
	if len(rows) != 3 {
		t.Fatalf("loaded %d rows, want 3 (torn tail dropped)", len(rows))
	}
	for i := 0; i < 3; i++ {
		if string(rows[i]) != fmt.Sprintf(`{"p":%d}`, i) {
			t.Fatalf("row %d: %s", i, rows[i])
		}
	}
}

// TestStatuszShape: the counters page carries the engine revision and
// the jobs/queue/points/cache sections.
func TestStatuszShape(t *testing.T) {
	s := startTestServer(t, Config{})
	st, _ := postJob(t, s, testSweep(3))
	waitDone(t, s, st.Key)
	b, code := get(t, s, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: HTTP %d", code)
	}
	var z Statusz
	if err := json.Unmarshal(b, &z); err != nil {
		t.Fatal(err)
	}
	if z.Revision != s.Revision() || len(z.Revision) != 64 {
		t.Fatalf("statusz revision %q", z.Revision)
	}
	if z.Jobs[stateDone] != 1 {
		t.Fatalf("statusz jobs: %v", z.Jobs)
	}
	if z.Points.Computed == 0 {
		t.Fatal("statusz computed counter never moved")
	}
	if z.Backend != BackendIndexed {
		t.Fatalf("statusz backend %q, want %q", z.Backend, BackendIndexed)
	}
	if z.Points.ComputedIndexed != z.Points.Computed || z.Points.ComputedLive != 0 {
		t.Fatalf("statusz per-backend split: %+v", z.Points)
	}
}

// TestServerGoroutinesJoined: a full start/submit/stream/close cycle
// leaves no goroutine behind — the dynamic witness of the goleak
// obligation the certificate proves statically.
func TestServerGoroutinesJoined(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s := startTestServer(t, Config{JobWorkers: 2})
		st, _ := postJob(t, s, testSweep(int64(20+i)))
		get(t, s, "/v1/jobs/"+st.Key+"/rows")
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after three server lifecycles", before, runtime.NumGoroutine())
}
