package serve

// Limiter is a token-bucket admission rate limiter built on a buffered
// channel: Allow draws a token, Refill restores some. Both sides are
// select-with-default, so neither can ever block — the limiter is pure
// state, and the refill cadence is supplied from outside (the server's
// ticker goroutine in production, an explicit Refill call in tests),
// which is what makes its behavior deterministic under test: N Allows
// after K Refills is a pure function of (burst, perRefill, N, K).
type Limiter struct {
	tokens    chan struct{}
	perRefill int
}

// NewLimiter builds a bucket holding burst tokens (initially full) that
// Refill tops up by perRefill. burst <= 0 returns nil, and a nil
// *Limiter admits everything — rate limiting off.
func NewLimiter(burst, perRefill int) *Limiter {
	if burst <= 0 {
		return nil
	}
	if perRefill < 1 {
		perRefill = 1
	}
	l := &Limiter{tokens: make(chan struct{}, burst), perRefill: perRefill}
	l.add(burst)
	return l
}

// Allow consumes one token, reporting whether one was available.
func (l *Limiter) Allow() bool {
	if l == nil {
		return true
	}
	select {
	case <-l.tokens:
		return true
	default:
		return false
	}
}

// Refill restores up to perRefill tokens; the bucket never exceeds its
// burst capacity (excess tokens are dropped by the full channel).
func (l *Limiter) Refill() {
	if l == nil {
		return
	}
	l.add(l.perRefill)
}

func (l *Limiter) add(n int) {
	for i := 0; i < n; i++ {
		select {
		case l.tokens <- struct{}{}:
		default:
			return
		}
	}
}
