package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint files make a campaign survivable: one header line naming
// the job (key, engine revision, point count, spec), then one line per
// completed point, appended as the point lands. Every line is a single
// unbuffered os.File write, so a SIGKILL can tear at most the final
// line — and because every row is a pure function of (spec, point), a
// torn or lost line only costs recomputing that point, never
// correctness. The reader tolerates exactly that: it stops at the first
// undecodable line and ignores duplicate or out-of-range points.

// checkpointHeader is the first line of a checkpoint file.
type checkpointHeader struct {
	Key      string          `json:"key"`
	Revision string          `json:"revision"`
	Points   int             `json:"points"`
	Spec     json.RawMessage `json:"spec"`
}

// checkpointLine is one completed point.
type checkpointLine struct {
	Point int             `json:"point"`
	Row   json.RawMessage `json:"row"`
}

// checkpointWriter appends completed points to one job's checkpoint.
// append is safe for concurrent use — the runner's emit hook fires from
// whichever worker finished the point.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// newCheckpointWriter opens (or resumes) the checkpoint at path. A
// fresh file gets the header line; a resumed file is appended to as-is.
func newCheckpointWriter(path string, hdr checkpointHeader) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: checkpoint: %w", err)
	}
	if st.Size() == 0 {
		b, err := json.Marshal(hdr)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: checkpoint: %w", err)
		}
		if _, err := f.Write(append(b, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: checkpoint: %w", err)
		}
	}
	return &checkpointWriter{f: f}, nil
}

// append persists one completed point as a single write.
func (w *checkpointWriter) append(point int, row json.RawMessage) error {
	b, err := json.Marshal(checkpointLine{Point: point, Row: row})
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.f.Write(append(b, '\n'))
	return err
}

func (w *checkpointWriter) close() error { return w.f.Close() }

// readCheckpoint loads a checkpoint file: the header plus every cleanly
// recorded point, first record wins on duplicates. Decoding stops at
// the first torn/invalid line (the SIGKILL tail); what was read before
// it is still good.
func readCheckpoint(path string, maxPoints int) (checkpointHeader, map[int]json.RawMessage, error) {
	f, err := os.Open(path)
	if err != nil {
		return checkpointHeader{}, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return checkpointHeader{}, nil, fmt.Errorf("serve: checkpoint %s: empty", path)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Key == "" {
		return checkpointHeader{}, nil, fmt.Errorf("serve: checkpoint %s: bad header", path)
	}
	limit := hdr.Points
	if maxPoints > 0 && limit > maxPoints {
		limit = maxPoints
	}
	rows := map[int]json.RawMessage{}
	for sc.Scan() {
		var ln checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil || ln.Row == nil {
			break // torn tail: everything before it stands
		}
		if ln.Point < 0 || ln.Point >= limit {
			continue
		}
		if _, ok := rows[ln.Point]; !ok {
			// Copy out of the scanner's reused buffer.
			rows[ln.Point] = append(json.RawMessage(nil), ln.Row...)
		}
	}
	return hdr, rows, nil
}
