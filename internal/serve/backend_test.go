// Tests for the backend seam: live jobs run the concurrent fabric end
// to end on a live-backend server, are refused everywhere else, and
// /statusz attributes computed points to the backend that ran them.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

func testLive(seed int64) JobSpec {
	return JobSpec{Kind: kindLive, Live: &LiveJobSpec{
		Spec: "fat-fract:levels=1", Runs: 3, Packets: 40, Flits: 4, Seed: seed,
	}}
}

// TestLiveJobEndToEnd: a live job admits, runs the goroutine fabric
// once per point, and produces rows that state full delivery on a
// certified fabric; /statusz reports the live backend and counts the
// points under the live counter only.
func TestLiveJobEndToEnd(t *testing.T) {
	s := startTestServer(t, Config{Backend: BackendLive})
	st, code := postJob(t, s, testLive(5))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	done := waitDone(t, s, st.Key)
	if done.State != stateDone || done.Points != 3 {
		t.Fatalf("job settled %+v", done)
	}
	art, code := get(t, s, "/v1/artifacts/"+st.Key)
	if code != http.StatusOK {
		t.Fatalf("artifact: HTTP %d", code)
	}
	sc := bufio.NewScanner(bytes.NewReader(art))
	run := 0
	for sc.Scan() {
		var row liveRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d: %v", run, err)
		}
		if row.Run != run || row.Packets != 40 {
			t.Fatalf("row %d shape: %+v", run, row)
		}
		if row.Delivered != row.Packets || row.Dropped != 0 || row.Deadlocked {
			t.Fatalf("row %d: certified fabric did not deliver everything: %+v", run, row)
		}
		run++
	}
	if run != 3 {
		t.Fatalf("artifact has %d rows, want 3", run)
	}

	b, _ := get(t, s, "/statusz")
	var z Statusz
	if err := json.Unmarshal(b, &z); err != nil {
		t.Fatal(err)
	}
	if z.Backend != BackendLive {
		t.Fatalf("statusz backend %q, want %q", z.Backend, BackendLive)
	}
	if z.Points.ComputedLive != 3 || z.Points.ComputedIndexed != 0 {
		t.Fatalf("statusz per-backend split: %+v", z.Points)
	}
}

// TestLiveJobNeedsLiveBackend: an indexed-backend server refuses live
// jobs with 400, and a live-backend server still accepts indexed kinds
// — the backend flag adds a capability, it never removes one.
func TestLiveJobNeedsLiveBackend(t *testing.T) {
	s := startTestServer(t, Config{})
	if _, code := postJob(t, s, testLive(1)); code != http.StatusBadRequest {
		t.Fatalf("live job on indexed backend: HTTP %d, want 400", code)
	}

	live := startTestServer(t, Config{Backend: BackendLive})
	st, code := postJob(t, live, testSweep(1))
	if code != http.StatusAccepted {
		t.Fatalf("sweep on live backend: HTTP %d, want 202", code)
	}
	if done := waitDone(t, live, st.Key); done.State != stateDone {
		t.Fatalf("sweep on live backend settled %+v", done)
	}
}

// TestLiveJobValidation: malformed and uncertified live specs are
// rejected at admission — in particular a fabric whose CDG certificate
// has a cycle, whose schedule-dependent partial deliveries would break
// the byte-identical artifact contract.
func TestLiveJobValidation(t *testing.T) {
	s := startTestServer(t, Config{Backend: BackendLive})
	bad := []JobSpec{
		{Kind: kindLive},
		{Kind: kindLive, Live: &LiveJobSpec{Spec: "fat-fract:levels=1", Runs: 0, Packets: 1, Flits: 1}},
		{Kind: kindLive, Live: &LiveJobSpec{Spec: "no-such-topology", Runs: 1, Packets: 1, Flits: 1}},
		{Kind: kindLive, Live: &LiveJobSpec{Spec: "ring:size=4,unsafe", Runs: 1, Packets: 4, Flits: 4}},
	}
	for i, spec := range bad {
		if _, code := postJob(t, s, spec); code != http.StatusBadRequest {
			t.Fatalf("bad live spec %d: HTTP %d, want 400", i, code)
		}
	}
}
