// The package's single wall-clock seam. Every timed wait the server
// performs — the artificial per-point delay and the limiter refill
// tick — goes through the Clock interface, so tests drive time
// synthetically instead of sleeping, and the nondet analyzer's
// allowlist for the package is exactly this file: the one place the
// wall clock is real.
package serve

import "time"

// Clock abstracts the server's timed waits. The zero Config uses the
// wall clock; tests inject a fake to make retry/delay paths fire
// without real elapsed time.
type Clock interface {
	// Sleep blocks the caller for d.
	Sleep(d time.Duration)
	// Tick returns a channel delivering ticks every d and a stop
	// function releasing the underlying timer. Stop is idempotent per
	// Clock contract only in that callers invoke it exactly once.
	Tick(d time.Duration) (<-chan time.Time, func())
}

// wallClock is the production Clock.
type wallClock struct{}

func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

func (wallClock) Tick(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}
