// Tests for the Clock seam: the per-point delay and the limiter refill
// both fire under a fake clock, deterministically and without real
// elapsed time. Before the seam, the equivalents of these tests slept
// through PointDelay for real (and the refill path was reachable only
// by waiting out RefillEvery wall-clock ticks).
package serve

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeClock records Sleep calls and hands the refill loop a test-driven
// tick channel. No method ever touches the wall clock.
type fakeClock struct {
	mu    sync.Mutex
	slept []time.Duration
	tick  chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{tick: make(chan time.Time)}
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.mu.Unlock()
}

func (c *fakeClock) Tick(d time.Duration) (<-chan time.Time, func()) {
	return c.tick, func() {}
}

func (c *fakeClock) sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// TestPointDelayFiresUnderFakeClock: the per-point delay path runs once
// per computed point — observed through the fake — while the campaign
// settles in a fraction of the nominal delay budget, because nothing
// actually sleeps. Under the wall clock this spec would hold the
// workers for points x 250ms.
func TestPointDelayFiresUnderFakeClock(t *testing.T) {
	clk := newFakeClock()
	const delay = 250 * time.Millisecond
	s := startTestServer(t, Config{PointDelay: delay, Clock: clk})
	start := time.Now()
	st, code := postJob(t, s, testSweep(9))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	done := waitDone(t, s, st.Key)
	if done.State != stateDone {
		t.Fatalf("job state %q: %s", done.State, done.Error)
	}
	slept := clk.sleeps()
	if len(slept) != done.Points {
		t.Fatalf("delay path fired %d times, want once per point (%d)", len(slept), done.Points)
	}
	for _, d := range slept {
		if d != delay {
			t.Fatalf("delay path slept %v, want %v", d, delay)
		}
	}
	budget := time.Duration(done.Points) * delay
	if elapsed := time.Since(start); elapsed >= budget {
		t.Fatalf("campaign took %v — the fake clock did not displace the %v sleep budget", elapsed, budget)
	}
}

// TestRefillFiresUnderFakeClock: the limiter's retry path — 429 until a
// refill tick lands — driven entirely by pulses on the fake tick
// channel, no wall-clock wait. The second pulse is the happens-before
// edge: it is only accepted after the first pulse's Refill completed.
func TestRefillFiresUnderFakeClock(t *testing.T) {
	clk := newFakeClock()
	s := startTestServer(t, Config{
		RateBurst: 1, RateRefill: 1, RefillEvery: time.Hour, Clock: clk,
	})
	if _, code := postJob(t, s, testSweep(1)); code != http.StatusAccepted {
		t.Fatalf("job 1: HTTP %d, want 202", code)
	}
	if _, code := postJob(t, s, testSweep(2)); code != http.StatusTooManyRequests {
		t.Fatalf("job 2 before refill: HTTP %d, want 429", code)
	}
	clk.tick <- time.Time{}
	clk.tick <- time.Time{}
	if _, code := postJob(t, s, testSweep(2)); code != http.StatusAccepted {
		t.Fatalf("job 2 after fake refill tick: HTTP %d, want 202", code)
	}
}
