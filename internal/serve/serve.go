// Package serve is the campaign server: an HTTP/JSON front end over the
// deterministic experiment engines (runner.MapResume fanning
// experiments.SweepSpec points or chaos.Trial trials over a worker
// pool). Three properties carry over from the batch engines and are the
// whole point of the service:
//
//   - Determinism: a job's artifact is a pure function of (spec, engine
//     revision). Streaming emits only the fully populated row prefix, so
//     clients observe the same merge-in-order bytes the batch engine
//     returns, no matter how points were scheduled.
//   - Survivability: completed points append to a per-job checkpoint
//     (one unbuffered write per point); a restarted server re-admits the
//     job and skips finished points, and the final artifact is
//     byte-identical to an uninterrupted run.
//   - Content addressing: finished artifacts live in a cache keyed by
//     SHA-256(engine revision, canonical spec), where the revision is
//     the hash of the committed concurrency-certificate golden — a
//     repeat submission is served with zero simulator cycles, and an
//     engine change can never alias an old artifact.
//
// Shutdown is total: Close flips the stopping flag (in-flight points
// abort at the next point boundary, checkpoints intact), closes the
// stop channel (streaming handlers and the refill ticker return), shuts
// the HTTP listener down, closes the queue (workers drain and exit) and
// joins every goroutine on the server WaitGroup — the shape the goleak/
// chanwait certificate proves leak- and cycle-free.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis/codecert"
	"repro/internal/runner"
)

// Config sizes the server. Zero values select sensible defaults; only
// Addr is required.
type Config struct {
	Addr          string        // listen address ("127.0.0.1:0" for an ephemeral port)
	CheckpointDir string        // in-flight campaign checkpoints; "" disables resume
	CacheDir      string        // artifact cache directory; "" keeps artifacts in memory only
	QueueDepth    int           // admission bound on jobs queued behind the workers (default 16)
	JobWorkers    int           // campaigns run concurrently (default 1)
	PointWorkers  int           // runner pool width inside one campaign (0 = GOMAXPROCS)
	Shards        int           // per-point engine shard count (<= 1 = sequential)
	RateBurst     int           // token-bucket burst; 0 disables rate limiting
	RateRefill    int           // tokens restored per refill tick (default 1)
	RefillEvery   time.Duration // refill tick period (default 100ms)
	PointDelay    time.Duration // artificial per-point delay — a smoke-test hook; wall-clock only, never in a row
	Backend       string        // execution backend: BackendIndexed (default) or BackendLive
	Clock         Clock         // timed-wait source; nil selects the wall clock
}

// Execution backends a server can advertise. The indexed backend runs
// sweep and chaos campaigns on the deterministic cycle-level engine;
// the live backend additionally accepts "live" jobs, which execute the
// concurrent goroutine fabric (internal/livefabric).
const (
	BackendIndexed = "indexed"
	BackendLive    = "live"
)

// Server is one campaign service instance.
type Server struct {
	cfg      Config
	revision string

	ln  net.Listener
	srv *http.Server

	mu   sync.Mutex
	jobs map[string]*job
	keys []string // admission order

	queue   chan *job
	queued  atomic.Int64 // logical queue occupancy, gates admission
	limiter *Limiter
	cache   *Cache

	computed        atomic.Int64 // points actually simulated (never cache/checkpoint-served)
	computedIndexed atomic.Int64 // computed points that ran the indexed engine (sweep/chaos)
	computedLive    atomic.Int64 // computed points that ran the live concurrent fabric
	resumedPoints   atomic.Int64 // points restored from checkpoints at startup

	wg       sync.WaitGroup
	stop     chan struct{}
	stopping atomic.Bool
	closed   atomic.Bool
}

// errShutdown aborts in-flight points at the next point boundary when
// the server is closing; the job parks as "aborted" with its checkpoint
// intact.
var errShutdown = errors.New("serve: shutting down")

// New builds a server and re-admits every resumable checkpoint found in
// cfg.CheckpointDir. Call Start to begin listening.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.JobWorkers < 1 {
		cfg.JobWorkers = 1
	}
	if cfg.RateRefill < 1 {
		cfg.RateRefill = 1
	}
	if cfg.RefillEvery <= 0 {
		cfg.RefillEvery = 100 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock{}
	}
	switch cfg.Backend {
	case "":
		cfg.Backend = BackendIndexed
	case BackendIndexed, BackendLive:
	default:
		return nil, fmt.Errorf("serve: unknown backend %q (want %q or %q)",
			cfg.Backend, BackendIndexed, BackendLive)
	}
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		revision: codecert.Revision(),
		jobs:     map[string]*job{},
		limiter:  NewLimiter(cfg.RateBurst, cfg.RateRefill),
		cache:    cache,
		stop:     make(chan struct{}),
	}
	resumed, err := s.loadCheckpoints()
	if err != nil {
		return nil, err
	}
	// Physical capacity covers the admission bound plus every resumed
	// job, so the enqueues below and every admission-gated send have a
	// slot by construction.
	s.queue = make(chan *job, cfg.QueueDepth+len(resumed))
	for _, jb := range resumed {
		s.jobs[jb.key] = jb
		s.keys = append(s.keys, jb.key)
		s.queued.Add(1)
		s.queue <- jb
	}
	return s, nil
}

// Revision is the engine revision baked into every job key: the
// SHA-256 of the committed concurrency-certificate golden.
func (s *Server) Revision() string { return s.revision }

// Addr is the bound listen address, available after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Start binds the listener and spawns the server goroutines: the HTTP
// acceptor, JobWorkers queue workers, and the limiter refill ticker.
// Every one is joined by Close via the server WaitGroup.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.handler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// ErrServerClosed is the normal Shutdown return.
		_ = s.srv.Serve(ln)
	}()
	for w := 0; w < s.cfg.JobWorkers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for jb := range s.queue {
				s.queued.Add(-1)
				s.runJob(jb)
			}
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tickC, stopTick := s.cfg.Clock.Tick(s.cfg.RefillEvery)
		defer stopTick()
		for {
			select {
			case <-s.stop:
				return
			case <-tickC:
				s.limiter.Refill()
			}
		}
	}()
	return nil
}

// Close shuts the server down completely: abort in-flight points (their
// checkpoints survive for the next start), release parked handlers and
// the ticker, stop the listener, drain the queue, and join every
// goroutine. Idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.stopping.Store(true)
	close(s.stop)
	var err error
	if s.srv != nil {
		err = s.srv.Shutdown(context.Background())
	}
	close(s.queue)
	s.wg.Wait()
	return err
}

func (s *Server) checkpointPath(key string) string {
	return filepath.Join(s.cfg.CheckpointDir, key+".ckpt")
}

// loadCheckpoints scans the checkpoint directory and rebuilds a job for
// every file whose key matches this engine revision; stale-revision or
// unreadable files are left on disk untouched (their rows were computed
// by a different engine and must not be trusted).
func (s *Server) loadCheckpoints() ([]*job, error) {
	if s.cfg.CheckpointDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	ents, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*job
	for _, name := range names {
		hdr, rows, err := readCheckpoint(filepath.Join(s.cfg.CheckpointDir, name), 0)
		if err != nil {
			continue
		}
		var spec JobSpec
		if json.Unmarshal(hdr.Spec, &spec) != nil || spec.validate() != nil {
			continue
		}
		if hdr.Revision != s.revision || jobKey(s.revision, spec) != hdr.Key {
			continue
		}
		jb := newJob(hdr.Key, spec)
		for p, row := range rows {
			if p >= 0 && p < jb.points {
				jb.install(p, row)
			}
		}
		jb.resumed = jb.done
		s.resumedPoints.Add(int64(jb.done))
		out = append(out, jb)
	}
	return out, nil
}

// submit admits one validated job, returning its status and the HTTP
// code that describes the outcome: 200 done (possibly straight from the
// cache), 202 admitted or already in flight, 400 job kind unsupported by
// the active backend, 429 rate-limited, 503 queue full or shutting down.
func (s *Server) submit(spec JobSpec) (JobStatus, int) {
	key := jobKey(s.revision, spec)
	if spec.Kind == kindLive && s.cfg.Backend != BackendLive {
		return JobStatus{Key: key, Error: "live jobs need the live backend (start with -backend live)"},
			http.StatusBadRequest
	}
	// Content-addressed fast path: the artifact exists under this engine
	// revision, so the answer is already exact — zero simulator cycles.
	if _, ok := s.cache.Get(key); ok {
		return JobStatus{
			Key: key, Kind: spec.Kind, State: stateDone,
			Points: spec.points(), Done: spec.points(), Cached: true,
		}, http.StatusOK
	}
	if s.stopping.Load() {
		return JobStatus{Key: key, Error: "server is shutting down"}, http.StatusServiceUnavailable
	}
	s.mu.Lock()
	if jb, ok := s.jobs[key]; ok {
		s.mu.Unlock()
		st := jb.status()
		code := http.StatusOK
		if !terminal(st.State) {
			code = http.StatusAccepted
		}
		return st, code
	}
	if !s.limiter.Allow() {
		s.mu.Unlock()
		return JobStatus{Key: key, Error: "rate limit exceeded"}, http.StatusTooManyRequests
	}
	if s.queued.Load() >= int64(s.cfg.QueueDepth) {
		s.mu.Unlock()
		return JobStatus{Key: key, Error: "job queue is full"}, http.StatusServiceUnavailable
	}
	jb := newJob(key, spec)
	s.jobs[key] = jb
	s.keys = append(s.keys, key)
	s.queued.Add(1)
	s.mu.Unlock()
	select {
	case s.queue <- jb:
	default:
		// Unreachable by construction — capacity covers the admission
		// bound — but a handler must never block on the queue.
		s.queued.Add(-1)
		jb.setState(stateFailed, "job queue overflow")
		return jb.status(), http.StatusServiceUnavailable
	}
	return jb.status(), http.StatusAccepted
}

// runJob executes one campaign on a queue worker: resume-skip restored
// points, compute the rest over the point-worker pool, checkpoint and
// stream each as it lands, and park the job in its terminal state.
func (s *Server) runJob(jb *job) {
	if s.stopping.Load() {
		jb.setState(stateAborted, "server shut down before the job ran")
		return
	}
	jb.setState(stateRunning, "")
	var ckpt *checkpointWriter
	if s.cfg.CheckpointDir != "" {
		hdr := checkpointHeader{
			Key: jb.key, Revision: s.revision,
			Points: jb.points, Spec: jb.spec.canonical(),
		}
		w, err := newCheckpointWriter(s.checkpointPath(jb.key), hdr)
		if err != nil {
			jb.setState(stateFailed, err.Error())
			return
		}
		ckpt = w
	}
	rcfg := runner.Config{Workers: s.cfg.PointWorkers}
	_, err := runner.MapResume(rcfg, jb.points,
		jb.restored,
		func(i int) (json.RawMessage, error) {
			if s.stopping.Load() {
				return nil, errShutdown
			}
			if d := s.cfg.PointDelay; d > 0 {
				s.cfg.Clock.Sleep(d)
			}
			row, err := jb.spec.row(i, s.cfg.Shards)
			if err != nil {
				return nil, err
			}
			s.computed.Add(1)
			if jb.spec.Kind == kindLive {
				s.computedLive.Add(1)
			} else {
				s.computedIndexed.Add(1)
			}
			return row, nil
		},
		func(i int, row json.RawMessage) {
			if ckpt != nil {
				// A failed append only loses the checkpoint entry: on
				// resume the point is recomputed, byte-identically.
				_ = ckpt.append(i, row)
			}
			jb.install(i, row)
		})
	if ckpt != nil {
		_ = ckpt.close()
	}
	switch {
	case err == nil:
		if err := s.cache.Put(jb.key, jb.artifact()); err != nil {
			jb.setState(stateFailed, err.Error())
			return
		}
		if s.cfg.CheckpointDir != "" {
			os.Remove(s.checkpointPath(jb.key))
		}
		jb.setState(stateDone, "")
	case errors.Is(err, errShutdown):
		// Checkpoint stays: the next start re-admits this job and skips
		// every point recorded so far.
		jb.setState(stateAborted, "server shut down mid-campaign")
	default:
		jb.setState(stateFailed, err.Error())
	}
}
