package serve

import (
	"encoding/json"
	"net/http"
)

// handler builds the route table.
//
//	POST /v1/jobs                submit a JobSpec; 200 done/cached, 202 admitted,
//	                             400 invalid, 429 rate-limited (Retry-After),
//	                             503 queue full or shutting down (Retry-After)
//	GET  /v1/jobs/{key}          job status
//	GET  /v1/jobs/{key}/rows     stream result rows as NDJSON, in point order,
//	                             as they land (blocks until the job settles)
//	GET  /v1/artifacts/{key}     the completed artifact from the cache
//	GET  /statusz                counters: jobs, queue, points, cache hit/miss
//	GET  /healthz                liveness
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{key}/rows", s.handleRows)
	mux.HandleFunc("GET /v1/artifacts/{key}", s.handleArtifact)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(v)
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job JSON: "+err.Error())
		return
	}
	if err := spec.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, code := s.submit(spec)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
		httpError(w, code, st.Error)
		return
	}
	if code == http.StatusBadRequest {
		httpError(w, code, st.Error)
		return
	}
	writeJSON(w, code, st)
}

func (s *Server) lookup(key string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[key]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		httpError(w, http.StatusNotFound, "malformed job key")
		return
	}
	if jb := s.lookup(key); jb != nil {
		writeJSON(w, http.StatusOK, jb.status())
		return
	}
	// Not in this process's lifetime, but possibly a finished artifact
	// from an earlier one.
	if _, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, JobStatus{Key: key, State: stateDone, Cached: true})
		return
	}
	httpError(w, http.StatusNotFound, "no such job")
}

// handleRows streams the job's rows as NDJSON in point order. Rows are
// written as the fully populated prefix grows — never out of order, so
// a client sees exactly the bytes of the final artifact, incrementally.
// The handler parks between updates on the job's wakeup channel and the
// server stop channel; shutdown releases it with the prefix emitted so
// far.
func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		httpError(w, http.StatusNotFound, "malformed job key")
		return
	}
	jb := s.lookup(key)
	if jb == nil {
		if art, ok := s.cache.Get(key); ok {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Write(art)
			return
		}
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	ch := jb.subscribe()
	defer jb.unsubscribe(ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	sent := 0
	for {
		rows, state := jb.snapshotFrom(sent)
		for _, row := range rows {
			w.Write(row)
			w.Write([]byte{'\n'})
			sent++
		}
		if len(rows) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal(state) {
			return
		}
		select {
		case <-ch:
		case <-s.stop:
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		httpError(w, http.StatusNotFound, "malformed artifact key")
		return
	}
	art, ok := s.cache.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no such artifact")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(art)
}

// Statusz is the wire form of GET /statusz.
type Statusz struct {
	Revision string         `json:"revision"`
	Backend  string         `json:"backend"` // active execution backend: "indexed" or "live"
	Jobs     map[string]int `json:"jobs"`    // state -> count
	Queue    QueueStats     `json:"queue"`
	Points   PointStats     `json:"points"`
	Cache    CacheStats     `json:"cache"`
}

// QueueStats describes the admission queue.
type QueueStats struct {
	Depth     int   `json:"depth"`
	Occupancy int64 `json:"occupancy"`
}

// PointStats separates simulated work from restored work: Computed
// counts points that actually ran an engine, split per backend
// (ComputedIndexed for sweep/chaos on the cycle-level engine,
// ComputedLive for live jobs on the concurrent fabric), Resumed points
// restored from checkpoints. A fully cache-served repeat moves none.
type PointStats struct {
	Computed        int64 `json:"computed"`
	ComputedIndexed int64 `json:"computed_indexed"`
	ComputedLive    int64 `json:"computed_live"`
	Resumed         int64 `json:"resumed"`
}

// CacheStats is the artifact cache hit/miss record.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := Statusz{
		Revision: s.revision,
		Backend:  s.cfg.Backend,
		Jobs:     map[string]int{},
		Queue:    QueueStats{Depth: s.cfg.QueueDepth, Occupancy: s.queued.Load()},
		Points: PointStats{
			Computed:        s.computed.Load(),
			ComputedIndexed: s.computedIndexed.Load(),
			ComputedLive:    s.computedLive.Load(),
			Resumed:         s.resumedPoints.Load(),
		},
	}
	st.Cache.Hits, st.Cache.Misses = s.cache.Stats()
	s.mu.Lock()
	for _, key := range s.keys {
		st.Jobs[s.jobs[key].status().State]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
