package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/experiments"
	"repro/internal/livefabric"
	"repro/internal/workload"
)

// JobSpec is the wire form of one campaign job: a kind tag plus that
// kind's spec. The spec IS the job identity — jobKey hashes its
// canonical JSON together with the engine revision, so equal specs on
// equal engines address the same artifact, and nothing execution-shaped
// (worker counts, shard counts, delays) appears here.
type JobSpec struct {
	Kind  string                 `json:"kind"` // "sweep", "chaos" or "live"
	Sweep *experiments.SweepSpec `json:"sweep,omitempty"`
	Chaos *ChaosJobSpec          `json:"chaos,omitempty"`
	Live  *LiveJobSpec           `json:"live,omitempty"`
}

// kindLive tags jobs that run the concurrent fabric; only a server
// started with the live backend admits them.
const kindLive = "live"

// ChaosJobSpec sizes a chaos-recovery campaign on the dual
// fractahedron pair — the same campaign cmd/chaos runs, with one trial
// per point (the checkpoint/resume unit).
type ChaosJobSpec struct {
	Trials  int   `json:"trials"`
	Packets int   `json:"packets"`
	Flits   int   `json:"flits"`
	Seed    int64 `json:"seed"`
}

// LiveJobSpec sizes a live-backend campaign: Runs independent
// executions of the concurrent goroutine fabric on one registry
// topology spec, each over a seeded uniform-random workload. A row
// carries only schedule-independent fields — for a certified
// deadlock-free spec the delivered set is a pure function of the
// workload (robustness property 1), so live campaigns checkpoint,
// resume and cache byte-identically like the indexed kinds.
type LiveJobSpec struct {
	Spec    string `json:"spec"`    // core.ParseSystem topology/routing spec
	Runs    int    `json:"runs"`    // campaign points; one fabric execution each
	Packets int    `json:"packets"` // packets injected per run
	Flits   int    `json:"flits"`   // flits per packet
	Seed    int64  `json:"seed"`    // workload seed; run i uses Seed+i
}

// liveRow is the NDJSON row of one live-fabric run. Every field is a
// pure function of (spec, point) on a certified fabric; nothing
// schedule-shaped (timings, arbitration orders) may ever appear here.
type liveRow struct {
	Run        int  `json:"run"`
	Packets    int  `json:"packets"`
	Delivered  int  `json:"delivered"`
	Dropped    int  `json:"dropped"`
	Deadlocked bool `json:"deadlocked"`
}

// validate rejects malformed jobs at admission.
func (j JobSpec) validate() error {
	switch j.Kind {
	case "sweep":
		if j.Sweep == nil {
			return fmt.Errorf("serve: sweep job without a sweep spec")
		}
		if j.Chaos != nil {
			return fmt.Errorf("serve: sweep job with a chaos spec attached")
		}
		return j.Sweep.Validate()
	case "chaos":
		if j.Chaos == nil {
			return fmt.Errorf("serve: chaos job without a chaos spec")
		}
		if j.Sweep != nil {
			return fmt.Errorf("serve: chaos job with a sweep spec attached")
		}
		c := j.Chaos
		if c.Trials < 1 {
			return fmt.Errorf("serve: chaos trials %d, need >= 1", c.Trials)
		}
		if c.Packets < 1 {
			return fmt.Errorf("serve: chaos packets %d, need >= 1", c.Packets)
		}
		if c.Flits < 1 {
			return fmt.Errorf("serve: chaos flits %d, need >= 1", c.Flits)
		}
		return nil
	case kindLive:
		if j.Live == nil {
			return fmt.Errorf("serve: live job without a live spec")
		}
		if j.Sweep != nil || j.Chaos != nil {
			return fmt.Errorf("serve: live job with another kind's spec attached")
		}
		l := j.Live
		if l.Runs < 1 {
			return fmt.Errorf("serve: live runs %d, need >= 1", l.Runs)
		}
		if l.Packets < 1 {
			return fmt.Errorf("serve: live packets %d, need >= 1", l.Packets)
		}
		if l.Flits < 1 {
			return fmt.Errorf("serve: live flits %d, need >= 1", l.Flits)
		}
		sys, _, err := core.ParseSystem(l.Spec)
		if err != nil {
			return fmt.Errorf("serve: live spec: %w", err)
		}
		// Row determinism rests on the Dally–Seitz certificate: an
		// uncertified fabric can wedge with a schedule-dependent partial
		// delivery count, which would break the byte-identical
		// checkpoint/resume and cache contracts.
		rep, err := deadlock.Analyze(sys.Tables)
		if err != nil {
			return fmt.Errorf("serve: live spec: %w", err)
		}
		if !rep.Free {
			return fmt.Errorf("serve: live spec %q is not certified deadlock-free", l.Spec)
		}
		return nil
	default:
		return fmt.Errorf("serve: unknown job kind %q (want \"sweep\", \"chaos\" or \"live\")", j.Kind)
	}
}

// points is the campaign size in checkpointable units.
func (j JobSpec) points() int {
	switch j.Kind {
	case "sweep":
		return j.Sweep.Points()
	case "chaos":
		return j.Chaos.Trials
	case kindLive:
		return j.Live.Runs
	}
	return 0
}

// canonical renders the job identity deterministically: unmarshalling
// the client's JSON and re-marshalling normalizes field order,
// whitespace and number formatting, so syntactically different
// submissions of the same job share one key.
func (j JobSpec) canonical() json.RawMessage {
	b, err := json.Marshal(j)
	if err != nil {
		// JobSpec is plain data; Marshal cannot fail on a validated spec.
		panic(fmt.Sprintf("serve: canonicalize job: %v", err))
	}
	return b
}

// jobKey derives the content address of a job's artifact:
// SHA-256(engine revision + "\n" + canonical spec JSON). The revision —
// the hash of the committed concurrency certificate golden, see
// codecert.Revision — changes whenever the analyzed engine code
// changes, so a cache can never serve rows computed by a different
// engine.
func jobKey(revision string, spec JobSpec) string {
	h := sha256.New()
	h.Write([]byte(revision))
	h.Write([]byte{'\n'})
	h.Write(spec.canonical())
	return hex.EncodeToString(h.Sum(nil))
}

// validKey gates path-derived keys before they touch the filesystem.
func validKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// row computes one point's NDJSON row — a pure function of (spec,
// point); shards is an engine execution detail that can never change
// the bytes.
func (j JobSpec) row(point, shards int) (json.RawMessage, error) {
	switch j.Kind {
	case "sweep":
		r, err := j.Sweep.Row(point, shards)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	case "chaos":
		c := j.Chaos
		spec := experiments.ChaosRecoverySpec(c.Trials, c.Packets, c.Flits, c.Seed)
		spec.Engine.Sim.Shards = shards
		tr, err := chaos.Trial(spec, point)
		if err != nil {
			return nil, err
		}
		return json.Marshal(tr)
	case kindLive:
		l := j.Live
		sys, _, err := core.ParseSystem(l.Spec)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(l.Seed + int64(point)))
		specs := workload.UniformRandom(rng, sys.Net.NumNodes(), l.Packets, l.Flits, 0)
		f := livefabric.New(sys.Net, sys.Disables,
			livefabric.Config{VirtualChannels: sys.Tables.NumVC()})
		if err := f.AddBatch(sys.Tables, specs); err != nil {
			return nil, err
		}
		res := f.Run(context.Background())
		return json.Marshal(liveRow{
			Run: point, Packets: len(specs),
			Delivered: res.Delivered, Dropped: res.Dropped,
			Deadlocked: res.Deadlocked,
		})
	}
	return nil, fmt.Errorf("serve: unknown job kind %q", j.Kind)
}

// Job lifecycle states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
	stateAborted = "aborted" // shutdown mid-campaign; checkpoint kept
)

func terminal(state string) bool {
	return state == stateDone || state == stateFailed || state == stateAborted
}

// job is one admitted campaign and its in-memory row state. rows/have
// fill in completion order; frontier is the length of the fully
// populated prefix — the exact set of rows the streaming handler may
// emit while preserving the merge-in-order contract.
type job struct {
	key    string
	spec   JobSpec
	points int

	mu       sync.Mutex
	state    string
	errMsg   string
	rows     []json.RawMessage
	have     []bool
	frontier int
	done     int // completed points, any order
	resumed  int // points restored from a checkpoint at startup
	subs     []chan struct{}
}

func newJob(key string, spec JobSpec) *job {
	n := spec.points()
	return &job{
		key: key, spec: spec, points: n, state: stateQueued,
		rows: make([]json.RawMessage, n), have: make([]bool, n),
	}
}

// install records one completed point, advances the streamable
// frontier, and wakes waiters.
func (j *job) install(point int, row json.RawMessage) {
	j.mu.Lock()
	if !j.have[point] {
		j.have[point] = true
		j.rows[point] = row
		j.done++
		for j.frontier < j.points && j.have[j.frontier] {
			j.frontier++
		}
	}
	j.mu.Unlock()
	j.notify()
}

// restored is the runner skip hook: a point already present (loaded
// from a checkpoint) is installed without running.
func (j *job) restored(point int) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.have[point] {
		return j.rows[point], true
	}
	return nil, false
}

func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.mu.Unlock()
	j.notify()
}

// snapshotFrom returns the streamable rows past sent and the state that
// was current with them — one atomic read, so a terminal state implies
// the returned rows complete the stream.
func (j *job) snapshotFrom(sent int) ([]json.RawMessage, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rows := append([]json.RawMessage(nil), j.rows[sent:j.frontier]...)
	return rows, j.state
}

// subscribe registers a wakeup channel. Capacity 1: a notify landing
// while the subscriber is mid-drain parks one signal, so no update is
// ever missed; further notifies coalesce into it.
func (j *job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	for i, s := range j.subs {
		if s == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
	j.mu.Unlock()
}

// notify wakes every subscriber without blocking: the send is
// select-default, and a full capacity-1 channel already carries a
// pending wakeup.
func (j *job) notify() {
	j.mu.Lock()
	subs := append([]chan struct{}(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// JobStatus is the wire form of GET /v1/jobs/{key}.
type JobStatus struct {
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Points  int    `json:"points"`
	Done    int    `json:"done"`
	Resumed int    `json:"resumed,omitempty"`
	Error   string `json:"error,omitempty"`
	Cached  bool   `json:"cached,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		Key: j.key, Kind: j.spec.Kind, State: j.state,
		Points: j.points, Done: j.done, Resumed: j.resumed, Error: j.errMsg,
	}
}

// artifact assembles the final NDJSON: rows in point order, one per
// line. Only called on a completed job, where rows is fully populated.
func (j *job) artifact() []byte {
	var buf bytes.Buffer
	for _, r := range j.rows {
		buf.Write(r)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
