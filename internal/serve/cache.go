package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed artifact store: completed campaign
// artifacts keyed by their job key (which folds in the engine revision,
// see jobKey), held in memory and — when a directory is configured —
// mirrored to disk so a restarted server still serves old results
// without a single simulator cycle. Hit/miss counters feed /statusz;
// "repeat query is fully cache-served" is asserted by watching the
// computed-points counter stay flat while hits climb.
type Cache struct {
	dir string

	mu  sync.Mutex
	mem map[string][]byte

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache opens (creating if needed) the artifact store rooted at dir;
// an empty dir means memory-only.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: artifact cache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: map[string][]byte{}}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".ndjson")
}

// Get returns the artifact for key, counting a hit or a miss. A disk
// hit is promoted into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	b, ok := c.mem[key]
	c.mu.Unlock()
	if !ok && c.dir != "" {
		if disk, err := os.ReadFile(c.path(key)); err == nil {
			c.mu.Lock()
			c.mem[key] = disk
			c.mu.Unlock()
			b, ok = disk, true
		}
	}
	if ok {
		c.hits.Add(1)
		return b, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores an artifact. The disk copy lands via temp-file + rename, so
// a crash mid-write can never leave a torn artifact under a valid key.
func (c *Cache) Put(key string, b []byte) error {
	c.mu.Lock()
	c.mem[key] = b
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("serve: artifact cache: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: artifact cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: artifact cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: artifact cache: %w", err)
	}
	return nil
}

// Stats returns the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
