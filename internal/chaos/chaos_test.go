package chaos_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// buildFract2 is the level-2 fat fractahedron (64 nodes) the acceptance
// scenario runs on.
func buildFract2() (*topology.Network, *routing.Tables) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	return f.Network, routing.Fractahedron(f)
}

func engineConfig() chaos.Config {
	return chaos.Config{
		Build:       buildFract2,
		Sim:         sim.Config{FIFODepth: 4, TimeoutCycles: 200, MaxRetries: 1},
		Reconfigure: true,
	}
}

func TestGeneratePlanDeterministic(t *testing.T) {
	net, _ := buildFract2()
	spec := chaos.PlanSpec{LinkKills: 2, LinkFlaps: 1, RouterKills: 1, Window: 50, RepairAfter: 100}
	a, err := chaos.GeneratePlan(runner.RNG(3, 0), net, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.GeneratePlan(runner.RNG(3, 0), net, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal seeds generated different plans:\n%+v\n%+v", a, b)
	}
	if len(a.Faults) != 4 {
		t.Fatalf("faults = %d, want 4", len(a.Faults))
	}
	kinds := map[chaos.FaultKind]int{}
	for _, f := range a.Faults {
		kinds[f.Kind]++
		if f.Cycle < 1 || f.Cycle > spec.Window {
			t.Errorf("fault cycle %d outside [1, %d]", f.Cycle, spec.Window)
		}
		if f.Kind == chaos.LinkFlap && f.Repair != f.Cycle+spec.RepairAfter {
			t.Errorf("flap repair %d, want cycle+%d", f.Repair, spec.RepairAfter)
		}
	}
	if kinds[chaos.LinkKill] != 2 || kinds[chaos.LinkFlap] != 1 || kinds[chaos.RouterKill] != 1 {
		t.Fatalf("kind mix = %v", kinds)
	}
	if first := a.FirstCycle(); first < 1 || first > spec.Window {
		t.Fatalf("FirstCycle = %d", first)
	}
}

func TestGeneratePlanValidation(t *testing.T) {
	net, _ := buildFract2()
	cases := []chaos.PlanSpec{
		{LinkKills: 1},                     // no window
		{LinkFlaps: 1, Window: 10},         // flap without RepairAfter
		{LinkKills: 1 << 20, Window: 10},   // more link faults than links
		{RouterKills: 1 << 20, Window: 10}, // more router kills than routers
	}
	for i, spec := range cases {
		if _, err := chaos.GeneratePlan(runner.RNG(1, 0), net, spec); err == nil {
			t.Errorf("case %d: spec %+v accepted", i, spec)
		}
	}
}

// TestRecoveryLevel2 is the acceptance scenario: a seeded plan with three
// faults — a permanent link kill, a transient flap, and a router kill — on
// a level-2 fractahedron. Every transfer must end delivered or accounted
// lost with its retry budget exhausted, and at least one hot
// reconfiguration must have been re-certified and swapped in.
func TestRecoveryLevel2(t *testing.T) {
	net, _ := buildFract2()
	rng := runner.RNG(11, 0)
	plan, err := chaos.GeneratePlan(rng, net, chaos.PlanSpec{
		LinkKills: 1, LinkFlaps: 1, RouterKills: 1, Window: 40, RepairAfter: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.UniformRandom(rng, net.NumNodes(), 300, 4, 80)
	res, err := chaos.Run(engineConfig(), plan, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != 300 {
		t.Fatalf("transfers = %d", res.Transfers)
	}
	if got := res.DeliveredX + res.DeliveredY + res.Lost + res.Unresolved; got != res.Transfers {
		t.Fatalf("accounting: X %d + Y %d + lost %d + unresolved %d != %d",
			res.DeliveredX, res.DeliveredY, res.Lost, res.Unresolved, res.Transfers)
	}
	if res.Unresolved != 0 {
		t.Fatalf("%d transfers unresolved (X deadlocked=%v, Y deadlocked=%v)",
			res.Unresolved, res.XDeadlocked, res.YDeadlocked)
	}
	if res.XDeadlocked || res.YDeadlocked {
		t.Fatalf("deadlock: X=%v Y=%v", res.XDeadlocked, res.YDeadlocked)
	}
	if res.Drops == 0 || res.Reissues == 0 {
		t.Fatalf("faults had no effect: drops=%d reissues=%d", res.Drops, res.Reissues)
	}
	if res.DeliveredY == 0 {
		t.Fatalf("no transfer failed over to Y (reissues=%d lost=%d)", res.Reissues, res.Lost)
	}
	if res.Reconfigurations == 0 {
		t.Fatalf("no hot reconfiguration happened (recert failures=%d)", res.RecertFailures)
	}
	if !res.FinalCertified {
		t.Fatal("final swapped configuration is not certified")
	}
	if res.RecoveryCycles <= 0 {
		t.Fatalf("RecoveryCycles = %d, want positive (recovered deliveries exist)", res.RecoveryCycles)
	}

	// Byte-for-byte repeatability of the whole result.
	res2, err := chaos.Run(engineConfig(), plan, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("rerun diverged:\n%+v\n%+v", res, res2)
	}
}

// TestNoFaultsNoOverhead pins the quiet path: an empty plan delivers
// everything on X with zero drops, re-issues, or reconfigurations.
func TestNoFaultsNoOverhead(t *testing.T) {
	net, _ := buildFract2()
	specs := workload.UniformRandom(runner.RNG(4, 0), net.NumNodes(), 200, 4, 60)
	res, err := chaos.Run(engineConfig(), chaos.Plan{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredX != 200 || res.DeliveredY != 0 || res.Drops != 0 ||
		res.Reissues != 0 || res.Lost != 0 || res.Unresolved != 0 ||
		res.Reconfigurations != 0 {
		t.Fatalf("quiet run disturbed: %+v", res)
	}
	if res.FirstFaultCycle != 0 || res.RecoveryCycles != 0 || res.DipDepthPct != 0 {
		t.Fatalf("fault metrics nonzero on quiet run: %+v", res)
	}
}

// TestCorruptionDrops exercises the probabilistic flit-corruption path:
// with a high rate, packets die mid-flight and the retry machinery still
// accounts for every transfer.
func TestCorruptionDrops(t *testing.T) {
	net, _ := buildFract2()
	specs := workload.UniformRandom(runner.RNG(9, 0), net.NumNodes(), 150, 4, 60)
	plan := chaos.Plan{CorruptionRate: 0.02, CorruptionSeed: 0xfeed}
	res, err := chaos.Run(engineConfig(), plan, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Fatal("2% corruption produced no drops")
	}
	if got := res.DeliveredX + res.DeliveredY + res.Lost + res.Unresolved; got != res.Transfers {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.Unresolved != 0 {
		t.Fatalf("%d unresolved", res.Unresolved)
	}
}

// TestCampaignWorkerDeterminism pins the campaign JSON byte-for-byte
// across worker counts — the acceptance criterion for reproducibility.
func TestCampaignWorkerDeterminism(t *testing.T) {
	spec := chaos.CampaignSpec{
		Trials:  3,
		Packets: 150,
		Flits:   3,
		Window:  60,
		Seed:    5,
		Plan:    chaos.PlanSpec{LinkKills: 1, LinkFlaps: 1, RouterKills: 1, Window: 40, RepairAfter: 120},
		Engine:  engineConfig(),
	}
	one, err := chaos.Campaign(spec, runner.NewConfig(runner.Workers(1)))
	if err != nil {
		t.Fatal(err)
	}
	four, err := chaos.Campaign(spec, runner.NewConfig(runner.Workers(4)))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := one.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j4, err := four.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j4) {
		t.Fatalf("campaign JSON differs between 1 and 4 workers:\n%s\n---\n%s", j1, j4)
	}
	if one.Transfers != 3*150 {
		t.Fatalf("campaign transfers = %d", one.Transfers)
	}
	if one.Delivered+one.Lost+one.Unresolved != one.Transfers {
		t.Fatalf("campaign accounting broken: %+v", one)
	}
}

// TestCampaignShardDeterminism extends the reproducibility criterion to the
// intra-run sharded engine: the campaign JSON must be byte-identical for
// ANY (workers, shards) combination — trial-level parallelism and
// cycle-level parallelism compose without either leaking into results. The
// byte-identity of the sharded planner itself is proven exhaustively in
// internal/sim; this pins the composition through the chaos engine's
// dual-fabric retry and reconfiguration machinery.
func TestCampaignShardDeterminism(t *testing.T) {
	spec := chaos.CampaignSpec{
		Trials:  3,
		Packets: 150,
		Flits:   3,
		Window:  60,
		Seed:    5,
		Plan:    chaos.PlanSpec{LinkKills: 1, LinkFlaps: 1, RouterKills: 1, Window: 40, RepairAfter: 120},
		Engine:  engineConfig(),
	}
	base, err := chaos.Campaign(spec, runner.NewConfig(runner.Workers(1)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, combo := range []struct{ workers, shards int }{
		{1, 2}, {1, 4}, {4, 2}, {4, 4},
	} {
		s := spec
		s.Engine.Sim.Shards = combo.shards
		res, err := chaos.Campaign(s, runner.NewConfig(runner.Workers(combo.workers)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("campaign JSON differs at workers=%d shards=%d:\n%s\n---\n%s",
				combo.workers, combo.shards, got, want)
		}
	}
}

// TestBackoffConfigValidation pins the config-fold bugfix: a BackoffCap
// below BackoffBase used to be silently ignored from the very first
// re-issue (base<<0 already exceeded the cap); the fold now rejects it,
// along with negative retry/backoff knobs, while zero still means the
// documented defaults.
func TestBackoffConfigValidation(t *testing.T) {
	net, _ := buildFract2()
	rng := runner.RNG(11, 0)
	plan, err := chaos.GeneratePlan(rng, net, chaos.PlanSpec{LinkKills: 1, Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.UniformRandom(rng, net.NumNodes(), 20, 4, 20)

	run := func(mut func(*chaos.Config)) error {
		cfg := engineConfig()
		mut(&cfg)
		_, err := chaos.Run(cfg, plan, specs)
		return err
	}

	bad := []struct {
		name string
		mut  func(*chaos.Config)
		want string
	}{
		{"cap below base", func(c *chaos.Config) { c.BackoffBase = 100; c.BackoffCap = 10 }, "BackoffCap 10 is below BackoffBase 100"},
		{"cap below default base", func(c *chaos.Config) { c.BackoffCap = 4 }, "BackoffCap 4 is below BackoffBase 8"},
		{"negative base", func(c *chaos.Config) { c.BackoffBase = -1 }, "BackoffBase -1 is negative"},
		{"negative cap", func(c *chaos.Config) { c.BackoffCap = -5 }, "BackoffCap -5 is negative"},
		{"negative retries", func(c *chaos.Config) { c.MaxRetries = -2 }, "MaxRetries -2 is negative"},
	}
	for _, tc := range bad {
		err := run(tc.mut)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	good := []func(*chaos.Config){
		func(c *chaos.Config) {}, // all defaults
		func(c *chaos.Config) { c.BackoffBase = 16; c.BackoffCap = 16 }, // cap == base is a flat schedule
		func(c *chaos.Config) { c.BackoffBase = 2; c.BackoffCap = 64 },
	}
	for i, mut := range good {
		if err := run(mut); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}

	// Campaign surfaces the same validation before fanning out.
	spec := chaos.CampaignSpec{
		Trials: 1, Packets: 10, Flits: 2, Window: 20, Seed: 3,
		Plan:   chaos.PlanSpec{LinkKills: 1, Window: 20},
		Engine: engineConfig(),
	}
	spec.Engine.BackoffBase, spec.Engine.BackoffCap = 50, 5
	if _, err := chaos.Campaign(spec, runner.Config{Workers: 2}); err == nil ||
		!strings.Contains(err.Error(), "BackoffCap 5 is below BackoffBase 50") {
		t.Errorf("campaign: err = %v, want cap-below-base rejection", err)
	}
}
