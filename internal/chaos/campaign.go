package chaos

// Campaign: many independent recovery trials over the runner worker pool.
// Each trial derives its own RNG stream from (seed, trial) via
// runner.PointSeed, draws a fault plan and a workload from it sequentially,
// and runs the lock-step recovery engine. Under the runner determinism
// contract the merged trial slice — and therefore the campaign JSON — is
// byte-identical for any worker count.

import (
	"encoding/json"
	"fmt"

	"repro/internal/runner"
	"repro/internal/workload"
)

// CampaignSpec configures a chaos campaign.
type CampaignSpec struct {
	Trials  int
	Packets int   // transfers offered per trial
	Flits   int   // flits per transfer
	Window  int   // injection window in cycles (packets spread over [0, Window))
	Seed    int64 // campaign seed; trial t uses runner.PointSeed(Seed, t)
	Plan    PlanSpec
	Engine  Config
}

// TrialResult is one trial's plan and outcome.
type TrialResult struct {
	Trial  int
	Plan   Plan
	Result Result
}

// CampaignResult is the merged outcome of all trials plus aggregates.
type CampaignResult struct {
	Seed             int64
	Trials           []TrialResult
	Transfers        int
	Delivered        int // on either fabric
	FailedOver       int // delivered on the standby fabric
	Lost             int
	Unresolved       int
	Reissues         int
	Reconfigurations int
	RecertFailures   int
	Deadlocked       int // fabrics that froze in a deadlock, across trials
}

// Trial runs one campaign trial: derive the trial's RNG stream from
// (spec.Seed, trial), draw its fault plan and workload, and execute the
// lock-step recovery engine. A trial depends only on (spec, trial) — never
// on which worker ran it — which is what lets the campaign server compute,
// checkpoint and resume trials individually while staying byte-identical
// to an uninterrupted campaign.
func Trial(spec CampaignSpec, trial int) (TrialResult, error) {
	// One stream per trial, consumed in a fixed order: plan first, then
	// workload. The build only feeds plan generation the network shape.
	rng := runner.RNG(spec.Seed, trial)
	net, _ := spec.Engine.Build()
	plan, err := GeneratePlan(rng, net, spec.Plan)
	if err != nil {
		return TrialResult{}, err
	}
	specs := workload.UniformRandom(rng, net.NumNodes(), spec.Packets, spec.Flits, spec.Window)
	res, err := Run(spec.Engine, plan, specs)
	if err != nil {
		return TrialResult{}, err
	}
	return TrialResult{Trial: trial, Plan: plan, Result: res}, nil
}

// Campaign runs spec.Trials independent recovery trials over the worker
// pool and merges them in trial order.
func Campaign(spec CampaignSpec, rcfg runner.Config) (*CampaignResult, error) {
	if spec.Engine.Build == nil {
		return nil, fmt.Errorf("chaos: CampaignSpec.Engine.Build is required")
	}
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("chaos: campaign needs a positive trial count, got %d", spec.Trials)
	}
	// Surface a nonsensical engine configuration once, before fanning out,
	// instead of from every trial.
	if _, err := spec.Engine.withDefaults(); err != nil {
		return nil, err
	}
	trials, err := runner.Map(rcfg, spec.Trials, func(trial int) (TrialResult, error) {
		return Trial(spec, trial)
	})
	if err != nil {
		return nil, err
	}
	cr := &CampaignResult{Seed: spec.Seed, Trials: trials}
	for _, t := range trials {
		r := t.Result
		cr.Transfers += r.Transfers
		cr.Delivered += r.DeliveredX + r.DeliveredY
		cr.FailedOver += r.DeliveredY
		cr.Lost += r.Lost
		cr.Unresolved += r.Unresolved
		cr.Reissues += r.Reissues
		cr.Reconfigurations += r.Reconfigurations
		cr.RecertFailures += r.RecertFailures
		if r.XDeadlocked {
			cr.Deadlocked++
		}
		if r.YDeadlocked {
			cr.Deadlocked++
		}
	}
	return cr, nil
}

// JSON renders the campaign result deterministically (fixed field order,
// two-space indent): equal campaigns marshal to equal bytes.
func (r *CampaignResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// MarshalJSON names the fault kind instead of emitting a bare enum value.
func (k FaultKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}
