package chaos

// The dual-fabric recovery engine. Two identical fabrics co-simulate in
// lock step (the laggard steps one cycle at a time, so clocks never drift
// apart by more than one cycle); the engine watches each fabric's delivery
// and drop hooks, re-issues killed transfers on the alternate fabric with
// capped exponential backoff, and — when end-node drops reveal new damage —
// recomputes up*/down* tables and minimal path-disables for the degraded
// topology, re-certifies them acyclic+connected with
// fabricver.CertifyLive, and hot-swaps them into the live simulator
// between cycles.
//
// Lock-step causality: a cycle-t event on one fabric influences the other
// only through a re-issue whose InjectCycle is at least t+2 (backoff >= 1),
// and the clocks differ by at most one cycle, so processing hooks inline
// during the step is causally exact at cycle granularity.

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fabricver"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// dipWindow is the throughput-sampling granularity in cycles.
const dipWindow = 64

// Config parameterizes one recovery run.
type Config struct {
	// Build constructs one fabric; fabric.NewDual calls it twice. It must
	// be deterministic.
	Build func() (*topology.Network, *routing.Tables)
	// Sim configures both simulators. TimeoutCycles should normally be set:
	// it is the end-node detection mechanism that surfaces worms wedged
	// behind (not aimed at) a dead link.
	Sim sim.Config
	// MaxRetries bounds cross-fabric re-issues per transfer (default 3).
	MaxRetries int
	// BackoffBase is the first re-issue delay in cycles (default 8);
	// successive re-issues double it up to BackoffCap (default 256).
	BackoffBase int
	BackoffCap  int
	// Reconfigure enables online table recomputation + hot swap. Off, the
	// engine still retries over the alternate fabric, but damaged fabrics
	// keep their stale tables.
	Reconfigure bool
}

// withDefaults validates the retry/backoff knobs and fills the zero-value
// defaults. Negative values and a cap below the base are rejected rather
// than silently patched over: a BackoffCap below BackoffBase used to be
// ignored from the very first re-issue (base<<0 already exceeds the cap,
// so every delay clamps to the cap and the configured base never acts),
// which made the configuration lie about the schedule it produced.
func (c Config) withDefaults() (Config, error) {
	if c.MaxRetries < 0 {
		return c, fmt.Errorf("chaos: MaxRetries %d is negative (0 means the default of 3)", c.MaxRetries)
	}
	if c.BackoffBase < 0 {
		return c, fmt.Errorf("chaos: BackoffBase %d is negative (0 means the default of 8)", c.BackoffBase)
	}
	if c.BackoffCap < 0 {
		return c, fmt.Errorf("chaos: BackoffCap %d is negative (0 means the default of 256)", c.BackoffCap)
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 8
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 256
	}
	if c.BackoffCap < c.BackoffBase {
		return c, fmt.Errorf("chaos: BackoffCap %d is below BackoffBase %d; the first re-issue already exceeds the cap, so the base can never take effect",
			c.BackoffCap, c.BackoffBase)
	}
	return c, nil
}

// Result summarizes one chaos recovery run.
type Result struct {
	Transfers int // logical transfers offered
	Issues    int // packet issues, including re-issues
	Drops     int // packets killed (faults, disables, retry-exhausted worms)
	Reissues  int // cross-fabric (or same-fabric) re-issues

	DeliveredX int // transfers completed on the primary fabric
	DeliveredY int // transfers completed on the standby fabric
	Lost       int // transfers dropped with the retry budget exhausted
	Unresolved int // transfers still pending at the horizon or in a deadlock

	Reconfigurations int  // successful table+disable hot swaps
	RecertFailures   int  // recomputed configurations that failed certification
	FinalCertified   bool // the last swapped configuration was re-certified

	FirstFaultCycle int
	// RecoveryCycles is the span from the first injected fault to the last
	// delivery of a re-issued transfer — how long the fault's effects
	// lingered (0 when no re-issued transfer was delivered).
	RecoveryCycles int
	// BaselineFPC is the delivered-flits-per-cycle rate before the first
	// fault; DipDepthPct and DipWidthCycles measure the throughput dip
	// after it (worst shortfall as a percentage of baseline, and the length
	// of the contiguous below-baseline stretch).
	BaselineFPC    float64
	DipDepthPct    int
	DipWidthCycles int

	Cycles            int // unified cycle count (max over fabrics)
	FlitMoves         int // both fabrics
	InOrderViolations int // both fabrics
	XDeadlocked       bool
	YDeadlocked       bool
}

// transfer is one logical end-to-end data movement; packets are its
// (re-)issue attempts.
type transfer struct {
	src, dst, flits int
	attempts        int
	resolved        bool
	lost            bool
}

// fabState is one fabric's live state.
type fabState struct {
	id  int
	net *topology.Network
	tb  *routing.Tables
	s   *sim.Simulator

	lastRev    int  // FaultRevision consumed by the reconfiguration logic
	newDamage  bool // links died since the last (re)configuration
	repairSeen bool // links returned since the last (re)configuration
	dropSeen   bool // an end-node drop fired since the last (re)configuration
	knownDead  []topology.LinkID
}

type engine struct {
	cfg  Config
	fabs [2]*fabState
	res  Result

	transfers []transfer
	// pending maps (src, dst, flits) to the FIFO of in-flight transfer
	// indices per fabric. Same-shape packets on one fabric deliver in issue
	// order per (src, dst) pair up to sim-internal retries, and every issue
	// resolves exactly once, so FIFO matching keeps the books balanced.
	pending [2]map[[3]int][]int

	windows       []int // delivered flits per dipWindow-cycle bucket
	lastDelivery  int   // cycle of the last delivery (for dip scanning)
	lastRecovered int   // cycle of the last re-issued-transfer delivery
	err           error // first internal accounting error, if any
}

func key(spec sim.PacketSpec) [3]int { return [3]int{spec.Src, spec.Dst, spec.Flits} }

func (e *engine) push(fab int, spec sim.PacketSpec, ti int) {
	k := key(spec)
	e.pending[fab][k] = append(e.pending[fab][k], ti)
}

func (e *engine) pop(fab int, spec sim.PacketSpec) int {
	k := key(spec)
	q := e.pending[fab][k]
	if len(q) == 0 {
		if e.err == nil {
			e.err = fmt.Errorf("chaos: fabric %s resolved packet %d->%d (%d flits) with no pending transfer",
				fabric.FabricID(fab), spec.Src, spec.Dst, spec.Flits)
		}
		return -1
	}
	e.pending[fab][k] = q[1:]
	return q[0]
}

func (e *engine) window(now int) *int {
	w := now / dipWindow
	for len(e.windows) <= w {
		e.windows = append(e.windows, 0)
	}
	return &e.windows[w]
}

// delivered handles one fabric's delivery hook.
func (e *engine) delivered(fab int, spec sim.PacketSpec, now int) {
	ti := e.pop(fab, spec)
	if ti < 0 {
		return
	}
	t := &e.transfers[ti]
	t.resolved = true
	if fab == 0 {
		e.res.DeliveredX++
	} else {
		e.res.DeliveredY++
	}
	*e.window(now) += spec.Flits
	if now > e.lastDelivery {
		e.lastDelivery = now
	}
	if t.attempts > 1 && now > e.lastRecovered {
		e.lastRecovered = now
	}
}

// dropped handles one fabric's drop hook: account the kill, then re-issue
// on the alternate fabric (falling back to the same one when the alternate
// cannot route the pair) with capped exponential backoff, or declare the
// transfer lost when the retry budget is spent or no fabric has a path.
func (e *engine) dropped(fab int, spec sim.PacketSpec, now int) {
	e.res.Drops++
	e.fabs[fab].dropSeen = true
	ti := e.pop(fab, spec)
	if ti < 0 {
		return
	}
	t := &e.transfers[ti]
	if t.attempts > e.cfg.MaxRetries {
		t.resolved, t.lost = true, true
		e.res.Lost++
		return
	}
	backoff := e.cfg.BackoffBase << (t.attempts - 1)
	if backoff > e.cfg.BackoffCap || backoff <= 0 {
		backoff = e.cfg.BackoffCap
	}
	respec := sim.PacketSpec{
		Src: t.src, Dst: t.dst, Flits: t.flits,
		InjectCycle: now + 1 + backoff,
	}
	for _, target := range [2]int{1 - fab, fab} {
		fs := e.fabs[target]
		route, err := fs.tb.Route(t.src, t.dst)
		if err != nil {
			continue // severed on this fabric's current tables
		}
		if err := fs.s.AddPacket(respec, route); err != nil {
			continue
		}
		t.attempts++
		e.res.Issues++
		e.res.Reissues++
		e.push(target, respec, ti)
		return
	}
	t.resolved, t.lost = true, true
	e.res.Lost++
}

// observeFaults folds the simulator's fault revision into the detection
// flags: new dead links arm newDamage (reconfiguration then waits for an
// end-node drop — nodes observe timeouts, not link state), recovered links
// arm repairSeen (the repaired hardware announces itself, so reconfiguration
// may proceed immediately and re-admit the link).
func (fs *fabState) observeFaults() {
	rev := fs.s.FaultRevision()
	if rev == fs.lastRev {
		return
	}
	fs.lastRev = rev
	dead := fs.s.DeadLinks()
	// Both lists are ascending; a two-pointer sweep finds set differences.
	i, j := 0, 0
	for i < len(fs.knownDead) || j < len(dead) {
		switch {
		case j == len(dead) || (i < len(fs.knownDead) && fs.knownDead[i] < dead[j]):
			fs.repairSeen = true
			i++
		case i == len(fs.knownDead) || dead[j] < fs.knownDead[i]:
			fs.newDamage = true
			j++
		default:
			i++
			j++
		}
	}
	fs.knownDead = dead
}

// reconfigure recomputes up*/down* tables and minimal disables for the
// fabric's surviving topology, proves the configuration acyclic and exactly
// component-connected with fabricver.CertifyLive, and hot-swaps it into the
// live simulator. On any certification failure the stale configuration is
// kept (and counted): a running fabric must never swap in an unproven
// table.
func (e *engine) reconfigure(fs *fabState) {
	fs.newDamage, fs.repairSeen, fs.dropSeen = false, false, false

	deadSet := make(map[topology.LinkID]bool, len(fs.knownDead))
	for _, l := range fs.knownDead {
		deadSet[l] = true
	}
	linkDead := func(l topology.LinkID) bool { return deadSet[l] }

	root, expected := survivingPlan(fs.net, deadSet)
	if root < 0 {
		e.res.RecertFailures++
		return // no live router component: nothing to route
	}
	tb, err := routing.UpDownDegraded(fs.net, root, linkDead, nil)
	if err != nil {
		e.res.RecertFailures++
		return
	}
	lc, turns := fabricver.CertifyLive(tb)
	if !lc.Acyclic || lc.Reached != expected {
		e.res.RecertFailures++
		e.res.FinalCertified = false
		return
	}
	fs.tb = tb
	fs.s.SetDisables(router.FromTurns(fs.net, turns))
	e.res.Reconfigurations++
	e.res.FinalCertified = true
}

// survivingPlan picks the reconfiguration root — the lowest-ID router in
// the largest surviving router component — and computes how many ordered
// node pairs the degraded tables must route: sources are nodes whose router
// survives in that component (tables cannot see a source's own dead node
// link; the simulator kills those injections), destinations additionally
// need their own link alive.
func survivingPlan(net *topology.Network, deadSet map[topology.LinkID]bool) (topology.DeviceID, int) {
	nDev := net.NumDevices()
	comp := make([]int, nDev)
	for i := range comp {
		comp[i] = -1
	}
	nComps := 0
	var sizes []int
	var mins []topology.DeviceID
	for d := 0; d < nDev; d++ {
		dev := net.Device(topology.DeviceID(d))
		if dev.Kind != topology.Router || comp[d] >= 0 {
			continue
		}
		// A router with every link dead is itself dead; it founds no
		// component.
		alive := false
		for p := 0; p < dev.Ports; p++ {
			if l, ok := net.LinkAt(dev.ID, p); ok && !deadSet[l] {
				alive = true
				break
			}
		}
		if !alive {
			continue
		}
		c := nComps
		nComps++
		sizes = append(sizes, 0)
		mins = append(mins, dev.ID)
		queue := []topology.DeviceID{dev.ID}
		comp[d] = c
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			sizes[c]++
			du := net.Device(u)
			for p := 0; p < du.Ports; p++ {
				l, ok := net.LinkAt(u, p)
				if !ok || deadSet[l] {
					continue
				}
				v := net.OtherEnd(l, u).Device
				if net.Device(v).Kind != topology.Router || comp[v] >= 0 {
					continue
				}
				comp[v] = c
				queue = append(queue, v)
			}
		}
	}
	if nComps == 0 {
		return -1, 0
	}
	best := 0
	for c := 1; c < nComps; c++ {
		if sizes[c] > sizes[best] || (sizes[c] == sizes[best] && mins[c] < mins[best]) {
			best = c
		}
	}
	sources, dests := 0, 0
	for i := 0; i < net.NumNodes(); i++ {
		nd := net.NodeByIndex(i)
		l, ok := net.LinkAt(nd, 0)
		if !ok {
			continue
		}
		r := net.OtherEnd(l, nd).Device
		if comp[r] != best {
			continue
		}
		sources++
		if !deadSet[l] {
			dests++
		}
	}
	// Every destination is also a source, so subtracting the diagonal
	// leaves sources*dests - dests reachable ordered pairs.
	return mins[best], sources*dests - dests
}

// Run executes one chaos recovery trial: build the dual fabric, schedule
// the plan, issue every transfer on the primary fabric, then co-simulate
// both fabrics in lock step with online detection, reconfiguration, and
// retry failover until every transfer resolves (or the horizon/deadlock
// freezes the remainder).
func Run(cfg Config, plan Plan, specs []sim.PacketSpec) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if cfg.Build == nil {
		return Result{}, fmt.Errorf("chaos: Config.Build is required")
	}
	dual, err := fabric.NewDual(cfg.Build)
	if err != nil {
		return Result{}, err
	}
	e := &engine{cfg: cfg}
	e.res.FirstFaultCycle = plan.FirstCycle()
	e.res.FinalCertified = true // until a failed recertification says otherwise
	// Whatever path exits Run — error, accounting failure, or a panic from
	// a hook — the simulators' shard pools must not outlive it. Close is
	// idempotent, so the normal path's Finish calls are unaffected.
	defer func() {
		for _, fs := range e.fabs {
			if fs != nil {
				fs.s.Close()
			}
		}
	}()
	for i := 0; i < 2; i++ {
		dis, err := router.FromTables(dual.Tables[i])
		if err != nil {
			return e.res, fmt.Errorf("chaos: fabric %s disables: %w", fabric.FabricID(i), err)
		}
		fs := &fabState{id: i, net: dual.Net[i], tb: dual.Tables[i], s: sim.New(dual.Net[i], dis, cfg.Sim)}
		e.fabs[i] = fs
		e.pending[i] = make(map[[3]int][]int)
		fab := i
		fs.s.OnDelivered(func(spec sim.PacketSpec, now int) { e.delivered(fab, spec, now) })
		fs.s.OnDropped(func(spec sim.PacketSpec, now int) { e.dropped(fab, spec, now) })
	}
	for _, f := range plan.Faults {
		if f.Fabric < 0 || f.Fabric > 1 {
			return e.res, fmt.Errorf("chaos: fault fabric %d out of range", f.Fabric)
		}
		s := e.fabs[f.Fabric].s
		switch f.Kind {
		case LinkKill:
			err = s.ScheduleFault(sim.LinkFault{Cycle: f.Cycle, Link: f.Link})
		case LinkFlap:
			err = s.ScheduleFault(sim.LinkFault{Cycle: f.Cycle, Link: f.Link, RepairCycle: f.Repair})
		case RouterKill:
			err = s.ScheduleRouterFault(f.Router, f.Cycle)
		default:
			err = fmt.Errorf("chaos: unknown fault kind %d", int(f.Kind))
		}
		if err != nil {
			return e.res, err
		}
	}
	if plan.CorruptionRate > 0 {
		for i := 0; i < 2; i++ {
			// Distinct per-fabric streams from one plan seed.
			if err := e.fabs[i].s.EnableCorruption(plan.CorruptionRate,
				plan.CorruptionSeed+uint64(i)); err != nil {
				return e.res, err
			}
		}
	}

	// All transfers start on the primary fabric (§1: X primary, Y standby).
	e.transfers = make([]transfer, len(specs))
	for i, spec := range specs {
		e.transfers[i] = transfer{src: spec.Src, dst: spec.Dst, flits: spec.Flits, attempts: 1}
		route, err := e.fabs[0].tb.Route(spec.Src, spec.Dst)
		if err != nil {
			return e.res, err
		}
		if err := e.fabs[0].s.AddPacket(spec, route); err != nil {
			return e.res, err
		}
		e.push(0, spec, i)
	}
	e.res.Transfers = len(specs)
	e.res.Issues = len(specs)
	e.fabs[0].s.Start()
	e.fabs[1].s.Start()

	// Lock-step co-simulation: step the laggard one cycle (ties go to X),
	// fold its fault observations into the detection flags, reconfigure
	// when detection demands it, and drag the idle fabric's clock along so
	// a later re-issue lands in its future.
	for {
		pick := -1
		for i, fs := range e.fabs {
			if fs.s.Running() && (pick < 0 || fs.s.Now() < e.fabs[pick].s.Now()) {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		fs := e.fabs[pick]
		fs.s.StepTo(fs.s.Now() + 1)
		fs.observeFaults()
		if cfg.Reconfigure && ((fs.newDamage && fs.dropSeen) || fs.repairSeen) {
			e.reconfigure(fs)
		}
		if other := e.fabs[1-pick]; !other.s.Running() {
			other.s.StepTo(fs.s.Now())
		}
	}
	if e.err != nil {
		return e.res, e.err
	}

	resX, resY := e.fabs[0].s.Finish(), e.fabs[1].s.Finish()
	e.res.XDeadlocked = resX.Deadlocked
	e.res.YDeadlocked = resY.Deadlocked
	e.res.Cycles = resX.Cycles
	if resY.Cycles > e.res.Cycles {
		e.res.Cycles = resY.Cycles
	}
	e.res.FlitMoves = resX.FlitMoves() + resY.FlitMoves()
	e.res.InOrderViolations = resX.InOrderViolations + resY.InOrderViolations
	for _, t := range e.transfers {
		if !t.resolved {
			e.res.Unresolved++
		}
	}
	if e.lastRecovered > 0 && e.res.FirstFaultCycle > 0 {
		e.res.RecoveryCycles = e.lastRecovered - e.res.FirstFaultCycle
	}
	e.dipStats()
	return e.res, nil
}

// dipStats derives the throughput-dip metrics from the per-window delivery
// counts: the pre-fault windows set the baseline rate, and the contiguous
// below-baseline stretch starting at the fault window gives the dip's
// width and worst depth.
func (e *engine) dipStats() {
	if e.res.FirstFaultCycle <= 0 {
		return
	}
	faultWin := e.res.FirstFaultCycle / dipWindow
	if faultWin == 0 || faultWin > len(e.windows) {
		return
	}
	pre := 0
	for _, n := range e.windows[:faultWin] {
		pre += n
	}
	baseline := float64(pre) / float64(faultWin*dipWindow)
	e.res.BaselineFPC = baseline
	if baseline == 0 {
		return
	}
	lastWin := e.lastDelivery / dipWindow
	worst := 0.0
	width := 0
	for w := faultWin; w <= lastWin && w < len(e.windows); w++ {
		rate := float64(e.windows[w]) / dipWindow
		if rate >= baseline {
			break
		}
		width++
		if short := (baseline - rate) / baseline; short > worst {
			worst = short
		}
	}
	e.res.DipDepthPct = int(worst * 100)
	e.res.DipWidthCycles = width * dipWindow
}
