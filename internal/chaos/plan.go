// Package chaos injects runtime faults into live dual-fabric simulations
// and drives online recovery: end-node timeout detection, hot
// reconfiguration of routing tables and path-disables for the degraded
// topology (re-certified acyclic+connected before the swap), and
// retry-with-backoff failover onto the alternate fabric — the full §1/§2
// fault-tolerance story of the paper, simulated rather than analyzed.
//
// Everything is deterministic from the campaign seed: fault plans are drawn
// from an explicit *rand.Rand, flit corruption is hash-based inside the
// simulator, and the two fabrics co-simulate in lock step, so a campaign's
// JSON is byte-identical for any worker count.
package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// FaultKind distinguishes the injected failure modes.
type FaultKind int

const (
	// LinkKill downs one inter-router link permanently.
	LinkKill FaultKind = iota
	// LinkFlap downs one inter-router link transiently; it returns to
	// service at Repair.
	LinkFlap
	// RouterKill downs every link of one router atomically and permanently.
	RouterKill
)

// String names the fault kind for reports and JSON.
func (k FaultKind) String() string {
	switch k {
	case LinkKill:
		return "link-kill"
	case LinkFlap:
		return "link-flap"
	case RouterKill:
		return "router-kill"
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// Fault is one scheduled failure on one fabric.
type Fault struct {
	Fabric int // 0 = X, 1 = Y
	Kind   FaultKind
	Cycle  int
	Repair int               // repair cycle, LinkFlap only
	Link   topology.LinkID   // LinkKill / LinkFlap
	Router topology.DeviceID // RouterKill
}

// Plan is the full chaos schedule of one trial.
type Plan struct {
	Faults []Fault
	// CorruptionRate is the per-flit-crossing corruption probability
	// applied to both fabrics (0 disables it); CorruptionSeed keys the
	// hash deciding each crossing.
	CorruptionRate float64
	CorruptionSeed uint64
}

// PlanSpec shapes a generated plan.
type PlanSpec struct {
	LinkKills   int
	LinkFlaps   int
	RouterKills int
	// Window bounds fault cycles: each fault lands in [1, Window].
	Window int
	// RepairAfter is the flap duration in cycles.
	RepairAfter int
	// SpreadFabrics, when set, draws each fault's fabric at random;
	// otherwise all faults land on X and Y stays the pristine standby.
	SpreadFabrics bool
	// CorruptionRate, when positive, adds probabilistic flit corruption.
	CorruptionRate float64
}

// GeneratePlan draws a fault plan from rng. Link faults pick distinct
// inter-router links (end-node links are not fault candidates: §1 recovers
// a dead node link through the node's other port, i.e. the other fabric,
// which RouterKill already exercises); router kills pick distinct routers.
// The plan depends only on the rng stream and the network shape, so equal
// seeds generate equal plans.
func GeneratePlan(rng *rand.Rand, net *topology.Network, spec PlanSpec) (Plan, error) {
	if spec.Window <= 0 {
		return Plan{}, fmt.Errorf("chaos: plan window must be positive, got %d", spec.Window)
	}
	if spec.LinkFlaps > 0 && spec.RepairAfter <= 0 {
		return Plan{}, fmt.Errorf("chaos: link flaps need a positive RepairAfter, got %d", spec.RepairAfter)
	}
	var irLinks []topology.LinkID
	for _, l := range net.Links() {
		if net.Device(l.A.Device).Kind == topology.Router &&
			net.Device(l.B.Device).Kind == topology.Router {
			irLinks = append(irLinks, l.ID)
		}
	}
	var routers []topology.DeviceID
	for _, d := range net.Devices() {
		if d.Kind == topology.Router {
			routers = append(routers, d.ID)
		}
	}
	linkFaults := spec.LinkKills + spec.LinkFlaps
	if linkFaults > len(irLinks) {
		return Plan{}, fmt.Errorf("chaos: plan wants %d link faults but the network has only %d inter-router links",
			linkFaults, len(irLinks))
	}
	if spec.RouterKills > len(routers) {
		return Plan{}, fmt.Errorf("chaos: plan wants %d router kills but the network has only %d routers",
			spec.RouterKills, len(routers))
	}

	plan := Plan{CorruptionRate: spec.CorruptionRate}
	fabricOf := func() int {
		if spec.SpreadFabrics {
			return rng.Intn(2)
		}
		return 0
	}
	linkPerm := rng.Perm(len(irLinks))
	for i := 0; i < spec.LinkKills; i++ {
		plan.Faults = append(plan.Faults, Fault{
			Fabric: fabricOf(), Kind: LinkKill,
			Cycle: 1 + rng.Intn(spec.Window), Link: irLinks[linkPerm[i]],
		})
	}
	for i := 0; i < spec.LinkFlaps; i++ {
		cycle := 1 + rng.Intn(spec.Window)
		plan.Faults = append(plan.Faults, Fault{
			Fabric: fabricOf(), Kind: LinkFlap,
			Cycle: cycle, Repair: cycle + spec.RepairAfter,
			Link: irLinks[linkPerm[spec.LinkKills+i]],
		})
	}
	routerPerm := rng.Perm(len(routers))
	for i := 0; i < spec.RouterKills; i++ {
		plan.Faults = append(plan.Faults, Fault{
			Fabric: fabricOf(), Kind: RouterKill,
			Cycle: 1 + rng.Intn(spec.Window), Router: routers[routerPerm[i]],
		})
	}
	if spec.CorruptionRate > 0 {
		plan.CorruptionSeed = rng.Uint64()
	}
	return plan, nil
}

// FirstCycle returns the earliest fault cycle of the plan (0 when empty).
func (p Plan) FirstCycle() int {
	first := 0
	for _, f := range p.Faults {
		if first == 0 || f.Cycle < first {
			first = f.Cycle
		}
	}
	return first
}
