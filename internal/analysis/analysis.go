// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the repository's static checks need no external modules.
// It mirrors the upstream API surface (Analyzer, Pass, Diagnostic) closely
// enough that the analyzers in internal/analyzers could be ported to the
// real framework by changing one import path.
//
// The simlint suite built on this package is the static half of the
// repository's determinism contract: internal/runner makes experiment
// results bit-identical across worker counts *given* that experiment code
// draws randomness only from per-point seeded generators and never lets
// wall-clock time or map iteration order reach a result row. The analyzers
// make those preconditions machine-checked instead of reviewer-checked,
// in the same spirit as the paper's configuration-time Dally–Seitz
// verification: prove the property from the artifact, don't observe it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:ignore directives. By convention it is a short
	// lower-case word.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes a diagnostic. The driver fills this in.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic resolved against its analyzer and position,
// ready for printing or filtering; drivers produce these.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Run applies analyzers to one loaded package and returns the findings
// with suppression directives (see suppress.go) already applied, sorted
// by file, line and column, plus each analyzer's result value keyed by
// analyzer name (nil results omitted) — the raw material of the code
// certificate. Malformed suppression directives are findings too, under
// the name "ignore".
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, map[string]any, error) {
	sup, out := collectSuppressions(fset, files)
	results := map[string]any{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if sup.suppressed(a.Name, pos) {
				return
			}
			out = append(out, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		if res != nil {
			results[a.Name] = res
		}
	}
	SortFindings(out)
	return out, results, nil
}

// SortFindings orders findings by file, line, column, then analyzer name,
// so driver output is deterministic no matter the analyzer schedule.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Dedup drops findings that repeat an earlier finding's file, line,
// column and analyzer, keeping the first. A multichecker run loads a
// package for every pattern that matches it, so the same diagnostic can
// surface several times; position identity is the dedup key because the
// message is a pure function of the flagged code. The input must already
// be sorted (SortFindings) for "first" to be deterministic.
func Dedup(fs []Finding) []Finding {
	type key struct {
		file     string
		line     int
		col      int
		analyzer string
	}
	seen := map[key]bool{}
	out := fs[:0]
	for _, f := range fs {
		k := key{f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}
