package analysis

import "go/ast"

// WithStack walks every file in the pass and calls fn for each node with
// the stack of enclosing nodes (outermost first, ending at the node
// itself). Returning false prunes the subtree. It is the small slice of
// x/tools' astutil/inspector the analyzers need: most checks here are
// "does this node sit inside that construct" questions.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// EnclosingFunc returns the innermost function declaration or literal in
// the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
