// Package analysistest runs an analyzer over a testdata fixture package
// and checks its diagnostics against // want comments, mirroring the
// x/tools package of the same name on top of the stdlib-only driver.
//
// A fixture line expects diagnostics by carrying a trailing comment of Go
// string literals, each a regular expression that must match one
// diagnostic reported on that line:
//
//	rand.Intn(4) // want `global math/rand`
//
// Every expectation must be matched and every diagnostic must be
// expected; anything else fails the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestData returns the caller's testdata/src directory.
func TestData(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: no caller info")
	}
	return filepath.Join(filepath.Dir(file), "testdata", "src")
}

// Run loads testdata/src/<fixture> relative to the calling test file,
// applies the analyzer, and matches diagnostics against want comments.
// It returns the findings for any extra assertions.
func Run(t *testing.T, a *analysis.Analyzer, srcDir, fixture string) []analysis.Finding {
	t.Helper()
	dir := filepath.Join(srcDir, fixture)
	pkg, err := load.Fixture(dir)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	findings, _, err := analysis.Run([]*analysis.Analyzer{a}, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.Position.Filename) || w.line != f.Position.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s",
				filepath.Base(f.Position.Filename), f.Position.Line, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return findings
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *load.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range stringLiterals(t, pos, text) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, lit, err)
					}
					wants = append(wants, want{filepath.Base(pos.Filename), pos.Line, re})
				}
			}
		}
	}
	return wants
}

// stringLiterals parses a sequence of Go string literals ("..." or `...`)
// separated by spaces.
func stringLiterals(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: want comment remainder %q is not a string literal", pos, s)
		}
		lit, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("%s: %v", pos, fmt.Errorf("unquoting %q: %w", prefix, err))
		}
		out = append(out, lit)
		s = s[len(prefix):]
	}
}
