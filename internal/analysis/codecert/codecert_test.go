package codecert

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden certificate")

// TestCertificateGolden regenerates the code deadlock certificate for the
// real repository and byte-compares it against the committed golden. CI
// runs the same comparison, so a concurrency change that alters the
// certificate must re-commit the golden deliberately (-update).
func TestCertificateGolden(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Join(filepath.Dir(file), "..", "..", "..")

	cert, err := Build(root)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !cert.OK {
		t.Errorf("certificate is not OK: findings=%v lock_order.acyclic=%v",
			cert.Findings, cert.LockOrder.Acyclic)
	}
	got, err := Marshal(cert)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	golden := filepath.Join(filepath.Dir(file), "testdata", "codecert.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("certificate differs from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestMarshalStable asserts byte-for-byte determinism across builds in
// the same process.
func TestMarshalStable(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Join(filepath.Dir(file), "..", "..", "..")
	var prev []byte
	for i := 0; i < 2; i++ {
		cert, err := Build(root)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		b, err := Marshal(cert)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		if prev != nil && string(prev) != string(b) {
			t.Fatal("two builds produced different certificate bytes")
		}
		prev = b
	}
}
