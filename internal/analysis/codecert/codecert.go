// Package codecert assembles the concurrency-deadlock certificate of the
// repository's own code: the lockorder, chanwait, blockcheck, goleak and
// chanclose analyzers run over ./internal/..., their per-package results
// merged into one global lock-order graph, one channel/WaitGroup
// wait-for graph, one blocking-effect table, one goroutine-spawn audit
// and one channel-send audit, rendered as byte-stable JSON in the exact
// style of the fabricver topology certificates. The fabric certs prove
// "this network cannot deadlock" from its channel-dependency graph; this
// cert proves "the prover cannot deadlock" from its lock graph, wait-for
// graph and join obligations — the paper's acyclicity argument turned on
// the artifact that implements it. The v2 additions mirror the fabric
// side one-for-one: wait-for resources are links, buffer capacities are
// VC counts, the acyclicity proof is the same ShortestCycle the fabric
// verifier runs, and the hot-path blocking table is the wormhole
// discipline (no stall inside the routing decision).
//
// Byte stability follows the fabricver rules: field order is struct
// order, no maps are marshalled, every slice is sorted, and source
// positions are module-relative slash paths, so equal trees produce
// equal certificates on every machine and the golden fixture can be
// byte-compared in CI.
package codecert

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analyzers"
	"repro/internal/analyzers/blockcheck"
	"repro/internal/analyzers/chanclose"
	"repro/internal/analyzers/chanwait"
	"repro/internal/analyzers/goleak"
	"repro/internal/analyzers/lockorder"
)

// Schema identifies the certificate format; bump on incompatible change.
// v2 adds the channel/WaitGroup wait-for graph and the blocking-effect
// table with hot-path verdicts.
const Schema = "repro/codecert/v2"

// Certificate is the full code-concurrency certificate.
type Certificate struct {
	Schema     string       `json:"schema"`
	Scope      []string     `json:"scope"`
	Analyzers  []string     `json:"analyzers"`
	Packages   []string     `json:"packages"`
	LockOrder  LockOrder    `json:"lock_order"`
	WaitFor    WaitFor      `json:"wait_for"`
	Blocking   Blocking     `json:"blocking"`
	Goroutines []SpawnAudit `json:"goroutines"`
	Channels   []ChanAudit  `json:"channel_sends"`
	Findings   []string     `json:"findings"`
	OK         bool         `json:"ok"`
}

// WaitFor is the merged channel/WaitGroup wait-for graph and its
// acyclicity verdict — the code-level CDG over communication, companion
// to the lock-order graph. Resource capacities are the "VC counts" of
// the analogy.
type WaitFor struct {
	Resources []WaitResource `json:"resources"`
	Contexts  []WaitContext  `json:"contexts"`
	Edges     []WaitEdge     `json:"edges"`
	Acyclic   bool           `json:"acyclic"`
	// Cycle is the minimal counterexample (first vertex repeated last)
	// when Acyclic is false.
	Cycle []string `json:"cycle,omitempty"`
}

// WaitResource is one wait-for vertex: a channel (with its make-site
// buffer capacity; -1 unknown) or a WaitGroup (cap -1).
type WaitResource struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Cap  int    `json:"cap"`
}

// WaitContext is one function's synchronization ops in source order —
// the goroutine/channel communication topology record.
type WaitContext struct {
	Func string   `json:"func"`
	Ops  []WaitOp `json:"ops"`
}

// WaitOp is one operation of a context.
type WaitOp struct {
	Op   string `json:"op"`
	On   string `json:"on"`
	Site string `json:"site"`
}

// WaitEdge is one wait-for dependency with the site of its later op.
type WaitEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Op   string `json:"op"`
	Site string `json:"site"`
}

// Blocking is the interprocedural blocking-effect table: every function
// whose whole effect is not non-blocking, the hot-path verdicts, and the
// sanctioned barrier functions.
type Blocking struct {
	Functions []BlockEffect  `json:"functions"`
	HotPaths  []HotPathAudit `json:"hot_paths"`
	Barriers  []string       `json:"barriers"`
}

// BlockEffect is one function's effect with its witness chain.
type BlockEffect struct {
	Func   string `json:"func"`
	Effect string `json:"effect"`
	Via    string `json:"via"`
}

// HotPathAudit is one //simlint:hotpath function's verdict: its effect
// outside barrier-marked callees and whether that is non-blocking.
type HotPathAudit struct {
	Func   string `json:"func"`
	Site   string `json:"site"`
	Effect string `json:"effect"`
	OK     bool   `json:"ok"`
	Via    string `json:"via,omitempty"`
}

// LockOrder is the merged mutex-acquisition-order graph and its
// acyclicity verdict — the code-level CDG.
type LockOrder struct {
	Locks   []string   `json:"locks"`
	Edges   []LockEdge `json:"edges"`
	Acyclic bool       `json:"acyclic"`
	// Cycle is the minimal counterexample (first vertex repeated last)
	// when Acyclic is false.
	Cycle []string `json:"cycle,omitempty"`
}

// LockEdge is one acquisition-order edge with its source site.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Site string `json:"site"`
}

// SpawnAudit is one go statement's join-obligation audit.
type SpawnAudit struct {
	Site       string `json:"site"`
	Func       string `json:"func"`
	Obligation string `json:"obligation"`
	On         string `json:"on,omitempty"`
	Join       string `json:"join,omitempty"`
	OK         bool   `json:"ok"`
}

// ChanAudit is one spawned-goroutine channel send's consumer audit.
type ChanAudit struct {
	Site      string `json:"site"`
	Func      string `json:"func"`
	Chan      string `json:"chan"`
	Guarantee string `json:"guarantee,omitempty"`
	OK        bool   `json:"ok"`
}

// Build runs the concurrency analyzers over ./internal/... of the module
// containing wd and assembles the certificate. The returned certificate
// is complete even when not OK — the failure modes are part of the
// artifact.
func Build(wd string) (*Certificate, error) {
	root, err := load.ModuleRoot(wd)
	if err != nil {
		return nil, err
	}
	pkgs, err := load.Packages(root, "./internal/...")
	if err != nil {
		return nil, err
	}

	suite := analyzers.Concurrency()
	cert := &Certificate{
		Schema:     Schema,
		Scope:      []string{"./internal/..."},
		Packages:   []string{},
		Goroutines: []SpawnAudit{},
		Channels:   []ChanAudit{},
		Findings:   []string{},
	}
	for _, a := range suite {
		cert.Analyzers = append(cert.Analyzers, a.Name)
	}

	lockSet := map[string]bool{}
	var edges []lockorder.Edge
	var waitRes []chanwait.Resource
	var waitCtxs []chanwait.Context
	var waitEdges []chanwait.Edge
	blocking := Blocking{Functions: []BlockEffect{}, HotPaths: []HotPathAudit{}, Barriers: []string{}}
	for _, pkg := range pkgs {
		cert.Packages = append(cert.Packages, pkg.ImportPath)
		findings, results, err := analysis.Run(suite, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
		if err != nil {
			return nil, fmt.Errorf("codecert: %s: %w", pkg.ImportPath, err)
		}
		for _, f := range findings {
			cert.Findings = append(cert.Findings, fmt.Sprintf("%s: %s (%s)",
				relSite(root, f.Position), f.Message, f.Analyzer))
		}
		if r, ok := results["lockorder"].(lockorder.Result); ok {
			for _, l := range r.Locks {
				lockSet[l] = true
			}
			edges = append(edges, r.Edges...)
		}
		if r, ok := results["chanwait"].(chanwait.Result); ok {
			waitRes = append(waitRes, r.Resources...)
			waitCtxs = append(waitCtxs, r.Contexts...)
			waitEdges = append(waitEdges, r.Edges...)
		}
		if r, ok := results["blockcheck"].(blockcheck.Result); ok {
			for _, fe := range r.Funcs {
				blocking.Functions = append(blocking.Functions, BlockEffect{
					Func: fe.Func, Effect: fe.Effect, Via: fe.Via,
				})
			}
			for _, hp := range r.HotPaths {
				blocking.HotPaths = append(blocking.HotPaths, HotPathAudit{
					Func: hp.Func, Site: relSite(root, hp.Pos),
					Effect: hp.Effect, OK: hp.OK, Via: hp.Via,
				})
			}
			blocking.Barriers = append(blocking.Barriers, r.Barriers...)
		}
		if r, ok := results["goleak"].(goleak.Result); ok {
			for _, s := range r.Spawns {
				cert.Goroutines = append(cert.Goroutines, SpawnAudit{
					Site: relSite(root, s.Pos), Func: s.Func,
					Obligation: s.Obligation, On: s.On, Join: s.Join, OK: s.OK,
				})
			}
		}
		if r, ok := results["chanclose"].(chanclose.Result); ok {
			for _, s := range r.Sends {
				cert.Channels = append(cert.Channels, ChanAudit{
					Site: relSite(root, s.Pos), Func: s.Func,
					Chan: s.Chan, Guarantee: s.Guarantee, OK: s.OK,
				})
			}
		}
	}

	cert.LockOrder = mergeLockOrder(root, lockSet, edges)
	cert.WaitFor = mergeWaitFor(root, waitRes, waitCtxs, waitEdges)
	sort.Slice(blocking.Functions, func(i, j int) bool { return blocking.Functions[i].Func < blocking.Functions[j].Func })
	sort.Slice(blocking.HotPaths, func(i, j int) bool { return blocking.HotPaths[i].Func < blocking.HotPaths[j].Func })
	sort.Strings(blocking.Barriers)
	cert.Blocking = blocking
	sort.Slice(cert.Goroutines, func(i, j int) bool { return cert.Goroutines[i].Site < cert.Goroutines[j].Site })
	sort.Slice(cert.Channels, func(i, j int) bool { return cert.Channels[i].Site < cert.Channels[j].Site })
	sort.Strings(cert.Findings)

	cert.OK = cert.LockOrder.Acyclic && cert.WaitFor.Acyclic && len(cert.Findings) == 0
	for _, s := range cert.Goroutines {
		cert.OK = cert.OK && s.OK
	}
	for _, s := range cert.Channels {
		cert.OK = cert.OK && s.OK
	}
	for _, hp := range cert.Blocking.HotPaths {
		cert.OK = cert.OK && hp.OK
	}
	return cert, nil
}

// mergeWaitFor folds the per-package wait-for graphs into one and
// re-proves acyclicity globally, exactly as mergeLockOrder does for the
// lock graph. Resource names are package-qualified, so cross-package
// merging is pure concatenation.
func mergeWaitFor(root string, resources []chanwait.Resource, ctxs []chanwait.Context, edges []chanwait.Edge) WaitFor {
	wf := WaitFor{Resources: []WaitResource{}, Contexts: []WaitContext{}, Edges: []WaitEdge{}}
	sort.Slice(resources, func(i, j int) bool { return resources[i].Name < resources[j].Name })
	names := make([]string, 0, len(resources))
	for _, r := range resources {
		wf.Resources = append(wf.Resources, WaitResource{Name: r.Name, Kind: r.Kind, Cap: r.Cap})
		names = append(names, r.Name)
	}
	sort.Slice(ctxs, func(i, j int) bool { return ctxs[i].Func < ctxs[j].Func })
	for _, c := range ctxs {
		wc := WaitContext{Func: c.Func, Ops: []WaitOp{}}
		for _, op := range c.Ops {
			wc.Ops = append(wc.Ops, WaitOp{Op: op.Op, On: op.On, Site: relSite(root, op.Pos)})
		}
		wf.Contexts = append(wf.Contexts, wc)
	}
	sort.Slice(edges, func(i, j int) bool {
		x, y := edges[i], edges[j]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.To != y.To {
			return x.To < y.To
		}
		return relSite(root, x.Pos) < relSite(root, y.Pos)
	})
	for _, e := range edges {
		wf.Edges = append(wf.Edges, WaitEdge{From: e.From, To: e.To, Op: e.Op, Site: relSite(root, e.Pos)})
	}
	dg, _ := chanwait.BuildGraph(names, edges)
	cycle, cyclic := dg.ShortestCycle()
	wf.Acyclic = !cyclic
	if cyclic {
		for _, v := range cycle {
			wf.Cycle = append(wf.Cycle, names[v])
		}
		wf.Cycle = append(wf.Cycle, names[cycle[0]])
	}
	return wf
}

// mergeLockOrder folds the per-package graphs into one and re-proves
// acyclicity globally with the same internal/graph.ShortestCycle the
// fabric verifier uses for channel-dependency graphs.
func mergeLockOrder(root string, lockSet map[string]bool, edges []lockorder.Edge) LockOrder {
	lo := LockOrder{Locks: []string{}, Edges: []LockEdge{}}
	for l := range lockSet {
		lo.Locks = append(lo.Locks, l)
	}
	sort.Strings(lo.Locks)
	sort.Slice(edges, func(i, j int) bool {
		x, y := edges[i], edges[j]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.To != y.To {
			return x.To < y.To
		}
		return relSite(root, x.Pos) < relSite(root, y.Pos)
	})
	for _, e := range edges {
		lo.Edges = append(lo.Edges, LockEdge{From: e.From, To: e.To, Site: relSite(root, e.Pos)})
	}
	dg, _ := lockorder.BuildGraph(lo.Locks, edges)
	cycle, cyclic := dg.ShortestCycle()
	lo.Acyclic = !cyclic
	if cyclic {
		for _, v := range cycle {
			lo.Cycle = append(lo.Cycle, lo.Locks[v])
		}
		lo.Cycle = append(lo.Cycle, lo.Locks[cycle[0]])
	}
	return lo
}

// relSite renders a position as a module-relative slash path with line
// number — machine-independent, so the certificate is byte-identical on
// every checkout.
func relSite(root string, pos token.Position) string {
	name := pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil {
		name = rel
	}
	return fmt.Sprintf("%s:%d", filepath.ToSlash(name), pos.Line)
}

// Marshal renders the certificate as indented JSON with a trailing
// newline, byte-stable for golden comparison (fabricver rules).
func Marshal(c *Certificate) ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
