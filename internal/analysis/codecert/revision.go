package codecert

import (
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
)

// golden is the committed certificate fixture — the byte-compared,
// CI-enforced snapshot of the concurrency proof over the engine's own
// code. It is embedded so the running binary can name the exact engine
// it is: any change to the analyzed tree that alters the certificate
// forces a golden regeneration, which changes the revision.
//
//go:embed testdata/codecert.golden.json
var golden []byte

// Golden returns the embedded certificate fixture bytes.
func Golden() []byte { return golden }

// Revision is the engine revision: the hex SHA-256 of the committed
// certificate golden. The campaign server folds it into every artifact
// cache key, so cached results can never be served across an engine
// whose concurrency certificate — and therefore whose analyzed code —
// has changed.
func Revision() string {
	sum := sha256.Sum256(golden)
	return hex.EncodeToString(sum[:])
}
