// Package callgraph builds a conservative package-level call graph over
// the functions of one type-checked package: every FuncDecl and every
// FuncLit becomes a node, static calls (direct function calls, method
// calls with a statically known receiver type, immediately invoked
// literals) become edges, and a nested function literal is linked from
// its enclosing function — a literal may run whenever its encloser does,
// so effects computed transitively over the graph (locks a function may
// acquire, joins it may perform) stay sound without tracking where the
// literal value flows. Calls through interface values, function-typed
// variables and imported packages have no edge: the analyzers built on
// this graph treat unknown callees as effect-free, which keeps them
// quiet rather than noisy and is documented per analyzer.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Func is one function-like node of the graph.
type Func struct {
	// Obj is the declared object; nil for function literals.
	Obj *types.Func
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Name is a stable display name: "Map", "(*Stats).Record", or
	// "Map$1" for the first literal inside Map.
	Name string
	// Body may be nil for a declaration without implementation.
	Body *ast.BlockStmt
	// Callees are the statically resolved intra-package callees plus
	// every directly nested function literal, deduplicated, in first-use
	// order (which is source order, hence deterministic).
	Callees []*Func
}

func (f *Func) String() string { return f.Name }

// Pos returns the declaration position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Graph is the package call graph. Funcs is in source order.
type Graph struct {
	Funcs  []*Func
	byNode map[ast.Node]*Func
	byObj  map[*types.Func]*Func
}

// Build constructs the graph for the pass's package.
func Build(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{byNode: map[ast.Node]*Func{}, byObj: map[*types.Func]*Func{}}

	// Pass 1: one node per function-like AST node. Literal names count
	// occurrences inside their enclosing top-level declaration.
	for _, file := range files {
		litCount := map[*Func]int{}
		analysis.WithStack([]*ast.File{file}, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				f := &Func{Obj: declObj(info, n), Decl: n, Name: declName(n), Body: n.Body}
				g.Funcs = append(g.Funcs, f)
				g.byNode[n] = f
				if f.Obj != nil {
					g.byObj[f.Obj] = f
				}
			case *ast.FuncLit:
				encl := g.byNode[analysis.EnclosingFunc(stack[:len(stack)-1])]
				name := "func"
				if encl != nil {
					litCount[encl]++
					name = fmt.Sprintf("%s$%d", encl.Name, litCount[encl])
				}
				f := &Func{Lit: n, Name: name, Body: n.Body}
				g.Funcs = append(g.Funcs, f)
				g.byNode[n] = f
			}
			return true
		})
	}

	// Pass 2: edges. Each call or nested literal links from the function
	// that directly contains it.
	for _, file := range files {
		analysis.WithStack([]*ast.File{file}, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if encl := g.byNode[analysis.EnclosingFunc(stack[:len(stack)-1])]; encl != nil {
					encl.addCallee(g.byNode[n])
				}
			case *ast.CallExpr:
				encl := g.byNode[analysis.EnclosingFunc(stack)]
				if encl == nil {
					return true // package-level initializer expression
				}
				if callee := g.StaticCallee(info, n); callee != nil {
					encl.addCallee(callee)
				}
			}
			return true
		})
	}
	return g
}

func (f *Func) addCallee(callee *Func) {
	if callee == nil || callee == f {
		return
	}
	for _, c := range f.Callees {
		if c == callee {
			return
		}
	}
	f.Callees = append(f.Callees, callee)
}

// FuncFor returns the node for a *ast.FuncDecl or *ast.FuncLit, or nil.
func (g *Graph) FuncFor(n ast.Node) *Func { return g.byNode[n] }

// StaticCallee resolves a call expression to an intra-package function
// node when the callee is statically known: a named function or method of
// this package, or an immediately invoked literal. Returns nil otherwise.
func (g *Graph) StaticCallee(info *types.Info, call *ast.CallExpr) *Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return g.byObj[fn]
			}
		}
		// Qualified call pkg.F: Uses resolves the selector identifier.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.FuncLit:
		return g.byNode[fun]
	}
	return nil
}

// Transitive reports whether pred holds for f or any function reachable
// from f through the call graph (including nested literals).
func (g *Graph) Transitive(f *Func, pred func(*Func) bool) bool {
	seen := map[*Func]bool{}
	var walk func(*Func) bool
	walk = func(fn *Func) bool {
		if fn == nil || seen[fn] {
			return false
		}
		seen[fn] = true
		if pred(fn) {
			return true
		}
		for _, c := range fn.Callees {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(f)
}

func declObj(info *types.Info, d *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[d.Name].(*types.Func)
	return fn
}

func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return fmt.Sprintf("(%s).%s", types.ExprString(d.Recv.List[0].Type), d.Name.Name)
}
