package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis/callgraph"
)

const src = `package p

type T struct{ n int }

func (t *T) m() { t.n++ }

func a() {
	b()
	t := &T{}
	t.m()
}

func b() {
	c()
}

func c() {
	f := func() { b() }
	f()
}
`

func build(t *testing.T) *callgraph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return callgraph.Build(info, []*ast.File{file})
}

func names(fs []*callgraph.Func) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Name)
	}
	return out
}

func find(t *testing.T, g *callgraph.Graph, name string) *callgraph.Func {
	t.Helper()
	for _, f := range g.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %s not in graph (have %v)", name, names(g.Funcs))
	return nil
}

func TestBuildNodes(t *testing.T) {
	g := build(t)
	want := []string{"(*T).m", "a", "b", "c", "c$1"}
	for _, n := range want {
		find(t, g, n)
	}
	if len(g.Funcs) != len(want) {
		t.Errorf("graph has %d funcs %v, want %d", len(g.Funcs), names(g.Funcs), len(want))
	}
}

func TestEdges(t *testing.T) {
	g := build(t)
	cases := map[string][]string{
		"a":      {"b", "(*T).m"},
		"b":      {"c"},
		"c":      {"c$1"},
		"c$1":    {"b"},
		"(*T).m": nil,
	}
	for caller, want := range cases {
		got := names(find(t, g, caller).Callees)
		if len(got) != len(want) {
			t.Errorf("%s callees = %v, want %v", caller, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s callees = %v, want %v", caller, got, want)
				break
			}
		}
	}
}

func TestTransitive(t *testing.T) {
	g := build(t)
	hitsMethod := func(f *callgraph.Func) bool { return f.Name == "(*T).m" }
	if !g.Transitive(find(t, g, "a"), hitsMethod) {
		t.Error("a does not transitively reach (*T).m")
	}
	// b -> c -> c$1 -> b is a cycle that never reaches the method; the
	// walk must terminate and answer false.
	if g.Transitive(find(t, g, "b"), hitsMethod) {
		t.Error("b transitively reaches (*T).m, want unreachable")
	}
}

// edgeSrc exercises the resolution boundary: what StaticCallee resolves
// (direct calls, deferred calls, immediately invoked literals) and what
// it deliberately does not (method values, function-typed struct fields,
// function parameters). The unresolved cases fold as effect-free in the
// analyzers built on this graph — goleak's fixture documents the flip
// side, where an unresolvable SPAWN is a loud finding.
const edgeSrc = `package q

type T struct{ n int }

func (t *T) m() { t.n++ }

type holder struct{ fn func() }

func target() {}

func deferred() {
	defer target()
}

func methodValue(t *T) {
	mv := t.m
	mv()
}

func throughField(h *holder) {
	h.fn()
}

func param(fn func()) {
	fn()
}

func iife() {
	func() { target() }()
}
`

func buildSrc(t *testing.T, src string) *callgraph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "q.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("q", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return callgraph.Build(info, []*ast.File{file})
}

func TestEdgeResolutionBoundary(t *testing.T) {
	g := buildSrc(t, edgeSrc)
	cases := map[string][]string{
		// A deferred call resolves exactly like a direct one.
		"deferred": {"target"},
		// A method value is a func value by the time it is invoked: no
		// edge (and no edge from building the value either).
		"methodValue": nil,
		// A call through a function-typed struct field never resolves.
		"throughField": nil,
		// Nor does a call through a function parameter.
		"param": nil,
		// An immediately invoked literal resolves to the literal node
		// (the nested-literal link and the call edge deduplicate).
		"iife": {"iife$1"},
	}
	for caller, want := range cases {
		got := names(find(t, g, caller).Callees)
		if len(got) != len(want) {
			t.Errorf("%s callees = %v, want %v", caller, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s callees = %v, want %v", caller, got, want)
				break
			}
		}
	}
}
