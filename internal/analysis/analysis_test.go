package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{file}
}

// lineFlagger reports one diagnostic on every statement of every function,
// giving each line of the fixture something a directive could suppress.
var lineFlagger = &Analyzer{
	Name: "flag",
	Doc:  "flags every statement (test analyzer)",
	Run: func(p *Pass) (any, error) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.ExprStmt); ok {
					p.Reportf(s.Pos(), "flagged")
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestSuppressionRequiresReason(t *testing.T) {
	src := `package p

func f() {
	println(1) //simlint:ignore flag — demo fixture
	_ = 0
	println(2) //simlint:ignore flag
	_ = 0
	println(3) //simlint:ignore
	_ = 0
	println(4)
}
`
	fset, files := parseSrc(t, src)
	findings, _, err := Run([]*Analyzer{lineFlagger}, fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Line 4 is suppressed (named analyzer + reason); a directive also
	// covers the line below it, hence the `_ = 0` spacers. Lines 6 and 8
	// carry malformed directives, so each yields BOTH the flag finding
	// (not suppressed) and an "ignore" finding. Line 10 is just flagged.
	byLine := map[int][]string{}
	for _, f := range findings {
		byLine[f.Position.Line] = append(byLine[f.Position.Line], f.Analyzer)
	}
	if got := byLine[4]; got != nil {
		t.Errorf("line 4 (valid suppression) has findings %v, want none", got)
	}
	for _, line := range []int{6, 8} {
		got := strings.Join(byLine[line], ",")
		if got != "flag,ignore" {
			t.Errorf("line %d findings = %q, want flag and ignore", line, got)
		}
	}
	if got := strings.Join(byLine[10], ","); got != "flag" {
		t.Errorf("line 10 findings = %q, want flag", got)
	}
}

func TestSuppressionCoversNextLine(t *testing.T) {
	src := `package p

func f() {
	//simlint:ignore flag — covers the statement below
	println(1)
	println(2)
}
`
	fset, files := parseSrc(t, src)
	findings, _, err := Run([]*Analyzer{lineFlagger}, fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Position.Line != 6 {
		t.Errorf("findings = %v, want exactly one on line 6", findings)
	}
}

func TestParseDirectives(t *testing.T) {
	src := `package p

//simlint:ignore maporder,nondet — two names, em dash
//simlint:ignore flag -- double hyphen
//simlint:ignore flag reason with no separator
//simlint:ignore flag
//simlint:ignore
func f() {}
`
	fset, files := parseSrc(t, src)
	ds := ParseDirectives(fset, files)
	if len(ds) != 5 {
		t.Fatalf("parsed %d directives, want 5", len(ds))
	}
	if got := strings.Join(ds[0].Analyzers, ","); got != "maporder,nondet" {
		t.Errorf("directive 0 analyzers = %q", got)
	}
	if ds[0].Reason != "two names, em dash" || ds[0].Err != "" {
		t.Errorf("directive 0 = %+v", ds[0])
	}
	if ds[1].Reason != "double hyphen" || ds[1].Err != "" {
		t.Errorf("directive 1 = %+v", ds[1])
	}
	if ds[2].Reason != "reason with no separator" || ds[2].Err != "" {
		t.Errorf("directive 2 = %+v", ds[2])
	}
	if ds[3].Err == "" {
		t.Error("directive 3 (no reason) not marked malformed")
	}
	if ds[4].Err == "" {
		t.Error("directive 4 (bare) not marked malformed")
	}
}

func TestDedup(t *testing.T) {
	pos := func(file string, line int) token.Position {
		return token.Position{Filename: file, Line: line, Column: 1}
	}
	fs := []Finding{
		{Analyzer: "a", Position: pos("x.go", 1), Message: "m"},
		{Analyzer: "a", Position: pos("x.go", 1), Message: "m"},
		{Analyzer: "b", Position: pos("x.go", 1), Message: "m"},
		{Analyzer: "a", Position: pos("x.go", 2), Message: "m"},
		{Analyzer: "a", Position: pos("y.go", 1), Message: "m"},
	}
	SortFindings(fs)
	got := Dedup(fs)
	if len(got) != 4 {
		t.Fatalf("Dedup kept %d findings, want 4: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Position.Filename == b.Position.Filename &&
			a.Position.Line == b.Position.Line &&
			a.Analyzer == b.Analyzer {
			t.Errorf("duplicate survived: %v", b)
		}
	}
}
