// Package load type-checks Go packages for the simlint analyzers without
// any dependency outside the standard library. It shells out to
// `go list -export -deps -json`, which compiles (or reuses from the build
// cache) export data for every dependency, then parses the target
// packages from source and type-checks them with the stdlib gc importer
// reading that export data — the same offline protocol go/packages speaks,
// reduced to what a vet-style analysis driver needs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads, parses and type-checks the packages matching the go
// list patterns, resolving every import through build-cache export data.
// dir is the working directory for the go command (any directory inside
// the module).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := exportMap(listed)
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// Fixture loads the single package whose sources sit directly in dir
// (typically a testdata/src/<name> fixture), resolving its imports
// through the enclosing module. The package's import path is the
// directory base name, as in x/tools' analysistest layout.
func Fixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, e.Name())
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}

	// Resolve the fixture's imports via the module the fixture lives in.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		sort.Strings(imports)
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		exports = exportMap(listed)
	}

	imp := newExportImporter(fset, exports)
	lp := listedPackage{ImportPath: filepath.Base(dir), Dir: dir, GoFiles: names}
	return checkParsed(fset, imp, lp, files)
}

// ModuleRoot returns the root directory of the module containing dir
// (the directory holding go.mod), via `go env GOMOD`.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("load: go env GOMOD: %v\n%s", err, stderr.String())
	}
	gomod := strings.TrimSpace(stdout.String())
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("load: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		out = append(out, lp)
	}
	return out, nil
}

func exportMap(listed []listedPackage) map[string]string {
	m := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			m[lp.ImportPath] = lp.Export
		}
	}
	return m
}

// newExportImporter returns a types.Importer that reads gc export data
// from the files recorded by `go list -export`.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			// The std library vendors some modules; go list reports them
			// under a vendor/ prefix while source imports use the bare path.
			if f, ok2 := exports["vendor/"+path]; ok2 {
				file = f
			} else {
				return nil, fmt.Errorf("load: no export data for %q", path)
			}
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func check(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkParsed(fset, imp, lp, files)
}

func checkParsed(fset *token.FileSet, imp types.Importer, lp listedPackage, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: imp}
	pkg, err := cfg.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}
