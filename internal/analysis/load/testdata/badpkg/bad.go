// badpkg parses cleanly but fails the type checker: the loader must
// surface the error instead of analyzing a half-checked package.
package badpkg

func f() int {
	return "not an int"
}
