package load

import (
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot locates the module root from this file's position, so the
// tests work regardless of the test binary's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

func TestPackagesTypeChecksRunner(t *testing.T) {
	pkgs, err := Packages(repoRoot(t), "repro/internal/runner")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "repro/internal/runner" {
		t.Errorf("import path %q", p.ImportPath)
	}
	obj := p.Types.Scope().Lookup("PointSeed")
	if obj == nil {
		t.Fatal("runner.PointSeed not found in type-checked package")
	}
	if _, ok := obj.Type().(*types.Signature); !ok {
		t.Errorf("PointSeed is %T, want function", obj.Type())
	}
	if len(p.TypesInfo.Uses) == 0 {
		t.Error("TypesInfo.Uses empty; type information missing")
	}
}

func TestPackagesResolvesIntraModuleImports(t *testing.T) {
	// experiments imports runner, sim, topology, ...: exercises export
	// data resolution for both std and repro packages.
	pkgs, err := Packages(repoRoot(t), "repro/internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
}
