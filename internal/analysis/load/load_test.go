package load

import (
	"go/types"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root from this file's position, so the
// tests work regardless of the test binary's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

func TestPackagesTypeChecksRunner(t *testing.T) {
	pkgs, err := Packages(repoRoot(t), "repro/internal/runner")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "repro/internal/runner" {
		t.Errorf("import path %q", p.ImportPath)
	}
	obj := p.Types.Scope().Lookup("PointSeed")
	if obj == nil {
		t.Fatal("runner.PointSeed not found in type-checked package")
	}
	if _, ok := obj.Type().(*types.Signature); !ok {
		t.Errorf("PointSeed is %T, want function", obj.Type())
	}
	if len(p.TypesInfo.Uses) == 0 {
		t.Error("TypesInfo.Uses empty; type information missing")
	}
}

func TestPackagesResolvesIntraModuleImports(t *testing.T) {
	// experiments imports runner, sim, topology, ...: exercises export
	// data resolution for both std and repro packages.
	pkgs, err := Packages(repoRoot(t), "repro/internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
}

func TestPackagesMultiFile(t *testing.T) {
	pkgs, err := Packages(repoRoot(t), "repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n < 4 {
		t.Errorf("sim parsed into %d files, want >= 4 (multi-file package)", n)
	}
	// Every parsed file must have type info recorded in the shared Info.
	if len(pkgs[0].TypesInfo.Defs) == 0 {
		t.Error("TypesInfo.Defs empty for multi-file package")
	}
}

func TestPackagesMultiplePatterns(t *testing.T) {
	pkgs, err := Packages(repoRoot(t), "repro/internal/graph", "repro/internal/topology")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	// Packages sorts by import path regardless of pattern order.
	if pkgs[0].ImportPath != "repro/internal/graph" || pkgs[1].ImportPath != "repro/internal/topology" {
		t.Errorf("packages out of order: %s, %s", pkgs[0].ImportPath, pkgs[1].ImportPath)
	}
}

func TestFixtureTypeCheckFailure(t *testing.T) {
	_, err := Fixture(filepath.Join(filepath.Dir(mustCallerFile(t)), "testdata", "badpkg"))
	if err == nil {
		t.Fatal("loading badpkg succeeded, want type-check error")
	}
	if !strings.Contains(err.Error(), "type-checking badpkg") {
		t.Errorf("error %q does not name the failing package", err)
	}
}

func TestModuleRoot(t *testing.T) {
	root, err := ModuleRoot(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := filepath.Abs(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ModuleRoot = %s, want %s", got, want)
	}
}

func mustCallerFile(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("no caller info")
	}
	return file
}
