package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/cfg"
)

// buildFunc parses a function body (written as the body of func f) and
// returns its CFG plus the AST for marker lookup.
func buildFunc(t *testing.T, body string) *cfg.CFG {
	t.Helper()
	src := "package p\nfunc f(b bool, n int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(file.Decls[0].(*ast.FuncDecl).Body)
}

// marker finds the block node for the statement calling the named
// function, searching the CFG's own node lists so identity matches.
func marker(t *testing.T, c *cfg.CFG, name string) ast.Node {
	t.Helper()
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			call := n
			if es, ok := n.(ast.Stmt); ok {
				if e, ok := es.(*ast.ExprStmt); ok {
					call = e.X
				}
				if d, ok := es.(*ast.DeferStmt); ok {
					if id, ok := d.Call.Fun.(*ast.Ident); ok && id.Name == name {
						return n
					}
				}
			}
			if ce, ok := call.(*ast.CallExpr); ok {
				if id, ok := ce.Fun.(*ast.Ident); ok && id.Name == name {
					return n
				}
			}
		}
	}
	t.Fatalf("marker %s not found in CFG", name)
	return nil
}

func isHit(n ast.Node) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	ce, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ce.Fun.(*ast.Ident)
	return ok && id.Name == "hit"
}

func TestEveryPathHits(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"both branches", `start(); if b { hit() } else { hit() }`, true},
		{"one branch only", `start(); if b { hit() }`, false},
		{"after loop", `start(); for i := 0; i < n; i++ { work() }; hit()`, true},
		{"only inside conditional loop", `start(); for i := 0; i < n; i++ { hit() }`, false},
		{"infinite loop never exits", `start(); for { work() }`, true},
		{"range body not guaranteed", `start(); for range ch { hit() }`, false},
		{"panic path escapes", `start(); if b { panic("x") }; hit()`, false},
		{"hit before panic branch", `start(); hit(); if b { panic("x") }`, true},
		{"switch all cases", `start(); switch n { case 1: hit(); default: hit() }`, true},
		{"switch missing default", `start(); switch n { case 1: hit() }`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := buildFunc(t, tc.body)
			got := c.EveryPathHits(marker(t, c, "start"), isHit)
			if got != tc.want {
				t.Errorf("EveryPathHits = %v, want %v\nbody: %s", got, tc.want, tc.body)
			}
		})
	}
}

func TestReachesDeferOrder(t *testing.T) {
	// A defer registered before the marker reaches it; one registered
	// after (on a later path) does not.
	c := buildFunc(t, `defer hit(); start()`)
	if !c.Reaches(marker(t, c, "hit"), marker(t, c, "start")) {
		t.Error("defer before start: Reaches = false, want true")
	}
	c = buildFunc(t, `start(); defer hit()`)
	if c.Reaches(marker(t, c, "hit"), marker(t, c, "start")) {
		t.Error("defer after start: Reaches = true, want false")
	}
}

func TestDefersCollected(t *testing.T) {
	c := buildFunc(t, `defer hit(); if b { defer work() }`)
	if len(c.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(c.Defers))
	}
}

func TestGotoForward(t *testing.T) {
	// goto skips straight over work(): the label block is reachable, the
	// skipped statement is not.
	c := buildFunc(t, `start(); goto L; work(); L: hit()`)
	if c.Reaches(marker(t, c, "start"), marker(t, c, "work")) {
		t.Error("goto-skipped statement is reachable")
	}
	if !c.Reaches(marker(t, c, "start"), marker(t, c, "hit")) {
		t.Error("goto target not reachable")
	}
}

func TestGotoBackwardLoop(t *testing.T) {
	// A backward goto forms a loop: the builder must terminate and the
	// loop body must reach itself through the back edge.
	c := buildFunc(t, `L: work(); if b { goto L }; hit()`)
	w := marker(t, c, "work")
	if !c.Reaches(w, w) {
		t.Error("backward goto: loop body does not reach itself")
	}
	if !c.EveryPathHits(marker(t, c, "work"), isHit) {
		t.Error("every exit from the goto loop passes hit, want covered")
	}
}

func TestFallthrough(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"case chain", `switch n { case 1: start(); fallthrough; case 2: hit(); default: work() }`},
		{"default not last", `switch n { default: start(); fallthrough; case 2: hit() }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := buildFunc(t, tc.body)
			if !c.Reaches(marker(t, c, "start"), marker(t, c, "hit")) {
				t.Errorf("fallthrough edge missing\nbody: %s", tc.body)
			}
			if !c.EveryPathHits(marker(t, c, "start"), isHit) {
				t.Errorf("fallthrough path does not guarantee the next clause\nbody: %s", tc.body)
			}
		})
	}
}

func TestLabeledBreak(t *testing.T) {
	// break L must exit BOTH loops: if it bound to the inner loop, the
	// outer for{} would never terminate and hit() would be unreachable.
	c := buildFunc(t, `L: for { for { if b { break L }; work() } }; hit()`)
	if !c.Reaches(marker(t, c, "work"), marker(t, c, "hit")) {
		t.Error("labeled break does not exit the outer loop")
	}
}

func TestLabeledContinue(t *testing.T) {
	// continue L re-enters the OUTER loop head (which can exit); bound to
	// the inner for{} it would spin forever and hit() stays unreachable.
	c := buildFunc(t, `start(); L: for i := 0; i < n; i++ { for { continue L } }; hit()`)
	if !c.Reaches(marker(t, c, "start"), marker(t, c, "hit")) {
		t.Error("labeled continue does not target the outer loop")
	}
}

func TestLabelNotStolenByNestedLoop(t *testing.T) {
	// A label on a non-loop statement must not bind to a loop nested
	// inside it: `break L` under `L: if` is not legal Go, so the builder
	// fails loud instead of silently wiring a wrong edge. (These tests
	// parse without type checking, so the invalid input is constructible.)
	defer func() {
		if recover() == nil {
			t.Error("break to a non-loop label built a CFG, want panic")
		}
	}()
	buildFunc(t, `L: if b { for { break L } }; hit()`)
}

func TestUnmodelledStmtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BadStmt built a CFG, want panic")
		}
	}()
	cfg.New(&ast.BlockStmt{List: []ast.Stmt{&ast.BadStmt{}}})
}

func TestExitTerminal(t *testing.T) {
	c := buildFunc(t, `if b { return }; work()`)
	if len(c.Exit.Succs) != 0 {
		t.Errorf("exit block has %d successors, want 0", len(c.Exit.Succs))
	}
	if c.Entry != c.Blocks[0] {
		t.Error("entry is not Blocks[0]")
	}
}
