// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies, the dataflow foundation for the concurrency analyzers
// (lockorder, goleak, chanclose). It is the same miniature philosophy as
// the rest of internal/analysis: a stdlib-only reduction of
// x/tools/go/cfg carrying exactly what the simlint suite needs — basic
// blocks in execution order, every exit path ending at a synthetic exit
// block, defer registration points, and the two path queries the
// analyzers ask ("does every path from this statement to function exit
// pass a joining node?", "can this registration reach that spawn?").
//
// The analogy to the paper is deliberate: the fabric verifier proves
// network deadlock freedom by showing the channel-dependency graph is
// acyclic; these CFGs let the same style of graph argument run over the
// repository's own Go code, so the prover's concurrency is certified by
// the machinery it implements.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; Exit is a synthetic empty block every return, panic and
// fall-off-the-end edge targets, so "all exit paths" is exactly "all
// paths reaching Exit".
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in registration order; defers
	// also appear as ordinary nodes in their blocks, so path queries see
	// the registration point.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a straight-line node sequence followed by a
// branch to the successor blocks. Nodes hold the statements and the
// control expressions (if/for conditions, switch tags, range headers) in
// execution order.
type Block struct {
	Index int
	Desc  string
	Nodes []ast.Node
	Succs []*Block
}

func (b *Block) String() string {
	succs := make([]string, len(b.Succs))
	for i, s := range b.Succs {
		succs[i] = fmt.Sprint(s.Index)
	}
	return fmt.Sprintf("b%d(%s)->[%s]", b.Index, b.Desc, strings.Join(succs, ","))
}

// RangeHead marks the repeatedly-evaluated header of a range loop in a
// block's node list. The loop body is NOT under this node — predicates
// scanning a RangeHead see only the ranged operand, so "ranges over
// channel ch" is decidable without walking the body.
type RangeHead struct{ Range *ast.RangeStmt }

func (r *RangeHead) Pos() token.Pos { return r.Range.Pos() }
func (r *RangeHead) End() token.Pos { return r.Range.X.End() }

// New builds the CFG of a function body. A nil body (a declaration
// without implementation) yields entry -> exit.
func New(body *ast.BlockStmt) *CFG {
	c := &CFG{Exit: &Block{Desc: "exit"}}
	b := &builder{c: c, labels: map[string]*Block{}}
	c.Entry = b.block("entry")
	b.cur = c.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(c.Exit)
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

// scope is one enclosing breakable construct (loop, switch, select); cont
// is non-nil only for loops.
type scope struct {
	label string
	brk   *Block
	cont  *Block
}

type builder struct {
	c          *CFG
	cur        *Block // nil while the current point is unreachable
	scopes     []scope
	labels     map[string]*Block
	nextLabel  string
	fallTarget *Block // fallthrough destination inside a switch clause
}

func (b *builder) block(desc string) *Block {
	blk := &Block{Index: len(b.c.Blocks), Desc: desc}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

// ensure returns the current block, materializing a predecessor-less one
// for unreachable code so every statement is still findable in some block.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.block("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// jump adds an edge from the current block to dst (no-op when
// unreachable). The current block stays current.
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
}

func edge(from, to *Block) { from.Succs = append(from.Succs, to) }

func (b *builder) startBlock(blk *Block) { b.cur = blk }

func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.block("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then := b.block("if.then")
		done := b.block("if.done")
		b.jump(then)
		var els *Block
		if s.Else != nil {
			els = b.block("if.else")
			b.jump(els)
		} else {
			b.jump(done)
		}
		b.startBlock(then)
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			b.startBlock(els)
			b.stmt(s.Else)
			b.jump(done)
		}
		b.startBlock(done)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.block("for.head")
		body := b.block("for.body")
		done := b.block("for.done")
		post := head
		if s.Post != nil {
			post = b.block("for.post")
		}
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.jump(body)
			b.jump(done)
		} else {
			b.jump(body) // for {}: the only way out is break/return
		}
		b.scopes = append(b.scopes, scope{label: label, brk: done, cont: post})
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(post)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if s.Post != nil {
			b.startBlock(post)
			b.add(s.Post)
			b.jump(head)
		}
		b.startBlock(done)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.block("range.head")
		body := b.block("range.body")
		done := b.block("range.done")
		b.jump(head)
		b.startBlock(head)
		b.add(&RangeHead{Range: s})
		b.jump(body)
		b.jump(done)
		b.scopes = append(b.scopes, scope{label: label, brk: done, cont: head})
		b.startBlock(body)
		b.stmt(s.Body)
		b.jump(head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.startBlock(done)

	case *ast.SwitchStmt:
		var clauses []*ast.CaseClause
		for _, cs := range s.Body.List {
			clauses = append(clauses, cs.(*ast.CaseClause))
		}
		b.caseSwitch(s.Init, s.Tag, nil, clauses, true)

	case *ast.TypeSwitchStmt:
		var clauses []*ast.CaseClause
		for _, cs := range s.Body.List {
			clauses = append(clauses, cs.(*ast.CaseClause))
		}
		b.caseSwitch(s.Init, nil, s.Assign, clauses, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		done := b.block("select.done")
		b.scopes = append(b.scopes, scope{label: label, brk: done})
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.block("select.case")
			edge(head, blk)
			b.startBlock(blk)
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(done)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		// A select {} with no cases blocks forever: head keeps no
		// successors and done has no predecessors, making whatever
		// follows unreachable — which starting done as current models.
		b.startBlock(done)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.startBlock(lb)
		// The label binds break/continue only when it labels a loop,
		// switch or select; propagating it into any other statement would
		// let a loop nested inside (e.g. `L: if ... { for {...} }`) steal
		// it. goto targets resolve through labelBlock regardless.
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.nextLabel = s.Label.Name
		}
		b.stmt(s.Stmt)
		b.nextLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.jump(b.mustFindScope(s, false))
			b.cur = nil
		case token.CONTINUE:
			b.jump(b.mustFindScope(s, true))
			b.cur = nil
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fallTarget == nil {
				// Only legal as the final statement of a non-last
				// expression-switch clause, where caseSwitch always set the
				// target; anything else is not type-checked Go.
				panic("cfg: fallthrough outside a switch clause with a successor")
			}
			b.jump(b.fallTarget)
			b.cur = nil
		default:
			panic(fmt.Sprintf("cfg: unmodelled branch token %v", s.Tok))
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.c.Exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.c.Defers = append(b.c.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.jump(b.c.Exit)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	case *ast.GoStmt, *ast.SendStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt:
		// Straight-line nodes: no intra-procedural control flow (a go
		// statement transfers control to another goroutine, not this CFG).
		b.add(s)

	default:
		// Every statement kind the language defines is enumerated above;
		// reaching here means go/ast grew a node this builder does not
		// model (or a *ast.BadStmt survived into a type-checked tree).
		// Failing loud beats silently dropping control flow: the
		// concurrency analyzers' soundness leans on these graphs.
		panic(fmt.Sprintf("cfg: unmodelled statement type %T", s))
	}
}

// mustFindScope resolves a break (wantCont=false) or continue
// (wantCont=true) target and panics when none exists: in a type-checked
// function every break/continue has an enclosing (or labeled) loop,
// switch or select, so a miss means the builder's scope tracking is
// broken — fail loud rather than silently dropping the edge.
func (b *builder) mustFindScope(s *ast.BranchStmt, wantCont bool) *Block {
	if t := b.findScope(s.Label, wantCont); t != nil {
		return t
	}
	panic(fmt.Sprintf("cfg: unresolved %v statement at label %v", s.Tok, s.Label))
}

// caseSwitch builds switch and type-switch statements. tag/assign is the
// evaluated header; clauses run as alternative branches with optional
// fallthrough chaining (expression switches only).
func (b *builder) caseSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, clauses []*ast.CaseClause, allowFall bool) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.ensure()
	done := b.block("switch.done")
	bodyBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodyBlocks[i] = b.block("switch.case")
		edge(head, bodyBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, done)
	}
	b.scopes = append(b.scopes, scope{label: label, brk: done})
	savedFall := b.fallTarget
	for i, cc := range clauses {
		b.startBlock(bodyBlocks[i])
		for _, e := range cc.List {
			b.add(e)
		}
		if allowFall && i+1 < len(clauses) {
			b.fallTarget = bodyBlocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.fallTarget = savedFall
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.startBlock(done)
}

// findScope resolves a break (wantCont=false) or continue (wantCont=true)
// target, honoring labels.
func (b *builder) findScope(label *ast.Ident, wantCont bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if wantCont && sc.cont == nil {
			continue
		}
		if label != nil && sc.label != label.Name {
			continue
		}
		if wantCont {
			return sc.cont
		}
		return sc.brk
	}
	return nil
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// find locates the block and node index holding n (by node identity).
func (c *CFG) find(n ast.Node) (*Block, int, bool) {
	for _, blk := range c.Blocks {
		for i, node := range blk.Nodes {
			if node == n {
				return blk, i, true
			}
		}
	}
	return nil, 0, false
}

// EveryPathHits reports whether every control-flow path from immediately
// after start to the function exit passes at least one node matching hit.
// Paths that never reach the exit (infinite loops, select{}) are vacuously
// covered. When start is not in the graph the answer is false — the
// conservative direction for "is this obligation guaranteed?".
func (c *CFG) EveryPathHits(start ast.Node, hit func(ast.Node) bool) bool {
	blk, idx, ok := c.find(start)
	if !ok {
		return false
	}
	type item struct {
		b *Block
		i int
	}
	seen := map[*Block]bool{}
	stack := []item{{blk, idx + 1}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		covered := false
		for i := it.i; i < len(it.b.Nodes); i++ {
			if hit(it.b.Nodes[i]) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		for _, succ := range it.b.Succs {
			if succ == c.Exit {
				return false
			}
			if !seen[succ] {
				seen[succ] = true
				stack = append(stack, item{succ, 0})
			}
		}
	}
	return true
}

// Reaches reports whether control can flow from immediately after `from`
// to the node `to` (both located by identity in the graph).
func (c *CFG) Reaches(from, to ast.Node) bool {
	blk, idx, ok := c.find(from)
	if !ok {
		return false
	}
	type item struct {
		b *Block
		i int
	}
	seen := map[*Block]bool{}
	stack := []item{{blk, idx + 1}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := it.i; i < len(it.b.Nodes); i++ {
			if it.b.Nodes[i] == to {
				return true
			}
		}
		for _, succ := range it.b.Succs {
			if !seen[succ] {
				seen[succ] = true
				stack = append(stack, item{succ, 0})
			}
		}
	}
	return false
}
