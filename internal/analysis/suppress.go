package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A //simlint:ignore directive suppresses findings on its own line and on
// the line below it, so it works both as a trailing comment and as a
// standalone comment above the flagged statement. A bare directive
// suppresses every analyzer; otherwise its first field is a
// comma-separated list of analyzer names and the rest is free-form
// justification:
//
//	//simlint:ignore maporder keys are rendered sorted by the caller
//	rand.Shuffle(n, swap) //simlint:ignore nondet demo only
const ignoreDirective = "//simlint:ignore"

type suppressions struct {
	// byLine maps file:line to the set of suppressed analyzer names;
	// an entry containing "*" suppresses all analyzers on that line.
	byLine map[string]map[string]bool
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{byLine: make(map[string]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				names := map[string]bool{}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					names["*"] = true
				} else {
					for _, n := range strings.Split(fields[0], ",") {
						if n = strings.TrimSpace(n); n != "" {
							names[n] = true
						}
					}
				}
				pos := fset.Position(c.Pos())
				s.add(pos.Filename, pos.Line, names)
				s.add(pos.Filename, pos.Line+1, names)
			}
		}
	}
	return s
}

func (s suppressions) add(file string, line int, names map[string]bool) {
	key := lineKey(file, line)
	m := s.byLine[key]
	if m == nil {
		m = make(map[string]bool)
		s.byLine[key] = m
	}
	for n := range names {
		m[n] = true
	}
}

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	m := s.byLine[lineKey(pos.Filename, pos.Line)]
	return m != nil && (m["*"] || m[analyzer])
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
