package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A //simlint:ignore directive suppresses findings on its own line and on
// the line below it, so it works both as a trailing comment and as a
// standalone comment above the flagged statement. Its first field is a
// comma-separated list of analyzer names ("*" for all) and the rest is a
// mandatory justification — a suppression without a reason is itself a
// finding, reported under the name "ignore", and suppresses nothing:
//
//	//simlint:ignore maporder keys are rendered sorted by the caller
//	rand.Shuffle(n, swap) //simlint:ignore nondet — demo only
const ignoreDirective = "//simlint:ignore"

// IgnoreAnalyzerName is the analyzer name malformed-directive findings
// are reported under (there is no Analyzer of this name to disable: a
// broken suppression must always surface).
const IgnoreAnalyzerName = "ignore"

// Directive is one parsed //simlint:ignore comment, exported for the
// `simlint -ignores` suppression inventory.
type Directive struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
	// Err explains why the directive is malformed (bare, or missing its
	// reason); empty for a well-formed directive.
	Err string
}

// ParseDirectives extracts every //simlint:ignore directive from the
// files, well-formed or not, in position order within each file.
func ParseDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				d := parseDirective(strings.TrimPrefix(c.Text, ignoreDirective))
				d.Pos = fset.Position(c.Pos())
				out = append(out, d)
			}
		}
	}
	return out
}

func parseDirective(rest string) Directive {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{Err: "bare //simlint:ignore suppresses nothing: name the analyzers and a reason (//simlint:ignore analyzer — reason)"}
	}
	var d Directive
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			d.Analyzers = append(d.Analyzers, n)
		}
	}
	reason := strings.Join(fields[1:], " ")
	// An em-dash / hyphen separator between names and reason is idiomatic
	// but not part of the reason itself.
	for _, sep := range []string{"—", "–", "--", "-"} {
		if rest, ok := strings.CutPrefix(reason, sep+" "); ok {
			reason = rest
			break
		}
	}
	d.Reason = strings.TrimSpace(reason)
	if len(d.Analyzers) == 0 || d.Reason == "" {
		d.Err = "suppression without a reason: every //simlint:ignore needs one (//simlint:ignore analyzer — reason)"
	}
	return d
}

type suppressions struct {
	// byLine maps file:line to the set of suppressed analyzer names;
	// an entry containing "*" suppresses all analyzers on that line.
	byLine map[string]map[string]bool
}

// collectSuppressions builds the suppression table from the well-formed
// directives and returns one finding per malformed directive — a broken
// suppression both fails to suppress and fails the lint run.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	s := suppressions{byLine: make(map[string]map[string]bool)}
	var bad []Finding
	for _, d := range ParseDirectives(fset, files) {
		if d.Err != "" {
			bad = append(bad, Finding{Analyzer: IgnoreAnalyzerName, Position: d.Pos, Message: d.Err})
			continue
		}
		names := map[string]bool{}
		for _, n := range d.Analyzers {
			names[n] = true
		}
		s.add(d.Pos.Filename, d.Pos.Line, names)
		s.add(d.Pos.Filename, d.Pos.Line+1, names)
	}
	return s, bad
}

func (s suppressions) add(file string, line int, names map[string]bool) {
	key := lineKey(file, line)
	m := s.byLine[key]
	if m == nil {
		m = make(map[string]bool)
		s.byLine[key] = m
	}
	for n := range names {
		m[n] = true
	}
}

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	m := s.byLine[lineKey(pos.Filename, pos.Line)]
	return m != nil && (m["*"] || m[analyzer])
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
