// Package fabric models ServerNet's fault-tolerance story (§1 of the
// paper): full network fault tolerance comes from configuring PAIRS of
// router fabrics — an X fabric and a Y fabric of identical topology — with
// dual-ported nodes, so that any single link or router failure leaves every
// node pair connected through the other fabric. The package also quantifies
// §2's observation about non-reflexive routing: when the path from A to B
// differs from the path from B to A, a failure on the return path makes the
// forward path unusable too, because acknowledgments cannot flow back.
package fabric

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/routing"
	"repro/internal/topology"
)

// FabricID names one of the two fabrics.
type FabricID int

const (
	// X is the primary fabric.
	X FabricID = iota
	// Y is the standby fabric.
	Y
)

// String names the fabric for display.
func (f FabricID) String() string {
	if f == X {
		return "X"
	}
	return "Y"
}

// Dual is a pair of identically-built fabrics with their routing tables.
// Node address i refers to the same dual-ported node in both fabrics.
type Dual struct {
	Net    [2]*topology.Network
	Tables [2]*routing.Tables
}

// NewDual builds the two fabrics by calling build twice. The builder must
// be deterministic so the fabrics are identical in shape.
func NewDual(build func() (*topology.Network, *routing.Tables)) (*Dual, error) {
	d := &Dual{}
	for i := 0; i < 2; i++ {
		net, tb := build()
		if tb.Net != net {
			return nil, fmt.Errorf("fabric: tables do not belong to the built network")
		}
		d.Net[i] = net
		d.Tables[i] = tb
	}
	if d.Net[0].NumNodes() != d.Net[1].NumNodes() ||
		d.Net[0].NumLinks() != d.Net[1].NumLinks() {
		return nil, fmt.Errorf("fabric: X and Y fabrics differ in shape")
	}
	return d, nil
}

// Faults is a set of injected failures, per fabric.
type Faults struct {
	deadLinks   [2]map[topology.LinkID]bool
	deadRouters [2]map[topology.DeviceID]bool
}

// NewFaults returns an empty fault set.
func NewFaults() *Faults {
	f := &Faults{}
	for i := 0; i < 2; i++ {
		f.deadLinks[i] = make(map[topology.LinkID]bool)
		f.deadRouters[i] = make(map[topology.DeviceID]bool)
	}
	return f
}

// KillLink marks a link of one fabric failed.
func (f *Faults) KillLink(fab FabricID, l topology.LinkID) { f.deadLinks[fab][l] = true }

// KillRouter marks a router of one fabric failed.
func (f *Faults) KillRouter(fab FabricID, r topology.DeviceID) { f.deadRouters[fab][r] = true }

// Count reports the number of injected faults.
func (f *Faults) Count() int {
	n := 0
	for i := 0; i < 2; i++ {
		n += len(f.deadLinks[i]) + len(f.deadRouters[i])
	}
	return n
}

// RouteBroken reports whether a route crosses any failed element of the
// given fabric.
func (f *Faults) RouteBroken(fab FabricID, net *topology.Network, r routing.Route) bool {
	for _, ch := range r.Channels {
		if f.deadLinks[fab][net.ChannelLink(ch)] {
			return true
		}
	}
	for _, dev := range r.Devices {
		if f.deadRouters[fab][dev] {
			return true
		}
	}
	return false
}

// usable reports whether the pair (src,dst) can exchange data AND
// acknowledgments on one fabric: both the forward and the reverse route
// must survive. This is §2's constraint — "that path may be unusable due to
// the inability to send acknowledgments back".
func (d *Dual) usable(fab FabricID, faults *Faults, src, dst int) (bool, error) {
	fwd, err := d.Tables[fab].Route(src, dst)
	if err != nil {
		return false, err
	}
	rev, err := d.Tables[fab].Route(dst, src)
	if err != nil {
		return false, err
	}
	return !faults.RouteBroken(fab, d.Net[fab], fwd) &&
		!faults.RouteBroken(fab, d.Net[fab], rev), nil
}

// RouteWithFailover returns a working route for (src,dst): the X fabric's
// route if X is healthy for the pair (including its ack path), otherwise
// Y's. It fails only when both fabrics are broken for the pair.
func (d *Dual) RouteWithFailover(faults *Faults, src, dst int) (routing.Route, FabricID, error) {
	for _, fab := range []FabricID{X, Y} {
		ok, err := d.usable(fab, faults, src, dst)
		if err != nil {
			return routing.Route{}, fab, err
		}
		if ok {
			r, err := d.Tables[fab].Route(src, dst)
			return r, fab, err
		}
	}
	return routing.Route{}, X, fmt.Errorf("fabric: no surviving path %d -> %d on either fabric", src, dst)
}

// Survivability summarizes pair connectivity under a fault set.
type Survivability struct {
	Pairs   int // ordered pairs examined
	OnX     int // pairs served by the X fabric
	OnY     int // pairs that had to fail over to Y
	Severed int // pairs with no usable fabric
}

// Survey computes survivability over all ordered node pairs.
func (d *Dual) Survey(faults *Faults) (Survivability, error) {
	var s Survivability
	n := d.Net[0].NumNodes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			s.Pairs++
			okX, err := d.usable(X, faults, a, b)
			if err != nil {
				return s, err
			}
			if okX {
				s.OnX++
				continue
			}
			okY, err := d.usable(Y, faults, a, b)
			if err != nil {
				return s, err
			}
			if okY {
				s.OnY++
			} else {
				s.Severed++
			}
		}
	}
	return s, nil
}

// AckImpact quantifies the non-reflexive routing penalty of §2 on a single
// fabric: among ordered pairs whose FORWARD route survives the faults, how
// many are nevertheless unusable because the REVERSE route is broken. For
// reflexive routings the answer is zero by construction (forward and
// reverse use the same links).
func AckImpact(t *routing.Tables, faults *Faults, fab FabricID) (fwdOK, unusable int, err error) {
	n := t.Net.NumNodes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			fwd, err := t.Route(a, b)
			if err != nil {
				return 0, 0, err
			}
			if faults.RouteBroken(fab, t.Net, fwd) {
				continue
			}
			fwdOK++
			rev, err := t.Route(b, a)
			if err != nil {
				return 0, 0, err
			}
			if faults.RouteBroken(fab, t.Net, rev) {
				unusable++
			}
		}
	}
	return fwdOK, unusable, nil
}

// Balance is the static load-sharing rule some dual-fabric ServerNet
// configurations use when both fabrics are healthy: pairs with even
// src+dst ride X, odd pairs ride Y. It is deterministic per pair, so
// in-order delivery is preserved.
func Balance(src, dst int) FabricID {
	if (src+dst)%2 == 0 {
		return X
	}
	return Y
}

// SharedContention measures worst-case link contention when traffic is
// load-shared across both fabrics with Balance: each fabric sees only its
// half of the pair space, roughly halving the §3 contention figures while
// both fabrics are healthy (fault tolerance degrades to single-fabric
// contention, not to disconnection).
func (d *Dual) SharedContention() (int, error) {
	worst := 0
	n := d.Net[0].NumNodes()
	for _, fab := range []FabricID{X, Y} {
		var pairs []contention.Transfer
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && Balance(a, b) == fab {
					pairs = append(pairs, contention.Transfer{Src: a, Dst: b})
				}
			}
		}
		res, err := contention.MaxLinkContentionPairs(d.Tables[fab], pairs)
		if err != nil {
			return 0, err
		}
		if res.Max > worst {
			worst = res.Max
		}
	}
	return worst, nil
}

// Reflexive reports whether a routing is reflexive: for every pair, the
// reverse route uses exactly the same links (in opposite direction).
func Reflexive(t *routing.Tables) (bool, error) {
	n := t.Net.NumNodes()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			fwd, err := t.Route(a, b)
			if err != nil {
				return false, err
			}
			rev, err := t.Route(b, a)
			if err != nil {
				return false, err
			}
			if len(fwd.Channels) != len(rev.Channels) {
				return false, nil
			}
			for i, ch := range fwd.Channels {
				if rev.Channels[len(rev.Channels)-1-i] != t.Net.Reverse(ch) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}
