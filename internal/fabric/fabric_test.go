package fabric

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func buildFract() (*topology.Network, *routing.Tables) {
	f := topology.NewFractahedron(topology.Tetra(1, false))
	return f.Network, routing.Fractahedron(f)
}

func TestDualHealthy(t *testing.T) {
	d, err := NewDual(buildFract)
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaults()
	r, fab, err := d.RouteWithFailover(faults, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fab != X {
		t.Errorf("healthy network routed on %v, want X", fab)
	}
	if r.Src != 0 || r.Dst != 7 {
		t.Errorf("route endpoints %d->%d", r.Src, r.Dst)
	}
	s, err := d.Survey(faults)
	if err != nil {
		t.Fatal(err)
	}
	if s.OnX != s.Pairs || s.OnY != 0 || s.Severed != 0 {
		t.Errorf("healthy survey: %+v", s)
	}
}

func TestFailoverOnLinkFault(t *testing.T) {
	d, err := NewDual(buildFract)
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaults()
	// Kill the first inter-router link of fabric X.
	for _, l := range d.Net[X].Links() {
		a := d.Net[X].Device(l.A.Device)
		b := d.Net[X].Device(l.B.Device)
		if a.Kind == topology.Router && b.Kind == topology.Router {
			faults.KillLink(X, l.ID)
			break
		}
	}
	s, err := d.Survey(faults)
	if err != nil {
		t.Fatal(err)
	}
	if s.Severed != 0 {
		t.Errorf("single link fault severed %d pairs; dual fabric must survive", s.Severed)
	}
	if s.OnY == 0 {
		t.Error("no pair failed over to Y despite an X fault")
	}
	if s.OnX == 0 {
		t.Error("unaffected pairs should stay on X")
	}
}

func TestRouterFaultFailover(t *testing.T) {
	d, err := NewDual(buildFract)
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaults()
	// Kill router 0 of fabric X: every pair whose route touches it must
	// move to Y; no pair may be severed.
	for _, dev := range d.Net[X].Devices() {
		if dev.Kind == topology.Router {
			faults.KillRouter(X, dev.ID)
			break
		}
	}
	s, err := d.Survey(faults)
	if err != nil {
		t.Fatal(err)
	}
	if s.Severed != 0 {
		t.Errorf("router fault severed %d pairs", s.Severed)
	}
	if s.OnY == 0 {
		t.Error("router fault caused no failovers")
	}
}

func TestDoubleFaultCanSever(t *testing.T) {
	d, err := NewDual(buildFract)
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaults()
	// Kill node 0's injection link on BOTH fabrics: node 0 is isolated.
	for _, fab := range []FabricID{X, Y} {
		node := d.Net[fab].NodeByIndex(0)
		l, ok := d.Net[fab].LinkAt(node, 0)
		if !ok {
			t.Fatal("node 0 unwired")
		}
		faults.KillLink(fab, l)
	}
	s, err := d.Survey(faults)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 participates in 2*(n-1) = 14 ordered pairs.
	if s.Severed != 14 {
		t.Errorf("severed = %d, want 14", s.Severed)
	}
	if _, _, err := d.RouteWithFailover(faults, 0, 3); err == nil {
		t.Error("isolated node still routed")
	}
}

// Fractahedral and dimension-order routings are reflexive; strictly
// clockwise ring routing is not.
func TestReflexivity(t *testing.T) {
	_, tb := buildFract()
	if ok, err := Reflexive(tb); err != nil || !ok {
		t.Errorf("fractahedral routing reflexive=%v err=%v, want true", ok, err)
	}
	rg := topology.NewRing(4, 1)
	cw := routing.RingClockwise(rg)
	if ok, err := Reflexive(cw); err != nil || ok {
		t.Errorf("clockwise ring reflexive=%v err=%v, want false", ok, err)
	}
}

// §2: with non-reflexive routing, a single dead link makes pairs whose
// FORWARD path is perfectly healthy unusable, because their ack path dies.
func TestAckImpactNonReflexive(t *testing.T) {
	rg := topology.NewRing(4, 1)
	cw := routing.RingClockwise(rg)
	faults := NewFaults()
	l, _ := rg.LinkAt(rg.Routers[0], topology.RingPortCW) // link 0 -> 1
	faults.KillLink(X, l)

	fwdOK, unusable, err := AckImpact(cw, faults, X)
	if err != nil {
		t.Fatal(err)
	}
	if unusable == 0 {
		t.Error("non-reflexive routing shows no ack-path impact")
	}
	// Reflexive routing on the same ring: zero ack-only losses.
	seam := routing.RingSeamless(rg)
	if ok, _ := Reflexive(seam); !ok {
		t.Fatal("seamless ring routing should be reflexive")
	}
	fwdOK2, unusable2, err := AckImpact(seam, faults, X)
	if err != nil {
		t.Fatal(err)
	}
	if unusable2 != 0 {
		t.Errorf("reflexive routing reports %d ack-only losses", unusable2)
	}
	_ = fwdOK
	_ = fwdOK2
}

// Load sharing across healthy dual fabrics roughly halves the worst-case
// contention: the fat-tree pair drops from 12:1 to 6:1.
func TestSharedContentionHalves(t *testing.T) {
	d, err := NewDual(func() (*topology.Network, *routing.Tables) {
		ft := topology.NewFatTree(4, 2, 64)
		return ft.Network, routing.FatTree(ft)
	})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := d.SharedContention()
	if err != nil {
		t.Fatal(err)
	}
	if shared >= 12 {
		t.Errorf("load-shared contention = %d, expected below the single-fabric 12", shared)
	}
	if shared < 4 {
		t.Errorf("load-shared contention = %d suspiciously low", shared)
	}
}

func TestBalanceDeterministic(t *testing.T) {
	if Balance(3, 5) != X || Balance(3, 6) != Y {
		t.Error("balance rule wrong")
	}
}

func TestFaultAccounting(t *testing.T) {
	f := NewFaults()
	if f.Count() != 0 {
		t.Error("fresh fault set not empty")
	}
	f.KillLink(X, 3)
	f.KillRouter(Y, 7)
	if f.Count() != 2 {
		t.Errorf("count = %d", f.Count())
	}
	if X.String() != "X" || Y.String() != "Y" {
		t.Error("fabric names wrong")
	}
}
