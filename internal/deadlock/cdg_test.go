package deadlock

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/topology"
)

func analyze(t *testing.T, tb *routing.Tables) Report {
	t.Helper()
	rep, err := Analyze(tb)
	if err != nil {
		t.Fatalf("analyze %s: %v", tb.Algorithm, err)
	}
	return rep
}

// Figure 1: strictly clockwise routing on a ring has a cyclic CDG.
func TestRingClockwiseDeadlocks(t *testing.T) {
	r := topology.NewRing(4, 1)
	rep := analyze(t, routing.RingClockwise(r))
	if rep.Free {
		t.Fatal("clockwise ring reported deadlock-free")
	}
	if len(rep.Cycle) != 4 {
		t.Errorf("cycle length = %d, want 4 (the four inter-router channels)", len(rep.Cycle))
	}
	// Each cycle member must be an inter-router channel.
	for _, c := range rep.Cycle {
		src := r.ChannelSrc(c).Device
		dst := r.ChannelDst(c).Device
		if r.Device(src).Kind != topology.Router || r.Device(dst).Kind != topology.Router {
			t.Errorf("cycle includes node channel %s", r.ChannelString(c))
		}
	}
	if !strings.Contains(rep.String(), "DEADLOCK POSSIBLE") {
		t.Errorf("report text: %s", rep.String())
	}
}

// Breaking the seam (disabling one direction pair) makes the ring safe.
func TestRingSeamlessFree(t *testing.T) {
	r := topology.NewRing(4, 1)
	rep := analyze(t, routing.RingSeamless(r))
	if !rep.Free {
		t.Fatalf("seamless ring not deadlock-free: %s", rep)
	}
	if len(rep.Order) != r.NumChannels() {
		t.Errorf("certificate covers %d channels, want %d", len(rep.Order), r.NumChannels())
	}
}

// The Dally–Seitz certificate actually certifies: every dependency ascends.
func TestCertificateAscends(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	rep := analyze(t, tb)
	if !rep.Free {
		t.Fatalf("fat fractahedron not free: %s", rep)
	}
	g, err := BuildCDG(tb)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < g.N(); c++ {
		for _, c2 := range g.Out(c) {
			if rep.Order[c] >= rep.Order[c2] {
				t.Fatalf("certificate violated: order[%d]=%d >= order[%d]=%d",
					c, rep.Order[c], c2, rep.Order[c2])
			}
		}
	}
}

// §2: dimension-order routing avoids deadlock on the mesh...
func TestMeshDimOrderFree(t *testing.T) {
	m := topology.NewMesh(4, 4, 2)
	for _, yFirst := range []bool{false, true} {
		rep := analyze(t, routing.MeshDimOrder(m, yFirst))
		if !rep.Free {
			t.Errorf("mesh dim-order yFirst=%v not free: %s", yFirst, rep)
		}
	}
}

// ...but NOT on the torus: the wraparound rings keep their cycles, which is
// why Dally & Seitz needed virtual channels there.
func TestTorusDimOrderDeadlocks(t *testing.T) {
	m := topology.NewTorus(3, 3, 1)
	// Dimension-order works unchanged on the torus builder because the walk
	// still terminates (mesh-style greedy steps; wrap links used only when
	// they shorten... the mesh router never chooses them, so force use by a
	// clockwise unidirectional ring routing per dimension instead).
	tb := routing.Build(m.Network, "torus-unidir", func(router topology.DeviceID, dst int) int {
		x, y := m.Coord(router)
		dx, dy := m.NodeCoord(dst)
		if x != dx {
			return topology.MeshPortXPlus // always +X around the ring
		}
		if y != dy {
			return topology.MeshPortYPlus
		}
		return m.NodePort(dst)
	})
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, tb)
	if rep.Free {
		t.Error("unidirectional torus routing reported deadlock-free; wraparound rings must cycle")
	}
}

// §2: the hypercube with up*/down* path disables is deadlock-free, as is
// e-cube.
func TestHypercubeRoutingsFree(t *testing.T) {
	h := topology.NewHypercube(3, 1)
	for _, tb := range []*routing.Tables{routing.HypercubeECube(h), routing.HypercubeUpDown(h)} {
		rep := analyze(t, tb)
		if !rep.Free {
			t.Errorf("%s not free: %s", tb.Algorithm, rep)
		}
	}
}

// §3.3: tree routing is deadlock-free (trees have no loops; fat trees with
// up*/down* discipline keep that property).
func TestFatTreesFree(t *testing.T) {
	for _, du := range [][2]int{{4, 2}, {3, 3}, {4, 1}} {
		ft := topology.NewFatTree(du[0], du[1], 64)
		rep := analyze(t, routing.FatTree(ft))
		if !rep.Free {
			t.Errorf("%d-%d fat tree not free: %s", du[0], du[1], rep)
		}
	}
}

// §2.4: the fractahedral routing algorithm eliminates the loops that the
// fat variant's multiple layers introduce. Verified for thin and fat, with
// and without the fan-out stage, at N = 1..3 (N=3 only without fan-out to
// bound test time).
func TestFractahedronsFree(t *testing.T) {
	for n := 1; n <= 2; n++ {
		for _, fat := range []bool{false, true} {
			for _, fan := range []bool{false, true} {
				cfg := topology.Tetra(n, fat)
				cfg.Fanout = fan
				rep := analyze(t, routing.Fractahedron(topology.NewFractahedron(cfg)))
				if !rep.Free {
					t.Errorf("N=%d fat=%v fan=%v not free: %s", n, fat, fan, rep)
				}
			}
		}
	}
}

func TestFractahedronN3Free(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node CDG in -short mode")
	}
	for _, fat := range []bool{false, true} {
		rep := analyze(t, routing.Fractahedron(topology.NewFractahedron(topology.Tetra(3, fat))))
		if !rep.Free {
			t.Errorf("N=3 fat=%v not free: %s", fat, rep)
		}
	}
}

// Generalized ensembles (§4: "the concepts easily generalize to other fully
// connected groups of N-port routers") stay deadlock-free.
func TestGeneralizedFractahedronFree(t *testing.T) {
	for _, g := range []int{3, 5} {
		cfg := topology.FractConfig{Group: g, Down: 2, Levels: 2, Fat: true}
		rep := analyze(t, routing.Fractahedron(topology.NewFractahedron(cfg)))
		if !rep.Free {
			t.Errorf("group=%d not free: %s", g, rep)
		}
	}
}

// The CDG edge set coincides with the used-turn set — the exactness of
// §2.4's path-disable enforcement.
func TestTurnEquivalence(t *testing.T) {
	cases := []*routing.Tables{
		routing.Fractahedron(topology.NewFractahedron(topology.Tetra(2, true))),
		routing.FatTree(topology.NewFatTree(4, 2, 16)),
		routing.MeshDimOrder(topology.NewMesh(3, 3, 1), true),
	}
	for _, tb := range cases {
		if err := VerifyTurnEquivalence(tb); err != nil {
			t.Errorf("%s: %v", tb.Algorithm, err)
		}
	}
}

// A corrupted routing table that introduces a new turn breaks the
// equivalence the disables would catch.
func TestCorruptedTableBreaksFreedom(t *testing.T) {
	r := topology.NewRing(4, 1)
	tb := routing.RingSeamless(r)
	// Force traffic for node 1 to go the long way around, through the seam
	// and onward through router 0 — a through-route that closes the cycle.
	tb.SetOutPort(r.Routers[2], 1, topology.RingPortCW)
	tb.SetOutPort(r.Routers[3], 1, topology.RingPortCW)
	rep := analyze(t, tb)
	if rep.Free {
		t.Error("corrupted seamless routing still reported free; seam traffic must close the cycle")
	}
}

func TestReportStringFree(t *testing.T) {
	r := topology.NewRing(4, 1)
	rep := analyze(t, routing.RingSeamless(r))
	if !strings.Contains(rep.String(), "DEADLOCK-FREE") {
		t.Errorf("report: %s", rep)
	}
}

// The generic up*/down* routing is deadlock-free on every topology,
// including the cyclic irregular ones the per-topology algorithms cannot
// serve (CCC, shuffle-exchange) — the universal restriction scheme behind
// §2's per-topology disables.
func TestUpDownGenericFreeEverywhere(t *testing.T) {
	ccc := topology.NewCCC(3)
	se := topology.NewShuffleExchange(4)
	torus := topology.NewTorus(3, 3, 1)
	cases := []*routing.Tables{
		routing.UpDownGeneric(ccc.Network, ccc.Routers[0][0]),
		routing.UpDownGeneric(se.Network, se.Routers[0]),
		routing.UpDownGeneric(torus.Network, torus.RouterAt[0][0]),
	}
	for _, tb := range cases {
		rep := analyze(t, tb)
		if !rep.Free {
			t.Errorf("%s on %s not deadlock-free: %s", tb.Algorithm, tb.Net.Name, rep)
		}
	}
}

// VC-aware analysis agrees with the plain analysis when only one VC exists.
func TestAnalyzeVCDegeneratesToPlain(t *testing.T) {
	m := topology.NewMesh(3, 3, 1)
	tb := routing.MeshDimOrder(m, true)
	plain := analyze(t, tb)
	vc, err := AnalyzeVC(tb)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Free != plain.Free || vc.NumVC != 1 {
		t.Errorf("plain=%v vc=%v numVC=%d", plain.Free, vc.Free, vc.NumVC)
	}
	if vc.Deps != plain.Deps {
		t.Errorf("deps %d vs %d", vc.Deps, plain.Deps)
	}
	if vc.PhysicalCyclic {
		t.Error("mesh physical CDG reported cyclic")
	}
}

// Property: every random fractahedron configuration is deadlock-free under
// its own routing — the §2.4 claim across the whole design space, not just
// the paper's tetrahedral instance.
func TestFractahedronFreedomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := topology.FractConfig{
			Group:  3 + rng.Intn(3),
			Down:   1 + rng.Intn(2),
			Levels: 1 + rng.Intn(2),
			Fat:    rng.Intn(2) == 0,
			Fanout: rng.Intn(2) == 0,
		}
		rep, err := Analyze(routing.Fractahedron(topology.NewFractahedron(cfg)))
		if err != nil {
			t.Logf("cfg %+v: %v", cfg, err)
			return false
		}
		if !rep.Free {
			t.Logf("cfg %+v cyclic: %s", cfg, rep)
		}
		return rep.Free
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: generic up*/down* yields an acyclic CDG on random connected
// topologies (the Autonet guarantee).
func TestUpDownGenericFreedomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := 3 + rng.Intn(8)
		net := topology.New("random")
		routers := make([]topology.DeviceID, nr)
		for i := range routers {
			routers[i] = net.AddRouter("r", 8)
		}
		for i := 1; i < nr; i++ {
			net.ConnectNext(routers[i], routers[rng.Intn(i)])
		}
		for k := 0; k < rng.Intn(nr); k++ {
			a, b := rng.Intn(nr), rng.Intn(nr)
			if a == b || net.UsedPorts(routers[a]) >= 6 || net.UsedPorts(routers[b]) >= 6 {
				continue
			}
			net.ConnectNext(routers[a], routers[b])
		}
		for i := range routers {
			nd := net.AddNode("n")
			net.ConnectNext(routers[i], nd)
		}
		rep, err := Analyze(routing.UpDownGeneric(net, routers[0]))
		if err != nil {
			t.Logf("%v", err)
			return false
		}
		return rep.Free
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPartialFractahedronFreedom(t *testing.T) {
	for _, p := range []int{5, 12, 40} {
		cfg := topology.Tetra(2, true)
		cfg.Populate = p
		rep := analyze(t, routing.Fractahedron(topology.NewFractahedron(cfg)))
		if !rep.Free {
			t.Errorf("populate=%d not free: %s", p, rep)
		}
	}
}

func TestTwoLevelFanoutCDGFree(t *testing.T) {
	cfg := topology.Tetra(1, false)
	cfg.Fanout = true
	cfg.FanoutDepth = 2
	rep := analyze(t, routing.Fractahedron(topology.NewFractahedron(cfg)))
	if !rep.Free {
		t.Errorf("depth-2 fan-out not deadlock-free: %s", rep)
	}
}

func TestFatTreeCompactFree(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	rep := analyze(t, routing.FatTreeCompact(ft))
	if !rep.Free {
		t.Errorf("compact fat tree routing not free: %s", rep)
	}
}

func TestVCReportStringForms(t *testing.T) {
	rg := topology.NewRing(4, 1)
	free, err := AnalyzeVC(routing.RingDateline(rg))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(free.String(), "VC assignment breaks the loops") {
		t.Errorf("free report: %s", free)
	}
	cyclic, err := AnalyzeVC(routing.RingClockwise(rg))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cyclic.String(), "DEADLOCK POSSIBLE") {
		t.Errorf("cyclic report: %s", cyclic)
	}
}
