package deadlock_test

import (
	"fmt"
	"log"

	"repro/internal/deadlock"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Analyze the Figure 1 ring: clockwise routing is provably deadlock-prone,
// seam-avoiding routing provably free.
func ExampleAnalyze() {
	ring := topology.NewRing(4, 1)

	bad, err := deadlock.Analyze(routing.RingClockwise(ring))
	if err != nil {
		log.Fatal(err)
	}
	good, err := deadlock.Analyze(routing.RingSeamless(ring))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clockwise free: %v (cycle length %d)\n", bad.Free, len(bad.Cycle))
	fmt.Printf("seamless free: %v\n", good.Free)
	// Output:
	// clockwise free: false (cycle length 4)
	// seamless free: true
}

// Virtual channels make the physically cyclic ring safe: the (channel, VC)
// dependency graph of the dateline discipline is acyclic.
func ExampleAnalyzeVC() {
	ring := topology.NewRing(4, 1)
	rep, err := deadlock.AnalyzeVC(routing.RingDateline(ring))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("free: %v with %d VCs; physical graph cyclic: %v\n",
		rep.Free, rep.NumVC, rep.PhysicalCyclic)
	// Output:
	// free: true with 2 VCs; physical graph cyclic: true
}
