// Package deadlock analyzes routing algorithms for deadlock freedom using
// the channel dependency graph (CDG) method of Dally and Seitz, which the
// paper's §2 builds on: a wormhole-routed network is deadlock-free iff the
// directed graph whose vertices are unidirectional channels and whose edges
// join consecutively-used channels is acyclic.
//
// Because every routing algorithm in this repository is destination-based
// and table-driven, the CDG's edge set coincides exactly with the set of
// router turns the routes use; the package verifies that equivalence, which
// is what lets ServerNet's path-disable registers (§2.4) enforce the
// analyzed dependency structure in hardware even against corrupted routing
// tables.
package deadlock

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Report is the outcome of a CDG analysis.
type Report struct {
	Net       *topology.Network
	Algorithm string
	Free      bool                 // true iff the CDG is acyclic
	Cycle     []topology.ChannelID // a witness dependency cycle when !Free
	Channels  int                  // CDG vertices (all network channels)
	Deps      int                  // CDG edges (distinct channel dependencies)

	// Order is a Dally–Seitz certificate when Free: a numbering of channels
	// such that every dependency goes from a lower number to a higher one.
	Order []int
}

// BuildCDG routes every ordered node pair through the tables and returns
// the channel dependency graph: vertex i is channel i, and an edge c1 -> c2
// means some route crosses c1 immediately followed by c2.
func BuildCDG(t *routing.Tables) (*graph.Digraph, error) {
	// The all-pairs sweep runs on a worker pool; dependency edges are
	// deduplicated and sorted before insertion so the graph (and any
	// witness cycle extracted from it) is independent of the worker count.
	seen := make(map[[2]topology.ChannelID]bool)
	err := t.ForAllPairs(0,
		func() any { return make(map[[2]topology.ChannelID]bool) },
		func(acc any, r routing.Route) error {
			m := acc.(map[[2]topology.ChannelID]bool)
			for i := 1; i < len(r.Channels); i++ {
				m[[2]topology.ChannelID{r.Channels[i-1], r.Channels[i]}] = true
			}
			return nil
		},
		func(acc any) error {
			for key := range acc.(map[[2]topology.ChannelID]bool) {
				seen[key] = true
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	edges := make([][2]topology.ChannelID, 0, len(seen))
	for key := range seen {
		edges = append(edges, key)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	g := graph.NewDigraph(t.Net.NumChannels())
	for _, e := range edges {
		g.AddEdge(int(e[0]), int(e[1]))
	}
	return g, nil
}

// Analyze builds the CDG for a routing and reports whether it is
// deadlock-free, with either a witness cycle or a numbering certificate.
func Analyze(t *routing.Tables) (Report, error) {
	g, err := BuildCDG(t)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Net:       t.Net,
		Algorithm: t.Algorithm,
		Channels:  g.N(),
		Deps:      g.M(),
	}
	if cyc, cyclic := g.FindCycle(); cyclic {
		rep.Cycle = make([]topology.ChannelID, len(cyc))
		for i, c := range cyc {
			rep.Cycle[i] = topology.ChannelID(c)
		}
		return rep, nil
	}
	rep.Free = true
	order, ok := g.TopoSort()
	if !ok {
		return Report{}, fmt.Errorf("deadlock: graph acyclic but unsortable (internal error)")
	}
	rep.Order = make([]int, g.N())
	for pos, c := range order {
		rep.Order[c] = pos
	}
	return rep, nil
}

// String renders the report for command-line output.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s: %d channels, %d dependencies: ",
		r.Algorithm, r.Net.Name, r.Channels, r.Deps)
	if r.Free {
		sb.WriteString("DEADLOCK-FREE (acyclic CDG, numbering certificate available)")
		return sb.String()
	}
	fmt.Fprintf(&sb, "DEADLOCK POSSIBLE; dependency cycle of length %d:\n", len(r.Cycle))
	for _, c := range r.Cycle {
		fmt.Fprintf(&sb, "  %s\n", r.Net.ChannelString(c))
	}
	return strings.TrimRight(sb.String(), "\n")
}

// VerifyTurnEquivalence checks that the CDG's edges are exactly the turns
// the routes use (one dependency per used turn per router). This is the
// property that makes §2.4's path-disable enforcement exact: disabling all
// unused turns permits precisely the analyzed dependencies and nothing
// more.
func VerifyTurnEquivalence(t *routing.Tables) error {
	g, err := BuildCDG(t)
	if err != nil {
		return err
	}
	turns, err := t.UsedTurns()
	if err != nil {
		return err
	}
	turnCount := 0
	for _, m := range turns {
		turnCount += len(m)
	}
	if g.M() != turnCount {
		return fmt.Errorf("deadlock: %d CDG dependencies != %d used turns", g.M(), turnCount)
	}
	// Every CDG edge corresponds to an enabled turn.
	for c := 0; c < g.N(); c++ {
		for _, c2 := range g.Out(c) {
			dev := t.Net.ChannelDst(topology.ChannelID(c)).Device
			in := t.Net.ChannelDst(topology.ChannelID(c)).Port
			out := t.Net.ChannelSrc(topology.ChannelID(c2)).Port
			if !turns[dev][routing.Turn{In: in, Out: out}] {
				return fmt.Errorf("deadlock: dependency %s => %s uses a disabled turn (%d->%d at %s)",
					t.Net.ChannelString(topology.ChannelID(c)),
					t.Net.ChannelString(topology.ChannelID(c2)),
					in, out, t.Net.Device(dev).Name)
			}
		}
	}
	return nil
}
