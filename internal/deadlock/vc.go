package deadlock

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Virtual-channel-aware analysis. With V virtual channels the Dally–Seitz
// condition applies to the extended graph whose vertices are (physical
// channel, VC) pairs: a network can be deadlock-free on a physically cyclic
// topology if the VC assignment breaks every loop — the §2 alternative the
// paper weighs against topology-based avoidance.

// BuildCDGVC routes every pair and returns the dependency graph over
// (channel, VC) vertices; vertex index is channel*V + vc.
func BuildCDGVC(t *routing.Tables) (*graph.Digraph, error) {
	v := t.NumVC()
	g := graph.NewDigraph(t.Net.NumChannels() * v)
	seen := make(map[[2]int]bool)
	n := t.Net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			r, err := t.Route(s, d)
			if err != nil {
				return nil, err
			}
			for i := 1; i < len(r.Channels); i++ {
				a := int(r.Channels[i-1])*v + r.VCAt(i-1)
				b := int(r.Channels[i])*v + r.VCAt(i)
				key := [2]int{a, b}
				if !seen[key] {
					seen[key] = true
					g.AddEdge(a, b)
				}
			}
		}
	}
	return g, nil
}

// VCReport is the outcome of a VC-aware CDG analysis.
type VCReport struct {
	Net        *topology.Network
	Algorithm  string
	NumVC      int
	Free       bool
	Cycle      []VCChannel // witness when !Free
	VCChannels int         // vertices: physical channels x VCs
	Deps       int

	// PhysicalCyclic reports whether the projection onto physical channels
	// alone contains a cycle — true for dateline rings, where the VC
	// assignment is doing the work.
	PhysicalCyclic bool
}

// VCChannel is one vertex of the extended dependency graph.
type VCChannel struct {
	Channel topology.ChannelID
	VC      int
}

// AnalyzeVC builds the (channel, VC) dependency graph and reports freedom,
// along with whether the plain physical-channel graph is cyclic.
func AnalyzeVC(t *routing.Tables) (VCReport, error) {
	g, err := BuildCDGVC(t)
	if err != nil {
		return VCReport{}, err
	}
	rep := VCReport{
		Net:        t.Net,
		Algorithm:  t.Algorithm,
		NumVC:      t.NumVC(),
		VCChannels: g.N(),
		Deps:       g.M(),
	}
	if cyc, cyclic := g.FindCycle(); cyclic {
		for _, x := range cyc {
			rep.Cycle = append(rep.Cycle, VCChannel{
				Channel: topology.ChannelID(x / rep.NumVC),
				VC:      x % rep.NumVC,
			})
		}
	} else {
		rep.Free = true
	}

	phys, err := BuildCDG(t)
	if err != nil {
		return VCReport{}, err
	}
	rep.PhysicalCyclic = !phys.Acyclic()
	return rep, nil
}

// String renders the VC report.
func (r VCReport) String() string {
	s := fmt.Sprintf("%s on %s with %d VCs: %d vc-channels, %d dependencies: ",
		r.Algorithm, r.Net.Name, r.NumVC, r.VCChannels, r.Deps)
	if r.Free {
		s += "DEADLOCK-FREE"
		if r.PhysicalCyclic {
			s += " (physical channel graph IS cyclic; the VC assignment breaks the loops)"
		}
		return s
	}
	s += fmt.Sprintf("DEADLOCK POSSIBLE; cycle of %d vc-channels:", len(r.Cycle))
	for _, c := range r.Cycle {
		s += fmt.Sprintf("\n  %s vc%d", r.Net.ChannelString(c.Channel), c.VC)
	}
	return s
}
