package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/contention"
	"repro/internal/routing"
	"repro/internal/topology"
)

// wellFormed checks the output parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func TestFractahedronSVG(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	var buf bytes.Buffer
	if err := WriteFractahedronSVG(&buf, f, Options{}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	wellFormed(t, svg)
	if got := strings.Count(svg, "<rect"); got != f.NumRouters() {
		t.Errorf("rects = %d, want %d routers", got, f.NumRouters())
	}
	if got := strings.Count(svg, "<circle"); got != f.NumNodes() {
		t.Errorf("circles = %d, want %d nodes", got, f.NumNodes())
	}
	if got := strings.Count(svg, "<line"); got != f.NumLinks() {
		t.Errorf("lines = %d, want %d links", got, f.NumLinks())
	}
}

func TestFatTreeSVG(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 16)
	var buf bytes.Buffer
	if err := WriteFatTreeSVG(&buf, ft, Options{}); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.String())
	if got := strings.Count(buf.String(), "<rect"); got != ft.NumRouters() {
		t.Errorf("rects = %d, want %d", got, ft.NumRouters())
	}
}

func TestGenericSVGWithHighlight(t *testing.T) {
	c := topology.NewCCC(3)
	tb := routing.UpDownGeneric(c.Network, c.Routers[0][0])
	r, err := tb.Route(0, 23)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, c.Network, c.Routers[0][0], Options{Highlight: r.Channels}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	wellFormed(t, svg)
	// The highlighted route must appear as thick red strokes, one per
	// distinct link of the route.
	if got := strings.Count(svg, `stroke="#d40000"`); got != len(r.Channels) {
		t.Errorf("highlighted lines = %d, want %d", got, len(r.Channels))
	}
}

func TestSVGEscapesNames(t *testing.T) {
	n := topology.New("a<b>&c")
	r0 := n.AddRouter("r<&>", 2)
	nd := n.AddNode("n<&>")
	n.ConnectNext(r0, nd)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, n, r0, Options{}); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.String())
	if strings.Contains(buf.String(), "r<&>") {
		t.Error("unescaped device name in SVG")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestWeightedRendering(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(1, false))
	tb := routing.Fractahedron(f)
	prof, err := contention.Utilization(tb)
	if err != nil {
		t.Fatal(err)
	}
	weights := make(map[topology.LinkID]float64)
	for ch, c := range prof.PerChannel {
		weights[f.ChannelLink(ch)] += float64(c)
	}
	var buf bytes.Buffer
	if err := WriteFractahedronSVG(&buf, f, Options{Weights: weights}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	wellFormed(t, svg)
	// Heavy links should draw wider than 1px somewhere.
	if !strings.Contains(svg, `stroke-width="5"`) {
		t.Error("no heavy link rendered at max width")
	}
}

func TestFanoutFractahedronSVG(t *testing.T) {
	cfg := topology.Tetra(1, false)
	cfg.Fanout = true
	f := topology.NewFractahedron(cfg)
	var buf bytes.Buffer
	if err := WriteFractahedronSVG(&buf, f, Options{}); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.String())
	if got := strings.Count(buf.String(), "<rect"); got != f.NumRouters() {
		t.Errorf("rects = %d, want %d (tetra + fan-outs)", got, f.NumRouters())
	}
}
