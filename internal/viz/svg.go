// Package viz renders networks as SVG drawings: routers as rectangles, end
// nodes as circles, links as lines, laid out in layers. Fractahedrons and
// fat trees use their structural levels (the style of the paper's Figures
// 5-7, which draw the fractahedron "in the style of a fat tree"); any other
// topology is laid out by breadth-first distance from a root router.
package viz

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/topology"
)

// Options tunes the rendering.
type Options struct {
	// CellW and CellH are the horizontal and vertical device spacings in
	// pixels (defaults 56 and 96).
	CellW, CellH int
	// Highlight marks a set of channels to stroke in a distinct color —
	// used to draw a route or a witness cycle over the topology.
	Highlight []topology.ChannelID
	// Weights, when non-nil, colors each link by relative load (e.g. the
	// utilization profile): heavier links draw thicker and redder. Values
	// are normalized against the maximum present.
	Weights map[topology.LinkID]float64
}

func (o Options) withDefaults() Options {
	if o.CellW <= 0 {
		o.CellW = 56
	}
	if o.CellH <= 0 {
		o.CellH = 96
	}
	return o
}

// layerFunc assigns each device a layer index (smaller = drawn higher).
type layerFunc func(topology.DeviceID) int

// WriteSVG renders the network with devices grouped into layers by BFS
// distance from the given root router (end nodes hang one layer below
// their router).
func WriteSVG(w io.Writer, net *topology.Network, root topology.DeviceID, opt Options) error {
	levels := bfsLevels(net, root)
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	return render(w, net, opt, func(d topology.DeviceID) int {
		dev := net.Device(d)
		if dev.Kind == topology.Node {
			return maxLevel + 1
		}
		return levels[d]
	})
}

// WriteFractahedronSVG renders a fractahedron with one row per recursion
// level: the top ensemble first, fan-out routers and end nodes at the
// bottom — the orientation of the paper's Figure 7.
func WriteFractahedronSVG(w io.Writer, f *topology.Fractahedron, opt Options) error {
	top := f.Cfg.Levels + 1
	return render(w, f.Network, opt, func(d topology.DeviceID) int {
		if f.Device(d).Kind == topology.Node {
			return top
		}
		m := f.Meta(d)
		return f.Cfg.Levels - m.Level // level N at row 0; fan-outs (level 0) above nodes
	})
}

// WriteFatTreeSVG renders a fat tree with the roots on top.
func WriteFatTreeSVG(w io.Writer, ft *topology.FatTree, opt Options) error {
	return render(w, ft.Network, opt, func(d topology.DeviceID) int {
		if ft.Device(d).Kind == topology.Node {
			return ft.Levels
		}
		return ft.Levels - ft.Meta(d).Level
	})
}

func render(w io.Writer, net *topology.Network, opt Options, layer layerFunc) error {
	opt = opt.withDefaults()

	// Group devices by layer, order within a layer by ID (builders create
	// devices in structural order, so this keeps siblings adjacent).
	byLayer := make(map[int][]topology.DeviceID)
	minLayer, maxLayer := 0, 0
	for _, d := range net.Devices() {
		l := layer(d.ID)
		byLayer[l] = append(byLayer[l], d.ID)
		if l < minLayer {
			minLayer = l
		}
		if l > maxLayer {
			maxLayer = l
		}
	}
	widest := 0
	for _, ds := range byLayer {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		if len(ds) > widest {
			widest = len(ds)
		}
	}

	type point struct{ x, y int }
	pos := make(map[topology.DeviceID]point, net.NumDevices())
	width := widest*opt.CellW + opt.CellW
	height := (maxLayer-minLayer+1)*opt.CellH + opt.CellH
	for l := minLayer; l <= maxLayer; l++ {
		ds := byLayer[l]
		span := len(ds) * opt.CellW
		x0 := (width - span) / 2
		for i, d := range ds {
			pos[d] = point{x0 + i*opt.CellW + opt.CellW/2, (l-minLayer)*opt.CellH + opt.CellH/2}
		}
	}

	highlight := make(map[topology.LinkID]bool, len(opt.Highlight))
	for _, ch := range opt.Highlight {
		highlight[net.ChannelLink(ch)] = true
	}
	maxWeight := 0.0
	for _, w := range opt.Weights {
		if w > maxWeight {
			maxWeight = w
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<title>%s</title>`+"\n", xmlEscape(net.Name))
	// Links first so devices draw over them.
	for _, l := range net.Links() {
		a, b := pos[l.A.Device], pos[l.B.Device]
		stroke, sw := "#999", 1
		if maxWeight > 0 {
			frac := opt.Weights[l.ID] / maxWeight
			// Gray (light load) to red (heavy), width 1..5.
			stroke = fmt.Sprintf("#%02x%02x%02x",
				0x99+int(frac*(0xd4-0x99)), int((1-frac)*0x99), int((1-frac)*0x99))
			sw = 1 + int(frac*4)
		}
		if highlight[l.ID] {
			stroke, sw = "#d40000", 3
		}
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="%d"/>`+"\n",
			a.x, a.y, b.x, b.y, stroke, sw)
	}
	for _, d := range net.Devices() {
		p := pos[d.ID]
		if d.Kind == topology.Router {
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="28" height="18" fill="#e8eefc" stroke="#335"/>`+"\n",
				p.x-14, p.y-9)
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="7" text-anchor="middle">%s</text>`+"\n",
				p.x, p.y+2, xmlEscape(d.Name))
		} else {
			fmt.Fprintf(&sb, `<circle cx="%d" cy="%d" r="7" fill="#f6e8c8" stroke="#553"/>`+"\n", p.x, p.y)
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="6" text-anchor="middle">%s</text>`+"\n",
				p.x, p.y+2, xmlEscape(d.Name))
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func bfsLevels(net *topology.Network, root topology.DeviceID) map[topology.DeviceID]int {
	if net.Device(root).Kind != topology.Router {
		panic(fmt.Sprintf("viz: root %d is not a router", root))
	}
	lvl := map[topology.DeviceID]int{root: 0}
	queue := []topology.DeviceID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 0; p < net.Device(u).Ports; p++ {
			l, ok := net.LinkAt(u, p)
			if !ok {
				continue
			}
			v := net.OtherEnd(l, u).Device
			if net.Device(v).Kind != topology.Router {
				continue
			}
			if _, seen := lvl[v]; !seen {
				lvl[v] = lvl[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return lvl
}

func xmlEscape(s string) string {
	var sb strings.Builder
	_ = xml.EscapeText(&sb, []byte(s))
	return sb.String()
}
