// Package router models the ServerNet 6-port router ASIC's configuration
// surface: destination-indexed routing tables (held in package routing) and
// the per-port path-disable registers of §2.4, which restrict the turns a
// router will perform regardless of what the routing table says. Disables
// are the hardware backstop that keeps the network deadlock-free even if a
// fault corrupts a routing table.
package router

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Disables is a per-router turn permission matrix: Allowed(dev, in, out)
// reports whether a packet that entered router dev on port in may leave on
// port out.
type Disables struct {
	net     *topology.Network
	allowed map[topology.DeviceID][][]bool
}

// AllowAll returns a permission matrix with every turn enabled except
// u-turns (in == out), which ServerNet routers never perform.
func AllowAll(net *topology.Network) *Disables {
	d := &Disables{net: net, allowed: make(map[topology.DeviceID][][]bool)}
	for _, dev := range net.Devices() {
		if dev.Kind != topology.Router {
			continue
		}
		m := newMatrix(dev.Ports)
		for in := 0; in < dev.Ports; in++ {
			for out := 0; out < dev.Ports; out++ {
				m[in][out] = in != out
			}
		}
		d.allowed[dev.ID] = m
	}
	return d
}

// FromTables computes the minimal disable configuration for a routing: only
// the turns the routing's routes actually use are enabled. Because the
// channel dependency graph's edges coincide exactly with used turns (see
// internal/deadlock), a network whose CDG is acyclic remains deadlock-free
// under ANY table contents once these disables are loaded.
func FromTables(t *routing.Tables) (*Disables, error) {
	turns, err := t.UsedTurns()
	if err != nil {
		return nil, err
	}
	return FromTurns(t.Net, turns), nil
}

// FromTurns builds the disable configuration enabling exactly the given
// per-router turn sets. Callers that already swept every route (the fabric
// verifier's fault enumeration, which collects turns and dependency edges
// in one pass) use it to recompute path-disables for a degraded fabric
// without routing all pairs a second time.
func FromTurns(net *topology.Network, turns map[topology.DeviceID]map[routing.Turn]bool) *Disables {
	d := &Disables{net: net, allowed: make(map[topology.DeviceID][][]bool)}
	for _, dev := range net.Devices() {
		if dev.Kind != topology.Router {
			continue
		}
		m := newMatrix(dev.Ports)
		for turn := range turns[dev.ID] {
			m[turn.In][turn.Out] = true
		}
		d.allowed[dev.ID] = m
	}
	return d
}

// Allowed reports whether the turn in -> out is enabled at router dev. End
// nodes have no disable logic; queries against them panic.
func (d *Disables) Allowed(dev topology.DeviceID, in, out int) bool {
	m, ok := d.allowed[dev]
	if !ok {
		panic(fmt.Sprintf("router: device %d has no disable matrix (not a router?)", dev))
	}
	return m[in][out]
}

// Row returns the permission row for one input port of a router: Row(dev,
// in)[out] == Allowed(dev, in, out). The slice aliases the live matrix, so
// later Enable/Disable calls remain visible through it — which is what lets
// the simulator hoist the map lookup out of its per-cycle hot path without
// caching stale permissions. Queries against non-routers panic, as Allowed
// does.
func (d *Disables) Row(dev topology.DeviceID, in int) []bool {
	m, ok := d.allowed[dev]
	if !ok {
		panic(fmt.Sprintf("router: device %d has no disable matrix (not a router?)", dev))
	}
	return m[in]
}

// Disable turns off a specific turn, modeling an operator-configured
// restriction (the unidirectional arrow disables of Figure 2).
func (d *Disables) Disable(dev topology.DeviceID, in, out int) {
	d.allowed[dev][in][out] = false
}

// Enable turns a specific turn on.
func (d *Disables) Enable(dev topology.DeviceID, in, out int) {
	d.allowed[dev][in][out] = true
}

// Counts reports the enabled and disabled turn totals across all routers
// (u-turns excluded from both).
func (d *Disables) Counts() (enabled, disabled int) {
	for _, m := range d.allowed {
		for in := range m {
			for out := range m[in] {
				if in == out {
					continue
				}
				if m[in][out] {
					enabled++
				} else {
					disabled++
				}
			}
		}
	}
	return enabled, disabled
}

func newMatrix(ports int) [][]bool {
	m := make([][]bool, ports)
	for i := range m {
		m[i] = make([]bool, ports)
	}
	return m
}
