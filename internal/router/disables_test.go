package router

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestAllowAllExceptUTurns(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	d := AllowAll(fm.Network)
	for _, r := range fm.Routers {
		for in := 0; in < 6; in++ {
			for out := 0; out < 6; out++ {
				want := in != out
				if d.Allowed(r, in, out) != want {
					t.Errorf("router %d turn %d->%d allowed=%v, want %v",
						r, in, out, d.Allowed(r, in, out), want)
				}
			}
		}
	}
	enabled, disabled := d.Counts()
	if enabled != 3*30 || disabled != 0 {
		t.Errorf("counts = %d enabled %d disabled, want 90/0", enabled, disabled)
	}
}

func TestFromTablesEnablesExactlyUsedTurns(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)
	d, err := FromTables(tb)
	if err != nil {
		t.Fatal(err)
	}
	turns, err := tb.UsedTurns()
	if err != nil {
		t.Fatal(err)
	}
	wantEnabled := 0
	for _, m := range turns {
		wantEnabled += len(m)
	}
	enabled, disabled := d.Counts()
	if enabled != wantEnabled {
		t.Errorf("enabled = %d, want %d", enabled, wantEnabled)
	}
	if enabled+disabled != 3*30 {
		t.Errorf("enabled+disabled = %d, want 90", enabled+disabled)
	}
	// Spot check: direct routing never turns router-to-router at an
	// intermediate hop, so inter-router input -> inter-router output is
	// disabled everywhere.
	for _, r := range fm.Routers {
		for in := 0; in < 2; in++ { // intra ports on a 3-group are 0,1
			for out := 0; out < 2; out++ {
				if in != out && d.Allowed(r, in, out) {
					t.Errorf("router %d transit turn %d->%d should be disabled", r, in, out)
				}
			}
		}
	}
}

func TestDisableEnableRoundTrip(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	d := AllowAll(fm.Network)
	r := fm.Routers[0]
	d.Disable(r, 1, 2)
	if d.Allowed(r, 1, 2) {
		t.Error("turn still allowed after Disable")
	}
	d.Enable(r, 1, 2)
	if !d.Allowed(r, 1, 2) {
		t.Error("turn still disabled after Enable")
	}
}

func TestAllowedPanicsOnNode(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	d := AllowAll(fm.Network)
	defer func() {
		if recover() == nil {
			t.Error("Allowed on an end node did not panic")
		}
	}()
	d.Allowed(fm.NodeByIndex(0), 0, 0)
}
