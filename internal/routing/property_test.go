package routing

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// Property: any fractahedron configuration (group 3..5, down 1..2, levels
// 1..2, thin or fat) routes all pairs, with simple paths, within the
// generalized delay bound (4N-2 thin, 3N-1 fat), and the max-delay bound is
// tight for some pair.
func TestFractahedronRoutingProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := topology.FractConfig{
			Group:  3 + rng.Intn(3),
			Down:   1 + rng.Intn(2),
			Levels: 1 + rng.Intn(2),
			Fat:    rng.Intn(2) == 0,
		}
		fr := topology.NewFractahedron(cfg)
		tb := Fractahedron(fr)
		bound := 4*cfg.Levels - 2
		if cfg.Fat {
			bound = 3*cfg.Levels - 1
		}
		if cfg.Levels == 1 {
			bound = 2
		}
		max := 0
		n := fr.NumNodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				r, err := tb.Route(s, d)
				if err != nil {
					t.Logf("cfg %+v: %v", cfg, err)
					return false
				}
				if !simplePath(r) {
					t.Logf("cfg %+v: route %d->%d revisits a device", cfg, s, d)
					return false
				}
				if r.RouterHops() > bound {
					t.Logf("cfg %+v: route %d->%d takes %d hops > bound %d", cfg, s, d, r.RouterHops(), bound)
					return false
				}
				if r.RouterHops() > max {
					max = r.RouterHops()
				}
			}
		}
		if n > 1 && max != bound {
			t.Logf("cfg %+v: max hops %d, bound %d not attained", cfg, max, bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: any D-U fat tree routes all pairs with simple paths of at most
// 2*Levels-1 hops, and trimmed instances (node counts that don't fill the
// tree) still work.
func TestFatTreeRoutingProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		u := 1 + rng.Intn(3)
		nodes := 2 + rng.Intn(60)
		ft := topology.NewFatTree(d, u, nodes)
		tb := FatTree(ft)
		bound := 2*ft.Levels - 1
		for s := 0; s < nodes; s++ {
			for dd := 0; dd < nodes; dd++ {
				if s == dd {
					continue
				}
				r, err := tb.Route(s, dd)
				if err != nil {
					t.Logf("d=%d u=%d n=%d: %v", d, u, nodes, err)
					return false
				}
				if !simplePath(r) || r.RouterHops() > bound {
					t.Logf("d=%d u=%d n=%d: bad route %d->%d (%d hops)", d, u, nodes, s, dd, r.RouterHops())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: generic up*/down* routes any random connected multi-router
// topology completely, with simple paths.
func TestUpDownGenericOnRandomTopologies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := 3 + rng.Intn(10)
		net := topology.New("random")
		routers := make([]topology.DeviceID, nr)
		for i := range routers {
			routers[i] = net.AddRouter("r", 8)
		}
		// Random spanning tree plus extra chords.
		for i := 1; i < nr; i++ {
			net.ConnectNext(routers[i], routers[rng.Intn(i)])
		}
		for k := 0; k < rng.Intn(nr); k++ {
			a, b := rng.Intn(nr), rng.Intn(nr)
			if a == b || net.UsedPorts(routers[a]) >= 6 || net.UsedPorts(routers[b]) >= 6 {
				continue
			}
			net.ConnectNext(routers[a], routers[b])
		}
		// One or two nodes per router, within port budget.
		for i := range routers {
			for j := 0; j < 1+rng.Intn(2) && net.UsedPorts(routers[i]) < 8; j++ {
				nd := net.AddNode("n")
				net.ConnectNext(routers[i], nd)
			}
		}
		if err := net.Validate(); err != nil {
			t.Logf("builder bug: %v", err)
			return false
		}
		tb := UpDownGeneric(net, routers[rng.Intn(nr)])
		n := net.NumNodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				r, err := tb.Route(s, d)
				if err != nil {
					t.Logf("%v", err)
					return false
				}
				if !simplePath(r) {
					t.Logf("route %d->%d revisits a device", s, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// simplePath reports whether a route visits no device twice.
func simplePath(r Route) bool {
	seen := make(map[topology.DeviceID]bool, len(r.Devices))
	for _, d := range r.Devices {
		if seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}

// ForAllPairs produces the same aggregate regardless of worker count, and
// propagates visit errors.
func TestForAllPairsDeterministicAcrossWorkers(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := Fractahedron(f)
	run := func(workers int) (int, int) {
		total, pairs := 0, 0
		err := tb.ForAllPairs(workers,
			func() any { v := [2]int{}; return &v },
			func(acc any, r Route) error {
				a := acc.(*[2]int)
				a[0] += r.RouterHops()
				a[1]++
				return nil
			},
			func(acc any) error {
				a := acc.(*[2]int)
				total += a[0]
				pairs += a[1]
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return total, pairs
	}
	t1, p1 := run(1)
	t4, p4 := run(4)
	t0, p0 := run(0)
	if t1 != t4 || t1 != t0 || p1 != p4 || p1 != p0 || p1 != 64*63 {
		t.Errorf("inconsistent: (%d,%d) (%d,%d) (%d,%d)", t1, p1, t4, p4, t0, p0)
	}
}

func TestForAllPairsPropagatesErrors(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(1, true))
	tb := Fractahedron(f)
	err := tb.ForAllPairs(3,
		func() any { return nil },
		func(acc any, r Route) error {
			if r.Src == 5 && r.Dst == 2 {
				return errSentinel
			}
			return nil
		},
		func(acc any) error { return nil })
	if err == nil {
		t.Fatal("visit error swallowed")
	}
}

var errSentinel = fmt.Errorf("sentinel")
