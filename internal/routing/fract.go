package routing

import "repro/internal/topology"

// Fractahedron routes a thin or fat fractahedron with the paper's
// depth-first algorithm (§2.2–2.4): address digits are examined from
// high-order to low-order; while the digits above the current level do not
// match, the packet is sent to the next higher level, and on the way down
// each ensemble matches one more digit, taking one intra-ensemble hop when
// the packet arrived at the wrong router of the group.
//
// In the fat variant every router owns an up link, so the ascent goes
// "straight up the tree without taking any inter-tetrahedral links"; in the
// thin variant only router 0 of each ensemble connects upward, so ascending
// packets take one intra hop per level to reach it. Descents never ascend
// again, so the channel dependency graph is loop-free despite the multiple
// layers — the property §2.4 claims and internal/deadlock verifies.
func Fractahedron(f *topology.Fractahedron) *Tables {
	cfg := f.Cfg
	return Build(f.Network, fractName(cfg), func(router topology.DeviceID, dst int) int {
		m := f.Meta(router)
		a := f.AddrOfNode(dst)

		if m.Level == 0 {
			// Fan-out router: descend toward the child subtree holding
			// dst, or ascend if dst lies outside this router's span.
			lo, hi := f.FanoutSpan(router)
			if dst >= lo && dst < hi {
				sub := (hi - lo) / cfg.FanoutNodesOrDefault()
				return (dst - lo) / sub
			}
			return f.UpPort()
		}

		if f.EnsembleAt(a, m.Level) != m.Ensemble {
			// Destination outside this ensemble: ascend.
			if cfg.Fat || m.R == 0 {
				return f.UpPort()
			}
			return f.IntraPort(m.R, 0) // thin: reach the ensemble's up router
		}

		// Destination below this ensemble: match this level's digit.
		d := f.Digit(a, m.Level)
		r, p := d/cfg.Down, d%cfg.Down
		if m.R != r {
			return f.IntraPort(m.R, r)
		}
		return p
	})
}

func fractName(cfg topology.FractConfig) string {
	if cfg.Fat {
		return "fractahedron-fat"
	}
	return "fractahedron-thin"
}
