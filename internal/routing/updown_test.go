package routing

import (
	"testing"

	"repro/internal/topology"
)

// upDownTargets enumerates (network, name) pairs the generic routing must
// handle: regular, irregular, and cyclic topologies alike.
func upDownTargets() []struct {
	name string
	net  *topology.Network
	root topology.DeviceID
} {
	ccc := topology.NewCCC(3)
	se := topology.NewShuffleExchange(4)
	torus := topology.NewTorus(3, 3, 1)
	mesh := topology.NewMesh(3, 3, 1)
	fract := topology.NewFractahedron(topology.Tetra(2, true))
	return []struct {
		name string
		net  *topology.Network
		root topology.DeviceID
	}{
		{"ccc-3", ccc.Network, ccc.Routers[0][0]},
		{"shuffle-exchange-4", se.Network, se.Routers[0]},
		{"torus-3x3", torus.Network, torus.RouterAt[0][0]},
		{"mesh-3x3", mesh.Network, mesh.RouterAt[1][1]},
		{"fat-fract-2", fract.Network, fract.RouterAt(topology.FractRouter{Level: 2, Ensemble: 0, Layer: 0, R: 0})},
	}
}

func TestUpDownGenericRoutesEverything(t *testing.T) {
	for _, tc := range upDownTargets() {
		tb := UpDownGeneric(tc.net, tc.root)
		if err := tb.Verify(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

// The defining invariant: no route ever takes an up step after a down step.
func TestUpDownGenericPhaseInvariant(t *testing.T) {
	for _, tc := range upDownTargets() {
		tb := UpDownGeneric(tc.net, tc.root)
		// Recompute the BFS levels to classify steps.
		lvl := routerLevels(tc.net, tc.root)
		n := tc.net.NumNodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				r, err := tb.Route(s, d)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				descended := false
				for i := 1; i < len(r.Channels)-1; i++ {
					u := tc.net.ChannelSrc(r.Channels[i]).Device
					v := tc.net.ChannelDst(r.Channels[i]).Device
					upstep := lvl[v] < lvl[u] || (lvl[v] == lvl[u] && v < u)
					if upstep && descended {
						t.Fatalf("%s: route %d->%d turns upward after descending", tc.name, s, d)
					}
					if !upstep {
						descended = true
					}
				}
			}
		}
	}
}

func routerLevels(net *topology.Network, root topology.DeviceID) map[topology.DeviceID]int {
	lvl := map[topology.DeviceID]int{root: 0}
	queue := []topology.DeviceID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 0; p < net.Device(u).Ports; p++ {
			l, ok := net.LinkAt(u, p)
			if !ok {
				continue
			}
			v := net.OtherEnd(l, u).Device
			if net.Device(v).Kind != topology.Router {
				continue
			}
			if _, seen := lvl[v]; !seen {
				lvl[v] = lvl[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return lvl
}

func TestCCCStructure(t *testing.T) {
	c := topology.NewCCC(3)
	if c.NumRouters() != 24 || c.NumNodes() != 24 {
		t.Fatalf("routers=%d nodes=%d, want 24/24", c.NumRouters(), c.NumNodes())
	}
	// Links: cycles 8*3 + cube 3*8/2 + nodes 24 = 24+12+24 = 60.
	if c.NumLinks() != 60 {
		t.Errorf("links = %d, want 60", c.NumLinks())
	}
	// Cube link of (w, i) reaches (w^(1<<i), i).
	for w := 0; w < 8; w++ {
		for i := 0; i < 3; i++ {
			l, ok := c.LinkAt(c.Routers[w][i], topology.CCCPortCube)
			if !ok {
				t.Fatalf("(%d,%d) cube port unwired", w, i)
			}
			got := c.OtherEnd(l, c.Routers[w][i]).Device
			if got != c.Routers[w^(1<<i)][i] {
				t.Errorf("(%d,%d) cube link wrong", w, i)
			}
		}
	}
	w, i := c.Position(17)
	if w != 5 || i != 2 {
		t.Errorf("Position(17) = (%d,%d), want (5,2)", w, i)
	}
}

func TestShuffleExchangeStructure(t *testing.T) {
	se := topology.NewShuffleExchange(4)
	if se.NumRouters() != 16 || se.NumNodes() != 16 {
		t.Fatalf("routers=%d nodes=%d", se.NumRouters(), se.NumNodes())
	}
	// Exchange partner of w is w^1; shuffle of 0b0011 is 0b0110.
	if se.Rotl(0b0011) != 0b0110 {
		t.Errorf("Rotl(0011) = %04b", se.Rotl(0b0011))
	}
	// Fixed points have no shuffle link: only exchange + node wired.
	for _, w := range []int{0, 15} {
		if got := se.UsedPorts(se.Routers[w]); got != 2 {
			t.Errorf("router %04b uses %d ports, want 2", w, got)
		}
	}
	// 2-cycle routers (0101 <-> 1010) share a single shuffle cable.
	l1, ok1 := se.LinkAt(se.Routers[0b0101], topology.SEPortShuffle)
	l2, ok2 := se.LinkAt(se.Routers[0b1010], topology.SEPortShuffle)
	if !ok1 || !ok2 || l1 != l2 {
		t.Errorf("2-cycle shuffle cable wrong: %v/%v %d/%d", ok1, ok2, l1, l2)
	}
}

// §2 lists CCC and shuffle-exchange among MPP topologies; with up*/down*
// tables both are serviceable but pay in hop count against a fractahedron
// of comparable size.
func TestBackgroundTopologyHops(t *testing.T) {
	ccc := topology.NewCCC(3)
	tb := UpDownGeneric(ccc.Network, ccc.Routers[0][0])
	max, total, pairs := maxHops(t, tb)
	if max < 6 {
		t.Errorf("CCC-3 max hops = %d, expected at least the diameter", max)
	}
	avg := float64(total) / float64(pairs)
	if avg < 3 || avg > 9 {
		t.Errorf("CCC-3 avg hops = %.2f out of plausible range", avg)
	}
}
