package routing

import (
	"repro/internal/topology"
)

// FullMesh routes a fully-connected router group (Figure 3): a packet not
// at its destination's router crosses the single intra-group link toward it.
// Routing consults only the high bits of the destination address — the
// property §2.1 highlights for the four-router tetrahedron.
func FullMesh(fm *topology.FullMesh) *Tables {
	idx := make(map[topology.DeviceID]int, fm.M)
	for i, r := range fm.Routers {
		idx[r] = i
	}
	return Build(fm.Network, "fullmesh", func(router topology.DeviceID, dst int) int {
		r := idx[router]
		dr := fm.RouterOfNode(dst)
		if r == dr {
			return fm.NodePort(dst)
		}
		return fm.IntraPort(r, dr)
	})
}

// MeshDimOrder routes a 2-D mesh with dimension-order routing (§2's
// deadlock-avoidance technique and §3.1's baseline). With yFirst true the
// packet first corrects its row, then its column — the orientation under
// which the paper's worst-case transfers all turn at the same corner.
func MeshDimOrder(m *topology.Mesh, yFirst bool) *Tables {
	name := "mesh-xy"
	if yFirst {
		name = "mesh-yx"
	}
	return Build(m.Network, name, func(router topology.DeviceID, dst int) int {
		x, y := m.Coord(router)
		dx, dy := m.NodeCoord(dst)
		stepX := func() int {
			if dx > x {
				return topology.MeshPortXPlus
			}
			return topology.MeshPortXMinus
		}
		stepY := func() int {
			if dy > y {
				return topology.MeshPortYPlus
			}
			return topology.MeshPortYMinus
		}
		switch {
		case yFirst && dy != y:
			return stepY()
		case dx != x:
			return stepX()
		case dy != y:
			return stepY()
		default:
			return m.NodePort(dst)
		}
	})
}

// HypercubeECube routes a hypercube with dimension-order (e-cube) routing:
// differing address bits are corrected from the lowest dimension up. This is
// the restrictive deadlock-free baseline §2 describes.
func HypercubeECube(h *topology.Hypercube) *Tables {
	idx := make(map[topology.DeviceID]int, len(h.Routers))
	for i, r := range h.Routers {
		idx[r] = i
	}
	return Build(h.Network, "hypercube-ecube", func(router topology.DeviceID, dst int) int {
		w := idx[router]
		d := h.RouterOfNode(dst)
		diff := w ^ d
		if diff == 0 {
			return h.NodePort(dst)
		}
		for k := 0; k < h.Dim; k++ {
			if diff&(1<<k) != 0 {
				return k
			}
		}
		panic("unreachable")
	})
}

// HypercubeUpDown routes a hypercube with the path-disable discipline of
// Figure 2, expressed as an up*/down* order rooted at router 0: a packet
// first clears the address bits it has in excess of the destination
// (descending toward the root), then sets the bits it is missing (ascending
// away from it). Every minimal route of this shape is permitted; the
// dependency "set then clear" never occurs, so all cycles — faces as well
// as the 6- and 8-link loops — are broken. The cost is the uneven link
// utilization §2 describes: links incident to router 0 carry through
// traffic while links near the all-ones router serve only that corner.
func HypercubeUpDown(h *topology.Hypercube) *Tables {
	idx := make(map[topology.DeviceID]int, len(h.Routers))
	for i, r := range h.Routers {
		idx[r] = i
	}
	return Build(h.Network, "hypercube-updown", func(router topology.DeviceID, dst int) int {
		w := idx[router]
		d := h.RouterOfNode(dst)
		if w == d {
			return h.NodePort(dst)
		}
		if extra := w &^ d; extra != 0 {
			return lowestBit(extra) // clear phase, toward the root
		}
		return lowestBit(d &^ w) // set phase, away from the root
	})
}

// RingClockwise routes a ring strictly clockwise. Its channel dependency
// graph is a single loop around the ring — the Figure 1 deadlock scenario —
// and the simulator demonstrates the resulting wormhole deadlock.
func RingClockwise(r *topology.Ring) *Tables {
	idx := make(map[topology.DeviceID]int, len(r.Routers))
	for i, rt := range r.Routers {
		idx[rt] = i
	}
	return Build(r.Network, "ring-cw", func(router topology.DeviceID, dst int) int {
		w := idx[router]
		d := r.RouterOfNode(dst)
		if w == d {
			return r.NodePort(dst)
		}
		return topology.RingPortCW
	})
}

// RingSeamless routes a ring like a line: packets travel in whichever
// direction avoids crossing the seam between router Size-1 and router 0.
// Disabling that one link's use breaks the dependency loop, the ring
// analogue of the disabled paths in Figure 2.
func RingSeamless(r *topology.Ring) *Tables {
	idx := make(map[topology.DeviceID]int, len(r.Routers))
	for i, rt := range r.Routers {
		idx[rt] = i
	}
	return Build(r.Network, "ring-seamless", func(router topology.DeviceID, dst int) int {
		w := idx[router]
		d := r.RouterOfNode(dst)
		if w == d {
			return r.NodePort(dst)
		}
		if d > w {
			return topology.RingPortCW
		}
		return topology.RingPortCCW
	})
}

func lowestBit(x int) int {
	for k := 0; ; k++ {
		if x&(1<<k) != 0 {
			return k
		}
	}
}
