package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Virtual-channel support. The paper's §2 discusses Dally & Seitz's
// alternative to topology-based deadlock avoidance: add virtual channels to
// each physical link and break dependency loops by assigning packets to
// VCs as they progress. ServerNet deliberately rejects this for router
// cost; the repository implements it anyway as the comparison baseline.
//
// A VC assignment is destination-indexed per router, exactly like the
// output-port tables, so real table-lookup hardware could hold it: the VC
// used on the output channel chosen at a router is VCFunc(router, dst).

// VCFunc selects the virtual channel for the output channel a router picks
// toward a destination.
type VCFunc func(router topology.DeviceID, dst int) int

// WithVCs attaches a virtual-channel assignment and VC count to tables.
// Routes produced afterwards carry a parallel VCs slice.
func (t *Tables) WithVCs(numVC int, f VCFunc) *Tables {
	if numVC < 2 {
		panic(fmt.Sprintf("routing: WithVCs needs >= 2 virtual channels, got %d", numVC))
	}
	t.numVC = numVC
	t.vc = f
	return t
}

// NumVC reports the virtual channel count of the routing (1 when no VC
// assignment is attached).
func (t *Tables) NumVC() int {
	if t.numVC == 0 {
		return 1
	}
	return t.numVC
}

// vcAt evaluates the VC assignment at a device (end nodes inject on VC 0).
func (t *Tables) vcAt(dev topology.DeviceID, dst int) int {
	if t.vc == nil || t.Net.Device(dev).Kind != topology.Router {
		return 0
	}
	v := t.vc(dev, dst)
	if v < 0 || v >= t.numVC {
		panic(fmt.Sprintf("routing: VC %d out of range [0,%d) at device %d", v, t.numVC, dev))
	}
	return v
}

// RingDateline routes a ring strictly clockwise like RingClockwise, but
// with the Dally–Seitz dateline discipline over two virtual channels:
// packets travel on VC 0 until they cross the wrap link between router
// Size-1 and router 0, then continue on VC 1. The physical channel cycle
// remains, but the (channel, VC) dependency graph is acyclic, so the
// network is deadlock-free at the price of doubling the router buffers —
// the cost §2 of the paper objects to.
func RingDateline(r *topology.Ring) *Tables {
	idx := make(map[topology.DeviceID]int, len(r.Routers))
	for i, rt := range r.Routers {
		idx[rt] = i
	}
	t := Build(r.Network, "ring-dateline", func(router topology.DeviceID, dst int) int {
		w := idx[router]
		d := r.RouterOfNode(dst)
		if w == d {
			return r.NodePort(dst)
		}
		return topology.RingPortCW
	})
	return t.WithVCs(2, func(router topology.DeviceID, dst int) int {
		w := idx[router]
		d := r.RouterOfNode(dst)
		// Still upstream of the dateline: the route has yet to wrap iff the
		// destination lies clockwise beyond it (w > d means the wrap link
		// is still ahead). After the wrap, w <= d.
		if w > d {
			return 0
		}
		return 1
	})
}

// TorusDateline routes a 2-D torus dimension-order (X rings first, then Y
// rings), each unidirectional ring carrying the dateline discipline on two
// virtual channels. Wrap links are crossed exactly when the destination
// coordinate is behind the current one.
func TorusDateline(m *topology.Mesh) *Tables {
	if !m.Wrap {
		panic("routing: TorusDateline needs a torus")
	}
	t := Build(m.Network, "torus-dateline", func(router topology.DeviceID, dst int) int {
		x, y := m.Coord(router)
		dx, dy := m.NodeCoord(dst)
		if x != dx {
			return topology.MeshPortXPlus
		}
		if y != dy {
			return topology.MeshPortYPlus
		}
		return m.NodePort(dst)
	})
	return t.WithVCs(2, func(router topology.DeviceID, dst int) int {
		x, y := m.Coord(router)
		dx, dy := m.NodeCoord(dst)
		if x != dx {
			if x > dx {
				return 0 // wrap in X still ahead
			}
			return 1
		}
		if y > dy {
			return 0
		}
		return 1
	})
}
