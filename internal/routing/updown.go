package routing

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// UpDownGeneric builds deadlock-free destination-based tables for an
// ARBITRARY connected topology using the up*/down* discipline (the scheme
// Autonet introduced, and the natural generalization of the per-topology
// restrictions §2 of the paper surveys): orient every inter-router link
// toward the router closer to a root (breadth-first level, ties by device
// ID); a legal route climbs zero or more "up" links and then descends zero
// or more "down" links, never turning upward again.
//
// Table-expressibility is preserved by a greedy rule that keeps the walk
// consistent: a router that can reach the destination by a pure-down path
// always takes the best down step (its successor then also can), otherwise
// it takes the best up step. Dependencies therefore run only up->up
// (strictly toward the root), up->down and down->down (strictly away), so
// the channel dependency graph is acyclic on any topology — the price, as
// with Figure 2's hypercube disables, is uneven link utilization near the
// root.
func UpDownGeneric(net *topology.Network, root topology.DeviceID) *Tables {
	if net.Device(root).Kind != topology.Router {
		panic(fmt.Sprintf("routing: up*/down* root %d is not a router", root))
	}
	return upDown(net, root, "updown-generic", nil, nil, true)
}

// UpDownDegraded builds up*/down* tables for a topology with failed
// elements, for online reconfiguration: linkDead and routerDead (either may
// be nil) mask out faulty hardware, and destinations unreachable from a
// router in the surviving root component get table holes (-1) instead of a
// panic — Route/Next surface those as errors, which is what a recovery
// controller wants when the fabric has split. The walk discipline, tie
// breaks, and table expressibility are identical to UpDownGeneric, so the
// same §2.4 argument applies: the swept turn set of the degraded tables is
// acyclic, and minimal disables derived from it keep even stale-route
// traffic deadlock-free.
func UpDownDegraded(net *topology.Network, root topology.DeviceID,
	linkDead func(topology.LinkID) bool,
	routerDead func(topology.DeviceID) bool) (*Tables, error) {
	if net.Device(root).Kind != topology.Router {
		return nil, fmt.Errorf("routing: up*/down* root %d is not a router", root)
	}
	if routerDead != nil && routerDead(root) {
		return nil, fmt.Errorf("routing: up*/down* root %d is itself dead", root)
	}
	return upDown(net, root, "updown-degraded", linkDead, routerDead, false), nil
}

// upDown is the shared up*/down* table builder. strict mode panics when any
// reached router cannot reach a destination (UpDownGeneric's historical
// contract, which the fabric verifier traps); degraded mode records holes.
func upDown(net *topology.Network, root topology.DeviceID, algorithm string,
	linkDead func(topology.LinkID) bool,
	routerDead func(topology.DeviceID) bool, strict bool) *Tables {

	// Breadth-first levels over routers only. Dense device-indexed slices
	// throughout: the fabric verifier rebuilds these tables once per fault
	// inside its single-fault enumeration, so the per-destination loops are
	// hot. level < 0 marks "not a (reached, live) router".
	nDev := net.NumDevices()
	level := make([]int, nDev)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := []topology.DeviceID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 0; p < net.Device(u).Ports; p++ {
			l, ok := net.LinkAt(u, p)
			if !ok || (linkDead != nil && linkDead(l)) {
				continue
			}
			v := net.OtherEnd(l, u).Device
			if net.Device(v).Kind != topology.Router {
				continue
			}
			if routerDead != nil && routerDead(v) {
				continue
			}
			if level[v] < 0 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}

	// higher reports whether v is "above" u (closer to the root).
	higher := func(v, u topology.DeviceID) bool {
		lv, lu := level[v], level[u]
		if lv != lu {
			return lv < lu
		}
		return v < u
	}

	var routers []topology.DeviceID
	for d := topology.DeviceID(0); int(d) < nDev; d++ {
		if level[d] >= 0 {
			routers = append(routers, d)
		}
	}
	// Order from the root outward (the order down-distances propagate in,
	// and the reverse order for up-distances).
	sort.Slice(routers, func(i, j int) bool { return higher(routers[i], routers[j]) })

	type hop struct {
		dist int
		port int
	}

	// Per destination node, compute for every router the best pure-down
	// distance and the best up*/down* distance with consistent next hops.
	// hop.dist == 0 marks "no such path yet" (real distances start at 1).
	nNodes := net.NumNodes()
	downPort := make([][]int, nDev)
	upPort := make([][]int, nDev)
	for _, r := range routers {
		downPort[r] = make([]int, nNodes)
		upPort[r] = make([]int, nNodes)
	}

	down := make([]hop, nDev)
	up := make([]hop, nDev)
	for dst := 0; dst < nNodes; dst++ {
		for _, r := range routers {
			down[r] = hop{}
			up[r] = hop{}
		}
		dstDev := net.NodeByIndex(dst)
		l, wired := net.LinkAt(dstDev, 0)
		if !wired {
			panic(fmt.Sprintf("routing: node %d unwired", dst))
		}
		// The router holding the destination node "reaches it downward"
		// through the node port — unless the node's own link is down or its
		// router is outside the surviving component, which severs the node
		// entirely (every router gets a hole for it).
		far := net.OtherEnd(l, dstDev)
		if (linkDead == nil || !linkDead(l)) && level[far.Device] >= 0 {
			down[far.Device] = hop{dist: 1, port: far.Port}
		}

		// Pure-down distances propagate from routers above to routers
		// below... a down step at u goes to a LOWER router v (higher(u, v)
		// false... v below u) with down[v] known. Process routers from the
		// bottom up? A down path u -> v -> ... descends, so down[u] depends
		// on down[v] for v BELOW u: iterate routers in reverse root-outward
		// order (deepest first).
		for i := len(routers) - 1; i >= 0; i-- {
			u := routers[i]
			best := down[u]
			for p := 0; p < net.Device(u).Ports; p++ {
				l, wired := net.LinkAt(u, p)
				if !wired || (linkDead != nil && linkDead(l)) {
					continue
				}
				v := net.OtherEnd(l, u).Device
				if net.Device(v).Kind != topology.Router || level[v] < 0 || higher(v, u) {
					continue // only true down steps to live routers
				}
				if hv := down[v]; hv.dist > 0 {
					if best.dist == 0 || hv.dist+1 < best.dist {
						best = hop{dist: hv.dist + 1, port: p}
					}
				}
			}
			if best.dist > 0 {
				down[u] = best
			}
		}
		// Up-capable distance: either pure down, or one up step then the
		// neighbor's best. Process from the root outward so up[parent] is
		// final before children consult it.
		for _, u := range routers {
			best := down[u]
			for p := 0; p < net.Device(u).Ports; p++ {
				l, wired := net.LinkAt(u, p)
				if !wired || (linkDead != nil && linkDead(l)) {
					continue
				}
				v := net.OtherEnd(l, u).Device
				if net.Device(v).Kind != topology.Router || level[v] < 0 || !higher(v, u) {
					continue // only true up steps within the live component
				}
				if hv := up[v]; hv.dist > 0 {
					if best.dist == 0 || hv.dist+1 < best.dist {
						best = hop{dist: hv.dist + 1, port: p}
					}
				}
			}
			if best.dist == 0 && strict {
				panic(fmt.Sprintf("routing: up*/down* cannot reach node %d from router %d (disconnected?)", dst, u))
			}
			up[u] = best
		}
		for _, u := range routers {
			if h := down[u]; h.dist > 0 {
				downPort[u][dst] = h.port
			} else {
				downPort[u][dst] = -1
			}
			if h := up[u]; h.dist > 0 {
				upPort[u][dst] = h.port
			} else {
				upPort[u][dst] = -1 // degraded: dst severed from this component
			}
		}
	}

	return Build(net, algorithm, func(r topology.DeviceID, dst int) int {
		if downPort[r] == nil {
			// The router is dead or outside the root component; its table
			// cannot say anything useful.
			if strict {
				panic(fmt.Sprintf("routing: up*/down* router %d unreachable from root %d", r, root))
			}
			return -1
		}
		if p := downPort[r][dst]; p >= 0 {
			return p // pure-down reachable: stay in the down phase
		}
		return upPort[r][dst]
	})
}
