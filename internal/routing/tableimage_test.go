package routing

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestImageMatchesTables(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := Fractahedron(f)
	img := CompileImage(tb)
	if err := VerifyImage(img, tb); err != nil {
		t.Fatal(err)
	}
	// Entries equal the sum of per-router region counts from RegionSizes.
	if img.Entries() != tb.RegionSizes().Total {
		t.Errorf("entries = %d, want %d", img.Entries(), tb.RegionSizes().Total)
	}
}

func TestImageRoundTrip(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	tb := FatTree(ft)
	img := CompileImage(tb)

	var buf bytes.Buffer
	n, err := img.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != img.Algorithm || back.Nodes != img.Nodes {
		t.Errorf("header mismatch: %q/%d vs %q/%d", back.Algorithm, back.Nodes, img.Algorithm, img.Nodes)
	}
	if err := VerifyImage(back, tb); err != nil {
		t.Fatal(err)
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("not a table image"),
		[]byte("SNRT1\n"), // truncated after magic
	} {
		if _, err := ReadImage(bytes.NewReader(data)); err == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
}

func TestImageLookupMisses(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := FullMesh(fm)
	img := CompileImage(tb)
	if img.Lookup(fm.NodeByIndex(0), 1) != -1 {
		t.Error("lookup on a non-router device succeeded")
	}
	if img.Lookup(fm.Routers[0], 99) != -1 {
		t.Error("lookup past the address space succeeded")
	}
}

// Property: compile/serialize/parse/verify succeeds for random topologies.
func TestImageRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tb *Tables
		switch rng.Intn(4) {
		case 0:
			tb = Fractahedron(topology.NewFractahedron(topology.FractConfig{
				Group: 3 + rng.Intn(2), Down: 1 + rng.Intn(2), Levels: 1 + rng.Intn(2),
				Fat: rng.Intn(2) == 0,
			}))
		case 1:
			tb = FatTree(topology.NewFatTree(2+rng.Intn(3), 1+rng.Intn(2), 4+rng.Intn(30)))
		case 2:
			tb = MeshDimOrder(topology.NewMesh(2+rng.Intn(4), 2+rng.Intn(4), 1), rng.Intn(2) == 0)
		default:
			c := topology.NewCCC(3)
			tb = UpDownGeneric(c.Network, c.Routers[rng.Intn(8)][rng.Intn(3)])
		}
		img := CompileImage(tb)
		var buf bytes.Buffer
		if _, err := img.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadImage(&buf)
		if err != nil {
			return false
		}
		return VerifyImage(back, tb) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
