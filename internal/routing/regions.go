package routing

import (
	"sort"

	"repro/internal/topology"
)

// Region-table accounting. ServerNet routers route "by looking up entries
// in the routing table inside each router" (§2.3), and real tables hold
// address REGIONS — contiguous destination ranges sharing an output port —
// rather than one entry per node. §2.1 argues the tetrahedral group is
// attractive because it "routes packets based on exactly two bits of the
// destination node identifier", which "prevents sparse usage of the node
// address space and simplifies the routing algorithm": in region terms, a
// fractahedron router needs only a handful of entries however large the
// machine, while topologies whose output port varies irregularly with the
// address need many.

// Regions reports, for one router, the minimal number of contiguous
// destination-address ranges with a constant output port.
func (t *Tables) Regions(router topology.DeviceID) int {
	row := t.out[router]
	if len(row) == 0 {
		return 0
	}
	regions := 1
	for i := 1; i < len(row); i++ {
		if row[i] != row[i-1] {
			regions++
		}
	}
	return regions
}

// RegionStats summarizes region-table sizes across all routers.
type RegionStats struct {
	Min, Max int
	Mean     float64
	Total    int
	Routers  int
}

// RegionSizes computes the region-count distribution over every router.
func (t *Tables) RegionSizes() RegionStats {
	var st RegionStats
	st.Min = -1
	var all []int
	for dev := range t.out {
		all = append(all, int(dev))
	}
	sort.Ints(all)
	for _, dev := range all {
		r := t.Regions(topology.DeviceID(dev))
		st.Total += r
		st.Routers++
		if st.Min < 0 || r < st.Min {
			st.Min = r
		}
		if r > st.Max {
			st.Max = r
		}
	}
	if st.Routers > 0 {
		st.Mean = float64(st.Total) / float64(st.Routers)
	}
	return st
}
