package routing

import "repro/internal/topology"

// FatTree routes a D-U fat tree with the fixed-path discipline §3.3
// requires for in-order delivery: a packet ascends until its current
// subtree contains the destination, then follows the unique descending
// path. The ascending port at each level is a static function of the
// destination address (a base-U digit), which is one of the static
// partitionings of traffic over the parallel upward links the paper
// discusses — even under uniform load, but subject to the 12:1 worst case
// the paper derives for 64 nodes, since 48 remote destinations shared among
// 4 top-level paths leave some path with 12.
func FatTree(ft *topology.FatTree) *Tables {
	return Build(ft.Network, "fattree-updown", func(router topology.DeviceID, dst int) int {
		m := ft.Meta(router)
		if ft.InstAt(dst, m.Level) != m.Inst {
			// Destination outside this subtree: ascend. Pick the up port
			// from the destination's level-th base-U digit.
			return ft.D + digit(dst, ft.U, m.Level-1)
		}
		if m.Level == 1 {
			return dst % ft.D // leaf: node port
		}
		// Descend toward the child subtree holding dst.
		return digit(dst, ft.D, m.Level-1)
	})
}

// FatTreeShifted routes like FatTree but rotates the destination-derived
// up-port choice by a constant. Any rotation is an equally valid static
// partition of traffic over the upward links; §3.3 argues (and the
// contention ablation confirms) that no such choice escapes the 12:1
// pigeonhole bound on 64 nodes.
func FatTreeShifted(ft *topology.FatTree, shift int) *Tables {
	name := "fattree-updown"
	if shift != 0 {
		name = "fattree-updown-shift"
	}
	return Build(ft.Network, name, func(router topology.DeviceID, dst int) int {
		m := ft.Meta(router)
		if ft.InstAt(dst, m.Level) != m.Inst {
			return ft.D + (digit(dst, ft.U, m.Level-1)+shift)%ft.U
		}
		if m.Level == 1 {
			return dst % ft.D
		}
		return digit(dst, ft.D, m.Level-1)
	})
}

// FatTreeCompact routes like FatTree but chooses the ascending port by
// striping LEAF BLOCKS of the destination space: up port at level l is
// (dst / (D * U^(l-1))) mod U. Blocks of D consecutive addresses share a
// port, so region tables shrink several-fold toward the §2.1 ideal, while
// the stripes still spread remote destinations evenly over the top-level
// paths — worst-case contention stays at the §3.3 pigeonhole bound (12:1
// on 64 nodes). A fully CONTIGUOUS partition (up port from the subtree
// index) compresses further but concentrates whole pods onto single paths
// and measures 16:1; this striped rule is the compactness/contention sweet
// spot.
func FatTreeCompact(ft *topology.FatTree) *Tables {
	return Build(ft.Network, "fattree-compact", func(router topology.DeviceID, dst int) int {
		m := ft.Meta(router)
		if ft.InstAt(dst, m.Level) != m.Inst {
			block := dst / ft.D
			return ft.D + digit(block, ft.U, m.Level-1)
		}
		if m.Level == 1 {
			return dst % ft.D
		}
		return digit(dst, ft.D, m.Level-1)
	})
}

// digit extracts the i-th base-b digit of v (i = 0 is least significant).
func digit(v, b, i int) int {
	for ; i > 0; i-- {
		v /= b
	}
	return v % b
}

// FatTreeAdaptiveUnsafe routes ascending packets over an up port chosen by
// a hash of both source and destination rather than the destination alone.
// Per-pair paths remain fixed (so it is still deadlock-free), but sequential
// packets from different sources to one destination interleave over
// different paths. It exists for the ablation study of §3.3's in-order
// argument: the simulator shows per-pair order is kept but arrival
// interleaving at the destination differs, and contention shifts.
func FatTreeAdaptiveUnsafe(ft *topology.FatTree, src int) *Tables {
	t := Build(ft.Network, "fattree-srcdst", func(router topology.DeviceID, dst int) int {
		m := ft.Meta(router)
		if ft.InstAt(dst, m.Level) != m.Inst {
			return ft.D + digit(dst^(src*2654435761), ft.U, m.Level-1)
		}
		if m.Level == 1 {
			return dst % ft.D
		}
		return digit(dst, ft.D, m.Level-1)
	})
	return t
}
