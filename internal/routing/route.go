// Package routing implements deterministic, destination-based routing for
// every topology in the repository, in the style of ServerNet: each router
// holds a table mapping destination node address to output port, and a
// packet's path is the walk those tables induce. All algorithms here are
// per-router functions of the destination only, which is exactly the class
// of algorithms ServerNet's table-lookup hardware can express, and it
// guarantees the fixed per-pair paths that §3.3 of the paper requires for
// in-order delivery.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Route is the deterministic path of a packet from one end node to another.
type Route struct {
	Src, Dst int // node addresses
	// Channels are the unidirectional channels crossed, in order, including
	// the injection channel (node to first router) and the ejection channel
	// (last router to node).
	Channels []topology.ChannelID
	// Devices are the devices visited: src node, routers, dst node.
	Devices []topology.DeviceID
	// VCs holds the virtual channel used on each entry of Channels. It is
	// nil for single-VC routings (everything travels on VC 0).
	VCs []int
}

// VCAt returns the virtual channel used on hop i of the route (0 when the
// routing has no VC assignment).
func (r Route) VCAt(i int) int {
	if r.VCs == nil {
		return 0
	}
	return r.VCs[i]
}

// RouterHops reports the number of routers the route traverses — the
// paper's "router delays" metric.
func (r Route) RouterHops() int { return len(r.Devices) - 2 }

// Tables is a full set of per-router routing tables plus the network they
// route. Entry (router, dst) gives the output port a packet for node
// address dst must take; -1 marks table holes (which Verify rejects).
type Tables struct {
	Net       *topology.Network
	Algorithm string
	out       map[topology.DeviceID][]int

	// Virtual-channel assignment (see vc.go); zero-valued for single-VC
	// routings.
	numVC int
	vc    VCFunc
}

// NextPortFunc computes the output port a router uses toward a destination
// node address. Algorithms are defined by such functions and compiled into
// Tables by Build.
type NextPortFunc func(router topology.DeviceID, dst int) int

// Build compiles a next-port function into concrete tables for every router
// of the network.
func Build(net *topology.Network, algorithm string, next NextPortFunc) *Tables {
	t := &Tables{Net: net, Algorithm: algorithm, out: make(map[topology.DeviceID][]int)}
	for _, d := range net.Devices() {
		if d.Kind != topology.Router {
			continue
		}
		row := make([]int, net.NumNodes())
		for dst := range row {
			row[dst] = next(d.ID, dst)
		}
		t.out[d.ID] = row
	}
	return t
}

// OutPort returns the table entry of a router for a destination address.
func (t *Tables) OutPort(router topology.DeviceID, dst int) int {
	row, ok := t.out[router]
	if !ok {
		panic(fmt.Sprintf("routing: device %d has no table", router))
	}
	return row[dst]
}

// SetOutPort overrides one table entry. The fault-injection experiments use
// it to model the corrupted routing tables §2.4 of the paper defends
// against with path-disable logic.
func (t *Tables) SetOutPort(router topology.DeviceID, dst, port int) {
	t.out[router][dst] = port
}

// Route walks the tables from node address src to node address dst and
// returns the resulting path. It fails if a table entry is missing, leads
// through an unwired port, or the walk exceeds the device count (a routing
// loop).
func (t *Tables) Route(src, dst int) (Route, error) {
	if src == dst {
		return Route{}, fmt.Errorf("routing: src == dst == %d", src)
	}
	r := Route{Src: src, Dst: dst}
	cur := t.Net.NodeByIndex(src)
	dstDev := t.Net.NodeByIndex(dst)
	port := 0 // end nodes have a single port
	for steps := 0; ; steps++ {
		if steps > t.Net.NumDevices() {
			return Route{}, fmt.Errorf("routing[%s]: loop routing %d -> %d (path %v)",
				t.Algorithm, src, dst, r.Devices)
		}
		r.Devices = append(r.Devices, cur)
		if cur == dstDev {
			return r, nil
		}
		if steps > 0 {
			// Routers consult their table; the source node injected on its
			// only port (port 0) at step zero.
			if t.Net.Device(cur).Kind != topology.Router {
				return Route{}, fmt.Errorf("routing[%s]: walked into end node %s while routing %d -> %d",
					t.Algorithm, t.Net.Device(cur).Name, src, dst)
			}
			port = t.OutPort(cur, dst)
			if port < 0 {
				return Route{}, fmt.Errorf("routing[%s]: no table entry at %s for dst %d",
					t.Algorithm, t.Net.Device(cur).Name, dst)
			}
		}
		ch, ok := t.Net.ChannelFromPort(cur, port)
		if !ok {
			return Route{}, fmt.Errorf("routing[%s]: %s port %d unwired (dst %d)",
				t.Algorithm, t.Net.Device(cur).Name, port, dst)
		}
		r.Channels = append(r.Channels, ch)
		if t.vc != nil {
			r.VCs = append(r.VCs, t.vcAt(cur, dst))
		}
		cur = t.Net.ChannelDst(ch).Device
	}
}

// Next performs a single step of the walk Route performs: the channel (and
// virtual channel) a packet at dev takes toward destination address dst.
// Destination-indexed routing makes the step a function of (dev, dst)
// alone — no source, no history — which is what lets whole-fabric sweeps
// memoize walks per destination instead of re-walking every source (see
// internal/fabricver). End nodes inject on their only port; routers consult
// their table. Unlike Route, Next rejects out-of-range ports with an error
// instead of panicking, so it is safe on arbitrarily corrupted tables.
func (t *Tables) Next(dev topology.DeviceID, dst int) (topology.ChannelID, int, error) {
	port := 0
	d := t.Net.Device(dev)
	if d.Kind == topology.Router {
		port = t.OutPort(dev, dst)
		if port < 0 {
			return -1, 0, fmt.Errorf("no table entry at %s for destination %d", d.Name, dst)
		}
		if port >= d.Ports {
			return -1, 0, fmt.Errorf("%s routes out port %d but has only %d ports", d.Name, port, d.Ports)
		}
	}
	ch, ok := t.Net.ChannelFromPort(dev, port)
	if !ok {
		return -1, 0, fmt.Errorf("%s port %d unwired (destination %d)", d.Name, port, dst)
	}
	return ch, t.vcAt(dev, dst), nil
}

// AllRoutes returns routes for every ordered pair of distinct node
// addresses.
func (t *Tables) AllRoutes() ([]Route, error) {
	n := t.Net.NumNodes()
	routes := make([]Route, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			r, err := t.Route(s, d)
			if err != nil {
				return nil, err
			}
			routes = append(routes, r)
		}
	}
	return routes, nil
}

// Verify routes every ordered pair and reports the first failure, if any.
// It is the all-pairs reachability check builders and tests rely on.
func (t *Tables) Verify() error {
	n := t.Net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if _, err := t.Route(s, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// Turn is a (input port, output port) pair at a router.
type Turn struct{ In, Out int }

// UsedTurns computes, for every router, the set of turns any route actually
// takes. Its complement is the path-disable configuration of §2.4: ServerNet
// routers can disable all unused turns so that even a corrupted routing
// table cannot re-introduce a dependency loop.
func (t *Tables) UsedTurns() (map[topology.DeviceID]map[Turn]bool, error) {
	used := make(map[topology.DeviceID]map[Turn]bool)
	for _, d := range t.Net.Devices() {
		if d.Kind == topology.Router {
			used[d.ID] = make(map[Turn]bool)
		}
	}
	n := t.Net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			r, err := t.Route(s, d)
			if err != nil {
				return nil, err
			}
			for i := 1; i < len(r.Channels); i++ {
				dev := t.Net.ChannelDst(r.Channels[i-1]).Device
				in := t.Net.ChannelDst(r.Channels[i-1]).Port
				out := t.Net.ChannelSrc(r.Channels[i]).Port
				used[dev][Turn{in, out}] = true
			}
		}
	}
	return used, nil
}
