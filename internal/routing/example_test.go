package routing_test

import (
	"fmt"
	"log"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Route through the fractahedron with the paper's depth-first digit
// algorithm and inspect the table-driven path.
func ExampleFractahedron() {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	r, err := tb.Route(6, 54)
	if err != nil {
		log.Fatal(err)
	}
	for _, dev := range r.Devices {
		fmt.Println(f.Device(dev).Name)
	}
	// Output:
	// N6
	// L1.e0.l0.r3
	// L2.e0.l3.r0
	// L2.e0.l3.r3
	// L1.e6.l0.r3
	// N54
}

// Compile the tables into the region image a ServerNet router would load.
func ExampleCompileImage() {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	img := routing.CompileImage(tb)
	st := tb.RegionSizes()
	fmt.Printf("%d routers, %d total regions (max %d per router)\n",
		st.Routers, img.Entries(), st.Max)
	// Output:
	// 48 routers, 296 total regions (max 7 per router)
}

// Generic up*/down* serves topologies with no specialized algorithm.
func ExampleUpDownGeneric() {
	c := topology.NewCCC(3)
	tb := routing.UpDownGeneric(c.Network, c.Routers[0][0])
	if err := tb.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s routes all %d pairs\n", tb.Algorithm, c.NumNodes()*(c.NumNodes()-1))
	// Output:
	// updown-generic routes all 552 pairs
}
