package routing

import (
	"fmt"
	"runtime"
	"sync"
)

// ForAllPairs walks the route of every ordered (src, dst) pair, fanning the
// source loop over a worker pool. The collect callback runs once per worker
// with that worker's source range already processed through visit, letting
// analyses keep per-worker accumulators and merge them deterministically
// (workers are merged in source order). With workers <= 0 the pool sizes
// itself to GOMAXPROCS.
//
// visit must not retain the Route beyond the call; collect is called
// sequentially, in ascending worker (source-range) order.
func (t *Tables) ForAllPairs(workers int, newAccum func() any, visit func(acc any, r Route) error, collect func(acc any) error) error {
	n := t.Net.NumNodes()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	type result struct {
		acc any
		err error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := newAccum()
			results[w].acc = acc
			// Stripe sources across workers for balanced load.
			for s := w; s < n; s += workers {
				for d := 0; d < n; d++ {
					if s == d {
						continue
					}
					r, err := t.Route(s, d)
					if err != nil {
						results[w].err = err
						return
					}
					if err := visit(acc, r); err != nil {
						results[w].err = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if results[w].err != nil {
			return fmt.Errorf("routing: worker %d: %w", w, results[w].err)
		}
	}
	for w := 0; w < workers; w++ {
		if err := collect(results[w].acc); err != nil {
			return err
		}
	}
	return nil
}
