package routing

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/topology"
)

// TableImage is a compiled, loadable form of a network's routing tables:
// per router, a sorted list of destination-address regions each mapping to
// one output port — the representation a table-driven router like
// ServerNet's actually stores (§2.3: "these matches are actually done by
// looking up entries in the routing table inside each router"). Images
// serialize to a compact deterministic binary form, round-trip losslessly,
// and answer lookups by binary search.
type TableImage struct {
	Algorithm string
	Nodes     int
	Routers   []RouterImage
}

// RouterImage is one router's compiled region table.
type RouterImage struct {
	Device  topology.DeviceID
	Regions []Region
}

// Region maps destination addresses in [Lo, Hi] to an output port.
type Region struct {
	Lo, Hi int
	Port   int
}

// CompileImage compresses the tables into region form.
func CompileImage(t *Tables) *TableImage {
	img := &TableImage{Algorithm: t.Algorithm, Nodes: t.Net.NumNodes()}
	var devs []int
	for dev := range t.out {
		devs = append(devs, int(dev))
	}
	sort.Ints(devs)
	for _, dev := range devs {
		row := t.out[topology.DeviceID(dev)]
		ri := RouterImage{Device: topology.DeviceID(dev)}
		for i := 0; i < len(row); {
			j := i
			for j+1 < len(row) && row[j+1] == row[i] {
				j++
			}
			ri.Regions = append(ri.Regions, Region{Lo: i, Hi: j, Port: row[i]})
			i = j + 1
		}
		img.Routers = append(img.Routers, ri)
	}
	return img
}

// Lookup returns the output port for a destination at a router, or -1 if
// the router or destination is unknown.
func (img *TableImage) Lookup(dev topology.DeviceID, dst int) int {
	i := sort.Search(len(img.Routers), func(i int) bool { return img.Routers[i].Device >= dev })
	if i == len(img.Routers) || img.Routers[i].Device != dev {
		return -1
	}
	regions := img.Routers[i].Regions
	j := sort.Search(len(regions), func(j int) bool { return regions[j].Hi >= dst })
	if j == len(regions) || dst < regions[j].Lo {
		return -1
	}
	return regions[j].Port
}

// Entries reports the total region count across all routers — the table
// storage the hardware must provide.
func (img *TableImage) Entries() int {
	n := 0
	for _, r := range img.Routers {
		n += len(r.Regions)
	}
	return n
}

const imageMagic = "SNRT1\n"

// WriteTo serializes the image in a compact deterministic binary format:
// magic, algorithm, node count, then per router its device ID and regions
// as varints.
func (img *TableImage) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}
	if err := write([]byte(imageMagic)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(img.Algorithm))); err != nil {
		return n, err
	}
	if err := write([]byte(img.Algorithm)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(img.Nodes)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(img.Routers))); err != nil {
		return n, err
	}
	for _, r := range img.Routers {
		if err := writeUvarint(uint64(r.Device)); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(len(r.Regions))); err != nil {
			return n, err
		}
		for _, reg := range r.Regions {
			if err := writeUvarint(uint64(reg.Lo)); err != nil {
				return n, err
			}
			if err := writeUvarint(uint64(reg.Hi - reg.Lo)); err != nil {
				return n, err
			}
			if err := writeUvarint(uint64(reg.Port)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadImage parses a serialized table image.
func ReadImage(r io.Reader) (*TableImage, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("routing: image magic: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("routing: bad image magic %q", magic)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	algLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if algLen > 1<<16 {
		return nil, fmt.Errorf("routing: absurd algorithm length %d", algLen)
	}
	alg := make([]byte, algLen)
	if _, err := io.ReadFull(br, alg); err != nil {
		return nil, err
	}
	nodes, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nr, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nr > 1<<24 {
		return nil, fmt.Errorf("routing: absurd router count %d", nr)
	}
	img := &TableImage{Algorithm: string(alg), Nodes: int(nodes)}
	for i := uint64(0); i < nr; i++ {
		dev, err := readUvarint()
		if err != nil {
			return nil, err
		}
		cnt, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if cnt > 1<<24 {
			return nil, fmt.Errorf("routing: absurd region count %d", cnt)
		}
		ri := RouterImage{Device: topology.DeviceID(dev)}
		for j := uint64(0); j < cnt; j++ {
			lo, err := readUvarint()
			if err != nil {
				return nil, err
			}
			span, err := readUvarint()
			if err != nil {
				return nil, err
			}
			port, err := readUvarint()
			if err != nil {
				return nil, err
			}
			ri.Regions = append(ri.Regions, Region{Lo: int(lo), Hi: int(lo + span), Port: int(port)})
		}
		img.Routers = append(img.Routers, ri)
	}
	return img, nil
}

// VerifyImage checks that the image answers every (router, destination)
// lookup exactly as the live tables do — the load-time integrity check a
// ServerNet service processor would run before enabling a fabric.
func VerifyImage(img *TableImage, t *Tables) error {
	if img.Nodes != t.Net.NumNodes() {
		return fmt.Errorf("routing: image covers %d nodes, tables %d", img.Nodes, t.Net.NumNodes())
	}
	for _, d := range t.Net.Devices() {
		if d.Kind != topology.Router {
			continue
		}
		for dst := 0; dst < t.Net.NumNodes(); dst++ {
			if got, want := img.Lookup(d.ID, dst), t.OutPort(d.ID, dst); got != want {
				return fmt.Errorf("routing: image lookup (%s, %d) = %d, tables say %d",
					d.Name, dst, got, want)
			}
		}
	}
	return nil
}
