package routing

import (
	"testing"

	"repro/internal/topology"
)

// maxHops routes all pairs and returns the maximum and total router hops.
func maxHops(t *testing.T, tb *Tables) (max int, total int, pairs int) {
	t.Helper()
	n := tb.Net.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			r, err := tb.Route(s, d)
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			if r.RouterHops() > max {
				max = r.RouterHops()
			}
			total += r.RouterHops()
			pairs++
		}
	}
	return max, total, pairs
}

func TestFullMeshRouting(t *testing.T) {
	fm := topology.NewFullMesh(4, 6)
	tb := FullMesh(fm)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	max, _, _ := maxHops(t, tb)
	if max != 2 {
		t.Errorf("max hops = %d, want 2 (fully connected group)", max)
	}
}

func TestRouteStructure(t *testing.T) {
	fm := topology.NewFullMesh(4, 6)
	tb := FullMesh(fm)
	r, err := tb.Route(0, 11) // router 0 to router 3
	if err != nil {
		t.Fatal(err)
	}
	if r.RouterHops() != 2 {
		t.Fatalf("hops = %d, want 2", r.RouterHops())
	}
	if len(r.Channels) != len(r.Devices)-1 {
		t.Errorf("channels %d vs devices %d inconsistent", len(r.Channels), len(r.Devices))
	}
	// Endpoints are the nodes themselves.
	if r.Devices[0] != tb.Net.NodeByIndex(0) || r.Devices[len(r.Devices)-1] != tb.Net.NodeByIndex(11) {
		t.Errorf("route endpoints wrong: %v", r.Devices)
	}
	// Channels chain: dst of channel i is src of channel i+1.
	for i := 1; i < len(r.Channels); i++ {
		if tb.Net.ChannelDst(r.Channels[i-1]).Device != tb.Net.ChannelSrc(r.Channels[i]).Device {
			t.Errorf("channel chain broken at %d", i)
		}
	}
}

func TestRouteSameNodeRejected(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := FullMesh(fm)
	if _, err := tb.Route(3, 3); err == nil {
		t.Error("src == dst accepted")
	}
}

// §3.1: a 6x6 mesh has a maximum latency of 11 router hops between opposite
// corners.
func TestMeshDimOrderMaxHops(t *testing.T) {
	m := topology.NewMesh(6, 6, 2)
	tb := MeshDimOrder(m, true)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	max, _, _ := maxHops(t, tb)
	if max != 11 {
		t.Errorf("max hops = %d, want 11 (paper §3.1)", max)
	}
}

func TestMeshDimOrderTurnsOnce(t *testing.T) {
	m := topology.NewMesh(4, 4, 1)
	tb := MeshDimOrder(m, true)
	// YX routing: row corrected before column; once moving in X, never Y.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			r, err := tb.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			movedX := false
			for _, ch := range r.Channels[1 : len(r.Channels)-1] {
				p := tb.Net.ChannelSrc(ch).Port
				switch p {
				case topology.MeshPortXPlus, topology.MeshPortXMinus:
					movedX = true
				case topology.MeshPortYPlus, topology.MeshPortYMinus:
					if movedX {
						t.Fatalf("route %d->%d moves Y after X", s, d)
					}
				}
			}
		}
	}
}

func TestHypercubeECube(t *testing.T) {
	h := topology.NewHypercube(3, 1)
	tb := HypercubeECube(h)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	max, _, _ := maxHops(t, tb)
	if max != 4 {
		t.Errorf("max hops = %d, want 4 (3 dims + entry router)", max)
	}
}

func TestHypercubeUpDownMinimal(t *testing.T) {
	h := topology.NewHypercube(4, 1)
	ec := HypercubeECube(h)
	ud := HypercubeUpDown(h)
	if err := ud.Verify(); err != nil {
		t.Fatal(err)
	}
	// Up*/down* on the hypercube is still minimal: clear-then-set visits
	// exactly Hamming-distance routers beyond the first.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			r1, err1 := ec.Route(s, d)
			r2, err2 := ud.Route(s, d)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if r1.RouterHops() != r2.RouterHops() {
				t.Errorf("%d->%d: ecube %d hops, updown %d", s, d, r1.RouterHops(), r2.RouterHops())
			}
		}
	}
}

func TestHypercubeUpDownPhaseDiscipline(t *testing.T) {
	h := topology.NewHypercube(3, 1)
	tb := HypercubeUpDown(h)
	// No route sets a bit before it has finished clearing: popcount along
	// the router path first decreases, then increases.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			r, _ := tb.Route(s, d)
			ascending := false
			prev := -1
			for _, dev := range r.Devices[1 : len(r.Devices)-1] {
				w := 0
				for i, rt := range h.Routers {
					if rt == dev {
						w = popcount(i)
						break
					}
				}
				if prev >= 0 {
					if w > prev {
						ascending = true
					} else if ascending {
						t.Fatalf("%d->%d descends after ascending", s, d)
					}
				}
				prev = w
			}
		}
	}
}

func TestRingRouting(t *testing.T) {
	r := topology.NewRing(4, 1)
	cw := RingClockwise(r)
	if err := cw.Verify(); err != nil {
		t.Fatal(err)
	}
	seam := RingSeamless(r)
	if err := seam.Verify(); err != nil {
		t.Fatal(err)
	}
	// Seamless routing never uses the seam link between routers 3 and 0.
	seamLink, _ := r.LinkAt(r.Routers[3], topology.RingPortCW)
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			rt, _ := seam.Route(s, d)
			for _, ch := range rt.Channels {
				if r.ChannelLink(ch) == seamLink {
					t.Errorf("seamless route %d->%d crosses the seam", s, d)
				}
			}
		}
	}
}

// Table 2: the 64-node 4-2 fat tree averages 4.4 router hops.
func TestFatTree64Hops(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	tb := FatTree(ft)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	max, total, pairs := maxHops(t, tb)
	if max != 5 {
		t.Errorf("max hops = %d, want 5 (leaf-mid-top-mid-leaf)", max)
	}
	avg := float64(total) / float64(pairs)
	if avg < 4.42 || avg > 4.44 {
		t.Errorf("avg hops = %.3f, want 4.43 (paper Table 2 rounds to 4.4)", avg)
	}
}

// §3.4: a 64-node 3-3 fat tree averages 5.9 router hops.
func TestFatTree33Hops(t *testing.T) {
	ft := topology.NewFatTree(3, 3, 64)
	tb := FatTree(ft)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	_, total, pairs := maxHops(t, tb)
	avg := float64(total) / float64(pairs)
	if avg < 5.7 || avg > 6.1 {
		t.Errorf("avg hops = %.3f, want about 5.9 (paper §3.4)", avg)
	}
}

// Table 2: the 64-node fat fractahedron averages 4.3 router hops with a
// maximum of 5 (3N-1 for N=2).
func TestFatFractahedron64Hops(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := Fractahedron(f)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	max, total, pairs := maxHops(t, tb)
	if max != 5 {
		t.Errorf("max hops = %d, want 5 = 3N-1", max)
	}
	avg := float64(total) / float64(pairs)
	if avg < 4.29 || avg > 4.31 {
		t.Errorf("avg hops = %.3f, want 4.30 (paper Table 2 rounds to 4.3)", avg)
	}
}

// Table 1 delay formulas: thin 4N-2, fat 3N-1 (fan-out stage excluded).
func TestFractahedronDelayFormulas(t *testing.T) {
	for n := 1; n <= 3; n++ {
		for _, fat := range []bool{false, true} {
			f := topology.NewFractahedron(topology.Tetra(n, fat))
			tb := Fractahedron(f)
			max, _, _ := maxHops(t, tb)
			want := 4*n - 2
			if fat {
				want = 3*n - 1
			}
			if n == 1 {
				want = 2 // a single tetrahedron either way
			}
			if max != want {
				t.Errorf("N=%d fat=%v: max hops = %d, want %d", n, fat, max, want)
			}
		}
	}
}

// §2.2: a 16-CPU system (N=1 with fan-out) has a maximum delay of four
// router hops; extended to 1024 CPUs (N=3 thin) the maximum is twelve, and
// the fat variant cuts it to ten.
func TestFractahedronFanoutDelays(t *testing.T) {
	cfg := topology.Tetra(1, false)
	cfg.Fanout = true
	tb := Fractahedron(topology.NewFractahedron(cfg))
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	max, _, _ := maxHops(t, tb)
	if max != 4 {
		t.Errorf("16-CPU max hops = %d, want 4 (paper §2.2)", max)
	}
}

func TestFractahedron1024CPUDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-CPU construction in -short mode")
	}
	for _, c := range []struct {
		fat  bool
		want int
	}{{false, 12}, {true, 10}} {
		cfg := topology.Tetra(3, c.fat)
		cfg.Fanout = true
		f := topology.NewFractahedron(cfg)
		if f.NumNodes() != 1024 {
			t.Fatalf("nodes = %d, want 1024", f.NumNodes())
		}
		tb := Fractahedron(f)
		// Sample instead of all 1024*1023 pairs: every pair of fan-out
		// groups is symmetric, so stride the sources.
		max := 0
		for s := 0; s < 1024; s += 37 {
			for d := 0; d < 1024; d += 11 {
				if s == d {
					continue
				}
				r, err := tb.Route(s, d)
				if err != nil {
					t.Fatal(err)
				}
				if r.RouterHops() > max {
					max = r.RouterHops()
				}
			}
		}
		if max != c.want {
			t.Errorf("fat=%v: max hops = %d, want %d (paper §2.2/§2.3)", c.fat, max, c.want)
		}
	}
}

// §3.4's adversarial scenario: transfers 6->54, 7->55, 14->62, 15->63 all
// cross the same diagonal link of the same level-2 layer.
func TestFatFractahedronDiagonalContention(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := Fractahedron(f)
	pairs := [][2]int{{6, 54}, {7, 55}, {14, 62}, {15, 63}}
	shared := make(map[topology.LinkID]int)
	for _, p := range pairs {
		r, err := tb.Route(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[topology.LinkID]bool)
		for _, ch := range r.Channels {
			l := f.ChannelLink(ch)
			if !seen[l] {
				seen[l] = true
				shared[l]++
			}
		}
	}
	max := 0
	for _, c := range shared {
		if c > max {
			max = c
		}
	}
	if max != 4 {
		t.Errorf("max shared-link count = %d, want 4 (paper §3.4)", max)
	}
}

func TestUsedTurnsNeverReversePort(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := Fractahedron(f)
	used, err := tb.UsedTurns()
	if err != nil {
		t.Fatal(err)
	}
	if len(used) != f.NumRouters() {
		t.Fatalf("turn map covers %d routers, want %d", len(used), f.NumRouters())
	}
	for dev, turns := range used {
		if len(turns) == 0 {
			t.Errorf("router %s takes no turns", f.Device(dev).Name)
		}
		for turn := range turns {
			if turn.In == turn.Out {
				t.Errorf("router %s u-turns on port %d", f.Device(dev).Name, turn.In)
			}
		}
	}
}

func TestSetOutPortCreatesLoop(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := FullMesh(fm)
	// Corrupt router 0's entry for node 11 (router 2's last node) to point
	// back toward router 1, and router 1's to point to router 0.
	tb.SetOutPort(fm.Routers[0], 11, fm.IntraPort(0, 1))
	tb.SetOutPort(fm.Routers[1], 11, fm.IntraPort(1, 0))
	if _, err := tb.Route(0, 11); err == nil {
		t.Error("routing loop not detected")
	}
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// §2.1/§2.3: fractahedral routing tables stay tiny regardless of machine
// size — the address digits drive the port choice, so a 512-node
// fractahedron router's table collapses into at most ~7 contiguous regions.
// Dimension-ordered meshes with row-major addresses share that property,
// but hypercube e-cube tables degenerate to one region per destination
// (the output port is the lowest differing address bit, which flips on
// every increment), and the irregular topologies routed by generic
// up*/down* need tables an order of magnitude larger.
func TestRegionTableCompactness(t *testing.T) {
	fract := Fractahedron(topology.NewFractahedron(topology.Tetra(3, true))).RegionSizes()
	mesh := MeshDimOrder(topology.NewMesh(12, 12, 2), true).RegionSizes()
	cube := HypercubeECube(topology.NewHypercube(6, 1)).RegionSizes()
	ccc := topology.NewCCC(4)
	cccUD := UpDownGeneric(ccc.Network, ccc.Routers[0][0]).RegionSizes()

	if fract.Max > 16 {
		t.Errorf("fractahedron max regions = %d, want a small constant", fract.Max)
	}
	if mesh.Max > 16 {
		t.Errorf("mesh max regions = %d, want a small constant", mesh.Max)
	}
	if cube.Max != 64 {
		t.Errorf("hypercube-6 e-cube regions = %d, want 64 (one per destination)", cube.Max)
	}
	if cccUD.Max <= 2*fract.Max {
		t.Errorf("CCC up*/down* regions %d not clearly larger than fractahedron %d",
			cccUD.Max, fract.Max)
	}
	if fract.Routers != 448 || fract.Min < 1 || fract.Mean < 1 {
		t.Errorf("degenerate fractahedron stats %+v", fract)
	}
}

// Region counts stay bounded as the fractahedron deepens: the table size is
// O(children * levels), not O(nodes).
func TestRegionsScaleWithDepthNotSize(t *testing.T) {
	r2 := Fractahedron(topology.NewFractahedron(topology.Tetra(2, true))).RegionSizes()
	r3 := Fractahedron(topology.NewFractahedron(topology.Tetra(3, true))).RegionSizes()
	// 8x the nodes, at most ~1.5x the worst-case table.
	if r3.Max > 2*r2.Max {
		t.Errorf("regions grew from %d to %d across one level", r2.Max, r3.Max)
	}
}

// Partially populated fractahedrons (§4: "the topology scales to any number
// of nodes") route completely and stay deadlock-free.
func TestPartialFractahedronRouting(t *testing.T) {
	for _, p := range []int{5, 12, 40} {
		for _, fat := range []bool{false, true} {
			cfg := topology.Tetra(2, fat)
			cfg.Populate = p
			f := topology.NewFractahedron(cfg)
			tb := Fractahedron(f)
			if err := tb.Verify(); err != nil {
				t.Errorf("populate=%d fat=%v: %v", p, fat, err)
			}
			max, _, _ := maxHops(t, tb)
			bound := 4*2 - 2
			if fat {
				bound = 3*2 - 1
			}
			if max > bound {
				t.Errorf("populate=%d fat=%v: max hops %d > %d", p, fat, max, bound)
			}
		}
	}
}

// Thin fractahedron at N=4 (4096 addresses): the 4N-2 delay formula still
// holds at the worst structural pair, and sampled routes verify.
func TestThinFractahedronN4Formula(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-address construction in -short mode")
	}
	f := topology.NewFractahedron(topology.Tetra(4, false))
	if f.NumNodes() != 4096 {
		t.Fatalf("nodes = %d", f.NumNodes())
	}
	tb := Fractahedron(f)
	// Worst pair: all-sevens source, all-fours destination (see
	// examples/scaling for the derivation).
	worstSrc, worstDst := 0, 0
	for k := 0; k < 4; k++ {
		worstSrc = worstSrc*8 + 7
		worstDst = worstDst*8 + 4
	}
	r, err := tb.Route(worstSrc, worstDst)
	if err != nil {
		t.Fatal(err)
	}
	if r.RouterHops() != 4*4-2 {
		t.Errorf("worst pair hops = %d, want 14", r.RouterHops())
	}
	// Strided sample: every route stays within the bound.
	for s := 0; s < 4096; s += 257 {
		for d := 0; d < 4096; d += 129 {
			if s == d {
				continue
			}
			rr, err := tb.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if rr.RouterHops() > 14 {
				t.Fatalf("route %d->%d takes %d hops", s, d, rr.RouterHops())
			}
		}
	}
}

// §2.2: "one or two added router levels are typically needed to fan out to
// the devices" — a depth-2 fan-out stage adds two hops each way on top of
// the core delay and quadruples capacity per level-1 port.
func TestTwoLevelFanout(t *testing.T) {
	cfg := topology.Tetra(1, false)
	cfg.Fanout = true
	cfg.FanoutDepth = 2
	f := topology.NewFractahedron(cfg)
	// 8 addresses x 2^2 nodes = 32 CPUs on one tetrahedron.
	if f.NumNodes() != 32 {
		t.Fatalf("nodes = %d, want 32", f.NumNodes())
	}
	// 4 tetra routers + 8 depth-2 roots + 16 depth-1 fan-outs.
	if f.NumRouters() != 28 {
		t.Errorf("routers = %d, want 28", f.NumRouters())
	}
	tb := Fractahedron(f)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	max, _, _ := maxHops(t, tb)
	// Core max 2 + two fan-out routers each way = 6.
	if max != 6 {
		t.Errorf("max hops = %d, want 6", max)
	}
}

func TestTwoLevelFanoutDeadlockFree(t *testing.T) {
	cfg := topology.Tetra(2, true)
	cfg.Fanout = true
	cfg.FanoutDepth = 2
	cfg.Populate = 16 // keep the build small: 16 addresses x 4 nodes
	f := topology.NewFractahedron(cfg)
	if f.NumNodes() != 64 {
		t.Fatalf("nodes = %d, want 64", f.NumNodes())
	}
	tb := Fractahedron(f)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
}

// The compact fat-tree partition keeps the 12:1 worst case but shrinks the
// region tables by an order of magnitude.
func TestFatTreeCompactPartition(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	compact := FatTreeCompact(ft)
	if err := compact.Verify(); err != nil {
		t.Fatal(err)
	}
	baseline := FatTree(ft)
	cr := compact.RegionSizes()
	br := baseline.RegionSizes()
	if cr.Max >= br.Max {
		t.Errorf("compact regions %d not below baseline %d", cr.Max, br.Max)
	}
	if cr.Max > 20 {
		t.Errorf("compact max regions = %d, want a several-fold reduction from %d", cr.Max, br.Max)
	}
	// Same hop structure.
	m1, _, _ := maxHops(t, compact)
	if m1 != 5 {
		t.Errorf("max hops = %d", m1)
	}
}

// The src-hashed fat-tree variant (the §3.3 ablation) keeps per-pair paths
// fixed — packets for one pair always take the same route — so each
// per-source table still verifies.
func TestFatTreeAdaptiveUnsafePerSource(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 16)
	for src := 0; src < 16; src += 5 {
		tb := FatTreeAdaptiveUnsafe(ft, src)
		for d := 0; d < 16; d++ {
			if d == src {
				continue
			}
			if _, err := tb.Route(src, d); err != nil {
				t.Fatalf("src %d dst %d: %v", src, d, err)
			}
		}
	}
	// Different sources may route the same destination differently.
	a := FatTreeAdaptiveUnsafe(ft, 0)
	b := FatTreeAdaptiveUnsafe(ft, 1)
	differ := false
	for d := 4; d < 16; d++ {
		ra, _ := a.Route(0, d)
		rb, _ := b.Route(1, d)
		if len(ra.Channels) == len(rb.Channels) {
			for i := range ra.Channels[1 : len(ra.Channels)-1] {
				if a.Net.ChannelSrc(ra.Channels[i+1]).Device != b.Net.ChannelSrc(rb.Channels[i+1]).Device {
					differ = true
				}
			}
		}
	}
	if !differ {
		t.Log("note: hashed paths coincided for all sampled pairs (acceptable)")
	}
}

func TestFatTreeShiftedVerifies(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	for shift := 0; shift < 2; shift++ {
		if err := FatTreeShifted(ft, shift).Verify(); err != nil {
			t.Errorf("shift %d: %v", shift, err)
		}
	}
}

func TestAllRoutes(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := FullMesh(fm)
	routes, err := tb.AllRoutes()
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 12*11 {
		t.Errorf("routes = %d, want 132", len(routes))
	}
}

// Dateline routes carry a VC per hop and follow the discipline: VC never
// drops from 1 back to 0.
func TestRingDatelineVCs(t *testing.T) {
	rg := topology.NewRing(5, 1)
	tb := RingDateline(rg)
	if tb.NumVC() != 2 {
		t.Fatalf("NumVC = %d", tb.NumVC())
	}
	for s := 0; s < 5; s++ {
		for d := 0; d < 5; d++ {
			if s == d {
				continue
			}
			r, err := tb.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.VCs) != len(r.Channels) {
				t.Fatalf("VCs %d != channels %d", len(r.VCs), len(r.Channels))
			}
			onOne := false
			for i := range r.Channels {
				switch r.VCAt(i) {
				case 1:
					onOne = true
				case 0:
					if onOne {
						t.Fatalf("route %d->%d returns to VC 0 after the dateline", s, d)
					}
				}
			}
			// Wrap routes (s > d) must switch to VC 1.
			if s > d && !onOne {
				t.Errorf("wrap route %d->%d never used VC 1", s, d)
			}
		}
	}
}

func TestTorusDatelineRejectsMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mesh accepted by TorusDateline")
		}
	}()
	TorusDateline(topology.NewMesh(3, 3, 1))
}

func TestWithVCsValidation(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := RingClockwise(rg)
	defer func() {
		if recover() == nil {
			t.Error("single-VC WithVCs accepted")
		}
	}()
	tb.WithVCs(1, func(topology.DeviceID, int) int { return 0 })
}

func TestVCRangePanics(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := RingClockwise(rg).WithVCs(2, func(topology.DeviceID, int) int { return 5 })
	defer func() {
		if recover() == nil {
			t.Error("out-of-range VC accepted")
		}
	}()
	tb.Route(0, 2)
}
