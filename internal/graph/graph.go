// Package graph provides the generic graph algorithms that underpin the
// topology, routing and analysis packages: directed and undirected graphs,
// breadth-first distances, cycle detection, strongly connected components,
// maximum bipartite matching (Hopcroft–Karp), maximum flow (Dinic) and
// balanced minimum-bisection search.
//
// Vertices are dense integers in [0, N). All algorithms are deterministic;
// where randomized restarts are used (bisection search) the random source is
// seeded explicitly by the caller.
package graph

import "fmt"

// Digraph is a directed graph over vertices 0..N-1 stored as adjacency
// lists. Parallel edges are permitted; they are meaningful for multigraph
// models (two cables between the same pair of routers).
type Digraph struct {
	adj [][]int
}

// NewDigraph returns an empty directed graph with n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{adj: make([][]int, n)}
}

// N reports the number of vertices.
func (g *Digraph) N() int { return len(g.adj) }

// M reports the number of edges.
func (g *Digraph) M() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m
}

// AddEdge inserts the directed edge u -> v.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], v)
}

// Out returns the out-neighbors of u. The returned slice is shared with the
// graph and must not be modified.
func (g *Digraph) Out(u int) []int {
	g.check(u)
	return g.adj[u]
}

// HasEdge reports whether at least one edge u -> v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

func (g *Digraph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Ugraph is an undirected graph over vertices 0..N-1. Each undirected edge
// {u,v} is stored in both adjacency lists. Parallel edges are permitted.
type Ugraph struct {
	adj   [][]int
	edges [][2]int
}

// NewUgraph returns an empty undirected graph with n vertices.
func NewUgraph(n int) *Ugraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Ugraph{adj: make([][]int, n)}
}

// N reports the number of vertices.
func (g *Ugraph) N() int { return len(g.adj) }

// M reports the number of undirected edges.
func (g *Ugraph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u,v}.
func (g *Ugraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges = append(g.edges, [2]int{u, v})
}

// Adj returns the neighbors of u (with multiplicity for parallel edges).
// The returned slice is shared with the graph and must not be modified.
func (g *Ugraph) Adj(u int) []int {
	g.check(u)
	return g.adj[u]
}

// Edges returns the edge list. The returned slice is shared with the graph
// and must not be modified.
func (g *Ugraph) Edges() [][2]int { return g.edges }

// Degree reports the degree of u, counting parallel edges.
func (g *Ugraph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

func (g *Ugraph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(g.adj)))
	}
}
