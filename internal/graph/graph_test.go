package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // parallel edge
	if g.M() != 3 {
		t.Errorf("M = %d, want 3", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge wrong: 0->1 %v, 1->0 %v", g.HasEdge(0, 1), g.HasEdge(1, 0))
	}
	if len(g.Out(0)) != 2 {
		t.Errorf("Out(0) = %v, want two entries", g.Out(0))
	}
}

func TestDigraphVertexRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	g := NewDigraph(2)
	g.AddEdge(0, 2)
}

func TestUgraphBasics(t *testing.T) {
	g := NewUgraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if g.M() != 3 {
		t.Errorf("M = %d, want 3", g.M())
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if !g.Connected() {
		t.Error("path graph should be connected")
	}
}

func TestBFSDistancesLine(t *testing.T) {
	g := NewUgraph(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	d := g.BFS(1)
	if d[0] != Unreachable || d[2] != Unreachable || d[1] != 0 {
		t.Errorf("dist = %v", d)
	}
}

func TestComponents(t *testing.T) {
	g := NewUgraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Errorf("component map wrong: %v", comp)
	}
	if comp[0] == comp[2] || comp[0] == comp[5] || comp[2] == comp[5] {
		t.Errorf("distinct components merged: %v", comp)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestFindCycleOnDAG(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if cyc, ok := g.FindCycle(); ok {
		t.Errorf("DAG reported cycle %v", cyc)
	}
	if !g.Acyclic() {
		t.Error("Acyclic() = false on a DAG")
	}
}

func TestFindCycleReturnsRealCycle(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1) // cycle 1-2-3
	g.AddEdge(3, 4)
	cyc, ok := g.FindCycle()
	if !ok {
		t.Fatal("cycle not found")
	}
	verifyCycle(t, g, cyc)
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(1, 1)
	cyc, ok := g.FindCycle()
	if !ok {
		t.Fatal("self-loop not detected as cycle")
	}
	verifyCycle(t, g, cyc)
}

func verifyCycle(t *testing.T, g *Digraph, cyc []int) {
	t.Helper()
	if len(cyc) == 0 {
		t.Fatal("empty cycle")
	}
	for i := range cyc {
		u, v := cyc[i], cyc[(i+1)%len(cyc)]
		if !g.HasEdge(u, v) {
			t.Fatalf("cycle %v contains missing edge %d->%d", cyc, u, v)
		}
	}
}

func TestTopoSort(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("TopoSort failed on DAG")
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 5; u++ {
		for _, v := range g.Out(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo order violates edge %d->%d", u, v)
			}
		}
	}
}

func TestTopoSortRejectsCycle(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, ok := g.TopoSort(); ok {
		t.Error("TopoSort succeeded on cyclic graph")
	}
}

func TestSCC(t *testing.T) {
	// Two SCCs {0,1,2} and {3,4}, plus singleton {5}.
	g := NewDigraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	g.AddEdge(4, 5)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("SCC count = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("{0,1,2} split: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Errorf("{3,4} split: %v", comp)
	}
	if comp[0] == comp[3] || comp[3] == comp[5] || comp[0] == comp[5] {
		t.Errorf("SCCs merged: %v", comp)
	}
}

// Property: a random DAG (edges only low->high) is always acyclic, and adding
// any back edge makes it cyclic.
func TestAcyclicPropertyRandomDAG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := NewDigraph(n)
		for i := 0; i < 3*n; i++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(u, v)
		}
		if !g.Acyclic() {
			return false
		}
		// Close a cycle along an existing path if one exists.
		d := g.BFS(0)
		for v := n - 1; v > 0; v-- {
			if d[v] > 0 {
				g.AddEdge(v, 0)
				return !g.Acyclic()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: FindCycle on arbitrary random digraphs either returns a
// verifiable cycle or the graph topologically sorts.
func TestFindCycleConsistentWithTopoSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := NewDigraph(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		cyc, cyclic := g.FindCycle()
		_, sortable := g.TopoSort()
		if cyclic == sortable {
			return false // must disagree: cyclic xor sortable
		}
		if cyclic {
			for i := range cyc {
				if !g.HasEdge(cyc[i], cyc[(i+1)%len(cyc)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatchingPerfect(t *testing.T) {
	// Complete bipartite K3,3 has a perfect matching.
	adj := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	size, matchL := MaxBipartiteMatching(3, 3, adj)
	if size != 3 {
		t.Fatalf("matching size = %d, want 3", size)
	}
	seen := map[int]bool{}
	for u, v := range matchL {
		if v < 0 {
			t.Fatalf("left %d unmatched", u)
		}
		if seen[v] {
			t.Fatalf("right %d matched twice", v)
		}
		seen[v] = true
	}
}

func TestMatchingStar(t *testing.T) {
	// All left vertices share a single right vertex: max matching 1.
	adj := [][]int{{0}, {0}, {0}, {0}}
	size, _ := MaxBipartiteMatching(4, 1, adj)
	if size != 1 {
		t.Errorf("matching size = %d, want 1", size)
	}
}

func TestMatchingEmpty(t *testing.T) {
	size, matchL := MaxBipartiteMatching(3, 3, [][]int{nil, nil, nil})
	if size != 0 {
		t.Errorf("matching size = %d, want 0", size)
	}
	for _, v := range matchL {
		if v != -1 {
			t.Errorf("matchL = %v, want all -1", matchL)
		}
	}
}

// Property: Hopcroft–Karp result equals a brute-force maximum matching on
// small random bipartite graphs.
func TestMatchingAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(6), 1+rng.Intn(6)
		adj := make([][]int, nl)
		for u := range adj {
			for v := 0; v < nr; v++ {
				if rng.Intn(2) == 0 {
					adj[u] = append(adj[u], v)
				}
			}
		}
		size, _ := MaxBipartiteMatching(nl, nr, adj)
		return size == bruteMatch(adj, nl, nr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func bruteMatch(adj [][]int, nl, nr int) int {
	best := 0
	usedR := make([]bool, nr)
	var rec func(u, cnt int)
	rec = func(u, cnt int) {
		if cnt > best {
			best = cnt
		}
		if u == nl {
			return
		}
		rec(u+1, cnt) // leave u unmatched
		for _, v := range adj[u] {
			if !usedR[v] {
				usedR[v] = true
				rec(u+1, cnt+1)
				usedR[v] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestMaxFlowSimple(t *testing.T) {
	// s=0 -> 1 -> t=2 with bottleneck 3.
	f := NewFlowNetwork(3)
	f.AddEdge(0, 1, 5)
	f.AddEdge(1, 2, 3)
	if got := f.MaxFlow(0, 2); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddEdge(0, 1, 2)
	f.AddEdge(0, 2, 2)
	f.AddEdge(1, 3, 2)
	f.AddEdge(2, 3, 2)
	if got := f.MaxFlow(0, 3); got != 4 {
		t.Errorf("MaxFlow = %d, want 4", got)
	}
}

func TestMaxFlowNeedsResidual(t *testing.T) {
	// Classic diamond with a cross edge: max flow 2 requires pushing back.
	f := NewFlowNetwork(4)
	f.AddEdge(0, 1, 1)
	f.AddEdge(0, 2, 1)
	f.AddEdge(1, 2, 1)
	f.AddEdge(1, 3, 1)
	f.AddEdge(2, 3, 1)
	if got := f.MaxFlow(0, 3); got != 2 {
		t.Errorf("MaxFlow = %d, want 2", got)
	}
}

func TestMinCutSideSeparates(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddEdge(0, 1, 10)
	f.AddEdge(1, 2, 1) // bottleneck
	f.AddEdge(2, 3, 10)
	flow := f.MaxFlow(0, 3)
	if flow != 1 {
		t.Fatalf("MaxFlow = %d, want 1", flow)
	}
	side := f.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Errorf("cut side = %v, want {0,1} | {2,3}", side)
	}
}

func TestMinBisectionTwoCliques(t *testing.T) {
	// Two K4 cliques joined by a single bridge: bisection cut = 1.
	g := NewUgraph(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
			g.AddEdge(i+4, j+4)
		}
	}
	g.AddEdge(0, 4)
	w := make([]int, 8)
	for i := range w {
		w[i] = 1
	}
	res := MinBisection(BisectionProblem{G: g, Weight: w}, 4, 1)
	if res.Cut != 1 {
		t.Errorf("bisection cut = %d, want 1", res.Cut)
	}
	if !res.Exact {
		t.Error("small instance should be exact")
	}
	if res.Side[0] == res.Side[4] {
		t.Error("cliques not separated")
	}
}

func TestMinBisectionK4(t *testing.T) {
	// K4 with all terminals: any balanced cut crosses 4 edges.
	g := NewUgraph(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	res := MinBisection(BisectionProblem{G: g, Weight: []int{1, 1, 1, 1}}, 2, 1)
	if res.Cut != 4 {
		t.Errorf("K4 bisection = %d, want 4", res.Cut)
	}
}

func TestMinBisectionRoutersFree(t *testing.T) {
	// Terminals at the ends of a path; intermediate zero-weight routers can
	// sit on either side, so the cut is the single middle edge.
	g := NewUgraph(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1)
	}
	w := []int{1, 0, 0, 0, 0, 1}
	res := MinBisection(BisectionProblem{G: g, Weight: w}, 2, 1)
	if res.Cut != 1 {
		t.Errorf("cut = %d, want 1", res.Cut)
	}
	if res.Side[0] == res.Side[5] {
		t.Error("terminals not separated")
	}
}

func TestMinBisectionHeuristicWithSeeds(t *testing.T) {
	// Ring of 20 terminals: minimum bisection is 2 (cut two opposite edges).
	// 20 terminals exceeds the exact limit, exercising the search path.
	n := 20
	g := NewUgraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	seed := make([]bool, n)
	for i := n / 2; i < n; i++ {
		seed[i] = true
	}
	res := MinBisection(BisectionProblem{G: g, Weight: w, Seeds: [][]bool{seed}}, 6, 42)
	if res.Cut != 2 {
		t.Errorf("ring bisection = %d, want 2", res.Cut)
	}
	if res.Exact {
		t.Error("20-terminal instance should not claim exactness")
	}
}

// Property: on random graphs with few terminals, the bisection result is
// balanced and its reported cut equals the actual crossing-edge count of the
// returned side assignment.
func TestMinBisectionSelfConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := NewUgraph(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		w := make([]int, n)
		k := 2 * (1 + rng.Intn(n/2)) // even terminal count
		if k > n {
			k = n - n%2
		}
		for i := 0; i < k; i++ {
			w[i] = 1
		}
		res := MinBisection(BisectionProblem{G: g, Weight: w}, 2, seed)
		// Balance check.
		left, right := 0, 0
		for v := 0; v < n; v++ {
			if w[v] == 0 {
				continue
			}
			if res.Side[v] {
				right++
			} else {
				left++
			}
		}
		if left != right {
			return false
		}
		// Cut consistency check.
		cut := 0
		for _, e := range g.Edges() {
			if res.Side[e[0]] != res.Side[e[1]] {
				cut++
			}
		}
		return cut == res.Cut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Dinic's max flow equals the brute-force minimum s-t cut on
// small random unit-capacity digraphs (max-flow/min-cut duality).
func TestMaxFlowMinCutDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		type edge struct{ u, v int }
		var edges []edge
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, edge{u, v})
			}
		}
		s, tt := 0, n-1

		fn := NewFlowNetwork(n)
		for _, e := range edges {
			fn.AddEdge(e.u, e.v, 1)
		}
		flow := fn.MaxFlow(s, tt)

		// Brute force: minimum over all vertex bipartitions with s left,
		// t right, of edges crossing left->right.
		best := len(edges) + 1
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<s) == 0 || mask&(1<<tt) != 0 {
				continue // s must be in the mask side, t outside
			}
			cut := 0
			for _, e := range edges {
				if mask&(1<<e.u) != 0 && mask&(1<<e.v) == 0 {
					cut++
				}
			}
			if cut < best {
				best = cut
			}
		}
		return int(flow) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: SCC assigns u and v the same component exactly when each
// reaches the other.
func TestSCCAgainstReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := NewDigraph(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC()
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = make([]bool, n)
			for v, d := range g.BFS(u) {
				reach[u][v] = d != Unreachable
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := comp[u] == comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the min-cut side returned after MaxFlow actually separates s
// from t and its crossing capacity equals the flow value.
func TestMinCutSideCertifiesFlow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		type edge struct{ u, v, id int }
		var edges []edge
		fn := NewFlowNetwork(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				id := fn.AddEdge(u, v, 1)
				edges = append(edges, edge{u, v, id})
			}
		}
		s, tt := 0, n-1
		flow := fn.MaxFlow(s, tt)
		side := fn.MinCutSide(s)
		if !side[s] || side[tt] {
			return false
		}
		crossing := int64(0)
		for _, e := range edges {
			if side[e.u] && !side[e.v] {
				crossing++
			}
		}
		return crossing == flow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
