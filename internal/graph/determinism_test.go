package graph

import (
	"reflect"
	"testing"
)

// TestMinBisectionRepeatable pins the satellite audit of bisect.go: the
// heuristic search draws only from the rand.Rand seeded by the caller's
// seed argument, so equal (instance, restarts, seed) must reproduce the
// identical result — cut value AND side assignment — run after run. The
// instance uses 20 terminals to force the randomized search path (the
// exact enumerator stops at 16).
func TestMinBisectionRepeatable(t *testing.T) {
	build := func() BisectionProblem {
		const n = 24 // 20 terminals + 4 routers
		g := NewUgraph(n)
		for v := 0; v < 20; v++ {
			g.AddEdge(v, 20+v%4) // terminals hang off 4 routers
		}
		for r := 0; r < 4; r++ {
			g.AddEdge(20+r, 20+(r+1)%4)
		}
		w := make([]int, n)
		for v := 0; v < 20; v++ {
			w[v] = 1
		}
		return BisectionProblem{G: g, Weight: w}
	}
	first := MinBisection(build(), 6, 99)
	if first.Exact {
		t.Fatal("instance too small: exact path taken, heuristic untested")
	}
	for run := 0; run < 3; run++ {
		again := MinBisection(build(), 6, 99)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\n got %+v\nwant %+v", run, again, first)
		}
	}
}
