package graph

// Unreachable is the distance reported by BFS for vertices that cannot be
// reached from the source.
const Unreachable = -1

// BFS returns the hop distance from src to every vertex of the directed
// graph, or Unreachable where no path exists.
func (g *Digraph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFS returns the hop distance from src to every vertex of the undirected
// graph, or Unreachable where no path exists.
func (g *Ugraph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllPairs returns the matrix of BFS distances between every pair of
// vertices of the undirected graph.
func (g *Ugraph) AllPairs() [][]int {
	d := make([][]int, g.N())
	for u := range d {
		d[u] = g.BFS(u)
	}
	return d
}

// Connected reports whether the undirected graph is connected. The empty
// graph is considered connected.
func (g *Ugraph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns a component index per vertex and the component count
// for the undirected graph.
func (g *Ugraph) Components() (comp []int, count int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	for s := 0; s < g.N(); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if comp[v] == -1 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}
