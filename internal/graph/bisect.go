package graph

import "math/rand"

// BisectionProblem describes a balanced minimum-bisection instance: split
// the weighted vertices ("terminals", Weight > 0) of an undirected graph
// into two sides of equal total weight so that the number of crossing edges
// is minimal. Zero-weight vertices (routers, in the network use case) may be
// placed on either side and are assigned optimally by a minimum s-t cut once
// the terminal sides are fixed.
type BisectionProblem struct {
	G      *Ugraph
	Weight []int // per-vertex weight; the total must be even

	// Seeds are optional candidate side assignments (one bool per vertex;
	// only terminal entries are consulted). Topology builders use them to
	// inject structural cuts that the local search then tries to improve.
	Seeds [][]bool
}

// BisectionResult reports the best bisection found.
type BisectionResult struct {
	Cut   int    // number of crossing edges
	Side  []bool // side per vertex (true = right)
	Exact bool   // true when the terminal assignment space was enumerated
}

// MinBisection solves a BisectionProblem. When the number of terminals is at
// most exactLimit (after fixing one terminal by symmetry) the terminal
// assignments are enumerated and the result is exact; otherwise a local
// pair-swap search with the given number of random restarts is used and the
// result is the best cut found. Every evaluation assigns the zero-weight
// vertices optimally via max-flow, so reported cuts are always achievable.
func MinBisection(p BisectionProblem, restarts int, seed int64) BisectionResult {
	terminals := terminalsOf(p)
	total := 0
	for _, t := range terminals {
		total += p.Weight[t]
	}
	if total%2 != 0 {
		panic("graph: MinBisection requires even total weight")
	}
	half := total / 2

	const exactLimit = 16
	if len(terminals) <= exactLimit {
		return exactBisection(p, terminals, half)
	}
	return searchBisection(p, terminals, half, restarts, seed)
}

func terminalsOf(p BisectionProblem) []int {
	var ts []int
	for v := 0; v < p.G.N(); v++ {
		if p.Weight[v] > 0 {
			ts = append(ts, v)
		}
	}
	return ts
}

// evalCut computes the minimum crossing-edge count over placements of the
// zero-weight vertices, given fixed sides for the terminals, and fills in
// the full side assignment.
func evalCut(p BisectionProblem, termSide map[int]bool) (int, []bool) {
	n := p.G.N()
	s, t := n, n+1
	f := NewFlowNetwork(n + 2)
	const inf = int64(1) << 40
	for v, right := range termSide {
		if right {
			f.AddEdge(v, t, inf)
		} else {
			f.AddEdge(s, v, inf)
		}
	}
	for _, e := range p.G.Edges() {
		f.AddEdge(e[0], e[1], 1)
		f.AddEdge(e[1], e[0], 1)
	}
	cut := f.MaxFlow(s, t)
	reach := f.MinCutSide(s)
	side := make([]bool, n)
	for v := 0; v < n; v++ {
		side[v] = !reach[v]
	}
	return int(cut), side
}

func exactBisection(p BisectionProblem, terminals []int, half int) BisectionResult {
	best := BisectionResult{Cut: -1, Exact: true}
	k := len(terminals)
	if k == 0 {
		side := make([]bool, p.G.N())
		return BisectionResult{Cut: 0, Side: side, Exact: true}
	}
	// Fix terminal 0 on the left to halve the space; enumerate subsets of
	// the rest whose weight reaches half on the right.
	for mask := 0; mask < 1<<(k-1); mask++ {
		w := 0
		for i := 0; i < k-1; i++ {
			if mask&(1<<i) != 0 {
				w += p.Weight[terminals[i+1]]
			}
		}
		if w != half {
			continue
		}
		termSide := make(map[int]bool, k)
		termSide[terminals[0]] = false
		for i := 0; i < k-1; i++ {
			termSide[terminals[i+1]] = mask&(1<<i) != 0
		}
		cut, side := evalCut(p, termSide)
		if best.Cut == -1 || cut < best.Cut {
			best.Cut, best.Side = cut, side
		}
	}
	return best
}

func searchBisection(p BisectionProblem, terminals []int, half int, restarts int, seed int64) BisectionResult {
	rng := rand.New(rand.NewSource(seed))
	best := BisectionResult{Cut: -1}

	// Each improvement pass tries at most this many candidate swaps, so the
	// search stays tractable on instances with hundreds of terminals.
	const maxSwapTries = 512

	improve := func(termSide map[int]bool) {
		cut, side := evalCut(p, termSide)
		// Pair-swap local search: swap one left terminal with one right
		// terminal of equal weight; keep any strict improvement.
		for improved := true; improved; {
			improved = false
			var lefts, rights []int
			for _, t := range terminals {
				if termSide[t] {
					rights = append(rights, t)
				} else {
					lefts = append(lefts, t)
				}
			}
			rng.Shuffle(len(lefts), func(i, j int) { lefts[i], lefts[j] = lefts[j], lefts[i] })
			rng.Shuffle(len(rights), func(i, j int) { rights[i], rights[j] = rights[j], rights[i] })
			tries := 0
		swap:
			for _, l := range lefts {
				for _, r := range rights {
					if p.Weight[l] != p.Weight[r] {
						continue
					}
					if tries++; tries > maxSwapTries {
						break swap
					}
					termSide[l], termSide[r] = true, false
					c2, s2 := evalCut(p, termSide)
					if c2 < cut {
						cut, side = c2, s2
						improved = true
						break swap
					}
					termSide[l], termSide[r] = false, true
				}
			}
		}
		if best.Cut == -1 || cut < best.Cut {
			best.Cut, best.Side = cut, side
		}
	}

	// Seeds first: structural cuts provided by topology builders.
	for _, seedSide := range p.Seeds {
		termSide := make(map[int]bool, len(terminals))
		w := 0
		for _, t := range terminals {
			termSide[t] = seedSide[t]
			if seedSide[t] {
				w += p.Weight[t]
			}
		}
		if w != half {
			continue // unbalanced seed: ignore
		}
		improve(termSide)
	}

	for r := 0; r < restarts; r++ {
		termSide := randomBalanced(terminals, p.Weight, half, rng)
		if termSide == nil {
			break
		}
		improve(termSide)
	}
	return best
}

// randomBalanced produces a random terminal assignment with right weight
// exactly half. Terminals are shuffled and greedily assigned; with uniform
// weights this always succeeds.
func randomBalanced(terminals []int, weight []int, half int, rng *rand.Rand) map[int]bool {
	order := append([]int(nil), terminals...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	termSide := make(map[int]bool, len(order))
	w := 0
	for _, t := range order {
		if w+weight[t] <= half {
			termSide[t] = true
			w += weight[t]
		} else {
			termSide[t] = false
		}
	}
	if w != half {
		return nil
	}
	return termSide
}
