package graph

// MaxBipartiteMatching computes the size of a maximum matching in a
// bipartite graph with nLeft left vertices and nRight right vertices, where
// adj[u] lists the right vertices adjacent to left vertex u. It implements
// Hopcroft–Karp, O(E * sqrt(V)).
//
// The returned matchL maps each left vertex to its matched right vertex or
// -1 if unmatched.
func MaxBipartiteMatching(nLeft, nRight int, adj [][]int) (size int, matchL []int) {
	const inf = int(^uint(0) >> 1)
	matchL = make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for i := 0; i < len(queue); i++ {
			u := queue[i]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return size, matchL
}
