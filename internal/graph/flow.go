package graph

// FlowNetwork is a capacitated directed graph for maximum-flow computation
// (Dinic's algorithm). Adding an edge also adds the reverse residual edge
// with zero capacity.
type FlowNetwork struct {
	n     int
	head  []int // first edge index per vertex, -1 terminated chain via next
	next  []int
	to    []int
	cap   []int64
	level []int
	iter  []int
}

// NewFlowNetwork returns an empty flow network with n vertices.
func NewFlowNetwork(n int) *FlowNetwork {
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &FlowNetwork{n: n, head: head}
}

// N reports the number of vertices.
func (f *FlowNetwork) N() int { return f.n }

// AddEdge inserts a directed edge u -> v with the given capacity and its
// zero-capacity residual reverse. It returns the edge index, which stays
// valid for ResidualCap.
func (f *FlowNetwork) AddEdge(u, v int, capacity int64) int {
	id := len(f.to)
	f.to = append(f.to, v)
	f.cap = append(f.cap, capacity)
	f.next = append(f.next, f.head[u])
	f.head[u] = id

	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.next = append(f.next, f.head[v])
	f.head[v] = id + 1
	return id
}

// ResidualCap reports the residual capacity of edge id after MaxFlow.
func (f *FlowNetwork) ResidualCap(id int) int64 { return f.cap[id] }

func (f *FlowNetwork) bfs(s, t int) bool {
	f.level = make([]int, f.n)
	for i := range f.level {
		f.level[i] = -1
	}
	queue := []int{s}
	f.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := f.head[u]; e != -1; e = f.next[e] {
			v := f.to[e]
			if f.cap[e] > 0 && f.level[v] == -1 {
				f.level[v] = f.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return f.level[t] >= 0
}

func (f *FlowNetwork) dfs(u, t int, pushed int64) int64 {
	if u == t {
		return pushed
	}
	for ; f.iter[u] != -1; f.iter[u] = f.next[f.iter[u]] {
		e := f.iter[u]
		v := f.to[e]
		if f.cap[e] > 0 && f.level[v] == f.level[u]+1 {
			amt := pushed
			if f.cap[e] < amt {
				amt = f.cap[e]
			}
			if got := f.dfs(v, t, amt); got > 0 {
				f.cap[e] -= got
				f.cap[e^1] += got
				return got
			}
		}
	}
	return 0
}

// MaxFlow computes the maximum s-t flow. It may be called once per network;
// capacities are consumed.
func (f *FlowNetwork) MaxFlow(s, t int) int64 {
	const inf = int64(^uint64(0) >> 1)
	var flow int64
	for f.bfs(s, t) {
		f.iter = make([]int, f.n)
		copy(f.iter, f.head)
		for {
			pushed := f.dfs(s, t, inf)
			if pushed == 0 {
				break
			}
			flow += pushed
		}
	}
	return flow
}

// MinCutSide returns, after MaxFlow, the set of vertices reachable from s in
// the residual network: the s-side of a minimum cut.
func (f *FlowNetwork) MinCutSide(s int) []bool {
	side := make([]bool, f.n)
	side[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := f.head[u]; e != -1; e = f.next[e] {
			v := f.to[e]
			if f.cap[e] > 0 && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}
