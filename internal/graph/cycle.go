package graph

// FindCycle searches the directed graph for a cycle. It returns the cycle as
// a vertex sequence v0, v1, ..., vk with an edge vi -> vi+1 for each i and an
// edge vk -> v0, and ok = true. If the graph is acyclic it returns nil, false.
//
// The search is an iterative three-color depth-first traversal so that very
// large dependency graphs (hundreds of thousands of channels) do not overflow
// the goroutine stack.
func (g *Digraph) FindCycle() (cycle []int, ok bool) {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make([]int8, g.N())
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}

	type frame struct {
		u    int
		next int // index into adj[u] of the next edge to explore
	}

	for s := 0; s < g.N(); s++ {
		if color[s] != white {
			continue
		}
		stack := []frame{{u: s}}
		color[s] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.u]) {
				v := g.adj[f.u][f.next]
				f.next++
				switch color[v] {
				case white:
					color[v] = gray
					parent[v] = f.u
					stack = append(stack, frame{u: v})
				case gray:
					// Back edge f.u -> v closes a cycle v ... f.u.
					cycle = []int{f.u}
					for w := f.u; w != v; w = parent[w] {
						cycle = append(cycle, parent[w])
					}
					reverse(cycle)
					return cycle, true
				}
				continue
			}
			color[f.u] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil, false
}

// Acyclic reports whether the directed graph contains no cycle.
func (g *Digraph) Acyclic() bool {
	_, cyclic := g.FindCycle()
	return !cyclic
}

// TopoSort returns a topological ordering of the directed graph, or ok =
// false if the graph contains a cycle.
func (g *Digraph) TopoSort() (order []int, ok bool) {
	indeg := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.adj[u] {
			indeg[v]++
		}
	}
	queue := make([]int, 0, g.N())
	for u, d := range indeg {
		if d == 0 {
			queue = append(queue, u)
		}
	}
	order = make([]int, 0, g.N())
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != g.N() {
		return nil, false
	}
	return order, true
}

// SCC computes the strongly connected components of the directed graph with
// Tarjan's algorithm (iterative form). It returns a component index per
// vertex and the number of components. Component indices are assigned in
// reverse topological order of the condensation.
func (g *Digraph) SCC() (comp []int, count int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var tarjanStack []int
	next := 0

	type frame struct {
		u    int
		next int
	}
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		stack := []frame{{u: s}}
		index[s], low[s] = next, next
		next++
		tarjanStack = append(tarjanStack, s)
		onStack[s] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.u]) {
				v := g.adj[f.u][f.next]
				f.next++
				if index[v] == -1 {
					index[v], low[v] = next, next
					next++
					tarjanStack = append(tarjanStack, v)
					onStack[v] = true
					stack = append(stack, frame{u: v})
				} else if onStack[v] && index[v] < low[f.u] {
					low[f.u] = index[v]
				}
				continue
			}
			u := f.u
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].u
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
			if low[u] == index[u] {
				for {
					w := tarjanStack[len(tarjanStack)-1]
					tarjanStack = tarjanStack[:len(tarjanStack)-1]
					onStack[w] = false
					comp[w] = count
					if w == u {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
