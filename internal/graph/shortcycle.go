package graph

// ShortestCycle returns a minimum-length directed cycle of the graph as a
// vertex sequence v0, v1, ..., vk (with edges vi -> vi+1 and vk -> v0), or
// nil, false when the graph is acyclic. Among equal-length cycles the one
// whose smallest starting vertex is lowest is returned, so the result is
// deterministic — the fabric verifier prints it as the minimal
// counterexample to a deadlock-freedom claim.
//
// The search runs one breadth-first traversal per vertex, restricted to
// that vertex's strongly connected component (a cycle never leaves its
// SCC), so the cost is O(V·E) only over the cyclic part of the graph; for
// an acyclic graph the SCC pass alone decides the answer.
func (g *Digraph) ShortestCycle() (cycle []int, ok bool) {
	n := g.N()
	comp, count := g.SCC()
	size := make([]int, count)
	for _, c := range comp {
		size[c]++
	}

	// Self-loops are cycles of length one and always minimal.
	for v := 0; v < n; v++ {
		for _, w := range g.adj[v] {
			if w == v {
				return []int{v}, true
			}
		}
	}

	dist := make([]int, n)
	parent := make([]int, n)
	stamp := make([]int, n) // visited marker, keyed by source to skip clearing
	for i := range stamp {
		stamp[i] = -1
	}

	var best []int
	for v := 0; v < n; v++ {
		if size[comp[v]] < 2 {
			continue // a singleton SCC without a self-loop is acyclic
		}
		if best != nil && len(best) == 2 {
			break // nothing shorter exists (self-loops were handled above)
		}
		// BFS from v inside its SCC; the first edge back to v closes the
		// shortest cycle through v.
		queue := []int{v}
		dist[v], parent[v], stamp[v] = 0, -1, v
		found := -1
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if best != nil && dist[u]+1 >= len(best) {
				break // any cycle through v from here is no improvement
			}
			for _, w := range g.adj[u] {
				if comp[w] != comp[v] {
					continue
				}
				if w == v {
					found = u
					break bfs
				}
				if stamp[w] != v {
					stamp[w] = v
					dist[w] = dist[u] + 1
					parent[w] = u
					queue = append(queue, w)
				}
			}
		}
		if found < 0 {
			continue
		}
		c := make([]int, 0, dist[found]+1)
		for u := found; u != -1; u = parent[u] {
			c = append(c, u)
		}
		reverse(c) // v first, then the path toward the closing edge
		if best == nil || len(c) < len(best) {
			best = c
		}
	}
	return best, best != nil
}

// CycleThrough returns a minimal cycle containing the edge u -> v: the
// edge plus a shortest path v -> u, as a vertex list starting at u. ok
// is false when the edge does not exist or v cannot reach u (the edge is
// in no cycle). The per-edge companion to ShortestCycle: verifiers use
// it to attribute a cyclic graph's failure to each participating edge's
// source site.
func (g *Digraph) CycleThrough(u, v int) ([]int, bool) {
	if !g.HasEdge(u, v) {
		return nil, false
	}
	if u == v {
		return []int{u}, true
	}
	// BFS shortest path v -> u.
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[v] = v
	queue := []int{v}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if w == u {
			path := []int{u}
			for x := u; x != v; x = parent[x] {
				path = append(path, parent[x])
			}
			// path is u, u's predecessor, ..., v following parents back
			// toward v; the cycle order starting at u follows the edge
			// u -> v and then the BFS path forward: u, v, ..., u's
			// predecessor.
			cycle := make([]int, 0, len(path))
			cycle = append(cycle, u)
			for i := len(path) - 1; i >= 1; i-- {
				cycle = append(cycle, path[i])
			}
			return cycle, true
		}
		for _, x := range g.Out(w) {
			if parent[x] == -1 {
				parent[x] = w
				queue = append(queue, x)
			}
		}
	}
	return nil, false
}
