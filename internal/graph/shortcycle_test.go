package graph

import (
	"reflect"
	"testing"
)

func TestShortestCycleAcyclic(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	if cycle, ok := g.ShortestCycle(); ok {
		t.Fatalf("acyclic graph reported cycle %v", cycle)
	}
}

func TestShortestCycleSelfLoop(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // 3-cycle
	g.AddEdge(2, 2) // but the self-loop is shorter
	cycle, ok := g.ShortestCycle()
	if !ok || !reflect.DeepEqual(cycle, []int{2}) {
		t.Fatalf("ShortestCycle = %v, %v; want [2], true", cycle, ok)
	}
}

func TestShortestCyclePicksMinimal(t *testing.T) {
	// A 4-cycle 0->1->2->3->0 with a chord 2->0 creating a 3-cycle
	// 0->1->2->0, and a distant 2-cycle 5<->6 that must win.
	g := NewDigraph(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(2, 0)
	g.AddEdge(5, 6)
	g.AddEdge(6, 5)
	cycle, ok := g.ShortestCycle()
	if !ok || !reflect.DeepEqual(cycle, []int{5, 6}) {
		t.Fatalf("ShortestCycle = %v, %v; want [5 6], true", cycle, ok)
	}
}

func TestShortestCycleDeterministicStart(t *testing.T) {
	// Two disjoint 3-cycles; the one containing the lowest vertex wins.
	g := NewDigraph(8)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	cycle, ok := g.ShortestCycle()
	if !ok || !reflect.DeepEqual(cycle, []int{1, 2, 3}) {
		t.Fatalf("ShortestCycle = %v, %v; want [1 2 3], true", cycle, ok)
	}
}

func TestCycleThroughOrientation(t *testing.T) {
	// 0->1->2->0 plus a dead-end edge 2->3. The cycle through an edge
	// starts at the edge's source and follows it: CycleThrough(1, 2) is
	// [1 2 0], not a rotation starting elsewhere.
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	cycle, ok := g.CycleThrough(1, 2)
	if !ok || !reflect.DeepEqual(cycle, []int{1, 2, 0}) {
		t.Fatalf("CycleThrough(1,2) = %v, %v; want [1 2 0], true", cycle, ok)
	}
	if _, ok := g.CycleThrough(2, 3); ok {
		t.Fatal("edge 2->3 is in no cycle, want ok=false")
	}
	if _, ok := g.CycleThrough(0, 2); ok {
		t.Fatal("0->2 is not an edge, want ok=false")
	}
}
