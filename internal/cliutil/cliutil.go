// Package cliutil is the shared flag-validation vocabulary of the
// command-line tools. Every cmd validates its numeric flags through the
// same two predicates and reports failures the same way: message to
// stderr, flag usage, exit status 2 — so a bad -workers value behaves
// identically whether it was passed to netsim, chaos, paper or
// campaignd.
package cliutil

import (
	"flag"
	"fmt"
	"os"
)

// Positive returns an error unless v >= 1. Use it for counts that must
// exist to mean anything: trials, runs, flits, queue depths.
func Positive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("-%s must be >= 1, got %d", name, v)
	}
	return nil
}

// NonNegative returns an error unless v >= 0. Use it for sizes where 0
// selects a default (worker pools, shard counts, rate limits).
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must be >= 0, got %d (0 selects the default)", name, v)
	}
	return nil
}

// Backends every execution-backend flag accepts: the deterministic
// indexed engine and the concurrent live fabric. The list is the
// contract between netsim, chaos and campaignd — one vocabulary, one
// error message.
var Backends = []string{"indexed", "live"}

// Backend returns an error unless v names a known execution backend.
func Backend(name, v string) error {
	for _, b := range Backends {
		if v == b {
			return nil
		}
	}
	return fmt.Errorf("-%s must be one of %v, got %q", name, Backends, v)
}

// First returns the first non-nil error, so a command can validate every
// flag in one expression and report the earliest failure.
func First(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Fail reports a usage error the uniform way: the message prefixed with
// the program name on stderr, the flag usage text, exit status 2 (the
// conventional "bad invocation" status, distinct from runtime failures).
func Fail(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	flag.Usage()
	os.Exit(2)
}
