package cliutil

import (
	"errors"
	"strings"
	"testing"
)

func TestPositive(t *testing.T) {
	cases := []struct {
		name string
		v    int
		ok   bool
	}{
		{"trials", 1, true},
		{"trials", 100, true},
		{"trials", 0, false},
		{"trials", -1, false},
		{"runs", -100, false},
	}
	for _, c := range cases {
		err := Positive(c.name, c.v)
		if (err == nil) != c.ok {
			t.Errorf("Positive(%q, %d) = %v, want ok=%v", c.name, c.v, err, c.ok)
		}
		if err != nil && !strings.Contains(err.Error(), "-"+c.name) {
			t.Errorf("Positive(%q, %d) error %q does not name the flag", c.name, c.v, err)
		}
	}
}

func TestNonNegative(t *testing.T) {
	cases := []struct {
		name string
		v    int
		ok   bool
	}{
		{"workers", 0, true},
		{"workers", 8, true},
		{"workers", -1, false},
		{"shards", -5, false},
	}
	for _, c := range cases {
		err := NonNegative(c.name, c.v)
		if (err == nil) != c.ok {
			t.Errorf("NonNegative(%q, %d) = %v, want ok=%v", c.name, c.v, err, c.ok)
		}
		if err != nil && !strings.Contains(err.Error(), "-"+c.name) {
			t.Errorf("NonNegative(%q, %d) error %q does not name the flag", c.name, c.v, err)
		}
	}
}

func TestBackend(t *testing.T) {
	cases := []struct {
		v  string
		ok bool
	}{
		{"indexed", true},
		{"live", true},
		{"", false},
		{"Live", false},
		{"sequential", false},
		{"indexed ", false},
	}
	for _, c := range cases {
		err := Backend("backend", c.v)
		if (err == nil) != c.ok {
			t.Errorf("Backend(%q) = %v, want ok=%v", c.v, err, c.ok)
		}
		if err != nil && !strings.Contains(err.Error(), "-backend") {
			t.Errorf("Backend(%q) error %q does not name the flag", c.v, err)
		}
	}
}

func TestFirst(t *testing.T) {
	e1 := errors.New("first")
	e2 := errors.New("second")
	cases := []struct {
		errs []error
		want error
	}{
		{nil, nil},
		{[]error{nil, nil}, nil},
		{[]error{e1, e2}, e1},
		{[]error{nil, e2}, e2},
		{[]error{e1, nil}, e1},
	}
	for i, c := range cases {
		if got := First(c.errs...); got != c.want {
			t.Errorf("case %d: First = %v, want %v", i, got, c.want)
		}
	}
}
