package metrics

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestHopsFullMesh(t *testing.T) {
	fm := topology.NewFullMesh(4, 6)
	st, err := Hops(routing.FullMesh(fm))
	if err != nil {
		t.Fatal(err)
	}
	if st.Max != 2 || st.Min != 1 {
		t.Errorf("hops min=%d max=%d, want 1..2", st.Min, st.Max)
	}
	if st.Pairs != 12*11 {
		t.Errorf("pairs = %d, want 132", st.Pairs)
	}
	// Per source: 2 same-router destinations at 1 hop, 9 at 2.
	if st.Histogram[1] != 12*2 || st.Histogram[2] != 12*9 {
		t.Errorf("histogram = %v", st.Histogram)
	}
	wantMean := float64(12*2*1+12*9*2) / 132
	if st.Mean != wantMean {
		t.Errorf("mean = %v, want %v", st.Mean, wantMean)
	}
}

// Table 2 both rows at once: hop averages for the two 64-node networks.
func TestHopsTable2(t *testing.T) {
	ft, _ := Hops(routing.FatTree(topology.NewFatTree(4, 2, 64)))
	fr, _ := Hops(routing.Fractahedron(topology.NewFractahedron(topology.Tetra(2, true))))
	if !(fr.Mean < ft.Mean) {
		t.Errorf("fractahedron mean %.3f not below fat tree mean %.3f", fr.Mean, ft.Mean)
	}
}

// §2.2: thin fractahedrons have bisection bandwidth fixed at four links.
func TestThinFractahedronBisection(t *testing.T) {
	for n := 1; n <= 2; n++ {
		f := topology.NewFractahedron(topology.Tetra(n, false))
		res := Bisection(f.Network, 2, 1)
		if res.Cut != 4 {
			t.Errorf("N=%d thin bisection = %d, want 4 (paper Table 1)", n, res.Cut)
		}
	}
}

// Table 1's fat column: the replicated layers multiply the bisection; the
// measured cut is 4^N (4, 16), the value consistent with the construction
// (the printed table's "4N" appears to have lost a superscript; see
// EXPERIMENTS.md).
func TestFatFractahedronBisection(t *testing.T) {
	for n := 1; n <= 2; n++ {
		f := topology.NewFractahedron(topology.Tetra(n, true))
		res := Bisection(f.Network, 2, 1)
		want := 1
		for i := 0; i < n; i++ {
			want *= 4
		}
		if res.Cut != want {
			t.Errorf("N=%d fat bisection = %d, want %d", n, res.Cut, want)
		}
	}
}

// §3.3: the 64-node 4-2 fat tree's bisection.
func TestFatTreeBisection(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	res := Bisection(ft.Network, 3, 1)
	if res.Cut != 8 {
		t.Errorf("4-2 fat tree bisection = %d, want 8 (2 crossing links per top router)", res.Cut)
	}
}

// §2: a simple tree's bisection is the single link at the root.
func TestSimpleTreeBisectionBottleneck(t *testing.T) {
	tr := topology.NewFatTree(4, 1, 16)
	res := Bisection(tr.Network, 2, 1)
	if res.Cut != 2 {
		// Root has 4 down links to 4 subtrees; splitting 2-2 cuts 2 links.
		t.Errorf("tree bisection = %d, want 2", res.Cut)
	}
}

func TestHypercubeBisection(t *testing.T) {
	h := topology.NewHypercube(3, 1)
	res := Bisection(h.Network, 2, 1)
	if res.Cut != 4 {
		t.Errorf("3-cube bisection = %d, want 4 (2^(d-1))", res.Cut)
	}
}

func TestMeshBisection(t *testing.T) {
	m := topology.NewMesh(6, 6, 2)
	res := Bisection(m.Network, 2, 1)
	if res.Cut != 6 {
		t.Errorf("6x6 mesh bisection = %d, want 6 (one link per row)", res.Cut)
	}
}

// Table 2's cost row: 28 vs 48 routers for the two 64-node networks.
func TestCostTable2(t *testing.T) {
	ft := CostOf(topology.NewFatTree(4, 2, 64).Network)
	fr := CostOf(topology.NewFractahedron(topology.Tetra(2, true)).Network)
	if ft.Routers != 28 || fr.Routers != 48 {
		t.Errorf("routers = %d and %d, want 28 and 48", ft.Routers, fr.Routers)
	}
	if ft.RoutersPerNode >= fr.RoutersPerNode {
		t.Error("fat tree should be cheaper per node")
	}
	// Inter-router cables: fat tree 16*2 + 8*2 = 48; fractahedron
	// 8 tetras*6 + 4 layers*6 + 32 up links = 104.
	if ft.InterRouter != 48 {
		t.Errorf("fat tree inter-router links = %d, want 48", ft.InterRouter)
	}
	if fr.InterRouter != 104 {
		t.Errorf("fractahedron inter-router links = %d, want 104", fr.InterRouter)
	}
}

func TestAreaModel(t *testing.T) {
	m := DefaultAreaModel()
	// Doubling VCs adds exactly the buffer+control cost of the extra VC.
	a1 := m.RouterArea(6, 1, 4)
	a2 := m.RouterArea(6, 2, 4)
	wantDelta := m.GatesPerFlit*6*4 + m.ControlPerPort*6
	if a2-a1 != wantDelta {
		t.Errorf("VC delta = %v, want %v", a2-a1, wantDelta)
	}
	// Zero-depth router has zero buffer share.
	if m.BufferShare(6, 1, 0) != 0 {
		t.Error("zero-depth buffer share not zero")
	}
	if m.NetworkArea(10, 6, 1, 4) != 10*a1 {
		t.Error("network area not linear in router count")
	}
}

func TestAreaModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad shape accepted")
		}
	}()
	DefaultAreaModel().RouterArea(0, 1, 4)
}

// The paper's deterministic routings are minimal on their topologies;
// generic up*/down* pays a stretch penalty on cyclic irregular graphs.
func TestStretch(t *testing.T) {
	minimal := []*routing.Tables{
		routing.Fractahedron(topology.NewFractahedron(topology.Tetra(2, true))),
		routing.Fractahedron(topology.NewFractahedron(topology.Tetra(2, false))),
		routing.FatTree(topology.NewFatTree(4, 2, 64)),
		routing.MeshDimOrder(topology.NewMesh(4, 4, 1), true),
		routing.HypercubeECube(topology.NewHypercube(3, 1)),
	}
	for _, tb := range minimal {
		st, err := Stretch(tb)
		if err != nil {
			t.Fatal(err)
		}
		if st.Max != 1 || st.NonMinimal != 0 {
			t.Errorf("%s on %s: stretch max %.2f, %d non-minimal routes",
				tb.Algorithm, tb.Net.Name, st.Max, st.NonMinimal)
		}
	}
	ccc := topology.NewCCC(3)
	st, err := Stretch(routing.UpDownGeneric(ccc.Network, ccc.Routers[0][0]))
	if err != nil {
		t.Fatal(err)
	}
	if st.NonMinimal == 0 || st.Max <= 1 {
		t.Errorf("up*/down* on CCC reported minimal (max %.2f); expected detours", st.Max)
	}
}
