// Package metrics computes the summary figures the paper compares
// topologies on: router-hop statistics over all node pairs ("maximum
// delays" and "average hops"), bisection bandwidth in links, and hardware
// cost (router and link counts).
package metrics

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// HopStats summarizes router-hop counts over all ordered node pairs.
type HopStats struct {
	Min, Max  int
	Mean      float64
	Pairs     int
	Histogram map[int]int // hops -> pair count
}

// Hops routes every ordered pair through the tables and aggregates the
// router-hop distribution. The all-pairs sweep fans out over a worker pool
// sized to GOMAXPROCS; the result is independent of the worker count.
func Hops(t *routing.Tables) (HopStats, error) {
	type accum struct {
		hist  map[int]int
		total int
		pairs int
	}
	st := HopStats{Min: -1, Histogram: make(map[int]int)}
	total := 0
	err := t.ForAllPairs(0,
		func() any { return &accum{hist: make(map[int]int)} },
		func(acc any, r routing.Route) error {
			a := acc.(*accum)
			h := r.RouterHops()
			a.hist[h]++
			a.pairs++
			a.total += h
			return nil
		},
		func(acc any) error {
			a := acc.(*accum)
			for h, c := range a.hist {
				st.Histogram[h] += c
				if st.Min < 0 || h < st.Min {
					st.Min = h
				}
				if h > st.Max {
					st.Max = h
				}
			}
			st.Pairs += a.pairs
			total += a.total
			return nil
		})
	if err != nil {
		return HopStats{}, err
	}
	if st.Pairs > 0 {
		st.Mean = float64(total) / float64(st.Pairs)
	}
	return st, nil
}

// String renders the stats compactly.
func (s HopStats) String() string {
	return fmt.Sprintf("hops max=%d avg=%.2f over %d pairs", s.Max, s.Mean, s.Pairs)
}

// Bisection computes the network's bisection bandwidth in links: the
// minimum number of links crossing any partition of the end nodes into two
// equal halves, with routers placed optimally. Structural cuts registered
// by the builder seed the search; results are exact for networks with at
// most 16 end nodes and a certified-achievable upper bound otherwise.
func Bisection(net *topology.Network, restarts int, seed int64) graph.BisectionResult {
	w := make([]int, net.NumDevices())
	for _, nd := range net.Nodes() {
		w[nd] = 1
	}
	return graph.MinBisection(graph.BisectionProblem{
		G:      net.Ugraph(),
		Weight: w,
		Seeds:  net.SeedCuts(),
	}, restarts, seed)
}

// Cost tallies the hardware a topology spends.
type Cost struct {
	Routers        int
	Links          int     // full-duplex cables, including node attachments
	InterRouter    int     // cables between routers only
	RoutersPerNode float64 // the cost figure Table 2 compares (28 vs 48)
}

// CostOf computes the cost summary of a network.
func CostOf(net *topology.Network) Cost {
	c := Cost{Routers: net.NumRouters(), Links: net.NumLinks()}
	for _, l := range net.Links() {
		if net.Device(l.A.Device).Kind == topology.Router &&
			net.Device(l.B.Device).Kind == topology.Router {
			c.InterRouter++
		}
	}
	if net.NumNodes() > 0 {
		c.RoutersPerNode = float64(c.Routers) / float64(net.NumNodes())
	}
	return c
}

// StretchStats reports routing stretch: the ratio of routed router-hops to
// the shortest possible router-hops in the device graph. Deterministic
// restricted routings may be non-minimal (generic up*/down* detours through
// the root region); the paper's fractahedral algorithm is minimal, which
// Stretch certifies.
type StretchStats struct {
	Max  float64
	Mean float64
	// NonMinimal counts ordered pairs routed longer than the shortest path.
	NonMinimal int
	Pairs      int
}

// Stretch compares every pair's routed hop count to the BFS shortest path.
func Stretch(t *routing.Tables) (StretchStats, error) {
	g := t.Net.Ugraph()
	// BFS from each node's attach point over the device graph; device
	// distance between nodes = routers on the shortest path + 1... node to
	// node BFS distance counts edges: routers traversed = dist - 1.
	var st StretchStats
	total := 0.0
	n := t.Net.NumNodes()
	for s := 0; s < n; s++ {
		dist := g.BFS(int(t.Net.NodeByIndex(s)))
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			r, err := t.Route(s, d)
			if err != nil {
				return StretchStats{}, err
			}
			shortest := dist[int(t.Net.NodeByIndex(d))] - 1
			if shortest <= 0 {
				return StretchStats{}, fmt.Errorf("metrics: degenerate shortest path %d->%d", s, d)
			}
			ratio := float64(r.RouterHops()) / float64(shortest)
			total += ratio
			st.Pairs++
			if ratio > st.Max {
				st.Max = ratio
			}
			if r.RouterHops() > shortest {
				st.NonMinimal++
			}
		}
	}
	if st.Pairs > 0 {
		st.Mean = total / float64(st.Pairs)
	}
	return st, nil
}
