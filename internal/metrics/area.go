package metrics

import "fmt"

// Router area model. §2 of the paper rejects virtual-channel deadlock
// avoidance because "the cost of the buffers can be quite significant
// because buffering space may dominate the area of a typical router", and
// §2.1 notes the 6-port router "offers the best price-performance point
// given the available pins and gates". This model makes those trade-offs
// numeric in abstract gate units: a P-port crossbar grows as P^2, each
// buffered flit costs a constant, and each virtual channel multiplies the
// buffer count.

// AreaModel holds the cost coefficients, in arbitrary gate units.
type AreaModel struct {
	CrossbarPerPort2 float64 // crossbar cost per port^2
	GatesPerFlit     float64 // buffer cost per stored flit
	ControlPerPort   float64 // arbitration/table logic per port
}

// DefaultAreaModel weights buffers heavily relative to the crossbar,
// following the paper's remark that buffering dominates. The absolute units
// are arbitrary; only ratios are meaningful.
func DefaultAreaModel() AreaModel {
	return AreaModel{CrossbarPerPort2: 1, GatesPerFlit: 8, ControlPerPort: 4}
}

// RouterArea estimates the area of one router with the given port count,
// virtual channels per port, and FIFO depth (flits) per virtual channel.
func (m AreaModel) RouterArea(ports, vcs, depth int) float64 {
	if ports < 1 || vcs < 1 || depth < 0 {
		panic(fmt.Sprintf("metrics: bad router shape ports=%d vcs=%d depth=%d", ports, vcs, depth))
	}
	crossbar := m.CrossbarPerPort2 * float64(ports*ports)
	buffers := m.GatesPerFlit * float64(ports*vcs*depth)
	control := m.ControlPerPort * float64(ports*vcs)
	return crossbar + buffers + control
}

// NetworkArea estimates total router silicon for a network of identical
// routers.
func (m AreaModel) NetworkArea(routers, ports, vcs, depth int) float64 {
	return float64(routers) * m.RouterArea(ports, vcs, depth)
}

// BufferShare reports the fraction of a router's area spent on buffering —
// the quantity behind §2's objection to virtual channels.
func (m AreaModel) BufferShare(ports, vcs, depth int) float64 {
	total := m.RouterArea(ports, vcs, depth)
	if total == 0 {
		return 0
	}
	return m.GatesPerFlit * float64(ports*vcs*depth) / total
}
