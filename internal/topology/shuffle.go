package topology

import "fmt"

// Shuffle-exchange ports per router: exchange, shuffle (toward the left
// rotation), unshuffle (toward the right rotation), node.
const (
	SEPortExchange  = 0
	SEPortShuffle   = 1
	SEPortUnshuffle = 2
	SEPortNode      = 3
)

// ShuffleExchange is a shuffle-exchange network (another §2-listed MPP
// topology) over 2^d routers: router w has an exchange link to w^1 and a
// shuffle link to rotl(w) (full-duplex, so the reverse direction serves as
// the unshuffle). Routers whose left rotation is themselves (all-zeros and
// all-ones) have no shuffle link.
type ShuffleExchange struct {
	*Network
	Dim     int
	Routers []DeviceID
}

// NewShuffleExchange builds a d-dimensional shuffle-exchange network with
// one end node per router.
func NewShuffleExchange(d int) *ShuffleExchange {
	if d < 2 {
		panic(fmt.Sprintf("topology: shuffle-exchange needs dimension >= 2, got %d", d))
	}
	se := &ShuffleExchange{
		Network: New(fmt.Sprintf("shuffle-exchange-%d", d)),
		Dim:     d,
	}
	n := 1 << d
	for w := 0; w < n; w++ {
		se.Routers = append(se.Routers, se.AddRouter(fmt.Sprintf("R%0*b", d, w), 4))
	}
	rotl := func(w int) int { return ((w << 1) | (w >> (d - 1))) & (n - 1) }
	for w := 0; w < n; w++ {
		if w < w^1 {
			se.Connect(se.Routers[w], SEPortExchange, se.Routers[w^1], SEPortExchange)
		}
		r := rotl(w)
		if r == w {
			continue // fixed points 00..0 and 11..1 have no shuffle link
		}
		// Create each shuffle cable from its source side. For 2-cycles of
		// the rotation (e.g. 0101... <-> 1010...), rotl(rotl(w)) == w: the
		// single cable serves both directions, created once.
		if rotl(r) == w {
			if w < r {
				se.Connect(se.Routers[w], SEPortShuffle, se.Routers[r], SEPortShuffle)
			}
			continue
		}
		se.Connect(se.Routers[w], SEPortShuffle, se.Routers[r], SEPortUnshuffle)
	}
	for w := 0; w < n; w++ {
		nd := se.AddNode(fmt.Sprintf("N%d", w))
		se.Connect(se.Routers[w], SEPortNode, nd, 0)
	}
	se.MustValidate()
	return se
}

// Rotl returns the left rotation of a router index.
func (se *ShuffleExchange) Rotl(w int) int {
	n := 1 << se.Dim
	return ((w << 1) | (w >> (se.Dim - 1))) & (n - 1)
}
