package topology

import "fmt"

// Hypercube is a d-dimensional binary hypercube of routers, with nodesPer
// end nodes per router. Router i (0 <= i < 2^d) differs from its neighbor
// across dimension k by bit k. Port k (0 <= k < d) is the dimension-k link;
// node ports follow.
//
// §3.2 of the paper observes that a 64-node (6-D) hypercube needs 7-port
// routers, so it cannot be built from ServerNet's 6-port parts; the builder
// exposes the port arithmetic (PortsNeeded) for that comparison.
type Hypercube struct {
	*Network
	Dim      int
	NodesPer int
	Routers  []DeviceID // router index = hypercube coordinate
}

// HypercubePortsNeeded reports the router port count a d-dimensional
// hypercube with nodesPer nodes per router requires.
func HypercubePortsNeeded(dim, nodesPer int) int { return dim + nodesPer }

// NewHypercube builds a d-dimensional hypercube. Node address r*nodesPer+j
// is the j-th node of router r.
func NewHypercube(dim, nodesPer int) *Hypercube {
	if dim < 1 || dim > 20 || nodesPer < 0 {
		panic(fmt.Sprintf("topology: bad hypercube dim=%d nodesPer=%d", dim, nodesPer))
	}
	h := &Hypercube{
		Network:  New(fmt.Sprintf("hypercube-%dd", dim)),
		Dim:      dim,
		NodesPer: nodesPer,
	}
	n := 1 << dim
	for i := 0; i < n; i++ {
		h.Routers = append(h.Routers, h.AddRouter(fmt.Sprintf("R%0*b", dim, i), dim+nodesPer))
	}
	for i := 0; i < n; i++ {
		for k := 0; k < dim; k++ {
			j := i ^ (1 << k)
			if i < j {
				h.Connect(h.Routers[i], k, h.Routers[j], k)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < nodesPer; j++ {
			nd := h.AddNode(fmt.Sprintf("N%d", i*nodesPer+j))
			h.Connect(h.Routers[i], dim+j, nd, 0)
		}
	}
	// Structural cut: split on the top dimension bit.
	side := make([]bool, h.NumDevices())
	for i := 0; i < n; i++ {
		right := i&(1<<(dim-1)) != 0
		side[h.Routers[i]] = right
	}
	for _, nd := range h.Nodes() {
		side[nd] = side[h.Routers[h.NodeIndex(nd)/maxInt(nodesPer, 1)]]
	}
	h.AddSeedCut(side)
	h.MustValidate()
	return h
}

// RouterOfNode returns the hypercube coordinate serving node address idx.
func (h *Hypercube) RouterOfNode(idx int) int { return idx / h.NodesPer }

// NodePort returns the router port carrying node address idx.
func (h *Hypercube) NodePort(idx int) int { return h.Dim + idx%h.NodesPer }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
