package topology

import "fmt"

// FractConfig parameterizes a fractahedron (§2.2–2.3 of the paper). The
// paper's concrete family uses tetrahedral ensembles of 6-port routers:
// Group = 4, Down = 2, giving the 2-3-1 port split (2 down, 3 intra, 1 up).
// The construction generalizes to any fully-connected group, which the
// paper's conclusion calls out; Group and Down expose that generalization.
type FractConfig struct {
	Group  int  // routers per fully-connected ensemble (4 = tetrahedron)
	Down   int  // down ports per router (2 in the paper)
	Levels int  // recursion depth N >= 1
	Fat    bool // replicate higher-level ensembles into layers (§2.3)

	// Fanout adds the paper's extra router level between end nodes and the
	// level-1 ensembles: each level-1 down port carries a fan-out router
	// serving FanoutNodes CPUs. With Group=4, Down=2, FanoutNodes=2 this
	// yields the paper's 2*8^N node counts (Table 1).
	Fanout      bool
	FanoutNodes int // children per fan-out router; defaults to 2 when Fanout
	// FanoutDepth is the number of added router levels between a level-1
	// down port and the end nodes (§2.2: "one or two added router levels
	// are typically needed"). Defaults to 1 when Fanout; each level
	// multiplies capacity by FanoutNodes.
	FanoutDepth int

	// Populate, when positive, occupies only the first Populate level-1
	// down positions ("the topology scales to any number of nodes", §4):
	// ensembles whose address range is empty are not built, and growing
	// Populate — or Levels — only ever ADDS links, never rewires existing
	// ones, the §2.3 expansion property the tests verify.
	Populate int
}

// Tetra is the paper's tetrahedral configuration at a given depth.
func Tetra(levels int, fat bool) FractConfig {
	return FractConfig{Group: 4, Down: 2, Levels: levels, Fat: fat}
}

// Children reports the number of child positions per ensemble (Group*Down).
func (c FractConfig) Children() int { return c.Group * c.Down }

// RouterPorts reports the ports each router needs: Down + (Group-1) + 1 up.
func (c FractConfig) RouterPorts() int { return c.Down + c.Group - 1 + 1 }

// Addresses reports the number of occupied level-1 down positions:
// (Group*Down)^Levels, or Populate when a partial population is requested.
func (c FractConfig) Addresses() int {
	full := pow(c.Children(), c.Levels)
	if c.Populate > 0 && c.Populate < full {
		return c.Populate
	}
	return full
}

// MaxNodes reports the end-node capacity: Addresses(), times
// FanoutNodes^FanoutDepth when the fan-out stage is present.
func (c FractConfig) MaxNodes() int {
	if c.Fanout {
		return c.Addresses() * c.NodesPerAddress()
	}
	return c.Addresses()
}

// FanoutDepthOrDefault returns the fan-out stage depth (1 when unset).
func (c FractConfig) FanoutDepthOrDefault() int {
	if c.FanoutDepth > 0 {
		return c.FanoutDepth
	}
	return 1
}

// NodesPerAddress reports the end nodes served by one level-1 down port.
func (c FractConfig) NodesPerAddress() int {
	if !c.Fanout {
		return 1
	}
	return pow(c.FanoutNodesOrDefault(), c.FanoutDepthOrDefault())
}

// Layers reports the layer count of a level-k ensemble: Group^(k-1) for fat
// fractahedrons (level 1 always has a single layer), 1 for thin.
func (c FractConfig) Layers(level int) int {
	if !c.Fat || level == 1 {
		return 1
	}
	return pow(c.Group, level-1)
}

// FanoutNodesOrDefault returns the nodes each fan-out router serves,
// defaulting to the paper's pair of CPUs.
func (c FractConfig) FanoutNodesOrDefault() int {
	if c.FanoutNodes > 0 {
		return c.FanoutNodes
	}
	return 2
}

func (c FractConfig) name() string {
	kind := "thin"
	if c.Fat {
		kind = "fat"
	}
	fan := ""
	if c.Fanout {
		fan = "-fan"
	}
	return fmt.Sprintf("%s-fractahedron-g%dd%d-N%d%s", kind, c.Group, c.Down, c.Levels, fan)
}

func (c FractConfig) validate() {
	if c.Group < 2 {
		panic(fmt.Sprintf("topology: fractahedron group %d < 2", c.Group))
	}
	if c.Down < 1 {
		panic(fmt.Sprintf("topology: fractahedron down ports %d < 1", c.Down))
	}
	if c.Levels < 1 {
		panic(fmt.Sprintf("topology: fractahedron levels %d < 1", c.Levels))
	}
	if c.Populate < 0 || c.Populate > pow(c.Children(), c.Levels) {
		panic(fmt.Sprintf("topology: fractahedron population %d out of range", c.Populate))
	}
	if c.Fanout && c.FanoutNodesOrDefault() > c.RouterPorts()-1 {
		panic(fmt.Sprintf("topology: %d fan-out children exceed the %d-port budget",
			c.FanoutNodesOrDefault(), c.RouterPorts()))
	}
}

// exists reports whether ensemble e at a level holds any occupied address.
func (c FractConfig) exists(level, e int) bool {
	return e*pow(c.Children(), level) < c.Addresses()
}

// FractRouter is the structural position of a fractahedron router: the
// recursion level, the ensemble index at that level (0 at the top level),
// the layer within the ensemble (always 0 for thin and for level 1), and
// the router index within the layer's fully-connected group.
type FractRouter struct {
	Level, Ensemble, Layer, R int
}

// Fractahedron is a thin or fat fractahedral network (Figures 4, 5 and 7 of
// the paper).
//
// Addressing: a level-1 down position ("address") a in [0, Children^Levels)
// has one base-Children digit per level, Digit(a, k) for k = Levels..1; each
// digit (r*Down+p) selects router r and down port p inside the level-k
// ensemble on the path. Ensemble e at level k covers addresses
// [e*Children^k, (e+1)*Children^k).
//
// Port layout per router: ports 0..Down-1 down; Down..Down+Group-2 intra
// (port Down+IntraIndex(r,s) of router r leads to router s); the last port
// is up. Up ports of the top level are left unwired, reserved for expansion
// exactly as the paper prescribes.
type Fractahedron struct {
	*Network
	Cfg FractConfig

	routers map[FractRouter]DeviceID
	meta    map[DeviceID]FractRouter
	fanouts []DeviceID          // top fan-out router per address, when Cfg.Fanout
	fanSpan map[DeviceID][2]int // per fan-out router: node index range [lo, hi)
}

// NewFractahedron builds the fractahedron described by cfg, fully populated.
func NewFractahedron(cfg FractConfig) *Fractahedron {
	cfg.validate()
	f := &Fractahedron{
		Network: New(cfg.name()),
		Cfg:     cfg,
		routers: make(map[FractRouter]DeviceID),
		meta:    make(map[DeviceID]FractRouter),
		fanSpan: make(map[DeviceID][2]int),
	}
	C := cfg.Children()

	// Routers and intra-ensemble (fully connected) links; only ensembles
	// holding occupied addresses are built.
	for level := 1; level <= cfg.Levels; level++ {
		ensembles := pow(C, cfg.Levels-level)
		for e := 0; e < ensembles; e++ {
			if !cfg.exists(level, e) {
				continue
			}
			for layer := 0; layer < cfg.Layers(level); layer++ {
				for r := 0; r < cfg.Group; r++ {
					key := FractRouter{level, e, layer, r}
					id := f.AddRouter(fmt.Sprintf("L%d.e%d.l%d.r%d", level, e, layer, r), cfg.RouterPorts())
					f.routers[key] = id
					f.meta[id] = key
				}
				for r := 0; r < cfg.Group; r++ {
					for s := r + 1; s < cfg.Group; s++ {
						f.Connect(
							f.routers[FractRouter{level, e, layer, r}], f.IntraPort(r, s),
							f.routers[FractRouter{level, e, layer, s}], f.IntraPort(s, r))
					}
				}
			}
		}
	}

	// Inter-level down links for levels >= 2, to existing children only.
	for level := cfg.Levels; level >= 2; level-- {
		ensembles := pow(C, cfg.Levels-level)
		for e := 0; e < ensembles; e++ {
			if !cfg.exists(level, e) {
				continue
			}
			for layer := 0; layer < cfg.Layers(level); layer++ {
				for r := 0; r < cfg.Group; r++ {
					for p := 0; p < cfg.Down; p++ {
						child := e*C + r*cfg.Down + p
						if !cfg.exists(level-1, child) {
							continue
						}
						var childKey FractRouter
						if cfg.Fat {
							// Layer index decomposes as m*Layers(level-1)+s:
							// m names the corner of the child ensemble, s the
							// child layer reached.
							m := layer / cfg.Layers(level-1)
							s := layer % cfg.Layers(level-1)
							childKey = FractRouter{level - 1, child, s, m}
						} else {
							childKey = FractRouter{level - 1, child, 0, 0}
						}
						f.Connect(f.routers[FractRouter{level, e, layer, r}], p,
							f.routers[childKey], f.UpPort())
					}
				}
			}
		}
	}

	// Level-1 down links: end nodes, or fan-out trees carrying end nodes.
	for a := 0; a < cfg.Addresses(); a++ {
		e, r, p := a/C, (a%C)/cfg.Down, a%cfg.Down
		l1 := f.routers[FractRouter{1, e, 0, r}]
		if cfg.Fanout {
			fan := f.buildFanout(a, a*cfg.NodesPerAddress(), cfg.FanoutDepthOrDefault())
			f.fanouts = append(f.fanouts, fan)
			f.Connect(l1, p, fan, f.UpPort())
		} else {
			nd := f.AddNode(fmt.Sprintf("N%d", a))
			f.Connect(l1, p, nd, 0)
		}
	}

	// Structural cut: addresses below the midpoint vs above. With Children=8
	// this puts the children of top routers 0,1 on one side and of 2,3 on
	// the other — the cut §2.3's layer analysis makes natural.
	side := make([]bool, f.NumDevices())
	for _, nd := range f.Nodes() {
		side[nd] = f.NodeIndex(nd) >= f.NumNodes()/2
	}
	f.AddSeedCut(side)

	f.MustValidate()
	return f
}

// buildFanout creates a fan-out subtree of the given depth serving node
// indices [base, base + FanoutNodes^depth) and returns its root router.
func (f *Fractahedron) buildFanout(addr, base, depth int) DeviceID {
	k := f.Cfg.FanoutNodesOrDefault()
	span := pow(k, depth)
	root := f.AddRouter(fmt.Sprintf("F%d.d%d.n%d", addr, depth, base), f.Cfg.RouterPorts())
	f.fanSpan[root] = [2]int{base, base + span}
	for j := 0; j < k; j++ {
		if depth == 1 {
			nd := f.AddNode(fmt.Sprintf("N%d", base+j))
			f.Connect(root, j, nd, 0)
			continue
		}
		child := f.buildFanout(addr, base+j*span/k, depth-1)
		f.Connect(root, j, child, f.UpPort())
	}
	return root
}

// FanoutSpan returns the node index range [lo, hi) a fan-out router serves.
func (f *Fractahedron) FanoutSpan(r DeviceID) (lo, hi int) {
	span, ok := f.fanSpan[r]
	if !ok {
		panic(fmt.Sprintf("topology: device %d is not a fan-out router", r))
	}
	return span[0], span[1]
}

// IntraPort returns the port on router r leading to router s of the same
// layer (r != s).
func (f *Fractahedron) IntraPort(r, s int) int {
	if r == s {
		panic("topology: IntraPort of a router to itself")
	}
	if s < r {
		return f.Cfg.Down + s
	}
	return f.Cfg.Down + s - 1
}

// UpPort returns the port index every router uses toward the next level.
func (f *Fractahedron) UpPort() int { return f.Cfg.RouterPorts() - 1 }

// Meta returns the structural position of a fractahedron router. Fan-out
// routers report level 0, with Ensemble holding the address they serve.
func (f *Fractahedron) Meta(r DeviceID) FractRouter {
	if m, ok := f.meta[r]; ok {
		return m
	}
	if span, ok := f.fanSpan[r]; ok {
		return FractRouter{Level: 0, Ensemble: span[0] / f.Cfg.NodesPerAddress()}
	}
	panic(fmt.Sprintf("topology: device %d is not a fractahedron router", r))
}

// RouterAt returns the router at a structural position.
func (f *Fractahedron) RouterAt(key FractRouter) DeviceID {
	r, ok := f.routers[key]
	if !ok {
		panic(fmt.Sprintf("topology: no fractahedron router at %+v", key))
	}
	return r
}

// Fanout returns the fan-out router serving an address (only when the
// configuration has a fan-out stage).
func (f *Fractahedron) Fanout(a int) DeviceID {
	if !f.Cfg.Fanout {
		panic("topology: fractahedron has no fan-out stage")
	}
	return f.fanouts[a]
}

// AddrOfNode returns the level-1 down position serving node address idx.
func (f *Fractahedron) AddrOfNode(idx int) int {
	return idx / f.Cfg.NodesPerAddress()
}

// Digit extracts the base-Children digit of an address at a level (1-based).
func (f *Fractahedron) Digit(a, level int) int {
	return a / pow(f.Cfg.Children(), level-1) % f.Cfg.Children()
}

// CommonLevel returns the lowest level whose ensemble contains both
// addresses (1 if they share a level-1 ensemble).
func (f *Fractahedron) CommonLevel(a, b int) int {
	C := f.Cfg.Children()
	capacity := C
	for l := 1; l <= f.Cfg.Levels; l++ {
		if a/capacity == b/capacity {
			return l
		}
		capacity *= C
	}
	panic(fmt.Sprintf("topology: addresses %d and %d share no ensemble", a, b))
}

// EnsembleAt returns the ensemble index containing an address at a level.
func (f *Fractahedron) EnsembleAt(a, level int) int {
	return a / pow(f.Cfg.Children(), level)
}
