package topology

import "fmt"

// CCC ports per router: the two cycle directions, the cube link, then the
// node port.
const (
	CCCPortCW   = 0 // toward position (i+1) mod d
	CCCPortCCW  = 1 // toward position (i-1) mod d
	CCCPortCube = 2
	CCCPortNode = 3
)

// CCC is a cube-connected cycles network (one of the MPP topologies §2 of
// the paper lists): each corner w of a d-dimensional hypercube is replaced
// by a cycle of d routers, and router (w, i) carries the cube link of
// dimension i. Routers need only 4 ports (3 network + 1 node) regardless of
// dimension — the property CCC trades hop count for.
type CCC struct {
	*Network
	Dim     int
	Routers [][]DeviceID // [corner][position]
}

// NewCCC builds a d-dimensional cube-connected cycles network with one end
// node per router, d*2^d nodes in total. Node address w*d + i is the node
// of router (w, i). d must be at least 3 so the cycles are simple.
func NewCCC(d int) *CCC {
	if d < 3 {
		panic(fmt.Sprintf("topology: CCC needs dimension >= 3, got %d", d))
	}
	c := &CCC{
		Network: New(fmt.Sprintf("ccc-%d", d)),
		Dim:     d,
	}
	n := 1 << d
	c.Routers = make([][]DeviceID, n)
	for w := 0; w < n; w++ {
		c.Routers[w] = make([]DeviceID, d)
		for i := 0; i < d; i++ {
			c.Routers[w][i] = c.AddRouter(fmt.Sprintf("R%0*b.%d", d, w, i), 4)
		}
	}
	for w := 0; w < n; w++ {
		for i := 0; i < d; i++ {
			// Cycle link toward position i+1.
			c.Connect(c.Routers[w][i], CCCPortCW, c.Routers[w][(i+1)%d], CCCPortCCW)
			// Cube link of dimension i, created once per pair.
			if w < w^(1<<i) {
				c.Connect(c.Routers[w][i], CCCPortCube, c.Routers[w^(1<<i)][i], CCCPortCube)
			}
		}
	}
	for w := 0; w < n; w++ {
		for i := 0; i < d; i++ {
			nd := c.AddNode(fmt.Sprintf("N%d", w*d+i))
			c.Connect(c.Routers[w][i], CCCPortNode, nd, 0)
		}
	}
	// Structural cut: top cube dimension.
	side := make([]bool, c.NumDevices())
	for w := 0; w < n; w++ {
		right := w&(1<<(d-1)) != 0
		for i := 0; i < d; i++ {
			side[c.Routers[w][i]] = right
		}
	}
	for _, nd := range c.Nodes() {
		idx := c.NodeIndex(nd)
		side[nd] = (idx/d)&(1<<(d-1)) != 0
	}
	c.AddSeedCut(side)
	c.MustValidate()
	return c
}

// Position returns the (corner, position) of a node address.
func (c *CCC) Position(nodeIdx int) (w, i int) { return nodeIdx / c.Dim, nodeIdx % c.Dim }
