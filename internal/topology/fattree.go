package topology

import "fmt"

// FatTree is a D-U fat tree (§3.3 of the paper): routers with D+U ports
// spend D ports toward the leaves and U toward the root. The structure is
// recursive: a height-1 subtree is a single leaf router with D nodes; a
// height-l subtree is D height-(l-1) subtrees joined by U^(l-1) new routers,
// with exposed link j of subtree i wired to new router j's down port i.
//
// A 4-2 fat tree over 64 nodes therefore has 16+8+4 = 28 routers (Figure 6);
// a 3-3 fat tree over 64 nodes, trimmed to occupied subtrees, has exactly
// the 100 routers §3.4 quotes. U = 1 degenerates to the simple tree of §2.
//
// Port layout per router: ports 0..D-1 down, ports D..D+U-1 up.
//
// Identification: the T(l) instance with index t covers node addresses
// [t*D^l, (t+1)*D^l); its level-l routers are (l, t, j) for j in [0, U^(l-1)).
// Instances (and their routers) are built only when their node range is
// occupied.
type FatTree struct {
	*Network
	D, U   int
	Levels int
	NNodes int

	routers map[ftKey]DeviceID
	meta    map[DeviceID]FTRouter
}

type ftKey struct{ level, inst, j int }

// FTRouter is the structural position of a fat-tree router.
type FTRouter struct {
	Level int // 1 = leaf level
	Inst  int // T(Level) instance index
	J     int // router index within the instance's level, in [0, U^(Level-1))
}

// NewFatTree builds a D-U fat tree over nodes end nodes, with the minimum
// height whose capacity D^L covers them.
func NewFatTree(d, u, nodes int) *FatTree {
	if d < 1 || u < 1 || nodes < 1 {
		panic(fmt.Sprintf("topology: bad fat tree d=%d u=%d nodes=%d", d, u, nodes))
	}
	levels := 1
	for cap := d; cap < nodes; cap *= d {
		levels++
	}
	return NewFatTreeLevels(d, u, levels, nodes)
}

// NewFatTreeLevels builds a D-U fat tree with an explicit height.
func NewFatTreeLevels(d, u, levels, nodes int) *FatTree {
	if pow(d, levels) < nodes {
		panic(fmt.Sprintf("topology: %d levels of %d-%d fat tree hold only %d nodes, need %d",
			levels, d, u, pow(d, levels), nodes))
	}
	ft := &FatTree{
		Network: New(fmt.Sprintf("fattree-%d-%d-n%d", d, u, nodes)),
		D:       d,
		U:       u,
		Levels:  levels,
		NNodes:  nodes,
		routers: make(map[ftKey]DeviceID),
		meta:    make(map[DeviceID]FTRouter),
	}
	// Routers level by level, instantiating only occupied instances.
	for l := 1; l <= levels; l++ {
		capacity := pow(d, l)
		insts := (nodes + capacity - 1) / capacity
		perInst := pow(u, l-1)
		for t := 0; t < insts; t++ {
			for j := 0; j < perInst; j++ {
				r := ft.AddRouter(fmt.Sprintf("L%d.%d.%d", l, t, j), d+u)
				ft.routers[ftKey{l, t, j}] = r
				ft.meta[r] = FTRouter{Level: l, Inst: t, J: j}
			}
		}
	}
	// Nodes, attached to leaves. Node address n is port n%D of leaf n/D.
	for n := 0; n < nodes; n++ {
		nd := ft.AddNode(fmt.Sprintf("N%d", n))
		ft.Connect(ft.routers[ftKey{1, n / d, 0}], n%d, nd, 0)
	}
	// Up links: router (l, t, j), up port v, connects to parent
	// (l+1, t/D, j*U+v) down port t%D.
	for l := 1; l < levels; l++ {
		capacity := pow(d, l)
		insts := (nodes + capacity - 1) / capacity
		perInst := pow(u, l-1)
		for t := 0; t < insts; t++ {
			for j := 0; j < perInst; j++ {
				for v := 0; v < u; v++ {
					child := ft.routers[ftKey{l, t, j}]
					parent := ft.routers[ftKey{l + 1, t / d, j*u + v}]
					ft.Connect(child, d+v, parent, t%d)
				}
			}
		}
	}
	// Structural cut: lower half of node addresses vs upper half.
	if nodes%2 == 0 {
		side := make([]bool, ft.NumDevices())
		for _, nd := range ft.Nodes() {
			side[nd] = ft.NodeIndex(nd) >= nodes/2
		}
		ft.AddSeedCut(side)
	}
	ft.MustValidate()
	return ft
}

// Meta returns the structural position of a fat-tree router.
func (ft *FatTree) Meta(r DeviceID) FTRouter {
	m, ok := ft.meta[r]
	if !ok {
		panic(fmt.Sprintf("topology: device %d is not a fat-tree router", r))
	}
	return m
}

// RouterAt returns the router at structural position (level, inst, j).
func (ft *FatTree) RouterAt(level, inst, j int) DeviceID {
	r, ok := ft.routers[ftKey{level, inst, j}]
	if !ok {
		panic(fmt.Sprintf("topology: no fat-tree router at L%d.%d.%d", level, inst, j))
	}
	return r
}

// Leaf returns the leaf router serving node address n.
func (ft *FatTree) Leaf(n int) DeviceID { return ft.RouterAt(1, n/ft.D, 0) }

// CommonLevel returns the lowest level l such that node addresses a and b
// fall in the same T(l) instance (1 if they share a leaf).
func (ft *FatTree) CommonLevel(a, b int) int {
	capacity := ft.D
	for l := 1; l <= ft.Levels; l++ {
		if a/capacity == b/capacity {
			return l
		}
		capacity *= ft.D
	}
	panic(fmt.Sprintf("topology: nodes %d and %d share no subtree", a, b))
}

// InstAt returns the T(level) instance index containing node address n.
func (ft *FatTree) InstAt(n, level int) int { return n / pow(ft.D, level) }

// RouterCountAtLevel reports the number of routers instantiated at a level.
func (ft *FatTree) RouterCountAtLevel(l int) int {
	cnt := 0
	for k := range ft.routers {
		if k.level == l {
			cnt++
		}
	}
	return cnt
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
	}
	return p
}
