package topology

import "fmt"

// Ring port layout: clockwise, counter-clockwise, then node ports.
const (
	RingPortCW    = 0
	RingPortCCW   = 1
	RingPortNode0 = 2
)

// Ring is a cycle of routers with nodesPer end nodes each. It is the
// smallest topology containing a loop and is used to demonstrate Figure 1's
// wormhole deadlock.
type Ring struct {
	*Network
	Size     int
	NodesPer int
	Routers  []DeviceID
}

// NewRing builds a ring of size routers. Node address r*nodesPer+j is the
// j-th node of router r. Port RingPortCW of router r leads to router
// (r+1) mod size.
func NewRing(size, nodesPer int) *Ring {
	if size < 3 {
		panic(fmt.Sprintf("topology: ring needs at least 3 routers, got %d", size))
	}
	r := &Ring{
		Network:  New(fmt.Sprintf("ring-%d", size)),
		Size:     size,
		NodesPer: nodesPer,
	}
	for i := 0; i < size; i++ {
		r.Routers = append(r.Routers, r.AddRouter(fmt.Sprintf("R%d", i), 2+nodesPer))
	}
	for i := 0; i < size; i++ {
		r.Connect(r.Routers[i], RingPortCW, r.Routers[(i+1)%size], RingPortCCW)
	}
	for i := 0; i < size; i++ {
		for j := 0; j < nodesPer; j++ {
			nd := r.AddNode(fmt.Sprintf("N%d", i*nodesPer+j))
			r.Connect(r.Routers[i], RingPortNode0+j, nd, 0)
		}
	}
	r.MustValidate()
	return r
}

// RouterOfNode returns the ring position serving node address idx.
func (r *Ring) RouterOfNode(idx int) int { return idx / r.NodesPer }

// NodePort returns the router port carrying node address idx.
func (r *Ring) NodePort(idx int) int { return RingPortNode0 + idx%r.NodesPer }
