package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a network from a simple line-oriented description, so the
// analysis and simulation tooling can be pointed at arbitrary hand-drawn
// topologies (cmd tools accept it via the "file:" spec):
//
//	# comment (blank lines ignored)
//	router <name> <ports>
//	node <name>
//	link <a>[:<port>] <b>[:<port>]
//
// Device names must be unique. A link endpoint without an explicit port
// uses the device's lowest free port. The parsed network is validated
// (every node wired, connected) before being returned.
func Parse(r io.Reader, name string) (*Network, error) {
	net := New(name)
	devs := make(map[string]DeviceID)

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("topology: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "router":
			if len(fields) != 3 {
				return nil, fail("want 'router <name> <ports>'")
			}
			ports, err := strconv.Atoi(fields[2])
			if err != nil || ports < 1 || ports > 1024 {
				return nil, fail("bad port count %q", fields[2])
			}
			if _, dup := devs[fields[1]]; dup {
				return nil, fail("duplicate device %q", fields[1])
			}
			devs[fields[1]] = net.AddRouter(fields[1], ports)
		case "node":
			if len(fields) != 2 {
				return nil, fail("want 'node <name>'")
			}
			if _, dup := devs[fields[1]]; dup {
				return nil, fail("duplicate device %q", fields[1])
			}
			devs[fields[1]] = net.AddNode(fields[1])
		case "link":
			if len(fields) != 3 {
				return nil, fail("want 'link <a>[:<port>] <b>[:<port>]'")
			}
			a, ap, err := endpoint(devs, fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			b, bp, err := endpoint(devs, fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			if err := safeConnect(net, a, ap, b, bp); err != nil {
				return nil, fail("%v", err)
			}
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

func endpoint(devs map[string]DeviceID, s string) (DeviceID, int, error) {
	name, portStr, hasPort := strings.Cut(s, ":")
	d, ok := devs[name]
	if !ok {
		return 0, 0, fmt.Errorf("unknown device %q", name)
	}
	if !hasPort {
		return d, -1, nil
	}
	p, err := strconv.Atoi(portStr)
	if err != nil || p < 0 {
		return 0, 0, fmt.Errorf("bad port %q", portStr)
	}
	return d, p, nil
}

// safeConnect performs Connect/ConnectNext, converting builder panics
// (port collisions, out-of-range ports) into errors a parser can report.
func safeConnect(net *Network, a DeviceID, ap int, b DeviceID, bp int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if ap < 0 {
		ap = net.FreePort(a)
	}
	if bp < 0 {
		bp = net.FreePort(b)
	}
	net.Connect(a, ap, b, bp)
	return nil
}
