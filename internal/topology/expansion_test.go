package topology

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// linkSet renders a network's links as stable (name:port, name:port) keys,
// order-normalized, so wiring can be compared across rebuilds whose device
// IDs differ.
func linkSet(n *Network) map[string]bool {
	set := make(map[string]bool, n.NumLinks())
	for _, l := range n.Links() {
		a := fmt.Sprintf("%s:%d", n.Device(l.A.Device).Name, l.A.Port)
		b := fmt.Sprintf("%s:%d", n.Device(l.B.Device).Name, l.B.Port)
		if a > b {
			a, b = b, a
		}
		set[a+"|"+b] = true
	}
	return set
}

func subset(small, big map[string]bool) (missing string, ok bool) {
	for k := range small {
		if !big[k] {
			return k, false
		}
	}
	return "", true
}

func TestPartialPopulationCounts(t *testing.T) {
	cfg := Tetra(2, true)
	cfg.Populate = 8 // one level-1 tetrahedron's worth of addresses
	f := NewFractahedron(cfg)
	if f.NumNodes() != 8 {
		t.Fatalf("nodes = %d, want 8", f.NumNodes())
	}
	// One level-1 tetrahedron + the full level-2 layer stack (reserved for
	// the rest of the system): 4 + 16 routers.
	if f.NumRouters() != 20 {
		t.Errorf("routers = %d, want 20", f.NumRouters())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

// §2.3: "we reserve the upward connections from the top level for future
// expansion to avoid the need to remove existing connections as a system is
// expanded." Growing the population only ever adds links.
func TestPopulationExpansionAddsLinksOnly(t *testing.T) {
	for _, fat := range []bool{false, true} {
		prev := map[string]bool{}
		for _, p := range []int{4, 8, 16, 40, 64} {
			cfg := Tetra(2, fat)
			cfg.Populate = p
			f := NewFractahedron(cfg)
			cur := linkSet(f.Network)
			if miss, ok := subset(prev, cur); !ok {
				t.Fatalf("fat=%v: expanding to %d addresses removed link %s", fat, p, miss)
			}
			prev = cur
		}
	}
}

// Growing the DEPTH likewise only adds links: a 16-CPU N=1 system becomes
// part of a 128-CPU N=2 system without rewiring (§2.2's growth path).
func TestDepthExpansionAddsLinksOnly(t *testing.T) {
	for _, fat := range []bool{false, true} {
		for _, fan := range []bool{false, true} {
			small := Tetra(1, fat)
			small.Fanout = fan
			big := Tetra(2, fat)
			big.Fanout = fan
			s := NewFractahedron(small)
			b := NewFractahedron(big)
			if miss, ok := subset(linkSet(s.Network), linkSet(b.Network)); !ok {
				t.Errorf("fat=%v fan=%v: deepening removed link %s", fat, fan, miss)
			}
		}
	}
}

// Property: random populations produce valid, connected networks whose
// wiring is monotone in the population.
func TestPopulationMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := FractConfig{
			Group:  3 + rng.Intn(2),
			Down:   1 + rng.Intn(2),
			Levels: 1 + rng.Intn(2),
			Fat:    rng.Intn(2) == 0,
		}
		full := cfg.Children()
		for i := 1; i < cfg.Levels; i++ {
			full *= cfg.Children()
		}
		p1 := 1 + rng.Intn(full)
		p2 := p1 + rng.Intn(full-p1+1)
		a := cfg
		a.Populate = p1
		b := cfg
		b.Populate = p2
		fa := NewFractahedron(a)
		fb := NewFractahedron(b)
		if fa.NumNodes() != p1 || fb.NumNodes() != p2 {
			return false
		}
		if err := fa.Validate(); err != nil {
			return false
		}
		_, ok := subset(linkSet(fa.Network), linkSet(fb.Network))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// §2.3's wiring description, reconstructed: in a fat N=2 system each
// level-1 tetrahedron's four up-links bundle into one four-conductor cable;
// at N=3 each level-2 ensemble's sixteen up-links form the paper's
// "16-conductor cable".
func TestCableBOM(t *testing.T) {
	f2 := NewFractahedron(Tetra(2, true))
	rows := map[string]CableClass{}
	totalLinks := 0
	for _, r := range f2.CableBOM() {
		rows[fmt.Sprintf("%s/%d", r.Kind, r.Conductors)] = r
		totalLinks += r.Cables * r.Conductors
	}
	if got := rows["L1->L2 bundle/4"]; got.Cables != 8 {
		t.Errorf("N=2: L1->L2 4-conductor cables = %d, want 8", got.Cables)
	}
	if totalLinks != f2.NumLinks() {
		t.Errorf("BOM covers %d links, network has %d", totalLinks, f2.NumLinks())
	}

	f3 := NewFractahedron(Tetra(3, true))
	rows3 := map[string]CableClass{}
	for _, r := range f3.CableBOM() {
		rows3[fmt.Sprintf("%s/%d", r.Kind, r.Conductors)] = r
	}
	if got := rows3["L1->L2 bundle/4"]; got.Cables != 64 {
		t.Errorf("N=3: 4-conductor cables = %d, want 64", got.Cables)
	}
	if got := rows3["L2->L3 bundle/16"]; got.Cables != 8 {
		t.Errorf("N=3: 16-conductor cables = %d, want 8 (the paper's cable)", got.Cables)
	}
}

// Thin fractahedrons use single-link bundles upward.
func TestCableBOMThin(t *testing.T) {
	f := NewFractahedron(Tetra(2, false))
	for _, r := range f.CableBOM() {
		if r.Kind == "L1->L2 bundle" {
			if r.Conductors != 1 || r.Cables != 8 {
				t.Errorf("thin bundle row %+v, want 8 single-conductor cables", r)
			}
		}
	}
	if !strings.Contains(BOMString(f.CableBOM()), "total:") {
		t.Error("BOM text missing total")
	}
}
