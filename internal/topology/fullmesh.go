package topology

import "fmt"

// FullMesh is a fully-connected assembly of M routers (Figure 3 of the
// paper): every pair of routers is joined by one link, and every remaining
// router port carries an end node. With P-port routers, each router spends
// M-1 ports on intra-group links and exposes P-M+1 node ports, so the group
// connects M*(P-M+1) nodes.
//
// Port layout per router: ports 0..M-2 are intra-group (port i of router r
// leads to the i-th other router in increasing ID order), ports M-1..P-1
// carry nodes.
type FullMesh struct {
	*Network
	M              int        // routers in the group
	RouterPorts    int        // ports per router
	NodesPerRouter int        // P - M + 1
	Routers        []DeviceID // the M routers
	NodesOf        [][]DeviceID
}

// NewFullMesh builds a fully-connected group of m routers with ports ports
// each. Node addresses are assigned router-major: node r*(P-M+1)+j is the
// j-th node of router r, so routing needs only the high bits of the address
// to select the router (the property §2.1 of the paper calls out).
func NewFullMesh(m, ports int) *FullMesh {
	if m < 1 {
		panic(fmt.Sprintf("topology: full mesh needs at least 1 router, got %d", m))
	}
	if ports < m {
		panic(fmt.Sprintf("topology: %d-port routers cannot fully connect %d routers", ports, m))
	}
	fm := &FullMesh{
		Network:        New(fmt.Sprintf("fullmesh-%dx%dport", m, ports)),
		M:              m,
		RouterPorts:    ports,
		NodesPerRouter: ports - m + 1,
	}
	for r := 0; r < m; r++ {
		fm.Routers = append(fm.Routers, fm.AddRouter(fmt.Sprintf("R%d", r), ports))
	}
	// Intra-group links: port i of router r leads to the i-th other router.
	for r := 0; r < m; r++ {
		for s := r + 1; s < m; s++ {
			fm.Connect(fm.Routers[r], fm.IntraPort(r, s), fm.Routers[s], fm.IntraPort(s, r))
		}
	}
	fm.NodesOf = make([][]DeviceID, m)
	for r := 0; r < m; r++ {
		for j := 0; j < fm.NodesPerRouter; j++ {
			nd := fm.AddNode(fmt.Sprintf("N%d", r*fm.NodesPerRouter+j))
			fm.Connect(fm.Routers[r], m-1+j, nd, 0)
			fm.NodesOf[r] = append(fm.NodesOf[r], nd)
		}
	}
	fm.MustValidate()
	return fm
}

// IntraPort returns the port on router r that leads to router s (r != s).
func (fm *FullMesh) IntraPort(r, s int) int {
	if r == s {
		panic("topology: IntraPort of a router to itself")
	}
	if s < r {
		return s
	}
	return s - 1
}

// RouterOfNode returns the group-router index serving node address idx.
func (fm *FullMesh) RouterOfNode(idx int) int { return idx / fm.NodesPerRouter }

// NodePort returns the router port carrying node address idx.
func (fm *FullMesh) NodePort(idx int) int { return fm.M - 1 + idx%fm.NodesPerRouter }
