package topology

import (
	"fmt"
	"io"
)

// WriteDOT renders the network in Graphviz DOT form: routers as boxes, end
// nodes as circles, links as undirected edges labeled with the ports they
// join. It is used by cmd/fractagen for visual inspection of constructions.
func (n *Network) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", n.Name); err != nil {
		return err
	}
	for _, d := range n.devices {
		shape := "box"
		if d.Kind == Node {
			shape = "ellipse"
		}
		if _, err := fmt.Fprintf(w, "  d%d [label=%q shape=%s];\n", d.ID, d.Name, shape); err != nil {
			return err
		}
	}
	for _, l := range n.links {
		if _, err := fmt.Fprintf(w, "  d%d -- d%d [label=\"%d:%d\"];\n",
			l.A.Device, l.B.Device, l.A.Port, l.B.Port); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
