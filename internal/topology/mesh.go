package topology

import "fmt"

// Mesh ports on each router: +X, -X, +Y, -Y, then node ports. §3.1 of the
// paper devotes four ports of a 6-port router to the four mesh directions
// and the remaining two to nodes.
const (
	MeshPortXPlus  = 0
	MeshPortXMinus = 1
	MeshPortYPlus  = 2
	MeshPortYMinus = 3
	MeshPortNode0  = 4
)

// Mesh is a 2-D mesh (optionally a torus) of routers with NodesPer end
// nodes attached to each router. Router (x, y) sits at column x, row y.
type Mesh struct {
	*Network
	Cols, Rows int
	NodesPer   int
	Wrap       bool // torus when true
	RouterAt   [][]DeviceID
	coord      map[DeviceID][2]int
}

// NewMesh builds a cols x rows 2-D mesh with nodesPer end nodes per router.
// Router ports: 4 directions + nodesPer node ports. Node addresses are
// row-major: node (y*cols+x)*nodesPer + j is the j-th node of router (x,y).
func NewMesh(cols, rows, nodesPer int) *Mesh {
	return newMesh(cols, rows, nodesPer, false)
}

// NewTorus builds a cols x rows 2-D torus (wraparound mesh).
func NewTorus(cols, rows, nodesPer int) *Mesh {
	return newMesh(cols, rows, nodesPer, true)
}

func newMesh(cols, rows, nodesPer int, wrap bool) *Mesh {
	if cols < 1 || rows < 1 || nodesPer < 0 {
		panic(fmt.Sprintf("topology: bad mesh dimensions %dx%dx%d", cols, rows, nodesPer))
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
		if cols < 3 || rows < 3 {
			panic("topology: torus needs at least 3x3 (smaller wraps create parallel or self links)")
		}
	}
	m := &Mesh{
		Network:  New(fmt.Sprintf("%s-%dx%d", kind, cols, rows)),
		Cols:     cols,
		Rows:     rows,
		NodesPer: nodesPer,
		Wrap:     wrap,
		coord:    make(map[DeviceID][2]int),
	}
	m.RouterAt = make([][]DeviceID, cols)
	for x := 0; x < cols; x++ {
		m.RouterAt[x] = make([]DeviceID, rows)
		for y := 0; y < rows; y++ {
			r := m.AddRouter(fmt.Sprintf("R(%d,%d)", x, y), 4+nodesPer)
			m.RouterAt[x][y] = r
			m.coord[r] = [2]int{x, y}
		}
	}
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			if x+1 < cols {
				m.Connect(m.RouterAt[x][y], MeshPortXPlus, m.RouterAt[x+1][y], MeshPortXMinus)
			} else if wrap {
				m.Connect(m.RouterAt[x][y], MeshPortXPlus, m.RouterAt[0][y], MeshPortXMinus)
			}
			if y+1 < rows {
				m.Connect(m.RouterAt[x][y], MeshPortYPlus, m.RouterAt[x][y+1], MeshPortYMinus)
			} else if wrap {
				m.Connect(m.RouterAt[x][y], MeshPortYPlus, m.RouterAt[x][0], MeshPortYMinus)
			}
		}
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			for j := 0; j < nodesPer; j++ {
				nd := m.AddNode(fmt.Sprintf("N%d", (y*cols+x)*nodesPer+j))
				m.Connect(m.RouterAt[x][y], MeshPortNode0+j, nd, 0)
			}
		}
	}
	// Structural cut: split columns in half.
	if cols%2 == 0 || rows%2 == 0 {
		side := make([]bool, m.NumDevices())
		for x := 0; x < cols; x++ {
			for y := 0; y < rows; y++ {
				right := x >= cols/2
				if cols%2 != 0 {
					right = y >= rows/2
				}
				side[m.RouterAt[x][y]] = right
			}
		}
		for _, nd := range m.Nodes() {
			x, y := m.NodeCoord(m.NodeIndex(nd))
			right := x >= cols/2
			if cols%2 != 0 {
				right = y >= rows/2
			}
			side[nd] = right
		}
		m.AddSeedCut(side)
	}
	m.MustValidate()
	return m
}

// Coord returns the (x, y) position of a mesh router.
func (m *Mesh) Coord(r DeviceID) (x, y int) {
	c, ok := m.coord[r]
	if !ok {
		panic(fmt.Sprintf("topology: device %d is not a mesh router", r))
	}
	return c[0], c[1]
}

// NodeCoord returns the router position serving node address idx.
func (m *Mesh) NodeCoord(idx int) (x, y int) {
	r := idx / m.NodesPer
	return r % m.Cols, r / m.Cols
}

// NodePort returns the router port carrying node address idx.
func (m *Mesh) NodePort(idx int) int { return MeshPortNode0 + idx%m.NodesPer }
