package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Cable bill of materials. §2.3 describes the fat fractahedron's physical
// wiring: the up-links of each level-1 tetrahedron bundle into a
// "four-conductor cable" to the level-2 layer stack, and each level-2
// ensemble's sixteen up-links into a "16-conductor cable" to level 3. A
// conductor here is one full-duplex link (§1: a cable pairs two
// unidirectional links). CableBOM reconstructs that wiring schedule from
// the built network.

// CableClass is one row of the bill of materials.
type CableClass struct {
	Kind       string // "intra-ensemble", "node", "fan-out", "L1->L2", ...
	Conductors int    // links bundled per cable
	Cables     int
}

// CableBOM groups the fractahedron's links into physical cables: every
// intra-ensemble and node link is its own cable, and all links between one
// child ensemble and its parent bundle into one multi-conductor cable.
func (f *Fractahedron) CableBOM() []CableClass {
	type key struct {
		kind       string
		conductors int
	}
	counts := make(map[key]int)
	// Inter-level bundles: child ensemble -> link count.
	type bundleKey struct {
		level int // parent level
		child int // child ensemble index at level-1
	}
	bundles := make(map[bundleKey]int)

	for _, l := range f.Links() {
		a, b := f.Device(l.A.Device), f.Device(l.B.Device)
		switch {
		case a.Kind == Node || b.Kind == Node:
			kind := "node"
			r := l.A.Device
			if a.Kind == Node {
				r = l.B.Device
			}
			if f.Cfg.Fanout && f.Meta(r).Level == 0 {
				kind = "fan-out node"
			}
			counts[key{kind, 1}]++
		default:
			ma, mb := f.Meta(l.A.Device), f.Meta(l.B.Device)
			if ma.Level == mb.Level {
				counts[key{fmt.Sprintf("intra-level-%d", ma.Level), 1}]++
				continue
			}
			// Order so mb is the parent.
			if ma.Level > mb.Level {
				ma, mb = mb, ma
			}
			if ma.Level == 0 {
				// Fan-out router up-link to its level-1 tetrahedron.
				counts[key{"fan-out uplink", 1}]++
				continue
			}
			bundles[bundleKey{level: mb.Level, child: ma.Ensemble}]++
		}
	}
	for bk, conductors := range bundles {
		counts[key{fmt.Sprintf("L%d->L%d bundle", bk.level-1, bk.level), conductors}]++
	}

	var rows []CableClass
	for k, c := range counts {
		rows = append(rows, CableClass{Kind: k.kind, Conductors: k.conductors, Cables: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		return rows[i].Conductors < rows[j].Conductors
	})
	return rows
}

// BOMString renders the bill of materials.
func BOMString(rows []CableClass) string {
	var sb strings.Builder
	sb.WriteString("cable schedule (conductor = one full-duplex link)\n")
	total := 0
	links := 0
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s: %4d cables x %2d conductors\n", r.Kind, r.Cables, r.Conductors)
		total += r.Cables
		links += r.Cables * r.Conductors
	}
	fmt.Fprintf(&sb, "  total: %d cables carrying %d links\n", total, links)
	return sb.String()
}
