// Package topology models interconnection networks built from routers with a
// fixed number of ports, end nodes (CPUs, I/O adapters), and full-duplex
// links (cables) joining two ports. It provides builders for every topology
// discussed in Horst's IPPS'96 paper: fully-connected router groups,
// 2-D meshes and tori, hypercubes, rings, trees, 4-2 and 3-3 fat trees, and
// thin/fat fractahedrons.
//
// A link is a full-duplex cable and consists of two unidirectional channels;
// channels are the unit of deadlock analysis (channel dependency graphs) and
// of contention measurement.
package topology

import (
	"fmt"

	"repro/internal/graph"
)

// DeviceID identifies a device (router or end node) within a Network.
type DeviceID int

// LinkID identifies a full-duplex link (cable) within a Network.
type LinkID int

// ChannelID identifies one unidirectional half of a link: channel 2l carries
// traffic from link l's A port to its B port, channel 2l+1 the reverse.
type ChannelID int

// Kind distinguishes routers from end nodes.
type Kind uint8

const (
	// Router is a packet switch with multiple ports.
	Router Kind = iota
	// Node is an end node (CPU or peripheral adapter) with a single port.
	Node
)

// String names the device kind for display.
func (k Kind) String() string {
	switch k {
	case Router:
		return "router"
	case Node:
		return "node"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Device is a router or end node.
type Device struct {
	ID    DeviceID
	Kind  Kind
	Name  string
	Ports int
}

// PortRef addresses one port of one device.
type PortRef struct {
	Device DeviceID
	Port   int
}

// String renders the port reference as "device.port".
func (p PortRef) String() string { return fmt.Sprintf("%d.%d", p.Device, p.Port) }

// Link is a full-duplex cable between two ports.
type Link struct {
	ID   LinkID
	A, B PortRef
}

// Network is a set of devices wired by links. The zero value is not usable;
// create networks with New.
type Network struct {
	Name string

	devices  []Device
	links    []Link
	portLink [][]LinkID // per device, per port: link or -1
	nodes    []DeviceID // end nodes in creation order; index = node address
	nodeIdx  map[DeviceID]int
	seedCuts [][]bool // structural bisection seeds, per device
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{Name: name, nodeIdx: make(map[DeviceID]int)}
}

// AddRouter adds a router with the given port count and returns its ID.
func (n *Network) AddRouter(name string, ports int) DeviceID {
	if ports <= 0 {
		panic(fmt.Sprintf("topology: router %q with %d ports", name, ports))
	}
	return n.addDevice(Device{Kind: Router, Name: name, Ports: ports})
}

// AddNode adds a single-ported end node and returns its ID. End nodes are
// numbered in creation order; that number is the node's network address
// (see NodeIndex).
func (n *Network) AddNode(name string) DeviceID {
	id := n.addDevice(Device{Kind: Node, Name: name, Ports: 1})
	n.nodeIdx[id] = len(n.nodes)
	n.nodes = append(n.nodes, id)
	return id
}

func (n *Network) addDevice(d Device) DeviceID {
	d.ID = DeviceID(len(n.devices))
	n.devices = append(n.devices, d)
	pl := make([]LinkID, d.Ports)
	for i := range pl {
		pl[i] = -1
	}
	n.portLink = append(n.portLink, pl)
	return d.ID
}

// Connect wires port aPort of device a to port bPort of device b with a new
// full-duplex link and returns the link's ID. It panics if either port is
// out of range or already wired, or if a == b.
func (n *Network) Connect(a DeviceID, aPort int, b DeviceID, bPort int) LinkID {
	if a == b {
		panic(fmt.Sprintf("topology: self-link on device %d", a))
	}
	n.claimPort(a, aPort)
	n.claimPort(b, bPort)
	id := LinkID(len(n.links))
	n.links = append(n.links, Link{ID: id, A: PortRef{a, aPort}, B: PortRef{b, bPort}})
	n.portLink[a][aPort] = id
	n.portLink[b][bPort] = id
	return id
}

// ConnectNext wires the lowest free port of a to the lowest free port of b.
func (n *Network) ConnectNext(a, b DeviceID) LinkID {
	return n.Connect(a, n.FreePort(a), b, n.FreePort(b))
}

// FreePort returns the lowest unwired port of the device, or panics if all
// ports are in use.
func (n *Network) FreePort(d DeviceID) int {
	for p, l := range n.portLink[d] {
		if l == -1 {
			return p
		}
	}
	panic(fmt.Sprintf("topology: device %d (%s) has no free port", d, n.devices[d].Name))
}

func (n *Network) claimPort(d DeviceID, port int) {
	if int(d) < 0 || int(d) >= len(n.devices) {
		panic(fmt.Sprintf("topology: device %d out of range", d))
	}
	if port < 0 || port >= n.devices[d].Ports {
		panic(fmt.Sprintf("topology: port %d out of range on device %d (%s, %d ports)",
			port, d, n.devices[d].Name, n.devices[d].Ports))
	}
	if n.portLink[d][port] != -1 {
		panic(fmt.Sprintf("topology: port %d of device %d (%s) already wired",
			port, d, n.devices[d].Name))
	}
}

// NumDevices reports the number of devices.
func (n *Network) NumDevices() int { return len(n.devices) }

// NumLinks reports the number of full-duplex links.
func (n *Network) NumLinks() int { return len(n.links) }

// NumChannels reports the number of unidirectional channels (2 per link).
func (n *Network) NumChannels() int { return 2 * len(n.links) }

// NumNodes reports the number of end nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumRouters reports the number of routers.
func (n *Network) NumRouters() int { return len(n.devices) - len(n.nodes) }

// Device returns the device record for id.
func (n *Network) Device(id DeviceID) Device { return n.devices[id] }

// Devices returns all devices. The slice is shared and must not be modified.
func (n *Network) Devices() []Device { return n.devices }

// Links returns all links. The slice is shared and must not be modified.
func (n *Network) Links() []Link { return n.links }

// Link returns the link record for id.
func (n *Network) Link(id LinkID) Link { return n.links[id] }

// Nodes returns the end nodes in address order. The slice is shared and must
// not be modified.
func (n *Network) Nodes() []DeviceID { return n.nodes }

// NodeIndex returns the network address of an end node (its position in
// creation order). It panics if id is not an end node.
func (n *Network) NodeIndex(id DeviceID) int {
	idx, ok := n.nodeIdx[id]
	if !ok {
		panic(fmt.Sprintf("topology: device %d is not an end node", id))
	}
	return idx
}

// NodeByIndex returns the end node with the given network address.
func (n *Network) NodeByIndex(i int) DeviceID { return n.nodes[i] }

// LinkAt returns the link wired to the given port, if any.
func (n *Network) LinkAt(d DeviceID, port int) (LinkID, bool) {
	l := n.portLink[d][port]
	return l, l != -1
}

// PortOf returns which port of device d link l terminates on. It panics if
// the link does not touch d.
func (n *Network) PortOf(l LinkID, d DeviceID) int {
	lk := n.links[l]
	switch d {
	case lk.A.Device:
		return lk.A.Port
	case lk.B.Device:
		return lk.B.Port
	}
	panic(fmt.Sprintf("topology: link %d does not touch device %d", l, d))
}

// OtherEnd returns the far end of link l as seen from device d.
func (n *Network) OtherEnd(l LinkID, d DeviceID) PortRef {
	lk := n.links[l]
	switch d {
	case lk.A.Device:
		return lk.B
	case lk.B.Device:
		return lk.A
	}
	panic(fmt.Sprintf("topology: link %d does not touch device %d", l, d))
}

// ChannelFromPort returns the outbound channel leaving device d through the
// given port.
func (n *Network) ChannelFromPort(d DeviceID, port int) (ChannelID, bool) {
	l, ok := n.LinkAt(d, port)
	if !ok {
		return -1, false
	}
	if n.links[l].A.Device == d {
		return ChannelID(2 * l), true
	}
	return ChannelID(2*l + 1), true
}

// ChannelSrc returns the port a channel leaves from.
func (n *Network) ChannelSrc(c ChannelID) PortRef {
	l := n.links[c/2]
	if c%2 == 0 {
		return l.A
	}
	return l.B
}

// ChannelDst returns the port a channel arrives at.
func (n *Network) ChannelDst(c ChannelID) PortRef {
	l := n.links[c/2]
	if c%2 == 0 {
		return l.B
	}
	return l.A
}

// ChannelLink returns the link a channel belongs to.
func (n *Network) ChannelLink(c ChannelID) LinkID { return LinkID(c / 2) }

// Reverse returns the opposite channel of the same link.
func (n *Network) Reverse(c ChannelID) ChannelID { return c ^ 1 }

// ChannelString renders a channel as "name[port] -> name[port]" for
// diagnostics.
func (n *Network) ChannelString(c ChannelID) string {
	s, d := n.ChannelSrc(c), n.ChannelDst(c)
	return fmt.Sprintf("%s[%d] -> %s[%d]",
		n.devices[s.Device].Name, s.Port, n.devices[d.Device].Name, d.Port)
}

// UsedPorts reports how many ports of the device are wired.
func (n *Network) UsedPorts(d DeviceID) int {
	used := 0
	for _, l := range n.portLink[d] {
		if l != -1 {
			used++
		}
	}
	return used
}

// Ugraph returns the undirected device connectivity graph (one edge per
// link; parallel links yield parallel edges).
func (n *Network) Ugraph() *graph.Ugraph {
	g := graph.NewUgraph(len(n.devices))
	for _, l := range n.links {
		g.AddEdge(int(l.A.Device), int(l.B.Device))
	}
	return g
}

// AddSeedCut registers a structural bisection candidate: side[d] gives the
// suggested side per device. Builders register the cuts their structure
// makes natural; the bisection search uses them as starting points.
func (n *Network) AddSeedCut(side []bool) {
	if len(side) != len(n.devices) {
		panic("topology: seed cut length mismatch")
	}
	n.seedCuts = append(n.seedCuts, side)
}

// SeedCuts returns the registered structural cuts.
func (n *Network) SeedCuts() [][]bool { return n.seedCuts }
