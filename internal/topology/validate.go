package topology

import "fmt"

// Validate checks structural invariants of the network: every end node is
// wired on its single port, no router exceeds its port budget (guaranteed by
// construction, re-checked here), and the network is connected. Builders
// call it before returning.
func (n *Network) Validate() error {
	if len(n.devices) == 0 {
		return fmt.Errorf("topology %q: empty network", n.Name)
	}
	for _, d := range n.devices {
		used := n.UsedPorts(d.ID)
		if used > d.Ports {
			return fmt.Errorf("topology %q: device %s uses %d of %d ports",
				n.Name, d.Name, used, d.Ports)
		}
		if d.Kind == Node && used != 1 {
			return fmt.Errorf("topology %q: end node %s has %d links, want 1",
				n.Name, d.Name, used)
		}
	}
	for _, l := range n.links {
		for _, end := range []PortRef{l.A, l.B} {
			got, ok := n.LinkAt(end.Device, end.Port)
			if !ok || got != l.ID {
				return fmt.Errorf("topology %q: link %d not registered at %v",
					n.Name, l.ID, end)
			}
		}
	}
	if !n.Ugraph().Connected() {
		return fmt.Errorf("topology %q: network is not connected", n.Name)
	}
	return nil
}

// MustValidate panics if Validate fails; builders use it so malformed
// constructions fail loudly at build time.
func (n *Network) MustValidate() {
	if err := n.Validate(); err != nil {
		panic(err)
	}
}
