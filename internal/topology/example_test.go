package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

// Build the paper's Figure 7 network and inspect its structure.
func ExampleNewFractahedron() {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	fmt.Printf("%s: %d nodes, %d routers, %d links\n",
		f.Name, f.NumNodes(), f.NumRouters(), f.NumLinks())
	fmt.Printf("level-2 layers: %d\n", f.Cfg.Layers(2))
	// Output:
	// fat-fractahedron-g4d2-N2: 64 nodes, 48 routers, 168 links
	// level-2 layers: 4
}

// The 2-3-1 port split of the paper's tetrahedral routers.
func ExampleFractConfig_RouterPorts() {
	cfg := topology.Tetra(1, false)
	fmt.Printf("ports: %d (down %d, intra %d, up 1)\n",
		cfg.RouterPorts(), cfg.Down, cfg.Group-1)
	// Output:
	// ports: 6 (down 2, intra 3, up 1)
}

// Table 1's capacity column: 2*8^N CPUs with the fan-out stage.
func ExampleFractConfig_MaxNodes() {
	for n := 1; n <= 3; n++ {
		cfg := topology.Tetra(n, true)
		cfg.Fanout = true
		fmt.Println(cfg.MaxNodes())
	}
	// Output:
	// 16
	// 128
	// 1024
}

// The §2.3 cable schedule of a two-level fat fractahedron.
func ExampleFractahedron_CableBOM() {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	for _, row := range f.CableBOM() {
		if row.Conductors > 1 {
			fmt.Printf("%s: %d cables x %d conductors\n", row.Kind, row.Cables, row.Conductors)
		}
	}
	// Output:
	// L1->L2 bundle: 8 cables x 4 conductors
}
