package topology

import (
	"strings"
	"testing"
)

const sampleTopo = `
# a 3-router triangle with one node each
router a 4
router b 4
router c 4
node n0
node n1
node n2
link a b
link b c
link c:1 a:1
link a n0
link b n1
link c n2
`

func TestParseSample(t *testing.T) {
	net, err := Parse(strings.NewReader(sampleTopo), "triangle")
	if err != nil {
		t.Fatal(err)
	}
	if net.NumRouters() != 3 || net.NumNodes() != 3 || net.NumLinks() != 6 {
		t.Fatalf("routers=%d nodes=%d links=%d", net.NumRouters(), net.NumNodes(), net.NumLinks())
	}
	// Explicit ports honored: c:1 -- a:1.
	var a, c DeviceID = -1, -1
	for _, d := range net.Devices() {
		switch d.Name {
		case "a":
			a = d.ID
		case "c":
			c = d.ID
		}
	}
	l, ok := net.LinkAt(c, 1)
	if !ok {
		t.Fatal("c port 1 unwired")
	}
	far := net.OtherEnd(l, c)
	if far.Device != a || far.Port != 1 {
		t.Errorf("c:1 connects to %v, want a:1", far)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown directive", "frobnicate x"},
		{"bad ports", "router a zero"},
		{"duplicate name", "router a 2\nnode a"},
		{"unknown device", "router a 2\nlink a b"},
		{"port collision", "router a 2\nrouter b 2\nnode n\nlink a:0 b:0\nlink a:0 n"},
		{"port out of range", "router a 2\nrouter b 2\nlink a:7 b:0"},
		{"unwired node", "router a 2\nnode n0\nnode n1\nlink a n0"},
		{"disconnected", "router a 2\nrouter b 2\nnode n0\nnode n1\nlink a n0\nlink b n1"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.text), c.name); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseRoundTripThroughDOT(t *testing.T) {
	// Parsed networks render to DOT like any other.
	net, err := Parse(strings.NewReader(sampleTopo), "triangle")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := net.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"a"`) {
		t.Error("DOT output missing parsed device")
	}
}
