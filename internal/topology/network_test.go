package topology

import (
	"strings"
	"testing"
)

func TestNetworkConnectAndChannels(t *testing.T) {
	n := New("t")
	r0 := n.AddRouter("r0", 3)
	r1 := n.AddRouter("r1", 3)
	nd := n.AddNode("n0")
	l := n.Connect(r0, 0, r1, 1)
	n.Connect(r0, 1, nd, 0)

	if n.NumLinks() != 2 || n.NumChannels() != 4 {
		t.Fatalf("links=%d channels=%d", n.NumLinks(), n.NumChannels())
	}
	c, ok := n.ChannelFromPort(r0, 0)
	if !ok {
		t.Fatal("no channel from r0.0")
	}
	if n.ChannelSrc(c).Device != r0 || n.ChannelDst(c).Device != r1 {
		t.Errorf("channel %d endpoints wrong: %v -> %v", c, n.ChannelSrc(c), n.ChannelDst(c))
	}
	rev := n.Reverse(c)
	if n.ChannelSrc(rev).Device != r1 || n.ChannelDst(rev).Device != r0 {
		t.Errorf("reverse channel wrong")
	}
	if n.ChannelLink(c) != l || n.ChannelLink(rev) != l {
		t.Errorf("ChannelLink mismatch")
	}
	if got := n.OtherEnd(l, r0); got.Device != r1 || got.Port != 1 {
		t.Errorf("OtherEnd = %v", got)
	}
	if n.PortOf(l, r1) != 1 {
		t.Errorf("PortOf = %d", n.PortOf(l, r1))
	}
}

func TestNetworkDoubleWirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double-wiring a port did not panic")
		}
	}()
	n := New("t")
	r0 := n.AddRouter("r0", 2)
	r1 := n.AddRouter("r1", 2)
	r2 := n.AddRouter("r2", 2)
	n.Connect(r0, 0, r1, 0)
	n.Connect(r0, 0, r2, 0)
}

func TestNodeIndexing(t *testing.T) {
	n := New("t")
	r := n.AddRouter("r", 4)
	var ids []DeviceID
	for i := 0; i < 3; i++ {
		nd := n.AddNode("n")
		n.ConnectNext(r, nd)
		ids = append(ids, nd)
	}
	for i, id := range ids {
		if n.NodeIndex(id) != i {
			t.Errorf("NodeIndex(%d) = %d, want %d", id, n.NodeIndex(id), i)
		}
		if n.NodeByIndex(i) != id {
			t.Errorf("NodeByIndex(%d) = %d, want %d", i, n.NodeByIndex(i), id)
		}
	}
	if n.NumNodes() != 3 || n.NumRouters() != 1 {
		t.Errorf("NumNodes=%d NumRouters=%d", n.NumNodes(), n.NumRouters())
	}
}

func TestValidateDisconnected(t *testing.T) {
	n := New("t")
	n.AddRouter("a", 2)
	n.AddRouter("b", 2)
	if err := n.Validate(); err == nil {
		t.Error("disconnected network passed validation")
	}
}

func TestValidateUnwiredNode(t *testing.T) {
	n := New("t")
	r := n.AddRouter("r", 2)
	nd := n.AddNode("n")
	n.ConnectNext(r, nd)
	n.AddNode("orphan") // unwired: must fail validation (also disconnects)
	if err := n.Validate(); err == nil {
		t.Error("unwired node passed validation")
	}
}

// Figure 3: fully-connected groups of 6-port routers. M routers expose
// M*(7-M) node ports; the paper's figure lists 10, 12, 12, 10, 6 ports for
// M = 2..6.
func TestFullMeshFigure3PortCounts(t *testing.T) {
	want := map[int]int{1: 6, 2: 10, 3: 12, 4: 12, 5: 10, 6: 6}
	for m, ports := range want {
		fm := NewFullMesh(m, 6)
		if fm.NumNodes() != ports {
			t.Errorf("M=%d: %d node ports, want %d", m, fm.NumNodes(), ports)
		}
		if fm.NumRouters() != m {
			t.Errorf("M=%d: %d routers", m, fm.NumRouters())
		}
		wantLinks := m*(m-1)/2 + ports
		if fm.NumLinks() != wantLinks {
			t.Errorf("M=%d: %d links, want %d", m, fm.NumLinks(), wantLinks)
		}
	}
}

func TestFullMeshIntraPortSymmetry(t *testing.T) {
	fm := NewFullMesh(4, 6)
	for r := 0; r < 4; r++ {
		for s := 0; s < 4; s++ {
			if r == s {
				continue
			}
			// Port IntraPort(r,s) of router r must be linked to router s.
			l, ok := fm.LinkAt(fm.Routers[r], fm.IntraPort(r, s))
			if !ok {
				t.Fatalf("router %d port to %d unwired", r, s)
			}
			if fm.OtherEnd(l, fm.Routers[r]).Device != fm.Routers[s] {
				t.Errorf("IntraPort(%d,%d) leads to wrong router", r, s)
			}
		}
	}
}

func TestMeshStructure(t *testing.T) {
	m := NewMesh(6, 6, 2)
	if m.NumRouters() != 36 || m.NumNodes() != 72 {
		t.Fatalf("routers=%d nodes=%d", m.NumRouters(), m.NumNodes())
	}
	// 2*6*5 internal links + 72 node links.
	if m.NumLinks() != 60+72 {
		t.Errorf("links = %d, want 132", m.NumLinks())
	}
	// Corner router uses 2 directions + 2 nodes.
	if got := m.UsedPorts(m.RouterAt[0][0]); got != 4 {
		t.Errorf("corner ports used = %d, want 4", got)
	}
	// Center router uses all 6.
	if got := m.UsedPorts(m.RouterAt[3][3]); got != 6 {
		t.Errorf("center ports used = %d, want 6", got)
	}
	x, y := m.NodeCoord(13) // node 13 = router 6 (x=0,y=1), second node
	if x != 0 || y != 1 {
		t.Errorf("NodeCoord(13) = (%d,%d), want (0,1)", x, y)
	}
}

func TestTorusStructure(t *testing.T) {
	m := NewTorus(4, 4, 1)
	// Every router uses all 4 direction ports.
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			if got := m.UsedPorts(m.RouterAt[x][y]); got != 5 {
				t.Errorf("(%d,%d) ports used = %d, want 5", x, y, got)
			}
		}
	}
	if m.NumLinks() != 32+16 {
		t.Errorf("links = %d, want 48", m.NumLinks())
	}
}

func TestHypercubeStructure(t *testing.T) {
	h := NewHypercube(3, 1)
	if h.NumRouters() != 8 || h.NumNodes() != 8 {
		t.Fatalf("routers=%d nodes=%d", h.NumRouters(), h.NumNodes())
	}
	if h.NumLinks() != 12+8 {
		t.Errorf("links = %d, want 20", h.NumLinks())
	}
	// Dimension-k port of router i reaches i^(1<<k).
	for i := 0; i < 8; i++ {
		for k := 0; k < 3; k++ {
			l, ok := h.LinkAt(h.Routers[i], k)
			if !ok {
				t.Fatalf("router %d dim %d unwired", i, k)
			}
			got := h.OtherEnd(l, h.Routers[i]).Device
			if got != h.Routers[i^(1<<k)] {
				t.Errorf("router %d dim %d leads to %d, want %d", i, k, got, h.Routers[i^(1<<k)])
			}
		}
	}
}

// §3.2: a 64-node hypercube needs 7-port routers — one more than ServerNet has.
func TestHypercubePortsNeeded(t *testing.T) {
	if got := HypercubePortsNeeded(6, 1); got != 7 {
		t.Errorf("6-D hypercube ports = %d, want 7", got)
	}
}

func TestRingStructure(t *testing.T) {
	r := NewRing(4, 1)
	if r.NumRouters() != 4 || r.NumNodes() != 4 || r.NumLinks() != 8 {
		t.Fatalf("routers=%d nodes=%d links=%d", r.NumRouters(), r.NumNodes(), r.NumLinks())
	}
	for i := 0; i < 4; i++ {
		l, _ := r.LinkAt(r.Routers[i], RingPortCW)
		if r.OtherEnd(l, r.Routers[i]).Device != r.Routers[(i+1)%4] {
			t.Errorf("CW port of %d misrouted", i)
		}
	}
}

// Figure 6: the 64-node 4-2 fat tree has 16 + 8 + 4 = 28 routers.
func TestFatTree42Figure6(t *testing.T) {
	ft := NewFatTree(4, 2, 64)
	if ft.Levels != 3 {
		t.Fatalf("levels = %d, want 3", ft.Levels)
	}
	if ft.NumRouters() != 28 {
		t.Errorf("routers = %d, want 28 (paper Table 2)", ft.NumRouters())
	}
	for l, want := range map[int]int{1: 16, 2: 8, 3: 4} {
		if got := ft.RouterCountAtLevel(l); got != want {
			t.Errorf("level %d routers = %d, want %d", l, got, want)
		}
	}
	if ft.NumNodes() != 64 {
		t.Errorf("nodes = %d", ft.NumNodes())
	}
	// Top-level routers leave their up ports free (expansion headroom).
	top := ft.RouterAt(3, 0, 0)
	if got := ft.UsedPorts(top); got != 4 {
		t.Errorf("top router uses %d ports, want 4", got)
	}
}

// §3.4: a 3-3 fat tree for 64 nodes requires 100 routers.
func TestFatTree33HundredRouters(t *testing.T) {
	ft := NewFatTree(3, 3, 64)
	if ft.Levels != 4 {
		t.Fatalf("levels = %d, want 4", ft.Levels)
	}
	if ft.NumRouters() != 100 {
		t.Errorf("routers = %d, want 100 (paper §3.4)", ft.NumRouters())
	}
	for l, want := range map[int]int{1: 22, 2: 24, 3: 27, 4: 27} {
		if got := ft.RouterCountAtLevel(l); got != want {
			t.Errorf("level %d routers = %d, want %d", l, got, want)
		}
	}
}

// A (D,1) fat tree is a simple tree: one root, bisection bottleneck at the top.
func TestFatTreeU1IsTree(t *testing.T) {
	ft := NewFatTree(4, 1, 16)
	if ft.NumRouters() != 4+1 {
		t.Errorf("routers = %d, want 5", ft.NumRouters())
	}
	if got := ft.RouterCountAtLevel(2); got != 1 {
		t.Errorf("roots = %d, want 1", got)
	}
}

func TestFatTreeCommonLevel(t *testing.T) {
	ft := NewFatTree(4, 2, 64)
	cases := []struct{ a, b, want int }{
		{0, 1, 1},   // same leaf
		{0, 5, 2},   // same pod
		{0, 17, 3},  // different pods
		{63, 62, 1}, // same leaf at the end
	}
	for _, c := range cases {
		if got := ft.CommonLevel(c.a, c.b); got != c.want {
			t.Errorf("CommonLevel(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFatTreeWiring(t *testing.T) {
	ft := NewFatTree(4, 2, 64)
	// Router (1, t, 0) up port v must reach (2, t/4, v) down port t%4.
	for tIdx := 0; tIdx < 16; tIdx++ {
		for v := 0; v < 2; v++ {
			leaf := ft.RouterAt(1, tIdx, 0)
			l, ok := ft.LinkAt(leaf, 4+v)
			if !ok {
				t.Fatalf("leaf %d up port %d unwired", tIdx, v)
			}
			far := ft.OtherEnd(l, leaf)
			wantDev := ft.RouterAt(2, tIdx/4, v)
			if far.Device != wantDev || far.Port != tIdx%4 {
				t.Errorf("leaf %d up %d lands at %v, want dev %d port %d",
					tIdx, v, far, wantDev, tIdx%4)
			}
		}
	}
}

// Table 1: fractahedral node capacity is 2*8^N with the fan-out stage.
func TestFractahedronTable1Capacity(t *testing.T) {
	for n := 1; n <= 3; n++ {
		for _, fat := range []bool{false, true} {
			cfg := Tetra(n, fat)
			cfg.Fanout = true
			want := 2 * pow(8, n)
			if got := cfg.MaxNodes(); got != want {
				t.Errorf("N=%d fat=%v MaxNodes = %d, want %d", n, fat, got, want)
			}
			if n <= 2 { // keep the built sizes modest
				f := NewFractahedron(cfg)
				if f.NumNodes() != want {
					t.Errorf("N=%d fat=%v built nodes = %d, want %d", n, fat, f.NumNodes(), want)
				}
			}
		}
	}
}

// Figure 7: the 64-node fat fractahedron (N=2, no fan-out) has 48 routers:
// 8 level-1 tetrahedra (32 routers) + 4 level-2 layers (16 routers).
func TestFatFractahedron64Figure7(t *testing.T) {
	f := NewFractahedron(Tetra(2, true))
	if f.NumNodes() != 64 {
		t.Fatalf("nodes = %d, want 64", f.NumNodes())
	}
	if f.NumRouters() != 48 {
		t.Errorf("routers = %d, want 48 (paper Table 2)", f.NumRouters())
	}
}

func TestThinFractahedronRouters(t *testing.T) {
	f := NewFractahedron(Tetra(2, false))
	// 8 level-1 tetrahedra + 1 level-2 tetrahedron = 36 routers.
	if f.NumRouters() != 36 {
		t.Errorf("routers = %d, want 36", f.NumRouters())
	}
	// Thin: only router 0 of each level-1 ensemble uses its up port.
	for e := 0; e < 8; e++ {
		for r := 0; r < 4; r++ {
			_, wired := f.LinkAt(f.RouterAt(FractRouter{1, e, 0, r}), f.UpPort())
			if wired != (r == 0) {
				t.Errorf("ensemble %d router %d up port wired=%v", e, r, wired)
			}
		}
	}
}

func TestFractahedronFatWiring(t *testing.T) {
	f := NewFractahedron(Tetra(2, true))
	// Level-2 layer m router r down port p must reach level-1 ensemble
	// (r*2+p) router m's up port ("each layer connects to a different corner
	// of the level 1 tetrahedrons").
	for m := 0; m < 4; m++ {
		for r := 0; r < 4; r++ {
			for p := 0; p < 2; p++ {
				up := f.RouterAt(FractRouter{2, 0, m, r})
				l, ok := f.LinkAt(up, p)
				if !ok {
					t.Fatalf("L2 layer %d router %d port %d unwired", m, r, p)
				}
				far := f.OtherEnd(l, up)
				want := f.RouterAt(FractRouter{1, r*2 + p, 0, m})
				if far.Device != want || far.Port != f.UpPort() {
					t.Errorf("L2.%d.%d.%d lands at %v, want router %d up", m, r, p, far, want)
				}
			}
		}
	}
	// Every level-1 router's up port is wired in the fat variant.
	for e := 0; e < 8; e++ {
		for r := 0; r < 4; r++ {
			if _, ok := f.LinkAt(f.RouterAt(FractRouter{1, e, 0, r}), f.UpPort()); !ok {
				t.Errorf("fat: ensemble %d router %d up port unwired", e, r)
			}
		}
	}
}

func TestFractahedronDigitsAndLevels(t *testing.T) {
	f := NewFractahedron(Tetra(2, true))
	// Address 54 = digit2 6, digit1 6 (base 8).
	if f.Digit(54, 2) != 6 || f.Digit(54, 1) != 6 {
		t.Errorf("digits of 54 = %d,%d; want 6,6", f.Digit(54, 2), f.Digit(54, 1))
	}
	if f.CommonLevel(6, 7) != 1 {
		t.Errorf("CommonLevel(6,7) = %d, want 1", f.CommonLevel(6, 7))
	}
	if f.CommonLevel(6, 14) != 2 {
		t.Errorf("CommonLevel(6,14) = %d, want 2", f.CommonLevel(6, 14))
	}
	if f.AddrOfNode(5) != 5 {
		t.Errorf("AddrOfNode without fanout should be identity")
	}
}

func TestFractahedronFanoutAddressing(t *testing.T) {
	cfg := Tetra(1, false)
	cfg.Fanout = true
	f := NewFractahedron(cfg)
	if f.NumNodes() != 16 {
		t.Fatalf("nodes = %d, want 16", f.NumNodes())
	}
	// 4 tetra routers + 8 fan-out routers.
	if f.NumRouters() != 12 {
		t.Errorf("routers = %d, want 12", f.NumRouters())
	}
	if f.AddrOfNode(15) != 7 {
		t.Errorf("AddrOfNode(15) = %d, want 7", f.AddrOfNode(15))
	}
	// Fan-out router metadata reports level 0.
	m := f.Meta(f.Fanout(3))
	if m.Level != 0 || m.Ensemble != 3 {
		t.Errorf("fanout meta = %+v", m)
	}
}

// The generalization of §4: fully-connected groups of other radix routers.
func TestFractahedronGeneralizedRadix(t *testing.T) {
	cfg := FractConfig{Group: 3, Down: 2, Levels: 2, Fat: true}
	if cfg.RouterPorts() != 5 {
		t.Fatalf("ports = %d, want 5", cfg.RouterPorts())
	}
	f := NewFractahedron(cfg)
	if f.NumNodes() != 36 { // (3*2)^2
		t.Errorf("nodes = %d, want 36", f.NumNodes())
	}
	// Level-2 layers = Group^(2-1) = 3; routers = 6 ensembles*3 + 3*3 = 27.
	if f.NumRouters() != 27 {
		t.Errorf("routers = %d, want 27", f.NumRouters())
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	r := NewRing(3, 1)
	if err := r.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "graph") || !strings.Contains(out, "--") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
}

func TestAccessorHelpers(t *testing.T) {
	fm := NewFullMesh(3, 6)
	if fm.RouterOfNode(7) != 1 || fm.NodePort(7) != 2+3 {
		t.Errorf("fullmesh accessors: router=%d port=%d", fm.RouterOfNode(7), fm.NodePort(7))
	}
	h := NewHypercube(3, 2)
	if h.RouterOfNode(5) != 2 || h.NodePort(5) != 3+1 {
		t.Errorf("hypercube accessors: router=%d port=%d", h.RouterOfNode(5), h.NodePort(5))
	}
	ft := NewFatTree(4, 2, 64)
	if ft.Leaf(17) != ft.RouterAt(1, 4, 0) {
		t.Error("Leaf wrong")
	}
	if ft.InstAt(17, 2) != 1 {
		t.Errorf("InstAt = %d", ft.InstAt(17, 2))
	}
	if m := ft.Meta(ft.RouterAt(2, 1, 1)); m.Level != 2 || m.Inst != 1 || m.J != 1 {
		t.Errorf("fat tree meta %+v", m)
	}
	f := NewFractahedron(Tetra(2, true))
	if f.EnsembleAt(54, 1) != 6 {
		t.Errorf("EnsembleAt = %d", f.EnsembleAt(54, 1))
	}
	c := NewCCC(3)
	if w, i := c.Position(17); w != 5 || i != 2 {
		t.Errorf("CCC position (%d,%d)", w, i)
	}
	cfg := Tetra(1, false)
	cfg.Fanout = true
	ff := NewFractahedron(cfg)
	lo, hi := ff.FanoutSpan(ff.Fanout(3))
	if lo != 6 || hi != 8 {
		t.Errorf("fanout span [%d,%d)", lo, hi)
	}
}

func TestFractConfigValidation(t *testing.T) {
	for _, cfg := range []FractConfig{
		{Group: 1, Down: 2, Levels: 1},
		{Group: 4, Down: 0, Levels: 1},
		{Group: 4, Down: 2, Levels: 0},
		{Group: 4, Down: 2, Levels: 1, Populate: 100},
		{Group: 4, Down: 2, Levels: 1, Fanout: true, FanoutNodes: 9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			NewFractahedron(cfg)
		}()
	}
}

func TestFatTreeLevelsExplicit(t *testing.T) {
	// Build a taller-than-needed tree explicitly: 2 levels for 4 nodes.
	ft := NewFatTreeLevels(4, 2, 2, 4)
	if ft.Levels != 2 {
		t.Fatalf("levels = %d", ft.Levels)
	}
	if ft.NumRouters() != 1+2 {
		t.Errorf("routers = %d, want 3 (1 leaf + 2 roots)", ft.NumRouters())
	}
	defer func() {
		if recover() == nil {
			t.Error("undersized tree accepted")
		}
	}()
	NewFatTreeLevels(2, 1, 2, 100)
}

func TestConnectRejectsSelfLink(t *testing.T) {
	n := New("t")
	r := n.AddRouter("r", 4)
	defer func() {
		if recover() == nil {
			t.Error("self-link accepted")
		}
	}()
	n.Connect(r, 0, r, 1)
}

func TestChannelStringFormat(t *testing.T) {
	fm := NewFullMesh(2, 6)
	ch, _ := fm.ChannelFromPort(fm.Routers[0], 0)
	s := fm.ChannelString(ch)
	if s != "R0[0] -> R1[0]" {
		t.Errorf("ChannelString = %q", s)
	}
	if (PortRef{Device: 3, Port: 2}).String() != "3.2" {
		t.Error("PortRef string wrong")
	}
	if Router.String() != "router" || Node.String() != "node" || Kind(9).String() == "" {
		t.Error("Kind strings wrong")
	}
}
