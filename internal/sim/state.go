package sim

// Dense simulator state. The per-cycle hot path never touches a map: every
// lookup the old implementation answered with map-of-slices buffers,
// map-keyed ownership/arbitration, and whole-network scans is answered here
// by a slice indexed with the buffer key (channel*VirtualChannels + vc), a
// precomputed per-channel table, or a per-packet counter maintained
// incrementally as flits move. See EXPERIMENTS.md "Simulator internals &
// performance" for the design.

import (
	"fmt"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Simulator runs one workload over one network. Create with New, add
// packets, then Run.
type Simulator struct {
	net *topology.Network
	dis *router.Disables
	cfg Config

	packets []*packet
	queues  [][]*packet // per source node address, FIFO injection order
	seqs    map[[2]int]int

	depth int // cfg.FIFODepth, hoisted

	// Per-channel lookup tables, indexed by ChannelID.
	chDstIsNode []bool            // channel ends at an end node (ejection)
	chSrcPort   []int32           // upstream output port number driving the channel
	chLink      []topology.LinkID // physical link the channel belongs to
	chAllowed   [][]bool          // disable row for (dst router, dst port); nil for ejection channels
	chOutPort   []int32           // global (device, port)-ordered index of the source port

	// Flat ring-buffer FIFOs: buffer key k occupies bufFlits[k*depth :
	// (k+1)*depth], with bufHead/bufLen tracking the ring window. space()
	// guarantees occupancy never exceeds depth.
	bufFlits []flit
	bufHead  []int32
	bufLen   []int32

	inflight []int32 // wire occupancy per destination buffer key
	owner    []int32 // owning packet id per output-VC buffer key; -1 when free
	// deadCount holds, per LinkID, the number of currently-active failures
	// on the link. A counter rather than a bool so overlapping flap windows
	// compose: a link is down while any failure covers it, and event order
	// within one cycle cannot matter.
	deadCount []int32
	busyCh    []int // flit crossings per channel

	// Worklist of non-empty input buffers. activePos gives each key's index
	// in activeBufs (-1 when absent) so emptying a buffer removes it with a
	// swap. planMoves sorts the list so candidates are visited in ascending
	// key order — the old channel-then-VC scan order the round-robin
	// arbiter state depends on.
	activeBufs    []int32
	activePos     []int32
	totalBuffered int

	// pend is a circular FIFO of flits propagating on wires. Every wire
	// has the same delay (LinkLatency), so landing order equals push order
	// and arrivals pop off the front.
	pend     []pendingFlit
	pendHead int
	pendLen  int

	outstanding int

	// events is the unified fault timeline: one +1 entry per link failure
	// and one -1 entry per scheduled repair, sorted by cycle. The step loop
	// walks evCursor over it; deadCount aggregates the deltas. faultRev
	// increments whenever a link's up/down state actually flips, so an
	// external recovery controller can cheaply detect "the dead-set
	// changed since I last reconfigured".
	events   []linkEvent
	evCursor int
	faultRev int

	// corruptThreshold, when non-zero, enables probabilistic flit
	// corruption: each flit-channel crossing is killed when a hash of
	// (corruptSeed, packet id, retry attempt, flit index, hop) falls below
	// the threshold. Hash-based rather than a stream RNG so the decision
	// for a given crossing is independent of event interleaving — the
	// determinism contract extends to chaos runs.
	corruptThreshold uint64
	corruptSeed      uint64

	rs *runState // nil until Start; carries accumulators across Step calls

	activePkts []*packet // timeout bookkeeping: injected, not yet resolved
	dirty      []*packet // dropped packets whose flits are not fully reaped

	// Per-output-port arbitration scratch, reused every cycle (see
	// arbiter.go).
	arb        []arbPort
	arbLast    []int32
	arbTouched []int32
	arbStamp   int64

	moves      []move // planMoves scratch, reused every cycle
	nextInject int    // earliest future InjectCycle among queue fronts

	// Sharded-planner state (see shard.go): the lazily-created barrier
	// pool, per-shard private record scratch, per-shard injection-horizon
	// scratch, and a diagnostic count of cycles planned by the sharded
	// path (never part of a Result — Results are identical either way).
	pool          *shardPool
	shardRecs     [][]shardRec
	shardNext     []int
	shardedCycles int

	// hook, when set, runs after a packet's tail flit is delivered. It may
	// call AddPacket to inject follow-up traffic (acknowledgments, read
	// responses, interrupts) — the mechanism the ServerNet transaction
	// layer in internal/servernet builds on.
	hook func(spec PacketSpec, now int)
	// dropHook, when set, runs after a packet is discarded (disable
	// violation, fault, or retry exhaustion). It may call AddPacket to
	// re-issue the transfer — e.g. over the other fabric of a dual
	// configuration.
	dropHook func(spec PacketSpec, now int)
}

// OnDelivered installs a delivery hook invoked after each packet's tail
// arrives; the hook may schedule new packets with AddPacket (their
// InjectCycle must not be in the past).
func (s *Simulator) OnDelivered(hook func(spec PacketSpec, now int)) { s.hook = hook }

// OnDropped installs a hook invoked after a packet is permanently discarded
// (path-disable violation, link fault, or retry exhaustion); it may
// re-issue the transfer with AddPacket, e.g. over a standby fabric.
func (s *Simulator) OnDropped(hook func(spec PacketSpec, now int)) { s.dropHook = hook }

// linkEvent is one edge of the fault timeline: delta +1 downs the link at
// cycle, delta -1 repairs one prior failure. deadCount sums the deltas, so
// overlapping flap windows compose and same-cycle ordering cannot matter.
type linkEvent struct {
	cycle int
	link  topology.LinkID
	delta int8
}

// insertEvent keeps the timeline sorted by cycle (insertion after equal
// cycles, preserving schedule order) so the step loop advances a cursor
// instead of rescanning the list every cycle.
func (s *Simulator) insertEvent(e linkEvent) {
	i := len(s.events)
	for i > 0 && s.events[i-1].cycle > e.cycle {
		i--
	}
	s.events = append(s.events, linkEvent{})
	copy(s.events[i+1:], s.events[i:])
	s.events[i] = e
}

// ScheduleFault arranges for a link to fail at the given cycle. The cycle
// must lie inside the simulation horizon [0, MaxCycles) and the link must
// exist: out-of-range faults used to be accepted silently and then never
// fire, which made fault-injection experiments impossible to misconfigure
// loudly. A non-zero RepairCycle (strictly after Cycle, inside the horizon)
// makes the fault transient: the link flaps down at Cycle and carries
// traffic again from RepairCycle on. Faults are kept sorted by cycle so the
// run advances a cursor instead of rescanning the list every cycle; a fault
// scheduled mid-run for a cycle that already elapsed never fires (as
// before).
func (s *Simulator) ScheduleFault(f LinkFault) error {
	if f.Cycle < 0 || f.Cycle >= s.cfg.MaxCycles {
		return fmt.Errorf("sim: fault cycle %d outside the simulation horizon [0, %d)",
			f.Cycle, s.cfg.MaxCycles)
	}
	if f.Link < 0 || int(f.Link) >= s.net.NumLinks() {
		return fmt.Errorf("sim: fault link %d out of range (network has %d links)",
			f.Link, s.net.NumLinks())
	}
	if f.RepairCycle != 0 {
		if f.RepairCycle <= f.Cycle {
			return fmt.Errorf("sim: repair cycle %d does not follow fault cycle %d",
				f.RepairCycle, f.Cycle)
		}
		if f.RepairCycle >= s.cfg.MaxCycles {
			return fmt.Errorf("sim: repair cycle %d outside the simulation horizon [0, %d)",
				f.RepairCycle, s.cfg.MaxCycles)
		}
	}
	s.insertEvent(linkEvent{cycle: f.Cycle, link: f.Link, delta: +1})
	if f.RepairCycle != 0 {
		s.insertEvent(linkEvent{cycle: f.RepairCycle, link: f.Link, delta: -1})
	}
	return nil
}

// ScheduleRouterFault downs every link attached to the router at the given
// cycle, atomically and permanently — the whole-router failure mode §1's
// dual-fabric architecture exists to survive. Validation mirrors
// ScheduleFault: the cycle must lie inside the horizon and the device must
// be a router (killing an end node would just strand its own traffic).
func (s *Simulator) ScheduleRouterFault(dev topology.DeviceID, cycle int) error {
	if cycle < 0 || cycle >= s.cfg.MaxCycles {
		return fmt.Errorf("sim: fault cycle %d outside the simulation horizon [0, %d)",
			cycle, s.cfg.MaxCycles)
	}
	if int(dev) < 0 || int(dev) >= s.net.NumDevices() {
		return fmt.Errorf("sim: fault device %d out of range (network has %d devices)",
			dev, s.net.NumDevices())
	}
	d := s.net.Device(dev)
	if d.Kind != topology.Router {
		return fmt.Errorf("sim: fault device %d (%s) is not a router", dev, d.Name)
	}
	for port := 0; port < d.Ports; port++ {
		if l, ok := s.net.LinkAt(dev, port); ok {
			s.insertEvent(linkEvent{cycle: cycle, link: l, delta: +1})
		}
	}
	return nil
}

// EnableCorruption turns on probabilistic flit corruption: every
// flit-channel crossing is independently killed with the given probability,
// decided by a hash keyed on the seed and the crossing's identity (packet,
// retry attempt, flit, hop). Corrupted worms die exactly like fault-killed
// ones — body flits are reaped, the drop surfaces through OnDropped — so a
// retry layer above the simulator sees a CRC-style transmission error.
func (s *Simulator) EnableCorruption(rate float64, seed uint64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("sim: corruption rate %v outside [0, 1]", rate)
	}
	switch {
	case rate == 0:
		s.corruptThreshold = 0
	case rate == 1:
		s.corruptThreshold = ^uint64(0)
	default:
		s.corruptThreshold = uint64(rate * float64(1<<32) * float64(1<<32))
	}
	s.corruptSeed = seed
	return nil
}

// mix64 is the SplitMix64 finalizer — the same bijective mixer
// internal/runner seeds workers with.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// corrupted decides whether one flit-channel crossing is killed. Pure in
// (seed, id, retries, idx, hop): re-running the same schedule reproduces
// the same corruption pattern regardless of what else the run interleaves.
func (s *Simulator) corrupted(id, retries, idx, hop int) bool {
	h := mix64(s.corruptSeed + 0x9E3779B97F4A7C15*uint64(id+1))
	h = mix64(h ^ uint64(retries)<<42 ^ uint64(idx)<<21 ^ uint64(hop))
	return h < s.corruptThreshold
}

// SetDisables hot-swaps the path-disable matrix, e.g. after an external
// recovery controller recomputes routing for a degraded topology. Safe
// between cycles: the per-channel rows are re-aliased in place, and from
// the next planMoves every header decision consults the new matrix (worms
// already holding outputs keep them — §2.4's argument covers old-route
// traffic as long as the new enabled-turn set is acyclic).
func (s *Simulator) SetDisables(dis *router.Disables) {
	s.dis = dis
	for c := 0; c < s.net.NumChannels(); c++ {
		if !s.chDstIsNode[c] {
			dst := s.net.ChannelDst(topology.ChannelID(c))
			s.chAllowed[c] = dis.Row(dst.Device, dst.Port)
		}
	}
}

// FaultRevision counts up/down state flips applied so far: it changes
// exactly when the set of dead links changes. A recovery controller
// snapshots it to detect new damage (or repairs) without diffing link
// states.
func (s *Simulator) FaultRevision() int { return s.faultRev }

// DeadLinks returns the currently-failed links in ascending order.
func (s *Simulator) DeadLinks() []topology.LinkID {
	var out []topology.LinkID
	for l, n := range s.deadCount {
		if n > 0 {
			out = append(out, topology.LinkID(l))
		}
	}
	return out
}

// New creates a simulator over a network with the given disable matrix
// (use router.AllowAll for an unrestricted crossbar).
func New(net *topology.Network, dis *router.Disables, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	numCh := net.NumChannels()
	numKeys := numCh * cfg.VirtualChannels
	s := &Simulator{
		net:         net,
		dis:         dis,
		cfg:         cfg,
		depth:       cfg.FIFODepth,
		queues:      make([][]*packet, net.NumNodes()),
		seqs:        make(map[[2]int]int),
		chDstIsNode: make([]bool, numCh),
		chSrcPort:   make([]int32, numCh),
		chLink:      make([]topology.LinkID, numCh),
		chAllowed:   make([][]bool, numCh),
		chOutPort:   make([]int32, numCh),
		bufFlits:    make([]flit, numKeys*cfg.FIFODepth),
		bufHead:     make([]int32, numKeys),
		bufLen:      make([]int32, numKeys),
		inflight:    make([]int32, numKeys),
		owner:       make([]int32, numKeys),
		deadCount:   make([]int32, net.NumLinks()),
		busyCh:      make([]int, numCh),
		activePos:   make([]int32, numKeys),
	}
	for i := range s.owner {
		s.owner[i] = -1
	}
	for i := range s.activePos {
		s.activePos[i] = -1
	}
	// Global output-port index: ports numbered by (device, port) ascending.
	// Granted ports sorted by this index reproduce the old sorted-physKey
	// grant emission order exactly.
	ports := 0
	portBase := make([]int32, net.NumDevices())
	for _, d := range net.Devices() {
		portBase[d.ID] = int32(ports)
		ports += d.Ports
	}
	s.arb = make([]arbPort, ports)
	s.arbLast = make([]int32, ports)
	for c := 0; c < numCh; c++ {
		ch := topology.ChannelID(c)
		src, dst := net.ChannelSrc(ch), net.ChannelDst(ch)
		s.chSrcPort[c] = int32(src.Port)
		s.chLink[c] = net.ChannelLink(ch)
		s.chOutPort[c] = portBase[src.Device] + int32(src.Port)
		if net.Device(dst.Device).Kind == topology.Node {
			s.chDstIsNode[c] = true
		} else {
			// The row aliases the live disable matrix, so Enable/Disable
			// calls made after New remain visible.
			s.chAllowed[c] = dis.Row(dst.Device, dst.Port)
		}
	}
	return s
}

func (s *Simulator) bufKey(ch topology.ChannelID, vc int) int {
	return int(ch)*s.cfg.VirtualChannels + vc
}

// AddPacket schedules a packet with an explicit route. Using routes rather
// than live table lookups lets experiments inject per-packet path choices
// (the in-order ablation) and corrupted-table routes.
func (s *Simulator) AddPacket(spec PacketSpec, route routing.Route) error {
	if spec.Flits < 1 {
		return fmt.Errorf("sim: packet needs at least 1 flit, got %d", spec.Flits)
	}
	if spec.Src < 0 || spec.Src >= len(s.queues) {
		return fmt.Errorf("sim: source %d is not a node address (network has %d nodes)",
			spec.Src, len(s.queues))
	}
	if route.Src != spec.Src || route.Dst != spec.Dst {
		return fmt.Errorf("sim: route %d->%d does not match spec %d->%d",
			route.Src, route.Dst, spec.Src, spec.Dst)
	}
	for i := range route.Channels {
		if v := route.VCAt(i); v < 0 || v >= s.cfg.VirtualChannels {
			return fmt.Errorf("sim: route hop %d uses VC %d but the simulator has %d VCs",
				i, v, s.cfg.VirtualChannels)
		}
	}
	p := &packet{
		id:    len(s.packets),
		spec:  spec,
		route: route.Channels,
		vcs:   route.VCs,
		seq:   s.seqs[[2]int{spec.Src, spec.Dst}],
	}
	s.seqs[[2]int{spec.Src, spec.Dst}]++
	s.packets = append(s.packets, p)
	s.queues[spec.Src] = append(s.queues[spec.Src], p)
	s.outstanding++
	return nil
}

// AddBatch routes each spec through the tables and schedules it.
func (s *Simulator) AddBatch(t *routing.Tables, specs []PacketSpec) error {
	for _, spec := range specs {
		r, err := t.Route(spec.Src, spec.Dst)
		if err != nil {
			return err
		}
		if err := s.AddPacket(spec, r); err != nil {
			return err
		}
	}
	return nil
}

// bufPush appends a flit to a buffer's ring, activating the buffer on the
// 0 -> 1 transition and maintaining the owning packet's buffered-flit count.
func (s *Simulator) bufPush(key int, f flit) {
	i := int(s.bufHead[key]) + int(s.bufLen[key])
	if i >= s.depth {
		i -= s.depth
	}
	s.bufFlits[key*s.depth+i] = f
	if s.bufLen[key] == 0 {
		s.activePos[key] = int32(len(s.activeBufs))
		s.activeBufs = append(s.activeBufs, int32(key))
	}
	s.bufLen[key]++
	s.totalBuffered++
	f.pkt.flitsBuf++
}

// bufPop removes a buffer's head flit, swap-removing the buffer from the
// active worklist on the 1 -> 0 transition.
func (s *Simulator) bufPop(key int) flit {
	f := s.bufFlits[key*s.depth+int(s.bufHead[key])]
	h := s.bufHead[key] + 1
	if int(h) == s.depth {
		h = 0
	}
	s.bufHead[key] = h
	s.bufLen[key]--
	if s.bufLen[key] == 0 {
		pos := s.activePos[key]
		last := s.activeBufs[len(s.activeBufs)-1]
		s.activeBufs[pos] = last
		s.activePos[last] = pos
		s.activeBufs = s.activeBufs[:len(s.activeBufs)-1]
		s.activePos[key] = -1
	}
	s.totalBuffered--
	f.pkt.flitsBuf--
	return f
}

// space reports whether one more flit may be committed toward a buffer:
// ejection channels always accept (the node consumes immediately); router
// buffers accept while resident plus in-flight flits stay under FIFODepth.
func (s *Simulator) space(key int) bool {
	if s.chDstIsNode[key/s.cfg.VirtualChannels] {
		return true
	}
	return int(s.bufLen[key])+int(s.inflight[key]) < s.depth
}

func (s *Simulator) pushPending(pf pendingFlit) {
	if s.pendLen == len(s.pend) {
		grown := make([]pendingFlit, max(64, 2*len(s.pend)))
		n := copy(grown, s.pend[s.pendHead:])
		copy(grown[n:], s.pend[:s.pendHead])
		s.pend = grown
		s.pendHead = 0
	}
	i := s.pendHead + s.pendLen
	if i >= len(s.pend) {
		i -= len(s.pend)
	}
	s.pend[i] = pf
	s.pendLen++
}

func (s *Simulator) popPending() pendingFlit {
	pf := s.pend[s.pendHead]
	s.pendHead++
	if s.pendHead == len(s.pend) {
		s.pendHead = 0
	}
	s.pendLen--
	return pf
}

// release frees the given output-VC buffer key if the worm holds it.
func (s *Simulator) release(p *packet, out int32) {
	for i, k := range p.owned {
		if k == out {
			s.owner[out] = -1
			p.owned = append(p.owned[:i], p.owned[i+1:]...)
			return
		}
	}
}

// trackActive registers a packet for O(active-packets) timeout bookkeeping.
func (s *Simulator) trackActive(p *packet) {
	if !p.inActive {
		p.inActive = true
		s.activePkts = append(s.activePkts, p)
	}
}

// markDropped queues a newly dropped packet for reaping. Idempotent: a
// packet stays on the dirty list until its flits drain and it retires or
// retries.
func (s *Simulator) markDropped(p *packet) {
	if !p.inDirty {
		p.inDirty = true
		s.dirty = append(s.dirty, p)
	}
}
