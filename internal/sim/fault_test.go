package sim_test

// Regression tests for the runtime-fault machinery the chaos engine drives:
// transient link flaps (repaired links must re-enter arbitration), atomic
// router kills (in-flight worms through the dead router must be reaped, not
// wedged), hash-based flit corruption (deterministic, free at rate zero),
// and the incremental Start/StepTo/Finish API (including fault events
// scheduled inside a window the clock free-jumped over).

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// interRouterLink returns the first router-to-router link on the routed
// path src -> dst.
func interRouterLink(t *testing.T, net *topology.Network, tb *routing.Tables, src, dst int) topology.LinkID {
	t.Helper()
	r, err := tb.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range r.Channels {
		if net.Device(net.ChannelSrc(ch).Device).Kind == topology.Router &&
			net.Device(net.ChannelDst(ch).Device).Kind == topology.Router {
			return net.ChannelLink(ch)
		}
	}
	t.Fatalf("no inter-router channel on route %d -> %d", src, dst)
	return -1
}

func TestScheduleFaultRepairValidation(t *testing.T) {
	rg := topology.NewRing(4, 1)
	s := sim.New(rg.Network, router.AllowAll(rg.Network), sim.Config{MaxCycles: 1000})
	cases := []sim.LinkFault{
		{Cycle: 50, Link: 0, RepairCycle: 50},   // repair does not follow fault
		{Cycle: 50, Link: 0, RepairCycle: 10},   // repair before fault
		{Cycle: 50, Link: 0, RepairCycle: 1000}, // repair outside the horizon
	}
	for i, f := range cases {
		if err := s.ScheduleFault(f); err == nil {
			t.Errorf("case %d: fault %+v accepted", i, f)
		}
	}
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 50, Link: 0, RepairCycle: 51}); err != nil {
		t.Fatalf("valid transient fault rejected: %v", err)
	}
}

func TestScheduleRouterFaultValidation(t *testing.T) {
	rg := topology.NewRing(4, 1)
	net := rg.Network
	s := sim.New(net, router.AllowAll(net), sim.Config{MaxCycles: 1000})
	var rtr topology.DeviceID = -1
	for _, d := range net.Devices() {
		if d.Kind == topology.Router {
			rtr = d.ID
			break
		}
	}
	if err := s.ScheduleRouterFault(rtr, -1); err == nil {
		t.Error("negative cycle accepted")
	}
	if err := s.ScheduleRouterFault(rtr, 1000); err == nil {
		t.Error("cycle at the horizon accepted")
	}
	if err := s.ScheduleRouterFault(topology.DeviceID(1<<20), 5); err == nil {
		t.Error("out-of-range device accepted")
	}
	if err := s.ScheduleRouterFault(net.NodeByIndex(0), 5); err == nil {
		t.Error("end node accepted as a router fault")
	}
	if err := s.ScheduleRouterFault(rtr, 5); err != nil {
		t.Fatalf("valid router fault rejected: %v", err)
	}
}

// TestLinkFlapRepairReentersArbitration pins the transient-fault cycle: a
// worm meeting the downed link dies, and after the repair cycle the same
// link carries traffic again like any other channel.
func TestLinkFlapRepairReentersArbitration(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingClockwise(rg)
	victim := interRouterLink(t, rg.Network, tb, 0, 2)
	s := sim.New(rg.Network, router.AllowAll(rg.Network), sim.Config{FIFODepth: 2})
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 2, Link: victim, RepairCycle: 40}); err != nil {
		t.Fatal(err)
	}
	specs := []sim.PacketSpec{
		{Src: 0, Dst: 2, Flits: 4, InjectCycle: 5},  // meets the dead link, dies
		{Src: 0, Dst: 2, Flits: 4, InjectCycle: 60}, // crosses the repaired link
	}
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Dropped != 1 || res.Delivered != 1 {
		t.Fatalf("dropped=%d delivered=%d, want 1 and 1", res.Dropped, res.Delivered)
	}
	if res.Deadlocked {
		t.Fatal("flap deadlocked the ring")
	}
}

// TestRouterKillCleansInFlightWorms pins the atomic router kill: a long
// worm mid-flight through the dying router is reaped (surfacing through
// the drop hook), the buffers it held are released, and unrelated traffic
// still delivers — the network terminates instead of wedging.
func TestRouterKillCleansInFlightWorms(t *testing.T) {
	rg := topology.NewRing(6, 1)
	tb := routing.RingClockwise(rg)
	net := rg.Network

	// The worm 0 -> 3 transits intermediate routers; kill one in the middle
	// of its path while the worm is crossing.
	r, err := tb.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var routers []topology.DeviceID
	for _, dev := range r.Devices {
		if net.Device(dev).Kind == topology.Router {
			routers = append(routers, dev)
		}
	}
	if len(routers) < 3 {
		t.Fatalf("route too short: routers %v", routers)
	}
	victim := routers[len(routers)/2]

	s := sim.New(net, router.AllowAll(net), sim.Config{FIFODepth: 2})
	drops := 0
	s.OnDropped(func(spec sim.PacketSpec, now int) { drops++ })
	if err := s.ScheduleRouterFault(victim, 8); err != nil {
		t.Fatal(err)
	}
	specs := []sim.PacketSpec{
		{Src: 0, Dst: 3, Flits: 32},                 // long worm through the victim
		{Src: 3, Dst: 5, Flits: 4, InjectCycle: 10}, // avoids the victim entirely
	}
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deadlocked {
		t.Fatalf("router kill wedged the network: %+v", res)
	}
	if res.Dropped != 1 || drops != 1 {
		t.Fatalf("dropped=%d hook=%d, want the worm reaped exactly once", res.Dropped, drops)
	}
	if res.Delivered != 1 {
		t.Fatalf("delivered=%d, unrelated traffic did not survive", res.Delivered)
	}
}

func TestEnableCorruptionValidation(t *testing.T) {
	rg := topology.NewRing(4, 1)
	s := sim.New(rg.Network, router.AllowAll(rg.Network), sim.Config{})
	if err := s.EnableCorruption(-0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if err := s.EnableCorruption(1.5, 1); err == nil {
		t.Error("rate above 1 accepted")
	}
	if err := s.EnableCorruption(0.5, 1); err != nil {
		t.Fatalf("valid rate rejected: %v", err)
	}
}

// TestCorruptionDeterministicAndFreeAtZero pins the hash-based corruption
// filter: equal (rate, seed) kill exactly the same flit crossings on every
// run, and rate zero is bit-identical to never installing the filter.
func TestCorruptionDeterministicAndFreeAtZero(t *testing.T) {
	sys, _, err := core.ParseSystem("fat-fract:levels=2")
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	specs := workload.UniformRandom(rand.New(rand.NewSource(17)), sys.Net.NumNodes(), 96, 4, 50)

	run := func(rate float64, seed uint64, enable bool) sim.Result {
		s := sim.New(sys.Net, sys.Disables, sim.Config{FIFODepth: 4})
		if enable {
			if err := s.EnableCorruption(rate, seed); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AddBatch(sys.Tables, specs); err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}

	a := run(0.05, 7, true)
	b := run(0.05, 7, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("corruption not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 {
		t.Fatal("5% corruption killed nothing")
	}
	zero := run(0, 9, true)
	base := run(0, 0, false)
	if !reflect.DeepEqual(zero, base) {
		t.Fatalf("rate-0 corruption disturbed the baseline:\n%+v\n%+v", zero, base)
	}
}

// TestStepToLateFaultStillApplies is the regression for the free clock
// jump: a fault scheduled inside a window the empty network skipped over
// must still be in force when traffic arrives later.
func TestStepToLateFaultStillApplies(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingClockwise(rg)
	victim := interRouterLink(t, rg.Network, tb, 0, 2)
	s := sim.New(rg.Network, router.AllowAll(rg.Network), sim.Config{FIFODepth: 2})
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 10, Link: victim}); err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.StepTo(100)
	if s.Now() != 100 {
		t.Fatalf("empty network did not free-advance: now=%d", s.Now())
	}
	route, err := tb.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPacket(sim.PacketSpec{Src: 0, Dst: 2, Flits: 4, InjectCycle: 100}, route); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Dropped != 1 || res.Delivered != 0 {
		t.Fatalf("fault skipped by the clock jump: dropped=%d delivered=%d", res.Dropped, res.Delivered)
	}
}
