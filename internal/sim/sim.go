// Package sim is a cycle-level wormhole network simulator for ServerNet-
// style networks: byte-serial links carry one flit per cycle, routers have
// one input FIFO per port (per virtual channel, when configured) and a
// non-blocking crossbar, a packet's header flit allocates each output as it
// advances and its tail flit releases it, and blocked worms hold the
// buffers they occupy — the regime in which the circular waits of Figure 1
// become true deadlocks.
//
// The simulator is deterministic: ties are broken by channel order and
// per-output round-robin arbitration. It holds no random state at all —
// every source of randomness in an experiment lives in the workload
// generator's explicit *rand.Rand — which is what lets internal/runner fan
// simulation points over a worker pool and still produce bit-identical
// results for any worker count. It detects deadlock by lack of
// forward progress and extracts a witness cycle from the channel wait-for
// graph, verifies in-order delivery per source-destination pair (the
// ServerNet protocol requirement of §3.3), enforces the path-disable
// registers of §2.4 (discarding packets whose — possibly corrupted —
// routes attempt a disabled turn), and optionally provides the virtual
// channels of the Dally–Seitz scheme §2 weighs against topology-based
// avoidance, plus the timeout/discard/retry recovery that section also
// discusses.
package sim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Config holds simulator parameters.
type Config struct {
	// FIFODepth is the per-input-buffer capacity in flits, per virtual
	// channel (default 4). Total buffering per port is
	// FIFODepth * VirtualChannels — the hardware cost §2 of the paper
	// holds against virtual-channel deadlock avoidance.
	FIFODepth int
	// VirtualChannels is the VC count per physical channel (default 1).
	// Routes produced by a routing with a VC assignment select the VC per
	// hop; single-VC routes ride VC 0.
	VirtualChannels int
	// MaxCycles bounds the simulation (default 1e6).
	MaxCycles int
	// DeadlockThreshold is the number of consecutive cycles without any
	// flit movement after which the network is declared deadlocked
	// (default 10000).
	DeadlockThreshold int
	// TimeoutCycles, when positive, enables §2's timeout-based deadlock
	// RECOVERY: a packet whose header has not moved for this many cycles
	// is discarded in place and re-injected from the source. The paper
	// rejects this scheme for system area networks because retries destroy
	// in-order delivery; the simulator measures exactly that.
	TimeoutCycles int
	// MaxRetries bounds re-injections per packet (default 3) when
	// TimeoutCycles is enabled.
	MaxRetries int
	// LinkLatency is the flit propagation time per channel in cycles
	// (default 1). The paper's links "can reach up to 30 meters"; longer
	// cables add pipeline stages without changing any safety property.
	LinkLatency int
	// Trace, when non-nil, receives one line per flit movement
	// ("cycle pkt flit channel"), for debugging and visualization.
	Trace io.Writer
}

// LinkFault schedules a link to fail at a cycle: from then on, any header
// flit attempting to cross either of its channels is discarded (the worm is
// killed, as ServerNet's CRC/timeout machinery would), and body flits of
// worms already committed die with their packet.
type LinkFault struct {
	Cycle int
	Link  topology.LinkID
}

func (c Config) withDefaults() Config {
	if c.FIFODepth <= 0 {
		c.FIFODepth = 4
	}
	if c.VirtualChannels <= 0 {
		c.VirtualChannels = 1
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 1_000_000
	}
	if c.DeadlockThreshold <= 0 {
		c.DeadlockThreshold = 10_000
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 1
	}
	return c
}

// PacketSpec describes one packet to inject.
type PacketSpec struct {
	Src, Dst    int // node addresses
	Flits       int // packet length in flits, >= 1
	InjectCycle int // earliest cycle the source may begin injecting
}

// Result summarizes a simulation run.
type Result struct {
	Cycles    int
	Injected  int // packets fully injected (counting each retry attempt once)
	Delivered int // packets fully delivered
	Dropped   int // packets discarded by path-disable logic or retry exhaustion

	Deadlocked bool
	// WaitCycle is a witness cycle in the channel wait-for graph when
	// Deadlocked: each channel's blocked head flit waits for the next.
	WaitCycle []topology.ChannelID

	AvgLatency float64 // cycles from InjectCycle to tail delivery
	MaxLatency int
	// P50Latency and P99Latency are latency percentiles over delivered
	// packets (0 when nothing was delivered).
	P50Latency, P99Latency int
	// ThroughputFPC is delivered flits per cycle over the whole run.
	ThroughputFPC float64

	InOrderViolations int
	// Retries counts timeout-triggered re-injections.
	Retries int
	// ChannelFlits counts flit crossings per physical channel.
	ChannelFlits map[topology.ChannelID]int
}

// FlitMoves is the total number of flit-channel crossings the run
// performed — the simulator's unit of work, summed over ChannelFlits. The
// experiment runner records it per run so campaign summaries can report
// simulation cost independent of wall clock.
func (r Result) FlitMoves() int {
	total := 0
	for _, n := range r.ChannelFlits {
		total += n
	}
	return total
}

type packet struct {
	id        int
	spec      PacketSpec
	route     []topology.ChannelID
	vcs       []int // nil => VC 0 on every hop
	seq       int   // per (src,dst) injection sequence
	injected  int   // flits handed to the network so far
	dropped   bool
	retired   bool
	wantRetry bool
	retries   int
	stall     int // consecutive cycles the header has not moved (timeout mode)
	owned     []vcPortKey
}

func (p *packet) vcAt(hop int) int {
	if p.vcs == nil {
		return 0
	}
	return p.vcs[hop]
}

type flit struct {
	pkt *packet
	idx int // 0 = header, spec.Flits-1 = tail
	hop int // route index of the channel just crossed
}

// pendingFlit is a flit propagating along a wire.
type pendingFlit struct {
	key int // destination buffer key (channel*V + vc)
	f   flit
	at  int // last cycle on the wire; lands when now > at
}

// vcPortKey identifies one virtual output channel of one router port.
type vcPortKey struct {
	dev  topology.DeviceID
	port int
	vc   int
}

// physKey identifies a physical output port (the 1 flit/cycle resource).
type physKey struct {
	dev  topology.DeviceID
	port int
}

// Simulator runs one workload over one network. Create with New, add
// packets, then Run.
type Simulator struct {
	net *topology.Network
	dis *router.Disables
	cfg Config

	packets []*packet
	queues  map[int][]*packet // per source node, FIFO injection order
	seqs    map[[2]int]int

	buffers  map[int][]flit // key = int(channel)*V + vc
	owner    map[vcPortKey]int
	arbiter  map[physKey]int // round-robin pointer over request keys
	channels []topology.ChannelID

	// pending holds flits in flight on a wire (LinkLatency > 1, or the
	// uniform single-cycle pipeline stage): they land in their target
	// buffer — or at their destination node — once now > at.
	pending  []pendingFlit
	inflight map[int]int // wire occupancy per buffer key, for space checks

	busy        map[topology.ChannelID]int
	outstanding int

	faults    []LinkFault
	deadLinks map[topology.LinkID]bool

	// hook, when set, runs after a packet's tail flit is delivered. It may
	// call AddPacket to inject follow-up traffic (acknowledgments, read
	// responses, interrupts) — the mechanism the ServerNet transaction
	// layer in internal/servernet builds on.
	hook func(spec PacketSpec, now int)
	// dropHook, when set, runs after a packet is discarded (disable
	// violation, fault, or retry exhaustion). It may call AddPacket to
	// re-issue the transfer — e.g. over the other fabric of a dual
	// configuration.
	dropHook func(spec PacketSpec, now int)
}

// OnDelivered installs a delivery hook invoked after each packet's tail
// arrives; the hook may schedule new packets with AddPacket (their
// InjectCycle must not be in the past).
func (s *Simulator) OnDelivered(hook func(spec PacketSpec, now int)) { s.hook = hook }

// OnDropped installs a hook invoked after a packet is permanently discarded
// (path-disable violation, link fault, or retry exhaustion); it may
// re-issue the transfer with AddPacket, e.g. over a standby fabric.
func (s *Simulator) OnDropped(hook func(spec PacketSpec, now int)) { s.dropHook = hook }

// ScheduleFault arranges for a link to fail at the given cycle.
func (s *Simulator) ScheduleFault(f LinkFault) { s.faults = append(s.faults, f) }

// New creates a simulator over a network with the given disable matrix
// (use router.AllowAll for an unrestricted crossbar).
func New(net *topology.Network, dis *router.Disables, cfg Config) *Simulator {
	s := &Simulator{
		net:       net,
		dis:       dis,
		cfg:       cfg.withDefaults(),
		queues:    make(map[int][]*packet),
		seqs:      make(map[[2]int]int),
		buffers:   make(map[int][]flit),
		inflight:  make(map[int]int),
		owner:     make(map[vcPortKey]int),
		arbiter:   make(map[physKey]int),
		busy:      make(map[topology.ChannelID]int),
		deadLinks: make(map[topology.LinkID]bool),
	}
	for c := 0; c < net.NumChannels(); c++ {
		ch := topology.ChannelID(c)
		if net.Device(net.ChannelDst(ch).Device).Kind == topology.Router {
			s.channels = append(s.channels, ch)
		}
	}
	return s
}

func (s *Simulator) bufKey(ch topology.ChannelID, vc int) int {
	return int(ch)*s.cfg.VirtualChannels + vc
}

// AddPacket schedules a packet with an explicit route. Using routes rather
// than live table lookups lets experiments inject per-packet path choices
// (the in-order ablation) and corrupted-table routes.
func (s *Simulator) AddPacket(spec PacketSpec, route routing.Route) error {
	if spec.Flits < 1 {
		return fmt.Errorf("sim: packet needs at least 1 flit, got %d", spec.Flits)
	}
	if route.Src != spec.Src || route.Dst != spec.Dst {
		return fmt.Errorf("sim: route %d->%d does not match spec %d->%d",
			route.Src, route.Dst, spec.Src, spec.Dst)
	}
	for i := range route.Channels {
		if v := route.VCAt(i); v < 0 || v >= s.cfg.VirtualChannels {
			return fmt.Errorf("sim: route hop %d uses VC %d but the simulator has %d VCs",
				i, v, s.cfg.VirtualChannels)
		}
	}
	p := &packet{
		id:    len(s.packets),
		spec:  spec,
		route: route.Channels,
		vcs:   route.VCs,
		seq:   s.seqs[[2]int{spec.Src, spec.Dst}],
	}
	s.seqs[[2]int{spec.Src, spec.Dst}]++
	s.packets = append(s.packets, p)
	s.queues[spec.Src] = append(s.queues[spec.Src], p)
	s.outstanding++
	return nil
}

// AddBatch routes each spec through the tables and schedules it.
func (s *Simulator) AddBatch(t *routing.Tables, specs []PacketSpec) error {
	for _, spec := range specs {
		r, err := t.Route(spec.Src, spec.Dst)
		if err != nil {
			return err
		}
		if err := s.AddPacket(spec, r); err != nil {
			return err
		}
	}
	return nil
}

type move struct {
	from int // buffer key; -1 == injection from the source node
	to   int // buffer key
	src  int // injecting node when from == -1
}

// Run executes the simulation until every packet is delivered or dropped,
// deadlock is declared, or MaxCycles elapse.
func (s *Simulator) Run() Result {
	res := Result{ChannelFlits: s.busy}
	lastSeq := make(map[[2]int]int)
	totalLatency := 0
	var latencies []int
	deliveredFlits := 0
	idle := 0

	// land processes a wire arrival: ejections run the delivery protocol,
	// router-bound flits enter their input buffer (flits of dropped worms
	// simply vanish, as the hardware's error handling discards them).
	now := 0
	landed := 0
	land := func(p pendingFlit) {
		s.inflight[p.key]--
		f := p.f
		toCh := topology.ChannelID(p.key / s.cfg.VirtualChannels)
		dst := s.net.ChannelDst(toCh)
		if s.net.Device(dst.Device).Kind != topology.Node {
			if !f.pkt.dropped {
				s.buffers[p.key] = append(s.buffers[p.key], f)
			}
			return
		}
		if f.pkt.dropped {
			return
		}
		deliveredFlits++
		if f.idx == f.pkt.spec.Flits-1 {
			s.outstanding--
			res.Delivered++
			lat := now - f.pkt.spec.InjectCycle
			totalLatency += lat
			latencies = append(latencies, lat)
			if lat > res.MaxLatency {
				res.MaxLatency = lat
			}
			key := [2]int{f.pkt.spec.Src, f.pkt.spec.Dst}
			if f.pkt.seq < lastSeq[key] {
				res.InOrderViolations++
			} else {
				lastSeq[key] = f.pkt.seq + 1
			}
			if s.hook != nil {
				s.hook(f.pkt.spec, now)
			}
		}
	}

	for ; now < s.cfg.MaxCycles && s.outstanding > 0; now++ {
		for _, f := range s.faults {
			if f.Cycle == now {
				s.deadLinks[f.Link] = true
			}
		}

		// Wire arrivals land before this cycle's switching decisions.
		landed = 0
		keep := s.pending[:0]
		for _, p := range s.pending {
			if p.at < now {
				land(p)
				landed++
			} else {
				keep = append(keep, p)
			}
		}
		s.pending = keep

		moves := s.planMoves(now)

		for _, mv := range moves {
			var f flit
			toCh := topology.ChannelID(mv.to / s.cfg.VirtualChannels)
			toVC := mv.to % s.cfg.VirtualChannels
			if mv.from == -1 {
				p := s.queues[mv.src][0]
				f = flit{pkt: p, idx: p.injected, hop: 0}
				p.stall = 0
				p.injected++
				if p.injected == p.spec.Flits {
					s.queues[mv.src] = s.queues[mv.src][1:]
					res.Injected++
				}
			} else {
				f = s.buffers[mv.from][0]
				s.buffers[mv.from] = s.buffers[mv.from][1:]
				f.hop++
				f.pkt.stall = 0
				// Ownership transitions at the output VC just crossed.
				out := vcPortKey{s.net.ChannelSrc(toCh).Device, s.net.ChannelSrc(toCh).Port, toVC}
				if f.idx == 0 {
					if _, held := s.owner[out]; !held {
						s.owner[out] = f.pkt.id
						f.pkt.owned = append(f.pkt.owned, out)
					}
				}
				if f.idx == f.pkt.spec.Flits-1 {
					s.release(f.pkt, out)
				}
			}
			s.busy[toCh]++
			if s.cfg.Trace != nil {
				fmt.Fprintf(s.cfg.Trace, "%d pkt%d flit%d vc%d %s\n",
					now, f.pkt.id, f.idx, toVC, s.net.ChannelString(toCh))
			}
			s.pending = append(s.pending, pendingFlit{key: mv.to, f: f, at: now + s.cfg.LinkLatency - 1})
			s.inflight[mv.to]++
		}

		if s.cfg.TimeoutCycles > 0 {
			s.applyTimeouts()
		}
		retired := s.reapDropped(&res, now)
		s.outstanding -= retired
		if len(moves) > 0 || retired > 0 || landed > 0 {
			idle = 0
			continue
		}
		idle++
		if idle >= s.cfg.DeadlockThreshold && s.inFlight() {
			res.Deadlocked = true
			res.WaitCycle = s.waitCycle()
			break
		}
	}
	res.Cycles = now
	if res.Delivered > 0 {
		res.AvgLatency = float64(totalLatency) / float64(res.Delivered)
		sort.Ints(latencies)
		res.P50Latency = latencies[len(latencies)/2]
		res.P99Latency = latencies[(len(latencies)*99)/100]
	}
	if now > 0 {
		res.ThroughputFPC = float64(deliveredFlits) / float64(now)
	}
	return res
}

// planMoves selects at most one flit movement per physical output port (and
// per injection channel) based on start-of-cycle state.
func (s *Simulator) planMoves(now int) []move {
	sizes := make(map[int]int, len(s.buffers))
	for k, b := range s.buffers {
		sizes[k] = len(b)
	}
	space := func(key int) bool {
		ch := topology.ChannelID(key / s.cfg.VirtualChannels)
		if s.net.Device(s.net.ChannelDst(ch).Device).Kind == topology.Node {
			return true // ejection: the node consumes immediately
		}
		return sizes[key]+s.inflight[key] < s.cfg.FIFODepth
	}

	var moves []move
	type request struct {
		from       int
		to         int
		continuing bool
	}
	requests := make(map[physKey][]request)
	for _, ch := range s.channels {
		for vc := 0; vc < s.cfg.VirtualChannels; vc++ {
			key := s.bufKey(ch, vc)
			b := s.buffers[key]
			if len(b) == 0 {
				continue
			}
			f := b[0]
			if f.pkt.dropped {
				continue // reaped separately
			}
			next := f.pkt.route[f.hop+1]
			nextVC := f.pkt.vcAt(f.hop + 1)
			dev := s.net.ChannelDst(ch).Device
			in := s.net.ChannelDst(ch).Port
			out := s.net.ChannelSrc(next).Port
			if f.idx == 0 && !s.dis.Allowed(dev, in, out) {
				// Path-disable logic rejects the turn: the packet is
				// discarded (ServerNet raises a transmission error).
				f.pkt.dropped = true
				continue
			}
			if s.deadLinks[s.net.ChannelLink(next)] {
				// The worm is aimed at a failed link: the hardware kills it.
				f.pkt.dropped = true
				continue
			}
			nextKey := s.bufKey(next, nextVC)
			if !space(nextKey) {
				continue
			}
			outVC := vcPortKey{dev, out, nextVC}
			own, held := s.owner[outVC]
			switch {
			case held && own == f.pkt.id:
				requests[physKey{dev, out}] = append(requests[physKey{dev, out}],
					request{from: key, to: nextKey, continuing: true})
			case !held && f.idx == 0:
				requests[physKey{dev, out}] = append(requests[physKey{dev, out}],
					request{from: key, to: nextKey})
			}
		}
	}
	// One grant per physical output port, round-robin over request source
	// buffers; continuing worms outrank new headers so body flits are not
	// starved mid-worm.
	keys := make([]physKey, 0, len(requests))
	for k := range requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dev != keys[j].dev {
			return keys[i].dev < keys[j].dev
		}
		return keys[i].port < keys[j].port
	})
	for _, k := range keys {
		reqs := requests[k]
		sort.Slice(reqs, func(i, j int) bool {
			if reqs[i].continuing != reqs[j].continuing {
				return reqs[i].continuing
			}
			return reqs[i].from < reqs[j].from
		})
		// Round-robin within the top priority class.
		class := reqs
		for i, r := range reqs {
			if r.continuing != reqs[0].continuing {
				class = reqs[:i]
				break
			}
		}
		last := s.arbiter[k]
		best := class[0]
		for _, r := range class {
			if r.from > last {
				best = r
				break
			}
		}
		s.arbiter[k] = best.from
		moves = append(moves, move{from: best.from, to: best.to})
	}

	// Injection: one flit per source node with a pending packet.
	srcs := make([]int, 0, len(s.queues))
	for src, q := range s.queues {
		if len(q) > 0 {
			srcs = append(srcs, src)
		}
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		p := s.queues[src][0]
		if p.spec.InjectCycle > now || p.dropped {
			continue
		}
		if s.deadLinks[s.net.ChannelLink(p.route[0])] {
			p.dropped = true
			continue
		}
		injKey := s.bufKey(p.route[0], p.vcAt(0))
		if space(injKey) {
			moves = append(moves, move{from: -1, to: injKey, src: src})
		}
	}
	return moves
}

// release frees the given output VC if the worm holds it.
func (s *Simulator) release(p *packet, out vcPortKey) {
	for i, k := range p.owned {
		if k == out {
			delete(s.owner, k)
			p.owned = append(p.owned[:i], p.owned[i+1:]...)
			return
		}
	}
}

// applyTimeouts advances per-packet stall counters for worms none of whose
// flits moved this cycle (flit movement resets the counter during move
// execution), and discards-with-retry any worm exceeding the configured
// timeout (§2's recovery alternative). Retried packets are re-enqueued at
// the source — deliberately NOT reordered in front of later traffic, which
// is how out-of-order delivery arises.
func (s *Simulator) applyTimeouts() {
	for _, p := range s.packets {
		if p.dropped || p.retired || p.injected == 0 {
			continue
		}
		if s.headInNetwork(p) {
			p.stall++
			if p.stall >= s.cfg.TimeoutCycles {
				p.dropped = true
				p.wantRetry = p.retries < s.cfg.MaxRetries
			}
		}
	}
}

// headInNetwork reports whether the packet's header flit is still buffered
// somewhere (not yet delivered).
func (s *Simulator) headInNetwork(p *packet) bool {
	for vc := 0; vc < s.cfg.VirtualChannels; vc++ {
		for _, ch := range s.channels {
			b := s.buffers[s.bufKey(ch, vc)]
			for _, f := range b {
				if f.pkt == p && f.idx == 0 {
					return true
				}
			}
		}
	}
	return false
}

// reapDropped consumes flits of dropped packets at buffer heads and retires
// packets whose flits are fully drained, releasing the output VCs their
// worms held; timeout victims are re-enqueued. It returns the number of
// packets permanently retired this cycle.
func (s *Simulator) reapDropped(res *Result, now int) int {
	for _, ch := range s.channels {
		for vc := 0; vc < s.cfg.VirtualChannels; vc++ {
			key := s.bufKey(ch, vc)
			for len(s.buffers[key]) > 0 && s.buffers[key][0].pkt.dropped {
				s.buffers[key] = s.buffers[key][1:]
			}
		}
	}
	// Cut dropped packets off at the source.
	for src, q := range s.queues {
		if len(q) > 0 && q[0].dropped {
			q[0].injected = q[0].spec.Flits
			s.queues[src] = q[1:]
		}
	}
	retired := 0
	for _, p := range s.packets {
		if p.dropped && !p.retired && p.injected == p.spec.Flits && !s.hasFlits(p) {
			for _, k := range p.owned {
				if s.owner[k] == p.id {
					delete(s.owner, k)
				}
			}
			p.owned = nil
			if p.wantRetry {
				// Re-inject: same packet identity (and sequence number, so
				// the in-order checker sees the true delivery order), fresh
				// flit stream.
				p.dropped, p.wantRetry = false, false
				p.retries++
				p.stall = 0
				p.injected = 0
				res.Retries++
				s.queues[p.spec.Src] = append(s.queues[p.spec.Src], p)
				continue
			}
			p.retired = true
			res.Dropped++
			retired++
			if s.dropHook != nil {
				s.dropHook(p.spec, now)
			}
		}
	}
	return retired
}

func (s *Simulator) hasFlits(p *packet) bool {
	for _, b := range s.buffers {
		for _, f := range b {
			if f.pkt == p {
				return true
			}
		}
	}
	for _, pf := range s.pending {
		if pf.f.pkt == p {
			return true
		}
	}
	return false
}

func (s *Simulator) inFlight() bool {
	for _, b := range s.buffers {
		if len(b) > 0 {
			return true
		}
	}
	return len(s.pending) > 0
}

// waitCycle builds the channel wait-for graph — blocked head flit in
// vc-channel c waits for its next vc-channel — and returns a cycle's
// physical channels if present.
func (s *Simulator) waitCycle() []topology.ChannelID {
	v := s.cfg.VirtualChannels
	g := graph.NewDigraph(s.net.NumChannels() * v)
	for _, ch := range s.channels {
		for vc := 0; vc < v; vc++ {
			b := s.buffers[s.bufKey(ch, vc)]
			if len(b) == 0 {
				continue
			}
			f := b[0]
			if f.pkt.dropped {
				continue
			}
			g.AddEdge(s.bufKey(ch, vc), s.bufKey(f.pkt.route[f.hop+1], f.pkt.vcAt(f.hop+1)))
		}
	}
	cyc, ok := g.FindCycle()
	if !ok {
		return nil
	}
	out := make([]topology.ChannelID, len(cyc))
	for i, c := range cyc {
		out[i] = topology.ChannelID(c / v)
	}
	return out
}
