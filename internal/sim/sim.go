// Package sim is a cycle-level wormhole network simulator for ServerNet-
// style networks: byte-serial links carry one flit per cycle, routers have
// one input FIFO per port (per virtual channel, when configured) and a
// non-blocking crossbar, a packet's header flit allocates each output as it
// advances and its tail flit releases it, and blocked worms hold the
// buffers they occupy — the regime in which the circular waits of Figure 1
// become true deadlocks.
//
// The simulator is deterministic: ties are broken by channel order and
// per-output round-robin arbitration. It holds no random state at all —
// every source of randomness in an experiment lives in the workload
// generator's explicit *rand.Rand — which is what lets internal/runner fan
// simulation points over a worker pool and still produce bit-identical
// results for any worker count. It detects deadlock by lack of
// forward progress and extracts a witness cycle from the channel wait-for
// graph, verifies in-order delivery per source-destination pair (the
// ServerNet protocol requirement of §3.3), enforces the path-disable
// registers of §2.4 (discarding packets whose — possibly corrupted —
// routes attempt a disabled turn), and optionally provides the virtual
// channels of the Dally–Seitz scheme §2 weighs against topology-based
// avoidance, plus the timeout/discard/retry recovery that section also
// discusses.
//
// The per-cycle engine runs on dense, incrementally-maintained state —
// slice-indexed ring-buffer FIFOs, precomputed per-channel tables, an
// active-buffer worklist, per-packet flit-location counters, and reusable
// arbitration scratch (state.go, arbiter.go) — and fast-forwards across
// cycles in which no switching decision is possible. internal/sim/simref
// preserves the previous scan-based implementation; the equivalence tests
// pin this engine to it field-for-field over every built-in topology.
package sim

import (
	"fmt"
	"io"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Config holds simulator parameters.
type Config struct {
	// FIFODepth is the per-input-buffer capacity in flits, per virtual
	// channel (default 4). Total buffering per port is
	// FIFODepth * VirtualChannels — the hardware cost §2 of the paper
	// holds against virtual-channel deadlock avoidance.
	FIFODepth int
	// VirtualChannels is the VC count per physical channel (default 1).
	// Routes produced by a routing with a VC assignment select the VC per
	// hop; single-VC routes ride VC 0.
	VirtualChannels int
	// MaxCycles bounds the simulation (default 1e6).
	MaxCycles int
	// DeadlockThreshold is the number of consecutive cycles without any
	// flit movement after which the network is declared deadlocked
	// (default 10000). Flits propagating on wires count as movement, so a
	// threshold below LinkLatency cannot declare a false deadlock.
	DeadlockThreshold int
	// TimeoutCycles, when positive, enables §2's timeout-based deadlock
	// RECOVERY: a packet whose header has not moved for this many cycles
	// is discarded in place and re-injected from the source. The paper
	// rejects this scheme for system area networks because retries destroy
	// in-order delivery; the simulator measures exactly that.
	TimeoutCycles int
	// MaxRetries bounds re-injections per packet (default 3) when
	// TimeoutCycles is enabled.
	MaxRetries int
	// LinkLatency is the flit propagation time per channel in cycles
	// (default 1). The paper's links "can reach up to 30 meters"; longer
	// cables add pipeline stages without changing any safety property.
	LinkLatency int
	// Shards, when greater than 1, runs the per-cycle switching plan over
	// that many goroutines: each shard classifies a disjoint range of the
	// sorted active-buffer worklist (and of the injection sources) on
	// private scratch, and the results are committed sequentially in
	// canonical channel order behind a barrier, so the output is
	// byte-identical to the sequential engine for every scenario and every
	// shard count (see shard.go). 0 and 1 mean sequential. The reference
	// engine in simref ignores the field — it is a parallelism knob, never
	// a semantic one.
	Shards int
	// Trace, when non-nil, receives one line per flit movement
	// ("cycle pkt flit channel"), for debugging and visualization.
	Trace io.Writer
}

// LinkFault schedules a link to fail at a cycle: from then on, any header
// flit attempting to cross either of its channels is discarded (the worm is
// killed, as ServerNet's CRC/timeout machinery would), and body flits of
// worms already committed die with their packet. A non-zero RepairCycle
// makes the failure transient: the link returns to service at that cycle
// and re-enters arbitration like any other channel. Zero means permanent.
type LinkFault struct {
	Cycle       int
	Link        topology.LinkID
	RepairCycle int
}

func (c Config) withDefaults() Config {
	if c.FIFODepth <= 0 {
		c.FIFODepth = 4
	}
	if c.VirtualChannels <= 0 {
		c.VirtualChannels = 1
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 1_000_000
	}
	if c.DeadlockThreshold <= 0 {
		c.DeadlockThreshold = 10_000
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 1
	}
	if c.Shards < 0 {
		c.Shards = 0
	}
	return c
}

// PacketSpec describes one packet to inject.
type PacketSpec struct {
	Src, Dst    int // node addresses
	Flits       int // packet length in flits, >= 1
	InjectCycle int // earliest cycle the source may begin injecting
}

// Result summarizes a simulation run.
type Result struct {
	Cycles    int
	Injected  int // packets fully injected (counting each retry attempt once)
	Delivered int // packets fully delivered
	Dropped   int // packets discarded by path-disable logic or retry exhaustion

	Deadlocked bool
	// WaitCycle is a witness cycle in the channel wait-for graph when
	// Deadlocked: each channel's blocked head flit waits for the next.
	WaitCycle []topology.ChannelID

	AvgLatency float64 // cycles from InjectCycle to tail delivery
	MaxLatency int
	// P50Latency and P99Latency are nearest-rank latency percentiles over
	// delivered packets (0 when nothing was delivered): the ceil(q*n/100)-th
	// smallest latency, so P99 of 100 samples is the 99th value, not the
	// maximum.
	P50Latency, P99Latency int
	// ThroughputFPC is delivered flits per cycle over the whole run.
	ThroughputFPC float64

	InOrderViolations int
	// Retries counts timeout-triggered re-injections.
	Retries int
	// ChannelFlits counts flit crossings per physical channel.
	ChannelFlits map[topology.ChannelID]int
}

// FlitMoves is the total number of flit-channel crossings the run
// performed — the simulator's unit of work, summed over ChannelFlits. The
// experiment runner records it per run so campaign summaries can report
// simulation cost independent of wall clock.
func (r Result) FlitMoves() int {
	total := 0
	for _, n := range r.ChannelFlits {
		total += n
	}
	return total
}

// nearestRank is the 0-based index of the nearest-rank q-th percentile of n
// sorted samples: ceil(q*n/100) - 1. The old implementation used
// (n*q)/100, which at q=99, n=100 selects index 99 — the maximum — instead
// of the 99th value.
func nearestRank(q, n int) int {
	return (q*n+99)/100 - 1
}

type packet struct {
	id        int
	spec      PacketSpec
	route     []topology.ChannelID
	vcs       []int // nil => VC 0 on every hop
	seq       int   // per (src,dst) injection sequence
	injected  int   // flits handed to the network so far
	dropped   bool
	retired   bool
	wantRetry bool
	retries   int
	stall     int // consecutive cycles the header has not moved (timeout mode)

	// Incrementally-maintained flit-location state. The old implementation
	// recovered all of this with whole-network scans every cycle — and the
	// scan-based headInNetwork could not see a header mid-wire or already
	// delivered, which froze the stall clock exactly when a worm was wedged.
	flitsBuf  int  // flits of this worm resident in router input buffers
	flitsWire int  // flits of this worm propagating on wires
	delivered int  // flits ejected at the destination
	headMoved bool // the header flit crossed a channel this cycle
	inActive  bool // member of Simulator.activePkts
	inDirty   bool // member of Simulator.dirty

	owned []int32 // output-VC buffer keys this worm's header has claimed
}

func (p *packet) vcAt(hop int) int {
	if p.vcs == nil {
		return 0
	}
	return p.vcs[hop]
}

type flit struct {
	pkt *packet
	idx int // 0 = header, spec.Flits-1 = tail
	hop int // route index of the channel just crossed
}

// pendingFlit is a flit propagating along a wire.
type pendingFlit struct {
	key int // destination buffer key (channel*V + vc)
	f   flit
	at  int // last cycle on the wire; lands when now > at
}

// runState carries one run's accumulators across cycles. Run owns one
// implicitly; the step API (Start/StepTo/Finish) exposes the same machinery
// so an external controller — e.g. internal/chaos's dual-fabric recovery
// engine — can interleave two simulators cycle-by-cycle and intervene
// between cycles (hot-swap disables, inject retries on the other fabric).
type runState struct {
	res            Result
	lastSeq        map[[2]int]int
	totalLatency   int
	latencies      []int
	deliveredFlits int
	idle           int
	now            int
	done           bool // deadlock declared; the clock is frozen at the witness cycle
}

// Run executes the simulation until every packet is delivered or dropped,
// deadlock is declared, or MaxCycles elapse.
func (s *Simulator) Run() Result {
	s.Start()
	for s.Running() {
		s.stepCycle(s.cfg.MaxCycles)
	}
	return s.Finish()
}

// Start prepares the step loop. Idempotent; Run and StepTo call it
// implicitly.
func (s *Simulator) Start() {
	if s.rs == nil {
		s.rs = &runState{lastSeq: make(map[[2]int]int)}
	}
}

// Running reports whether the run can still make progress: not deadlocked,
// inside the horizon, with unresolved packets. A finished simulator resumes
// if AddPacket hands it new work (unless it deadlocked).
func (s *Simulator) Running() bool {
	return s.rs != nil && !s.rs.done && s.rs.now < s.cfg.MaxCycles && s.outstanding > 0
}

// Now returns the current cycle of the step loop (0 before Start).
func (s *Simulator) Now() int {
	if s.rs == nil {
		return 0
	}
	return s.rs.now
}

// StepTo advances the run until the clock reaches limit, every packet is
// resolved, or deadlock is declared. When the network empties before limit
// the clock jumps there for free, so two co-simulated fabrics stay aligned
// while one idles. Cycle `limit` itself is not executed: after StepTo(t) it
// is still legal to AddPacket with InjectCycle >= t.
func (s *Simulator) StepTo(limit int) {
	s.Start()
	if limit > s.cfg.MaxCycles {
		limit = s.cfg.MaxCycles
	}
	for s.Running() && s.rs.now < limit {
		s.stepCycle(limit)
	}
	if !s.rs.done && s.outstanding == 0 && s.rs.now < limit {
		// Outstanding == 0 means the fabric is completely empty (tails
		// delivered and drops fully reaped), so no event can fire until
		// new packets arrive: the skipped cycles are all no-ops.
		s.rs.now = limit
	}
}

// Finish seals the run and returns its Result. Callable once the step loop
// stops (and again after a resume); Run calls it for you. It also releases
// the shard worker pool, so a finished simulator holds no goroutines; a
// later resume (AddPacket + StepTo) re-creates the pool on demand.
func (s *Simulator) Finish() Result {
	s.Close()
	rs := s.rs
	rs.res.Cycles = rs.now
	cf := make(map[topology.ChannelID]int)
	for c, n := range s.busyCh {
		if n > 0 {
			cf[topology.ChannelID(c)] = n
		}
	}
	rs.res.ChannelFlits = cf
	if rs.res.Delivered > 0 {
		rs.res.AvgLatency = float64(rs.totalLatency) / float64(rs.res.Delivered)
		latencies := append([]int(nil), rs.latencies...)
		sort.Ints(latencies)
		rs.res.P50Latency = latencies[nearestRank(50, len(latencies))]
		rs.res.P99Latency = latencies[nearestRank(99, len(latencies))]
	}
	if rs.now > 0 {
		rs.res.ThroughputFPC = float64(rs.deliveredFlits) / float64(rs.now)
	}
	return rs.res
}

// land processes a wire arrival: ejections run the delivery protocol,
// router-bound flits enter their input buffer (flits of dropped worms
// simply vanish, as the hardware's error handling discards them).
func (s *Simulator) land(p pendingFlit) {
	rs := s.rs
	s.inflight[p.key]--
	f := p.f
	f.pkt.flitsWire--
	if !s.chDstIsNode[p.key/s.cfg.VirtualChannels] {
		if !f.pkt.dropped {
			s.bufPush(p.key, f)
		}
		return
	}
	if f.pkt.dropped {
		return
	}
	f.pkt.delivered++
	rs.deliveredFlits++
	if f.idx == f.pkt.spec.Flits-1 {
		s.outstanding--
		rs.res.Delivered++
		lat := rs.now - f.pkt.spec.InjectCycle
		rs.totalLatency += lat
		rs.latencies = append(rs.latencies, lat)
		if lat > rs.res.MaxLatency {
			rs.res.MaxLatency = lat
		}
		key := [2]int{f.pkt.spec.Src, f.pkt.spec.Dst}
		if f.pkt.seq < rs.lastSeq[key] {
			rs.res.InOrderViolations++
		} else {
			rs.lastSeq[key] = f.pkt.seq + 1
		}
		if s.hook != nil {
			s.hook(f.pkt.spec, rs.now)
		}
	}
}

// stepCycle executes one cycle of the run at rs.now and advances the clock,
// fast-forwarding across quiescent stretches up to (but excluding) limit.
// On deadlock it freezes the clock at the witness cycle and sets rs.done —
// exactly the retired monolithic loop's `break` before the final `now++`.
func (s *Simulator) stepCycle(limit int) {
	rs := s.rs
	now := rs.now

	// Events with cycle < now can exist only after a free clock jump over a
	// provably empty network (StepTo), so folding them late is exact: no
	// flit crossed anything during the skipped window.
	for s.evCursor < len(s.events) && s.events[s.evCursor].cycle <= now {
		ev := s.events[s.evCursor]
		wasDead := s.deadCount[ev.link] > 0
		s.deadCount[ev.link] += int32(ev.delta)
		if (s.deadCount[ev.link] > 0) != wasDead {
			s.faultRev++
		}
		s.evCursor++
	}

	// Wire arrivals land before this cycle's switching decisions. All
	// wire delays equal LinkLatency, so the pending ring is FIFO by
	// landing cycle and arrivals pop off the front in issue order.
	landed := 0
	for s.pendLen > 0 && s.pend[s.pendHead].at < now {
		s.land(s.popPending())
		landed++
	}

	moves := s.plan(now)

	for _, mv := range moves {
		var f flit
		toCh := topology.ChannelID(mv.to / s.cfg.VirtualChannels)
		toVC := mv.to % s.cfg.VirtualChannels
		if mv.from == -1 {
			p := s.queues[mv.src][0]
			f = flit{pkt: p, idx: p.injected, hop: 0}
			p.stall = 0
			if p.injected == 0 {
				p.headMoved = true
				if s.cfg.TimeoutCycles > 0 {
					s.trackActive(p)
				}
			}
			p.injected++
			if p.injected == p.spec.Flits {
				s.queues[mv.src] = s.queues[mv.src][1:]
				rs.res.Injected++
			}
		} else {
			f = s.bufPop(mv.from)
			f.hop++
			f.pkt.stall = 0
			// Ownership transitions at the output VC just crossed —
			// identified by the destination buffer key, every wired
			// port driving exactly one outgoing channel.
			if f.idx == 0 {
				f.pkt.headMoved = true
				if s.owner[mv.to] < 0 {
					s.owner[mv.to] = int32(f.pkt.id)
					f.pkt.owned = append(f.pkt.owned, int32(mv.to))
				}
			}
			if f.idx == f.pkt.spec.Flits-1 {
				s.release(f.pkt, int32(mv.to))
			}
		}
		s.busyCh[toCh]++
		if s.cfg.Trace != nil {
			fmt.Fprintf(s.cfg.Trace, "%d pkt%d flit%d vc%d %s\n",
				now, f.pkt.id, f.idx, toVC, s.net.ChannelString(toCh))
		}
		if s.corruptThreshold != 0 && !f.pkt.dropped &&
			s.corrupted(f.pkt.id, f.pkt.retries, f.idx, f.hop) {
			// The flit is corrupted on the wire it just entered: the
			// receiver's CRC check kills the worm, like a fault would.
			f.pkt.dropped = true
			s.markDropped(f.pkt)
		}
		f.pkt.flitsWire++
		s.pushPending(pendingFlit{key: mv.to, f: f, at: now + s.cfg.LinkLatency - 1})
		s.inflight[mv.to]++
	}

	if s.cfg.TimeoutCycles > 0 {
		s.applyTimeouts()
	}
	dirtyBefore := len(s.dirty)
	retired := 0
	if dirtyBefore > 0 {
		retired = s.reapDropped(&rs.res, now)
		s.outstanding -= retired
	}
	if len(moves) > 0 || retired > 0 || landed > 0 {
		rs.idle = 0
		rs.now = now + 1
		return
	}
	if s.pendLen > 0 {
		// Flits propagating on long wires are forward progress even
		// though no switching decision fired this cycle; without this,
		// DeadlockThreshold < LinkLatency declared false deadlocks.
		rs.idle = 0
	} else {
		rs.idle++
		if rs.idle >= s.cfg.DeadlockThreshold && s.totalBuffered > 0 {
			rs.res.Deadlocked = true
			rs.res.WaitCycle = s.waitCycle()
			rs.done = true
			return
		}
	}

	// Nothing moved, landed, or retired, and no dropped worms are
	// draining: the network is quiescent and can only change at the
	// next discrete event. Jump there instead of spinning one cycle at
	// a time, carrying the idle and stall clocks across the gap. A
	// non-empty dirty list blocks the jump even when nothing retired —
	// a reap may have cut queues or re-enqueued retries after planMoves
	// computed nextInject, so the event horizon is stale.
	if dirtyBefore > 0 {
		rs.now = now + 1
		return
	}
	next := limit
	if s.pendLen > 0 {
		if t := s.pend[s.pendHead].at + 1; t < next {
			next = t
		}
	}
	if s.nextInject < next {
		next = s.nextInject
	}
	if s.evCursor < len(s.events) && s.events[s.evCursor].cycle < next {
		next = s.events[s.evCursor].cycle
	}
	if s.cfg.TimeoutCycles > 0 {
		for _, p := range s.activePkts {
			if t := now + s.cfg.TimeoutCycles - p.stall; t < next {
				next = t
			}
		}
	}
	if s.pendLen == 0 && s.totalBuffered > 0 {
		if t := now + s.cfg.DeadlockThreshold - rs.idle; t < next {
			next = t
		}
	}
	if skipped := next - 1 - now; skipped > 0 {
		if s.pendLen == 0 {
			rs.idle += skipped
		}
		if s.cfg.TimeoutCycles > 0 {
			for _, p := range s.activePkts {
				p.stall += skipped
			}
		}
		now = next - 1
	}
	rs.now = now + 1
}

// applyTimeouts advances per-packet stall counters for worms whose header
// flit did not cross a channel this cycle (any flit movement of the worm
// resets the counter during move execution), and discards-with-retry any
// worm exceeding the configured timeout (§2's recovery alternative).
// Retried packets are re-enqueued at the source — deliberately NOT
// reordered in front of later traffic, which is how out-of-order delivery
// arises.
//
// The clock keeps running wherever the header is: buffered, mid-wire on a
// long link, or already delivered with body flits stuck behind a fault.
// The old buffer-scan predicate went blind in the latter two cases, so a
// worm wedged with its header off-buffer could never time out and its held
// VCs leaked until DeadlockThreshold fired.
func (s *Simulator) applyTimeouts() {
	kept := s.activePkts[:0]
	for _, p := range s.activePkts {
		if p.dropped || p.retired || p.injected == 0 || p.delivered == p.spec.Flits {
			p.inActive = false
			continue
		}
		if !p.headMoved {
			p.stall++
			if p.stall >= s.cfg.TimeoutCycles {
				p.dropped = true
				p.wantRetry = p.retries < s.cfg.MaxRetries
				s.markDropped(p)
				p.inActive = false
				continue
			}
		}
		p.headMoved = false
		kept = append(kept, p)
	}
	s.activePkts = kept
}

// reapDropped consumes flits of dropped packets at buffer heads and retires
// packets whose flits are fully drained, releasing the output VCs their
// worms held; timeout victims are re-enqueued. It returns the number of
// packets permanently retired this cycle. Only called while the dirty list
// is non-empty — a quiescent network reaps nothing.
func (s *Simulator) reapDropped(res *Result, now int) int {
	// Drain dropped worms' flits at buffer heads. Iterating the active
	// worklist back to front keeps the swap-removal of emptied buffers
	// safe: the element swapped in always comes from an index already
	// visited.
	for i := len(s.activeBufs) - 1; i >= 0; i-- {
		key := int(s.activeBufs[i])
		for s.bufLen[key] > 0 && s.bufFlits[key*s.depth+int(s.bufHead[key])].pkt.dropped {
			s.bufPop(key)
		}
	}
	// Cut dropped packets off at the source.
	for _, p := range s.dirty {
		if q := s.queues[p.spec.Src]; len(q) > 0 && q[0] == p {
			p.injected = p.spec.Flits
			s.queues[p.spec.Src] = q[1:]
		}
	}
	// Retire and retry in packet-id order — the order the old
	// implementation's full scan over s.packets produced.
	slices.SortFunc(s.dirty, func(a, b *packet) int { return a.id - b.id })
	retired := 0
	kept := s.dirty[:0]
	for _, p := range s.dirty {
		if p.flitsBuf+p.flitsWire > 0 || p.injected != p.spec.Flits || p.retired {
			kept = append(kept, p)
			continue
		}
		for _, k := range p.owned {
			if s.owner[k] == int32(p.id) {
				s.owner[k] = -1
			}
		}
		p.owned = nil
		p.inDirty = false
		if p.wantRetry {
			// Re-inject: same packet identity (and sequence number, so
			// the in-order checker sees the true delivery order), fresh
			// flit stream.
			p.dropped, p.wantRetry = false, false
			p.retries++
			p.stall = 0
			p.injected = 0
			p.delivered = 0
			p.headMoved = false
			res.Retries++
			s.queues[p.spec.Src] = append(s.queues[p.spec.Src], p)
			continue
		}
		p.retired = true
		res.Dropped++
		retired++
		if s.dropHook != nil {
			s.dropHook(p.spec, now)
		}
	}
	s.dirty = kept
	return retired
}

// waitCycle builds the channel wait-for graph — blocked head flit in
// vc-channel c waits for its next vc-channel — and returns a cycle's
// physical channels if present.
func (s *Simulator) waitCycle() []topology.ChannelID {
	v := s.cfg.VirtualChannels
	g := graph.NewDigraph(s.net.NumChannels() * v)
	slices.Sort(s.activeBufs)
	for i, k := range s.activeBufs {
		s.activePos[k] = int32(i)
	}
	for _, k32 := range s.activeBufs {
		key := int(k32)
		f := s.bufFlits[key*s.depth+int(s.bufHead[key])]
		if f.pkt.dropped {
			continue
		}
		g.AddEdge(key, int(f.pkt.route[f.hop+1])*v+f.pkt.vcAt(f.hop+1))
	}
	cyc, ok := g.FindCycle()
	if !ok {
		return nil
	}
	out := make([]topology.ChannelID, len(cyc))
	for i, c := range cyc {
		out[i] = topology.ChannelID(c / v)
	}
	return out
}
