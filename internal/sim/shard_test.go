package sim

// White-box tests for the shard worker pool: panic containment and, most
// importantly, goroutine hygiene — every way a run can end must leave the
// process goroutine count where it started (goleak-style, stdlib-only).

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestMain drops the sharded planner's engagement threshold to a single
// active buffer for the entire sim test binary (both this package's tests
// and the black-box sim_test battery): every simulator configured with
// Shards > 1 then exercises the parallel path on every live cycle, however
// small the scenario, so the differential tests can never silently compare
// the sequential planner against itself. Output is identical either way;
// only the planner choice is forced.
func TestMain(m *testing.M) {
	shardWorkMin = 1
	os.Exit(m.Run())
}

// waitGoroutines polls until the process goroutine count returns to the
// baseline. Exited goroutines take a few scheduler beats to retire, so an
// instantaneous compare is flaky; a bounded poll loop with a short sleep is
// the stdlib rendering of goleak's stabilization scheme.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShardPoolPanicPropagation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := newShardPool(4)
	recovered := func(fn func(int)) (pv any) {
		defer func() { pv = recover() }()
		p.run(fn)
		return nil
	}
	// A single worker panic crosses the barrier back to the caller.
	if pv := recovered(func(shard int) {
		if shard == 2 {
			panic("shard 2 boom")
		}
	}); pv != "shard 2 boom" {
		t.Fatalf("recovered %v, want shard 2's panic", pv)
	}
	// The pool survives a panic: the next dispatch still runs every shard.
	ran := make([]bool, 4)
	p.run(func(shard int) { ran[shard] = true })
	for shard, ok := range ran {
		if !ok {
			t.Fatalf("shard %d did not run after a recovered panic", shard)
		}
	}
	// Simultaneous panics resolve deterministically: lowest shard wins.
	if pv := recovered(func(shard int) { panic(shard) }); pv != 0 {
		t.Fatalf("recovered %v, want shard 0's panic", pv)
	}
	p.close()
	p.close() // idempotent
	waitGoroutines(t, baseline)
}

// meshSystem builds a two-router full mesh with an all-to-all workload
// heavy enough to keep buffers occupied, on a simulator with the given
// config. (White-box tests cannot use internal/workload or internal/core —
// both import this package.)
func meshSystem(t *testing.T, cfg Config) (*Simulator, *routing.Tables) {
	t.Helper()
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), cfg)
	n := fm.Network.NumNodes()
	var specs []PacketSpec
	for rep := 0; rep < 4; rep++ {
		for src := 0; src < n; src++ {
			specs = append(specs, PacketSpec{Src: src, Dst: (src + 4) % n, Flits: 6, InjectCycle: rep})
		}
	}
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	return s, tb
}

// TestShardGoroutineHygiene proves the shard pool leaks nothing on any exit
// path: a completed Run (Finish), deadlock detection, a run abandoned
// mid-flight via Close, and a hook panic recovered by the caller while a
// scheduled fault is in play.
func TestShardGoroutineHygiene(t *testing.T) {
	t.Run("run-finish", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		s, _ := meshSystem(t, Config{FIFODepth: 2, Shards: 4})
		res := s.Run()
		if res.Deadlocked || res.Delivered == 0 {
			t.Fatalf("scenario did not complete: %+v", res)
		}
		if s.ShardedCycles() == 0 {
			t.Fatal("sharded planner never engaged; the hygiene run tested nothing")
		}
		waitGoroutines(t, baseline)
	})

	t.Run("deadlock-detection", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		rg := topology.NewRing(4, 1)
		tb := routing.RingClockwise(rg)
		s := New(rg.Network, router.AllowAll(rg.Network), Config{
			FIFODepth: 2, DeadlockThreshold: 200, Shards: 3,
		})
		for src := 0; src < 4; src++ {
			if err := s.AddBatch(tb, []PacketSpec{{Src: src, Dst: (src + 2) % 4, Flits: 32}}); err != nil {
				t.Fatal(err)
			}
		}
		res := s.Run()
		if !res.Deadlocked {
			t.Fatalf("expected a deadlock, got %+v", res)
		}
		if s.ShardedCycles() == 0 {
			t.Fatal("sharded planner never engaged before the deadlock")
		}
		waitGoroutines(t, baseline)
	})

	t.Run("abandoned-mid-run", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		s, _ := meshSystem(t, Config{FIFODepth: 2, Shards: 4})
		s.Start()
		s.StepTo(3)
		if !s.Running() {
			t.Fatal("scenario resolved before it could be abandoned")
		}
		// An external controller hitting an error abandons the run without
		// Finish; Close alone must reap the pool.
		s.Close()
		waitGoroutines(t, baseline)
	})

	t.Run("hook-panic-recovered", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		s, _ := meshSystem(t, Config{FIFODepth: 2, Shards: 4})
		if err := s.ScheduleFault(LinkFault{Cycle: 2, Link: 0}); err != nil {
			t.Fatal(err)
		}
		s.OnDelivered(func(spec PacketSpec, now int) { panic("hook boom") })
		pv := func() (pv any) {
			defer func() { pv = recover() }()
			s.Run()
			return nil
		}()
		if pv != "hook boom" {
			t.Fatalf("recovered %v, want the hook's panic", pv)
		}
		s.Close()
		waitGoroutines(t, baseline)

		// The run is resumable after the recovered panic: clearing the hook
		// and finishing must work and again leave no goroutines behind.
		s.OnDelivered(nil)
		for s.Running() {
			s.StepTo(s.Now() + 1)
		}
		res := s.Finish()
		if res.Delivered == 0 {
			t.Fatalf("resumed run delivered nothing: %+v", res)
		}
		waitGoroutines(t, baseline)
	})
}
