package sim

import (
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

// White-box tests of the simulator's internal mechanics.

func TestBufKeyRoundTrip(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{VirtualChannels: 3})
	for ch := 0; ch < fm.NumChannels(); ch++ {
		for vc := 0; vc < 3; vc++ {
			key := s.bufKey(topology.ChannelID(ch), vc)
			if key/3 != ch || key%3 != vc {
				t.Fatalf("bufKey(%d,%d) = %d does not decompose", ch, vc, key)
			}
		}
	}
}

func TestPacketVCDefaultsToZero(t *testing.T) {
	p := &packet{}
	if p.vcAt(0) != 0 || p.vcAt(5) != 0 {
		t.Error("nil VCs should ride VC 0")
	}
	p.vcs = []int{0, 1, 1}
	if p.vcAt(2) != 1 {
		t.Error("explicit VC ignored")
	}
}

func TestReleaseOnlyOwnedKeys(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	p := &packet{id: 7}
	k1, k2 := int32(3), int32(5)
	s.owner[k1] = 7
	s.owner[k2] = 7
	p.owned = []int32{k1, k2}
	s.release(p, k1)
	if s.owner[k1] != -1 {
		t.Error("k1 not released")
	}
	if s.owner[k2] != 7 {
		t.Error("k2 released prematurely")
	}
	if len(p.owned) != 1 || p.owned[0] != k2 {
		t.Errorf("owned = %v", p.owned)
	}
	// Releasing a key the packet never held is a no-op.
	s.release(p, k1)
	if len(p.owned) != 1 {
		t.Error("spurious release mutated ownership")
	}
}

// Round-robin output arbitration: two sources streaming equal traffic
// through one shared link make progress in strict alternation — neither is
// starved.
func TestArbitrationFairness(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{FIFODepth: 2})
	// Nodes 0 and 1 (router 0) each stream 10 single-flit packets to nodes
	// 5 and 6 (router 1): every packet contends for the one inter-router
	// link.
	for i := 0; i < 10; i++ {
		if err := s.AddBatch(tb, []PacketSpec{
			{Src: 0, Dst: 5, Flits: 1},
			{Src: 1, Dst: 6, Flits: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run()
	if res.Delivered != 20 || res.Deadlocked {
		t.Fatalf("delivered=%d deadlocked=%v", res.Delivered, res.Deadlocked)
	}
	// With fair arbitration the two streams finish together: total time is
	// within a small constant of 2x one stream's serialized time.
	if res.MaxLatency > 30 {
		t.Errorf("max latency %d suggests starvation", res.MaxLatency)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FIFODepth != 4 || c.VirtualChannels != 1 || c.MaxCycles != 1_000_000 ||
		c.DeadlockThreshold != 10_000 || c.MaxRetries != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	c2 := Config{FIFODepth: 9, VirtualChannels: 2, MaxCycles: 5, DeadlockThreshold: 7, MaxRetries: 1}.withDefaults()
	if c2.FIFODepth != 9 || c2.VirtualChannels != 2 || c2.MaxCycles != 5 ||
		c2.DeadlockThreshold != 7 || c2.MaxRetries != 1 {
		t.Errorf("explicit values clobbered: %+v", c2)
	}
}

// nearestRank must pick the ceil(q*n/100)-th smallest sample for every n,
// including the small-n and just-past-a-boundary cases the old
// int(float64(n)*q/100) truncation got wrong (P99 of 100 samples used to
// return the maximum).
func TestNearestRankExact(t *testing.T) {
	cases := []struct{ q, n, want int }{
		{50, 1, 0}, {99, 1, 0},
		{50, 2, 0}, {99, 2, 1},
		{50, 10, 4}, {99, 10, 9},
		{50, 100, 49}, {99, 100, 98},
		{50, 101, 50}, {99, 101, 99},
	}
	for _, c := range cases {
		if got := nearestRank(c.q, c.n); got != c.want {
			t.Errorf("nearestRank(%d, %d) = %d, want %d", c.q, c.n, got, c.want)
		}
	}
}

// The timeout clock ticks whenever the header failed to cross a channel
// this cycle — wherever the header is, including mid-wire or already
// ejected with the tail wedged behind — and stops only once every flit has
// ejected. The old headInNetwork buffer scan froze the clock in exactly
// those states.
func TestApplyTimeoutsTicksUnlessHeaderMoved(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{TimeoutCycles: 2, MaxRetries: 1})
	mk := func(delivered, retries int, headMoved bool) *packet {
		p := &packet{
			spec: PacketSpec{Flits: 4}, injected: 4, retries: retries,
			delivered: delivered, headMoved: headMoved, inActive: true,
		}
		s.activePkts = append(s.activePkts, p)
		return p
	}
	stalled := mk(1, 1, false) // header parked somewhere: must tick
	moving := mk(1, 0, true)   // header crossed a channel: clock rearmed
	done := mk(4, 0, false)    // fully ejected: timeout can no longer fire

	s.applyTimeouts()
	if stalled.stall != 1 || stalled.dropped {
		t.Fatalf("stalled worm: stall=%d dropped=%v, want 1/false", stalled.stall, stalled.dropped)
	}
	if moving.stall != 0 || moving.headMoved {
		t.Fatalf("moving worm: stall=%d headMoved=%v, want 0/false (flag consumed)",
			moving.stall, moving.headMoved)
	}
	if done.stall != 0 || done.inActive {
		t.Fatalf("delivered worm: stall=%d inActive=%v, want 0/false", done.stall, done.inActive)
	}

	// Another motionless cycle: stalled hits the threshold with its retry
	// budget exhausted, moving starts ticking.
	s.applyTimeouts()
	if !stalled.dropped || !stalled.inDirty {
		t.Fatalf("stalled worm not dropped at threshold: %+v", stalled)
	}
	if stalled.wantRetry {
		t.Fatal("retry granted beyond MaxRetries")
	}
	if moving.stall != 1 {
		t.Fatalf("moving worm stall=%d after motionless cycle, want 1", moving.stall)
	}
}

func TestAddPacketValidation(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	r, err := tb.Route(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPacket(PacketSpec{Src: 0, Dst: 5, Flits: 0}, r); err == nil {
		t.Error("zero-flit packet accepted")
	}
	if err := s.AddPacket(PacketSpec{Src: 1, Dst: 5, Flits: 2}, r); err == nil {
		t.Error("mismatched route accepted")
	}
}

// Sequence numbers are per (src, dst) pair and monotone.
func TestSequenceNumbering(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	for i := 0; i < 3; i++ {
		if err := s.AddBatch(tb, []PacketSpec{{Src: 0, Dst: 5, Flits: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddBatch(tb, []PacketSpec{{Src: 0, Dst: 6, Flits: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.packets[0].seq != 0 || s.packets[1].seq != 1 || s.packets[2].seq != 2 {
		t.Errorf("same-pair seqs: %d %d %d", s.packets[0].seq, s.packets[1].seq, s.packets[2].seq)
	}
	if s.packets[3].seq != 0 {
		t.Errorf("new pair seq = %d, want 0", s.packets[3].seq)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	// Ten packets from one source serialize on the shared path: latencies
	// form an increasing sequence, so p50 < p99 <= max.
	for i := 0; i < 10; i++ {
		if err := s.AddBatch(tb, []PacketSpec{{Src: 0, Dst: 9, Flits: 4}}); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run()
	if res.Delivered != 10 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	if !(res.P50Latency < res.P99Latency && res.P99Latency <= res.MaxLatency) {
		t.Errorf("percentiles out of order: p50=%d p99=%d max=%d",
			res.P50Latency, res.P99Latency, res.MaxLatency)
	}
	if res.P50Latency <= 0 {
		t.Error("p50 missing")
	}
}
