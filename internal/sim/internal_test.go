package sim

import (
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
)

// White-box tests of the simulator's internal mechanics.

func TestBufKeyRoundTrip(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{VirtualChannels: 3})
	for ch := 0; ch < fm.NumChannels(); ch++ {
		for vc := 0; vc < 3; vc++ {
			key := s.bufKey(topology.ChannelID(ch), vc)
			if key/3 != ch || key%3 != vc {
				t.Fatalf("bufKey(%d,%d) = %d does not decompose", ch, vc, key)
			}
		}
	}
}

func TestPacketVCDefaultsToZero(t *testing.T) {
	p := &packet{}
	if p.vcAt(0) != 0 || p.vcAt(5) != 0 {
		t.Error("nil VCs should ride VC 0")
	}
	p.vcs = []int{0, 1, 1}
	if p.vcAt(2) != 1 {
		t.Error("explicit VC ignored")
	}
}

func TestReleaseOnlyOwnedKeys(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	p := &packet{id: 7}
	k1 := vcPortKey{dev: fm.Routers[0], port: 0, vc: 0}
	k2 := vcPortKey{dev: fm.Routers[0], port: 1, vc: 0}
	s.owner[k1] = 7
	s.owner[k2] = 7
	p.owned = []vcPortKey{k1, k2}
	s.release(p, k1)
	if _, held := s.owner[k1]; held {
		t.Error("k1 not released")
	}
	if _, held := s.owner[k2]; !held {
		t.Error("k2 released prematurely")
	}
	if len(p.owned) != 1 || p.owned[0] != k2 {
		t.Errorf("owned = %v", p.owned)
	}
	// Releasing a key the packet never held is a no-op.
	s.release(p, k1)
	if len(p.owned) != 1 {
		t.Error("spurious release mutated ownership")
	}
}

// Round-robin output arbitration: two sources streaming equal traffic
// through one shared link make progress in strict alternation — neither is
// starved.
func TestArbitrationFairness(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{FIFODepth: 2})
	// Nodes 0 and 1 (router 0) each stream 10 single-flit packets to nodes
	// 5 and 6 (router 1): every packet contends for the one inter-router
	// link.
	for i := 0; i < 10; i++ {
		if err := s.AddBatch(tb, []PacketSpec{
			{Src: 0, Dst: 5, Flits: 1},
			{Src: 1, Dst: 6, Flits: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run()
	if res.Delivered != 20 || res.Deadlocked {
		t.Fatalf("delivered=%d deadlocked=%v", res.Delivered, res.Deadlocked)
	}
	// With fair arbitration the two streams finish together: total time is
	// within a small constant of 2x one stream's serialized time.
	if res.MaxLatency > 30 {
		t.Errorf("max latency %d suggests starvation", res.MaxLatency)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FIFODepth != 4 || c.VirtualChannels != 1 || c.MaxCycles != 1_000_000 ||
		c.DeadlockThreshold != 10_000 || c.MaxRetries != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	c2 := Config{FIFODepth: 9, VirtualChannels: 2, MaxCycles: 5, DeadlockThreshold: 7, MaxRetries: 1}.withDefaults()
	if c2.FIFODepth != 9 || c2.VirtualChannels != 2 || c2.MaxCycles != 5 ||
		c2.DeadlockThreshold != 7 || c2.MaxRetries != 1 {
		t.Errorf("explicit values clobbered: %+v", c2)
	}
}

func TestAddPacketValidation(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	r, err := tb.Route(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPacket(PacketSpec{Src: 0, Dst: 5, Flits: 0}, r); err == nil {
		t.Error("zero-flit packet accepted")
	}
	if err := s.AddPacket(PacketSpec{Src: 1, Dst: 5, Flits: 2}, r); err == nil {
		t.Error("mismatched route accepted")
	}
}

// Sequence numbers are per (src, dst) pair and monotone.
func TestSequenceNumbering(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	for i := 0; i < 3; i++ {
		if err := s.AddBatch(tb, []PacketSpec{{Src: 0, Dst: 5, Flits: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddBatch(tb, []PacketSpec{{Src: 0, Dst: 6, Flits: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.packets[0].seq != 0 || s.packets[1].seq != 1 || s.packets[2].seq != 2 {
		t.Errorf("same-pair seqs: %d %d %d", s.packets[0].seq, s.packets[1].seq, s.packets[2].seq)
	}
	if s.packets[3].seq != 0 {
		t.Errorf("new pair seq = %d, want 0", s.packets[3].seq)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := New(fm.Network, router.AllowAll(fm.Network), Config{})
	// Ten packets from one source serialize on the shared path: latencies
	// form an increasing sequence, so p50 < p99 <= max.
	for i := 0; i < 10; i++ {
		if err := s.AddBatch(tb, []PacketSpec{{Src: 0, Dst: 9, Flits: 4}}); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run()
	if res.Delivered != 10 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	if !(res.P50Latency < res.P99Latency && res.P99Latency <= res.MaxLatency) {
		t.Errorf("percentiles out of order: p50=%d p99=%d max=%d",
			res.P50Latency, res.P99Latency, res.MaxLatency)
	}
	if res.P50Latency <= 0 {
		t.Error("p50 missing")
	}
}
