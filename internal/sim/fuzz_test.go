package sim_test

// Differential fuzzing of the sharded planner: an arbitrary scenario —
// builtin topology, load, virtual channels, timeouts, a fault schedule with
// permanent, transient, and router faults plus corruption, and a shard
// count from 1 to 8 — must produce a Result and drop-hook stream
// byte-identical to the sequential engine's. The equivalence matrix in
// equiv_test.go pins chosen corners; this is the adversarial sweep between
// them, in the style of internal/fabricver's FuzzMutatedTetra.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func FuzzShardedVsSequential(f *testing.F) {
	f.Add(uint8(0), uint8(40), int64(1), uint8(0), uint8(0), uint8(0), uint8(3))   // plain uniform load
	f.Add(uint8(3), uint8(90), int64(7), uint8(1), uint8(0), uint8(0), uint8(1))   // VC2, shards=2
	f.Add(uint8(5), uint8(20), int64(11), uint8(0), uint8(1), uint8(0), uint8(7))  // timeouts, shards=8
	f.Add(uint8(2), uint8(60), int64(13), uint8(0), uint8(0), uint8(3), uint8(2))  // transient link faults
	f.Add(uint8(7), uint8(75), int64(17), uint8(2), uint8(1), uint8(6), uint8(4))  // router fault + corruption
	f.Add(uint8(9), uint8(55), int64(23), uint8(1), uint8(0), uint8(5), uint8(0))  // faults at shards=1
	f.Fuzz(func(t *testing.T, specSel, load uint8, seed int64, vcSel, timeoutSel, faultSel, shardSel uint8) {
		builtins := core.BuiltinSpecs()
		sys, _, err := core.ParseSystem(builtins[int(specSel)%len(builtins)])
		if err != nil {
			t.Fatal(err)
		}
		nodes := sys.Net.NumNodes()
		if nodes < 2 {
			t.Skip("single-node system")
		}

		rng := rand.New(rand.NewSource(seed))
		packets := 8 + int(load)%41
		specs := workload.UniformRandom(rng, nodes, packets, 2+int(load)%5, 50)

		cfg := sim.Config{
			FIFODepth:         2 + int(load)%3,
			VirtualChannels:   1 + int(vcSel)%3,
			DeadlockThreshold: 2000,
			MaxCycles:         20000,
		}
		if timeoutSel%2 == 1 {
			cfg.TimeoutCycles = 20 + int(timeoutSel)%40
			cfg.MaxRetries = int(timeoutSel) % 3
			cfg.DeadlockThreshold = 4000
		}

		// Pre-draw the whole fault schedule so both engines receive the
		// identical one regardless of how many random values each knob eats.
		var faults []sim.LinkFault
		for i := 0; i < int(faultSel)%3; i++ {
			lf := sim.LinkFault{
				Cycle: 1 + rng.Intn(200),
				Link:  topology.LinkID(rng.Intn(sys.Net.NumLinks())),
			}
			if faultSel&1 != 0 {
				lf.RepairCycle = lf.Cycle + 1 + rng.Intn(200)
			}
			faults = append(faults, lf)
		}
		routerFault := topology.DeviceID(-1)
		routerFaultCycle := 0
		if faultSel&2 != 0 {
			var routers []topology.DeviceID
			for _, d := range sys.Net.Devices() {
				if d.Kind == topology.Router {
					routers = append(routers, d.ID)
				}
			}
			if len(routers) > 0 {
				routerFault = routers[rng.Intn(len(routers))]
				routerFaultCycle = 1 + rng.Intn(200)
			}
		}
		corruptRate := 0.0
		if faultSel&4 != 0 {
			corruptRate = 0.02
		}

		run := func(shards int) (sim.Result, []sim.PacketSpec) {
			c := cfg
			c.Shards = shards
			s := sim.New(sys.Net, sys.Disables, c)
			var drops []sim.PacketSpec
			s.OnDropped(func(spec sim.PacketSpec, now int) {
				drops = append(drops, spec)
			})
			for _, lf := range faults {
				if err := s.ScheduleFault(lf); err != nil {
					t.Fatalf("ScheduleFault(%+v): %v", lf, err)
				}
			}
			if routerFault >= 0 {
				if err := s.ScheduleRouterFault(routerFault, routerFaultCycle); err != nil {
					t.Fatalf("ScheduleRouterFault(%v, %d): %v", routerFault, routerFaultCycle, err)
				}
			}
			if corruptRate > 0 {
				if err := s.EnableCorruption(corruptRate, uint64(seed)); err != nil {
					t.Fatalf("EnableCorruption: %v", err)
				}
			}
			if err := s.AddBatch(sys.Tables, specs); err != nil {
				t.Fatalf("AddBatch: %v", err)
			}
			return s.Run(), drops
		}

		shards := 1 + int(shardSel)%8
		want, wantDrops := run(0)
		got, gotDrops := run(shards)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Result diverged at Shards=%d\n sharded:    %+v\n sequential: %+v",
				shards, got, want)
		}
		if !reflect.DeepEqual(gotDrops, wantDrops) {
			t.Fatalf("drop hooks diverged at Shards=%d\n sharded:    %+v\n sequential: %+v",
				shards, gotDrops, wantDrops)
		}
	})
}
