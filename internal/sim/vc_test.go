package sim_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/deadlock"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// The dateline discipline's (channel, VC) dependency graph is acyclic even
// though the physical channel graph is the same cyclic one that deadlocks
// under plain clockwise routing — Dally & Seitz's construction, which §2 of
// the paper weighs against topology-based avoidance.
func TestRingDatelineCDG(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingDateline(rg)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	rep, err := deadlock.AnalyzeVC(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free {
		t.Fatalf("dateline ring not VC-free: %s", rep)
	}
	if !rep.PhysicalCyclic {
		t.Error("physical channel graph should remain cyclic; the VCs do the work")
	}
	if rep.NumVC != 2 {
		t.Errorf("NumVC = %d", rep.NumVC)
	}
}

// Without a dateline assignment, adding VCs changes nothing: all traffic
// rides VC 0 and the extended graph keeps the cycle.
func TestPlainClockwiseStaysCyclicUnderVCs(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingClockwise(rg)
	rep, err := deadlock.AnalyzeVC(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Free {
		t.Error("clockwise ring reported free under AnalyzeVC")
	}
	for _, c := range rep.Cycle {
		if c.VC != 0 {
			t.Errorf("cycle uses VC %d, expected all VC 0", c.VC)
		}
	}
}

func TestTorusDatelineCDG(t *testing.T) {
	m := topology.NewTorus(4, 4, 1)
	tb := routing.TorusDateline(m)
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	rep, err := deadlock.AnalyzeVC(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free {
		t.Fatalf("dateline torus not free: %s", rep)
	}
	if !rep.PhysicalCyclic {
		t.Error("torus physical graph should be cyclic")
	}
}

// Figure 1's workload, which deadlocks the plain clockwise ring, completes
// on the dateline ring with two virtual channels.
func TestFigure1SurvivesWithVirtualChannels(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingDateline(rg)
	s := sim.New(rg.Network, router.AllowAll(rg.Network),
		sim.Config{FIFODepth: 2, VirtualChannels: 2, DeadlockThreshold: 500})
	if err := s.AddBatch(tb, workload.Transfers(workload.RingDeadlockSet(4), 32)); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deadlocked {
		t.Fatalf("dateline ring deadlocked: %+v", res)
	}
	if res.Delivered != 4 || res.InOrderViolations != 0 {
		t.Fatalf("delivered=%d violations=%d", res.Delivered, res.InOrderViolations)
	}
}

// The same workload with two VCs but NO dateline assignment still deadlocks:
// buffers alone don't break circular waits.
func TestFigure1VCsWithoutDatelineStillDeadlock(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingClockwise(rg)
	s := sim.New(rg.Network, router.AllowAll(rg.Network),
		sim.Config{FIFODepth: 2, VirtualChannels: 2, DeadlockThreshold: 300})
	if err := s.AddBatch(tb, workload.Transfers(workload.RingDeadlockSet(4), 32)); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Deadlocked {
		t.Fatalf("expected deadlock: %+v", res)
	}
}

// A route whose VC exceeds the simulator's configured count is rejected.
func TestVCRangeValidation(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingDateline(rg) // uses 2 VCs
	s := sim.New(rg.Network, router.AllowAll(rg.Network), sim.Config{VirtualChannels: 1})
	r, err := tb.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPacket(sim.PacketSpec{Src: 0, Dst: 2, Flits: 4}, r); err == nil {
		t.Error("2-VC route accepted by a 1-VC simulator")
	}
}

// Dateline torus under heavy random load: no deadlock, everything in order.
func TestTorusDatelineUnderLoad(t *testing.T) {
	m := topology.NewTorus(4, 4, 1)
	tb := routing.TorusDateline(m)
	s := sim.New(m.Network, router.AllowAll(m.Network),
		sim.Config{FIFODepth: 2, VirtualChannels: 2})
	var specs []sim.PacketSpec
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a != b {
				specs = append(specs, sim.PacketSpec{Src: a, Dst: b, Flits: 5})
			}
		}
	}
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deadlocked || res.Delivered != 240 {
		t.Fatalf("deadlocked=%v delivered=%d/240", res.Deadlocked, res.Delivered)
	}
	if res.InOrderViolations != 0 {
		t.Errorf("violations = %d", res.InOrderViolations)
	}
}

// §2's timeout/discard/retry recovery: a packet stuck behind a long blocker
// times out, is discarded and retried — and the retry arrives AFTER a
// younger packet for the same pair, exactly the out-of-order delivery that
// makes the scheme unusable for ServerNet's lightweight protocol.
func TestTimeoutRetryBreaksOrdering(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)
	s := sim.New(fm.Network, router.AllowAll(fm.Network),
		sim.Config{FIFODepth: 4, TimeoutCycles: 30, MaxRetries: 3})

	// Blocker: node 4 (router 1) occupies the R1 -> R2 link... use a
	// same-source blocker instead: node 1 (router 0) streams 60 flits to
	// node 8 (router 2), seizing R0's output toward R2.
	if err := s.AddBatch(tb, []sim.PacketSpec{{Src: 1, Dst: 8, Flits: 60}}); err != nil {
		t.Fatal(err)
	}
	// Packet A then packet B, both node 0 -> node 9 (router 2): A's header
	// stalls behind the blocker past the timeout and is retried; B slips
	// in front during the retry.
	if err := s.AddBatch(tb, []sim.PacketSpec{
		{Src: 0, Dst: 9, Flits: 4, InjectCycle: 2},
		{Src: 0, Dst: 9, Flits: 4, InjectCycle: 3},
	}); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deadlocked {
		t.Fatalf("deadlocked: %+v", res)
	}
	if res.Retries == 0 {
		t.Fatalf("no retries happened: %+v", res)
	}
	if res.Delivered != 3 || res.Dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 3/0", res.Delivered, res.Dropped)
	}
	if res.InOrderViolations == 0 {
		t.Error("retry did not produce an order violation; §2's objection not demonstrated")
	}
}

// With the timeout disabled, the identical workload delivers in order (the
// blocker just delays everything) — the control for the retry experiment.
func TestNoTimeoutKeepsOrdering(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{FIFODepth: 4})
	if err := s.AddBatch(tb, []sim.PacketSpec{
		{Src: 1, Dst: 8, Flits: 60},
		{Src: 0, Dst: 9, Flits: 4, InjectCycle: 2},
		{Src: 0, Dst: 9, Flits: 4, InjectCycle: 3},
	}); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Delivered != 3 || res.InOrderViolations != 0 || res.Retries != 0 {
		t.Fatalf("%+v", res)
	}
}

// Retry exhaustion: a permanently blocked route (all retries re-blocked)
// ends in a drop after MaxRetries attempts.
func TestRetryExhaustion(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingClockwise(rg)
	s := sim.New(rg.Network, router.AllowAll(rg.Network),
		sim.Config{FIFODepth: 2, TimeoutCycles: 40, MaxRetries: 2, DeadlockThreshold: 4000})
	if err := s.AddBatch(tb, workload.Transfers(workload.RingDeadlockSet(4), 32)); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deadlocked {
		t.Fatalf("timeout recovery failed to clear the deadlock: %+v", res)
	}
	if res.Retries == 0 {
		t.Fatalf("no retries: %+v", res)
	}
	if res.Delivered+res.Dropped != 4 {
		t.Fatalf("delivered=%d dropped=%d, want 4 total", res.Delivered, res.Dropped)
	}
}

// The trace writer receives one line per flit crossing.
func TestTraceOutput(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	var buf bytes.Buffer
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{Trace: &buf})
	if err := s.AddBatch(tb, []sim.PacketSpec{{Src: 0, Dst: 9, Flits: 3}}); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Delivered != 1 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	lines := strings.Count(buf.String(), "\n")
	// 3 flits x 3 channels (inject, inter-router, eject).
	if lines != 9 {
		t.Errorf("trace lines = %d, want 9:\n%s", lines, buf.String())
	}
}

// A link fault kills worms aimed at it; with no fault the same run delivers
// everything. The drop hook fires once per killed packet.
func TestScheduledLinkFault(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	link, ok := fm.LinkAt(fm.Routers[0], 0) // the inter-router cable
	if !ok {
		t.Fatal("no inter-router link")
	}
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{})
	drops := 0
	s.OnDropped(func(spec sim.PacketSpec, now int) { drops++ })
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 0, Link: link}); err != nil {
		t.Fatal(err)
	}
	// Cross-router traffic dies; same-router traffic survives.
	if err := s.AddBatch(tb, []sim.PacketSpec{
		{Src: 0, Dst: 9, Flits: 4}, // router 0 -> router 1: killed
		{Src: 0, Dst: 1, Flits: 4}, // same router: fine
	}); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Delivered != 1 || res.Dropped != 1 || drops != 1 {
		t.Fatalf("delivered=%d dropped=%d hook=%d", res.Delivered, res.Dropped, drops)
	}
}

// A fault mid-worm kills the packet even though its header already passed.
func TestFaultMidWorm(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	link, _ := fm.LinkAt(fm.Routers[0], 0)
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{})
	// Long worm: header crosses the link around cycle 1; kill at cycle 5
	// while the body is still streaming.
	if err := s.AddBatch(tb, []sim.PacketSpec{{Src: 0, Dst: 9, Flits: 40}}); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 5, Link: link}); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Dropped != 1 || res.Delivered != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 0/1", res.Delivered, res.Dropped)
	}
	if res.Deadlocked {
		t.Fatal("fault handling deadlocked")
	}
}

// §1: the router contains "a non-blocking crossbar switch" — three disjoint
// transfers through one 6-port router proceed simultaneously at full rate,
// each finishing exactly when it would alone.
func TestCrossbarNonBlocking(t *testing.T) {
	fm := topology.NewFullMesh(1, 6)
	tb := routing.FullMesh(fm)
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{})
	// Pairs (0,1), (2,3), (4,5): all six ports busy, no shared resource.
	specs := []sim.PacketSpec{
		{Src: 0, Dst: 1, Flits: 12},
		{Src: 2, Dst: 3, Flits: 12},
		{Src: 4, Dst: 5, Flits: 12},
	}
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Delivered != 3 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	// Solo latency through one router: 1 hop + 12 flits = 13; concurrent
	// transfers must match it exactly.
	if res.MaxLatency != 13 {
		t.Errorf("max latency = %d, want 13 (crossbar must not serialize disjoint transfers)", res.MaxLatency)
	}
}

// §1: cables "can reach up to 30 meters" — longer links add pipeline
// stages. An uncontended packet's latency is flits-1 + channels*latency.
func TestLinkLatency(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	r, err := tb.Route(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	channels := len(r.Channels)
	for _, lat := range []int{1, 2, 3} {
		s := sim.New(fm.Network, router.AllowAll(fm.Network),
			sim.Config{FIFODepth: 4, LinkLatency: lat})
		if err := s.AddBatch(tb, []sim.PacketSpec{{Src: 0, Dst: 9, Flits: 4}}); err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if res.Delivered != 1 {
			t.Fatalf("latency %d: delivered = %d", lat, res.Delivered)
		}
		want := 4 - 1 + channels*lat
		if res.MaxLatency != want {
			t.Errorf("link latency %d: packet latency = %d, want %d", lat, res.MaxLatency, want)
		}
	}
}

// Slow links change no safety property: the Figure 1 deadlock still forms,
// and the restricted routing still delivers.
func TestLinkLatencyPreservesSafety(t *testing.T) {
	rg := topology.NewRing(4, 1)
	specs := workload.Transfers(workload.RingDeadlockSet(4), 24)

	s := sim.New(rg.Network, router.AllowAll(rg.Network),
		sim.Config{FIFODepth: 2, LinkLatency: 3, DeadlockThreshold: 400})
	if err := s.AddBatch(routing.RingClockwise(rg), specs); err != nil {
		t.Fatal(err)
	}
	if res := s.Run(); !res.Deadlocked {
		t.Fatalf("slow clockwise ring did not deadlock: %+v", res)
	}

	s2 := sim.New(rg.Network, router.AllowAll(rg.Network),
		sim.Config{FIFODepth: 2, LinkLatency: 3, DeadlockThreshold: 400})
	if err := s2.AddBatch(routing.RingSeamless(rg), specs); err != nil {
		t.Fatal(err)
	}
	if res := s2.Run(); res.Deadlocked || res.Delivered != 4 {
		t.Fatalf("slow seamless ring: %+v", res)
	}
}
