package sim

// Per-output-port crossbar arbitration on reusable scratch state. The old
// implementation built a map of request slices every cycle and sorted both
// the map keys and each slice; this version classifies each request online
// into four slots per port as candidates arrive in ascending buffer-key
// order, which is all the old sort ever computed:
//
//   - contMin / hdrMin:   the lowest-keyed continuing / header request —
//     the old sorted class's first element;
//   - contNext / hdrNext: the lowest-keyed request above the round-robin
//     pointer — the old "first with from > last" pick.
//
// Continuing worms outrank new headers so body flits are not starved
// mid-worm, and the grant updates the port's round-robin pointer exactly as
// before. Ports are identified by a global (device, port)-ordered index, so
// sorting the touched ports reproduces the old sorted-physKey grant
// emission order byte for byte.

import "slices"

type arbSlot struct{ from, to int32 }

// arbPort is one output port's per-cycle request state. stamp lazily
// resets the slots: a port whose stamp is stale has no requests this cycle.
type arbPort struct {
	stamp    int64
	contMin  arbSlot
	contNext arbSlot
	hdrMin   arbSlot
	hdrNext  arbSlot
}

type move struct {
	from int // buffer key; -1 == injection from the source node
	to   int // buffer key
	src  int // injecting node when from == -1
}

// planMoves selects at most one flit movement per physical output port (and
// per injection channel) based on start-of-cycle state. It visits only
// non-empty buffers, records the earliest future InjectCycle among blocked
// queue fronts (for idle-cycle fast-forwarding), and allocates nothing on
// the steady-state path.
//
//simlint:hotpath
func (s *Simulator) planMoves(now int) []move {
	moves := s.moves[:0]
	v := s.cfg.VirtualChannels

	slices.Sort(s.activeBufs)
	for i, k := range s.activeBufs {
		s.activePos[k] = int32(i)
	}

	s.arbStamp++
	s.arbTouched = s.arbTouched[:0]
	for _, k32 := range s.activeBufs {
		key := int(k32)
		f := &s.bufFlits[key*s.depth+int(s.bufHead[key])]
		p := f.pkt
		if p.dropped {
			continue // reaped separately
		}
		next := p.route[f.hop+1]
		nextVC := 0
		if p.vcs != nil {
			nextVC = p.vcs[f.hop+1]
		}
		if f.idx == 0 && !s.chAllowed[key/v][s.chSrcPort[next]] {
			// Path-disable logic rejects the turn: the packet is
			// discarded (ServerNet raises a transmission error).
			p.dropped = true
			s.markDropped(p)
			continue
		}
		if s.deadCount[s.chLink[next]] > 0 {
			// The worm is aimed at a failed link: the hardware kills it.
			p.dropped = true
			s.markDropped(p)
			continue
		}
		nextKey := int(next)*v + nextVC
		if !s.space(nextKey) {
			continue
		}
		// Ownership of the output VC — which is the destination buffer key
		// itself, every wired port driving exactly one outgoing channel —
		// decides whether this is a continuing worm or a new header.
		var continuing bool
		switch own := s.owner[nextKey]; {
		case own == int32(p.id):
			continuing = true
		case own < 0 && f.idx == 0:
			continuing = false
		default:
			continue
		}
		port := s.chOutPort[next]
		a := &s.arb[port]
		if a.stamp != s.arbStamp {
			a.stamp = s.arbStamp
			a.contMin.from, a.contNext.from = -1, -1
			a.hdrMin.from, a.hdrNext.from = -1, -1
			s.arbTouched = append(s.arbTouched, port)
		}
		slot := arbSlot{from: k32, to: int32(nextKey)}
		if continuing {
			if a.contMin.from < 0 {
				a.contMin = slot
			}
			if a.contNext.from < 0 && k32 > s.arbLast[port] {
				a.contNext = slot
			}
		} else {
			if a.hdrMin.from < 0 {
				a.hdrMin = slot
			}
			if a.hdrNext.from < 0 && k32 > s.arbLast[port] {
				a.hdrNext = slot
			}
		}
	}
	moves = s.emitGrants(moves)

	// Injection: one flit per source node with a pending packet. Node
	// addresses ascend, so no sort is needed to reproduce the old sorted
	// source iteration.
	s.nextInject = s.cfg.MaxCycles
	for src, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		p := q[0]
		if p.spec.InjectCycle > now {
			if p.spec.InjectCycle < s.nextInject {
				s.nextInject = p.spec.InjectCycle
			}
			continue
		}
		if p.dropped {
			continue
		}
		if s.deadCount[s.chLink[p.route[0]]] > 0 {
			p.dropped = true
			s.markDropped(p)
			continue
		}
		injKey := int(p.route[0])*v + p.vcAt(0)
		if s.space(injKey) {
			moves = append(moves, move{from: -1, to: injKey, src: src})
		}
	}
	s.moves = moves
	return moves
}

// emitGrants resolves the filled arbitration slots into at most one granted
// move per touched output port, visiting ports in ascending global index so
// grant emission order is canonical, and advances each port's round-robin
// pointer. Shared by the sequential and sharded planners: the slots are
// filled identically, so the grants are too.
//
//simlint:hotpath
func (s *Simulator) emitGrants(moves []move) []move {
	slices.Sort(s.arbTouched)
	for _, port := range s.arbTouched {
		a := &s.arb[port]
		var g arbSlot
		if a.contMin.from >= 0 {
			g = a.contMin
			if a.contNext.from >= 0 {
				g = a.contNext
			}
		} else {
			g = a.hdrMin
			if a.hdrNext.from >= 0 {
				g = a.hdrNext
			}
		}
		s.arbLast[port] = g.from
		moves = append(moves, move{from: int(g.from), to: int(g.to)})
	}
	return moves
}
