// Package simref preserves the previous, scan-based implementation of the
// wormhole flit simulator as an executable reference. The rewritten engine
// in internal/sim answers every per-cycle question (buffer occupancy,
// ownership, arbitration order, packet flit locations) from dense indexed
// state; this package still answers them the original way — map-of-slices
// buffers, map-keyed ownership and round-robin state, and whole-network
// scans — so the cross-implementation equivalence tests can pin the new
// engine's every Result field to the old scheduler's, over every built-in
// topology. It exists only for tests and will be deleted once the new
// engine has soaked; nothing outside _test files may import it.
//
// Two deliberate departures from the historical code, both required for a
// meaningful field-for-field comparison:
//
//   - percentiles use the fixed nearest-rank convention (the old index
//     arithmetic off-by-one is pinned separately by exact-value regression
//     tests in the sim package);
//   - ScheduleFault validates its fault like the new engine, so both
//     implementations accept exactly the same experiment inputs.
//
// The timeout stall clock and the idle/deadlock counter keep the OLD
// semantics — header-location blind spots and all — which is exactly what
// the equivalence suite runs scenarios against: on every configuration the
// experiments use, the two semantics provably coincide, and the bug-fix
// scenarios (header mid-wire on a long link, header delivered with a
// stranded tail, DeadlockThreshold below LinkLatency) are covered by
// regression tests against the new engine alone.
package simref

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The reference simulator shares the public parameter and result types with
// the live engine so tests can hand identical inputs to both and compare
// results with reflect.DeepEqual.
type (
	Config     = sim.Config
	PacketSpec = sim.PacketSpec
	LinkFault  = sim.LinkFault
	Result     = sim.Result
)

func withDefaults(c Config) Config {
	if c.FIFODepth <= 0 {
		c.FIFODepth = 4
	}
	if c.VirtualChannels <= 0 {
		c.VirtualChannels = 1
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 1_000_000
	}
	if c.DeadlockThreshold <= 0 {
		c.DeadlockThreshold = 10_000
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 1
	}
	return c
}

// nearestRank matches the live engine's percentile convention; see
// sim.Result.
func nearestRank(q, n int) int {
	return (q*n+99)/100 - 1
}

type packet struct {
	id        int
	spec      PacketSpec
	route     []topology.ChannelID
	vcs       []int
	seq       int
	injected  int
	dropped   bool
	retired   bool
	wantRetry bool
	retries   int
	stall     int
	owned     []vcPortKey
}

func (p *packet) vcAt(hop int) int {
	if p.vcs == nil {
		return 0
	}
	return p.vcs[hop]
}

type flit struct {
	pkt *packet
	idx int
	hop int
}

type pendingFlit struct {
	key int
	f   flit
	at  int
}

// vcPortKey identifies one virtual output channel of one router port.
type vcPortKey struct {
	dev  topology.DeviceID
	port int
	vc   int
}

// physKey identifies a physical output port (the 1 flit/cycle resource).
type physKey struct {
	dev  topology.DeviceID
	port int
}

// Simulator is the reference engine. Create with New, add packets, Run.
type Simulator struct {
	net *topology.Network
	dis *router.Disables
	cfg Config

	packets []*packet
	queues  map[int][]*packet
	seqs    map[[2]int]int

	buffers  map[int][]flit
	owner    map[vcPortKey]int
	arbiter  map[physKey]int
	channels []topology.ChannelID

	pending  []pendingFlit
	inflight map[int]int

	busy        map[topology.ChannelID]int
	outstanding int

	faults    []LinkFault
	deadLinks map[topology.LinkID]bool

	hook     func(spec PacketSpec, now int)
	dropHook func(spec PacketSpec, now int)
}

// OnDelivered installs a delivery hook; see sim.Simulator.OnDelivered.
func (s *Simulator) OnDelivered(hook func(spec PacketSpec, now int)) { s.hook = hook }

// OnDropped installs a drop hook; see sim.Simulator.OnDropped.
func (s *Simulator) OnDropped(hook func(spec PacketSpec, now int)) { s.dropHook = hook }

// ScheduleFault arranges for a link to fail at the given cycle, with the
// same validation as the live engine.
func (s *Simulator) ScheduleFault(f LinkFault) error {
	if f.Cycle < 0 || f.Cycle >= s.cfg.MaxCycles {
		return fmt.Errorf("simref: fault cycle %d outside the simulation horizon [0, %d)",
			f.Cycle, s.cfg.MaxCycles)
	}
	if f.Link < 0 || int(f.Link) >= s.net.NumLinks() {
		return fmt.Errorf("simref: fault link %d out of range (network has %d links)",
			f.Link, s.net.NumLinks())
	}
	if f.RepairCycle != 0 {
		return fmt.Errorf("simref: transient faults (RepairCycle=%d) are not modeled by the reference engine",
			f.RepairCycle)
	}
	s.faults = append(s.faults, f)
	return nil
}

// New creates a reference simulator over a network with the given disable
// matrix.
func New(net *topology.Network, dis *router.Disables, cfg Config) *Simulator {
	s := &Simulator{
		net:       net,
		dis:       dis,
		cfg:       withDefaults(cfg),
		queues:    make(map[int][]*packet),
		seqs:      make(map[[2]int]int),
		buffers:   make(map[int][]flit),
		inflight:  make(map[int]int),
		owner:     make(map[vcPortKey]int),
		arbiter:   make(map[physKey]int),
		busy:      make(map[topology.ChannelID]int),
		deadLinks: make(map[topology.LinkID]bool),
	}
	for c := 0; c < net.NumChannels(); c++ {
		ch := topology.ChannelID(c)
		if net.Device(net.ChannelDst(ch).Device).Kind == topology.Router {
			s.channels = append(s.channels, ch)
		}
	}
	return s
}

func (s *Simulator) bufKey(ch topology.ChannelID, vc int) int {
	return int(ch)*s.cfg.VirtualChannels + vc
}

// AddPacket schedules a packet with an explicit route.
func (s *Simulator) AddPacket(spec PacketSpec, route routing.Route) error {
	if spec.Flits < 1 {
		return fmt.Errorf("simref: packet needs at least 1 flit, got %d", spec.Flits)
	}
	if route.Src != spec.Src || route.Dst != spec.Dst {
		return fmt.Errorf("simref: route %d->%d does not match spec %d->%d",
			route.Src, route.Dst, spec.Src, spec.Dst)
	}
	for i := range route.Channels {
		if v := route.VCAt(i); v < 0 || v >= s.cfg.VirtualChannels {
			return fmt.Errorf("simref: route hop %d uses VC %d but the simulator has %d VCs",
				i, v, s.cfg.VirtualChannels)
		}
	}
	p := &packet{
		id:    len(s.packets),
		spec:  spec,
		route: route.Channels,
		vcs:   route.VCs,
		seq:   s.seqs[[2]int{spec.Src, spec.Dst}],
	}
	s.seqs[[2]int{spec.Src, spec.Dst}]++
	s.packets = append(s.packets, p)
	s.queues[spec.Src] = append(s.queues[spec.Src], p)
	s.outstanding++
	return nil
}

// AddBatch routes each spec through the tables and schedules it.
func (s *Simulator) AddBatch(t *routing.Tables, specs []PacketSpec) error {
	for _, spec := range specs {
		r, err := t.Route(spec.Src, spec.Dst)
		if err != nil {
			return err
		}
		if err := s.AddPacket(spec, r); err != nil {
			return err
		}
	}
	return nil
}

type move struct {
	from int
	to   int
	src  int
}

// Run executes the simulation; see sim.Simulator.Run.
func (s *Simulator) Run() Result {
	res := Result{ChannelFlits: s.busy}
	lastSeq := make(map[[2]int]int)
	totalLatency := 0
	var latencies []int
	deliveredFlits := 0
	idle := 0

	now := 0
	landed := 0
	land := func(p pendingFlit) {
		s.inflight[p.key]--
		f := p.f
		toCh := topology.ChannelID(p.key / s.cfg.VirtualChannels)
		dst := s.net.ChannelDst(toCh)
		if s.net.Device(dst.Device).Kind != topology.Node {
			if !f.pkt.dropped {
				s.buffers[p.key] = append(s.buffers[p.key], f)
			}
			return
		}
		if f.pkt.dropped {
			return
		}
		deliveredFlits++
		if f.idx == f.pkt.spec.Flits-1 {
			s.outstanding--
			res.Delivered++
			lat := now - f.pkt.spec.InjectCycle
			totalLatency += lat
			latencies = append(latencies, lat)
			if lat > res.MaxLatency {
				res.MaxLatency = lat
			}
			key := [2]int{f.pkt.spec.Src, f.pkt.spec.Dst}
			if f.pkt.seq < lastSeq[key] {
				res.InOrderViolations++
			} else {
				lastSeq[key] = f.pkt.seq + 1
			}
			if s.hook != nil {
				s.hook(f.pkt.spec, now)
			}
		}
	}

	for ; now < s.cfg.MaxCycles && s.outstanding > 0; now++ {
		for _, f := range s.faults {
			if f.Cycle == now {
				s.deadLinks[f.Link] = true
			}
		}

		landed = 0
		keep := s.pending[:0]
		for _, p := range s.pending {
			if p.at < now {
				land(p)
				landed++
			} else {
				keep = append(keep, p)
			}
		}
		s.pending = keep

		moves := s.planMoves(now)

		for _, mv := range moves {
			var f flit
			toCh := topology.ChannelID(mv.to / s.cfg.VirtualChannels)
			toVC := mv.to % s.cfg.VirtualChannels
			if mv.from == -1 {
				p := s.queues[mv.src][0]
				f = flit{pkt: p, idx: p.injected, hop: 0}
				p.stall = 0
				p.injected++
				if p.injected == p.spec.Flits {
					s.queues[mv.src] = s.queues[mv.src][1:]
					res.Injected++
				}
			} else {
				f = s.buffers[mv.from][0]
				s.buffers[mv.from] = s.buffers[mv.from][1:]
				f.hop++
				f.pkt.stall = 0
				out := vcPortKey{s.net.ChannelSrc(toCh).Device, s.net.ChannelSrc(toCh).Port, toVC}
				if f.idx == 0 {
					if _, held := s.owner[out]; !held {
						s.owner[out] = f.pkt.id
						f.pkt.owned = append(f.pkt.owned, out)
					}
				}
				if f.idx == f.pkt.spec.Flits-1 {
					s.release(f.pkt, out)
				}
			}
			s.busy[toCh]++
			if s.cfg.Trace != nil {
				fmt.Fprintf(s.cfg.Trace, "%d pkt%d flit%d vc%d %s\n",
					now, f.pkt.id, f.idx, toVC, s.net.ChannelString(toCh))
			}
			s.pending = append(s.pending, pendingFlit{key: mv.to, f: f, at: now + s.cfg.LinkLatency - 1})
			s.inflight[mv.to]++
		}

		if s.cfg.TimeoutCycles > 0 {
			s.applyTimeouts()
		}
		retired := s.reapDropped(&res, now)
		s.outstanding -= retired
		if len(moves) > 0 || retired > 0 || landed > 0 {
			idle = 0
			continue
		}
		idle++
		if idle >= s.cfg.DeadlockThreshold && s.inFlight() {
			res.Deadlocked = true
			res.WaitCycle = s.waitCycle()
			break
		}
	}
	res.Cycles = now
	if res.Delivered > 0 {
		res.AvgLatency = float64(totalLatency) / float64(res.Delivered)
		sort.Ints(latencies)
		res.P50Latency = latencies[nearestRank(50, len(latencies))]
		res.P99Latency = latencies[nearestRank(99, len(latencies))]
	}
	if now > 0 {
		res.ThroughputFPC = float64(deliveredFlits) / float64(now)
	}
	return res
}

// planMoves selects at most one flit movement per physical output port (and
// per injection channel) based on start-of-cycle state.
func (s *Simulator) planMoves(now int) []move {
	sizes := make(map[int]int, len(s.buffers))
	for k, b := range s.buffers {
		sizes[k] = len(b)
	}
	space := func(key int) bool {
		ch := topology.ChannelID(key / s.cfg.VirtualChannels)
		if s.net.Device(s.net.ChannelDst(ch).Device).Kind == topology.Node {
			return true
		}
		return sizes[key]+s.inflight[key] < s.cfg.FIFODepth
	}

	var moves []move
	type request struct {
		from       int
		to         int
		continuing bool
	}
	requests := make(map[physKey][]request)
	for _, ch := range s.channels {
		for vc := 0; vc < s.cfg.VirtualChannels; vc++ {
			key := s.bufKey(ch, vc)
			b := s.buffers[key]
			if len(b) == 0 {
				continue
			}
			f := b[0]
			if f.pkt.dropped {
				continue
			}
			next := f.pkt.route[f.hop+1]
			nextVC := f.pkt.vcAt(f.hop + 1)
			dev := s.net.ChannelDst(ch).Device
			in := s.net.ChannelDst(ch).Port
			out := s.net.ChannelSrc(next).Port
			if f.idx == 0 && !s.dis.Allowed(dev, in, out) {
				f.pkt.dropped = true
				continue
			}
			if s.deadLinks[s.net.ChannelLink(next)] {
				f.pkt.dropped = true
				continue
			}
			nextKey := s.bufKey(next, nextVC)
			if !space(nextKey) {
				continue
			}
			outVC := vcPortKey{dev, out, nextVC}
			own, held := s.owner[outVC]
			switch {
			case held && own == f.pkt.id:
				requests[physKey{dev, out}] = append(requests[physKey{dev, out}],
					request{from: key, to: nextKey, continuing: true})
			case !held && f.idx == 0:
				requests[physKey{dev, out}] = append(requests[physKey{dev, out}],
					request{from: key, to: nextKey})
			}
		}
	}
	keys := make([]physKey, 0, len(requests))
	for k := range requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dev != keys[j].dev {
			return keys[i].dev < keys[j].dev
		}
		return keys[i].port < keys[j].port
	})
	for _, k := range keys {
		reqs := requests[k]
		sort.Slice(reqs, func(i, j int) bool {
			if reqs[i].continuing != reqs[j].continuing {
				return reqs[i].continuing
			}
			return reqs[i].from < reqs[j].from
		})
		class := reqs
		for i, r := range reqs {
			if r.continuing != reqs[0].continuing {
				class = reqs[:i]
				break
			}
		}
		last := s.arbiter[k]
		best := class[0]
		for _, r := range class {
			if r.from > last {
				best = r
				break
			}
		}
		s.arbiter[k] = best.from
		moves = append(moves, move{from: best.from, to: best.to})
	}

	srcs := make([]int, 0, len(s.queues))
	for src, q := range s.queues {
		if len(q) > 0 {
			srcs = append(srcs, src)
		}
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		p := s.queues[src][0]
		if p.spec.InjectCycle > now || p.dropped {
			continue
		}
		if s.deadLinks[s.net.ChannelLink(p.route[0])] {
			p.dropped = true
			continue
		}
		injKey := s.bufKey(p.route[0], p.vcAt(0))
		if space(injKey) {
			moves = append(moves, move{from: -1, to: injKey, src: src})
		}
	}
	return moves
}

// release frees the given output VC if the worm holds it.
func (s *Simulator) release(p *packet, out vcPortKey) {
	for i, k := range p.owned {
		if k == out {
			delete(s.owner, k)
			p.owned = append(p.owned[:i], p.owned[i+1:]...)
			return
		}
	}
}

// applyTimeouts keeps the OLD stall-clock semantics: the clock ticks only
// while the header flit is resident in a router buffer.
func (s *Simulator) applyTimeouts() {
	for _, p := range s.packets {
		if p.dropped || p.retired || p.injected == 0 {
			continue
		}
		if s.headInNetwork(p) {
			p.stall++
			if p.stall >= s.cfg.TimeoutCycles {
				p.dropped = true
				p.wantRetry = p.retries < s.cfg.MaxRetries
			}
		}
	}
}

// headInNetwork reports whether the packet's header flit is buffered
// somewhere — the old scan with its mid-wire and delivered blind spots.
func (s *Simulator) headInNetwork(p *packet) bool {
	for vc := 0; vc < s.cfg.VirtualChannels; vc++ {
		for _, ch := range s.channels {
			b := s.buffers[s.bufKey(ch, vc)]
			for _, f := range b {
				if f.pkt == p && f.idx == 0 {
					return true
				}
			}
		}
	}
	return false
}

// reapDropped consumes flits of dropped packets at buffer heads and retires
// packets whose flits are fully drained.
func (s *Simulator) reapDropped(res *Result, now int) int {
	for _, ch := range s.channels {
		for vc := 0; vc < s.cfg.VirtualChannels; vc++ {
			key := s.bufKey(ch, vc)
			for len(s.buffers[key]) > 0 && s.buffers[key][0].pkt.dropped {
				s.buffers[key] = s.buffers[key][1:]
			}
		}
	}
	for src, q := range s.queues {
		if len(q) > 0 && q[0].dropped {
			q[0].injected = q[0].spec.Flits
			s.queues[src] = q[1:]
		}
	}
	retired := 0
	for _, p := range s.packets {
		if p.dropped && !p.retired && p.injected == p.spec.Flits && !s.hasFlits(p) {
			for _, k := range p.owned {
				if s.owner[k] == p.id {
					delete(s.owner, k)
				}
			}
			p.owned = nil
			if p.wantRetry {
				p.dropped, p.wantRetry = false, false
				p.retries++
				p.stall = 0
				p.injected = 0
				res.Retries++
				s.queues[p.spec.Src] = append(s.queues[p.spec.Src], p)
				continue
			}
			p.retired = true
			res.Dropped++
			retired++
			if s.dropHook != nil {
				s.dropHook(p.spec, now)
			}
		}
	}
	return retired
}

func (s *Simulator) hasFlits(p *packet) bool {
	for _, b := range s.buffers {
		for _, f := range b {
			if f.pkt == p {
				return true
			}
		}
	}
	for _, pf := range s.pending {
		if pf.f.pkt == p {
			return true
		}
	}
	return false
}

func (s *Simulator) inFlight() bool {
	for _, b := range s.buffers {
		if len(b) > 0 {
			return true
		}
	}
	return len(s.pending) > 0
}

// waitCycle builds the channel wait-for graph and returns a cycle's
// physical channels if present.
func (s *Simulator) waitCycle() []topology.ChannelID {
	v := s.cfg.VirtualChannels
	g := graph.NewDigraph(s.net.NumChannels() * v)
	for _, ch := range s.channels {
		for vc := 0; vc < v; vc++ {
			b := s.buffers[s.bufKey(ch, vc)]
			if len(b) == 0 {
				continue
			}
			f := b[0]
			if f.pkt.dropped {
				continue
			}
			g.AddEdge(s.bufKey(ch, vc), s.bufKey(f.pkt.route[f.hop+1], f.pkt.vcAt(f.hop+1)))
		}
	}
	cyc, ok := g.FindCycle()
	if !ok {
		return nil
	}
	out := make([]topology.ChannelID, len(cyc))
	for i, c := range cyc {
		out[i] = topology.ChannelID(c / v)
	}
	return out
}
