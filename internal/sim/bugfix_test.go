package sim_test

// Regression tests for the four bugs fixed alongside the indexed-state
// rewrite. Where a bug's old behavior is still observable, the test drives
// the preserved reference implementation (internal/sim/simref, which keeps
// the old timeout and idle semantics) through the same scenario and pins
// the divergence — failing-before, passing-after, in one file.

import (
	"sort"
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/sim/simref"
	"repro/internal/topology"
)

// With slow links the header spends most of its life mid-wire, where the
// old headInNetwork buffer scan could not see it: the stall clock froze and
// the timeout never fired. The fixed engine ticks whenever the header fails
// to cross a channel, so the same wedged-looking worm times out, burns its
// retries (each attempt stalls mid-wire again), and drops.
func TestTimeoutCoversHeaderMidWire(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	cfg := sim.Config{FIFODepth: 1, LinkLatency: 6, TimeoutCycles: 4, MaxRetries: 1}
	specs := []sim.PacketSpec{{Src: 0, Dst: 9, Flits: 2}}

	s := sim.New(fm.Network, router.AllowAll(fm.Network), cfg)
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Dropped != 1 || res.Delivered != 0 {
		t.Fatalf("fixed engine: delivered=%d dropped=%d, want timeout drop (0/1)",
			res.Delivered, res.Dropped)
	}
	if res.Retries != 1 {
		t.Fatalf("fixed engine: retries=%d, want 1 (every attempt stalls mid-wire)", res.Retries)
	}

	// The old semantics deliver this packet: its 6-cycle wire flights hide
	// the header from the buffer scan, so stall never reaches the threshold.
	o := simref.New(fm.Network, router.AllowAll(fm.Network), cfg)
	if err := o.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	ores := o.Run()
	if ores.Delivered != 1 || ores.Dropped != 0 {
		t.Fatalf("reference engine: delivered=%d dropped=%d — the old blind spot "+
			"closed, update this regression test", ores.Delivered, ores.Dropped)
	}
}

// A link fault that strands a worm's tail mid-route must resolve promptly:
// the flit at the buffer head aiming at the dead link is discarded, the
// worm's remaining flits drain, and the packet retires as a fault drop —
// no retry (the hardware kills the worm outright), no timeout
// misattribution, no hang until MaxCycles.
func TestFaultStrandsTailCleanup(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	link, ok := fm.LinkAt(fm.Routers[0], 0)
	if !ok {
		t.Fatal("no inter-router link")
	}
	// Timeouts armed so the test also proves the fault path does not leak
	// into the retry machinery.
	cfg := sim.Config{FIFODepth: 2, TimeoutCycles: 50, MaxRetries: 3}
	s := sim.New(fm.Network, router.AllowAll(fm.Network), cfg)
	if err := s.AddBatch(tb, []sim.PacketSpec{{Src: 0, Dst: 9, Flits: 40}}); err != nil {
		t.Fatal(err)
	}
	// The header ejects from cycle 3 on; the tail is still queueing at the
	// source when the inter-router link dies under the worm.
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 8, Link: link}); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Dropped != 1 || res.Delivered != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 0/1", res.Delivered, res.Dropped)
	}
	if res.Retries != 0 {
		t.Fatalf("retries=%d: a fault kill must not be retried", res.Retries)
	}
	if res.Deadlocked {
		t.Fatal("stranded tail reported as deadlock")
	}
	if res.Cycles > 100 {
		t.Fatalf("cleanup took %d cycles — stranded flits were not reaped promptly", res.Cycles)
	}
	if res.ThroughputFPC == 0 {
		t.Fatal("no flits ejected before the fault; the scenario lost its mid-worm timing")
	}
}

// Flits in flight on a long wire are progress. The old idle counter only
// saw buffer-to-buffer moves and landings, so a quiet stretch while flits
// crossed an 8-cycle wire tripped a DeadlockThreshold of 4 — a false
// deadlock on a healthy network.
func TestLongLinkNoFalseDeadlock(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	cfg := sim.Config{FIFODepth: 2, LinkLatency: 8, DeadlockThreshold: 4}
	specs := []sim.PacketSpec{{Src: 0, Dst: 9, Flits: 4}}

	s := sim.New(fm.Network, router.AllowAll(fm.Network), cfg)
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deadlocked {
		t.Fatalf("false deadlock at cycle %d with flits mid-wire", res.Cycles)
	}
	if res.Delivered != 1 {
		t.Fatalf("delivered=%d, want 1", res.Delivered)
	}

	// The old idle accounting declares deadlock here.
	o := simref.New(fm.Network, router.AllowAll(fm.Network), cfg)
	if err := o.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
	if ores := o.Run(); !ores.Deadlocked {
		t.Fatalf("reference engine delivered (%+v) — the old false-deadlock "+
			"behavior is gone, update this regression test", ores)
	}
}

// End-to-end percentile check: latencies collected through the delivery
// hook, sorted, and indexed by the nearest-rank rule must match the
// Result's P50/P99 exactly.
func TestPercentilesMatchCollectedLatencies(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{})
	var lats []int
	s.OnDelivered(func(spec sim.PacketSpec, now int) {
		lats = append(lats, now-spec.InjectCycle)
	})
	// One source streaming to one sink serializes on the shared path, so
	// the ten latencies are distinct and the rank choice is unambiguous.
	for i := 0; i < 10; i++ {
		if err := s.AddBatch(tb, []sim.PacketSpec{{Src: 0, Dst: 9, Flits: 4}}); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run()
	if res.Delivered != 10 || len(lats) != 10 {
		t.Fatalf("delivered=%d hooks=%d, want 10/10", res.Delivered, len(lats))
	}
	sort.Ints(lats)
	rank := func(q int) int { return lats[(q*len(lats)+99)/100-1] }
	if res.P50Latency != rank(50) {
		t.Errorf("P50 = %d, want %d (5th smallest of %v)", res.P50Latency, rank(50), lats)
	}
	if res.P99Latency != rank(99) {
		t.Errorf("P99 = %d, want %d (10th smallest of %v)", res.P99Latency, rank(99), lats)
	}
}

// ScheduleFault rejects faults outside the simulation horizon or the
// link-ID space instead of silently never firing them.
func TestScheduleFaultValidation(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{MaxCycles: 100})
	bad := []sim.LinkFault{
		{Cycle: -1, Link: 0},
		{Cycle: 100, Link: 0}, // at MaxCycles: can never fire
		{Cycle: 0, Link: -1},
		{Cycle: 0, Link: topology.LinkID(fm.NumLinks())},
	}
	for _, f := range bad {
		if err := s.ScheduleFault(f); err == nil {
			t.Errorf("ScheduleFault(%+v) accepted", f)
		}
	}
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 99, Link: 0}); err != nil {
		t.Errorf("last in-horizon cycle rejected: %v", err)
	}
}

// Faults scheduled out of cycle order fire in cycle order: the run walks a
// sorted fault list with a cursor, so the later-scheduled-but-earlier
// fault must not be skipped.
func TestScheduleFaultOutOfOrder(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)
	la, ok := fm.LinkAt(fm.Routers[0], 0)
	if !ok {
		t.Fatal("router 0 port 0 unwired")
	}
	lb, ok := fm.LinkAt(fm.Routers[0], 1)
	if !ok {
		t.Fatal("router 0 port 1 unwired")
	}
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{})
	// Later cycle scheduled first.
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 5, Link: la}); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 2, Link: lb}); err != nil {
		t.Fatal(err)
	}
	// After cycle 5 both of router 0's inter-router cables are dead: its
	// nodes' cross-router traffic dies, other routers' traffic survives.
	if err := s.AddBatch(tb, []sim.PacketSpec{
		{Src: 0, Dst: 5, Flits: 2, InjectCycle: 6},
		{Src: 0, Dst: 9, Flits: 2, InjectCycle: 6},
		{Src: 4, Dst: 8, Flits: 2, InjectCycle: 6},
	}); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Dropped != 2 || res.Delivered != 1 {
		t.Fatalf("delivered=%d dropped=%d, want 1/2", res.Delivered, res.Dropped)
	}
}
