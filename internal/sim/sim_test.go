package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func mustBatch(t *testing.T, s *sim.Simulator, tb *routing.Tables, specs []sim.PacketSpec) {
	t.Helper()
	if err := s.AddBatch(tb, specs); err != nil {
		t.Fatal(err)
	}
}

// An uncontended packet's latency is exactly RouterHops + Flits cycles: one
// cycle per pipeline stage plus one per flit behind the header.
func TestSinglePacketLatency(t *testing.T) {
	fm := topology.NewFullMesh(2, 6)
	tb := routing.FullMesh(fm)
	for _, flits := range []int{1, 4, 16} {
		s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{})
		mustBatch(t, s, tb, []sim.PacketSpec{{Src: 0, Dst: 9, Flits: flits}})
		r, err := tb.Route(0, 9)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if res.Delivered != 1 || res.Deadlocked {
			t.Fatalf("flits=%d: delivered=%d deadlocked=%v", flits, res.Delivered, res.Deadlocked)
		}
		want := r.RouterHops() + flits
		if res.MaxLatency != want {
			t.Errorf("flits=%d: latency = %d, want %d", flits, res.MaxLatency, want)
		}
	}
}

// Figure 1: four long worms routed clockwise around a 4-ring block each
// other in a circular wait — a true wormhole deadlock, with a witness cycle
// in the wait-for graph.
func TestFigure1RingDeadlock(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingClockwise(rg)
	s := sim.New(rg.Network, router.AllowAll(rg.Network), sim.Config{FIFODepth: 2, DeadlockThreshold: 200})
	mustBatch(t, s, tb, workload.Transfers(workload.RingDeadlockSet(4), 32))
	res := s.Run()
	if !res.Deadlocked {
		t.Fatalf("no deadlock: delivered=%d cycles=%d", res.Delivered, res.Cycles)
	}
	if len(res.WaitCycle) == 0 {
		t.Fatal("deadlock without witness cycle")
	}
	// The witness must be a closed chain of channels: each channel's
	// destination device is the next channel's source device.
	for i := range res.WaitCycle {
		c1 := res.WaitCycle[i]
		c2 := res.WaitCycle[(i+1)%len(res.WaitCycle)]
		if rg.ChannelDst(c1).Device != rg.ChannelSrc(c2).Device {
			t.Errorf("witness cycle broken between %s and %s",
				rg.ChannelString(c1), rg.ChannelString(c2))
		}
	}
}

// The same workload with seam-avoiding routing delivers everything: the
// routing restriction removes the deadlock, exactly the paper's §2 point.
func TestFigure1RestrictedRoutingSurvives(t *testing.T) {
	rg := topology.NewRing(4, 1)
	tb := routing.RingSeamless(rg)
	s := sim.New(rg.Network, router.AllowAll(rg.Network), sim.Config{FIFODepth: 2, DeadlockThreshold: 200})
	mustBatch(t, s, tb, workload.Transfers(workload.RingDeadlockSet(4), 32))
	res := s.Run()
	if res.Deadlocked || res.Delivered != 4 {
		t.Fatalf("restricted routing: deadlocked=%v delivered=%d", res.Deadlocked, res.Delivered)
	}
}

// Dimension-order routing on a mesh survives an all-pairs pounding.
func TestMeshAllPairsDelivery(t *testing.T) {
	m := topology.NewMesh(3, 3, 1)
	tb := routing.MeshDimOrder(m, true)
	s := sim.New(m.Network, router.AllowAll(m.Network), sim.Config{})
	var specs []sim.PacketSpec
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if a != b {
				specs = append(specs, sim.PacketSpec{Src: a, Dst: b, Flits: 6})
			}
		}
	}
	mustBatch(t, s, tb, specs)
	res := s.Run()
	if res.Deadlocked || res.Delivered != 72 {
		t.Fatalf("deadlocked=%v delivered=%d/72", res.Deadlocked, res.Delivered)
	}
	if res.InOrderViolations != 0 {
		t.Errorf("in-order violations = %d", res.InOrderViolations)
	}
}

// The fat fractahedron under its deterministic routing delivers a heavy
// random load without deadlock and in order.
func TestFractahedronRandomLoad(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	dis, err := router.FromTables(tb)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(f.Network, dis, sim.Config{FIFODepth: 4})
	rng := rand.New(rand.NewSource(7))
	mustBatch(t, s, tb, workload.UniformRandom(rng, 64, 500, 8, 400))
	res := s.Run()
	if res.Deadlocked {
		t.Fatal("deadlocked under deterministic fractahedral routing")
	}
	if res.Delivered != 500 || res.Dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 500/0", res.Delivered, res.Dropped)
	}
	if res.InOrderViolations != 0 {
		t.Errorf("in-order violations = %d", res.InOrderViolations)
	}
}

// Path-disable enforcement: a route using a turn outside the disable set is
// discarded rather than forwarded (§2.4's corrupted-table defense), while
// legitimate traffic flows.
func TestDisablesDropCorruptedRoute(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)
	dis, err := router.FromTables(tb)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(fm.Network, dis, sim.Config{})

	// Legitimate packet.
	mustBatch(t, s, tb, []sim.PacketSpec{{Src: 0, Dst: 4, Flits: 4}})

	// Corrupted route: node 0 -> R0 -> R1 -> R2 -> node 8. The R1 turn
	// (from R0, toward R2) is never used by direct fully-connected routing,
	// so the disables reject it.
	detour := manualRoute(t, fm.Network, 0, 8, []topology.PortRef{
		{Device: fm.Routers[0], Port: fm.IntraPort(0, 1)},
		{Device: fm.Routers[1], Port: fm.IntraPort(1, 2)},
		{Device: fm.Routers[2], Port: fm.NodePort(8)},
	})
	if err := s.AddPacket(sim.PacketSpec{Src: 0, Dst: 8, Flits: 4}, detour); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Delivered != 1 || res.Dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d, want 1/1", res.Delivered, res.Dropped)
	}
	if res.Deadlocked {
		t.Fatal("drop handling deadlocked the network")
	}
}

// Fixed per-pair paths keep packets in order even under interleaving load;
// per-packet path diversity (the §3.3 ablation: "dynamically select a
// non-busy link") breaks arrival order.
func TestInOrderAblation(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)

	// In-order baseline: many packets, one pair, fixed path.
	s := sim.New(fm.Network, router.AllowAll(fm.Network), sim.Config{})
	var specs []sim.PacketSpec
	for i := 0; i < 10; i++ {
		specs = append(specs, sim.PacketSpec{Src: 0, Dst: 8, Flits: 5})
	}
	mustBatch(t, s, tb, specs)
	res := s.Run()
	if res.InOrderViolations != 0 {
		t.Fatalf("fixed path produced %d order violations", res.InOrderViolations)
	}

	// Ablation: the first 0->9 packet detours through R1, where a long
	// blocker worm (3->6) holds the R1->R2 link; the second 0->9 packet
	// takes the direct route and overtakes it — §3.3's "earlier packets
	// might encounter more contention upstream, causing them to be
	// delivered out of order".
	fm4 := topology.NewFullMesh(4, 6)
	tb4 := routing.FullMesh(fm4)
	s2 := sim.New(fm4.Network, router.AllowAll(fm4.Network), sim.Config{})
	blocker, err := tb4.Route(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AddPacket(sim.PacketSpec{Src: 3, Dst: 6, Flits: 60}, blocker); err != nil {
		t.Fatal(err)
	}
	long := manualRoute(t, fm4.Network, 0, 9, []topology.PortRef{
		{Device: fm4.Routers[0], Port: fm4.IntraPort(0, 1)},
		{Device: fm4.Routers[1], Port: fm4.IntraPort(1, 2)},
		{Device: fm4.Routers[2], Port: fm4.IntraPort(2, 3)},
		{Device: fm4.Routers[3], Port: fm4.NodePort(9)},
	})
	if err := s2.AddPacket(sim.PacketSpec{Src: 0, Dst: 9, Flits: 2}, long); err != nil {
		t.Fatal(err)
	}
	direct, err := tb4.Route(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AddPacket(sim.PacketSpec{Src: 0, Dst: 9, Flits: 1, InjectCycle: 4}, direct); err != nil {
		t.Fatal(err)
	}
	res2 := s2.Run()
	if res2.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3", res2.Delivered)
	}
	if res2.InOrderViolations == 0 {
		t.Error("path diversity did not produce an order violation; ablation broken")
	}
}

// Determinism: identical workloads produce identical results.
func TestDeterminism(t *testing.T) {
	run := func() sim.Result {
		m := topology.NewMesh(4, 4, 1)
		tb := routing.MeshDimOrder(m, true)
		s := sim.New(m.Network, router.AllowAll(m.Network), sim.Config{FIFODepth: 3})
		rng := rand.New(rand.NewSource(99))
		if err := s.AddBatch(tb, workload.UniformRandom(rng, 16, 200, 7, 100)); err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

// Conservation: every delivered packet's flits crossed every channel of its
// route exactly once.
func TestFlitConservation(t *testing.T) {
	m := topology.NewMesh(3, 3, 1)
	tb := routing.MeshDimOrder(m, false)
	s := sim.New(m.Network, router.AllowAll(m.Network), sim.Config{})
	rng := rand.New(rand.NewSource(3))
	specs := workload.UniformRandom(rng, 9, 100, 4, 50)
	mustBatch(t, s, tb, specs)
	res := s.Run()
	if res.Delivered != 100 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
	want := make(map[topology.ChannelID]int)
	for _, spec := range specs {
		r, _ := tb.Route(spec.Src, spec.Dst)
		for _, ch := range r.Channels {
			want[ch] += spec.Flits
		}
	}
	for ch, w := range want {
		if res.ChannelFlits[ch] != w {
			t.Errorf("channel %s carried %d flits, want %d", m.ChannelString(ch), res.ChannelFlits[ch], w)
		}
	}
}

// Offered load beyond capacity must not deadlock a deadlock-free routing —
// it just saturates.
func TestSaturationWithoutDeadlock(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 16)
	tb := routing.FatTree(ft)
	s := sim.New(ft.Network, router.AllowAll(ft.Network), sim.Config{FIFODepth: 2})
	rng := rand.New(rand.NewSource(11))
	mustBatch(t, s, tb, workload.Bernoulli(rng, 16, 100, 8, 0.5))
	res := s.Run()
	if res.Deadlocked {
		t.Fatal("fat tree deadlocked under saturation")
	}
	if res.Delivered != res.Injected || res.Delivered == 0 {
		t.Fatalf("delivered=%d injected=%d", res.Delivered, res.Injected)
	}
}

// manualRoute builds a Route from an explicit port walk for ablation and
// fault-injection tests.
func manualRoute(t *testing.T, net *topology.Network, src, dst int, hops []topology.PortRef) routing.Route {
	t.Helper()
	r := routing.Route{Src: src, Dst: dst}
	cur := net.NodeByIndex(src)
	r.Devices = append(r.Devices, cur)
	ch, ok := net.ChannelFromPort(cur, 0)
	if !ok {
		t.Fatalf("source node %d unwired", src)
	}
	r.Channels = append(r.Channels, ch)
	for _, h := range hops {
		if net.ChannelDst(ch).Device != h.Device {
			t.Fatalf("manual route discontinuity at %v", h)
		}
		r.Devices = append(r.Devices, h.Device)
		ch, ok = net.ChannelFromPort(h.Device, h.Port)
		if !ok {
			t.Fatalf("port %v unwired", h)
		}
		r.Channels = append(r.Channels, ch)
	}
	if net.ChannelDst(ch).Device != net.NodeByIndex(dst) {
		t.Fatalf("manual route does not end at node %d", dst)
	}
	r.Devices = append(r.Devices, net.NodeByIndex(dst))
	return r
}
