package sim

// Intra-run sharded switching plan. All prior parallelism in this repo runs
// ACROSS simulation points (runner.Map); this file parallelizes the inside
// of a single run without letting goroutine scheduling anywhere near the
// output. The per-cycle plan splits into four phases:
//
//  1. classify (parallel): each shard walks a contiguous slice of the
//     sorted active-buffer worklist — a disjoint ascending buffer-key
//     range — and classifies every buffer head against start-of-cycle
//     state only (routes, disables, dead links, buffer space, output-VC
//     ownership), appending compact records to private scratch. Nothing
//     shared is written.
//  2. commit (sequential): the shard record streams are concatenated in
//     shard order, which IS ascending buffer-key order, and replayed
//     exactly as the sequential walk would have run them: drops commit
//     (and suppress the dropped worm's later requests, however the
//     buffers were sharded), arbitration slots fill, grants emit in
//     canonical port order.
//  3. inject-scan (parallel): shards scan disjoint source-node ranges for
//     injectable queue fronts, reading the drop flags phase 2 finalized.
//  4. inject-commit (sequential): injection drops and moves merge in node
//     order; the next-injection event horizon is the min over shards.
//
// The only cross-buffer data flow inside the sequential planner is the
// monotonic packet drop flag, so phases 1/3 are pure reads and phases 2/4
// reproduce the sequential visit order bit for bit. The barrier in
// shardPool.run means no worker ever touches simulator state outside its
// phase; Result, hook order, and every internal counter are byte-identical
// to the sequential engine for any shard count and any GOMAXPROCS.

import (
	"slices"
	"sync"
)

// shardWorkMin and shardNodeMin gate the parallel planner per cycle: below
// them the barrier costs more than the walk and the cycle uses the
// sequential planner instead. A variable, not a constant, so the test
// binary can force the sharded path onto arbitrarily small scenarios (see
// TestMain in shard_test.go); the choice is invisible in output either way.
var (
	shardWorkMin = 64
	shardNodeMin = 2048
)

// Record kinds for the classify phases.
const (
	recDrop   int8 = iota // worm hit a path disable or a dead link: kill it
	recHdr                // header flit requesting a free output VC
	recCont               // continuing worm that owns its output VC
	recInject             // source node may inject its queue front's next flit
)

// shardRec is one classified candidate, in the visit order of the
// sequential planner. For buffer records from/to/port are the buffer key,
// destination buffer key, and global output-port index; for injection
// records from is the source node and to the injection buffer key.
type shardRec struct {
	pkt  *packet
	from int32
	to   int32
	port int32
	kind int8
}

// shardPool runs a fixed set of worker goroutines with a full barrier per
// dispatch. Shard 0 always executes on the caller's goroutine; workers
// 1..n-1 each own a job channel, so a dispatch is n-1 sends, local work,
// and n-1 receives — no shared queue, no scheduling freedom that could
// matter (every shard's work set is fixed before the dispatch).
type shardPool struct {
	n    int
	jobs []chan func()
	done []chan any
	wg   sync.WaitGroup
}

func newShardPool(n int) *shardPool {
	p := &shardPool{n: n}
	for i := 1; i < n; i++ {
		job := make(chan func())
		done := make(chan any, 1)
		p.jobs = append(p.jobs, job)
		p.done = append(p.done, done)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range job {
				done <- guard(fn)
			}
		}()
	}
	return p
}

// guard runs fn and converts a panic into a value, so a worker panic can
// cross back to the dispatching goroutine instead of killing the process
// from a goroutine nobody can recover on.
func guard(fn func()) (pv any) {
	defer func() { pv = recover() }()
	fn()
	return nil
}

// run executes fn(shard) for shards 0..n-1 and returns only after every
// shard finished — the deterministic barrier. A shard panic is re-raised
// here, on the caller's goroutine, after the barrier: the pool is quiescent
// when the panic propagates, so a recovering caller can still Close the
// simulator and leak nothing. When several shards panic in one dispatch the
// lowest shard index wins, keeping even the failure deterministic.
//
//simlint:barrier
func (p *shardPool) run(fn func(shard int)) {
	for i := 1; i < p.n; i++ {
		shard := i
		p.jobs[i-1] <- func() { fn(shard) }
	}
	pv := guard(func() { fn(0) })
	for i := 1; i < p.n; i++ {
		v := <-p.done[i-1]
		if pv == nil {
			pv = v
		}
	}
	if pv != nil {
		panic(pv)
	}
}

// close shuts the workers down and waits until they have all exited, so a
// caller observing close's return observes zero pool goroutines.
// Idempotent.
func (p *shardPool) close() {
	for _, job := range p.jobs {
		close(job)
	}
	p.wg.Wait()
	p.jobs = nil
}

// Close releases the shard worker pool without sealing the run. Finish
// calls it; callers abandoning a run mid-flight (an accounting error, a
// recovered panic) should call it directly so no worker goroutine outlives
// the simulator. Idempotent, and a later Start/StepTo re-creates the pool
// on demand.
func (s *Simulator) Close() {
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
	}
}

// ensurePool lazily builds the worker pool and per-shard scratch.
func (s *Simulator) ensurePool() {
	if s.pool == nil {
		s.pool = newShardPool(s.cfg.Shards)
		if s.shardRecs == nil {
			s.shardRecs = make([][]shardRec, s.cfg.Shards)
			s.shardNext = make([]int, s.cfg.Shards)
		}
	}
}

// ShardedCycles reports how many cycles the sharded planner executed so
// far — a diagnostic for tests that must prove the parallel path actually
// engaged, deliberately NOT part of Result (Results are identical for any
// shard count, and this is not).
func (s *Simulator) ShardedCycles() int { return s.shardedCycles }

// plan picks this cycle's planner: the sharded one when sharding is
// configured and there is enough live work to amortize two barriers, the
// sequential one otherwise. Both produce identical moves and identical
// side effects, so the choice can never surface in a Result.
//
//simlint:hotpath
func (s *Simulator) plan(now int) []move {
	if s.cfg.Shards > 1 &&
		(len(s.activeBufs) >= shardWorkMin || len(s.queues) >= shardNodeMin) {
		return s.planMovesSharded(now)
	}
	return s.planMoves(now)
}

// planMovesSharded is planMoves run over the shard pool: same inputs, same
// outputs, same side effects, computed by the four phases described in the
// file comment. The only wait it is allowed is the pool barrier itself —
// blockcheck proves nothing else on this path can park the goroutine.
//
//simlint:hotpath
func (s *Simulator) planMovesSharded(now int) []move {
	s.ensurePool()
	s.shardedCycles++
	moves := s.moves[:0]
	v := s.cfg.VirtualChannels
	n := s.pool.n

	slices.Sort(s.activeBufs)
	for i, k := range s.activeBufs {
		s.activePos[k] = int32(i)
	}
	s.arbStamp++
	s.arbTouched = s.arbTouched[:0]

	// Phase 1 — classify buffer heads in parallel over disjoint slices of
	// the sorted worklist. Reads start-of-cycle state only; writes go to
	// the shard's private record stream.
	total := len(s.activeBufs)
	s.pool.run(func(shard int) {
		recs := s.shardRecs[shard][:0]
		for _, k32 := range s.activeBufs[total*shard/n : total*(shard+1)/n] {
			key := int(k32)
			f := &s.bufFlits[key*s.depth+int(s.bufHead[key])]
			p := f.pkt
			if p.dropped {
				continue // reaped separately
			}
			next := p.route[f.hop+1]
			nextVC := 0
			if p.vcs != nil {
				nextVC = p.vcs[f.hop+1]
			}
			if f.idx == 0 && !s.chAllowed[key/v][s.chSrcPort[next]] {
				recs = append(recs, shardRec{pkt: p, kind: recDrop})
				continue
			}
			if s.deadCount[s.chLink[next]] > 0 {
				recs = append(recs, shardRec{pkt: p, kind: recDrop})
				continue
			}
			nextKey := int(next)*v + nextVC
			if !s.space(nextKey) {
				continue
			}
			kind := recHdr
			switch own := s.owner[nextKey]; {
			case own == int32(p.id):
				kind = recCont
			case own < 0 && f.idx == 0:
			default:
				continue
			}
			recs = append(recs, shardRec{
				pkt: p, from: k32, to: int32(nextKey),
				port: s.chOutPort[next], kind: kind,
			})
		}
		s.shardRecs[shard] = recs
	})

	// Phase 2 — commit in canonical order. Concatenating the shard streams
	// in shard order restores ascending buffer-key order, so this loop is
	// the sequential planner's walk replayed over the precomputed
	// classifications: drops land first time they are seen and suppress the
	// worm's later requests exactly as the in-line check did.
	for shard := 0; shard < n; shard++ {
		for i := range s.shardRecs[shard] {
			r := &s.shardRecs[shard][i]
			p := r.pkt
			if r.kind == recDrop {
				if !p.dropped {
					p.dropped = true
					s.markDropped(p)
				}
				continue
			}
			if p.dropped {
				continue // a lower-keyed buffer dropped this worm this cycle
			}
			a := &s.arb[r.port]
			if a.stamp != s.arbStamp {
				a.stamp = s.arbStamp
				a.contMin.from, a.contNext.from = -1, -1
				a.hdrMin.from, a.hdrNext.from = -1, -1
				s.arbTouched = append(s.arbTouched, r.port)
			}
			slot := arbSlot{from: r.from, to: r.to}
			if r.kind == recCont {
				if a.contMin.from < 0 {
					a.contMin = slot
				}
				if a.contNext.from < 0 && r.from > s.arbLast[r.port] {
					a.contNext = slot
				}
			} else {
				if a.hdrMin.from < 0 {
					a.hdrMin = slot
				}
				if a.hdrNext.from < 0 && r.from > s.arbLast[r.port] {
					a.hdrNext = slot
				}
			}
		}
	}
	moves = s.emitGrants(moves)

	// Phase 3 — injection scan over disjoint source-node ranges. Runs after
	// phase 2 so the drop flags it reads are final, mirroring the
	// sequential planner's buffer-loop-then-injection order. The scratch
	// streams are reused: phase 2 fully consumed them.
	nn := len(s.queues)
	s.pool.run(func(shard int) {
		recs := s.shardRecs[shard][:0]
		nextInject := s.cfg.MaxCycles
		for src := nn * shard / n; src < nn*(shard+1)/n; src++ {
			q := s.queues[src]
			if len(q) == 0 {
				continue
			}
			p := q[0]
			if p.spec.InjectCycle > now {
				if p.spec.InjectCycle < nextInject {
					nextInject = p.spec.InjectCycle
				}
				continue
			}
			if p.dropped {
				continue
			}
			if s.deadCount[s.chLink[p.route[0]]] > 0 {
				recs = append(recs, shardRec{pkt: p, kind: recDrop})
				continue
			}
			injKey := int(p.route[0])*v + p.vcAt(0)
			if s.space(injKey) {
				recs = append(recs, shardRec{from: int32(src), to: int32(injKey), kind: recInject})
			}
		}
		s.shardRecs[shard] = recs
		s.shardNext[shard] = nextInject
	})

	// Phase 4 — merge injections in node order. Every queue front is a
	// distinct packet, so the drops here cannot interact; the only shared
	// effects (dirty-list appends, move order, the injection horizon) are
	// serialized exactly as the sequential source loop emitted them.
	s.nextInject = s.cfg.MaxCycles
	for shard := 0; shard < n; shard++ {
		if s.shardNext[shard] < s.nextInject {
			s.nextInject = s.shardNext[shard]
		}
		for _, r := range s.shardRecs[shard] {
			if r.kind == recDrop {
				r.pkt.dropped = true
				s.markDropped(r.pkt)
				continue
			}
			moves = append(moves, move{from: -1, to: int(r.to), src: int(r.from)})
		}
	}
	s.moves = moves
	return moves
}
