package sim_test

// Cross-implementation equivalence: the indexed-state simulator must
// reproduce the retired map-based implementation (preserved as
// internal/sim/simref) byte for byte — every Result field, including the
// deadlock witness and per-channel flit counts — across every builtin
// topology spec and a matrix of load scenarios, and it must do so at every
// shard count (TestMain in shard_test.go forces the sharded planner to
// engage even on these small scenarios). The timeout scenarios stay
// on LinkLatency=1 / VirtualChannels=1 because the timeout semantics were
// deliberately fixed for the other corners; bugfix_test.go pins those
// divergences explicitly.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sim/simref"
	"repro/internal/topology"
	"repro/internal/workload"
)

// dropRec captures an OnDropped callback so hook behavior is compared too.
type dropRec struct {
	Spec sim.PacketSpec
	Now  int
}

type equivScenario struct {
	name  string
	cfg   sim.Config
	fault bool // kill a link mid-run and compare drop hooks
}

func equivScenarios() []equivScenario {
	return []equivScenario{
		{name: "uniform", cfg: sim.Config{FIFODepth: 4}},
		{name: "bernoulli", cfg: sim.Config{FIFODepth: 4}},
		{name: "vc2", cfg: sim.Config{FIFODepth: 2, VirtualChannels: 2}},
		{name: "latency3", cfg: sim.Config{FIFODepth: 4, LinkLatency: 3}},
		{name: "timeout", cfg: sim.Config{
			FIFODepth: 2, TimeoutCycles: 20, MaxRetries: 2, DeadlockThreshold: 4000,
		}},
		{name: "fault", cfg: sim.Config{FIFODepth: 4}, fault: true},
	}
}

// equivShardCounts is the shard sweep every equivalence pairing runs: the
// sequential engine plus two sharded widths, one even splitting and one that
// leaves ragged shard slices. simref ignores Shards, so each width must
// reproduce the identical reference Result.
var equivShardCounts = []int{1, 2, 4}

// runEquivPair drives identical inputs through both implementations — the
// indexed engine once per shard count in equivShardCounts — and fails on any
// Result or drop-hook divergence.
func runEquivPair(t *testing.T, sys *core.System, cfg sim.Config,
	specs []sim.PacketSpec, faults []sim.LinkFault) {
	t.Helper()

	oldSim := simref.New(sys.Net, sys.Disables, cfg)
	var oldDrops []dropRec
	oldSim.OnDropped(func(spec sim.PacketSpec, now int) {
		oldDrops = append(oldDrops, dropRec{spec, now})
	})
	for _, f := range faults {
		if err := oldSim.ScheduleFault(f); err != nil {
			t.Fatalf("old ScheduleFault(%+v): %v", f, err)
		}
	}
	if err := oldSim.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("old AddBatch: %v", err)
	}
	want := oldSim.Run()

	for _, shards := range equivShardCounts {
		shardCfg := cfg
		shardCfg.Shards = shards
		newSim := sim.New(sys.Net, sys.Disables, shardCfg)
		var newDrops []dropRec
		newSim.OnDropped(func(spec sim.PacketSpec, now int) {
			newDrops = append(newDrops, dropRec{spec, now})
		})
		for _, f := range faults {
			if err := newSim.ScheduleFault(f); err != nil {
				t.Fatalf("new ScheduleFault(%+v): %v", f, err)
			}
		}
		if err := newSim.AddBatch(sys.Tables, specs); err != nil {
			t.Fatalf("new AddBatch: %v", err)
		}

		got := newSim.Run()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Result diverged at Shards=%d\n new: %+v\n old: %+v",
				shards, got, want)
		}
		if !reflect.DeepEqual(newDrops, oldDrops) {
			t.Fatalf("drop hooks diverged at Shards=%d\n new: %+v\n old: %+v",
				shards, newDrops, oldDrops)
		}
		if shards > 1 && newSim.ShardedCycles() == 0 {
			t.Fatalf("Shards=%d run never engaged the sharded planner", shards)
		}
	}
}

// TestEquivalenceAcrossBuiltins sweeps every builtin system spec through
// the scenario matrix, comparing the full Result structs. Large systems run
// a reduced matrix to keep the suite fast; the small ones see every corner.
func TestEquivalenceAcrossBuiltins(t *testing.T) {
	for _, specName := range core.BuiltinSpecs() {
		specName := specName
		t.Run(specName, func(t *testing.T) {
			t.Parallel()
			sys, _, err := core.ParseSystem(specName)
			if err != nil {
				t.Fatalf("ParseSystem(%q): %v", specName, err)
			}
			nodes := sys.Net.NumNodes()
			if nodes < 2 {
				t.Skipf("%s has %d nodes", specName, nodes)
			}
			scenarios := equivScenarios()
			if nodes > 72 {
				// The big fabrics only need smoke-level coverage here; the
				// small systems exercise every corner of the matrix.
				scenarios = scenarios[:2]
			}
			for i, sc := range scenarios {
				sc := sc
				seed := int64(1000*len(specName) + 7*i)
				rng := rand.New(rand.NewSource(seed))

				packets := 2 * nodes
				if packets > 96 {
					packets = 96
				}
				var specs []sim.PacketSpec
				if sc.name == "bernoulli" {
					specs = workload.Bernoulli(rng, nodes, 80, 3, 0.3)
				} else {
					specs = workload.UniformRandom(rng, nodes, packets, 4, 50)
				}
				var faults []sim.LinkFault
				if sc.fault {
					faults = []sim.LinkFault{{
						Cycle: 20,
						Link:  topology.LinkID(rng.Intn(sys.Net.NumLinks())),
					}}
				}
				t.Run(sc.name, func(t *testing.T) {
					runEquivPair(t, sys, sc.cfg, specs, faults)
				})
			}
		})
	}
}

// TestEquivalenceUnsafeRingDeadlock pins the deadlock path: the unbroken
// 4-ring under the classic cyclic transfer set must deadlock in both
// implementations with the identical wait-for-graph witness.
func TestEquivalenceUnsafeRingDeadlock(t *testing.T) {
	sys, _, err := core.ParseSystem("ring:size=4,unsafe")
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	specs := workload.Transfers(workload.RingDeadlockSet(4), 8)
	runEquivPair(t, sys, sim.Config{FIFODepth: 2}, specs, nil)

	// Sanity: this scenario really does deadlock (otherwise the witness
	// comparison above is vacuous).
	s := sim.New(sys.Net, sys.Disables, sim.Config{FIFODepth: 2})
	if err := s.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	res := s.Run()
	if !res.Deadlocked || len(res.WaitCycle) == 0 {
		t.Fatalf("expected a deadlock with witness, got %+v", res)
	}
}

// TestEquivalenceTimeoutRecovery pins the timeout/retry/drop machinery:
// the same unsafe ring recovers via timeouts when they are enabled, and
// both implementations agree on every retry and drop.
func TestEquivalenceTimeoutRecovery(t *testing.T) {
	sys, _, err := core.ParseSystem("ring:size=4,unsafe")
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	specs := workload.Transfers(workload.RingDeadlockSet(4), 32)
	cfg := sim.Config{
		FIFODepth: 2, TimeoutCycles: 40, MaxRetries: 2, DeadlockThreshold: 4000,
	}
	runEquivPair(t, sys, cfg, specs, nil)
}

// TestEquivalenceChaosDisabled proves the chaos-era hooks are free when
// disabled: the indexed engine — with a zero-rate corruption filter
// installed and driven through the incremental Start/StepTo/Finish API
// instead of the monolithic Run, sequentially and sharded — still
// reproduces the reference engine byte for byte, drop hooks included.
func TestEquivalenceChaosDisabled(t *testing.T) {
	sys, _, err := core.ParseSystem("fat-fract:levels=2")
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	specs := workload.UniformRandom(rng, sys.Net.NumNodes(), 96, 4, 50)
	fault := sim.LinkFault{Cycle: 20, Link: topology.LinkID(rng.Intn(sys.Net.NumLinks()))}

	oldSim := simref.New(sys.Net, sys.Disables, sim.Config{FIFODepth: 4})
	var oldDrops []dropRec
	oldSim.OnDropped(func(spec sim.PacketSpec, now int) {
		oldDrops = append(oldDrops, dropRec{spec, now})
	})
	if err := oldSim.ScheduleFault(fault); err != nil {
		t.Fatalf("old ScheduleFault: %v", err)
	}
	if err := oldSim.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("old AddBatch: %v", err)
	}
	want := oldSim.Run()

	for _, shards := range equivShardCounts {
		newSim := sim.New(sys.Net, sys.Disables, sim.Config{FIFODepth: 4, Shards: shards})
		var newDrops []dropRec
		newSim.OnDropped(func(spec sim.PacketSpec, now int) {
			newDrops = append(newDrops, dropRec{spec, now})
		})
		if err := newSim.EnableCorruption(0, 123); err != nil {
			t.Fatalf("EnableCorruption(0): %v", err)
		}
		if err := newSim.ScheduleFault(fault); err != nil {
			t.Fatalf("new ScheduleFault: %v", err)
		}
		if err := newSim.AddBatch(sys.Tables, specs); err != nil {
			t.Fatalf("new AddBatch: %v", err)
		}

		newSim.Start()
		for newSim.Running() {
			newSim.StepTo(newSim.Now() + 1)
		}
		got := newSim.Finish()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step-driven Result diverged from reference at Shards=%d\n new: %+v\n old: %+v",
				shards, got, want)
		}
		if !reflect.DeepEqual(newDrops, oldDrops) {
			t.Fatalf("drop hooks diverged at Shards=%d\n new: %+v\n old: %+v",
				shards, newDrops, oldDrops)
		}
	}
}

// TestSimrefRejectsTransientFaults pins the reference engine's contract:
// it does not model link repair, and says so instead of silently treating
// a flap as a permanent kill.
func TestSimrefRejectsTransientFaults(t *testing.T) {
	sys, _, err := core.ParseSystem("ring:size=4")
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	s := simref.New(sys.Net, sys.Disables, sim.Config{})
	if err := s.ScheduleFault(sim.LinkFault{Cycle: 5, Link: 0, RepairCycle: 50}); err == nil {
		t.Fatal("simref accepted a transient fault it cannot model")
	}
}

// TestNewEngineDeterminism re-runs one loaded scenario and demands the
// Results match exactly — no hidden iteration-order or allocation-reuse
// dependence survives in the indexed engine.
func TestNewEngineDeterminism(t *testing.T) {
	sys, _, err := core.ParseSystem("fat-fract:levels=2")
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	run := func() (sim.Result, []dropRec) {
		rng := rand.New(rand.NewSource(42))
		specs := workload.UniformRandom(rng, sys.Net.NumNodes(), 96, 4, 50)
		s := sim.New(sys.Net, sys.Disables, sim.Config{FIFODepth: 2, VirtualChannels: 2})
		var drops []dropRec
		s.OnDropped(func(spec sim.PacketSpec, now int) {
			drops = append(drops, dropRec{spec, now})
		})
		if err := s.ScheduleFault(sim.LinkFault{Cycle: 30, Link: 3}); err != nil {
			t.Fatalf("ScheduleFault: %v", err)
		}
		if err := s.AddBatch(sys.Tables, specs); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
		return s.Run(), drops
	}
	r1, d1 := run()
	r2, d2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("non-deterministic Result:\n run1: %+v\n run2: %+v", r1, r2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("non-deterministic drop hooks:\n run1: %+v\n run2: %+v", d1, d2)
	}
}
