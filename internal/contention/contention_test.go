package contention

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Figure 3: fully-connected groups of M 6-port routers have maximum link
// contention (7-M):1 — every node of one router aimed at nodes of another.
func TestFullMeshFigure3Contention(t *testing.T) {
	want := map[int]int{2: 5, 3: 4, 4: 3, 5: 2, 6: 1}
	for m, c := range want {
		fm := topology.NewFullMesh(m, 6)
		res, err := MaxLinkContention(routing.FullMesh(fm))
		if err != nil {
			t.Fatal(err)
		}
		if res.Max != c {
			t.Errorf("M=%d: contention %d:1, want %d:1 (paper Figure 3)", m, res.Max, c)
		}
	}
}

// A single router has no inter-router links: contention degenerates to 1:1.
func TestSingleRouterContention(t *testing.T) {
	fm := topology.NewFullMesh(1, 6)
	res, err := MaxLinkContention(routing.FullMesh(fm))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 1 || res.WorstChannel != -1 {
		t.Errorf("contention = %d (channel %d), want 1 with no channel", res.Max, res.WorstChannel)
	}
}

// §3.1: the 6x6 mesh with two nodes per router and dimension-order routing
// has 10:1 worst-case contention (ten transfers turning the same corner).
func TestMesh66Contention(t *testing.T) {
	m := topology.NewMesh(6, 6, 2)
	res, err := MaxLinkContention(routing.MeshDimOrder(m, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 10 {
		t.Errorf("contention = %d:1, want 10:1 (paper §3.1)", res.Max)
	}
}

// §3.3: the 64-node 4-2 fat tree with a static destination partition over
// the upward links has 12:1 worst-case contention.
func TestFatTree42Contention(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	res, err := MaxLinkContention(routing.FatTree(ft))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 12 {
		t.Errorf("contention = %d:1, want 12:1 (paper §3.3/Table 2)", res.Max)
	}
}

// §3.4/Table 2: on the links the paper analyzes — those within the second
// level tetrahedra — the 64-node fat fractahedron's worst contention is
// 4:1, on a diagonal link of a level-2 layer.
func TestFatFractahedron64IntraLevel2Contention(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	intraL2 := func(ch topology.ChannelID) bool {
		src := f.Meta(f.ChannelSrc(ch).Device)
		dst := f.Meta(f.ChannelDst(ch).Device)
		return src.Level == 2 && dst.Level == 2
	}
	res, err := MaxLinkContentionFiltered(tb, intraL2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 4 {
		t.Errorf("intra-level-2 contention = %d:1, want 4:1 (paper §3.4/Table 2)", res.Max)
	}
	src := f.Meta(f.ChannelSrc(res.WorstChannel).Device)
	dst := f.Meta(f.ChannelDst(res.WorstChannel).Device)
	if src.Layer != dst.Layer {
		t.Errorf("worst channel %s crosses layers", f.ChannelString(res.WorstChannel))
	}
}

// Over ALL links the fat fractahedron's worst case is 8:1, on a down link
// from a level-2 layer into a level-1 tetrahedron — a case the paper's
// analysis does not discuss (EXPERIMENTS.md records the discrepancy). The
// headline comparison survives: 8:1 still beats the fat tree's 12:1.
func TestFatFractahedron64AllLinksContention(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	res, err := MaxLinkContention(routing.Fractahedron(f))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 8 {
		t.Errorf("all-links contention = %d:1, want 8:1", res.Max)
	}
	src := f.Meta(f.ChannelSrc(res.WorstChannel).Device)
	dst := f.Meta(f.ChannelDst(res.WorstChannel).Device)
	if !(src.Level == 2 && dst.Level == 1) {
		t.Errorf("worst channel %s not a level-2 down link", f.ChannelString(res.WorstChannel))
	}
}

// The thin fractahedron funnels the traffic of two whole tetrahedra over
// each level-2 intra link (both tetras enter level 2 at the same router):
// 16:1 — worse than the fat tree, which is why the paper introduces layers.
func TestThinFractahedron64Contention(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, false))
	res, err := MaxLinkContention(routing.Fractahedron(f))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 16 {
		t.Errorf("contention = %d:1, want 16:1 (two 8-node ensembles per level-2 entry router)", res.Max)
	}
}

// Witness sets are valid: distinct sources, distinct destinations, and each
// transfer's route really crosses the worst channel.
func TestWitnessValidity(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	tb := routing.FatTree(ft)
	res, err := MaxLinkContention(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Witness) != res.Max {
		t.Fatalf("witness size %d != max %d", len(res.Witness), res.Max)
	}
	srcs := map[int]bool{}
	dsts := map[int]bool{}
	for _, w := range res.Witness {
		if srcs[w.Src] || dsts[w.Dst] {
			t.Fatalf("witness reuses a node: %+v", res.Witness)
		}
		srcs[w.Src], dsts[w.Dst] = true, true
		r, err := tb.Route(w.Src, w.Dst)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, ch := range r.Channels {
			if ch == res.WorstChannel {
				found = true
			}
		}
		if !found {
			t.Errorf("witness %d->%d does not cross the worst channel", w.Src, w.Dst)
		}
	}
}

// ContentionOfSet reproduces §3.4's hand-picked scenario exactly.
func TestContentionOfSetFractScenario(t *testing.T) {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	set := []Transfer{{6, 54}, {7, 55}, {14, 62}, {15, 63}}
	c, ch, err := ContentionOfSet(tb, set)
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("scenario contention = %d, want 4", c)
	}
	if ch < 0 {
		t.Error("no channel reported")
	}
}

// §2: uniform-load utilization under up*/down* hypercube routing is uneven —
// links at the root corner carry through traffic, links at the far corner
// only local traffic — while e-cube spreads perfectly evenly by symmetry.
func TestHypercubeUtilizationUnevenness(t *testing.T) {
	h := topology.NewHypercube(3, 1)

	ud, err := Utilization(routing.HypercubeUpDown(h))
	if err != nil {
		t.Fatal(err)
	}
	udRatio, ok := ud.ImbalanceRatio()
	if !ok {
		t.Fatal("up*/down* leaves channels unused")
	}
	ec, err := Utilization(routing.HypercubeECube(h))
	if err != nil {
		t.Fatal(err)
	}
	ecRatio, ok := ec.ImbalanceRatio()
	if !ok {
		t.Fatal("e-cube leaves channels unused")
	}
	if udRatio <= ecRatio {
		t.Errorf("up*/down* imbalance %.2f not worse than e-cube %.2f", udRatio, ecRatio)
	}
	if udRatio < 2 {
		t.Errorf("up*/down* imbalance %.2f, expected at least 2x", udRatio)
	}
}

func TestUtilizationConservation(t *testing.T) {
	// Total channel crossings equal the sum of route lengths minus the
	// injection/ejection channels (2 per route).
	m := topology.NewMesh(3, 3, 1)
	tb := routing.MeshDimOrder(m, true)
	p, err := Utilization(tb)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range p.PerChannel {
		total += c
	}
	want := 0
	for s := 0; s < 9; s++ {
		for d := 0; d < 9; d++ {
			if s == d {
				continue
			}
			r, _ := tb.Route(s, d)
			want += len(r.Channels) - 2
		}
	}
	if total != want {
		t.Errorf("total crossings %d, want %d", total, want)
	}
	values, counts := p.Histogram()
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != len(p.PerChannel) || len(values) != len(counts) {
		t.Errorf("histogram inconsistent: %v %v", values, counts)
	}
}

// The adversary cannot beat the static-partition pigeonhole bound: for the
// 4-2 fat tree any destination-based partition leaves some top path with at
// least ceil(48/4) = 12 remote destinations, and 16 pod sources cover them.
func TestFatTreeContentionLowerBoundHolds(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	res, err := MaxLinkContention(routing.FatTree(ft))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max < 12 {
		t.Errorf("contention %d below the pigeonhole bound 12", res.Max)
	}
}

// §3.3: "other static partitionings of traffic through the high-level links
// can do no better than the 12:1 contention ratio" — the compact partition
// included.
func TestFatTreeCompactStillTwelve(t *testing.T) {
	ft := topology.NewFatTree(4, 2, 64)
	res, err := MaxLinkContention(routing.FatTreeCompact(ft))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 12 {
		t.Errorf("compact partition contention = %d:1, want 12:1", res.Max)
	}
}

// A network whose worst contention is 1:1 still reports a witness channel
// when inter-router links exist.
func TestUnitContentionStillReportsChannel(t *testing.T) {
	fm := topology.NewFullMesh(6, 6) // 1 node per router: contention 1:1
	res, err := MaxLinkContention(routing.FullMesh(fm))
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 1 {
		t.Fatalf("contention = %d", res.Max)
	}
	if res.WorstChannel < 0 || len(res.Witness) != 1 {
		t.Errorf("witness missing: channel=%d witness=%v", res.WorstChannel, res.Witness)
	}
}

func TestMaxLinkContentionPairs(t *testing.T) {
	fm := topology.NewFullMesh(3, 6)
	tb := routing.FullMesh(fm)
	// Only router-0 nodes to router-1 nodes: 4 transfers, all on one link.
	pairs := []Transfer{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {0, 4} /* dup ignored */, {2, 2} /* self ignored */}
	res, err := MaxLinkContentionPairs(tb, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != 4 {
		t.Errorf("contention = %d, want 4", res.Max)
	}
	if got := res.String(fm.Network); got == "" || len(res.Witness) != 4 {
		t.Errorf("string/witness wrong: %q %v", got, res.Witness)
	}
	// Empty set degenerates to 1:1 with no channel.
	empty, err := MaxLinkContentionPairs(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Max != 1 || empty.WorstChannel != -1 {
		t.Errorf("empty set: %+v", empty)
	}
	if empty.String(fm.Network) == "" {
		t.Error("empty-set string missing")
	}
}
