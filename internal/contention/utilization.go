package contention

import (
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// UtilizationProfile reports how uniform all-pairs traffic spreads over the
// inter-router channels: the route count per channel and summary statistics.
// §2 of the paper uses this notion to argue that "most arrangements of path
// disables give uneven link utilization under uniform load" on the
// hypercube.
type UtilizationProfile struct {
	PerChannel map[topology.ChannelID]int
	Min, Max   int
	Mean       float64
}

// Utilization counts, for every inter-router channel, how many of the
// all-pairs routes cross it.
func Utilization(t *routing.Tables) (UtilizationProfile, error) {
	p := UtilizationProfile{PerChannel: make(map[topology.ChannelID]int)}
	// Seed every inter-router channel with zero so unused links show up.
	for c := 0; c < t.Net.NumChannels(); c++ {
		ch := topology.ChannelID(c)
		if interRouter(t.Net, ch) {
			p.PerChannel[ch] = 0
		}
	}
	err := t.ForAllPairs(0,
		func() any { return make(map[topology.ChannelID]int) },
		func(acc any, r routing.Route) error {
			m := acc.(map[topology.ChannelID]int)
			for _, ch := range r.Channels {
				m[ch]++
			}
			return nil
		},
		func(acc any) error {
			for ch, c := range acc.(map[topology.ChannelID]int) {
				if _, ok := p.PerChannel[ch]; ok {
					p.PerChannel[ch] += c
				}
			}
			return nil
		})
	if err != nil {
		return UtilizationProfile{}, err
	}
	first := true
	total := 0
	for _, c := range p.PerChannel {
		if first || c < p.Min {
			p.Min = c
		}
		if first || c > p.Max {
			p.Max = c
		}
		first = false
		total += c
	}
	if len(p.PerChannel) > 0 {
		p.Mean = float64(total) / float64(len(p.PerChannel))
	}
	return p, nil
}

// ImbalanceRatio reports Max/Min utilization; channels with zero routes
// yield +Inf conceptually, reported as the Max count with ok=false.
func (p UtilizationProfile) ImbalanceRatio() (ratio float64, ok bool) {
	if p.Min == 0 {
		return float64(p.Max), false
	}
	return float64(p.Max) / float64(p.Min), true
}

// Histogram returns the sorted distinct utilization values with their
// channel counts, for reporting.
func (p UtilizationProfile) Histogram() (values []int, counts []int) {
	m := make(map[int]int)
	for _, c := range p.PerChannel {
		m[c]++
	}
	for v := range m {
		values = append(values, v)
	}
	sort.Ints(values)
	counts = make([]int, len(values))
	for i, v := range values {
		counts[i] = m[v]
	}
	return values, counts
}
