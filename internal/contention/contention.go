// Package contention computes the paper's "maximum link contention" metric
// and uniform-load link utilization profiles.
//
// §3 of the paper measures a topology's tolerance of load imbalance by the
// worst case number of simultaneous transfers that can be forced to share
// one link: transfers have distinct sources and distinct destinations (a
// node sends or receives one transfer at a time), and each follows its
// fixed deterministic route. For a given unidirectional channel that is
// exactly a maximum bipartite matching problem over the (source,
// destination) pairs whose route crosses the channel, which this package
// solves exactly with Hopcroft–Karp. The paper's quoted ratios — 10:1 for
// the 6x6 mesh, 12:1 for the 4-2 fat tree, 4:1 for the fat fractahedron,
// (7-M):1 for fully-connected groups — are all reproduced by this
// computation.
package contention

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Transfer is one source-destination pair (node addresses).
type Transfer struct{ Src, Dst int }

// Result reports worst-case link contention.
type Result struct {
	// Max is the maximum over channels of the largest simultaneous
	// transfer set sharing that channel — the paper's contention ratio
	// numerator ("Max:1").
	Max int
	// WorstChannel is a channel achieving Max.
	WorstChannel topology.ChannelID
	// Witness is a concrete transfer set of size Max over WorstChannel,
	// with distinct sources and distinct destinations.
	Witness []Transfer
	// PerChannel maps every inter-router channel to its contention.
	PerChannel map[topology.ChannelID]int
}

// MaxLinkContention computes worst-case contention over all inter-router
// channels of the routed network. Injection and ejection channels are
// excluded: an injection channel carries a single source and an ejection
// channel a single destination, so their contention is 1 by definition.
func MaxLinkContention(t *routing.Tables) (Result, error) {
	return MaxLinkContentionFiltered(t, func(topology.ChannelID) bool { return true })
}

// MaxLinkContentionFiltered restricts the analysis to inter-router channels
// accepted by keep. The paper's §3.4 analysis of the fat fractahedron, for
// example, considers only the intra-ensemble links of the second level;
// experiments use the filter to reproduce that figure alongside the
// unrestricted metric.
func MaxLinkContentionFiltered(t *routing.Tables, keep func(topology.ChannelID) bool) (Result, error) {
	// The all-pairs route sweep runs on a worker pool; per-channel transfer
	// lists are sorted before matching so the result does not depend on the
	// worker count.
	perChannel := make(map[topology.ChannelID][]Transfer)
	err := t.ForAllPairs(0,
		func() any { return make(map[topology.ChannelID][]Transfer) },
		func(acc any, r routing.Route) error {
			m := acc.(map[topology.ChannelID][]Transfer)
			for _, ch := range r.Channels {
				if !interRouter(t.Net, ch) || !keep(ch) {
					continue
				}
				m[ch] = append(m[ch], Transfer{r.Src, r.Dst})
			}
			return nil
		},
		func(acc any) error {
			for ch, pairs := range acc.(map[topology.ChannelID][]Transfer) {
				perChannel[ch] = append(perChannel[ch], pairs...)
			}
			return nil
		})
	if err != nil {
		return Result{}, err
	}
	for _, pairs := range perChannel {
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Src != pairs[j].Src {
				return pairs[i].Src < pairs[j].Src
			}
			return pairs[i].Dst < pairs[j].Dst
		})
	}

	res := Result{Max: 1, WorstChannel: -1, PerChannel: make(map[topology.ChannelID]int, len(perChannel))}
	// Deterministic iteration order for reproducible witnesses.
	channels := make([]topology.ChannelID, 0, len(perChannel))
	for ch := range perChannel {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })
	for _, ch := range channels {
		size, witness := channelContention(perChannel[ch])
		res.PerChannel[ch] = size
		if size > res.Max || (size == res.Max && res.WorstChannel < 0) {
			res.Max = size
			res.WorstChannel = ch
			res.Witness = witness
		}
	}
	return res, nil
}

// channelContention solves the matching problem for one channel's pairs.
func channelContention(pairs []Transfer) (int, []Transfer) {
	srcIdx := make(map[int]int)
	dstIdx := make(map[int]int)
	var srcs, dsts []int
	for _, p := range pairs {
		if _, ok := srcIdx[p.Src]; !ok {
			srcIdx[p.Src] = len(srcs)
			srcs = append(srcs, p.Src)
		}
		if _, ok := dstIdx[p.Dst]; !ok {
			dstIdx[p.Dst] = len(dsts)
			dsts = append(dsts, p.Dst)
		}
	}
	adj := make([][]int, len(srcs))
	for _, p := range pairs {
		adj[srcIdx[p.Src]] = append(adj[srcIdx[p.Src]], dstIdx[p.Dst])
	}
	size, matchL := graph.MaxBipartiteMatching(len(srcs), len(dsts), adj)
	witness := make([]Transfer, 0, size)
	for u, v := range matchL {
		if v >= 0 {
			witness = append(witness, Transfer{srcs[u], dsts[v]})
		}
	}
	sort.Slice(witness, func(i, j int) bool { return witness[i].Src < witness[j].Src })
	return size, witness
}

// MaxLinkContentionPairs runs the matching analysis restricted to an
// explicit set of ordered pairs (deduplicated), rather than all pairs —
// used by the dual-fabric load-sharing study, where each fabric carries
// only half the pair space.
func MaxLinkContentionPairs(t *routing.Tables, pairs []Transfer) (Result, error) {
	perChannel := make(map[topology.ChannelID][]Transfer)
	seen := make(map[Transfer]bool, len(pairs))
	for _, p := range pairs {
		if p.Src == p.Dst || seen[p] {
			continue
		}
		seen[p] = true
		r, err := t.Route(p.Src, p.Dst)
		if err != nil {
			return Result{}, err
		}
		for _, ch := range r.Channels {
			if !interRouter(t.Net, ch) {
				continue
			}
			perChannel[ch] = append(perChannel[ch], p)
		}
	}
	res := Result{Max: 1, WorstChannel: -1, PerChannel: make(map[topology.ChannelID]int, len(perChannel))}
	channels := make([]topology.ChannelID, 0, len(perChannel))
	for ch := range perChannel {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })
	for _, ch := range channels {
		size, witness := channelContention(perChannel[ch])
		res.PerChannel[ch] = size
		if size > res.Max || (size == res.Max && res.WorstChannel < 0) {
			res.Max = size
			res.WorstChannel = ch
			res.Witness = witness
		}
	}
	return res, nil
}

// ContentionOfSet computes, for an explicit transfer set (e.g. the database
// query scenario of §3: k CPUs talking to k disk controllers), the maximum
// number of its transfers sharing any single channel. The set's sources and
// destinations need not be distinct; the count is over transfers as given.
func ContentionOfSet(t *routing.Tables, transfers []Transfer) (int, topology.ChannelID, error) {
	counts := make(map[topology.ChannelID]int)
	for _, tr := range transfers {
		r, err := t.Route(tr.Src, tr.Dst)
		if err != nil {
			return 0, -1, err
		}
		for _, ch := range r.Channels {
			counts[ch]++
		}
	}
	best, bestCh := 0, topology.ChannelID(-1)
	for ch, c := range counts {
		if c > best || (c == best && ch < bestCh) {
			best, bestCh = c, ch
		}
	}
	return best, bestCh, nil
}

func interRouter(net *topology.Network, ch topology.ChannelID) bool {
	return net.Device(net.ChannelSrc(ch).Device).Kind == topology.Router &&
		net.Device(net.ChannelDst(ch).Device).Kind == topology.Router
}

// String renders the result with its witness for command-line output.
func (r Result) String(net *topology.Network) string {
	if r.WorstChannel < 0 {
		return "max link contention 1:1 (no inter-router links)"
	}
	s := fmt.Sprintf("max link contention %d:1 on %s; witness transfers:", r.Max, net.ChannelString(r.WorstChannel))
	for _, w := range r.Witness {
		s += fmt.Sprintf(" %d->%d", w.Src, w.Dst)
	}
	return s
}
