package contention_test

import (
	"fmt"
	"log"

	"repro/internal/contention"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Measure the paper's §3.3 worst case: 12 transfers forced through one link
// of the 64-node 4-2 fat tree.
func ExampleMaxLinkContention() {
	ft := topology.NewFatTree(4, 2, 64)
	res, err := contention.MaxLinkContention(routing.FatTree(ft))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max contention %d:1 with a witness of %d transfers\n", res.Max, len(res.Witness))
	// Output:
	// max contention 12:1 with a witness of 12 transfers
}

// Check the paper's hand-built §3.4 scenario on the fat fractahedron: all
// four transfers share one diagonal link of a level-2 layer.
func ExampleContentionOfSet() {
	f := topology.NewFractahedron(topology.Tetra(2, true))
	tb := routing.Fractahedron(f)
	set := []contention.Transfer{{Src: 6, Dst: 54}, {Src: 7, Dst: 55}, {Src: 14, Dst: 62}, {Src: 15, Dst: 63}}
	shared, _, err := contention.ContentionOfSet(tb, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of 4 transfers share one link\n", shared)
	// Output:
	// 4 of 4 transfers share one link
}
