// Package runner is the parallel experiment engine: it fans independent
// simulation points (topology × rate × seed × config) over a worker pool
// and merges results in point order, following the deterministic
// merge-in-order pattern of routing.ForAllPairs.
//
// Determinism contract: a point's result may depend only on its inputs and
// its own RNG stream, derived from (experiment seed, point index) via
// PointSeed. Under that contract the merged result slice is bit-identical
// regardless of worker count — the property the determinism tests in
// internal/experiments pin. The flit simulator itself draws no randomness
// (ties break by channel order and round-robin arbitration), so the only
// random state in an experiment is the workload generator's explicit
// *rand.Rand, which each point must create for itself.
package runner

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config controls a campaign: worker-pool width, per-run engine sharding,
// and optional cost accounting. The zero value runs with GOMAXPROCS
// workers, sequential simulator engines, and no stats.
type Config struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Shards, when > 1, runs each point's simulator engine sharded over
	// that many goroutines (sim.Config.Shards). Orthogonal to Workers —
	// Workers parallelizes across points, Shards inside one run — and like
	// Workers it can never change a result: the sharded engine is
	// byte-identical to the sequential one.
	Shards int
	// Stats, when non-nil, accumulates per-run cost records.
	Stats *Stats
}

// Option mutates a Config.
type Option func(*Config)

// Workers sets the worker-pool size (<= 0 means GOMAXPROCS).
func Workers(n int) Option { return func(c *Config) { c.Workers = n } }

// Shards sets the per-run simulator engine shard count (<= 1 means the
// sequential engine).
func Shards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithStats attaches a campaign stats accumulator.
func WithStats(s *Stats) Option { return func(c *Config) { c.Stats = s } }

// NewConfig folds options into a Config.
func NewConfig(opts ...Option) Config {
	var c Config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Map runs fn for every point in [0, n) over the configured worker pool
// and returns the results in point order. Points are claimed from a shared
// counter (work stealing, so uneven point costs balance), but the output
// slice is indexed by point — the schedule never leaks into the result.
// On error the lowest-index failing point's error is returned, so the
// reported failure is deterministic too.
func Map[R any](cfg Config, n int, fn func(point int) (R, error)) ([]R, error) {
	return MapResume(cfg, n, nil, fn, nil)
}

// MapResume is Map with a completed-set skip and a streaming hook, the
// primitives the campaign server's checkpoint/resume and NDJSON streaming
// are built on. For each point, skip (when non-nil) is consulted first: a
// (result, true) return installs the already-known result without running
// fn — the checkpoint fast path. emit (when non-nil) is called once per
// freshly computed point, from the worker that computed it, so callers can
// stream results as they land; emit must be safe for concurrent use and
// receives points in completion order, NOT point order — the caller owns
// re-establishing the merge-in-order contract (the returned slice always
// has it).
//
// Error determinism: the error returned is always that of the
// lowest-index failing point, regardless of worker count or schedule.
// Workers publish the lowest failing index seen so far; points above it
// are cancelled, points below it keep running (one of them may fail
// lower still), so the minimum converges on the true lowest failure.
// emit is never called for a failing point, but may have fired for
// points above the failure before it surfaced.
func MapResume[R any](cfg Config, n int, skip func(point int) (R, bool), fn func(point int) (R, error), emit func(point int, r R)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	errs := make([]error, n)
	var next atomic.Int64
	var minFail atomic.Int64
	minFail.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				// The claim counter is monotonic, so once a claim lands
				// above the lowest known failure every later claim will
				// too: this worker is done.
				if i >= n || int64(i) > minFail.Load() {
					return
				}
				if skip != nil {
					if r, ok := skip(i); ok {
						out[i] = r
						continue
					}
				}
				r, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						cur := minFail.Load()
						if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					// Keep claiming: a lower-index point may still be
					// pending, and it might fail lower than this one.
					continue
				}
				out[i] = r
				if emit != nil {
					emit(i, r)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: point %d: %w", i, err)
		}
	}
	return out, nil
}

// PointSeed derives an independent per-point seed from an experiment seed
// and a point index (SplitMix64 finalizer over the golden-ratio stride).
// Equal inputs give equal seeds on every platform; distinct indices give
// statistically independent streams. This is the seeding contract the
// determinism tests pin: a point's workload depends only on (seed, index),
// never on which worker ran it or in what order.
func PointSeed(seed int64, point int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(point+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// RNG returns a fresh generator for one point's workload, seeded with
// PointSeed(seed, point).
func RNG(seed int64, point int) *rand.Rand {
	return rand.New(rand.NewSource(PointSeed(seed, point)))
}

// Stat is the cost record of one simulation run.
type Stat struct {
	Label     string
	Cycles    int           // simulated cycles
	FlitMoves int           // flit-channel crossings
	Wall      time.Duration // wall time of the run
}

// Stats accumulates per-run cost records across a campaign. It is safe for
// concurrent use; a nil *Stats discards records, so experiments can call
// Record unconditionally.
type Stats struct {
	mu     sync.Mutex
	start  time.Time
	points []Stat
}

// NewStats creates an accumulator; elapsed time counts from this call.
func NewStats() *Stats { return &Stats{start: time.Now()} }

// Record adds one run's cost. Safe on a nil receiver (no-op).
func (s *Stats) Record(st Stat) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.points = append(s.points, st)
	s.mu.Unlock()
}

// Summary is the aggregate cost of a campaign.
type Summary struct {
	Runs      int
	Cycles    int           // total simulated cycles
	FlitMoves int           // total flit-channel crossings
	SimWall   time.Duration // cumulative per-run wall time
	Elapsed   time.Duration // wall time since NewStats
}

// Summary aggregates the recorded runs.
func (s *Stats) Summary() Summary {
	if s == nil {
		return Summary{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{Elapsed: time.Since(s.start)}
	for _, p := range s.points {
		sum.Runs++
		sum.Cycles += p.Cycles
		sum.FlitMoves += p.FlitMoves
		sum.SimWall += p.Wall
	}
	return sum
}

// String renders the campaign summary. The speedup line is cumulative
// simulation time over elapsed wall time — the effective parallelism the
// worker pool achieved.
func (s *Stats) String() string {
	sum := s.Summary()
	if sum.Runs == 0 {
		return "campaign: no simulation runs recorded"
	}
	speedup := 0.0
	if sum.Elapsed > 0 {
		speedup = float64(sum.SimWall) / float64(sum.Elapsed)
	}
	return fmt.Sprintf(
		"campaign: %d runs, %d cycles simulated, %d flit-moves, sim time %v, wall %v (%.1fx effective parallelism)",
		sum.Runs, sum.Cycles, sum.FlitMoves,
		sum.SimWall.Round(time.Millisecond), sum.Elapsed.Round(time.Millisecond), speedup)
}
