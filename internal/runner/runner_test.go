package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrder checks results land at their point index regardless of the
// worker schedule.
func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(Config{Workers: workers}, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: point %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the engine-level version of the
// experiment determinism property: points that derive their randomness from
// PointSeed produce identical merged output for any pool size.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int64 {
		out, err := Map(Config{Workers: workers}, 40, func(i int) (int64, error) {
			rng := RNG(99, i)
			var sum int64
			for k := 0; k < 100; k++ {
				sum += rng.Int63n(1000)
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 33} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from sequential", workers)
		}
	}
}

// TestMapError checks the lowest-index error is the one reported.
func TestMapError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(Config{Workers: 4}, 20, func(i int) (int, error) {
		if i >= 10 {
			return 0, fmt.Errorf("point %d: %w", i, sentinel)
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	// The reported index must be the smallest failing point that ran; with
	// short-circuiting that is at least 10 and deterministic given a
	// single-worker pool.
	_, err = Map(Config{Workers: 1}, 20, func(i int) (int, error) {
		if i >= 10 {
			return 0, sentinel
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "point 10") {
		t.Fatalf("sequential err = %v, want point 10", err)
	}
}

// TestMapErrorDeterministic pins the bugfix for first-writer-wins error
// selection: with several failing points spread across a multi-worker
// pool, the reported error must always be the lowest-index failing
// point's, on every run and for every worker count. Before the fix the
// early-exit flag let whichever failure the schedule hit first suppress
// the lower-index ones.
func TestMapErrorDeterministic(t *testing.T) {
	failing := map[int]bool{9: true, 30: true, 50: true, 63: true}
	for _, workers := range []int{2, 4, 8, 16} {
		for rep := 0; rep < 25; rep++ {
			_, err := Map(Config{Workers: workers}, 64, func(i int) (int, error) {
				if failing[i] {
					return 0, fmt.Errorf("injected failure at %d", i)
				}
				// Skew point costs so the schedule reaches high-index
				// failures before low-index ones on most runs.
				if i < 20 {
					time.Sleep(200 * time.Microsecond)
				}
				return i, nil
			})
			if err == nil || !strings.Contains(err.Error(), "runner: point 9:") {
				t.Fatalf("workers=%d rep=%d: err = %v, want lowest failing point 9", workers, rep, err)
			}
		}
	}
}

// TestMapResume checks the completed-set skip and the streaming hook:
// skipped points install their checkpointed result without running fn,
// fresh points reach emit exactly once, and the merged slice is identical
// to an uninterrupted run.
func TestMapResume(t *testing.T) {
	const n = 40
	full, err := Map(Config{Workers: 4}, n, func(i int) (int, error) { return i * 3, nil })
	if err != nil {
		t.Fatal(err)
	}
	var ran, emitted [n]atomic.Int64
	resumed, err := MapResume(Config{Workers: 4}, n,
		func(i int) (int, bool) {
			if i%2 == 0 { // even points are "already checkpointed"
				return i * 3, true
			}
			return 0, false
		},
		func(i int) (int, error) {
			ran[i].Add(1)
			return i * 3, nil
		},
		func(i int, r int) {
			emitted[i].Add(1)
			if r != i*3 {
				t.Errorf("emit(%d) got %d, want %d", i, r, i*3)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatal("resumed merge diverged from uninterrupted run")
	}
	for i := 0; i < n; i++ {
		wantRan := int64(0)
		if i%2 == 1 {
			wantRan = 1
		}
		if got := ran[i].Load(); got != wantRan {
			t.Errorf("point %d ran %d times, want %d", i, got, wantRan)
		}
		if got := emitted[i].Load(); got != wantRan {
			t.Errorf("point %d emitted %d times, want %d (skipped points must not re-emit)", i, got, wantRan)
		}
	}
}

// TestMapEmpty and degenerate widths.
func TestMapEmpty(t *testing.T) {
	out, err := Map(Config{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty map: %v %v", out, err)
	}
	out, err = Map(Config{Workers: -3}, 3, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("negative workers: %v %v", out, err)
	}
}

// TestPointSeed pins the derivation's basic properties: deterministic,
// index-sensitive, seed-sensitive.
func TestPointSeed(t *testing.T) {
	if PointSeed(1, 0) != PointSeed(1, 0) {
		t.Fatal("PointSeed not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := PointSeed(42, i)
		if seen[s] {
			t.Fatalf("collision at index %d", i)
		}
		seen[s] = true
	}
	if PointSeed(1, 7) == PointSeed(2, 7) {
		t.Fatal("seed does not affect derivation")
	}
}

// TestStats exercises concurrent recording and the summary aggregate.
func TestStats(t *testing.T) {
	st := NewStats()
	_, err := Map(Config{Workers: 8, Stats: st}, 100, func(i int) (int, error) {
		st.Record(Stat{Label: "p", Cycles: 10, FlitMoves: 3, Wall: time.Microsecond})
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := st.Summary()
	if sum.Runs != 100 || sum.Cycles != 1000 || sum.FlitMoves != 300 {
		t.Fatalf("summary = %+v", sum)
	}
	if !strings.Contains(st.String(), "100 runs") {
		t.Errorf("summary text: %s", st)
	}
	// nil Stats is a silent sink.
	var nils *Stats
	nils.Record(Stat{Cycles: 1})
	if nils.Summary().Runs != 0 {
		t.Error("nil stats recorded something")
	}
}
