package fabricver

import (
	"encoding/json"
	"strings"
)

// MarshalCertificate renders the certificate as indented JSON with a
// trailing newline. The encoding is byte-stable: field order follows the
// struct declaration, the certificate holds no maps, and every slice is
// populated in a deterministic order, so equal fabrics produce equal
// bytes on every run and worker count — the property the golden
// certificate fixtures pin.
func MarshalCertificate(c Certificate) ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CertFileName derives a filesystem-safe file name for a spec's
// certificate: "fat-fract:levels=2,fanout" -> "fat-fract_levels=2_fanout.json".
func CertFileName(spec string) string {
	r := strings.NewReplacer(":", "_", ",", "_", "/", "_", " ", "")
	return r.Replace(spec) + ".json"
}
