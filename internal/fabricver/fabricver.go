// Package fabricver is the whole-fabric static verifier: it consumes a
// core.System (any built-in spec or a generated fractahedron) and proves,
// from the concrete routing tables rather than from an assumed channel
// order, the full set of properties the paper argues analytically:
//
//  1. Deadlock freedom — the channel dependency graph induced by the
//     tables is acyclic, with a minimal dependency cycle printed as the
//     counterexample when it is not.
//  2. Routing-table consistency — every (router, destination) entry is
//     live: in-range, wired, terminating at the destination without
//     revisiting a router, within the topology's analytical worst-case
//     hop bound.
//  3. Endpoint reachability — every ordered node pair routes end to end
//     (the paper's §3.0 CPU→disk database pattern, with every node in
//     both roles), again within the hop bound.
//  4. Path-disable enforcement — the System's disable registers enable
//     exactly the turns the swept dependencies use (§2.4's hardware
//     backstop matches the analysis).
//  5. Single-fault survivability — every single link failure and every
//     single router failure is enumerated; the degraded fabric is
//     re-routed with generic up*/down* tables, path-disables are
//     recomputed via internal/router, and connectivity plus CDG
//     acyclicity are re-proved for every surviving component. Endpoints
//     severed structurally (a node's only link or only router) are
//     accounted as expected losses, never as survivals.
//
// The outcome is a machine-readable Certificate (stable JSON; see
// MarshalCertificate) that cmd/fabricver emits per spec and CI archives.
// Verify never panics: corrupted tables — out-of-range ports, unwired
// ports, routing loops — become violations with concrete counterexamples,
// which is what lets the fuzz tests drive it with arbitrary mutations.
package fabricver

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Options tunes a verification run.
type Options struct {
	// Workers sizes the fault-enumeration worker pool (<= 0 means
	// GOMAXPROCS). The certificate is byte-identical for every value.
	Workers int
	// SkipFaults skips the single-fault enumeration (structure, tables,
	// CDG, reachability and disables are still checked).
	SkipFaults bool
}

// Certificate is the machine-readable verification result for one system.
// Field order is the JSON schema; MarshalCertificate renders it
// byte-stably.
type Certificate struct {
	Spec      string `json:"spec"`
	Topology  string `json:"topology"`
	Algorithm string `json:"algorithm"`

	Nodes    int `json:"nodes"`
	Routers  int `json:"routers"`
	Links    int `json:"links"`
	Channels int `json:"channels"`

	// RouterDiameter is the diameter of the router-to-router graph;
	// HopBound is the analytical worst-case router-hop count derived from
	// it per HopBoundRule (see hopbound.go). Every table walk and every
	// end-to-end route must stay within HopBound.
	RouterDiameter int    `json:"router_diameter"`
	HopBound       int    `json:"hop_bound"`
	HopBoundRule   string `json:"hop_bound_rule"`

	Tables   TableCheck    `json:"tables"`
	CDG      CDGCheck      `json:"cdg"`
	Reach    ReachCheck    `json:"reachability"`
	Disables DisablesCheck `json:"disables"`
	Faults   *FaultCheck   `json:"faults,omitempty"`

	Violations []Violation `json:"violations,omitempty"`
	OK         bool        `json:"ok"`
}

// Violation is one failed check with a concrete counterexample.
type Violation struct {
	// Check names the failed property: "tables", "cdg", "reachability",
	// "disables" or "faults".
	Check string `json:"check"`
	// Detail is the counterexample, rendered with device and port names.
	Detail string `json:"detail"`
}

// TableCheck reports the routing-table consistency walk: every
// (router, destination) entry of every table, walked to termination.
type TableCheck struct {
	Routers int  `json:"routers"`
	Entries int  `json:"entries"`
	Dead    int  `json:"dead_entries"`    // out-of-range, unwired, or mis-terminating
	Loops   int  `json:"looping_entries"` // walk revisits a router or never terminates
	MaxWalk int  `json:"max_walk_hops"`   // router hops over all entry walks
	OK      bool `json:"ok"`
}

// CDGCheck reports the channel-dependency-graph analysis built from the
// concrete tables (vertices are (channel, VC) pairs; single-VC routings
// have one vertex per channel).
type CDGCheck struct {
	Vertices        int      `json:"vertices"`
	Deps            int      `json:"dependencies"`
	Acyclic         bool     `json:"acyclic"`
	CertificateSize int      `json:"certificate_size"` // channels in the Dally–Seitz numbering; 0 when cyclic
	MinimalCycle    []string `json:"minimal_cycle,omitempty"`
}

// ReachCheck reports end-to-end endpoint reachability over every ordered
// node pair — the static form of §3.0's database pattern ("an arbitrary
// set of CPU nodes trying to communicate with an arbitrary set of disk
// controller nodes"): with every node eligible for either role, the
// pattern requires exactly all-pairs reachability.
type ReachCheck struct {
	Pattern     string `json:"pattern"` // "cpu-disk-all-pairs"
	Pairs       int    `json:"pairs"`
	Unreachable int    `json:"unreachable"`
	MaxHops     int    `json:"max_hops"`
	WorstPair   string `json:"worst_pair,omitempty"` // witness for MaxHops
	OK          bool   `json:"ok"`
}

// DisablesCheck reports whether the System's path-disable registers enable
// exactly the turns the swept routes depend on — §2.4's guarantee that the
// hardware enforces the analyzed dependency structure.
type DisablesCheck struct {
	UsedTurns    int  `json:"used_turns"`
	EnabledTurns int  `json:"enabled_turns"`
	OK           bool `json:"ok"`
}

// FaultCheck aggregates the single-fault enumeration.
type FaultCheck struct {
	LinkFaults   FaultClass `json:"link_faults"`
	RouterFaults FaultClass `json:"router_faults"`
	OK           bool       `json:"ok"`
}

// FaultClass summarizes one class of faults (all single links, or all
// single routers). A fault survives when every surviving component with at
// least two end nodes re-routes fully (all pairs reachable, CDG acyclic,
// hops within the degraded up*/down* bound, disables recomputed).
// SeveredPairs counts ordered endpoint pairs whose loss is structural — no
// path exists in the degraded topology, so no routing could save them;
// they are expected losses, not violations.
type FaultClass struct {
	Tried        int `json:"tried"`
	Survived     int `json:"survived"`
	SeveredPairs int `json:"severed_pairs"`
}

// maxDetail caps the rendered counterexamples per check; totals are always
// exact, and every capped list ends with an "... and N more" marker so the
// truncation is visible in the certificate.
const maxDetail = 8

// Verify runs every static check against the system and returns the
// certificate. It never panics; all failures, including structurally
// corrupted tables, are reported as violations.
func Verify(sys *core.System, spec string, opt Options) Certificate {
	net := sys.Net
	cert := Certificate{
		Spec:      spec,
		Topology:  net.Name,
		Algorithm: sys.Tables.Algorithm,
		Nodes:     net.NumNodes(),
		Routers:   net.NumRouters(),
		Links:     net.NumLinks(),
		Channels:  net.NumChannels(),
	}
	cert.RouterDiameter = routerDiameter(net)
	cert.HopBound, cert.HopBoundRule = hopBound(sys.Tables.Algorithm, cert.RouterDiameter)

	violate := func(check, format string, args ...any) {
		cert.Violations = append(cert.Violations, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	}

	// 1. Table consistency. Runs first because the later sweeps walk the
	// tables and rely on every entry being in-range and terminating.
	cert.Tables = checkTables(sys.Tables, cert.HopBound, violate)
	if !cert.Tables.OK {
		cert.OK = false
		return cert
	}

	// 2. One all-pairs sweep collects the dependency edges, used turns,
	// reachability and worst hops together.
	sw := sweepPairs(sys.Tables)
	cert.Reach = sw.reachCheck(net, cert.HopBound, violate)
	cert.CDG = sw.cdgCheck(net, sys.Tables.NumVC(), violate)
	cert.Disables = sw.disablesCheck(sys, violate)

	// 3. Single-fault enumeration over every link and every router.
	if !opt.SkipFaults {
		fc := enumerateFaults(net, opt.Workers, violate)
		cert.Faults = &fc
	}

	cert.OK = len(cert.Violations) == 0
	return cert
}

// VerifySpec parses a topology spec (core.ParseSystem grammar) and
// verifies it.
func VerifySpec(spec string, opt Options) (Certificate, error) {
	sys, _, err := core.ParseSystem(spec)
	if err != nil {
		return Certificate{}, err
	}
	return Verify(sys, spec, opt), nil
}

// Render writes the human-readable form of the certificate.
func (c Certificate) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s on %s\n", c.Spec, c.Algorithm, c.Topology)
	fmt.Fprintf(w, "  structure      %d nodes, %d routers, %d links, %d channels; router diameter %d\n",
		c.Nodes, c.Routers, c.Links, c.Channels, c.RouterDiameter)
	fmt.Fprintf(w, "  hop bound      %d (%s)\n", c.HopBound, c.HopBoundRule)
	fmt.Fprintf(w, "  tables         %s: %d entries across %d routers, max walk %d hops (%d dead, %d looping)\n",
		okStr(c.Tables.OK), c.Tables.Entries, c.Tables.Routers, c.Tables.MaxWalk, c.Tables.Dead, c.Tables.Loops)
	if c.Tables.OK {
		fmt.Fprintf(w, "  cdg            %s: %d vertices, %d dependencies, certificate size %d\n",
			okStr(c.CDG.Acyclic), c.CDG.Vertices, c.CDG.Deps, c.CDG.CertificateSize)
		for _, line := range c.CDG.MinimalCycle {
			fmt.Fprintf(w, "                   cycle: %s\n", line)
		}
		fmt.Fprintf(w, "  reachability   %s: %d pairs (%s), %d unreachable, max hops %d",
			okStr(c.Reach.OK), c.Reach.Pairs, c.Reach.Pattern, c.Reach.Unreachable, c.Reach.MaxHops)
		if c.Reach.WorstPair != "" {
			fmt.Fprintf(w, " (%s)", c.Reach.WorstPair)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  disables       %s: %d used turns, %d enabled\n",
			okStr(c.Disables.OK), c.Disables.UsedTurns, c.Disables.EnabledTurns)
		if c.Faults != nil {
			fmt.Fprintf(w, "  faults         %s: links %d/%d survived (%d pairs severed structurally), routers %d/%d survived (%d severed)\n",
				okStr(c.Faults.OK),
				c.Faults.LinkFaults.Survived, c.Faults.LinkFaults.Tried, c.Faults.LinkFaults.SeveredPairs,
				c.Faults.RouterFaults.Survived, c.Faults.RouterFaults.Tried, c.Faults.RouterFaults.SeveredPairs)
		}
	}
	if len(c.Violations) > 0 {
		fmt.Fprintf(w, "  VIOLATIONS (%d):\n", len(c.Violations))
		for _, v := range c.Violations {
			fmt.Fprintf(w, "    [%s] %s\n", v.Check, v.Detail)
		}
	}
}

// Summary is the one-line form used by cmd/fabricver -all.
func (c Certificate) Summary() string {
	status := "CERTIFIED"
	if !c.OK {
		status = fmt.Sprintf("FAILED (%d violations)", len(c.Violations))
	}
	var faults string
	if c.Faults != nil {
		faults = fmt.Sprintf(" faults=%d/%d",
			c.Faults.LinkFaults.Survived+c.Faults.RouterFaults.Survived,
			c.Faults.LinkFaults.Tried+c.Faults.RouterFaults.Tried)
	}
	return fmt.Sprintf("%-34s %-22s deps=%-5d maxhops=%d/%d%s %s",
		c.Spec, c.Algorithm, c.CDG.Deps, c.Reach.MaxHops, c.HopBound, faults, status)
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}

// capNote appends the standard truncation marker when a detail list was
// capped at maxDetail entries.
func capNote(total int) string {
	if total <= maxDetail {
		return ""
	}
	return fmt.Sprintf(" ... and %d more", total-maxDetail)
}
