package fabricver

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/deadlock"
)

// DallySeitzRow is one line of the per-pair certification table that both
// cmd/deadlockcheck -all and cmd/fabricver share: the Dally–Seitz channel
// order re-proved from the concrete tables, plus the turn-equivalence
// check that ties the order to the enforced path disables. Err is empty
// for a certified pair and carries the failure line otherwise.
type DallySeitzRow struct {
	Spec      string
	Algorithm string
	Channels  int
	Deps      int
	CertSize  int // channels in the numbering certificate
	Err       string
}

// CertifySpecs re-proves the static deadlock certificate for every spec:
// build the system, analyze the CDG, verify the analyzed dependencies
// coincide with the enforced path disables. It returns one row per spec
// and the number of failures.
func CertifySpecs(specs []string) (rows []DallySeitzRow, failures int) {
	for _, spec := range specs {
		row := DallySeitzRow{Spec: spec}
		sys, _, err := core.ParseSystem(spec)
		if err != nil {
			row.Err = fmt.Sprintf("BUILD FAILED: %v", err)
			rows = append(rows, row)
			failures++
			continue
		}
		rep, err := deadlock.Analyze(sys.Tables)
		if err != nil {
			row.Err = fmt.Sprintf("ANALYSIS FAILED: %v", err)
			rows = append(rows, row)
			failures++
			continue
		}
		row.Algorithm = rep.Algorithm
		if !rep.Free {
			row.Err = fmt.Sprintf("DEADLOCK: %d-channel dependency cycle", len(rep.Cycle))
			rows = append(rows, row)
			failures++
			continue
		}
		if err := deadlock.VerifyTurnEquivalence(sys.Tables); err != nil {
			row.Err = fmt.Sprintf("TURN MISMATCH: %v", err)
			rows = append(rows, row)
			failures++
			continue
		}
		row.Channels = rep.Channels
		row.Deps = rep.Deps
		row.CertSize = len(rep.Order)
		rows = append(rows, row)
	}
	return rows, failures
}

// WriteCertifyTable renders the certification rows in deadlockcheck's
// -all format: per-pair certificate sizes, then a one-line verdict.
func WriteCertifyTable(w io.Writer, rows []DallySeitzRow, failures int) {
	fmt.Fprintf(w, "%-34s %-22s %8s %8s %11s\n", "spec", "routing", "channels", "deps", "certificate")
	for _, r := range rows {
		if r.Err != "" {
			if r.Algorithm == "" {
				fmt.Fprintf(w, "%-34s %s\n", r.Spec, r.Err)
			} else {
				fmt.Fprintf(w, "%-34s %-22s %s\n", r.Spec, r.Algorithm, r.Err)
			}
			continue
		}
		fmt.Fprintf(w, "%-34s %-22s %8d %8d %11d\n",
			r.Spec, r.Algorithm, r.Channels, r.Deps, r.CertSize)
	}
	if failures > 0 {
		fmt.Fprintf(w, "=> %d of %d topology-routing pairs FAILED certification\n", failures, len(rows))
		return
	}
	fmt.Fprintf(w, "=> all %d topology-routing pairs certified deadlock-free (Dally–Seitz channel order exists; path disables match)\n", len(rows))
}
