package fabricver

// Online (re)certification: the primitive an in-flight recovery controller
// calls before hot-swapping freshly recomputed tables into a live
// simulator. It is the same memoized all-pairs sweep and CDG analysis the
// offline certificates are built from (sweep.go), stripped to the two
// properties a reconfiguration must establish — the new dependency graph is
// acyclic (so even stale-route traffic stays deadlock-free under minimal
// disables, §2.4) and every pair the degraded topology can still connect is
// actually routed.

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// LiveCheck is the certificate of one online recertification sweep.
type LiveCheck struct {
	Pairs       int // ordered node pairs swept
	Reached     int // pairs the tables route end to end
	Unreachable int // pairs that fail (holes, severed nodes, ...)
	MaxHops     int // worst router-hop count among reached pairs
	UsedTurns   int // total (in,out) turns the reached routes use
	Acyclic     bool
	// MinimalCycle names the shortest dependency cycle when !Acyclic.
	MinimalCycle []string
	// Failures samples the first unreachable pairs, in (dst, src) order.
	Failures []string
}

// CertifyLive sweeps every ordered node pair through the tables and proves
// (or refutes) channel-dependency acyclicity. It also returns the swept
// per-router turn set, ready for router.FromTurns, so the caller derives
// the minimal path-disables from the exact dependency structure that was
// just certified — the pair never goes out of sync.
func CertifyLive(tb *routing.Tables) (LiveCheck, map[topology.DeviceID]map[routing.Turn]bool) {
	sw := sweepPairs(tb)
	lc := LiveCheck{
		Pairs:       sw.pairs,
		Reached:     sw.reached,
		Unreachable: sw.failTotal,
		MaxHops:     sw.maxHops,
		Failures:    append([]string(nil), sw.failures...),
	}
	for _, m := range sw.turns {
		lc.UsedTurns += len(m)
	}
	numVC := tb.NumVC()
	g := sw.cdg(tb.Net.NumChannels(), numVC)
	if cycle, cyclic := g.ShortestCycle(); cyclic {
		lc.MinimalCycle = make([]string, len(cycle))
		for i, vtx := range cycle {
			lc.MinimalCycle[i] = vcChannelString(tb.Net, vtx, numVC)
		}
	} else {
		lc.Acyclic = true
	}
	return lc, sw.turns
}
