package fabricver

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// faultBudget gates full single-fault enumeration in tests: specs beyond
// this many faults (links + routers) are verified with SkipFaults here and
// covered by `make verify-fabric` / CI running the compiled binary over
// the full matrix.
const faultBudget = 250

// TestAllBuiltinSpecs proves the full verification matrix: every built-in
// topology × routing pair must certify — consistent tables, acyclic CDG,
// all-pairs reachability within the analytical hop bound, exact disables —
// and, for the specs within the fault budget, survive every single link
// and router failure.
func TestAllBuiltinSpecs(t *testing.T) {
	for _, spec := range core.BuiltinSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			sys, _, err := core.ParseSystem(spec)
			if err != nil {
				t.Fatalf("ParseSystem: %v", err)
			}
			opt := Options{Workers: 2}
			if sys.Net.NumLinks()+sys.Net.NumRouters() > faultBudget {
				opt.SkipFaults = true
			}
			cert := Verify(sys, spec, opt)
			if !cert.OK {
				t.Fatalf("spec not certified; violations: %v", cert.Violations)
			}
			if !cert.Tables.OK || !cert.CDG.Acyclic || !cert.Reach.OK || !cert.Disables.OK {
				t.Fatalf("check flags inconsistent with OK: %+v", cert)
			}
			if cert.Reach.MaxHops > cert.HopBound {
				t.Fatalf("max hops %d exceeds analytical bound %d (%s)",
					cert.Reach.MaxHops, cert.HopBound, cert.HopBoundRule)
			}
			if cert.CDG.CertificateSize != cert.CDG.Vertices {
				t.Fatalf("Dally–Seitz numbering covers %d of %d vertices",
					cert.CDG.CertificateSize, cert.CDG.Vertices)
			}
			if !opt.SkipFaults {
				if cert.Faults == nil || !cert.Faults.OK {
					t.Fatalf("fault enumeration failed: %+v", cert.Faults)
				}
				if cert.Faults.LinkFaults.Tried != sys.Net.NumLinks() ||
					cert.Faults.RouterFaults.Tried != sys.Net.NumRouters() {
					t.Fatalf("fault coverage %d links + %d routers, want %d + %d",
						cert.Faults.LinkFaults.Tried, cert.Faults.RouterFaults.Tried,
						sys.Net.NumLinks(), sys.Net.NumRouters())
				}
			}
		})
	}
}

// TestUnsafeRingCounterexample drives the verifier into the deliberately
// cyclic routing the paper warns about (a clockwise ring with no dateline)
// and demands the minimal 4-channel dependency cycle as counterexample.
func TestUnsafeRingCounterexample(t *testing.T) {
	cert, err := VerifySpec("ring:size=4,unsafe", Options{Workers: 2})
	if err != nil {
		t.Fatalf("VerifySpec: %v", err)
	}
	if cert.OK {
		t.Fatal("unsafe ring certified; want a CDG violation")
	}
	if cert.CDG.Acyclic || cert.CDG.CertificateSize != 0 {
		t.Fatalf("CDG check did not flag the cycle: %+v", cert.CDG)
	}
	if len(cert.CDG.MinimalCycle) != 4 {
		t.Fatalf("minimal cycle has %d channels, want 4: %v", len(cert.CDG.MinimalCycle), cert.CDG.MinimalCycle)
	}
	var hasCDG bool
	for _, v := range cert.Violations {
		if v.Check == "cdg" && strings.Contains(v.Detail, "minimal cycle (4 channels)") {
			hasCDG = true
		}
	}
	if !hasCDG {
		t.Fatalf("no cdg violation with the minimal cycle: %v", cert.Violations)
	}
	// The ring's tables are consistent and every pair reaches — only the
	// dependency structure is broken, and the checks must stay separable.
	if !cert.Tables.OK || !cert.Reach.OK {
		t.Fatalf("unrelated checks failed: tables=%+v reach=%+v", cert.Tables, cert.Reach)
	}
	if _, err := MarshalCertificate(cert); err != nil {
		t.Fatalf("violating certificate fails to marshal: %v", err)
	}
}

// TestMutatedTableHole verifies the table-consistency counterexample: a
// hole (-1 entry) becomes a dead entry with a rendered violation, and the
// verifier reports rather than panics.
func TestMutatedTableHole(t *testing.T) {
	sys, _, err := core.ParseSystem("fat-fract:levels=1")
	if err != nil {
		t.Fatal(err)
	}
	var router = firstRouter(t, sys)
	sys.Tables.SetOutPort(router, 2, -1)
	cert := Verify(sys, "fat-fract:levels=1 (hole)", Options{SkipFaults: true})
	if cert.OK {
		t.Fatal("corrupted tables certified")
	}
	if cert.Tables.OK || cert.Tables.Dead == 0 {
		t.Fatalf("hole not classified as dead entry: %+v", cert.Tables)
	}
	if !hasViolation(cert, "tables", "table hole") {
		t.Fatalf("no table-hole violation: %v", cert.Violations)
	}
}

// TestMutatedTableLoop verifies the looping-entry counterexample: a router
// that bounces a destination between neighbors must be reported as a loop
// and as unreachable pairs, never as a hang or panic.
func TestMutatedTableLoop(t *testing.T) {
	sys, _, err := core.ParseSystem("fat-fract:levels=1")
	if err != nil {
		t.Fatal(err)
	}
	// Point every router's entry for destination 0 at a router-to-router
	// port, chosen so the walk never ejects: with all entries diverted off
	// the node ports, destination 0 becomes unreachable and some walk
	// revisits a router.
	net := sys.Net
	for _, d := range net.Devices() {
		if !isRouter(net, d.ID) {
			continue
		}
		p := firstRouterPort(t, sys, d.ID)
		sys.Tables.SetOutPort(d.ID, 0, p)
	}
	cert := Verify(sys, "fat-fract:levels=1 (loop)", Options{SkipFaults: true})
	if cert.OK {
		t.Fatal("looping tables certified")
	}
	if cert.Tables.Loops == 0 {
		t.Fatalf("no looping entries classified: %+v", cert.Tables)
	}
	if !hasViolation(cert, "tables", "revisits") {
		t.Fatalf("no loop violation: %v", cert.Violations)
	}
}

// TestMutatedTableUnreachable verifies the reachability counterexample
// path: divert one router's entry so it ejects into the wrong end node.
func TestMutatedTableUnreachable(t *testing.T) {
	sys, _, err := core.ParseSystem("fat-fract:levels=1")
	if err != nil {
		t.Fatal(err)
	}
	net := sys.Net
	// Find a router entry for a destination NOT attached to it, and point
	// it at one of its own node ports: the walk ejects at the wrong node.
	var mutated bool
	for _, d := range net.Devices() {
		if !isRouter(net, d.ID) || mutated {
			continue
		}
		for p := 0; p < d.Ports; p++ {
			ch, ok := net.ChannelFromPort(d.ID, p)
			if !ok {
				continue
			}
			far := net.ChannelDst(ch).Device
			if isRouter(net, far) {
				continue
			}
			for dst := 0; dst < net.NumNodes(); dst++ {
				if net.NodeByIndex(dst) != far {
					sys.Tables.SetOutPort(d.ID, dst, p)
					mutated = true
					break
				}
			}
			break
		}
	}
	if !mutated {
		t.Fatal("could not construct the wrong-node mutation")
	}
	cert := Verify(sys, "fat-fract:levels=1 (wrong node)", Options{SkipFaults: true})
	if cert.OK {
		t.Fatal("mis-ejecting tables certified")
	}
	if !hasViolation(cert, "tables", "wrong end node") {
		t.Fatalf("no wrong-node violation: %v", cert.Violations)
	}
}

// TestTetrahedronFaultAccounting pins the exact single-fault arithmetic on
// the level-1 fat fractahedron (the paper's tetrahedron with doubled
// links): 14 links + 4 routers, all survived; the 8 node-injection links
// each sever one node (14 ordered pairs), the 6 inter-router links sever
// nothing; each router failure severs its 2 nodes (26 ordered pairs).
func TestTetrahedronFaultAccounting(t *testing.T) {
	cert, err := VerifySpec("fat-fract:levels=1", Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK || cert.Faults == nil {
		t.Fatalf("not certified: %+v", cert.Violations)
	}
	f := cert.Faults
	if f.LinkFaults.Tried != 14 || f.LinkFaults.Survived != 14 || f.LinkFaults.SeveredPairs != 8*14 {
		t.Fatalf("link faults = %+v, want 14 tried, 14 survived, 112 severed", f.LinkFaults)
	}
	if f.RouterFaults.Tried != 4 || f.RouterFaults.Survived != 4 || f.RouterFaults.SeveredPairs != 4*26 {
		t.Fatalf("router faults = %+v, want 4 tried, 4 survived, 104 severed", f.RouterFaults)
	}
}

// TestCertifySharedWithDeadlockcheck proves the certification table that
// cmd/deadlockcheck -all delegates here: zero failures over the builtin
// matrix and the exact verdict line.
func TestCertifySharedWithDeadlockcheck(t *testing.T) {
	rows, failures := CertifySpecs(core.BuiltinSpecs())
	if failures != 0 {
		t.Fatalf("%d builtin pairs failed certification", failures)
	}
	if len(rows) != len(core.BuiltinSpecs()) {
		t.Fatalf("%d rows for %d specs", len(rows), len(core.BuiltinSpecs()))
	}
	var buf bytes.Buffer
	WriteCertifyTable(&buf, rows, failures)
	out := buf.String()
	if !strings.Contains(out, "certified deadlock-free") {
		t.Fatalf("verdict line missing:\n%s", out)
	}
	for _, r := range rows {
		if r.CertSize == 0 || r.Channels == 0 {
			t.Fatalf("degenerate certificate row: %+v", r)
		}
	}
}

func hasViolation(c Certificate, check, substr string) bool {
	for _, v := range c.Violations {
		if v.Check == check && strings.Contains(v.Detail, substr) {
			return true
		}
	}
	return false
}

func isRouter(net *topology.Network, id topology.DeviceID) bool {
	return net.Device(id).Kind == topology.Router
}

func firstRouter(t *testing.T, sys *core.System) topology.DeviceID {
	t.Helper()
	for _, d := range sys.Net.Devices() {
		if isRouter(sys.Net, d.ID) {
			return d.ID
		}
	}
	t.Fatal("no router in system")
	return 0
}

// firstRouterPort returns a port of the router wired to another router.
func firstRouterPort(t *testing.T, sys *core.System, r topology.DeviceID) int {
	t.Helper()
	net := sys.Net
	for p := 0; p < net.Device(r).Ports; p++ {
		ch, ok := net.ChannelFromPort(r, p)
		if !ok {
			continue
		}
		if isRouter(net, net.ChannelDst(ch).Device) {
			return p
		}
	}
	t.Fatalf("router %d has no router-to-router port", r)
	return -1
}
