package fabricver

import (
	"repro/internal/topology"
)

// routerDiameter computes the diameter of the router-to-router graph (the
// longest shortest path between any two routers, in inter-router links) by
// breadth-first search from every router. End nodes hang off single ports
// and never relay traffic, so they do not enter the metric.
func routerDiameter(net *topology.Network) int {
	routers := make([]topology.DeviceID, 0, net.NumRouters())
	for _, d := range net.Devices() {
		if d.Kind == topology.Router {
			routers = append(routers, d.ID)
		}
	}
	dist := make(map[topology.DeviceID]int, len(routers))
	diameter := 0
	for _, src := range routers {
		for k := range dist {
			delete(dist, k)
		}
		dist[src] = 0
		queue := []topology.DeviceID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := 0; p < net.Device(u).Ports; p++ {
				l, ok := net.LinkAt(u, p)
				if !ok {
					continue
				}
				v := net.OtherEnd(l, u).Device
				if net.Device(v).Kind != topology.Router {
					continue
				}
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
					if dist[v] > diameter {
						diameter = dist[v]
					}
				}
			}
		}
	}
	return diameter
}

// minimalAlgorithms names the routing algorithms that always take a
// shortest path through the router graph, so a route visits at most
// diameter+1 routers. Everything else in the repository is an up-then-down
// discipline (fractahedral, fat-tree, up*/down*, seam-avoiding rings):
// the ascent and the descent are each at most the diameter, so a route
// visits at most 2*diameter+1 routers. These are the analytical worst
// cases the paper's §2 derivations give; the verifier enforces them on
// every table walk and every end-to-end route.
var minimalAlgorithms = map[string]bool{
	"fullmesh":        true,
	"mesh-xy":         true,
	"mesh-yx":         true,
	"hypercube-ecube": true,
}

// hopBound returns the analytical worst-case router-hop count for the
// algorithm on a topology with the given router diameter, plus the rule
// that produced it (recorded in the certificate so a reader can re-derive
// the number).
func hopBound(algorithm string, diameter int) (bound int, rule string) {
	if minimalAlgorithms[algorithm] {
		return diameter + 1, "minimal routing: diameter+1 routers"
	}
	return 2*diameter + 1, "up-then-down routing: 2*diameter+1 routers"
}
